// Benchmark harness: one benchmark per table and figure of the paper (see
// DESIGN.md §5 for the index). Each benchmark regenerates its artifact and
// prints the same rows/series the paper reports (once, on first run), so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Trace length per workload defaults to
// 400k instructions and can be scaled with ACIC_BENCH_N. Simulations run
// through the shared suite's plan/execute engine: figures that share runs
// (10, 11, 13, 16, ...) pay for them once, and independent cells execute
// in parallel on a GOMAXPROCS-wide worker pool (override with
// ACIC_WORKERS). BenchmarkSuiteSerial/BenchmarkSuiteParallel record the
// engine's wall-clock speedup on the Fig 10 grid.
package acic_test

import (
	"fmt"
	"sync"
	"testing"

	"acic/internal/experiments"
	"acic/internal/stats"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	printed   sync.Map
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.NewSuite(0) })
	return suite
}

// emit prints an artifact once per process so bench output contains each
// table exactly once regardless of b.N.
func emit(name, body string) {
	if _, dup := printed.LoadOrStore(name, true); !dup {
		fmt.Printf("\n=== %s ===\n%s\n", name, body)
	}
}

func benchTable(b *testing.B, name string, f func(s *experiments.Suite) (*stats.Table, error)) {
	b.Helper()
	s := sharedSuite()
	var out *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		out, err = f(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(name, out.String())
}

// --- Engine scaling ---

// benchFig10Grid runs the full Fig 10 grid on a fresh suite each
// iteration (nothing memoized across iterations) with the given worker
// count; comparing BenchmarkSuiteSerial and BenchmarkSuiteParallel
// ns/op gives the engine's wall-clock speedup on this host.
func benchFig10Grid(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(0)
		s.Workers = workers
		if _, err := s.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSerial is the single-worker baseline for the Fig 10 grid.
func BenchmarkSuiteSerial(b *testing.B) { benchFig10Grid(b, 1) }

// BenchmarkSuiteParallel runs the same grid on the default
// GOMAXPROCS-wide pool; on a >=4-core host it should be several times
// faster than BenchmarkSuiteSerial.
func BenchmarkSuiteParallel(b *testing.B) { benchFig10Grid(b, 0) }

// --- Tables ---

func BenchmarkTable1Storage(b *testing.B) {
	benchTable(b, "Table I: ACIC storage breakdown", func(*experiments.Suite) (*stats.Table, error) {
		return experiments.Table1(), nil
	})
}

func BenchmarkTable2Parameters(b *testing.B) {
	benchTable(b, "Table II: simulation parameters", func(*experiments.Suite) (*stats.Table, error) {
		return experiments.Table2(), nil
	})
}

func BenchmarkTable3MPKI(b *testing.B) {
	benchTable(b, "Table III: baseline L1i MPKI per app", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Table3()
	})
}

func BenchmarkTable4Storage(b *testing.B) {
	benchTable(b, "Table IV: per-scheme storage overhead", func(*experiments.Suite) (*stats.Table, error) {
		return experiments.Table4(), nil
	})
}

// --- Motivation figures ---

func BenchmarkFig1aReuseDistance(b *testing.B) {
	benchTable(b, "Fig 1a: reuse-distance distributions", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig1a()
	})
}

func BenchmarkFig1bMarkov(b *testing.B) {
	benchTable(b, "Fig 1b: reuse-distance Markov chain (media-streaming)", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig1b("media-streaming")
	})
}

func BenchmarkFig3aFilterOnly(b *testing.B) {
	benchTable(b, "Fig 3a: i-Filter / access-count / OPT speedups", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig3a()
	})
}

func BenchmarkFig3bReuseDelta(b *testing.B) {
	s := sharedSuite()
	var wrong float64
	for i := 0; i < b.N; i++ {
		var err error
		_, wrong, err = s.Fig3b("media-streaming")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(wrong*100, "wrong-insert-%")
	emit("Fig 3b: wrong-insertion fraction (media-streaming)",
		fmt.Sprintf("delta>0 in %s of filter->cache insertions (paper: 38.38%%)\n", stats.Percent(wrong)))
}

func BenchmarkFig6CSHR(b *testing.B) {
	s := sharedSuite()
	var h *stats.Histogram
	for i := 0; i < b.N; i++ {
		var err error
		h, err = s.Fig6("data-caching")
		if err != nil {
			b.Fatal(err)
		}
	}
	labels := []string{"0-50", "50-100", "100-150", "150-200", "200-250", "250-300", "300-350", "350-400", "InF"}
	t := &stats.Table{Header: []string{"comparisons", "fraction"}}
	for i, f := range h.Fractions() {
		t.AddRow(labels[i], stats.Percent(f))
	}
	emit("Fig 6: CSHR entry lifetime distribution (data-caching)", t.String())
}

// --- Headline comparison ---

func BenchmarkFig10Speedup(b *testing.B) {
	benchTable(b, "Fig 10: speedups over LRU+FDP", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig10()
	})
}

func BenchmarkFig11MPKI(b *testing.B) {
	benchTable(b, "Fig 11: MPKI reductions over LRU+FDP", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig11()
	})
}

// --- ACIC analysis figures ---

func BenchmarkFig12aAccuracy(b *testing.B) {
	benchTable(b, "Fig 12a: ACIC bypass accuracy by reuse range", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig12a()
	})
}

func BenchmarkFig12bRandom(b *testing.B) {
	benchTable(b, "Fig 12b: random-60% bypass vs ACIC", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig12b()
	})
}

func BenchmarkFig13Admission(b *testing.B) {
	benchTable(b, "Fig 13: fraction of i-Filter victims admitted", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig13()
	})
}

func BenchmarkFig14UpdateLatency(b *testing.B) {
	benchTable(b, "Fig 14: parallel vs instant predictor update", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig14()
	})
}

func BenchmarkFig15Sensitivity(b *testing.B) {
	benchTable(b, "Fig 15: parameter sensitivity (gmean speedup)", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig15()
	})
}

func BenchmarkFig16OverIFilter(b *testing.B) {
	benchTable(b, "Fig 16: ACIC speedup over LRU+i-Filter", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig16()
	})
}

func BenchmarkFig17Ablation(b *testing.B) {
	benchTable(b, "Fig 17: simplified-design ablation", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig17()
	})
}

// --- SPEC and alternative-prefetcher figures ---

func BenchmarkFig18SPECSpeedup(b *testing.B) {
	benchTable(b, "Fig 18: SPEC speedups", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig18()
	})
}

func BenchmarkFig19SPECMPKI(b *testing.B) {
	benchTable(b, "Fig 19: SPEC MPKI reductions", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig19()
	})
}

func BenchmarkFig20Entangling(b *testing.B) {
	benchTable(b, "Fig 20: speedups over entangling baseline", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig20()
	})
}

func BenchmarkFig21EntanglingMPKI(b *testing.B) {
	benchTable(b, "Fig 21: MPKI reductions over entangling baseline", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Fig21()
	})
}

// --- Energy and ablations beyond the paper's figures ---

func BenchmarkEnergyModel(b *testing.B) {
	benchTable(b, "Section III-D: chip-energy delta of ACIC", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Energy()
	})
}

// BenchmarkExtensionSchemes evaluates the extra baselines this repo adds
// beyond Fig 10: the DIP insertion-policy family, the evicted-address
// filter, PLRU, and the prefetch-aware ACIC variant.
func BenchmarkExtensionSchemes(b *testing.B) {
	benchTable(b, "Extension: DIP family / EAF / PLRU / prefetch-aware ACIC", func(s *experiments.Suite) (*stats.Table, error) {
		return s.ExtendedComparison()
	})
}

// BenchmarkExtensionPrefetchAware evaluates the paper's §VI future-work
// idea: admission control that discounts prefetch-covered reuse.
func BenchmarkExtensionPrefetchAware(b *testing.B) {
	benchTable(b, "Extension: prefetch-aware ACIC (paper §VI)", func(s *experiments.Suite) (*stats.Table, error) {
		return s.PrefetchAware()
	})
}

// BenchmarkAblationHeadroom quantifies §IV-F's capacity-vs-discretion
// argument as a full LRU miss-ratio curve per application.
func BenchmarkAblationHeadroom(b *testing.B) {
	benchTable(b, "Ablation: LRU miss-ratio curve over capacity (§IV-F)", func(s *experiments.Suite) (*stats.Table, error) {
		return s.Headroom()
	})
}

// BenchmarkAblationPrefetchers brackets the evaluation platforms with
// simpler prefetchers (none / next-line / stream) alongside entangling and
// FDP.
func BenchmarkAblationPrefetchers(b *testing.B) {
	benchTable(b, "Ablation: baseline under each prefetcher", func(s *experiments.Suite) (*stats.Table, error) {
		return s.PrefetcherBaselines()
	})
}

// BenchmarkAblationCSHRDefault compares the three readings of the paper's
// "benefit of the doubt" rule for CSHR entries evicted unresolved: train
// nothing (our default), train admit (the literal prose), train drop.
func BenchmarkAblationCSHRDefault(b *testing.B) {
	benchTable(b, "Ablation: CSHR unresolved-eviction training", func(s *experiments.Suite) (*stats.Table, error) {
		return experiments.AblationCSHRDefault(s)
	})
}
