package cliutil

import (
	"context"
	"flag"
	"strings"
	"testing"

	"acic/internal/faults"
)

// TestValidateFaultSpec: the shared Validate rejects a malformed
// -fault-spec up front, so every CLI fails fast with the same message
// instead of installing a half-parsed injector.
func TestValidateFaultSpec(t *testing.T) {
	f := &SimFlags{Gang: "auto", FaultSpec: "io-err:p=0.01"}
	if err := f.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	f.FaultSpec = "no-such-class:p=1"
	err := f.Validate()
	if err == nil || !strings.Contains(err.Error(), "-fault-spec") {
		t.Errorf("bad spec error = %v, want a -fault-spec error", err)
	}
}

// TestRegisterFaultSpecEnvDefault: ACIC_FAULT_SPEC seeds the flag default
// so CI tiers can fault every invocation without editing them.
func TestRegisterFaultSpecEnvDefault(t *testing.T) {
	t.Setenv("ACIC_FAULT_SPEC", "panic-cell:every=97")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterSim(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.FaultSpec != "panic-cell:every=97" {
		t.Errorf("FaultSpec = %q, want the env default", f.FaultSpec)
	}
}

// TestInstallFaults round-trips install and uninstall through the flag
// layer.
func TestInstallFaults(t *testing.T) {
	f := &SimFlags{FaultSpec: "io-err:p=1"}
	if err := f.InstallFaults(); err != nil {
		t.Fatal(err)
	}
	defer faults.Install("")
	if !faults.FailIO() {
		t.Error("installed p=1 io-err spec did not fire")
	}
	f.FaultSpec = ""
	if err := f.InstallFaults(); err != nil {
		t.Fatal(err)
	}
	if faults.FailIO() {
		t.Error("empty spec must uninstall the injector")
	}
}

// TestInterruptContext: the context is live until cancelled and reports
// context.Canceled after, matching what Suite.Context expects.
func TestInterruptContext(t *testing.T) {
	ctx, cancel := InterruptContext()
	if ctx.Err() != nil {
		t.Fatalf("fresh interrupt context already done: %v", ctx.Err())
	}
	cancel()
	<-ctx.Done()
	if ctx.Err() != context.Canceled {
		t.Errorf("ctx.Err() = %v, want context.Canceled", ctx.Err())
	}
}
