// Package cliutil deduplicates the engine/storage flag plumbing shared by
// the simulation CLIs (acic-bench, acic-sim, acic-trace warm): the worker
// pool width, the gang-execution mode, and the two persistent stores.
package cliutil

import (
	"flag"
	"fmt"
	"os"
)

// GangAutoThreshold is the trace length from which the gang's shared
// traversal measurably beats per-cell execution (bench/trajectory gang
// sweeps / DESIGN.md §8: neutral at 400k on large-LLC hosts, ~1.15x at
// multi-million-instruction traces).
const GangAutoThreshold = 1_000_000

// SimFlags are the shared engine/storage knobs after parsing.
type SimFlags struct {
	Workers     int
	Gang        string
	GangSize    int
	ArtifactDir string
}

// RegisterSim declares the shared simulation flags on fs (usually
// flag.CommandLine) and returns the destination struct, valid after
// fs.Parse.
func RegisterSim(fs *flag.FlagSet) *SimFlags {
	f := &SimFlags{}
	fs.IntVar(&f.Workers, "workers", 0, "simulation worker pool size (0 = ACIC_WORKERS or GOMAXPROCS)")
	fs.StringVar(&f.Gang, "gang", "auto", "group cells that share a workload into gang simulations — one Program traversal per gang: on, off, or auto (gang from 1M instructions, where the shared traversal measurably pays; output is byte-identical either way)")
	fs.IntVar(&f.GangSize, "gang-size", 10, "max schemes per gang task (with -gang)")
	RegisterArtifactDir(fs, &f.ArtifactDir)
	return f
}

// RegisterCacheDir declares -cache-dir on fs. It is separate from
// RegisterSim because only tools whose cells are plain (uninstrumented)
// results can reuse cached entries — acic-bench can, acic-sim's
// decision-diagnostic runs cannot.
func RegisterCacheDir(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", os.Getenv("ACIC_CACHE_DIR"), "persistent result cache directory (empty = disabled)")
}

// RegisterArtifactDir declares -artifact-dir on fs (shared with the
// acic-trace subcommands, which take none of the other simulation flags).
func RegisterArtifactDir(fs *flag.FlagSet, dst *string) {
	fs.StringVar(dst, "artifact-dir", os.Getenv("ACIC_ARTIFACT_DIR"),
		"persistent workload artifact store: prepared traces, annotated programs, successor arrays, and data-latency timelines are written once and reused by every later run (empty = disabled)")
}

// Validate checks the parsed flag values.
func (f *SimFlags) Validate() error {
	switch f.Gang {
	case "on", "off", "auto":
		return nil
	}
	return fmt.Errorf("-gang must be on, off, or auto (got %q)", f.Gang)
}

// GangEnabled resolves the three-state -gang flag against the trace
// length.
func (f *SimFlags) GangEnabled(n int) bool {
	switch f.Gang {
	case "on":
		return true
	case "off":
		return false
	default:
		return n >= GangAutoThreshold
	}
}

// SuiteGangSize returns the experiments.Suite.GangSize to configure: the
// flag value when gang execution is enabled for trace length n, else 0.
func (f *SimFlags) SuiteGangSize(n int) int {
	if f.GangEnabled(n) && f.GangSize > 1 {
		return f.GangSize
	}
	return 0
}
