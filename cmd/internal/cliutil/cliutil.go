// Package cliutil deduplicates the engine/storage flag plumbing shared by
// the simulation CLIs (acic-bench, acic-sim, acic-trace warm): the worker
// pool width, the gang-execution mode, and the two persistent stores.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"acic/internal/faults"
)

// ExitInterrupted is the exit code for runs cancelled by SIGINT/SIGTERM
// (128 + SIGINT, the shell convention): partial output was flushed, the
// run did not complete.
const ExitInterrupted = 130

// InterruptContext returns a context cancelled on the first SIGINT or
// SIGTERM. The CLIs thread it to experiments.Suite.Context / perf.Config.
// Context, which drain at cell boundaries — in-flight cells finish, the
// stores stay consistent, partial output flushes. A second signal kills
// the process via the restored default disposition.
func InterruptContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// GangAutoThreshold is the trace length from which the gang's shared
// traversal measurably beats per-cell execution (bench/trajectory gang
// sweeps / DESIGN.md §8: neutral at 400k on large-LLC hosts, ~1.15x at
// multi-million-instruction traces).
const GangAutoThreshold = 1_000_000

// DefaultL1Sets is the evaluated schemes' shared L1i set count, the
// denominator of the -sample-sets / -sample-stride conversion (it mirrors
// icache.DefaultSets without pulling the simulator into the flag layer).
const DefaultL1Sets = 64

// AutoGangWindow is the ResolveGangWindow value selecting the measured
// adaptive window (mirrors experiments.AutoGangWindow without pulling the
// simulator into the flag layer).
const AutoGangWindow = -1

// SimFlags are the shared engine/storage knobs after parsing.
type SimFlags struct {
	Workers       int
	Gang          string
	GangSize      int
	GangWindow    string
	ArtifactDir   string
	PrepareWindow int
	SampleSets    int
	SampleStride  int
	SampleOffset  int
	FaultSpec     string
}

// RegisterSim declares the shared simulation flags on fs (usually
// flag.CommandLine) and returns the destination struct, valid after
// fs.Parse.
func RegisterSim(fs *flag.FlagSet) *SimFlags {
	f := &SimFlags{}
	fs.IntVar(&f.Workers, "workers", 0, "simulation worker pool size (0 = ACIC_WORKERS or GOMAXPROCS)")
	fs.StringVar(&f.Gang, "gang", "auto", "group cells that share a workload into gang simulations — one Program traversal per gang: on, off, or auto (gang from 1M instructions, where the shared traversal measurably pays; output is byte-identical either way)")
	fs.IntVar(&f.GangSize, "gang-size", 10, "max schemes per gang task (with -gang)")
	fs.StringVar(&f.GangWindow, "gang-window", "auto", "gang traversal window in instructions: auto derives it from measured member footprints against the host cache budget (ACIC_LLC_BYTES overrides detection), default runs the fixed heuristic, any positive count pins it; affects only throughput, never results")
	fs.IntVar(&f.SampleSets, "sample-sets", 0, "set-sampled fast mode: simulate only this many of the 64 L1i sets (SDM-style sampling, statistics extrapolated; power of two; 0 = full simulation, the byte-identical reference)")
	fs.IntVar(&f.SampleStride, "sample-stride", 0, "set-sampled fast mode by stride: simulate one in this many set constituencies (equivalent to -sample-sets 64/stride; 0 = full simulation)")
	fs.IntVar(&f.SampleOffset, "sample-offset", 0, "sampled set constituency to simulate, in [1,stride) (with -sample-sets/-sample-stride; 0 = derive per workload from the trace digest — constituency 0 is alignment-biased and never used)")
	RegisterArtifactDir(fs, &f.ArtifactDir)
	RegisterPrepareWindow(fs, &f.PrepareWindow)
	RegisterFaultSpec(fs, &f.FaultSpec)
	return f
}

// RegisterFaultSpec declares -fault-spec on fs (shared with acic-trace
// warm). The default comes from ACIC_FAULT_SPEC so CI can fault a whole
// tier without editing invocations.
func RegisterFaultSpec(fs *flag.FlagSet, dst *string) {
	fs.StringVar(dst, "fault-spec", os.Getenv("ACIC_FAULT_SPEC"),
		"deterministic fault injection spec, e.g. \"io-err:p=0.01;corrupt-artifact:p=0.005;panic-cell:every=97;net-err:p=0.01;seed=1\" — injects store I/O errors, artifact bit flips, compute panics, and (for remote stores and the coordinator protocol) network errors that the engine must absorb; results stay byte-identical to a fault-free run (empty = no injection; default from ACIC_FAULT_SPEC)")
}

// InstallFaults installs the parsed -fault-spec process-wide (a no-op
// when empty). Call after Validate; the spec was already syntax-checked
// there.
func (f *SimFlags) InstallFaults() error {
	return faults.Install(f.FaultSpec)
}

// InstallFaultSpec validates and installs a standalone -fault-spec value,
// for CLIs (acic-worker) that register only the fault flag rather than
// the whole SimFlags set.
func InstallFaultSpec(spec string) error {
	return faults.Install(spec)
}

// RegisterPrepareWindow declares -prepare-window on fs (shared with the
// acic-trace subcommands). The default comes from ACIC_PREPARE_WINDOW so
// CI tiers can switch the prepare mode without editing every invocation.
func RegisterPrepareWindow(fs *flag.FlagSet, dst *int) {
	def := 0
	if s := os.Getenv("ACIC_PREPARE_WINDOW"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			def = n
		}
	}
	fs.IntVar(dst, "prepare-window", def,
		"stream cold workload preparation in windows of this many instructions: generation, branch annotation, successor and latency production advance together, holding O(window) instruction records instead of the whole trace; artifacts and results are byte-identical to batch mode (0 = batch prepare; default from ACIC_PREPARE_WINDOW)")
}

// ResolveSampleSets reduces the two sampling flags to one sampled-set
// count over the default 64-set geometry (0 = sampling off). Only one of
// the two flags may be given.
func (f *SimFlags) ResolveSampleSets() (int, error) {
	switch {
	case f.SampleSets != 0 && f.SampleStride != 0:
		return 0, fmt.Errorf("-sample-sets and -sample-stride are two spellings of one knob; give only one")
	case f.SampleStride != 0:
		if f.SampleStride < 0 || f.SampleStride > DefaultL1Sets || DefaultL1Sets%f.SampleStride != 0 {
			return 0, fmt.Errorf("-sample-stride must be a power of two in [1,%d], got %d", DefaultL1Sets, f.SampleStride)
		}
		if f.SampleStride == 1 {
			return 0, nil
		}
		return DefaultL1Sets / f.SampleStride, nil
	default:
		return f.SampleSets, nil
	}
}

// RegisterCacheDir declares -cache-dir on fs. It is separate from
// RegisterSim because only tools whose cells are plain (uninstrumented)
// results can reuse cached entries — acic-bench can, acic-sim's
// decision-diagnostic runs cannot.
func RegisterCacheDir(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", os.Getenv("ACIC_CACHE_DIR"), "persistent result cache directory (empty = disabled)")
}

// RegisterArtifactDir declares -artifact-dir on fs (shared with the
// acic-trace subcommands, which take none of the other simulation flags).
func RegisterArtifactDir(fs *flag.FlagSet, dst *string) {
	fs.StringVar(dst, "artifact-dir", os.Getenv("ACIC_ARTIFACT_DIR"),
		"persistent workload artifact store: prepared traces, annotated programs, successor arrays, and data-latency timelines are written once and reused by every later run (empty = disabled)")
}

// ResolveGangWindow reduces the -gang-window spelling to the
// experiments.Options.GangWindow encoding: AutoGangWindow (-1) for
// "auto", 0 for "default", or the pinned positive instruction count.
func (f *SimFlags) ResolveGangWindow() (int, error) {
	switch f.GangWindow {
	case "auto", "":
		return AutoGangWindow, nil
	case "default":
		return 0, nil
	}
	n, err := strconv.Atoi(f.GangWindow)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("-gang-window must be auto, default, or a positive instruction count (got %q)", f.GangWindow)
	}
	return n, nil
}

// Validate checks the parsed flag values.
func (f *SimFlags) Validate() error {
	switch f.Gang {
	case "on", "off", "auto":
	default:
		return fmt.Errorf("-gang must be on, off, or auto (got %q)", f.Gang)
	}
	if _, err := f.ResolveGangWindow(); err != nil {
		return err
	}
	if f.SampleOffset < 0 {
		return fmt.Errorf("-sample-offset must be >= 0, got %d", f.SampleOffset)
	}
	if f.PrepareWindow < 0 {
		return fmt.Errorf("-prepare-window must be >= 0 (0 = batch prepare), got %d", f.PrepareWindow)
	}
	if err := faults.Validate(f.FaultSpec); err != nil {
		return fmt.Errorf("-fault-spec: %w", err)
	}
	return nil
}

// GangEnabled resolves the three-state -gang flag against the trace
// length.
func (f *SimFlags) GangEnabled(n int) bool {
	switch f.Gang {
	case "on":
		return true
	case "off":
		return false
	default:
		return n >= GangAutoThreshold
	}
}

// SuiteGangSize returns the experiments.Suite.GangSize to configure: the
// flag value when gang execution is enabled for trace length n, else 0.
func (f *SimFlags) SuiteGangSize(n int) int {
	if f.GangEnabled(n) && f.GangSize > 1 {
		return f.GangSize
	}
	return 0
}
