// Command acic-trace generates, saves, loads, and characterizes synthetic
// instruction traces.
//
// Usage:
//
//	acic-trace -list                                  # available profiles
//	acic-trace -workload tpcc -n 500000 -o tpcc.actr  # generate & save
//	acic-trace -i tpcc.actr -stats                    # load & characterize
//	acic-trace -workload web-search -stats            # generate & characterize
package main

import (
	"flag"
	"fmt"
	"os"

	"acic/internal/analysis"
	"acic/internal/stats"
	"acic/internal/trace"
	"acic/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "", "profile to generate")
		n       = flag.Int("n", 500_000, "instructions to generate")
		out     = flag.String("o", "", "write binary trace to this path")
		in      = flag.String("i", "", "read binary trace from this path")
		list    = flag.Bool("list", false, "list profiles and exit")
		doStats = flag.Bool("stats", false, "print trace characterization")
	)
	flag.Parse()

	if *list {
		t := &stats.Table{Header: []string{"profile", "suite", "paper MPKI"}}
		for _, p := range workload.Datacenter() {
			t.AddRow(p.Name, "datacenter", fmt.Sprintf("%.1f", p.PaperMPKI))
		}
		for _, p := range workload.SPEC() {
			t.AddRow(p.Name, "spec2017int", fmt.Sprintf("%.1f", p.PaperMPKI))
		}
		fmt.Print(t.String())
		return
	}

	var tr *trace.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *name != "":
		p, ok := workload.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *name)
			os.Exit(1)
		}
		tr = workload.Generate(p, *n)
	default:
		fmt.Fprintln(os.Stderr, "need -workload or -i (or -list)")
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.Write(f, tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d instructions\n", *out, tr.Len())
	}

	if *doStats || *out == "" {
		characterize(tr)
	}
}

func characterize(tr *trace.Trace) {
	fmt.Printf("trace %q: %d instructions\n", tr.Name, tr.Len())
	fmt.Printf("code footprint: %d blocks (%.1f KB)\n", tr.Footprint(), float64(tr.Footprint())*64/1024)

	classes := map[string]int{}
	for i := range tr.Insts {
		classes[tr.Insts[i].Class.String()]++
	}
	t := &stats.Table{Header: []string{"class", "count", "fraction"}}
	for _, c := range []string{"alu", "load", "store", "br", "jmp", "call", "ret", "ind"} {
		if classes[c] > 0 {
			t.AddRow(c, classes[c], stats.Percent(float64(classes[c])/float64(tr.Len())))
		}
	}
	fmt.Print(t.String())

	refs := analysis.InstBlockRefs(tr)
	dists := analysis.ReuseDistances(refs)
	fr := analysis.Distribution(dists, analysis.Fig1aEdges)
	labels := []string{"0", "1-16", "16-512", "512-1024", "1024-10000", ">10000"}
	rt := &stats.Table{Header: []string{"reuse distance", "fraction"}}
	for i, f := range fr {
		rt.AddRow(labels[i], stats.Percent(f))
	}
	fmt.Print(rt.String())

	bs := analysis.Bursts(tr.BlockAccesses(), 16)
	fmt.Printf("bursts: %d, mean length %.2f accesses, %.1f%% of accesses intra-burst\n",
		bs.Bursts, bs.MeanLength, bs.FracInBurst*100)
}
