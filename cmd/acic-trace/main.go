// Command acic-trace generates, saves, loads, and characterizes synthetic
// instruction traces, and manages the persistent workload artifact store
// that acic-bench and acic-sim prepare through.
//
// Usage:
//
//	acic-trace -list                                  # available profiles
//	acic-trace -workload tpcc -n 500000 -o tpcc.actr  # generate & save
//	acic-trace -i tpcc.actr -stats                    # load & characterize
//	acic-trace -workload web-search -stats            # generate & characterize
//
// Subcommands:
//
//	acic-trace warm -artifact-dir DIR [-n N] [-workloads a,b] [-workers W]
//	    materialize every prepare-stage artifact (trace, annotated
//	    program, successor array, data-latency timeline) for the named
//	    workloads (default: all datacenter + SPEC profiles), so later
//	    acic-bench / acic-sim runs skip the prepare phase entirely
//	acic-trace inspect PATH...
//	    describe trace/artifact container files (a directory inspects
//	    every .actr file in it): codec version, name, sections, sizes
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"acic/cmd/internal/cliutil"
	"acic/internal/analysis"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
	"acic/internal/faults"
	"acic/internal/stats"
	"acic/internal/trace"
	"acic/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "warm":
			runWarm(os.Args[2:])
			return
		case "inspect":
			runInspect(os.Args[2:])
			return
		}
	}
	var (
		name    = flag.String("workload", "", "profile to generate")
		n       = flag.Int("n", 500_000, "instructions to generate")
		out     = flag.String("o", "", "write binary trace to this path")
		in      = flag.String("i", "", "read binary trace from this path")
		list    = flag.Bool("list", false, "list profiles and exit")
		doStats = flag.Bool("stats", false, "print trace characterization")
	)
	flag.Parse()

	if *list {
		t := &stats.Table{Header: []string{"profile", "suite", "paper MPKI"}}
		for _, p := range workload.Datacenter() {
			t.AddRow(p.Name, "datacenter", fmt.Sprintf("%.1f", p.PaperMPKI))
		}
		for _, p := range workload.SPEC() {
			t.AddRow(p.Name, "spec2017int", fmt.Sprintf("%.1f", p.PaperMPKI))
		}
		fmt.Print(t.String())
		return
	}

	var tr *trace.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *name != "":
		p, ok := workload.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *name)
			os.Exit(1)
		}
		tr = workload.Generate(p, *n)
	default:
		fmt.Fprintln(os.Stderr, "need -workload or -i (or -list)")
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.Write(f, tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d instructions\n", *out, tr.Len())
	}

	if *doStats || *out == "" {
		characterize(tr)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acic-trace: "+format+"\n", args...)
	os.Exit(1)
}

// runWarm materializes every prepare-stage artifact for the requested
// workloads into the store, so later simulation runs start warm.
func runWarm(args []string) {
	fs := flag.NewFlagSet("acic-trace warm", flag.ExitOnError)
	var artifactDir string
	cliutil.RegisterArtifactDir(fs, &artifactDir)
	n := fs.Int("n", 0, "trace length in instructions (0 = ACIC_BENCH_N or 400000; must match the simulation runs to be reused)")
	names := fs.String("workloads", "", "comma-separated profile names (empty = all datacenter + SPEC profiles)")
	workers := fs.Int("workers", 0, "preparation worker pool size (0 = ACIC_WORKERS or GOMAXPROCS)")
	var prepareWindow int
	cliutil.RegisterPrepareWindow(fs, &prepareWindow)
	var faultSpec string
	cliutil.RegisterFaultSpec(fs, &faultSpec)
	fs.Parse(args)
	if prepareWindow < 0 {
		fail("-prepare-window must be >= 0, got %d", prepareWindow)
	}
	if err := faults.Validate(faultSpec); err != nil {
		fail("-fault-spec: %v", err)
	}
	if err := faults.Install(faultSpec); err != nil {
		fail("-fault-spec: %v", err)
	}
	if artifactDir == "" {
		fail("warm needs -artifact-dir (or ACIC_ARTIFACT_DIR)")
	}

	var apps []string
	if *names != "" {
		apps = strings.Split(*names, ",")
	} else {
		for _, p := range workload.Datacenter() {
			apps = append(apps, p.Name)
		}
		for _, p := range workload.SPEC() {
			apps = append(apps, p.Name)
		}
	}

	pl, err := experiments.NewPipeline(experiments.PipelineConfig{
		N: *n, Dir: artifactDir, Pool: engine.NewPool(*workers), Window: prepareWindow,
	})
	if err != nil {
		// Warming exists only to fill the store; a store that cannot be
		// opened is fatal here, unlike in the simulation tools.
		fail("%v", err)
	}
	start := time.Now()
	if err := pl.Warm(apps...); err != nil {
		fail("%v", err)
	}
	elapsed := time.Since(start)

	t := &stats.Table{Header: []string{"stage", "regenerated", "from store"}}
	for _, st := range pl.Stats() {
		t.AddRow(st.Stage, st.Computed, st.FromStore)
	}
	fmt.Print(t.String())
	if streamed := pl.Streamed(); streamed > 0 {
		fmt.Printf("streamed prepare: %d workloads in windows of %d instructions (peak memory O(window))\n",
			streamed, prepareWindow)
	}
	fmt.Printf("warmed %d workloads in %.1fs (store: %s)\n", len(apps), elapsed.Seconds(), artifactDir)

	// The warmed programs are in memory, so the adaptive gang-window
	// derivation (-gang-window auto) can be previewed for free: measured
	// shared bytes per instruction and the window a ten-member gang of
	// default schemes would run under against the detected budget.
	const previewMembers = 10
	wt := &stats.Table{Header: []string{"workload", "bytes/instr", "auto window (10 members)"}}
	for _, app := range apps {
		w, err := pl.Workload(app)
		if err != nil {
			fail("%v", err)
		}
		wt.AddRow(app, w.Prog.GangBytesPerInstr(), experiments.GangWindowEstimate(w, previewMembers))
	}
	fmt.Print(wt.String())
	fmt.Printf("gang windows derived against host cache budget %d MiB (override: ACIC_LLC_BYTES)\n",
		engine.LLCBytes()>>20)
	if snap := faults.Snapshot(); faultSpec != "" || snap.IOErrs+snap.Corruptions+snap.Panics > 0 {
		fmt.Printf("faults: injected %d io / %d corrupt / %d panic; recovered %d retries, %d stream-fallbacks, %d quarantined\n",
			snap.IOErrs, snap.Corruptions, snap.Panics,
			pl.Retries(), pl.StreamFallbacks(), pl.Quarantined())
	}
}

// runInspect describes trace/artifact container files.
func runInspect(args []string) {
	if len(args) == 0 {
		fail("inspect needs file or directory arguments")
	}
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			fail("%v", err)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.actr"))
		if err != nil {
			fail("%v", err)
		}
		files = append(files, matches...)
		describeQuarantine(arg)
	}
	if len(files) == 0 {
		fail("no .actr files to inspect")
	}
	// A store with one corrupt entry is exactly what inspect exists to
	// diagnose: report per-file errors and keep going, failing at the end.
	bad := 0
	for _, f := range files {
		if err := describeFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "acic-trace: %s: %v\n", f, err)
			bad++
		}
	}
	if bad > 0 {
		fail("%d of %d files unreadable", bad, len(files))
	}
}

// describeQuarantine summarizes a store directory's quarantine/ subdir:
// entries the engine moved aside as undecodable (and regenerated), each
// with the reason its .reason companion recorded. Silent when the store
// has never quarantined anything.
func describeQuarantine(dir string) {
	qdir := filepath.Join(dir, engine.QuarantineDirName)
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) == 0 {
		return
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".reason") {
			continue
		}
		n++
		reason := "(no reason file)"
		if data, err := os.ReadFile(filepath.Join(qdir, e.Name()+".reason")); err == nil {
			// The "error:" line carries the decode failure; fall back to
			// the whole file when the format is unexpected.
			reason = strings.TrimSpace(string(data))
			if _, after, ok := strings.Cut(string(data), "error: "); ok {
				reason, _, _ = strings.Cut(after, "\n")
			}
		}
		fmt.Printf("%s: quarantined  %s\n", filepath.Join(qdir, e.Name()), reason)
	}
	if n > 0 {
		fmt.Printf("%s: %d quarantined entries (undecodable; regenerated on demand — delete the directory once diagnosed)\n", qdir, n)
	}
}

// describeFile prints one container's layout: name, sections, sizes, and
// element counts where the payload encoding carries one. Legacy v1 trace
// files are decoded through trace.Read and described as such.
func describeFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	name, secs, err := trace.ReadContainer(bytes.NewReader(data))
	if err != nil {
		tr, v1err := trace.Read(bytes.NewReader(data))
		if v1err != nil {
			return err
		}
		fmt.Printf("%s: legacy v1 trace %q, %d instructions, %d bytes\n", path, tr.Name, tr.Len(), len(data))
		return nil
	}
	fmt.Printf("%s: v2 container %q, %d sections, %d bytes\n", path, name, len(secs), len(data))
	var instCount, instBytes uint64
	for _, s := range secs {
		fmt.Printf("  %s  %8d bytes%s\n", s.Tag, len(s.Data), sectionDetail(s))
		if s.Tag == trace.SecInsts || s.Tag == trace.SecInstsZ {
			if count, n := binary.Uvarint(s.Data); n > 0 {
				instCount += count
				instBytes += uint64(len(s.Data))
			}
		}
	}
	// Instruction sections may be chunked (one per streamed prepare
	// window); summarize the whole stream's density in one line.
	if instCount > 0 {
		raw := instCount * instRecordBytes
		fmt.Printf("  instructions: %d in %d encoded bytes = %.2f bytes/inst (raw %d bytes, %.1fx packed)\n",
			instCount, instBytes, float64(instBytes)/float64(instCount), raw, float64(raw)/float64(instBytes))
	}
	return nil
}

// instRecordBytes is the in-memory size of one trace.Inst record — the
// "raw" side of the inspect output's packing ratios.
const instRecordBytes = 32

// sectionRawWidth returns the decoded per-element width of a section's
// payload, or 0 when the encoding carries no element count.
func sectionRawWidth(tag string) uint64 {
	switch tag {
	case trace.SecInsts, trace.SecInstsZ:
		return instRecordBytes
	case trace.SecBlocks, trace.SecNextAt:
		return 8
	case trace.SecDataLat:
		return 2
	case trace.SecAnnot, trace.SecDesc:
		return 1
	}
	return 0
}

// sectionDetail decodes the element count of the known section encodings
// and reports the raw (decoded) size next to the encoded one.
func sectionDetail(s trace.Section) string {
	var count uint64
	switch s.Tag {
	case trace.SecInsts, trace.SecInstsZ, trace.SecBlocks, trace.SecNextAt, trace.SecDataLat:
		c, n := binary.Uvarint(s.Data)
		if n <= 0 {
			return ""
		}
		count = c
	case trace.SecAnnot, trace.SecDesc:
		count = uint64(len(s.Data))
	default:
		return ""
	}
	raw := count * sectionRawWidth(s.Tag)
	if raw == 0 || len(s.Data) == 0 {
		return fmt.Sprintf("  %d entries", count)
	}
	return fmt.Sprintf("  %d entries, raw %d bytes, %.2fx packed", count, raw, float64(raw)/float64(len(s.Data)))
}

func characterize(tr *trace.Trace) {
	fmt.Printf("trace %q: %d instructions\n", tr.Name, tr.Len())
	fmt.Printf("code footprint: %d blocks (%.1f KB)\n", tr.Footprint(), float64(tr.Footprint())*64/1024)

	classes := map[string]int{}
	for i := range tr.Insts {
		classes[tr.Insts[i].Class.String()]++
	}
	t := &stats.Table{Header: []string{"class", "count", "fraction"}}
	for _, c := range []string{"alu", "load", "store", "br", "jmp", "call", "ret", "ind"} {
		if classes[c] > 0 {
			t.AddRow(c, classes[c], stats.Percent(float64(classes[c])/float64(tr.Len())))
		}
	}
	fmt.Print(t.String())

	refs := analysis.InstBlockRefs(tr)
	dists := analysis.ReuseDistances(refs)
	fr := analysis.Distribution(dists, analysis.Fig1aEdges)
	labels := []string{"0", "1-16", "16-512", "512-1024", "1024-10000", ">10000"}
	rt := &stats.Table{Header: []string{"reuse distance", "fraction"}}
	for i, f := range fr {
		rt.AddRow(labels[i], stats.Percent(f))
	}
	fmt.Print(rt.String())

	bs := analysis.Bursts(tr.BlockAccesses(), 16)
	fmt.Printf("bursts: %d, mean length %.2f accesses, %.1f%% of accesses intra-burst\n",
		bs.Bursts, bs.MeanLength, bs.FracInBurst*100)
}
