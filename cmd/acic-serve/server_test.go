package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"acic/internal/api"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
	"acic/internal/faults"
)

const (
	testN    = 12_000
	testApp  = "media-streaming"
	testApp2 = "sibench"
)

// newTestSuite builds a suite with the fixed test configuration; every
// suite built here is byte-identical to every other, which is what the
// serve-vs-CLI diffs rely on.
func newTestSuite(t *testing.T) *experiments.Suite {
	t.Helper()
	s := experiments.NewSuite(testN)
	s.Apps = []string{testApp, testApp2}
	s.Workers = 2
	if err := s.CacheError(); err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestServer wires a server over a fresh test suite and serves it
// from an httptest listener.
func newTestServer(t *testing.T, breaker *engine.Breaker, faultBudget int64) (*server, string) {
	t.Helper()
	if breaker == nil {
		breaker = engine.NewBreaker(0, 0)
	}
	srv := newServer(newTestSuite(t), breaker, faultBudget)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

func get(t *testing.T, url string, headers ...string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(headers); i += 2 {
		req.Header.Set(headers[i], headers[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func body(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeFiguresByteIdentical is the tentpole invariant: for every
// registry experiment, the /v1/figures/{slug} body equals the output
// e.Run produces on an identically-configured local suite — the daemon
// adds transport, never bytes.
func TestServeFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry simulation grid")
	}
	ref := newTestSuite(t)
	_, url := newTestServer(t, nil, 0)
	for _, e := range experiments.Registry() {
		want, err := e.Run(ref)
		if err != nil {
			t.Fatalf("reference %s: %v", e.Slug, err)
		}
		resp := get(t, url+"/v1/figures/"+e.Slug)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/figures/%s = %s", e.Slug, resp.Status)
		}
		if got := body(t, resp); got != want {
			t.Errorf("%s: served bytes differ from CLI render\n--- got ---\n%s--- want ---\n%s", e.Slug, got, want)
		}
	}
}

// TestServeFigureETag304: a warm re-query with the figure's ETag costs
// no render — 304, empty body.
func TestServeFigureETag304(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	srv, url := newTestServer(t, nil, 0)
	resp := get(t, url+"/v1/figures/table3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first GET = %s", resp.Status)
	}
	etag := resp.Header.Get("ETag")
	body(t, resp)
	if etag == "" {
		t.Fatal("no ETag on figure response")
	}
	computed, _, _ := srv.suite.Stats()
	resp = get(t, url+"/v1/figures/table3", "If-None-Match", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %s, want 304", resp.Status)
	}
	if b := body(t, resp); b != "" {
		t.Errorf("304 carried a body: %q", b)
	}
	if after, _, _ := srv.suite.Stats(); after != computed {
		t.Errorf("304 re-query computed %d new cells", after-computed)
	}
}

// TestServeCellsETag304: same contract on the cells endpoint, plus the
// response echoes its ETag in the JSON body.
func TestServeCellsETag304(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	_, url := newTestServer(t, nil, 0)
	q := url + "/v1/cells?app=" + testApp + "&scheme=lru,acic"
	resp := get(t, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET cells = %s", resp.Status)
	}
	etag := resp.Header.Get("ETag")
	var cr api.CellsResponse
	if err := json.Unmarshal([]byte(body(t, resp)), &cr); err != nil {
		t.Fatal(err)
	}
	if etag == "" || cr.ETag != etag {
		t.Fatalf("ETag header %q vs body %q", etag, cr.ETag)
	}
	if len(cr.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cr.Cells))
	}
	for _, c := range cr.Cells {
		if c.Error != nil {
			t.Fatalf("cell %s failed: %+v", c.Cell, c.Error)
		}
		if c.Key == "" || len(c.Result) == 0 {
			t.Fatalf("cell %s has no key/result", c.Cell)
		}
	}
	resp = get(t, q, "If-None-Match", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %s, want 304", resp.Status)
	}
	body(t, resp)
}

// TestServeCellsCoalesce: concurrent identical cell queries coalesce
// through the suite's per-cell singleflight — the simulation runs once,
// every response carries the same result.
func TestServeCellsCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	srv, url := newTestServer(t, nil, 0)
	q := url + "/v1/cells?app=" + testApp + "&scheme=lru"
	const clients = 8
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(q)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: %s", i, resp.Status)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d saw different bytes", i)
		}
	}
	if computed, _, _ := srv.suite.Stats(); computed != 1 {
		t.Errorf("computed %d cells for %d identical queries, want 1", computed, clients)
	}
}

// TestServeBreakerTripsOnDeterministicCell: a cell that fails
// deterministically (unknown scheme) trips its key after the threshold;
// further queries answer circuit_open without touching the engine, and
// the cooldown admits a probe.
func TestServeBreakerTripsOnDeterministicCell(t *testing.T) {
	breaker := engine.NewBreaker(2, time.Hour)
	_, url := newTestServer(t, breaker, 0)
	q := url + "/v1/cells?app=" + testApp + "&scheme=no-such-scheme"
	codes := make([]string, 3)
	for i := range codes {
		resp := get(t, q)
		var cr api.CellsResponse
		if err := json.Unmarshal([]byte(body(t, resp)), &cr); err != nil {
			t.Fatal(err)
		}
		if len(cr.Cells) != 1 || cr.Cells[0].Error == nil {
			t.Fatalf("query %d: expected one failed cell, got %+v", i, cr.Cells)
		}
		codes[i] = cr.Cells[0].Error.Code
	}
	if codes[0] != api.CodeCellError || codes[1] != api.CodeCellError {
		t.Errorf("pre-trip codes = %v, want cell_error", codes[:2])
	}
	if codes[2] != api.CodeCircuitOpen {
		t.Errorf("post-trip code = %q, want %q", codes[2], api.CodeCircuitOpen)
	}
	if n := breaker.OpenCount(); n != 1 {
		t.Errorf("OpenCount = %d, want 1", n)
	}
}

// TestServeFigureBreaker: figures trip the same way — a registry slug
// whose render fails deterministically (unknown workload in Apps) opens
// the exp: key and later queries get 503 circuit_open.
func TestServeFigureBreaker(t *testing.T) {
	s := experiments.NewSuite(testN)
	s.Apps = []string{"no-such-app"}
	s.Workers = 1
	srv := newServer(s, engine.NewBreaker(1, time.Hour), 0)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	resp := get(t, ts.URL+"/v1/figures/table3")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("broken figure = %s, want 500", resp.Status)
	}
	var env api.Envelope
	if err := json.Unmarshal([]byte(body(t, resp)), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err == nil || env.Err.Code != api.CodeCellError {
		t.Fatalf("broken figure envelope = %+v", env.Err)
	}

	resp = get(t, ts.URL+"/v1/figures/table3")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped figure = %s, want 503", resp.Status)
	}
	if err := json.Unmarshal([]byte(body(t, resp)), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err == nil || env.Err.Code != api.CodeCircuitOpen {
		t.Fatalf("tripped figure envelope = %+v", env.Err)
	}
}

// TestServeFaultBudget: with heavy injected faults and a one-recovery
// budget, the request is refused with fault_budget_exhausted rather
// than silently absorbing unbounded recovery work.
func TestServeFaultBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted simulation")
	}
	if err := faults.Install("panic-cell:every=2;seed=3"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { faults.Install("") })
	_, url := newTestServer(t, nil, 1)
	resp := get(t, url+"/v1/cells?app="+testApp+","+testApp2+"&scheme=lru,acic,opt")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted request = %s, want 503", resp.Status)
	}
	var env api.Envelope
	if err := json.Unmarshal([]byte(body(t, resp)), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err == nil || env.Err.Code != api.CodeFaultBudget || !env.Err.Transient {
		t.Fatalf("fault-budget envelope = %+v", env.Err)
	}
	// The engine still recovered: once the injector is gone, the same
	// query succeeds from the warm memo.
	faults.Install("")
	resp = get(t, url+"/v1/cells?app="+testApp+","+testApp2+"&scheme=lru,acic,opt")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault request = %s, want 200; body: %s", resp.Status, body(t, resp))
	}
	body(t, resp)
}

// TestServeExperimentsMatchesRegistry: /v1/experiments serves exactly
// the registry slugs, in order.
func TestServeExperimentsMatchesRegistry(t *testing.T) {
	_, url := newTestServer(t, nil, 0)
	resp := get(t, url+"/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET experiments = %s", resp.Status)
	}
	var er api.ExperimentsResponse
	if err := json.Unmarshal([]byte(body(t, resp)), &er); err != nil {
		t.Fatal(err)
	}
	reg := experiments.Registry()
	if len(er.Experiments) != len(reg) {
		t.Fatalf("served %d experiments, registry has %d", len(er.Experiments), len(reg))
	}
	for i, e := range reg {
		if er.Experiments[i].Slug != e.Slug || er.Experiments[i].Description != e.Desc {
			t.Errorf("entry %d = %+v, want {%s %s}", i, er.Experiments[i], e.Slug, e.Desc)
		}
	}
}

// TestServeErrorEnvelopes pins the error contract across the endpoints:
// unknown figures 404, missing cell params 400, wrong verbs 405,
// unversioned paths 404 — all api.Envelope with the right code.
func TestServeErrorEnvelopes(t *testing.T) {
	_, url := newTestServer(t, nil, 0)
	cases := []struct {
		method, path string
		wantStatus   int
		wantCode     string
	}{
		{http.MethodGet, "/v1/figures/no-such-figure", http.StatusNotFound, api.CodeNotFound},
		{http.MethodGet, "/v1/cells", http.StatusBadRequest, api.CodeBadRequest},
		{http.MethodGet, "/v1/cells?scheme=lru", http.StatusBadRequest, api.CodeBadRequest},
		{http.MethodPost, "/v1/experiments", http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
		{http.MethodGet, "/api/config", http.StatusNotFound, api.CodeNotFound},
		{http.MethodGet, "/", http.StatusNotFound, api.CodeNotFound},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, url+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
		var env api.Envelope
		if err := json.Unmarshal([]byte(body(t, resp)), &env); err != nil {
			t.Fatalf("%s %s: body is not an envelope: %v", tc.method, tc.path, err)
		}
		if env.Err == nil || env.Err.Code != tc.wantCode {
			t.Errorf("%s %s code = %+v, want %s", tc.method, tc.path, env.Err, tc.wantCode)
		}
	}
}

// TestServeHealthzAndStats: the two observability endpoints answer with
// the versioned shapes.
func TestServeHealthzAndStats(t *testing.T) {
	_, url := newTestServer(t, nil, 0)
	var h api.Health
	if err := json.Unmarshal([]byte(body(t, get(t, url+"/v1/healthz"))), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != api.Version {
		t.Errorf("healthz = %+v", h)
	}
	var st api.Stats
	if err := json.Unmarshal([]byte(body(t, get(t, url+"/v1/stats"))), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != api.Version || st.N != testN || st.Requests < 1 {
		t.Errorf("stats = %+v", st)
	}
	var fs experiments.FaultStats
	if err := json.Unmarshal(st.Faults, &fs); err != nil {
		t.Errorf("stats.faults is not a FaultStats: %v", err)
	}
}

// TestPreloadUnknownSlugFails: -preload validates slugs through the
// registry lookup instead of silently warming nothing.
func TestPreloadUnknownSlugFails(t *testing.T) {
	srv, _ := newTestServer(t, nil, 0)
	if err := runPreload(srv, "no-such-exp"); err == nil {
		t.Error("preload of an unknown slug succeeded")
	}
	if err := runPreload(srv, ""); err != nil {
		t.Errorf("empty preload: %v", err)
	}
}
