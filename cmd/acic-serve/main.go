// Command acic-serve is the simulation-as-a-service daemon: one
// long-lived process holds the warm artifact store, prepared Programs,
// and the per-cell result memo, and answers HTTP/JSON queries for grid
// cells, rendered figures, and the experiment registry under the
// versioned /v1/ API (internal/api, DESIGN.md §15). Every consumer of
// the engine used to pay cold prepare per process; against a serve node
// the first query warms the pipeline and every later one reads memory
// or the content-addressed store.
//
//	acic-serve -listen 127.0.0.1:9322 -n 400000 -preload grid &
//	curl 'http://127.0.0.1:9322/v1/cells?app=web-search&scheme=acic,lru'
//	curl http://127.0.0.1:9322/v1/figures/fig10
//
// Endpoints:
//
//	GET /v1/cells?app=&scheme=&prefetcher= — grid cell results; comma
//	    lists cross-product, same-app cells ride one gang batch
//	GET /v1/figures/{name}  — rendered experiment output, byte-identical
//	    to acic-bench's figure body for the same configuration
//	GET /v1/experiments     — the registry (slug + description)
//	GET /v1/healthz         — liveness
//	GET /v1/stats           — engine/gang/fault/occupancy counters
//
// Cell and figure responses carry strong ETags derived from the
// content-addressed result-cache keys (experiments/keys.go), so
// If-None-Match re-queries answer 304 without simulating and any HTTP
// cache layer can front the daemon. -store-url points the suite at a
// PR 9 shared store server instead of local directories, letting a
// serve node front a distributed grid's results. Per-request fault
// budgets (-fault-budget) and a per-cell circuit breaker
// (-breaker-threshold/-breaker-cooldown) keep a degraded store or a
// deterministically failing cell from burning compute on every query.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"acic/cmd/internal/cliutil"
	"acic/internal/api"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8091", "address to serve the /v1/ API on (port 0 = ephemeral, printed at startup)")
		n        = flag.Int("n", 0, "trace length in instructions (0 = ACIC_BENCH_N or 400000)")
		apps     = flag.String("apps", "", "restrict datacenter apps (comma-separated)")
		preload  = flag.String("preload", "", "warm at startup: 'grid' (the paper's scheme grid under fdp), 'all' (every registry experiment), or a comma-separated slug list; serving starts immediately, the preload fills the memo in the background")
		storeURL = flag.String("store-url", "", "shared store server URL for results and artifacts (fronts a distributed grid's store; overrides -cache-dir/-artifact-dir)")
		budget   = flag.Int64("fault-budget", 0, "per-request fault budget: refuse a request (503 fault_budget_exhausted) whose service consumed more than this many fault recoveries (0 = unlimited)")
		brkN     = flag.Int("breaker-threshold", engine.DefaultBreakerThreshold, "circuit breaker: consecutive deterministic cell failures before the cell's key trips open")
		brkCool  = flag.Duration("breaker-cooldown", engine.DefaultBreakerCooldown, "circuit breaker: how long a tripped key refuses before admitting a half-open probe")
		sim      = cliutil.RegisterSim(flag.CommandLine)
		cacheDir = cliutil.RegisterCacheDir(flag.CommandLine)
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "acic-serve: "+format+"\n", args...)
		os.Exit(1)
	}
	if err := sim.Validate(); err != nil {
		fail("%v", err)
	}
	if err := sim.InstallFaults(); err != nil {
		fail("-fault-spec: %v", err)
	}
	sampleSets, err := sim.ResolveSampleSets()
	if err != nil {
		fail("%v", err)
	}
	gangWindow, _ := sim.ResolveGangWindow() // validated above

	ctx, stopSignals := cliutil.InterruptContext()
	defer stopSignals()

	suite := experiments.NewSuite(*n)
	suite.Context = ctx
	suite.Workers = sim.Workers
	suite.GangSize = sim.SuiteGangSize(suite.N)
	suite.GangWindow = gangWindow
	suite.SampleSets = sampleSets
	suite.SampleOffset = sim.SampleOffset
	suite.PrepareWindow = sim.PrepareWindow
	suite.CacheDir = *cacheDir
	suite.ArtifactDir = sim.ArtifactDir
	if *storeURL != "" {
		suite.CacheDir, suite.ArtifactDir = *storeURL, *storeURL
	}
	if *apps != "" {
		suite.Apps = strings.Split(*apps, ",")
	}
	if *progress {
		suite.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, label)
		}
	}
	if err := suite.CacheError(); err != nil {
		fail("%v", err)
	}

	srv := newServer(suite, engine.NewBreaker(*brkN, *brkCool), *budget)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("-listen %s: %v", *listen, err)
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "acic-serve: serving http://%s%s (n=%d)\n", ln.Addr(), api.Prefix, suite.N)

	// Preload in the background: serving is already up, and any query
	// arriving mid-preload simply coalesces with it through the suite's
	// per-cell singleflight.
	go func() {
		if err := runPreload(srv, *preload); err != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "acic-serve: preload: %v\n", err)
			return
		}
		if *preload != "" && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "acic-serve: preload done")
		}
	}()

	select {
	case <-ctx.Done():
		// Graceful drain: in-flight requests get a bounded grace period;
		// cells already simulating run to completion (suite.Context
		// cancels only work that has not started).
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
		fmt.Fprintln(os.Stderr, "acic-serve: interrupted, drained")
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fail("serve: %v", err)
		}
	}
}

// runPreload warms the suite per the -preload spelling. "grid" computes
// the paper's datacenter scheme grid under fdp (the cells behind Figs
// 10–17); "all" renders every registry experiment; a comma list renders
// those slugs. Rendering through the server's figure group means later
// /v1/figures queries for the same slugs are pure memo hits.
func runPreload(s *server, spec string) error {
	switch spec {
	case "":
		return nil
	case "grid":
		cells := experiments.CrossCells(s.suite.AppNames(),
			append([]string{experiments.Baseline}, experiments.Fig10Schemes...), "fdp")
		return s.suite.Require(cells...)
	case "all":
		return preloadSlugs(s, experiments.ExperimentSlugs())
	default:
		return preloadSlugs(s, strings.Split(spec, ","))
	}
}

func preloadSlugs(s *server, slugs []string) error {
	var errs []error
	for _, slug := range slugs {
		slug = strings.TrimSpace(slug)
		if _, ok := experiments.LookupExperiment(slug); !ok {
			return fmt.Errorf("unknown experiment %q (see acic-bench -list)", slug)
		}
		if _, err := s.figures.Get(slug); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", slug, err))
		}
	}
	return errors.Join(errs...)
}
