package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"acic/internal/api"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
)

// server answers the /v1/ query API from one warm Suite: the artifact
// store, prepared Programs, and the per-cell result memo live for the
// process, so the first client pays the cold prepare and every later
// query — cells or whole figures — is served from memory or the
// content-addressed store. Figures are memoized in their own
// singleflight group keyed by slug, so concurrent identical figure
// queries render once.
type server struct {
	suite   *experiments.Suite
	figures *engine.Group[string, string]
	breaker *engine.Breaker

	// faultBudget bounds the fault-recovery work (FaultStats.Recovered
	// delta) one request may consume before it is refused with
	// fault_budget_exhausted; 0 disables the budget. Recovery counters
	// are process-wide, so under concurrent load a request may be
	// charged for a neighbor's recovery — the budget is a degradation
	// tripwire, not precise accounting (DESIGN.md §15).
	faultBudget int64

	requests atomic.Int64
	started  time.Time
	gridKey  func() string
}

func newServer(suite *experiments.Suite, breaker *engine.Breaker, faultBudget int64) *server {
	s := &server{
		suite:       suite,
		breaker:     breaker,
		faultBudget: faultBudget,
		started:     time.Now(),
		gridKey:     sync.OnceValue(suite.GridKey),
	}
	// Figure renders run inline on the claiming request goroutine
	// (Group.Get); the group exists for its memo and singleflight, not
	// for scheduling, so it gets a minimal pool of its own rather than
	// competing for the suite's simulation slots.
	s.figures = engine.NewGroup(engine.NewPool(1), func(slug string) (string, error) {
		e, ok := experiments.LookupExperiment(slug)
		if !ok {
			return "", &api.Error{Code: api.CodeNotFound, Message: "no such experiment: " + slug}
		}
		return e.Run(suite)
	})
	return s
}

// handler builds the /v1/ mux. Method checks are by hand so a wrong
// verb gets the api envelope rather than ServeMux's plain-text 405.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	get := func(path string, h http.HandlerFunc) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			s.requests.Add(1)
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				api.WriteError(w, http.StatusMethodNotAllowed, &api.Error{
					Code: api.CodeMethodNotAllowed, Message: r.URL.Path + " requires GET"})
				return
			}
			h(w, r)
		})
	}
	get(api.Prefix+"healthz", s.handleHealthz)
	get(api.Prefix+"stats", s.handleStats)
	get(api.Prefix+"experiments", s.handleExperiments)
	get(api.Prefix+"figures/{name}", s.handleFigure)
	get(api.Prefix+"cells", s.handleCells)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, http.StatusNotFound, &api.Error{
			Code: api.CodeNotFound, Message: "no such endpoint: " + r.URL.Path + " (the API lives under " + api.Prefix + ")"})
	})
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	api.WriteJSON(w, http.StatusOK, api.Health{Status: "ok", Version: api.Version})
}

func (s *server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	reg := experiments.Registry()
	resp := api.ExperimentsResponse{Experiments: make([]api.ExperimentInfo, len(reg))}
	for i, e := range reg {
		resp.Experiments[i] = api.ExperimentInfo{Slug: e.Slug, Description: e.Desc}
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	computed, fromCache, workloads := s.suite.Stats()
	running, idle, queued := s.suite.Occupancy()
	gs := s.suite.GangStats()
	faultsJSON, _ := json.Marshal(s.suite.FaultStats())
	api.WriteJSON(w, http.StatusOK, api.Stats{
		Version:           api.Version,
		N:                 s.suite.N,
		Apps:              s.suite.Apps,
		SampleSets:        s.suite.SampleSets,
		GangSize:          s.suite.GangSize,
		Requests:          s.requests.Load(),
		CellsComputed:     int(computed),
		CellsFromCache:    int(fromCache),
		WorkloadsPrepared: int(workloads),
		Occupancy:         api.Occupancy{Running: running, Idle: idle, Queued: queued},
		Gangs: api.GangStats{Gangs: gs.Gangs, Cells: gs.Cells, Mixed: gs.Mixed,
			MaxWidth: int(gs.MaxWidth), Window: int(gs.Window)},
		Faults:        faultsJSON,
		BreakersOpen:  s.breaker.OpenCount(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// etagFor derives a strong ETag from content-addressed key material:
// the keys hash everything the bytes depend on (keys.go), so equal tags
// imply byte-equal bodies and any HTTP cache layer can trust a 304.
func etagFor(material string) string {
	sum := sha256.Sum256([]byte(material))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// handleFigure serves one registry experiment's rendered output,
// byte-identical to the figure body acic-bench prints for the same
// suite configuration.
func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	slug := r.PathValue("name")
	if _, ok := experiments.LookupExperiment(slug); !ok {
		api.WriteError(w, http.StatusNotFound, &api.Error{
			Code: api.CodeNotFound, Message: "no such experiment: " + slug + " (see " + api.Prefix + "experiments)"})
		return
	}
	// The tag covers the whole grid configuration plus the figure
	// identity — checked before rendering, so a warm client's re-query
	// costs no simulation at all.
	etag := etagFor(s.gridKey() + "|exp:" + slug)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	bkey := "exp:" + slug
	if !s.breaker.Allow(bkey) {
		api.WriteError(w, http.StatusServiceUnavailable, &api.Error{
			Code: api.CodeCircuitOpen, Message: "experiment " + slug + " is circuit-broken after repeated deterministic failures"})
		return
	}
	recoveredBefore := s.suite.FaultStats().Recovered()
	out, err := s.figures.Get(slug)
	s.breaker.Record(bkey, err)
	if err != nil {
		// Drop the memoized failure so a later request (or the breaker's
		// half-open probe) re-renders instead of replaying the error.
		s.figures.Forget(slug)
		status, apiErr := http.StatusInternalServerError, &api.Error{
			Code: api.CodeCellError, Message: slug + ": " + err.Error()}
		if engine.IsTransient(err) {
			status, apiErr.Code, apiErr.Transient = http.StatusServiceUnavailable, api.CodeTransient, true
			// The render spans many cells and any of them may hold the
			// memoized transient fault — sweep them all so the retry
			// recomputes instead of replaying.
			s.suite.ForgetTransient()
		}
		api.WriteError(w, status, apiErr)
		return
	}
	if !s.withinFaultBudget(w, recoveredBefore) {
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	w.Write([]byte(out))
}

// handleCells answers grid cell queries. app and scheme are required,
// comma-separated lists ("all" expands app to the suite's app list and
// scheme to every registered scheme); prefetcher defaults to fdp. The
// full cross product is computed as ONE Require batch, so same-app
// cells ride a single gang when gang execution is on — a client asking
// for twelve schemes of one app pays one Program traversal, exactly
// like the CLI grid.
func (s *server) handleCells(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	apps, schemes, pfs := q.Get("app"), q.Get("scheme"), q.Get("prefetcher")
	if apps == "" || schemes == "" {
		api.WriteError(w, http.StatusBadRequest, &api.Error{
			Code: api.CodeBadRequest, Message: "app and scheme query parameters are required (comma-separated; 'all' expands)"})
		return
	}
	appList := splitParam(apps)
	if apps == "all" {
		appList = s.suite.AppNames()
	}
	schemeList := splitParam(schemes)
	if schemes == "all" {
		schemeList = experiments.SchemeNames()
	}
	pfList := splitParam(pfs)
	if pfs == "" {
		pfList = []string{"fdp"}
	}
	var cells []experiments.Cell
	for _, pf := range pfList {
		cells = append(cells, experiments.CrossCells(appList, schemeList, pf)...)
	}

	// ETag over the sorted cell key set: the keys are content addresses,
	// so a match means the client's cached body is still exact — answer
	// 304 before any simulation.
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = s.suite.CellKey(c)
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	etag := etagFor(strings.Join(sorted, "\n"))
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	// Circuit-broken cells answer instantly without compute; the rest go
	// through one Require batch.
	runnable := make([]experiments.Cell, 0, len(cells))
	blocked := make(map[int]bool)
	for i, c := range cells {
		if s.breaker.Allow(keys[i]) {
			runnable = append(runnable, c)
		} else {
			blocked[i] = true
		}
	}
	recoveredBefore := s.suite.FaultStats().Recovered()
	s.suite.Require(runnable...) // per-cell outcomes read below

	outcomes := make([]api.CellOutcome, len(cells))
	for i, c := range cells {
		out := api.CellOutcome{Cell: c.API(), Key: keys[i]}
		if blocked[i] {
			out.Error = &api.Error{Code: api.CodeCircuitOpen, Cell: c.String(),
				Message: "cell is circuit-broken after repeated deterministic failures"}
			outcomes[i] = out
			continue
		}
		res, err := s.suite.Result(c.App, c.Scheme, c.Prefetcher)
		s.breaker.Record(keys[i], err)
		if err != nil {
			code := api.CodeCellError
			if engine.IsTransient(err) {
				code = api.CodeTransient
				// Forget transient failures so a retry recomputes instead
				// of replaying the memoized error.
				s.suite.Forget(c)
			}
			out.Error = &api.Error{Code: code, Message: err.Error(),
				Transient: code == api.CodeTransient, Cell: c.String()}
		} else {
			out.Result, _ = json.Marshal(res)
		}
		outcomes[i] = out
	}
	if !s.withinFaultBudget(w, recoveredBefore) {
		return
	}
	w.Header().Set("ETag", etag)
	api.WriteJSON(w, http.StatusOK, api.CellsResponse{ETag: etag, Cells: outcomes})
}

// withinFaultBudget enforces the per-request fault budget: when serving
// the request consumed more recovery work than allowed, the response is
// a transient 503 — the results themselves are still correct (recovery
// preserves byte-identity), but the infrastructure is degraded enough
// that the client should back off rather than keep hammering it.
func (s *server) withinFaultBudget(w http.ResponseWriter, recoveredBefore int64) bool {
	if s.faultBudget <= 0 {
		return true
	}
	spent := s.suite.FaultStats().Recovered() - recoveredBefore
	if spent <= s.faultBudget {
		return true
	}
	api.WriteError(w, http.StatusServiceUnavailable, &api.Error{
		Code: api.CodeFaultBudget, Transient: true,
		Message: fmt.Sprintf("request consumed %d fault recoveries (budget %d)", spent, s.faultBudget)})
	return false
}

func splitParam(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
