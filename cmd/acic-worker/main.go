// Command acic-worker is a stateless execution process for distributed
// grid runs (DESIGN.md §14). Point it at an acic-coord URL and it
// configures itself from GET /api/config — trace length, sampling, gang
// policy, shared store — then steals same-app cell batches, runs each as
// a local gang simulation, publishes results to the shared store, and
// reports per-cell outcomes with the transient/deterministic split the
// coordinator's rescheduling keys on. It exits 0 when the coordinator
// reports the run is done, and may be killed at any time: its leased
// batches expire and requeue, and whatever it already published stays
// warm in the store.
//
//	acic-worker -coord http://127.0.0.1:9321
//	acic-worker -coord http://127.0.0.1:9321 -workers 4 -name rack2-a
package main

import (
	"flag"
	"fmt"
	"os"

	"acic/cmd/internal/cliutil"
	"acic/internal/distrib"
)

func main() {
	var (
		coord     = flag.String("coord", "", "coordinator base URL (required), e.g. http://127.0.0.1:9321")
		workers   = flag.Int("workers", 0, "simulation worker pool size (0 = ACIC_WORKERS or GOMAXPROCS)")
		name      = flag.String("name", "", "worker identity in claims and coordinator logs (empty = host-pid)")
		verbose   = flag.Bool("v", false, "log claims and batch completions on stderr")
		faultSpec string
	)
	cliutil.RegisterFaultSpec(flag.CommandLine, &faultSpec)
	flag.Parse()

	if *coord == "" {
		fmt.Fprintln(os.Stderr, "acic-worker: -coord URL is required")
		os.Exit(2)
	}
	if err := cliutil.InstallFaultSpec(faultSpec); err != nil {
		fmt.Fprintf(os.Stderr, "acic-worker: -fault-spec: %v\n", err)
		os.Exit(1)
	}
	ctx, stopSignals := cliutil.InterruptContext()
	defer stopSignals()

	opts := distrib.WorkerOptions{Coord: *coord, Workers: *workers, Name: *name}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if err := distrib.RunWorker(ctx, opts); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "acic-worker: interrupted")
			os.Exit(cliutil.ExitInterrupted)
		}
		fmt.Fprintf(os.Stderr, "acic-worker: %v\n", err)
		os.Exit(1)
	}
}
