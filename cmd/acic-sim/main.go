// Command acic-sim runs a single (workload, scheme) simulation and prints
// cycles, IPC, MPKI, and subsystem statistics. It is the low-level probe
// tool; use acic-bench to regenerate the paper's tables and figures.
//
// When several schemes are given over a long trace (>= 1M instructions,
// the default -n) they are simulated as a gang — one traversal of the
// shared trace drives every scheme; shorter runs use independent cells on
// a worker pool. -gang on|off overrides; results are identical in every
// mode. Rows are always printed in the order the schemes were listed.
//
// A gang whose run panics or errors degrades to independent serial runs
// with bounded retries (DESIGN.md §13); -fault-spec injects deterministic
// faults to exercise that ladder. SIGINT/SIGTERM cancel not-yet-started
// schemes and exit 130.
//
// With -artifact-dir (or ACIC_ARTIFACT_DIR) the prepared workload — trace,
// annotated program, successor array, data-latency timeline — is loaded
// from (and written to) the persistent artifact store shared with
// acic-bench and `acic-trace warm`, so repeated probes of one workload
// skip the prepare phase.
//
// Usage:
//
//	acic-sim -workload media-streaming -scheme acic -n 1000000
//	acic-sim -workload web-search -schemes lru,acic,opt -n 500000
//	acic-sim -workload web-search -schemes lru,acic -gang off
//	acic-sim -workload tpcc -schemes lru,acic -artifact-dir ~/.cache/acic-artifacts
//	acic-sim -workload tpcc -schemes lru,acic -sample-sets 8   # set-sampled fast mode
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"acic/cmd/internal/cliutil"
	"acic/internal/analysis"
	"acic/internal/core"
	"acic/internal/cpu"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
	"acic/internal/faults"
	"acic/internal/icache"
	"acic/internal/stats"
	"acic/internal/workload"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acic-sim: "+format+"\n", args...)
	os.Exit(1)
}

// footprint counts distinct blocks in the collapsed access sequence —
// the same set trace.Trace.Footprint reports, but computable for
// streamed-prepared workloads that carry no Inst records.
func footprint(blocks []uint64) int {
	seen := make(map[uint64]struct{}, len(blocks)/8+1)
	for _, b := range blocks {
		seen[b] = struct{}{}
	}
	return len(seen)
}

// schemeRun is one scheme's simulation output: the timing result plus the
// ACIC diagnostics note, when the scheme carries an ACIC complex.
type schemeRun struct {
	res  cpu.Result
	note string
}

func main() {
	var (
		name     = flag.String("workload", "media-streaming", "workload profile name (see acic-trace -list)")
		schemes  = flag.String("schemes", "lru,acic,opt", "comma-separated scheme names")
		n        = flag.Int("n", 1_000_000, "trace length in instructions")
		pf       = flag.String("prefetcher", "fdp", "prefetcher: "+strings.Join(experiments.Prefetchers(), ", "))
		warmup   = flag.Float64("warmup", 0.1, "warmup fraction")
		sim      = cliutil.RegisterSim(flag.CommandLine)
		showDist = flag.Bool("reuse", false, "also print the reuse-distance distribution")
	)
	flag.Parse()

	if err := sim.Validate(); err != nil {
		fail("%v", err)
	}
	if err := sim.InstallFaults(); err != nil {
		fail("-fault-spec: %v", err)
	}
	// SIGINT/SIGTERM cancel not-yet-started schemes; the one in flight
	// finishes and the process exits cliutil.ExitInterrupted.
	ctx, stopSignals := cliutil.InterruptContext()
	defer stopSignals()
	prof, ok := workload.ByName(*name)
	if !ok {
		fail("unknown workload %q", *name)
	}
	pool := engine.NewPool(sim.Workers)
	pipeline, err := experiments.NewPipeline(experiments.PipelineConfig{
		N: *n, Dir: sim.ArtifactDir, Pool: pool, Window: sim.PrepareWindow,
	})
	if err != nil {
		fail("%v", err)
	}
	w, err := pipeline.Workload(*name)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("workload %s: %d instructions, %d block accesses, footprint %d blocks\n",
		prof.Name, w.Prog.Len(), len(w.Blocks), footprint(w.Blocks))

	if *showDist {
		dists := analysis.ReuseDistances(w.Blocks)
		fr := analysis.Distribution(dists, analysis.Fig1aEdges)
		fmt.Printf("reuse distances: 0:%.1f%% 1-16:%.2f%% 16-512:%.2f%% 512-1024:%.2f%% 1024-10000:%.2f%% >10000:%.2f%%\n",
			fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100, fr[4]*100, fr[5]*100)
	}

	opts := experiments.DefaultOptions()
	opts.Prefetcher = *pf
	opts.WarmupFrac = *warmup
	sampleSets, err := sim.ResolveSampleSets()
	if err != nil {
		fail("%v", err)
	}
	if opts.Sample, err = experiments.SampleConfigFor(sampleSets, sim.SampleOffset, *name); err != nil {
		fail("%v", err)
	}
	if opts.GangWindow, err = sim.ResolveGangWindow(); err != nil {
		fail("%v", err)
	}
	if opts.Sample.Enabled() {
		fmt.Printf("set-sampled fast mode: %d of %d sets (stride %d, constituency %d); misses and stalls extrapolated, see DESIGN.md §10 for error bars\n",
			sampleSets, cliutil.DefaultL1Sets, opts.Sample.Stride, opts.Sample.Offset)
	}

	var order []string
	for _, s := range strings.Split(*schemes, ",") {
		order = append(order, strings.TrimSpace(s))
	}

	// Plan → execute: every scheme is an independent cell over the shared
	// workload; the group dedupes repeats. With -gang the deduplicated list
	// runs as gang simulations (one trace traversal per gang of up to
	// -gang-size schemes); otherwise cells run in parallel on the pool.
	// Either way each scheme's result is identical.
	runs := engine.NewGroup(pool, func(scheme string) (schemeRun, error) {
		if err := ctx.Err(); err != nil {
			return schemeRun{}, err
		}
		return runScheme(w, scheme, opts)
	})
	runs.Retry = engine.DefaultRetry()
	if sim.GangEnabled(*n) && sim.GangSize > 1 {
		runGangs(ctx, w, order, opts, sim.GangSize, runs)
	}
	if err := runs.Require(order...); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "acic-sim: interrupted")
			os.Exit(cliutil.ExitInterrupted)
		}
		fail("%v", err)
	}

	// Render in the order the schemes were listed: the first is the
	// speedup/MPKI-reduction base.
	tbl := &stats.Table{Header: []string{"scheme", "cycles", "IPC", "MPKI", "speedup", "filter-hit%", "miss-reduction"}}
	var baseCycles int64
	var baseMPKI float64
	var acicNotes []string
	for _, scheme := range order {
		run, err := runs.Get(scheme)
		if err != nil {
			fail("%v", err)
		}
		res := run.res
		if run.note != "" {
			acicNotes = append(acicNotes, run.note)
		}
		if baseCycles == 0 {
			baseCycles = res.Cycles
			baseMPKI = res.MPKI()
		}
		ic := res.ICache
		filterPct := 0.0
		if ic.Accesses > 0 {
			filterPct = 100 * float64(ic.FilterHits) / float64(ic.Accesses)
		}
		mpkiRed := 0.0
		if baseMPKI > 0 {
			mpkiRed = (baseMPKI - res.MPKI()) / baseMPKI
		}
		tbl.AddRow(scheme, res.Cycles, res.IPC(), res.MPKI(),
			float64(baseCycles)/float64(res.Cycles), fmt.Sprintf("%.1f", filterPct), stats.Percent(mpkiRed))
	}
	fmt.Print(tbl.String())
	for _, n := range acicNotes {
		fmt.Println(n)
	}
}

// instrument attaches an ACIC decision recorder when the subsystem carries
// an ACIC complex and returns the capture slot (nil otherwise).
func instrument(sub icache.Subsystem) *[]core.Decision {
	cx, ok := sub.(*icache.Complex)
	if !ok || cx.ACIC() == nil {
		return nil
	}
	decisions := new([]core.Decision)
	cx.ACIC().OnDecision = func(d core.Decision) { *decisions = append(*decisions, d) }
	return decisions
}

// runScheme simulates one scheme, collecting ACIC decision diagnostics
// when the subsystem exposes them.
func runScheme(w *experiments.Workload, scheme string, opts experiments.Options) (schemeRun, error) {
	sub, err := experiments.NewSampledScheme(scheme, w, opts.Sample)
	if err != nil {
		return schemeRun{}, err
	}
	captured := instrument(sub)
	res, err := experiments.RunSubsystem(w, sub, opts)
	if err != nil {
		return schemeRun{}, err
	}
	return schemeRun{res: res, note: acicNote(w, scheme, sub, captured)}, nil
}

// runGangs claims the not-yet-computed schemes of order and produces them
// through gang simulations of at most gangSize members each, fulfilling
// the run group's cells so rendering reads them exactly like serial runs.
// A gang that panics or errors degrades to independent serial runs with
// bounded retries — one poisoned member must not take its gang-mates'
// results down. Every claimed scheme is fulfilled on every path.
func runGangs(ctx context.Context, w *experiments.Workload, order []string, opts experiments.Options,
	gangSize int, runs *engine.Group[string, schemeRun]) {
	rerunSerial := func(scheme string) {
		run, err, _ := engine.Retry(runs.Retry, scheme, false, func() (schemeRun, error) {
			return runScheme(w, scheme, opts)
		})
		runs.Fulfill(scheme, run, err)
	}
	var uniq []string
	for _, s := range order {
		if runs.TryClaim(s) {
			uniq = append(uniq, s)
		}
	}
	for at := 0; at < len(uniq); at += gangSize {
		chunk := uniq[at:min(at+gangSize, len(uniq))]
		if err := ctx.Err(); err != nil {
			for _, scheme := range chunk {
				runs.Fulfill(scheme, schemeRun{}, err)
			}
			continue
		}
		subs := make([]icache.Subsystem, 0, len(chunk))
		captures := make([]*[]core.Decision, 0, len(chunk))
		members := make([]string, 0, len(chunk))
		for _, scheme := range chunk {
			sub, err := experiments.NewSampledScheme(scheme, w, opts.Sample)
			if err != nil {
				// A bad scheme name is deterministic: fail that cell now
				// rather than spending a serial rerun on it.
				runs.Fulfill(scheme, schemeRun{}, err)
				continue
			}
			subs = append(subs, sub)
			captures = append(captures, instrument(sub))
			members = append(members, scheme)
		}
		res, err := engine.Guard(fmt.Sprintf("gang[%d]", len(members)), true, func() ([]cpu.Result, error) {
			faults.PanicPoint("gang")
			return experiments.RunGangSubsystems(w, subs, opts)
		})
		if err != nil {
			for _, scheme := range members {
				rerunSerial(scheme)
			}
			continue
		}
		for i, scheme := range members {
			runs.Fulfill(scheme, schemeRun{
				res:  res[i],
				note: acicNote(w, scheme, subs[i], captures[i]),
			}, nil)
		}
	}
}

// acicNote summarizes a run's captured ACIC admission decisions against
// the next-use oracle ("" for schemes without an ACIC complex).
func acicNote(w *experiments.Workload, scheme string, sub icache.Subsystem, captured *[]core.Decision) string {
	cx, ok := sub.(*icache.Complex)
	if !ok || cx.ACIC() == nil || captured == nil {
		return ""
	}
	a := cx.ACIC()
	decisions := *captured
	correct, shouldAdmit := 0, 0
	for _, d := range decisions {
		vNext := w.Oracle.NextUse(d.Victim, d.AccessIdx)
		cNext := w.Oracle.NextUse(d.Contender, d.AccessIdx)
		ideal := vNext < cNext
		if ideal {
			shouldAdmit++
		}
		if ideal == d.Admitted {
			correct++
		}
	}
	// Per-victim-block majority vote: the ceiling for any per-address
	// admission predictor.
	wins := map[uint64][2]int{}
	for _, d := range decisions {
		c := wins[d.Victim]
		if w.Oracle.NextUse(d.Victim, d.AccessIdx) < w.Oracle.NextUse(d.Contender, d.AccessIdx) {
			c[0]++
		} else {
			c[1]++
		}
		wins[d.Victim] = c
	}
	ceiling := 0
	for _, c := range wins {
		if c[0] > c[1] {
			ceiling += c[0]
		} else {
			ceiling += c[1]
		}
	}
	return fmt.Sprintf(
		"%s: decisions=%d admit=%.1f%% ideal-admit=%.1f%% accuracy=%.1f%% ceiling=%.1f%% cshr[v=%d c=%d evict=%d]",
		scheme, a.Decisions, 100*a.AdmitFraction(),
		100*float64(shouldAdmit)/float64(len(decisions)+1),
		100*float64(correct)/float64(len(decisions)+1),
		100*float64(ceiling)/float64(len(decisions)+1),
		a.CSHR.ResolvedVictim, a.CSHR.ResolvedContend, a.CSHR.EvictedUnres)
}
