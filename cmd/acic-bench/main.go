// Command acic-bench regenerates the paper's tables and figures (see
// DESIGN.md §5 for the experiment index). Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records the comparison
// against the published values.
//
// Usage:
//
//	acic-bench -exp all            # everything (minutes)
//	acic-bench -exp fig10,fig11    # the headline comparison
//	acic-bench -exp table3 -n 1000000
//	acic-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"acic/internal/experiments"
	"acic/internal/stats"
)

type experiment struct {
	name string
	desc string
	run  func(s *experiments.Suite) string
}

func tableExp(name, desc string, f func(*experiments.Suite) *stats.Table) experiment {
	return experiment{name: name, desc: desc, run: func(s *experiments.Suite) string { return f(s).String() }}
}

func allExperiments() []experiment {
	return []experiment{
		tableExp("table1", "ACIC storage breakdown (Table I)",
			func(*experiments.Suite) *stats.Table { return experiments.Table1() }),
		tableExp("table2", "simulation parameters (Table II)",
			func(*experiments.Suite) *stats.Table { return experiments.Table2() }),
		tableExp("table3", "per-app baseline L1i MPKI (Table III)",
			func(s *experiments.Suite) *stats.Table { return s.Table3() }),
		tableExp("table4", "per-scheme storage overhead (Table IV)",
			func(*experiments.Suite) *stats.Table { return experiments.Table4() }),
		tableExp("fig1a", "reuse-distance distributions (Fig 1a)",
			func(s *experiments.Suite) *stats.Table { return s.Fig1a() }),
		tableExp("fig1b", "reuse-distance Markov chain, media-streaming (Fig 1b)",
			func(s *experiments.Suite) *stats.Table { return s.Fig1b("media-streaming") }),
		tableExp("fig3a", "i-Filter / access-count / OPT speedups (Fig 3a)",
			func(s *experiments.Suite) *stats.Table { return s.Fig3a() }),
		{name: "fig3b", desc: "reuse-delta of incoming vs OPT-outgoing blocks (Fig 3b)", run: runFig3b},
		{name: "fig6", desc: "CSHR entry lifetime distribution, data-caching (Fig 6)", run: runFig6},
		tableExp("fig10", "speedup of all schemes over LRU+FDP (Fig 10)",
			func(s *experiments.Suite) *stats.Table { return s.Fig10() }),
		tableExp("fig11", "MPKI reduction of all schemes (Fig 11)",
			func(s *experiments.Suite) *stats.Table { return s.Fig11() }),
		tableExp("fig12a", "ACIC bypass accuracy by reuse range (Fig 12a)",
			func(s *experiments.Suite) *stats.Table { return s.Fig12a() }),
		tableExp("fig12b", "random-60% bypass vs ACIC (Fig 12b)",
			func(s *experiments.Suite) *stats.Table { return s.Fig12b() }),
		tableExp("fig13", "fraction of i-Filter victims admitted (Fig 13)",
			func(s *experiments.Suite) *stats.Table { return s.Fig13() }),
		tableExp("fig14", "parallel vs instant predictor update (Fig 14)",
			func(s *experiments.Suite) *stats.Table { return s.Fig14() }),
		tableExp("fig15", "parameter sensitivity (Fig 15)",
			func(s *experiments.Suite) *stats.Table { return s.Fig15() }),
		tableExp("fig16", "ACIC speedup over LRU+i-Filter baseline (Fig 16)",
			func(s *experiments.Suite) *stats.Table { return s.Fig16() }),
		tableExp("fig17", "simplified-design ablation (Fig 17)",
			func(s *experiments.Suite) *stats.Table { return s.Fig17() }),
		tableExp("fig18", "SPEC speedups (Fig 18)",
			func(s *experiments.Suite) *stats.Table { return s.Fig18() }),
		tableExp("fig19", "SPEC MPKI reductions (Fig 19)",
			func(s *experiments.Suite) *stats.Table { return s.Fig19() }),
		tableExp("fig20", "speedups over entangling baseline (Fig 20)",
			func(s *experiments.Suite) *stats.Table { return s.Fig20() }),
		tableExp("fig21", "MPKI reductions over entangling baseline (Fig 21)",
			func(s *experiments.Suite) *stats.Table { return s.Fig21() }),
		tableExp("energy", "chip-energy delta of ACIC (Section III-D)",
			func(s *experiments.Suite) *stats.Table { return s.Energy() }),
		tableExp("ext-schemes", "extension baselines: DIP family, EAF, PLRU, pf-aware ACIC",
			func(s *experiments.Suite) *stats.Table { return s.ExtendedComparison() }),
		tableExp("ext-pfaware", "prefetch-aware ACIC (paper future work)",
			func(s *experiments.Suite) *stats.Table { return s.PrefetchAware() }),
		tableExp("ext-headroom", "LRU miss-ratio curve over capacity",
			func(s *experiments.Suite) *stats.Table { return s.Headroom() }),
		tableExp("ext-prefetchers", "baseline under each prefetcher",
			func(s *experiments.Suite) *stats.Table { return s.PrefetcherBaselines() }),
		tableExp("ext-evict-train", "CSHR unresolved-eviction training ablation",
			func(s *experiments.Suite) *stats.Table { return experiments.AblationCSHRDefault(s) }),
	}
}

func runFig3b(s *experiments.Suite) string {
	h, wrong := s.Fig3b("media-streaming")
	labels := []string{"<=-10000", "-1000", "-100", "-10", "<=0", "10", "100", "1000", "10000", ">10000"}
	t := &stats.Table{Header: []string{"delta bucket", "fraction"}}
	for i, f := range h.Fractions() {
		t.AddRow(labels[i], stats.Percent(f))
	}
	return t.String() + fmt.Sprintf("wrong insertions (delta>0): %s (paper: 38.38%%)\n", stats.Percent(wrong))
}

func runFig6(s *experiments.Suite) string {
	h := s.Fig6("data-caching")
	labels := []string{"0-50", "50-100", "100-150", "150-200", "200-250", "250-300", "300-350", "350-400", "InF"}
	t := &stats.Table{Header: []string{"comparisons", "fraction"}}
	for i, f := range h.Fractions() {
		t.AddRow(labels[i], stats.Percent(f))
	}
	return t.String()
}

func main() {
	var (
		exp  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		n    = flag.Int("n", 0, "trace length in instructions (0 = ACIC_BENCH_N or 400000)")
		apps = flag.String("apps", "", "restrict datacenter apps (comma-separated)")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	exps := allExperiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
		known := map[string]bool{}
		for _, e := range exps {
			known[e.name] = true
		}
		var unknown []string
		for w := range want {
			if !known[w] {
				unknown = append(unknown, w)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "unknown experiments: %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(1)
		}
	}

	suite := experiments.NewSuite(*n)
	if *apps != "" {
		suite.Apps = strings.Split(*apps, ",")
	}
	for _, e := range exps {
		if *exp != "all" && !want[e.name] {
			continue
		}
		start := time.Now()
		out := e.run(suite)
		fmt.Printf("=== %s: %s (%.1fs)\n%s\n", e.name, e.desc, time.Since(start).Seconds(), out)
	}
}
