// Command acic-bench regenerates the paper's tables and figures (see
// DESIGN.md §5 for the experiment index). Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records the comparison
// against the published values.
//
// Experiments plan their simulation cells up front and execute them on a
// worker pool (one worker per core by default); same-(app, prefetcher)
// cells are additionally grouped into gang simulations — one Program
// traversal driving a whole scheme row — when the trace is long enough
// for the shared traversal to pay (-gang on|off|auto and -gang-size;
// output is byte-identical in every mode). With -cache-dir (or
// ACIC_CACHE_DIR) results persist on disk keyed by workload/trace-length/
// scheme/prefetcher, making reruns incremental; with -artifact-dir (or
// ACIC_ARTIFACT_DIR) the prepared workloads themselves — trace, annotated
// program, successor array, data-latency timeline — persist as
// content-addressed artifacts, so warm reruns skip the prepare phase and
// go straight to simulation (`acic-trace warm` fills the store up front).
//
// The -bench-json mode instead times raw simulator throughput (ns per
// block access) per (scheme x prefetcher) cell, plus gang-vs-serial sweep
// wall-clocks and the prepare-phase wall-clock — the tracked trajectory
// files under bench/trajectory/ are produced this way (see its
// index.json). -compare diffs two such files per cell (exiting non-zero
// past -regress-pct). -cpuprofile/-memprofile write pprof data for any
// mode.
//
// Usage:
//
//	acic-bench -exp all            # everything (minutes)
//	acic-bench -exp fig10,fig11    # the headline comparison
//	acic-bench -exp table3 -n 1000000
//	acic-bench -exp all -workers 4 -cache-dir ~/.cache/acic -progress
//	acic-bench -exp all -artifact-dir ~/.cache/acic-artifacts # warm prepare reuse
//	acic-bench -exp all -n 2000000 -gang on # gang a long-trace sweep
//	acic-bench -bench-json bench.json -bench-repeats 5
//	acic-bench -compare bench/trajectory/BENCH_PR3.json -compare-to bench.json
//	acic-bench -bench-json bench.json -compare bench/trajectory/BENCH_PR4.json
//	acic-bench -exp fig10 -cpuprofile cpu.prof
//	acic-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"acic/cmd/internal/cliutil"
	"acic/internal/experiments"
	"acic/internal/perf"
	"acic/internal/stats"
)

type experiment struct {
	name string
	desc string
	run  func(s *experiments.Suite) (string, error)
}

func tableExp(name, desc string, f func(*experiments.Suite) (*stats.Table, error)) experiment {
	return experiment{name: name, desc: desc, run: func(s *experiments.Suite) (string, error) {
		t, err := f(s)
		if err != nil {
			return "", err
		}
		return t.String(), nil
	}}
}

// staticExp wraps suite-independent tables (Table I/II/IV).
func staticExp(name, desc string, f func() *stats.Table) experiment {
	return tableExp(name, desc, func(*experiments.Suite) (*stats.Table, error) { return f(), nil })
}

func allExperiments() []experiment {
	return []experiment{
		staticExp("table1", "ACIC storage breakdown (Table I)", experiments.Table1),
		staticExp("table2", "simulation parameters (Table II)", experiments.Table2),
		tableExp("table3", "per-app baseline L1i MPKI (Table III)", (*experiments.Suite).Table3),
		staticExp("table4", "per-scheme storage overhead (Table IV)", experiments.Table4),
		tableExp("fig1a", "reuse-distance distributions (Fig 1a)", (*experiments.Suite).Fig1a),
		tableExp("fig1b", "reuse-distance Markov chain, media-streaming (Fig 1b)",
			func(s *experiments.Suite) (*stats.Table, error) { return s.Fig1b("media-streaming") }),
		tableExp("fig3a", "i-Filter / access-count / OPT speedups (Fig 3a)", (*experiments.Suite).Fig3a),
		{name: "fig3b", desc: "reuse-delta of incoming vs OPT-outgoing blocks (Fig 3b)", run: runFig3b},
		{name: "fig6", desc: "CSHR entry lifetime distribution, data-caching (Fig 6)", run: runFig6},
		tableExp("fig10", "speedup of all schemes over LRU+FDP (Fig 10)", (*experiments.Suite).Fig10),
		tableExp("fig11", "MPKI reduction of all schemes (Fig 11)", (*experiments.Suite).Fig11),
		tableExp("fig12a", "ACIC bypass accuracy by reuse range (Fig 12a)", (*experiments.Suite).Fig12a),
		tableExp("fig12b", "random-60% bypass vs ACIC (Fig 12b)", (*experiments.Suite).Fig12b),
		tableExp("fig13", "fraction of i-Filter victims admitted (Fig 13)", (*experiments.Suite).Fig13),
		tableExp("fig14", "parallel vs instant predictor update (Fig 14)", (*experiments.Suite).Fig14),
		tableExp("fig15", "parameter sensitivity (Fig 15)", (*experiments.Suite).Fig15),
		tableExp("fig16", "ACIC speedup over LRU+i-Filter baseline (Fig 16)", (*experiments.Suite).Fig16),
		tableExp("fig17", "simplified-design ablation (Fig 17)", (*experiments.Suite).Fig17),
		tableExp("fig18", "SPEC speedups (Fig 18)", (*experiments.Suite).Fig18),
		tableExp("fig19", "SPEC MPKI reductions (Fig 19)", (*experiments.Suite).Fig19),
		tableExp("fig20", "speedups over entangling baseline (Fig 20)", (*experiments.Suite).Fig20),
		tableExp("fig21", "MPKI reductions over entangling baseline (Fig 21)", (*experiments.Suite).Fig21),
		tableExp("energy", "chip-energy delta of ACIC (Section III-D)", (*experiments.Suite).Energy),
		tableExp("ext-schemes", "extension baselines: DIP family, EAF, PLRU, pf-aware ACIC",
			(*experiments.Suite).ExtendedComparison),
		tableExp("ext-pfaware", "prefetch-aware ACIC (paper future work)", (*experiments.Suite).PrefetchAware),
		tableExp("ext-headroom", "LRU miss-ratio curve over capacity", (*experiments.Suite).Headroom),
		tableExp("ext-prefetchers", "baseline under each prefetcher", (*experiments.Suite).PrefetcherBaselines),
		tableExp("ext-evict-train", "CSHR unresolved-eviction training ablation", experiments.AblationCSHRDefault),
	}
}

func runFig3b(s *experiments.Suite) (string, error) {
	h, wrong, err := s.Fig3b("media-streaming")
	if err != nil {
		return "", err
	}
	labels := []string{"<=-10000", "-1000", "-100", "-10", "<=0", "10", "100", "1000", "10000", ">10000"}
	t := &stats.Table{Header: []string{"delta bucket", "fraction"}}
	for i, f := range h.Fractions() {
		t.AddRow(labels[i], stats.Percent(f))
	}
	return t.String() + fmt.Sprintf("wrong insertions (delta>0): %s (paper: 38.38%%)\n", stats.Percent(wrong)), nil
}

func runFig6(s *experiments.Suite) (string, error) {
	h, err := s.Fig6("data-caching")
	if err != nil {
		return "", err
	}
	labels := []string{"0-50", "50-100", "100-150", "150-200", "200-250", "250-300", "300-350", "350-400", "InF"}
	t := &stats.Table{Header: []string{"comparisons", "fraction"}}
	for i, f := range h.Fractions() {
		t.AddRow(labels[i], stats.Percent(f))
	}
	return t.String(), nil
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		n        = flag.Int("n", 0, "trace length in instructions (0 = ACIC_BENCH_N or 400000)")
		apps     = flag.String("apps", "", "restrict datacenter apps (comma-separated)")
		sim      = cliutil.RegisterSim(flag.CommandLine)
		cacheDir = cliutil.RegisterCacheDir(flag.CommandLine)
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
		list     = flag.Bool("list", false, "list experiments and exit")

		benchJSON    = flag.String("bench-json", "", "throughput microbenchmark mode: write ns/access per (scheme x prefetcher) plus gang-sweep wall-clocks to this JSON file and exit")
		benchApp     = flag.String("bench-app", "media-streaming", "workload for -bench-json")
		benchSchemes = flag.String("bench-schemes", "", "schemes for -bench-json (comma-separated; empty = tracked default set)")
		benchPfs     = flag.String("bench-prefetchers", "none,fdp", "prefetcher platforms for -bench-json (comma-separated)")
		benchRepeats = flag.Int("bench-repeats", 3, "timed repetitions per -bench-json cell (best kept)")
		benchSweeps  = flag.Bool("bench-sweeps", true, "also measure per-prefetcher gang-vs-serial sweep wall-clocks in -bench-json mode")

		compare    = flag.String("compare", "", "baseline bench JSON: compare per-cell ns/access against it and exit (new side: -compare-to, or the report just measured by -bench-json)")
		compareTo  = flag.String("compare-to", "", "new-side bench JSON for -compare (empty = the -bench-json report measured in this run)")
		regressPct = flag.Float64("regress-pct", 25, "exit non-zero when any compared cell regresses by more than this percentage (negative = never fail)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if err := sim.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
		os.Exit(1)
	}

	stopCPUProfile := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopCPUProfile = func() { pprof.StopCPUProfile(); f.Close() }
	}
	defer stopCPUProfile()
	writeMemProfile := func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	// runCompare diffs a baseline bench JSON against newRep (read from
	// -compare-to when newRep is nil) and exits non-zero on a regression
	// beyond -regress-pct.
	runCompare := func(newRep *perf.Report) {
		oldRep, err := perf.ReadJSON(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -compare: %v\n", err)
			os.Exit(1)
		}
		if newRep == nil {
			if *compareTo == "" {
				fmt.Fprintln(os.Stderr, "acic-bench: -compare needs -compare-to FILE (or -bench-json to measure the new side)")
				os.Exit(1)
			}
			if newRep, err = perf.ReadJSON(*compareTo); err != nil {
				fmt.Fprintf(os.Stderr, "acic-bench: -compare-to: %v\n", err)
				os.Exit(1)
			}
		}
		c := perf.Compare(oldRep, newRep)
		fmt.Printf("=== bench comparison: %s -> new\n%s%s\n", *compare, c.Table(), c.Summary())
		for _, only := range c.OnlyOld {
			fmt.Printf("only in baseline: %s\n", only)
		}
		for _, only := range c.OnlyNew {
			fmt.Printf("only in new: %s\n", only)
		}
		if *regressPct >= 0 && c.WorstPct() > *regressPct {
			fmt.Fprintf(os.Stderr, "acic-bench: throughput regression: worst cell %+.1f%% exceeds -regress-pct %.1f\n",
				c.WorstPct(), *regressPct)
			os.Exit(1)
		}
	}

	if *benchJSON != "" {
		cfg := perf.Config{App: *benchApp, N: *n, Repeats: *benchRepeats, ArtifactDir: sim.ArtifactDir}
		if *benchSchemes != "" {
			cfg.Schemes = strings.Split(*benchSchemes, ",")
		}
		if *benchPfs != "" {
			cfg.Prefetchers = strings.Split(*benchPfs, ",")
		}
		cfg.GangSize = sim.GangSize
		if !*benchSweeps {
			cfg.GangSize = -1
		}
		rep, err := perf.Measure(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("=== throughput microbenchmark: %s, n=%d (best of %d)\n%s", *benchApp, rep.N, *benchRepeats, rep.Table())
		fmt.Println(rep.PrepareSummary())
		if st := rep.SweepTable(); st != nil {
			fmt.Printf("=== gang sweeps: wall-clock per full scheme row (best of %d)\n%s", *benchRepeats, st)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		// Finish the profiles before the comparison: its regression gate
		// may os.Exit, and the profile of a regressed tree is exactly the
		// one worth keeping intact.
		stopCPUProfile()
		writeMemProfile()
		if *compare != "" {
			runCompare(rep)
		}
		return
	}

	if *compare != "" {
		runCompare(nil)
		return
	}

	exps := allExperiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
		known := map[string]bool{}
		for _, e := range exps {
			known[e.name] = true
		}
		var unknown []string
		for w := range want {
			if !known[w] {
				unknown = append(unknown, w)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "unknown experiments: %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(1)
		}
	}

	suite := experiments.NewSuite(*n)
	suite.Workers = sim.Workers
	suite.GangSize = sim.SuiteGangSize(suite.N)
	suite.CacheDir = *cacheDir
	suite.ArtifactDir = sim.ArtifactDir
	if *apps != "" {
		suite.Apps = strings.Split(*apps, ",")
	}
	if *progress {
		suite.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, label)
		}
	}
	// CacheError spins up the engine, freezing the fields set above.
	if err := suite.CacheError(); err != nil {
		fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
		os.Exit(1)
	}
	for _, e := range exps {
		if *exp != "all" && !want[e.name] {
			continue
		}
		start := time.Now()
		out, err := e.run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %s (%.1fs)\n%s\n", e.name, e.desc, time.Since(start).Seconds(), out)
	}
	if *progress {
		computed, fromCache, workloads := suite.Stats()
		fmt.Fprintf(os.Stderr, "computed %d cells, %d from cache, %d workloads prepared\n",
			computed, fromCache, workloads)
		for _, st := range suite.PrepareStats() {
			fmt.Fprintf(os.Stderr, "prepare %-8s %d regenerated, %d from artifact store\n",
				st.Stage, st.Computed, st.FromStore)
		}
	}
	stopCPUProfile()
	writeMemProfile()
}
