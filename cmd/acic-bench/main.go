// Command acic-bench regenerates the paper's tables and figures (see
// DESIGN.md §5 for the experiment index). Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records the comparison
// against the published values.
//
// Experiments plan their simulation cells up front and execute them on a
// worker pool (one worker per core by default); same-app cells — across
// prefetcher platforms — are additionally grouped into gang simulations,
// one Program traversal driving a whole scheme × prefetcher row, when the
// trace is long enough for the shared traversal to pay (-gang on|off|auto,
// -gang-size, and -gang-window auto|default|N for the traversal window;
// output is byte-identical in every mode). With -cache-dir (or
// ACIC_CACHE_DIR) results persist on disk keyed by workload/trace-length/
// scheme/prefetcher, making reruns incremental; with -artifact-dir (or
// ACIC_ARTIFACT_DIR) the prepared workloads themselves — trace, annotated
// program, successor array, data-latency timeline — persist as
// content-addressed artifacts, so warm reruns skip the prepare phase and
// go straight to simulation (`acic-trace warm` fills the store up front).
//
// The -bench-json mode instead times raw simulator throughput (ns per
// block access) per (scheme x prefetcher) cell, plus gang-vs-serial sweep
// wall-clocks and the prepare-phase wall-clock — the tracked trajectory
// files under bench/trajectory/ are produced this way (see its
// index.json). -compare diffs two such files per cell (exiting non-zero
// past -regress-pct). -cpuprofile/-memprofile write pprof data for any
// mode.
//
// The run is fault-hardened (DESIGN.md §13): a panicking or failing
// experiment is reported and the rest still run (exit 1 at the end);
// undecodable store entries quarantine and regenerate; -fault-spec (or
// ACIC_FAULT_SPEC) injects deterministic faults to exercise exactly those
// paths, with the recovery counters printed as a "faults:" line under
// -progress and recorded in the -bench-json report. SIGINT/SIGTERM cancel
// at cell boundaries and exit 130 with partial output flushed
// (-bench-json marks the report "interrupted": true).
//
// The -sample-sets mode is the set-sampled fast lane (DESIGN.md §10):
// only N of the 64 L1i sets are simulated and the statistics are
// extrapolated, making exploratory -exp sweeps ~5-7x faster with
// documented error bars; -sample-validate runs the headline grid both
// ways and prints the sampled-vs-full error-bar table, failing past
// -sample-err-pct.
//
// Usage:
//
//	acic-bench -exp all            # everything (minutes)
//	acic-bench -exp all -sample-sets 8   # set-sampled quick look (~5-7x faster)
//	acic-bench -sample-validate    # sampled-vs-full error bars + wall-clock
//	acic-bench -exp fig10,fig11    # the headline comparison
//	acic-bench -exp table3 -n 1000000
//	acic-bench -exp all -workers 4 -cache-dir ~/.cache/acic -progress
//	acic-bench -exp all -artifact-dir ~/.cache/acic-artifacts # warm prepare reuse
//	acic-bench -exp all -n 2000000 -gang on # gang a long-trace sweep
//	acic-bench -bench-json bench.json -bench-repeats 5
//	acic-bench -compare bench/trajectory/BENCH_PR3.json -compare-to bench.json
//	acic-bench -bench-json bench.json -compare bench/trajectory/BENCH_PR4.json
//	acic-bench -exp fig10 -cpuprofile cpu.prof
//	acic-bench -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"acic/cmd/internal/cliutil"
	"acic/internal/experiments"
	"acic/internal/perf"
	"acic/internal/stats"
)

// runSampleValidate measures the set-sampled fast mode against the full
// reference: the headline grid (every Fig 10/11 scheme plus the baseline,
// all datacenter apps, FDP platform) is simulated through both lanes,
// wall-clocks are compared, and per-cell relative errors of cycles, MPKI,
// and speedup-over-baseline are reported as error-bar tables
// (stats.SampledError). The run exits non-zero when the worst |cycles|
// or |speedup| error exceeds errPct (DESIGN.md §10 documents the bounds
// this mode regenerates). The result cache is deliberately not used:
// both lanes must compute, or the wall-clock comparison is a lie.
func runSampleValidate(ctx context.Context, sim *cliutil.SimFlags, n int, apps string, errPct float64) {
	cleanup := func() {}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "acic-bench: -sample-validate: "+format+"\n", args...)
		cleanup()
		os.Exit(1)
	}
	sampleSets, err := sim.ResolveSampleSets()
	if err != nil {
		fail("%v", err)
	}
	if sampleSets == 0 {
		sampleSets = 8
	}

	// The two suites are independent engines, but workload preparation is
	// sampling-independent (artifact keys carry no sample component), so
	// they share one artifact store — a scratch one when the user did not
	// provide theirs — and the second suite's prepare loads instead of
	// regenerating.
	artifactDir := sim.ArtifactDir
	if artifactDir == "" {
		scratch, err := os.MkdirTemp("", "acic-sample-validate-*")
		if err != nil {
			fail("%v", err)
		}
		cleanup = func() { os.RemoveAll(scratch) }
		defer cleanup()
		artifactDir = scratch
	}

	newSuite := func(sampled bool) *experiments.Suite {
		s := experiments.NewSuite(n)
		s.Context = ctx
		s.Workers = sim.Workers
		s.GangSize = sim.SuiteGangSize(s.N)
		s.GangWindow, _ = sim.ResolveGangWindow() // validated by main
		s.ArtifactDir = artifactDir
		s.PrepareWindow = sim.PrepareWindow
		if sampled {
			s.SampleSets = sampleSets
			s.SampleOffset = sim.SampleOffset
		}
		if apps != "" {
			s.Apps = strings.Split(apps, ",")
		}
		if err := s.CacheError(); err != nil {
			fail("%v", err)
		}
		return s
	}
	full := newSuite(false)
	sampled := newSuite(true)

	schemes := append([]string{experiments.Baseline}, experiments.Fig10Schemes...)
	cells := experiments.CrossCells(full.AppNames(), schemes, "fdp")
	if err := full.PrepareAll(full.AppNames()...); err != nil {
		fail("%v", err)
	}
	if err := sampled.PrepareAll(sampled.AppNames()...); err != nil {
		fail("%v", err)
	}

	// Both lanes run over warm workloads, so the wall-clocks compare
	// simulation against simulation.
	startFull := time.Now()
	if err := full.Require(cells...); err != nil {
		fail("full grid: %v", err)
	}
	fullWall := time.Since(startFull)
	startSampled := time.Now()
	if err := sampled.Require(cells...); err != nil {
		fail("sampled grid: %v", err)
	}
	sampledWall := time.Since(startSampled)

	cyclesErr := stats.NewSampledError("cycles")
	mpkiErr := stats.NewSampledError("MPKI")
	speedupErr := stats.NewSampledError("speedup")
	for _, app := range full.AppNames() {
		fb, err := full.Result(app, experiments.Baseline, "fdp")
		if err != nil {
			fail("%v", err)
		}
		sb, err := sampled.Result(app, experiments.Baseline, "fdp")
		if err != nil {
			fail("%v", err)
		}
		for _, scheme := range schemes {
			fr, err := full.Result(app, scheme, "fdp")
			if err != nil {
				fail("%v", err)
			}
			sr, err := sampled.Result(app, scheme, "fdp")
			if err != nil {
				fail("%v", err)
			}
			label := app + "/" + scheme
			cyclesErr.Add(label, float64(fr.Cycles), float64(sr.Cycles))
			mpkiErr.Add(label, fr.MPKI(), sr.MPKI())
			speedupErr.Add(label, float64(fb.Cycles)/float64(fr.Cycles), float64(sb.Cycles)/float64(sr.Cycles))
		}
	}

	fmt.Printf("=== sample-validate: %d of %d L1i sets, %d cells (%s × fdp), n=%d\n",
		sampleSets, cliutil.DefaultL1Sets, len(cells), "baseline+fig10 schemes", full.N)
	// The gated metrics get the per-cell error-bar tables; MPKI — looser
	// by design (DESIGN.md §10) — is summarized only.
	fmt.Print(cyclesErr.Table().String())
	fmt.Print(speedupErr.Table().String())
	fmt.Println(cyclesErr.Summary())
	fmt.Println(mpkiErr.Summary())
	fmt.Println(speedupErr.Summary())
	fmt.Printf("wall-clock: full grid %.2fs, sampled grid %.2fs -> %.1fx\n",
		fullWall.Seconds(), sampledWall.Seconds(), fullWall.Seconds()/sampledWall.Seconds())

	if errPct >= 0 {
		if worstLabel, worst := cyclesErr.Worst(); worst > errPct {
			fmt.Fprintf(os.Stderr, "acic-bench: sampled cycles error %.2f%% (%s) exceeds -sample-err-pct %.1f\n",
				worst, worstLabel, errPct)
			cleanup()
			os.Exit(1)
		}
		if worstLabel, worst := speedupErr.Worst(); worst > errPct {
			fmt.Fprintf(os.Stderr, "acic-bench: sampled speedup error %.2f%% (%s) exceeds -sample-err-pct %.1f\n",
				worst, worstLabel, errPct)
			cleanup()
			os.Exit(1)
		}
	}
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		n        = flag.Int("n", 0, "trace length in instructions (0 = ACIC_BENCH_N or 400000)")
		apps     = flag.String("apps", "", "restrict datacenter apps (comma-separated)")
		sim      = cliutil.RegisterSim(flag.CommandLine)
		cacheDir = cliutil.RegisterCacheDir(flag.CommandLine)
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
		list     = flag.Bool("list", false, "list experiments and exit")

		benchJSON    = flag.String("bench-json", "", "throughput microbenchmark mode: write ns/access per (scheme x prefetcher) plus gang-sweep wall-clocks to this JSON file and exit")
		benchApp     = flag.String("bench-app", "media-streaming", "workload for -bench-json")
		benchSchemes = flag.String("bench-schemes", "", "schemes for -bench-json (comma-separated; empty = tracked default set)")
		benchPfs     = flag.String("bench-prefetchers", "none,fdp", "prefetcher platforms for -bench-json (comma-separated)")
		benchRepeats = flag.Int("bench-repeats", 3, "timed repetitions per -bench-json cell (best kept)")
		benchSweeps  = flag.Bool("bench-sweeps", true, "also measure per-prefetcher gang-vs-serial sweep wall-clocks in -bench-json mode")
		benchPrepare = flag.Bool("bench-prepare-sweeps", true, "also measure batch-vs-streamed cold-prepare wall-clock and peak heap (at n and 4n, scratch stores) in -bench-json mode")
		benchDist    = flag.Bool("bench-distributed", false, "also measure the distributed sweep in -bench-json mode: the full app x scheme grid single-process vs coordinator + 1/2/4 workers over a cold shared store, per-cell results verified identical (adds several cold full-grid lanes — minutes)")

		compare    = flag.String("compare", "", "baseline bench JSON: compare per-cell ns/access against it and exit (new side: -compare-to, or the report just measured by -bench-json)")
		compareTo  = flag.String("compare-to", "", "new-side bench JSON for -compare (empty = the -bench-json report measured in this run)")
		regressPct = flag.Float64("regress-pct", 25, "exit non-zero when any compared cell regresses by more than this percentage (negative = never fail)")

		sampleValidate = flag.Bool("sample-validate", false, "validate the set-sampled fast mode: run the headline grid full and sampled, print the per-cell error-bar table and wall-clock speedup, and exit non-zero past -sample-err-pct")
		sampleErrPct   = flag.Float64("sample-err-pct", 10, "-sample-validate failure threshold: worst per-cell |cycles error| and |speedup error| must stay within this percentage (negative = never fail)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if err := sim.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
		os.Exit(1)
	}
	if err := sim.InstallFaults(); err != nil {
		fmt.Fprintf(os.Stderr, "acic-bench: -fault-spec: %v\n", err)
		os.Exit(1)
	}
	// SIGINT/SIGTERM cancel at cell boundaries: running cells finish, the
	// stores stay consistent, partial output flushes, and the process
	// exits cliutil.ExitInterrupted. A second signal kills immediately.
	ctx, stopSignals := cliutil.InterruptContext()
	defer stopSignals()

	stopCPUProfile := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopCPUProfile = func() { pprof.StopCPUProfile(); f.Close() }
	}
	defer stopCPUProfile()
	writeMemProfile := func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	// runCompare diffs a baseline bench JSON against newRep (read from
	// -compare-to when newRep is nil) and exits non-zero on a regression
	// beyond -regress-pct.
	runCompare := func(newRep *perf.Report) {
		oldRep, err := perf.ReadJSON(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: -compare: %v\n", err)
			os.Exit(1)
		}
		if newRep == nil {
			if *compareTo == "" {
				fmt.Fprintln(os.Stderr, "acic-bench: -compare needs -compare-to FILE (or -bench-json to measure the new side)")
				os.Exit(1)
			}
			if newRep, err = perf.ReadJSON(*compareTo); err != nil {
				fmt.Fprintf(os.Stderr, "acic-bench: -compare-to: %v\n", err)
				os.Exit(1)
			}
		}
		c := perf.Compare(oldRep, newRep)
		fmt.Printf("=== bench comparison: %s -> new\n%s%s\n", *compare, c.Table(), c.Summary())
		// A cell present on only one side is a broken comparison, not a
		// zero-delta row: under an enforcing -regress-pct it is an error
		// (a renamed or dropped cell would otherwise dodge the gate).
		// Negative -regress-pct keeps the informational mode used when
		// diffing against historical baselines with different cell sets.
		for _, only := range c.OnlyOld {
			fmt.Printf("only in baseline: %s\n", only)
		}
		for _, only := range c.OnlyNew {
			fmt.Printf("only in new: %s\n", only)
		}
		if *regressPct >= 0 {
			if err := c.MissingCells(); err != nil {
				fmt.Fprintf(os.Stderr, "acic-bench: -compare: %v\n", err)
				os.Exit(1)
			}
			if c.WorstPct() > *regressPct {
				fmt.Fprintf(os.Stderr, "acic-bench: throughput regression: worst cell %+.1f%% exceeds -regress-pct %.1f\n",
					c.WorstPct(), *regressPct)
				os.Exit(1)
			}
		}
	}

	if *sampleValidate {
		runSampleValidate(ctx, sim, *n, *apps, *sampleErrPct)
		if ctx.Err() != nil {
			os.Exit(cliutil.ExitInterrupted)
		}
		return
	}

	if *benchJSON != "" {
		cfg := perf.Config{Context: ctx, App: *benchApp, N: *n, Repeats: *benchRepeats,
			ArtifactDir: sim.ArtifactDir, PrepareWindow: sim.PrepareWindow,
			PrepareSweeps: *benchPrepare, DistributedSweeps: *benchDist}
		if ss, err := sim.ResolveSampleSets(); err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
			os.Exit(1)
		} else {
			cfg.SampleSets = ss
		}
		if *benchSchemes != "" {
			cfg.Schemes = strings.Split(*benchSchemes, ",")
		}
		if *benchPfs != "" {
			cfg.Prefetchers = strings.Split(*benchPfs, ",")
		}
		cfg.GangSize = sim.GangSize
		if !*benchSweeps {
			cfg.GangSize = -1
		}
		cfg.GangWindow, _ = sim.ResolveGangWindow() // validated above
		rep, err := perf.Measure(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("=== throughput microbenchmark: %s, n=%d (best of %d)\n%s", *benchApp, rep.N, *benchRepeats, rep.Table())
		fmt.Println(rep.PrepareSummary())
		if st := rep.SweepTable(); st != nil {
			fmt.Printf("=== gang sweeps: wall-clock per full scheme row (best of %d)\n%s", *benchRepeats, st)
		}
		if st := rep.SampledSweepTable(); st != nil {
			fmt.Printf("=== sampled sweeps: full vs set-sampled wall-clock per scheme row (best of %d)\n%s", *benchRepeats, st)
		}
		if st := rep.CrossSweepTable(); st != nil {
			fmt.Printf("=== cross-prefetcher sweeps: serial vs gang (fixed / auto window) wall-clock per row (best of %d)\n%s", *benchRepeats, st)
		}
		if st := rep.PrepareSweepTable(); st != nil {
			fmt.Printf("=== prepare sweeps: batch vs streamed cold prepare (scratch stores)\n%s", st)
		}
		if st := rep.DistributedSweepTable(); st != nil {
			fmt.Printf("=== distributed sweeps: single-process vs coordinator + workers, cold shared store per lane\n%s", st)
		}
		if rep.Faults != nil {
			fmt.Println(rep.Faults)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		// Finish the profiles before the comparison: its regression gate
		// may os.Exit, and the profile of a regressed tree is exactly the
		// one worth keeping intact.
		stopCPUProfile()
		writeMemProfile()
		if rep.Interrupted {
			// The partial report was flushed above with "interrupted":
			// true; a comparison against it would be a lie, so skip it.
			fmt.Fprintf(os.Stderr, "acic-bench: interrupted — %s holds a partial report\n", *benchJSON)
			os.Exit(cliutil.ExitInterrupted)
		}
		if *compare != "" {
			runCompare(rep)
		}
		return
	}

	if *compare != "" {
		runCompare(nil)
		return
	}

	exps := experiments.Registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.Slug, e.Desc)
		}
		return
	}

	// -exp names resolve through the registry's slug lookup — the same
	// identifiers /v1/experiments serves, so the CLI and the API cannot
	// drift.
	want := map[string]bool{}
	if *exp != "all" {
		var unknown []string
		for _, w := range strings.Split(*exp, ",") {
			w = strings.TrimSpace(w)
			if _, ok := experiments.LookupExperiment(w); !ok {
				unknown = append(unknown, w)
				continue
			}
			want[w] = true
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "unknown experiments: %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(1)
		}
	}

	sampleSets, err := sim.ResolveSampleSets()
	if err != nil {
		fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
		os.Exit(1)
	}
	suite := experiments.NewSuite(*n)
	suite.Context = ctx
	suite.Workers = sim.Workers
	suite.GangSize = sim.SuiteGangSize(suite.N)
	suite.GangWindow, _ = sim.ResolveGangWindow() // validated above
	suite.CacheDir = *cacheDir
	suite.ArtifactDir = sim.ArtifactDir
	suite.PrepareWindow = sim.PrepareWindow
	suite.SampleSets = sampleSets
	suite.SampleOffset = sim.SampleOffset
	if sampleSets > 0 {
		fmt.Printf("set-sampled fast mode: %d of %d L1i sets; statistics extrapolated (error bars: DESIGN.md §10, acic-bench -sample-validate)\n",
			sampleSets, cliutil.DefaultL1Sets)
	}
	if *apps != "" {
		suite.Apps = strings.Split(*apps, ",")
	}
	if *progress {
		suite.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, label)
		}
	}
	// CacheError spins up the engine, freezing the fields set above.
	if err := suite.CacheError(); err != nil {
		fmt.Fprintf(os.Stderr, "acic-bench: %v\n", err)
		os.Exit(1)
	}
	// One bad figure must not cost the rest of the run: failures are
	// reported and the remaining experiments still execute (the engine has
	// already contained the failure to the offending cells). An interrupt
	// stops the loop instead — everything printed so far is complete.
	var failed []string
	interrupted := false
	for _, e := range exps {
		if *exp != "all" && !want[e.Slug] {
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		out, err := e.Run(suite)
		if err != nil {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			failed = append(failed, e.Slug)
			fmt.Fprintf(os.Stderr, "acic-bench: %s: %v\n", e.Slug, err)
			continue
		}
		fmt.Printf("=== %s: %s (%.1fs)\n%s\n", e.Slug, e.Desc, time.Since(start).Seconds(), out)
	}
	if *progress {
		computed, fromCache, workloads := suite.Stats()
		fmt.Fprintf(os.Stderr, "computed %d cells, %d from cache, %d workloads prepared\n",
			computed, fromCache, workloads)
		for _, st := range suite.PrepareStats() {
			fmt.Fprintf(os.Stderr, "prepare %-8s %d regenerated, %d from artifact store\n",
				st.Stage, st.Computed, st.FromStore)
		}
		if gs := suite.GangStats(); gs.Gangs > 0 {
			fmt.Fprintf(os.Stderr, "gangs: %d runs covering %d cells (%d cross-prefetcher), max width %d, window %d\n",
				gs.Gangs, gs.Cells, gs.Mixed, gs.MaxWidth, gs.Window)
		}
		if fs := suite.FaultStats(); sim.FaultSpec != "" || fs.Any() {
			fmt.Fprintln(os.Stderr, fs)
		}
		if interrupted {
			fmt.Fprintln(os.Stderr, "interrupted: true")
		}
	}
	stopCPUProfile()
	writeMemProfile()
	switch {
	case interrupted:
		fmt.Fprintln(os.Stderr, "acic-bench: interrupted — output above is partial")
		os.Exit(cliutil.ExitInterrupted)
	case len(failed) > 0:
		fmt.Fprintf(os.Stderr, "acic-bench: %d experiment(s) failed: %s\n", len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}
