// Command acic-coord runs the paper's experiments with plan execution
// sharded across processes (DESIGN.md §14). It enumerates the same
// deduplicated cell grid acic-bench would, but instead of simulating
// every cell locally it serves same-app batches to stateless acic-worker
// processes over a thin HTTP/JSON work-stealing protocol, alongside a
// shared artifact + result store on the same listener. Results flow back
// through the store, so the rendered output is byte-identical to
// single-process execution at any worker count — `acic-bench -exp all`
// and `acic-coord -exp all` diff clean.
//
// One listener serves everything: /api/* is the coordinator protocol,
// /blob/* and /healthz the shared store. Workers need only the URL:
//
//	acic-coord -exp all -listen 127.0.0.1:9321 &
//	acic-worker -coord http://127.0.0.1:9321 &
//	acic-worker -coord http://127.0.0.1:9321 &
//
// or, self-contained on one machine:
//
//	acic-coord -exp all -local-workers 2
//
// Worker death mid-batch is absorbed by lease expiry and requeueing;
// with no workers at all the coordinator (after -no-worker-timeout, if
// set) falls back to computing locally. -store-dir persists the shared
// store (default: a scratch directory removed at exit); -store-url
// points coordinator and workers at an external store server instead of
// the built-in one.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"acic/cmd/internal/cliutil"
	"acic/internal/distrib"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		n        = flag.Int("n", 0, "trace length in instructions (0 = ACIC_BENCH_N or 400000)")
		apps     = flag.String("apps", "", "restrict datacenter apps (comma-separated)")
		listen   = flag.String("listen", "127.0.0.1:0", "address serving the coordinator API and the shared store (port 0 = ephemeral, printed at startup)")
		storeDir = flag.String("store-dir", "", "shared store directory served to workers (empty = scratch, removed at exit)")
		storeURL = flag.String("store-url", "", "external shared store URL for coordinator and workers (empty = serve -store-dir on -listen)")
		lease    = flag.Duration("lease", 30*time.Second, "batch lease: a claimed batch unreported past this is requeued to another worker")
		requeues = flag.Int("max-requeues", 3, "per-batch requeue budget (lease expiries + transient failures) before its cells run locally")
		noWorker = flag.Duration("no-worker-timeout", 0, "fall back to local execution when no worker has made contact for this long (0 = wait forever)")
		localW   = flag.Int("local-workers", 0, "spawn this many in-process workers (a self-contained distributed run)")
		sim      = cliutil.RegisterSim(flag.CommandLine)
		progress = flag.Bool("progress", false, "report per-cell progress and scheduling stats on stderr")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "acic-coord: "+format+"\n", args...)
		os.Exit(1)
	}
	if err := sim.Validate(); err != nil {
		fail("%v", err)
	}
	if err := sim.InstallFaults(); err != nil {
		fail("-fault-spec: %v", err)
	}
	sampleSets, err := sim.ResolveSampleSets()
	if err != nil {
		fail("%v", err)
	}
	gangWindow, _ := sim.ResolveGangWindow() // validated above

	ctx, stopSignals := cliutil.InterruptContext()
	defer stopSignals()

	// The shared store: an external server when -store-url is given, else
	// our own -store-dir (scratch by default) served on the listener.
	dir := *storeDir
	if *storeURL == "" && dir == "" {
		scratch, err := os.MkdirTemp("", "acic-coord-store-*")
		if err != nil {
			fail("%v", err)
		}
		defer os.RemoveAll(scratch)
		dir = scratch
	}

	mux := http.NewServeMux()
	if *storeURL == "" {
		storeHandler, err := engine.NewStoreHandler(dir)
		if err != nil {
			fail("%v", err)
		}
		mux.Handle("/", storeHandler)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("-listen %s: %v", *listen, err)
	}
	selfURL := "http://" + ln.Addr().String()
	advertised := *storeURL
	if advertised == "" {
		advertised = selfURL
	}

	cfg := distrib.Config{
		N:             experiments.NewSuite(*n).N, // resolves 0 -> default
		SampleSets:    sampleSets,
		SampleOffset:  sim.SampleOffset,
		GangWindow:    gangWindow,
		PrepareWindow: sim.PrepareWindow,
		StoreURL:      advertised,
	}
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	cfg.GangSize = sim.SuiteGangSize(cfg.N)

	coord := distrib.NewCoordinator(distrib.CoordinatorOptions{
		Config:          cfg,
		Lease:           *lease,
		MaxRequeues:     *requeues,
		NoWorkerTimeout: *noWorker,
	})
	defer coord.Close()
	mux.Handle("/api/", coord.Handler())

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "acic-coord: serving %s (store %s)\n", selfURL, advertised)

	var workers sync.WaitGroup
	for i := 0; i < *localW; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			opts := distrib.WorkerOptions{Coord: selfURL, Workers: sim.Workers, Name: fmt.Sprintf("local-%d", i)}
			if *progress {
				opts.Log = func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, format+"\n", args...)
				}
			}
			if err := distrib.RunWorker(ctx, opts); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "acic-coord: local worker %d: %v\n", i, err)
			}
		}(i)
	}

	// The coordinator's own suite: stores point at the shared root (the
	// local directory when we serve it ourselves — same bytes the HTTP
	// view publishes — or the external URL), and Remote routes every
	// Require batch through the work-stealing queue.
	suite := experiments.NewSuite(cfg.N)
	suite.Context = ctx
	suite.Apps = cfg.Apps
	suite.Workers = sim.Workers
	suite.GangSize = cfg.GangSize
	suite.GangWindow = cfg.GangWindow
	suite.SampleSets = cfg.SampleSets
	suite.SampleOffset = cfg.SampleOffset
	suite.PrepareWindow = cfg.PrepareWindow
	suite.Remote = coord
	if *storeURL != "" {
		suite.CacheDir, suite.ArtifactDir = *storeURL, *storeURL
	} else {
		suite.CacheDir, suite.ArtifactDir = dir, dir
	}
	if *progress {
		suite.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, label)
		}
	}
	if err := suite.CacheError(); err != nil {
		fail("%v", err)
	}

	exps := experiments.Registry()
	want := map[string]bool{}
	if *exp != "all" {
		for _, w := range strings.Split(*exp, ",") {
			w = strings.TrimSpace(w)
			if _, ok := experiments.LookupExperiment(w); !ok {
				fail("unknown experiment %q (see acic-bench -list)", w)
			}
			want[w] = true
		}
	}

	var failed []string
	interrupted := false
	for _, e := range exps {
		if *exp != "all" && !want[e.Slug] {
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		out, err := e.Run(suite)
		if err != nil {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			failed = append(failed, e.Slug)
			fmt.Fprintf(os.Stderr, "acic-coord: %s: %v\n", e.Slug, err)
			continue
		}
		fmt.Printf("=== %s: %s (%.1fs)\n%s\n", e.Slug, e.Desc, time.Since(start).Seconds(), out)
	}

	// Rendering is done: release the workers, then wait for the local
	// ones so their completions (and logs) finish before we report.
	// Remote workers learn of the shutdown from their next claim's Done
	// answer, so the listener lingers a couple of poll intervals — long
	// enough for every polling worker to hear it and exit 0 instead of
	// dying on a refused connection.
	coord.Close()
	workers.Wait()
	if ctx.Err() == nil {
		time.Sleep(1 * time.Second)
	}

	if *progress {
		computed, fromCache, workloads := suite.Stats()
		fmt.Fprintf(os.Stderr, "computed %d cells locally, %d from shared store, %d workloads prepared\n",
			computed, fromCache, workloads)
		st := coord.Stats()
		fmt.Fprintf(os.Stderr, "distrib: %d batches (%d claimed, %d requeued), %d cells completed remotely, %d fell back local\n",
			st.Batches, st.Claimed, st.Requeued, st.Completed, st.LocalFell)
		if fs := suite.FaultStats(); sim.FaultSpec != "" || fs.Any() {
			fmt.Fprintln(os.Stderr, fs)
		}
	}
	switch {
	case interrupted:
		fmt.Fprintln(os.Stderr, "acic-coord: interrupted — output above is partial")
		os.Exit(cliutil.ExitInterrupted)
	case len(failed) > 0:
		fmt.Fprintf(os.Stderr, "acic-coord: %d experiment(s) failed: %s\n", len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}
