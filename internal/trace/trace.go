// Package trace defines the instruction-trace representation consumed by the
// simulator, together with a compact binary codec and streaming reader/writer.
//
// The paper collects full-system QEMU traces and replays them through a
// cycle-accurate simulator. Here a trace is a sequence of Inst records, each
// describing one dynamic instruction: its PC, its class, and (for control
// flow) its taken direction and target, and (for memory ops) its effective
// address. The i-cache subsystems under study operate on 64-byte blocks of
// the PC stream; helpers for block extraction live here so every package
// shares one definition.
package trace

// BlockShift is log2 of the instruction block size (64-byte blocks).
const BlockShift = 6

// BlockSize is the instruction cache block size in bytes.
const BlockSize = 1 << BlockShift

// Block returns the cache-block address (block number) of a byte address.
func Block(addr uint64) uint64 { return addr >> BlockShift }

// Class enumerates instruction classes the timing model distinguishes.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota // arithmetic/logic, no memory, no control flow
	ClassLoad
	ClassStore
	ClassCondBranch // conditional direct branch
	ClassJump       // unconditional direct jump
	ClassCall       // direct call (pushes return address)
	ClassRet        // return (pops return address)
	ClassIndirect   // indirect jump/call other than return
	numClasses
)

// String returns a short mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassCondBranch:
		return "br"
	case ClassJump:
		return "jmp"
	case ClassCall:
		return "call"
	case ClassRet:
		return "ret"
	case ClassIndirect:
		return "ind"
	default:
		return "?"
	}
}

// IsBranch reports whether the class redirects control flow.
func (c Class) IsBranch() bool {
	switch c {
	case ClassCondBranch, ClassJump, ClassCall, ClassRet, ClassIndirect:
		return true
	}
	return false
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// Inst is one dynamic instruction in a trace.
type Inst struct {
	PC      uint64 // instruction virtual address
	Target  uint64 // next PC if the branch is taken (branches only)
	MemAddr uint64 // effective address (loads/stores only)
	Class   Class
	Taken   bool // conditional branches: actual direction
}

// Block returns the instruction block this instruction resides in.
func (in *Inst) Block() uint64 { return Block(in.PC) }

// NextPC returns the architecturally correct next PC given the following
// sequential address fallthrough. For taken control flow it is Target.
func (in *Inst) NextPC(fallthrough_ uint64) uint64 {
	if in.Class.IsBranch() && (in.Class != ClassCondBranch || in.Taken) {
		return in.Target
	}
	return fallthrough_
}

// Trace is an in-memory instruction trace.
type Trace struct {
	Name  string
	Insts []Inst
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Insts) }

// BlockAccesses returns the sequence of instruction-block accesses in fetch
// order, collapsing consecutive instructions in the same block into a single
// access. This is the granularity at which the i-cache subsystems operate:
// the fetch engine touches the block once per fetch group that enters it.
func (t *Trace) BlockAccesses() []uint64 {
	out := make([]uint64, 0, len(t.Insts)/4+1)
	var last uint64 = ^uint64(0)
	for i := range t.Insts {
		b := t.Insts[i].Block()
		if b != last {
			out = append(out, b)
			last = b
		}
	}
	return out
}

// Footprint returns the number of distinct instruction blocks in the trace.
func (t *Trace) Footprint() int {
	seen := make(map[uint64]struct{})
	for i := range t.Insts {
		seen[t.Insts[i].Block()] = struct{}{}
	}
	return len(seen)
}
