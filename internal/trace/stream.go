package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Packed instruction sections and chunked container writing.
//
// The original SecInsts payload spends ~4B per instruction: a varint PC
// delta, a flags byte, and (for branches/mem ops) a raw operand varint.
// The packed SecInstsZ payload folds the dominant structure of the stream
// into single tokens:
//
//	payload := count uvarint, then records
//	token   := uvarint(u<<5 | op)
//	op 0..15:  one record; class = op>>1, taken = op&1,
//	           u = zigzag((PC-prevPC)/4)   (instruction PCs are 4-aligned)
//	           branches append uvarint(zigzag((Target-PC)/4))
//	           loads/stores append uvarint(zigzag(MemAddr-prevMem))
//	op 16:     a run of u sequential not-taken ALU instructions, each
//	           advancing the PC by 4
//	op 17:     escape for records the folded forms cannot carry (PC or
//	           target not 4-aligned): uvarint(zigzag(PC-prevPC)), the
//	           SecInsts flags byte, then the SecInsts operand encoding
//
// Sequential fetch makes the common tokens one byte (delta/4 = 1 folds to
// token 64+op) and collapses straight-line ALU runs to one or two bytes,
// so the packed stream lands well under the old 4B/inst. Each section is
// self-contained — prevPC and prevMem reset to zero per section — which is
// what lets the streaming writer emit one section per window and the
// reader concatenate any number of SecInstsZ sections back into one trace.

// SecInstsZ tags a packed instruction section. A container may carry
// several (one per streamed window); Read concatenates them in order.
const SecInstsZ = "INSZ"

const (
	packedOpShift  = 5
	packedOpMask   = 1<<packedOpShift - 1
	packedOpRun    = 16 // u = run length of sequential ALU records
	packedOpEscape = 17 // raw SecInsts-style record follows
)

// EncodeInstsPacked encodes an instruction stream as a SecInstsZ payload.
func EncodeInstsPacked(insts []Inst) []byte {
	out := make([]byte, 0, len(insts)+len(insts)/2+binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(insts)))
	var prevPC, prevMem uint64
	for i := 0; i < len(insts); {
		in := &insts[i]
		// Maximal run of sequential not-taken ALU instructions.
		if in.Class == ClassALU && !in.Taken && in.PC == prevPC+instAlign {
			j := i + 1
			for j < len(insts) && insts[j].Class == ClassALU && !insts[j].Taken &&
				insts[j].PC == insts[j-1].PC+instAlign {
				j++
			}
			if run := j - i; run >= 2 {
				out = binary.AppendUvarint(out, uint64(run)<<packedOpShift|packedOpRun)
				prevPC = insts[j-1].PC
				i = j
				continue
			}
		}
		pcDelta := int64(in.PC - prevPC)
		tgtDelta := int64(in.Target - in.PC)
		foldable := in.Class < 16 && pcDelta%instAlign == 0 &&
			(!in.Class.IsBranch() || tgtDelta%instAlign == 0)
		if foldable {
			op := uint64(in.Class) << 1
			if in.Taken {
				op |= 1
			}
			out = binary.AppendUvarint(out, zigzag(pcDelta/instAlign)<<packedOpShift|op)
			if in.Class.IsBranch() {
				out = binary.AppendUvarint(out, zigzag(tgtDelta/instAlign))
			}
		} else {
			out = binary.AppendUvarint(out, packedOpEscape) // u = 0
			out = binary.AppendUvarint(out, zigzag(pcDelta))
			flags := byte(in.Class)
			if in.Taken {
				flags |= 0x80
			}
			out = append(out, flags)
			if in.Class.IsBranch() {
				out = binary.AppendUvarint(out, zigzag(tgtDelta))
			}
		}
		if in.Class.IsMem() {
			out = binary.AppendUvarint(out, zigzag(int64(in.MemAddr-prevMem)))
			prevMem = in.MemAddr
		}
		prevPC = in.PC
		i++
	}
	return out
}

// instAlign is the fixed instruction encoding width assumed by the folded
// token forms; anything else rides the escape op.
const instAlign = 4

// DecodeInstsPacked decodes one SecInstsZ payload.
func DecodeInstsPacked(data []byte) ([]Inst, error) {
	return AppendInstsPacked(nil, data)
}

// AppendInstsPacked decodes a SecInstsZ payload, appending to dst — the
// reader uses it to concatenate the per-window sections a streamed
// container carries.
func AppendInstsPacked(dst []Inst, data []byte) ([]Inst, error) {
	pos := 0
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	count, ok := uvarint()
	if !ok {
		return nil, fmt.Errorf("%w: packed instruction count: truncated varint", ErrBadFormat)
	}
	// A run token covers many records in one payload byte, so the old
	// ">= 1 byte per record" bound no longer caps count. Bound the upfront
	// allocation instead: a lying count fails on a truncated token once
	// the payload runs dry, after only bounded growth.
	if count > maxSaneLen {
		return nil, fmt.Errorf("%w: packed instruction count %d too large", ErrBadFormat, count)
	}
	if dst == nil {
		dst = make([]Inst, 0, min(count, 1<<20))
	}
	var prevPC, prevMem uint64
	for n := uint64(0); n < count; {
		tok, ok := uvarint()
		if !ok {
			return nil, fmt.Errorf("%w: packed record %d: truncated token", ErrBadFormat, n)
		}
		op := tok & packedOpMask
		u := tok >> packedOpShift
		var in Inst
		switch {
		case op == packedOpRun:
			if u < 1 || u > count-n {
				return nil, fmt.Errorf("%w: packed record %d: run of %d exceeds count %d", ErrBadFormat, n, u, count)
			}
			for k := uint64(0); k < u; k++ {
				prevPC += instAlign
				dst = append(dst, Inst{PC: prevPC, Class: ClassALU})
			}
			n += u
			continue
		case op == packedOpEscape:
			d, ok := uvarint()
			if !ok {
				return nil, fmt.Errorf("%w: packed record %d: truncated escape delta", ErrBadFormat, n)
			}
			if pos >= len(data) {
				return nil, fmt.Errorf("%w: packed record %d: truncated flags", ErrBadFormat, n)
			}
			flags := data[pos]
			pos++
			in = Inst{PC: prevPC + uint64(unzigzag(d)), Class: Class(flags & 0x7f), Taken: flags&0x80 != 0}
			if in.Class >= numClasses {
				return nil, fmt.Errorf("%w: packed record %d: bad class %d", ErrBadFormat, n, in.Class)
			}
			if in.Class.IsBranch() {
				td, ok := uvarint()
				if !ok {
					return nil, fmt.Errorf("%w: packed record %d: truncated target", ErrBadFormat, n)
				}
				in.Target = in.PC + uint64(unzigzag(td))
			}
		default:
			in = Inst{PC: prevPC + uint64(unzigzag(u)*instAlign), Class: Class(op >> 1), Taken: op&1 != 0}
			if in.Class >= numClasses {
				return nil, fmt.Errorf("%w: packed record %d: bad class %d", ErrBadFormat, n, in.Class)
			}
			if in.Class.IsBranch() {
				td, ok := uvarint()
				if !ok {
					return nil, fmt.Errorf("%w: packed record %d: truncated target", ErrBadFormat, n)
				}
				in.Target = in.PC + uint64(unzigzag(td)*instAlign)
			}
		}
		if in.Class.IsMem() {
			d, ok := uvarint()
			if !ok {
				return nil, fmt.Errorf("%w: packed record %d: truncated memaddr", ErrBadFormat, n)
			}
			in.MemAddr = prevMem + uint64(unzigzag(d))
			prevMem = in.MemAddr
		}
		prevPC = in.PC
		dst = append(dst, in)
		n++
	}
	return dst, nil
}

// ContainerWriter writes a v2 container section by section, so a streamed
// producer can append windows as they are generated instead of holding the
// whole image in memory. The section count is not known up front; Close
// patches it into the header, which is why the writer needs an
// io.WriteSeeker (the artifact store hands it the temp file it later
// renames into place).
type ContainerWriter struct {
	ws   io.WriteSeeker
	bw   *bufio.Writer
	nsec uint32
	err  error
}

// nsecOffset is the byte offset of the section-count field in the
// container header: magic[4] + version[4] + nameLen[4].
const nsecOffset = 12

// NewContainerWriter writes the container header with a zero section
// count and returns a writer ready for WriteSection calls.
func NewContainerWriter(ws io.WriteSeeker, name string) (*ContainerWriter, error) {
	if len(name) > 1<<16 {
		return nil, fmt.Errorf("trace: container name %d bytes exceeds the reader's %d limit", len(name), 1<<16)
	}
	bw := bufio.NewWriterSize(ws, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], codecVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(name)))
	binary.LittleEndian.PutUint32(hdr[8:12], 0) // patched by Close
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &ContainerWriter{ws: ws, bw: bw}, nil
}

// WriteSection appends one tagged section.
func (cw *ContainerWriter) WriteSection(tag string, data []byte) error {
	if cw.err != nil {
		return cw.err
	}
	if len(tag) != 4 {
		return fmt.Errorf("trace: section tag %q must be 4 bytes", tag)
	}
	if uint64(len(data)) > maxSaneLen {
		return fmt.Errorf("trace: section %q payload %d bytes exceeds the reader's limit", tag, len(data))
	}
	if cw.nsec >= 1<<10 {
		cw.err = fmt.Errorf("trace: section count exceeds the reader's %d limit", 1<<10)
		return cw.err
	}
	var sh [16]byte
	copy(sh[0:4], tag)
	binary.LittleEndian.PutUint64(sh[4:12], uint64(len(data)))
	binary.LittleEndian.PutUint32(sh[12:16], crc32.ChecksumIEEE(data))
	if _, err := cw.bw.Write(sh[:]); err != nil {
		cw.err = err
		return err
	}
	if _, err := cw.bw.Write(data); err != nil {
		cw.err = err
		return err
	}
	cw.nsec++
	return nil
}

// Close flushes buffered sections and patches the section count into the
// header, leaving the stream positioned at the end of the container.
func (cw *ContainerWriter) Close() error {
	if cw.err != nil {
		return cw.err
	}
	if err := cw.bw.Flush(); err != nil {
		cw.err = err
		return err
	}
	if _, err := cw.ws.Seek(nsecOffset, io.SeekStart); err != nil {
		cw.err = err
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], cw.nsec)
	if _, err := cw.ws.Write(n[:]); err != nil {
		cw.err = err
		return err
	}
	if _, err := cw.ws.Seek(0, io.SeekEnd); err != nil {
		cw.err = err
		return err
	}
	return nil
}
