package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic   [4]byte  "ACTR"
//	version uint32   1
//	nameLen uint32, name bytes
//	count   uint64
//	records: varint-delta encoded Inst stream
//
// PCs are delta-encoded (zigzag) against the previous PC because the stream
// is dominated by sequential fetch; this keeps large traces compact.

var magic = [4]byte{'A', 'C', 'T', 'R'}

const codecVersion = 1

// ErrBadFormat reports a malformed or truncated trace stream.
var ErrBadFormat = errors.New("trace: bad format")

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write encodes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], codecVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(t.Name)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(t.Insts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	var buf [3 * binary.MaxVarintLen64]byte
	var prevPC uint64
	for i := range t.Insts {
		in := &t.Insts[i]
		n := binary.PutUvarint(buf[:], zigzag(int64(in.PC-prevPC)))
		prevPC = in.PC
		flags := byte(in.Class)
		if in.Taken {
			flags |= 0x80
		}
		buf[n] = flags
		n++
		if in.Class.IsBranch() {
			n += binary.PutUvarint(buf[n:], zigzag(int64(in.Target-in.PC)))
		}
		if in.Class.IsMem() {
			n += binary.PutUvarint(buf[n:], in.MemAddr)
		}
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace previously written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	nameLen := binary.LittleEndian.Uint32(hdr[4:8])
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: name length %d too large", ErrBadFormat, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Trace{Name: string(nameBuf), Insts: make([]Inst, 0, count)}
	var prevPC uint64
	for i := uint64(0); i < count; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		pc := prevPC + uint64(unzigzag(d))
		prevPC = pc
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		in := Inst{PC: pc, Class: Class(flags & 0x7f), Taken: flags&0x80 != 0}
		if in.Class >= numClasses {
			return nil, fmt.Errorf("%w: record %d: bad class %d", ErrBadFormat, i, in.Class)
		}
		if in.Class.IsBranch() {
			td, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d target: %w", i, err)
			}
			in.Target = pc + uint64(unzigzag(td))
		}
		if in.Class.IsMem() {
			a, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d memaddr: %w", i, err)
			}
			in.MemAddr = a
		}
		t.Insts = append(t.Insts, in)
	}
	return t, nil
}
