package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary container format, version 2:
//
//	magic    [4]byte  "ACTR"
//	version  uint32   2
//	nameLen  uint32
//	nsec     uint32
//	name     bytes (nameLen of them)
//	sections, each:
//	  tag    [4]byte
//	  length uint64   payload bytes
//	  crc    uint32   IEEE CRC-32 of the payload
//	  payload
//
// A version-1 file was a bare instruction stream (the payload now carried in
// the "INST" section, preceded by its count); Read still accepts it. Version
// 2 generalizes the file into a container of tagged sections so the prepared
// workload artifacts — branch annotations, cpu.Program descriptor arrays,
// the data-latency timeline, and the next-use successor array — persist
// through the same codec as the trace itself (DESIGN.md §9). Unknown tags
// are preserved by ReadContainer, so older readers skip sections newer
// writers add.
//
// PCs in the instruction payload are delta-encoded (zigzag) against the
// previous PC because the stream is dominated by sequential fetch; this
// keeps large traces compact. The remaining payload encodings (delta
// varints for sorted-ish uint64 arrays, zigzag varints for int64 arrays,
// fixed 2-byte little-endian for int16 arrays) are exposed as helpers so
// the layers that own the typed arrays (cpu, analysis, experiments) encode
// them without duplicating varint plumbing.

var magic = [4]byte{'A', 'C', 'T', 'R'}

const codecVersion = 2

// Section tags for the workload artifacts persisted through this codec.
// The trace package owns only the names; the typed contents belong to the
// layers that produce them.
const (
	SecInsts   = "INST" // instruction stream (count + varint records; superseded by SecInstsZ)
	SecAnnot   = "ANNO" // branch.Annotation redirect byte per instruction
	SecDesc    = "DESC" // cpu.Program descriptor byte per instruction
	SecBlocks  = "BLKS" // collapsed block-access sequence (delta varints)
	SecNextAt  = "NXTA" // next-use successor array (zigzag varints)
	SecDataLat = "DLAT" // data-side latency timeline (int16 LE)
)

// ErrBadFormat reports a malformed, truncated, or corrupt stream.
var ErrBadFormat = errors.New("trace: bad format")

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Section is one tagged payload of a version-2 container.
type Section struct {
	Tag  string // 4 bytes
	Data []byte
}

// WriteContainer encodes a named set of sections in the v2 container
// format. Section order is preserved. The reader's sanity limits (name
// and section-count bounds, per-section payload <= maxSaneLen) are
// enforced here too, so a successful write always produces a readable
// file.
func WriteContainer(w io.Writer, name string, secs []Section) error {
	if len(name) > 1<<16 {
		return fmt.Errorf("trace: container name %d bytes exceeds the reader's %d limit", len(name), 1<<16)
	}
	if len(secs) > 1<<10 {
		return fmt.Errorf("trace: %d sections exceed the reader's %d limit", len(secs), 1<<10)
	}
	for _, s := range secs {
		if len(s.Tag) != 4 {
			return fmt.Errorf("trace: section tag %q must be 4 bytes", s.Tag)
		}
		if uint64(len(s.Data)) > maxSaneLen {
			return fmt.Errorf("trace: section %q payload %d bytes exceeds the reader's limit", s.Tag, len(s.Data))
		}
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], codecVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(name)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(secs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	for _, s := range secs {
		var sh [16]byte
		copy(sh[0:4], s.Tag)
		binary.LittleEndian.PutUint64(sh[4:12], uint64(len(s.Data)))
		binary.LittleEndian.PutUint32(sh[12:16], crc32.ChecksumIEEE(s.Data))
		if _, err := bw.Write(sh[:]); err != nil {
			return err
		}
		if _, err := bw.Write(s.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxSaneLen bounds single-allocation sizes while decoding, so a corrupt
// length field fails cleanly instead of attempting a huge allocation.
const maxSaneLen = 1 << 32

// maxPreallocInsts caps the upfront record allocation a packed-section
// count can request; traces past it (128 MB of records) grow from there.
const maxPreallocInsts = 1 << 22

// ReadContainer decodes a v2 container, verifying each section's checksum.
// Truncated streams and checksum mismatches return ErrBadFormat.
func ReadContainer(r io.Reader) (name string, secs []Section, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return "", nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if m != magic {
		return "", nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != codecVersion {
		return "", nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadFormat, v, codecVersion)
	}
	nameLen := binary.LittleEndian.Uint32(hdr[4:8])
	nsec := binary.LittleEndian.Uint32(hdr[8:12])
	if nameLen > 1<<16 || nsec > 1<<10 {
		return "", nil, fmt.Errorf("%w: implausible header (name %d, sections %d)", ErrBadFormat, nameLen, nsec)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return "", nil, fmt.Errorf("%w: reading name: %v", ErrBadFormat, err)
	}
	secs = make([]Section, 0, nsec)
	for i := uint32(0); i < nsec; i++ {
		var sh [16]byte
		if _, err := io.ReadFull(br, sh[:]); err != nil {
			return "", nil, fmt.Errorf("%w: section %d header: %v", ErrBadFormat, i, err)
		}
		length := binary.LittleEndian.Uint64(sh[4:12])
		if length > maxSaneLen {
			return "", nil, fmt.Errorf("%w: section %d length %d too large", ErrBadFormat, i, length)
		}
		data, err := readCapped(br, length)
		if err != nil {
			return "", nil, fmt.Errorf("%w: section %d payload: %v", ErrBadFormat, i, err)
		}
		if crc := crc32.ChecksumIEEE(data); crc != binary.LittleEndian.Uint32(sh[12:16]) {
			return "", nil, fmt.Errorf("%w: section %q checksum mismatch", ErrBadFormat, sh[0:4])
		}
		secs = append(secs, Section{Tag: string(sh[0:4]), Data: data})
	}
	return string(nameBuf), secs, nil
}

// readCapped reads exactly n bytes, growing the buffer in bounded chunks
// so a corrupt length field fails once the stream runs dry instead of
// zeroing gigabytes up front.
func readCapped(r io.Reader, n uint64) ([]byte, error) {
	const chunk = uint64(1 << 20)
	buf := make([]byte, 0, int(min(n, chunk)))
	for uint64(len(buf)) < n {
		old := len(buf)
		buf = append(buf, make([]byte, int(min(n-uint64(len(buf)), chunk)))...)
		if _, err := io.ReadFull(r, buf[old:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// FindSection returns the first section with the given tag.
func FindSection(secs []Section, tag string) ([]byte, bool) {
	for _, s := range secs {
		if s.Tag == tag {
			return s.Data, true
		}
	}
	return nil, false
}

// SectionSpan locates one section's payload inside an encoded container:
// Off is the payload's byte offset from the start of the container, Len
// its length. Spans let corruption tooling (and the fault-injection
// tests) target a precise CRC-covered byte range without re-encoding —
// rewriting through WriteContainer would recompute the checksum and hide
// the damage.
type SectionSpan struct {
	Tag string
	Off int
	Len int
}

// SectionSpans walks an encoded v2 container's layout without decoding
// payloads and returns each section's payload span. The walk applies the
// same sanity limits as ReadContainer; payload CRCs are not verified (the
// caller is usually about to break them on purpose).
func SectionSpans(data []byte) ([]SectionSpan, error) {
	if len(data) < 16 || !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("%w: not a container", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadFormat, v, codecVersion)
	}
	nameLen := binary.LittleEndian.Uint32(data[8:12])
	nsec := binary.LittleEndian.Uint32(data[12:16])
	if nameLen > 1<<16 || nsec > 1<<10 {
		return nil, fmt.Errorf("%w: implausible header (name %d, sections %d)", ErrBadFormat, nameLen, nsec)
	}
	off := 16 + int(nameLen)
	spans := make([]SectionSpan, 0, nsec)
	for i := uint32(0); i < nsec; i++ {
		if off+16 > len(data) {
			return nil, fmt.Errorf("%w: truncated at section %d header", ErrBadFormat, i)
		}
		tag := string(data[off : off+4])
		plen := binary.LittleEndian.Uint64(data[off+4 : off+12])
		if plen > maxSaneLen || off+16+int(plen) > len(data) {
			return nil, fmt.Errorf("%w: truncated in section %q payload", ErrBadFormat, tag)
		}
		spans = append(spans, SectionSpan{Tag: tag, Off: off + 16, Len: int(plen)})
		off += 16 + int(plen)
	}
	return spans, nil
}

// EncodeInsts encodes an instruction stream as an SecInsts payload: the
// record count followed by varint-delta records.
func EncodeInsts(insts []Inst) []byte {
	out := make([]byte, 0, 4*len(insts)+binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(insts)))
	var prevPC uint64
	var buf [3 * binary.MaxVarintLen64]byte
	for i := range insts {
		in := &insts[i]
		n := binary.PutUvarint(buf[:], zigzag(int64(in.PC-prevPC)))
		prevPC = in.PC
		flags := byte(in.Class)
		if in.Taken {
			flags |= 0x80
		}
		buf[n] = flags
		n++
		if in.Class.IsBranch() {
			n += binary.PutUvarint(buf[n:], zigzag(int64(in.Target-in.PC)))
		}
		if in.Class.IsMem() {
			n += binary.PutUvarint(buf[n:], in.MemAddr)
		}
		out = append(out, buf[:n]...)
	}
	return out
}

// DecodeInsts decodes an SecInsts payload. Records are decoded with
// index-based varint reads over the raw payload — the decoder runs once
// per workload artifact load on the warm-start path, and a per-byte
// reader interface there costs more than the arithmetic it feeds.
func DecodeInsts(data []byte) ([]Inst, error) {
	pos := 0
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	count, ok := uvarint()
	if !ok {
		return nil, fmt.Errorf("%w: instruction count: truncated varint", ErrBadFormat)
	}
	// Every record consumes at least one payload byte, so a count beyond
	// the remaining bytes is corrupt — reject it before allocating.
	if count > uint64(len(data)-pos) {
		return nil, fmt.Errorf("%w: instruction count %d exceeds %d payload bytes", ErrBadFormat, count, len(data)-pos)
	}
	insts := make([]Inst, 0, count)
	var prevPC uint64
	for i := uint64(0); i < count; i++ {
		d, ok := uvarint()
		if !ok {
			return nil, fmt.Errorf("%w: record %d: truncated varint", ErrBadFormat, i)
		}
		pc := prevPC + uint64(unzigzag(d))
		prevPC = pc
		if pos >= len(data) {
			return nil, fmt.Errorf("%w: record %d: truncated flags", ErrBadFormat, i)
		}
		flags := data[pos]
		pos++
		in := Inst{PC: pc, Class: Class(flags & 0x7f), Taken: flags&0x80 != 0}
		if in.Class >= numClasses {
			return nil, fmt.Errorf("%w: record %d: bad class %d", ErrBadFormat, i, in.Class)
		}
		if in.Class.IsBranch() {
			td, ok := uvarint()
			if !ok {
				return nil, fmt.Errorf("%w: record %d target: truncated varint", ErrBadFormat, i)
			}
			in.Target = pc + uint64(unzigzag(td))
		}
		if in.Class.IsMem() {
			a, ok := uvarint()
			if !ok {
				return nil, fmt.Errorf("%w: record %d memaddr: truncated varint", ErrBadFormat, i)
			}
			in.MemAddr = a
		}
		insts = append(insts, in)
	}
	return insts, nil
}

// EncodeUint64sDelta encodes a uint64 array as count + zigzag varint deltas
// against the previous element (block sequences revisit nearby addresses,
// so deltas stay small).
func EncodeUint64sDelta(vals []uint64) []byte {
	out := make([]byte, 0, 2*len(vals)+binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(vals)))
	var prev uint64
	for _, v := range vals {
		out = binary.AppendUvarint(out, zigzag(int64(v-prev)))
		prev = v
	}
	return out
}

// DecodeUint64sDelta decodes an EncodeUint64sDelta payload.
func DecodeUint64sDelta(data []byte) ([]uint64, error) {
	br := bytes.NewReader(data)
	count, err := binary.ReadUvarint(br)
	if err != nil || count > uint64(br.Len()) { // >= 1 payload byte per element
		return nil, fmt.Errorf("%w: uint64 array count", ErrBadFormat)
	}
	out := make([]uint64, count)
	var prev uint64
	for i := range out {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: uint64 array element %d: %v", ErrBadFormat, i, err)
		}
		prev += uint64(unzigzag(d))
		out[i] = prev
	}
	return out, nil
}

// EncodeInt64sDelta encodes an int64 array as count + zigzag varint deltas
// against the element index (successor arrays hold future indices, so the
// distance-to-index is small and the sentinel stays cheap).
func EncodeInt64sDelta(vals []int64) []byte {
	out := make([]byte, 0, 2*len(vals)+binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(vals)))
	for i, v := range vals {
		out = binary.AppendUvarint(out, zigzag(v-int64(i)))
	}
	return out
}

// DecodeInt64sDelta decodes an EncodeInt64sDelta payload.
func DecodeInt64sDelta(data []byte) ([]int64, error) {
	br := bytes.NewReader(data)
	count, err := binary.ReadUvarint(br)
	if err != nil || count > uint64(br.Len()) { // >= 1 payload byte per element
		return nil, fmt.Errorf("%w: int64 array count", ErrBadFormat)
	}
	out := make([]int64, count)
	for i := range out {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: int64 array element %d: %v", ErrBadFormat, i, err)
		}
		out[i] = unzigzag(d) + int64(i)
	}
	return out, nil
}

// EncodeInt16s encodes an int16 array as count + 2-byte little-endian
// elements (latency timelines are dense and bounded, so fixed width beats
// varints).
func EncodeInt16s(vals []int16) []byte {
	out := make([]byte, 0, 2*len(vals)+binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(vals)))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint16(out, uint16(v))
	}
	return out
}

// DecodeInt16s decodes an EncodeInt16s payload.
func DecodeInt16s(data []byte) ([]int16, error) {
	br := bytes.NewReader(data)
	count, err := binary.ReadUvarint(br)
	if err != nil || count > uint64(br.Len()) { // the length check below needs 2 bytes per element
		return nil, fmt.Errorf("%w: int16 array count", ErrBadFormat)
	}
	rest := data[len(data)-br.Len():]
	if uint64(len(rest)) != 2*count {
		return nil, fmt.Errorf("%w: int16 array payload %d bytes, want %d", ErrBadFormat, len(rest), 2*count)
	}
	out := make([]int16, count)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(rest[2*i:]))
	}
	return out, nil
}

// Write encodes t as a v2 container holding one packed instruction
// section (SecInstsZ).
func Write(w io.Writer, t *Trace) error {
	return WriteContainer(w, t.Name, []Section{{Tag: SecInstsZ, Data: EncodeInstsPacked(t.Insts)}})
}

// Read decodes a trace written by Write. All on-disk generations are
// accepted: v2 with packed SecInstsZ sections (any number — streamed
// containers carry one per window, concatenated in order), v2 with the
// older SecInsts section, and the legacy v1 bare stream.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if [4]byte(head[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head[0:4])
	}
	if binary.LittleEndian.Uint32(head[4:8]) == 1 {
		return readV1(br)
	}
	name, secs, err := ReadContainer(br)
	if err != nil {
		return nil, err
	}
	// Sum the per-section counts up front so the concatenation is one
	// allocation: appending window-sized sections into a growing slice
	// reallocates ~5x the final bytes in 1.25x growth steps on streamed
	// containers. The counts sit behind each section's verified CRC, but a
	// forged count is still only a capped prealloc hint — decoding fails on
	// a truncated token once the payload runs dry, after bounded growth.
	var total uint64
	found := false
	for _, s := range secs {
		if s.Tag == SecInstsZ {
			found = true
			if c, n := binary.Uvarint(s.Data); n > 0 {
				total += c
			}
		}
	}
	insts := make([]Inst, 0, min(total, maxPreallocInsts))
	for _, s := range secs {
		if s.Tag == SecInstsZ {
			if insts, err = AppendInstsPacked(insts, s.Data); err != nil {
				return nil, err
			}
		}
	}
	if !found {
		data, ok := FindSection(secs, SecInsts)
		if !ok {
			return nil, fmt.Errorf("%w: no %s or %s section", ErrBadFormat, SecInstsZ, SecInsts)
		}
		if insts, err = DecodeInsts(data); err != nil {
			return nil, err
		}
	}
	return &Trace{Name: name, Insts: insts}, nil
}

// readV1 decodes the legacy version-1 stream: magic, version, nameLen,
// name, count, then the same varint record encoding the v2 instruction
// section carries (without a leading count).
func readV1(br *bufio.Reader) (*Trace, error) {
	var skip [4]byte
	if _, err := io.ReadFull(br, skip[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	nameLen := binary.LittleEndian.Uint32(hdr[4:8])
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: name length %d too large", ErrBadFormat, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("%w: reading name: %v", ErrBadFormat, err)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading records: %w", err)
	}
	payload := binary.AppendUvarint(make([]byte, 0, len(rest)+binary.MaxVarintLen64), count)
	insts, err := DecodeInsts(append(payload, rest...))
	if err != nil {
		return nil, err
	}
	return &Trace{Name: string(nameBuf), Insts: insts}, nil
}
