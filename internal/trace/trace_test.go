package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlock(t *testing.T) {
	cases := []struct {
		addr uint64
		want uint64
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{0x1000, 0x40},
		{^uint64(0), ^uint64(0) >> 6},
	}
	for _, c := range cases {
		if got := Block(c.addr); got != c.want {
			t.Errorf("Block(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for c := ClassALU; c < numClasses; c++ {
		if c.String() == "?" {
			t.Errorf("class %d has no name", c)
		}
	}
	if Class(200).String() != "?" {
		t.Error("invalid class should stringify to ?")
	}
}

func TestClassPredicates(t *testing.T) {
	branches := []Class{ClassCondBranch, ClassJump, ClassCall, ClassRet, ClassIndirect}
	for _, c := range branches {
		if !c.IsBranch() {
			t.Errorf("%v should be a branch", c)
		}
		if c.IsMem() {
			t.Errorf("%v should not be a memory op", c)
		}
	}
	if ClassALU.IsBranch() || ClassLoad.IsBranch() {
		t.Error("ALU/Load must not be branches")
	}
	if !ClassLoad.IsMem() || !ClassStore.IsMem() {
		t.Error("load/store must be memory ops")
	}
}

func TestNextPC(t *testing.T) {
	in := Inst{PC: 100, Class: ClassCondBranch, Target: 500, Taken: true}
	if got := in.NextPC(104); got != 500 {
		t.Errorf("taken branch NextPC = %d, want 500", got)
	}
	in.Taken = false
	if got := in.NextPC(104); got != 104 {
		t.Errorf("not-taken branch NextPC = %d, want 104", got)
	}
	alu := Inst{PC: 100, Class: ClassALU}
	if got := alu.NextPC(104); got != 104 {
		t.Errorf("ALU NextPC = %d, want 104", got)
	}
	jmp := Inst{PC: 100, Class: ClassJump, Target: 64}
	if got := jmp.NextPC(104); got != 64 {
		t.Errorf("jump NextPC = %d, want 64", got)
	}
}

func TestBlockAccessesCollapses(t *testing.T) {
	tr := &Trace{Insts: []Inst{
		{PC: 0}, {PC: 4}, {PC: 8}, // block 0
		{PC: 64},          // block 1
		{PC: 0},           // block 0 again
		{PC: 4}, {PC: 60}, // still block 0
	}}
	got := tr.BlockAccesses()
	want := []uint64{0, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFootprint(t *testing.T) {
	tr := &Trace{Insts: []Inst{{PC: 0}, {PC: 4}, {PC: 64}, {PC: 128}, {PC: 64}}}
	if got := tr.Footprint(); got != 3 {
		t.Errorf("footprint = %d, want 3", got)
	}
	empty := &Trace{}
	if empty.Footprint() != 0 || empty.Len() != 0 {
		t.Error("empty trace should have zero footprint and length")
	}
}

func randomTrace(rng *rand.Rand, n int) *Trace {
	tr := &Trace{Name: "random"}
	pc := uint64(0x400000)
	for i := 0; i < n; i++ {
		in := Inst{PC: pc, Class: Class(rng.Intn(int(numClasses)))}
		if in.Class.IsBranch() {
			in.Target = pc + uint64(rng.Intn(1<<20)) - 1<<19
			in.Taken = rng.Intn(2) == 0
		}
		if in.Class.IsMem() {
			in.MemAddr = uint64(rng.Int63n(1 << 40))
		}
		tr.Insts = append(tr.Insts, in)
		pc = in.NextPC(pc + 4)
	}
	return tr
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 17, 1000, 10000} {
		tr := randomTrace(rng, n)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write(n=%d): %v", n, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read(n=%d): %v", n, err)
		}
		if got.Name != tr.Name || len(got.Insts) != len(tr.Insts) {
			t.Fatalf("n=%d: header mismatch", n)
		}
		for i := range tr.Insts {
			if got.Insts[i] != tr.Insts[i] {
				t.Fatalf("n=%d: inst %d: got %+v want %+v", n, i, got.Insts[i], tr.Insts[i])
			}
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
	// Truncated valid stream.
	tr := randomTrace(rand.New(rand.NewSource(7)), 100)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error for truncated stream")
	}
}

func TestCodecReadsLegacyV1(t *testing.T) {
	// A version-1 file is a bare record stream; Read must still accept it.
	tr := randomTrace(rand.New(rand.NewSource(11)), 500)
	var buf bytes.Buffer
	buf.Write(magic[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(tr.Name)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(tr.Insts)))
	buf.Write(hdr[:])
	buf.WriteString(tr.Name)
	payload := EncodeInsts(tr.Insts)
	// Strip the leading count varint: v1 carried the count in its header.
	_, n := binary.Uvarint(payload)
	buf.Write(payload[n:])

	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read(v1): %v", err)
	}
	if got.Name != tr.Name || len(got.Insts) != len(tr.Insts) {
		t.Fatalf("v1 header mismatch: %q/%d", got.Name, len(got.Insts))
	}
	for i := range tr.Insts {
		if got.Insts[i] != tr.Insts[i] {
			t.Fatalf("v1 inst %d: got %+v want %+v", i, got.Insts[i], tr.Insts[i])
		}
	}
}

func TestCodecRejectsUnsupportedVersion(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(5)), 10)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint32(data[4:8], 3) // future version
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("future version: got %v, want ErrBadFormat", err)
	}
}

func TestContainerRoundTrip(t *testing.T) {
	secs := []Section{
		{Tag: SecDesc, Data: []byte{1, 2, 3, 4, 5}},
		{Tag: SecDataLat, Data: EncodeInt16s([]int16{0, 4, -1, 300})},
		{Tag: "XTRA", Data: nil}, // unknown tags round-trip too
	}
	var buf bytes.Buffer
	if err := WriteContainer(&buf, "wl", secs); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReadContainer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "wl" || len(got) != len(secs) {
		t.Fatalf("container header mismatch: %q, %d sections", name, len(got))
	}
	for i := range secs {
		if got[i].Tag != secs[i].Tag || !bytes.Equal(got[i].Data, secs[i].Data) {
			t.Errorf("section %d mismatch: %+v vs %+v", i, got[i], secs[i])
		}
	}
	if _, ok := FindSection(got, SecDataLat); !ok {
		t.Error("FindSection missed DLAT")
	}
	if _, ok := FindSection(got, SecNextAt); ok {
		t.Error("FindSection found an absent tag")
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	err := WriteContainer(&buf, "wl", []Section{{Tag: SecBlocks, Data: EncodeUint64sDelta([]uint64{9, 1, 5, 5})}})
	if err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Flip a payload byte: the section checksum must catch it.
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, _, err := ReadContainer(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("corrupt payload: got %v, want ErrBadFormat", err)
	}

	// Truncation anywhere must fail, not decode partially.
	for _, cut := range []int{1, len(clean) / 2, len(clean) - 1} {
		if _, _, err := ReadContainer(bytes.NewReader(clean[:cut])); !errors.Is(err, ErrBadFormat) {
			t.Errorf("truncated at %d: got %v, want ErrBadFormat", cut, err)
		}
	}
}

func TestTypedPayloadRoundTrips(t *testing.T) {
	u64 := []uint64{0, 1, 1, 1 << 40, 3, ^uint64(0), 12}
	if got, err := DecodeUint64sDelta(EncodeUint64sDelta(u64)); err != nil || !equalSlices(got, u64) {
		t.Errorf("uint64 round trip: %v, %v", got, err)
	}
	i64 := []int64{-1, 5, 2, 1 << 50, -1, 0}
	if got, err := DecodeInt64sDelta(EncodeInt64sDelta(i64)); err != nil || !equalSlices(got, i64) {
		t.Errorf("int64 round trip: %v, %v", got, err)
	}
	i16 := []int16{0, -32768, 32767, 4, 200}
	if got, err := DecodeInt16s(EncodeInt16s(i16)); err != nil || !equalSlices(got, i16) {
		t.Errorf("int16 round trip: %v, %v", got, err)
	}
	// Empty arrays round-trip as empty, not nil panics.
	if got, err := DecodeInt16s(EncodeInt16s(nil)); err != nil || len(got) != 0 {
		t.Errorf("empty int16 round trip: %v, %v", got, err)
	}
	// Truncated typed payloads fail cleanly.
	full := EncodeInt16s(i16)
	if _, err := DecodeInt16s(full[:len(full)-1]); err == nil {
		t.Error("truncated int16 payload should fail")
	}
	// A count far beyond the payload must be rejected before allocation,
	// not trusted into a multi-GB make().
	huge := binary.AppendUvarint(nil, 1<<32)
	if _, err := DecodeInsts(huge); !errors.Is(err, ErrBadFormat) {
		t.Errorf("huge inst count: got %v, want ErrBadFormat", err)
	}
	if _, err := DecodeUint64sDelta(huge); !errors.Is(err, ErrBadFormat) {
		t.Errorf("huge uint64 count: got %v, want ErrBadFormat", err)
	}
	if _, err := DecodeInt64sDelta(huge); !errors.Is(err, ErrBadFormat) {
		t.Errorf("huge int64 count: got %v, want ErrBadFormat", err)
	}
	if _, err := DecodeInt16s(huge); !errors.Is(err, ErrBadFormat) {
		t.Errorf("huge int16 count: got %v, want ErrBadFormat", err)
	}
}

func equalSlices[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	// Property: any structurally valid instruction sequence round-trips.
	f := func(seed int64, n uint8) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)), int(n))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Insts) != len(tr.Insts) {
			return false
		}
		for i := range tr.Insts {
			if got.Insts[i] != tr.Insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// SectionSpans must locate every payload exactly where ReadContainer
// finds it, so corruption tooling can hit a precise CRC-covered range.
func TestSectionSpans(t *testing.T) {
	secs := []Section{
		{Tag: "AAAA", Data: []byte("alpha-payload")},
		{Tag: "BBBB", Data: []byte{}},
		{Tag: "CCCC", Data: []byte{1, 2, 3}},
	}
	var b bytes.Buffer
	if err := WriteContainer(&b, "spans-test", secs); err != nil {
		t.Fatal(err)
	}
	data := b.Bytes()
	spans, err := SectionSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(secs) {
		t.Fatalf("got %d spans, want %d", len(spans), len(secs))
	}
	for i, sp := range spans {
		if sp.Tag != secs[i].Tag || sp.Len != len(secs[i].Data) {
			t.Fatalf("span %d = %+v, want tag %s len %d", i, sp, secs[i].Tag, len(secs[i].Data))
		}
		if got := data[sp.Off : sp.Off+sp.Len]; !bytes.Equal(got, secs[i].Data) {
			t.Fatalf("span %d payload = %q, want %q", i, got, secs[i].Data)
		}
	}
	if _, err := SectionSpans([]byte("not a container")); err == nil {
		t.Fatal("SectionSpans accepted garbage")
	}
	if _, err := SectionSpans(data[:len(data)-2]); err == nil {
		t.Fatal("SectionSpans accepted a truncated container")
	}
}
