package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// alignedTrace builds a trace shaped like the generator's output: 4-byte
// PCs, sequential ALU runs, block-local branches, delta-friendly data
// addresses. This is the regime the packed encoding is built for.
func alignedTrace(rng *rand.Rand, n int) *Trace {
	tr := &Trace{Name: "aligned"}
	pc := uint64(0x4000_0000)
	mem := uint64(0x1_0000_0000)
	for len(tr.Insts) < n {
		run := 1 + rng.Intn(10)
		for i := 0; i < run && len(tr.Insts) < n; i++ {
			tr.Insts = append(tr.Insts, Inst{PC: pc, Class: ClassALU})
			pc += 4
		}
		if len(tr.Insts) >= n {
			break
		}
		switch rng.Intn(4) {
		case 0:
			tgt := pc + uint64(rng.Intn(64))*4
			taken := rng.Intn(2) == 0
			tr.Insts = append(tr.Insts, Inst{PC: pc, Class: ClassCondBranch, Target: tgt, Taken: taken})
			if taken {
				pc = tgt
			} else {
				pc += 4
			}
		case 1:
			mem += uint64(rng.Intn(1<<12)) - 1<<11
			tr.Insts = append(tr.Insts, Inst{PC: pc, Class: ClassLoad, MemAddr: mem})
			pc += 4
		case 2:
			tr.Insts = append(tr.Insts, Inst{PC: pc, Class: ClassStore, MemAddr: mem + 64})
			mem += 64
			pc += 4
		default:
			tgt := pc - uint64(rng.Intn(32))*4
			tr.Insts = append(tr.Insts, Inst{PC: pc, Class: ClassJump, Target: tgt, Taken: true})
			pc = tgt
		}
	}
	tr.Insts = tr.Insts[:n]
	return tr
}

func TestPackedInstsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 17, 1000, 20000} {
		for _, mk := range []func(*rand.Rand, int) *Trace{alignedTrace, randomTrace} {
			tr := mk(rng, n)
			got, err := DecodeInstsPacked(EncodeInstsPacked(tr.Insts))
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if len(got) != len(tr.Insts) {
				t.Fatalf("n=%d: decoded %d insts", n, len(got))
			}
			for i := range tr.Insts {
				if got[i] != tr.Insts[i] {
					t.Fatalf("n=%d inst %d: got %+v want %+v", n, i, got[i], tr.Insts[i])
				}
			}
		}
	}
}

func TestPackedInstsBeatsOldEncoding(t *testing.T) {
	// On generator-shaped streams the packed payload must land well under
	// the old ~4B/inst encoding; this is the whole point of SecInstsZ.
	tr := alignedTrace(rand.New(rand.NewSource(9)), 50000)
	oldLen := len(EncodeInsts(tr.Insts))
	newLen := len(EncodeInstsPacked(tr.Insts))
	if newLen*2 > oldLen {
		t.Errorf("packed %d bytes vs %d old: want at least 2x smaller", newLen, oldLen)
	}
}

func TestPackedInstsChunkedConcatenation(t *testing.T) {
	// Encoding in windows and appending the decodes must equal the whole:
	// each section resets its prevPC/prevMem carry.
	tr := alignedTrace(rand.New(rand.NewSource(21)), 10007)
	for _, window := range []int{1, 7, 4096, len(tr.Insts), len(tr.Insts) + 1000} {
		var got []Inst
		for lo := 0; lo < len(tr.Insts); lo += window {
			hi := min(lo+window, len(tr.Insts))
			var err error
			got, err = AppendInstsPacked(got, EncodeInstsPacked(tr.Insts[lo:hi]))
			if err != nil {
				t.Fatalf("window=%d: %v", window, err)
			}
		}
		if len(got) != len(tr.Insts) {
			t.Fatalf("window=%d: %d insts", window, len(got))
		}
		for i := range tr.Insts {
			if got[i] != tr.Insts[i] {
				t.Fatalf("window=%d inst %d: got %+v want %+v", window, i, got[i], tr.Insts[i])
			}
		}
	}
}

func TestPackedInstsRejectsCorruption(t *testing.T) {
	tr := alignedTrace(rand.New(rand.NewSource(5)), 500)
	clean := EncodeInstsPacked(tr.Insts)
	for _, cut := range []int{1, len(clean) / 2, len(clean) - 1} {
		if _, err := DecodeInstsPacked(clean[:cut]); !errors.Is(err, ErrBadFormat) {
			t.Errorf("truncated at %d: got %v, want ErrBadFormat", cut, err)
		}
	}
	// A run longer than the remaining count is corrupt.
	bad := binary.AppendUvarint(nil, 2)
	bad = binary.AppendUvarint(bad, 5<<packedOpShift|packedOpRun)
	if _, err := DecodeInstsPacked(bad); !errors.Is(err, ErrBadFormat) {
		t.Errorf("oversized run: got %v, want ErrBadFormat", err)
	}
	// A count far beyond any plausible payload fails before allocating.
	huge := binary.AppendUvarint(nil, 1<<40)
	if _, err := DecodeInstsPacked(huge); !errors.Is(err, ErrBadFormat) {
		t.Errorf("huge count: got %v, want ErrBadFormat", err)
	}
}

func TestReadAcceptsOldInstSection(t *testing.T) {
	// Containers written before SecInstsZ carry a single INST section; the
	// reader must keep accepting them (warm artifact stores persist).
	tr := randomTrace(rand.New(rand.NewSource(13)), 800)
	var buf bytes.Buffer
	if err := WriteContainer(&buf, tr.Name, []Section{{Tag: SecInsts, Data: EncodeInsts(tr.Insts)}}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || !equalSlices(got.Insts, tr.Insts) {
		t.Fatal("old INST container did not round-trip through Read")
	}
}

func TestContainerWriterStreamsSections(t *testing.T) {
	tr := alignedTrace(rand.New(rand.NewSource(31)), 9000)
	path := filepath.Join(t.TempDir(), "stream.actr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := NewContainerWriter(f, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	const window = 2048
	for lo := 0; lo < len(tr.Insts); lo += window {
		hi := min(lo+window, len(tr.Insts))
		if err := cw.WriteSection(SecInstsZ, EncodeInstsPacked(tr.Insts[lo:hi])); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.WriteSection(SecDataLat, EncodeInt16s([]int16{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The streamed file must read back as one trace...
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || !equalSlices(got.Insts, tr.Insts) {
		t.Fatal("streamed container did not round-trip through Read")
	}
	// ...and as a container with the patched section count and the trailing
	// non-instruction section intact.
	name, secs, err := ReadContainer(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	wantSecs := (len(tr.Insts)+window-1)/window + 1
	if name != tr.Name || len(secs) != wantSecs {
		t.Fatalf("container: name %q, %d sections (want %d)", name, len(secs), wantSecs)
	}
	if lat, ok := FindSection(secs, SecDataLat); !ok {
		t.Error("DLAT section lost")
	} else if got, err := DecodeInt16s(lat); err != nil || !equalSlices(got, []int16{1, 2, 3}) {
		t.Errorf("DLAT payload mangled: %v, %v", got, err)
	}
}

func TestContainerWriterEnforcesLimits(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "x.actr"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cw, err := NewContainerWriter(f, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteSection("TOOLONG", nil); err == nil {
		t.Error("bad tag length accepted")
	}
	if err := cw.WriteSection(SecInstsZ, EncodeInstsPacked(nil)); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
}
