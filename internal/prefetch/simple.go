package prefetch

// NextLine is the classic next-N-line instruction prefetcher: every demand
// access to block B nominates B+1..B+Degree. It is the weakest credible
// baseline — sequential fetch is exactly what spatial bursts already cover,
// so its value is limited to straight-line code that outruns the fetch
// group.
type NextLine struct {
	Degree int
}

// NewNextLine returns a next-line prefetcher of the given degree.
func NewNextLine(degree int) *NextLine {
	if degree <= 0 {
		degree = 1
	}
	return &NextLine{Degree: degree}
}

// Name implements Prefetcher.
func (p *NextLine) Name() string { return "next-line" }

// OnAccess implements Prefetcher.
func (p *NextLine) OnAccess(block uint64, _ int64, _ bool, dst []uint64) []uint64 {
	for d := 1; d <= p.Degree; d++ {
		dst = append(dst, block+uint64(d))
	}
	return dst
}

// StorageBits implements Prefetcher.
func (p *NextLine) StorageBits() int { return 0 }

// Stream is a simple miss-stream prefetcher: it tracks a small number of
// active sequential miss streams; when two misses land on consecutive
// blocks, the stream is confirmed and runs Ahead blocks in front of the
// latest miss. It approximates Jouppi-style stream buffers feeding the
// i-cache.
type Stream struct {
	cfg     StreamConfig
	streams []stream
	clock   int64

	Confirmed uint64
	Issued    uint64
}

type stream struct {
	next  uint64 // next expected miss block
	live  bool
	conf  bool // confirmed by a second sequential miss
	stamp int64
}

// StreamConfig sizes the stream prefetcher.
type StreamConfig struct {
	Streams int // concurrent streams tracked (4)
	Ahead   int // prefetch depth once confirmed (4)
}

// DefaultStreamConfig returns a 4-stream, depth-4 configuration.
func DefaultStreamConfig() StreamConfig { return StreamConfig{Streams: 4, Ahead: 4} }

// NewStream returns a stream prefetcher.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.Streams <= 0 || cfg.Ahead <= 0 {
		panic("prefetch: bad stream configuration")
	}
	return &Stream{cfg: cfg, streams: make([]stream, cfg.Streams)}
}

// Name implements Prefetcher.
func (p *Stream) Name() string { return "stream" }

// OnAccess implements Prefetcher.
func (p *Stream) OnAccess(block uint64, _ int64, miss bool, dst []uint64) []uint64 {
	if !miss {
		return dst
	}
	p.clock++
	// Continue an existing stream?
	for i := range p.streams {
		s := &p.streams[i]
		if s.live && block == s.next {
			if !s.conf {
				s.conf = true
				p.Confirmed++
			}
			for d := 1; d <= p.cfg.Ahead; d++ {
				dst = append(dst, block+uint64(d))
				p.Issued++
			}
			s.next = block + 1
			s.stamp = p.clock
			return dst
		}
	}
	// Allocate a new (unconfirmed) stream, replacing the oldest.
	oldest, oldStamp := 0, int64(1)<<62
	for i := range p.streams {
		if !p.streams[i].live {
			oldest = i
			break
		}
		if p.streams[i].stamp < oldStamp {
			oldest, oldStamp = i, p.streams[i].stamp
		}
	}
	p.streams[oldest] = stream{next: block + 1, live: true, stamp: p.clock}
	return dst
}

// StorageBits implements Prefetcher: a few registers per stream.
func (p *Stream) StorageBits() int { return p.cfg.Streams * (58 + 2) }
