package prefetch

import "testing"

func TestNone(t *testing.T) {
	var p None
	if got := p.OnAccess(1, 0, true, nil); len(got) != 0 {
		t.Error("None must never prefetch")
	}
	if p.Name() != "none" || p.StorageBits() != 0 {
		t.Error("metadata")
	}
}

func TestEntanglingTrainsAndIssues(t *testing.T) {
	cfg := DefaultEntanglingConfig()
	cfg.HideLatency = 10
	e := NewEntangling(cfg)
	// Establish a repeating pattern: source block 1 at t, destination block
	// 9 misses at t+20. The youngest old-enough access is block 1, so the
	// prefetcher entangles 1 -> 9 and accessing 1 should prefetch 9.
	for round := 0; round < 5; round++ {
		base := int64(round * 1000)
		e.OnAccess(1, base, false, nil)
		e.OnAccess(2, base+15, false, nil) // too young to hide the latency
		e.OnAccess(9, base+20, true, nil)  // miss: entangle with block 1
	}
	if e.Trained == 0 {
		t.Fatal("entangling never trained")
	}
	got := e.OnAccess(1, 10000, false, nil)
	found := false
	for _, b := range got {
		if b == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("access to source did not prefetch destination: %v", got)
	}
}

func TestEntanglingKeepsTwoDestinations(t *testing.T) {
	cfg := DefaultEntanglingConfig()
	cfg.HideLatency = 1
	e := NewEntangling(cfg)
	e.OnAccess(1, 0, false, nil)
	e.OnAccess(7, 100, true, nil)
	e.OnAccess(1, 200, false, nil)
	e.OnAccess(8, 300, true, nil)
	got := e.OnAccess(1, 1000, false, nil)
	if len(got) < 2 {
		t.Errorf("expected two destinations, got %v", got)
	}
}

func TestEntanglingIgnoresSelfEntangle(t *testing.T) {
	cfg := DefaultEntanglingConfig()
	cfg.HideLatency = 1
	e := NewEntangling(cfg)
	e.OnAccess(5, 0, false, nil)
	e.OnAccess(5, 100, true, nil) // only candidate source is itself
	if got := e.OnAccess(5, 200, false, nil); len(got) != 0 {
		t.Errorf("self-entangled prefetch: %v", got)
	}
}

func TestEntanglingStorageBand(t *testing.T) {
	// Section IV-H4: ~40KB.
	bits := NewEntangling(DefaultEntanglingConfig()).StorageBits()
	kb := float64(bits) / 8192
	if kb < 30 || kb > 90 {
		t.Errorf("entangling storage = %.1f KB, want tens of KB", kb)
	}
}
