// Package prefetch implements the instruction prefetchers of the evaluation
// platform. The fetch-directed prefetcher (FDP, Ishii et al. ISPASS'21) is
// realized inside the CPU front end (internal/cpu), since it is literally
// the fetch target queue running ahead of fetch; this package provides the
// Entangling prefetcher (Ros & Jimborean, ISCA'21) used as the alternative
// baseline of Figs 20/21, plus the common issue-filter bookkeeping.
package prefetch

// Prefetcher reacts to demand block accesses and nominates prefetch
// candidates.
type Prefetcher interface {
	// Name identifies the prefetcher.
	Name() string
	// OnAccess observes a demand access to block at the given cycle and
	// appends candidate blocks to dst.
	OnAccess(block uint64, cycle int64, miss bool, dst []uint64) []uint64
	// StorageBits accounts the prefetcher's state.
	StorageBits() int
}

// None is the null prefetcher.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (None) OnAccess(_ uint64, _ int64, _ bool, dst []uint64) []uint64 { return dst }

// StorageBits implements Prefetcher.
func (None) StorageBits() int { return 0 }

// Entangling implements the entangling instruction prefetcher: each miss
// ("destination") is entangled with the youngest earlier-accessed block
// ("source") old enough to hide the miss latency; later accesses to the
// source prefetch its entangled destinations. The paper's configuration
// uses a 4K-entry entangled table (~40KB with its metadata).
type Entangling struct {
	cfg     EntanglingConfig
	table   []entEntry
	history []histRec // ring of recent demand accesses
	histPos int

	Trained uint64
	Issued  uint64
}

type entEntry struct {
	tag   uint32
	dst   [2]uint64
	ndst  uint8
	valid bool
}

type histRec struct {
	block uint64
	cycle int64
}

// EntanglingConfig sizes the prefetcher.
type EntanglingConfig struct {
	TableEntries int   // entangled table entries (4096)
	HistoryLen   int   // lookback window of demand accesses
	HideLatency  int64 // cycles a prefetch must be issued ahead to hide
}

// DefaultEntanglingConfig matches Section IV-H4's 4K-entry table.
func DefaultEntanglingConfig() EntanglingConfig {
	return EntanglingConfig{TableEntries: 4096, HistoryLen: 64, HideLatency: 20}
}

// NewEntangling creates an entangling prefetcher.
func NewEntangling(cfg EntanglingConfig) *Entangling {
	return &Entangling{
		cfg:     cfg,
		table:   make([]entEntry, cfg.TableEntries),
		history: make([]histRec, cfg.HistoryLen),
	}
}

// Name implements Prefetcher.
func (e *Entangling) Name() string { return "entangling" }

func (e *Entangling) index(block uint64) (int, uint32) {
	h := block * 0x9E3779B97F4A7C15
	return int(h % uint64(len(e.table))), uint32(h >> 40)
}

// OnAccess implements Prefetcher.
func (e *Entangling) OnAccess(block uint64, cycle int64, miss bool, dst []uint64) []uint64 {
	// Trigger: accesses to an entangled source prefetch its destinations.
	idx, tag := e.index(block)
	if ent := &e.table[idx]; ent.valid && ent.tag == tag {
		for i := 0; i < int(ent.ndst); i++ {
			dst = append(dst, ent.dst[i])
			e.Issued++
		}
	}
	if miss {
		// Train: entangle this destination with the youngest source that
		// is at least HideLatency cycles old.
		var src uint64
		found := false
		for i := 0; i < len(e.history); i++ {
			r := e.history[(e.histPos-1-i+len(e.history))%len(e.history)]
			if r.block == 0 && r.cycle == 0 {
				break
			}
			if cycle-r.cycle >= e.cfg.HideLatency && r.block != block {
				src = r.block
				found = true
				break
			}
		}
		if found {
			sidx, stag := e.index(src)
			ent := &e.table[sidx]
			if !ent.valid || ent.tag != stag {
				*ent = entEntry{tag: stag, valid: true}
			}
			// Keep up to two distinct destinations, newest-first.
			if ent.ndst == 0 || ent.dst[0] != block {
				ent.dst[1] = ent.dst[0]
				ent.dst[0] = block
				if ent.ndst < 2 {
					ent.ndst++
				}
				e.Trained++
			}
		}
	}
	e.history[e.histPos] = histRec{block: block, cycle: cycle}
	e.histPos = (e.histPos + 1) % len(e.history)
	return dst
}

// StorageBits implements Prefetcher: ~40KB per Section IV-H4.
func (e *Entangling) StorageBits() int {
	// tag (24b) + 2 destinations (58b each) + count/valid ≈ per entry.
	return len(e.table) * (24 + 2*58 + 3)
}
