package prefetch

import "testing"

func TestNextLineDegree(t *testing.T) {
	p := NewNextLine(2)
	got := p.OnAccess(100, 0, false, nil)
	if len(got) != 2 || got[0] != 101 || got[1] != 102 {
		t.Errorf("next-line candidates = %v", got)
	}
	if NewNextLine(0).Degree != 1 {
		t.Error("degree must default to 1")
	}
	if p.Name() != "next-line" || p.StorageBits() != 0 {
		t.Error("metadata")
	}
}

func TestStreamConfirmsOnSequentialMisses(t *testing.T) {
	p := NewStream(DefaultStreamConfig())
	// First miss allocates, no prefetch yet.
	if got := p.OnAccess(50, 0, true, nil); len(got) != 0 {
		t.Errorf("unconfirmed stream must not prefetch: %v", got)
	}
	// Sequential follow-up confirms and runs ahead.
	got := p.OnAccess(51, 1, true, nil)
	if len(got) != 4 {
		t.Fatalf("confirmed stream should prefetch Ahead=4 blocks, got %v", got)
	}
	for i, b := range got {
		if b != 52+uint64(i) {
			t.Errorf("candidate %d = %d, want %d", i, b, 52+uint64(i))
		}
	}
	if p.Confirmed != 1 {
		t.Errorf("confirmed = %d", p.Confirmed)
	}
}

func TestStreamIgnoresHits(t *testing.T) {
	p := NewStream(DefaultStreamConfig())
	if got := p.OnAccess(50, 0, false, nil); len(got) != 0 {
		t.Error("hits must not train streams")
	}
}

func TestStreamTracksMultiple(t *testing.T) {
	p := NewStream(StreamConfig{Streams: 2, Ahead: 1})
	p.OnAccess(100, 0, true, nil)
	p.OnAccess(500, 1, true, nil)
	// Both streams can confirm independently.
	if got := p.OnAccess(101, 2, true, nil); len(got) != 1 {
		t.Error("stream A should confirm")
	}
	if got := p.OnAccess(501, 3, true, nil); len(got) != 1 {
		t.Error("stream B should confirm")
	}
	// A third stream replaces the oldest.
	p.OnAccess(900, 4, true, nil)
	if got := p.OnAccess(102, 5, true, nil); len(got) != 0 {
		// Stream A (next=102) was the oldest and should have been evicted
		// by the allocation for 900.
		t.Errorf("evicted stream must not keep prefetching: %v", got)
	}
}

func TestStreamRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStream(StreamConfig{Streams: 0, Ahead: 1})
}
