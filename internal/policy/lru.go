// Package policy implements every cache replacement policy the paper
// evaluates: LRU (the baseline), tree-PLRU and Random (sanity baselines),
// SRRIP/BRRIP, SHiP, Hawkeye/Harmony, GHRP, and Belady's OPT oracle.
// Each policy satisfies cache.Policy and owns its per-line metadata.
package policy

import "acic/internal/cache"

// LRU is true least-recently-used replacement, the paper's baseline i-cache
// policy. Recency is kept as a logical timestamp per line.
type LRU struct {
	ways  int
	stamp []int64 // per line, row-major by set
	clock int64
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (p *LRU) Name() string { return "lru" }

// Reset implements cache.Policy.
func (p *LRU) Reset(sets, ways int) {
	p.ways = ways
	p.stamp = make([]int64, sets*ways)
	p.clock = 0
}

func (p *LRU) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// OnHit implements cache.Policy.
func (p *LRU) OnHit(set, way int, _ *cache.AccessContext) { p.touch(set, way) }

// OnFill implements cache.Policy.
func (p *LRU) OnFill(set, way int, _ *cache.AccessContext) { p.touch(set, way) }

// OnEvict implements cache.Policy.
func (p *LRU) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy: the way with the oldest timestamp.
func (p *LRU) Victim(set int, _ *cache.AccessContext) int {
	base := set * p.ways
	best, bestStamp := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// StampOf exposes a line's recency timestamp; used by schemes (e.g. VVC)
// that need to reason about LRU position externally.
func (p *LRU) StampOf(set, way int) int64 { return p.stamp[set*p.ways+way] }

// MRUWay returns the most recently touched way in set.
func (p *LRU) MRUWay(set int) int {
	base := set * p.ways
	best, bestStamp := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s > bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}
