package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acic/internal/cache"
)

// runTrace drives a cache with the policy over a block sequence and
// returns the hit count.
func runTrace(t *testing.T, p cache.Policy, cfg cache.Config, blocks []uint64, oracle func(uint64, int64) int64) uint64 {
	t.Helper()
	c := cache.MustNew(cfg, p)
	for i, b := range blocks {
		ctx := cache.AccessContext{Block: b, AccessIdx: int64(i), NextUse: oracle}
		if !c.Access(&ctx) {
			c.Insert(&ctx)
		}
	}
	return c.Hits
}

func TestLRUExactness(t *testing.T) {
	// 2-way set, blocks all in one set (sets=1): classic LRU sequence.
	p := NewLRU()
	c := cache.MustNew(cache.Config{Sets: 1, Ways: 2}, p)
	access := func(b uint64) bool {
		ctx := cache.AccessContext{Block: b}
		if c.Access(&ctx) {
			return true
		}
		c.Insert(&ctx)
		return false
	}
	access(1)
	access(2)
	access(1)      // touch 1: LRU is now 2
	access(3)      // evicts 2
	if access(2) { // 2 must have been evicted
		t.Error("block 2 should have been evicted by LRU")
	}
	if !c.Contains(1) == true && !c.Contains(3) {
		t.Error("blocks 1 and 3 expected resident")
	}
}

func TestLRUMRUWayAndStamp(t *testing.T) {
	p := NewLRU()
	p.Reset(1, 4)
	p.OnFill(0, 0, nil)
	p.OnFill(0, 1, nil)
	p.OnHit(0, 0, nil)
	if p.MRUWay(0) != 0 {
		t.Errorf("MRU way = %d, want 0", p.MRUWay(0))
	}
	if p.Victim(0, nil) == 0 {
		t.Error("victim should not be the MRU way")
	}
	if p.StampOf(0, 0) <= p.StampOf(0, 1) {
		t.Error("hit should refresh the stamp")
	}
}

func TestPLRUNeverEvictsMostRecent(t *testing.T) {
	// The defining tree-PLRU invariant: the victim path never points at
	// the most recently touched way (PLRU may diverge from true LRU for
	// older ways, which is its well-known approximation error).
	p := NewPLRU()
	p.Reset(1, 8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		w := rng.Intn(8)
		p.OnHit(0, w, nil)
		if v := p.Victim(0, nil); v == w {
			t.Fatalf("PLRU victim %d equals just-touched way", v)
		}
	}
}

func TestPLRUFindsUntouchedHalf(t *testing.T) {
	// Touching only the left half must leave the victim in the right half.
	p := NewPLRU()
	p.Reset(1, 4)
	p.OnFill(0, 0, nil)
	p.OnFill(0, 1, nil)
	if v := p.Victim(0, nil); v != 2 && v != 3 {
		t.Errorf("victim = %d, want right half", v)
	}
}

func TestPLRURejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 3-way PLRU")
		}
	}()
	NewPLRU().Reset(4, 3)
}

func TestRandomVictimInRange(t *testing.T) {
	p := NewRandom(12345)
	p.Reset(2, 8)
	for i := 0; i < 1000; i++ {
		if v := p.Victim(0, nil); v < 0 || v >= 8 {
			t.Fatalf("victim %d out of range", v)
		}
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	p := NewSRRIP(2)
	c := cache.MustNew(cache.Config{Sets: 1, Ways: 2}, p)
	c.Insert(&cache.AccessContext{Block: 1})
	c.Insert(&cache.AccessContext{Block: 2})
	c.Access(&cache.AccessContext{Block: 1}) // promote 1 to RRPV 0
	_, victim := c.PeekVictim(&cache.AccessContext{Block: 3})
	if victim.Block != 2 {
		t.Errorf("SRRIP victim = %d, want 2 (1 was promoted)", victim.Block)
	}
}

func TestSRRIPBadBits(t *testing.T) {
	for _, bits := range []int{0, 8, -1} {
		func() {
			defer func() { recover() }()
			NewSRRIP(bits)
			t.Errorf("NewSRRIP(%d) should panic", bits)
		}()
	}
}

func TestSHiPLearnsDeadSignatures(t *testing.T) {
	p := NewSHiP(DefaultSHiPConfig())
	c := cache.MustNew(cache.Config{Sets: 4, Ways: 2}, p)
	// Stream many never-reused blocks through one set: their signatures
	// should trend dead (SHCT -> 0) so later insertions land at distant
	// RRPV. We verify via the internal counter of a repeated signature.
	b := uint64(16)
	sig := p.signature(b)
	for i := 0; i < 8; i++ {
		ctx := cache.AccessContext{Block: b}
		c.Insert(&ctx)
		// Evict it by filling the set with other blocks.
		c.Insert(&cache.AccessContext{Block: b + 4})
		c.Insert(&cache.AccessContext{Block: b + 8})
	}
	if p.shct[sig] != 0 {
		t.Errorf("SHCT[%d] = %d, want 0 after repeated dead insertions", sig, p.shct[sig])
	}
}

func TestGHRPTrainsDeadPrediction(t *testing.T) {
	p := NewGHRP(DefaultGHRPConfig())
	c := cache.MustNew(cache.Config{Sets: 2, Ways: 2}, p)
	// Repeatedly insert-and-evict the same block without reuse; GHRP
	// should learn its (sig, history) is dead.
	for i := 0; i < 32; i++ {
		c.Insert(&cache.AccessContext{Block: 0})
		c.Insert(&cache.AccessContext{Block: 2})
		c.Insert(&cache.AccessContext{Block: 4})
	}
	dead := 0
	for i := 0; i < 16; i++ {
		if p.PredictDead(0) {
			dead++
		}
		c.Insert(&cache.AccessContext{Block: 0})
		c.Insert(&cache.AccessContext{Block: 2})
		c.Insert(&cache.AccessContext{Block: 4})
	}
	if dead == 0 {
		t.Error("GHRP never predicted the dead block dead")
	}
}

func TestOPTEvictsFurthest(t *testing.T) {
	next := map[uint64]int64{1: 10, 2: 100, 3: 5}
	oracle := func(b uint64, _ int64) int64 {
		if n, ok := next[b]; ok {
			return n
		}
		return cache.NeverUsed
	}
	p := NewOPT()
	c := cache.MustNew(cache.Config{Sets: 1, Ways: 3}, p)
	for _, b := range []uint64{1, 2, 3} {
		c.Insert(&cache.AccessContext{Block: b, NextUse: oracle})
	}
	_, victim := c.PeekVictim(&cache.AccessContext{Block: 9, NextUse: oracle})
	if victim.Block != 2 {
		t.Errorf("OPT victim = %d, want 2 (furthest next use)", victim.Block)
	}
	if blk, ok := p.ResidentBlock(0, 0); !ok || blk != 1 {
		t.Errorf("ResidentBlock(0,0) = %d,%v", blk, ok)
	}
}

// TestOPTBeatsLRUProperty: on any access sequence, Belady's OPT achieves at
// least as many hits as LRU. This is the defining property of the oracle.
func TestOPTBeatsLRUProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := make([]uint64, int(n%2000)+64)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(24))
		}
		// Build the oracle.
		positions := map[uint64][]int64{}
		for i, b := range blocks {
			positions[b] = append(positions[b], int64(i))
		}
		oracle := func(b uint64, after int64) int64 {
			for _, p := range positions[b] {
				if p > after {
					return p
				}
			}
			return cache.NeverUsed
		}
		cfg := cache.Config{Sets: 2, Ways: 4}
		lruHits := runTrace(t, NewLRU(), cfg, blocks, nil)
		optHits := runTrace(t, NewOPT(), cfg, blocks, oracle)
		return optHits >= lruHits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPoliciesNeverCrash drives every policy through a random workload and
// checks basic sanity (no panics, victims in range via cache invariants).
func TestPoliciesNeverCrash(t *testing.T) {
	policies := []func() cache.Policy{
		func() cache.Policy { return NewLRU() },
		func() cache.Policy { return NewPLRU() },
		func() cache.Policy { return NewRandom(1) },
		func() cache.Policy { return NewSRRIP(2) },
		func() cache.Policy { return NewSHiP(DefaultSHiPConfig()) },
		func() cache.Policy { return NewHawkeye(DefaultHawkeyeConfig()) },
		func() cache.Policy { return NewGHRP(DefaultGHRPConfig()) },
	}
	rng := rand.New(rand.NewSource(77))
	blocks := make([]uint64, 20000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(500))
	}
	for _, mk := range policies {
		p := mk()
		hits := runTrace(t, p, cache.Config{Sets: 16, Ways: 4}, blocks, nil)
		if hits == 0 {
			t.Errorf("%s: zero hits on a reusing trace is implausible", p.Name())
		}
	}
}

func TestHawkeyeOptgen(t *testing.T) {
	g := newOptgen(2, 16)
	// Two blocks alternating in a 2-way set: OPT always hits.
	for i := 0; i < 8; i++ {
		trained, hit, _, _ := g.access(1, 0, false)
		if i > 0 && trained && !hit {
			t.Error("block 1 should be an OPT hit")
		}
		trained, hit, _, _ = g.access(2, 0, false)
		if i > 0 && trained && !hit {
			t.Error("block 2 should be an OPT hit")
		}
	}
	// Three blocks thrashing a 1-way "set": OPT misses most.
	g2 := newOptgen(1, 16)
	misses := 0
	for i := 0; i < 10; i++ {
		for _, b := range []uint64{1, 2, 3} {
			if trained, hit, _, _ := g2.access(b, 0, false); trained && !hit {
				misses++
			}
		}
	}
	if misses == 0 {
		t.Error("1-way optgen should reject some of the thrash pattern")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]cache.Policy{
		"lru":     NewLRU(),
		"plru":    NewPLRU(),
		"random":  NewRandom(0),
		"srrip":   NewSRRIP(2),
		"ship":    NewSHiP(DefaultSHiPConfig()),
		"harmony": NewHawkeye(DefaultHawkeyeConfig()),
		"ghrp":    NewGHRP(DefaultGHRPConfig()),
		"opt":     NewOPT(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}
