package policy

import "acic/internal/cache"

// The LIP/BIP/DIP family (Qureshi et al., ISCA'07 — "Adaptive Insertion
// Policies for High Performance Caching", [73] in the paper's related
// work). These are the classic thrash-resistant insertion policies the
// d-cache literature reaches for before signature-based schemes; they make
// natural extra baselines for the i-stream study:
//
//   - LIP inserts at the LRU position: a block must prove itself with a
//     hit before it is promoted, so a thrashing working set keeps only a
//     sliver of the cache.
//   - BIP is LIP with an epsilon of MRU insertions (1/32), letting some of
//     a thrashing set rotate through.
//   - DIP set-duels LRU against BIP with a PSEL counter and follows the
//     winner in the follower sets.

// LIP is LRU-insertion-at-LRU-position.
type LIP struct {
	lru LRU
}

// NewLIP returns a LIP policy.
func NewLIP() *LIP { return &LIP{} }

// Name implements cache.Policy.
func (p *LIP) Name() string { return "lip" }

// Reset implements cache.Policy.
func (p *LIP) Reset(sets, ways int) { p.lru.Reset(sets, ways) }

// OnHit implements cache.Policy: promotion to MRU on hit, as in LRU.
func (p *LIP) OnHit(set, way int, ctx *cache.AccessContext) { p.lru.OnHit(set, way, ctx) }

// OnFill implements cache.Policy: insert at the *LRU* position — the stamp
// is made older than every resident line so the block is the next victim
// unless it hits first.
func (p *LIP) OnFill(set, way int, _ *cache.AccessContext) {
	oldest := int64(1) << 62
	base := set * p.lru.ways
	for w := 0; w < p.lru.ways; w++ {
		if w != way && p.lru.stamp[base+w] < oldest {
			oldest = p.lru.stamp[base+w]
		}
	}
	if oldest == int64(1)<<62 {
		oldest = 1
	}
	p.lru.stamp[base+way] = oldest - 1
}

// OnEvict implements cache.Policy.
func (p *LIP) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy.
func (p *LIP) Victim(set int, ctx *cache.AccessContext) int { return p.lru.Victim(set, ctx) }

// BIP is LIP with occasional (1/Epsilon) MRU insertion.
type BIP struct {
	lip     LIP
	Epsilon uint64 // one in Epsilon fills inserts at MRU
	state   uint64
}

// NewBIP returns a BIP policy with the canonical 1/32 MRU-insertion rate.
func NewBIP() *BIP { return &BIP{Epsilon: 32, state: 0x1234_5678_9ABC_DEF0} }

// Name implements cache.Policy.
func (p *BIP) Name() string { return "bip" }

// Reset implements cache.Policy.
func (p *BIP) Reset(sets, ways int) { p.lip.Reset(sets, ways) }

// OnHit implements cache.Policy.
func (p *BIP) OnHit(set, way int, ctx *cache.AccessContext) { p.lip.OnHit(set, way, ctx) }

// OnFill implements cache.Policy.
func (p *BIP) OnFill(set, way int, ctx *cache.AccessContext) {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	if p.state%p.Epsilon == 0 {
		p.lip.lru.OnFill(set, way, ctx) // MRU insertion
		return
	}
	p.lip.OnFill(set, way, ctx) // LRU insertion
}

// OnEvict implements cache.Policy.
func (p *BIP) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy.
func (p *BIP) Victim(set int, ctx *cache.AccessContext) int { return p.lip.Victim(set, ctx) }

// DIP set-duels LRU against BIP: a few leader sets always use one policy
// and a saturating PSEL counter steers the follower sets to the winner.
type DIP struct {
	lru  LRU
	bip  BIP
	sets int
	psel int64 // >0: BIP is winning (fewer misses); <=0: LRU
	max  int64

	// Leader-set assignment: set % 32 == 0 -> LRU leader, == 16 -> BIP
	// leader.
}

// NewDIP returns a DIP policy with a 10-bit PSEL.
func NewDIP() *DIP { return &DIP{bip: *NewBIP(), max: 512} }

// Name implements cache.Policy.
func (p *DIP) Name() string { return "dip" }

// Reset implements cache.Policy.
func (p *DIP) Reset(sets, ways int) {
	p.sets = sets
	p.lru.Reset(sets, ways)
	p.bip.Reset(sets, ways)
}

func (p *DIP) leaderLRU(set int) bool { return set%32 == 0 }
func (p *DIP) leaderBIP(set int) bool { return set%32 == 16 }

func (p *DIP) useBIP(set int) bool {
	switch {
	case p.leaderLRU(set):
		return false
	case p.leaderBIP(set):
		return true
	default:
		return p.psel > 0
	}
}

// OnHit implements cache.Policy: both shadow stamps track the touch.
func (p *DIP) OnHit(set, way int, ctx *cache.AccessContext) {
	p.lru.OnHit(set, way, ctx)
	p.bip.OnHit(set, way, ctx)
}

// OnFill implements cache.Policy: a fill is a miss — leader-set misses
// train PSEL toward the other policy.
func (p *DIP) OnFill(set, way int, ctx *cache.AccessContext) {
	switch {
	case p.leaderLRU(set):
		if p.psel < p.max {
			p.psel++ // LRU missed: credit BIP
		}
	case p.leaderBIP(set):
		if p.psel > -p.max {
			p.psel-- // BIP missed: credit LRU
		}
	}
	if p.useBIP(set) {
		p.bip.OnFill(set, way, ctx)
		p.lru.touch(set, way) // keep the LRU shadow coherent
		return
	}
	p.lru.OnFill(set, way, ctx)
	p.bip.lip.lru.touch(set, way)
}

// OnEvict implements cache.Policy.
func (p *DIP) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy.
func (p *DIP) Victim(set int, ctx *cache.AccessContext) int {
	if p.useBIP(set) {
		return p.bip.Victim(set, ctx)
	}
	return p.lru.Victim(set, ctx)
}
