package policy

import "acic/internal/cache"

// SRRIP implements static re-reference interval prediction (Jaleel et al.,
// ISCA'10) with M-bit RRPVs (the paper's Table IV uses 2-bit). New lines are
// inserted with a "long" re-reference prediction (max-1); hits promote to 0;
// the victim is the first line at max RRPV, aging the whole set until one
// exists.
type SRRIP struct {
	bits int
	max  uint8
	ways int
	rrpv []uint8
}

// NewSRRIP returns an SRRIP policy with the given RRPV width in bits.
func NewSRRIP(bits int) *SRRIP {
	if bits < 1 || bits > 7 {
		panic("policy: SRRIP bits out of range")
	}
	return &SRRIP{bits: bits, max: uint8(1<<bits - 1)}
}

// Name implements cache.Policy.
func (p *SRRIP) Name() string { return "srrip" }

// Reset implements cache.Policy.
func (p *SRRIP) Reset(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = p.max
	}
}

// OnHit implements cache.Policy: hit promotion to RRPV 0.
func (p *SRRIP) OnHit(set, way int, _ *cache.AccessContext) {
	p.rrpv[set*p.ways+way] = 0
}

// OnFill implements cache.Policy: insert with long re-reference interval.
func (p *SRRIP) OnFill(set, way int, _ *cache.AccessContext) {
	p.rrpv[set*p.ways+way] = p.max - 1
}

// OnEvict implements cache.Policy.
func (p *SRRIP) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy.
func (p *SRRIP) Victim(set int, _ *cache.AccessContext) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == p.max {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// SHiP implements the signature-based hit predictor (Wu et al., MICRO'11)
// on top of SRRIP. Each line remembers the signature that inserted it and an
// outcome bit; a Signature History Counter Table (SHCT) learns whether
// insertions by a signature are ever re-referenced. Dead signatures insert
// at distant RRPV (immediately evictable); live ones at long RRPV. For the
// instruction stream the signature is a hash of the block address, standing
// in for the fetch-PC signature of the original proposal.
type SHiP struct {
	srrip    SRRIP
	ways     int
	shctBits int
	shct     []uint8 // 2-bit counters
	sig      []uint16
	outcome  []bool
}

// SHiPConfig sizes the SHCT; the paper's Table IV uses a 13-bit signature
// into an 8K-entry table of 2-bit counters.
type SHiPConfig struct {
	SignatureBits int // log2 of SHCT entries
	RRPVBits      int
}

// DefaultSHiPConfig matches Table IV.
func DefaultSHiPConfig() SHiPConfig { return SHiPConfig{SignatureBits: 13, RRPVBits: 2} }

// NewSHiP returns a SHiP policy.
func NewSHiP(cfg SHiPConfig) *SHiP {
	if cfg.SignatureBits < 4 || cfg.SignatureBits > 16 {
		panic("policy: SHiP signature bits out of range")
	}
	return &SHiP{srrip: *NewSRRIP(cfg.RRPVBits), shctBits: cfg.SignatureBits}
}

// Name implements cache.Policy.
func (p *SHiP) Name() string { return "ship" }

// Reset implements cache.Policy.
func (p *SHiP) Reset(sets, ways int) {
	p.srrip.Reset(sets, ways)
	p.ways = ways
	p.shct = make([]uint8, 1<<p.shctBits)
	for i := range p.shct {
		p.shct[i] = 1 // weakly live
	}
	p.sig = make([]uint16, sets*ways)
	p.outcome = make([]bool, sets*ways)
}

func (p *SHiP) signature(block uint64) uint16 {
	h := block * 0x9E3779B97F4A7C15
	return uint16(h>>32) & uint16(1<<p.shctBits-1)
}

// OnHit implements cache.Policy.
func (p *SHiP) OnHit(set, way int, ctx *cache.AccessContext) {
	p.srrip.OnHit(set, way, ctx)
	i := set*p.ways + way
	if !p.outcome[i] {
		p.outcome[i] = true
		if p.shct[p.sig[i]] < 3 {
			p.shct[p.sig[i]]++
		}
	}
}

// OnFill implements cache.Policy.
func (p *SHiP) OnFill(set, way int, ctx *cache.AccessContext) {
	i := set*p.ways + way
	sig := p.signature(ctx.Block)
	p.sig[i] = sig
	p.outcome[i] = false
	if p.shct[sig] == 0 {
		p.srrip.rrpv[i] = p.srrip.max // predicted dead: distant
	} else {
		p.srrip.rrpv[i] = p.srrip.max - 1
	}
}

// OnEvict implements cache.Policy: train dead signatures down.
func (p *SHiP) OnEvict(set, way int, _ *cache.AccessContext) {
	i := set*p.ways + way
	if !p.outcome[i] && p.shct[p.sig[i]] > 0 {
		p.shct[p.sig[i]]--
	}
}

// Victim implements cache.Policy.
func (p *SHiP) Victim(set int, ctx *cache.AccessContext) int {
	return p.srrip.Victim(set, ctx)
}
