package policy

import (
	"acic/internal/analysis"
	"acic/internal/cache"
	"acic/internal/flat"
)

// ProfileGuided is a profile-guided i-cache replacement policy in the
// spirit of Ripple (Khan et al., ISCA'21, [47] in the paper): an offline
// profiling pass classifies instruction blocks whose typical reuse distance
// exceeds the cache's reach as "transient", and at run time the replacement
// policy evicts transient blocks first (LRU among them, then global LRU).
// Ripple proper injects software eviction hints at profile-chosen program
// points; this block-classification variant captures the same idea —
// profile-derived deadness beats recency — within a hardware-only policy,
// which is what our harness can evaluate head-to-head with ACIC.
//
// Build the classification with Profile over a *training* slice of the
// workload (the harness uses the warmup prefix), then attach the policy to
// the evaluation run.
type ProfileGuided struct {
	transient *flat.Table // transient-classified blocks (open-addressed set)
	lru       LRU
	ways      int
	isTrans   []bool // per-line cache of the classification
}

// Profile classifies blocks from a training block-access sequence: a block
// is transient when the median reuse distance of its non-burst re-accesses
// exceeds horizon (the cache's reach in unique blocks).
func Profile(training []uint64, horizon int64) map[uint64]bool {
	dists := analysis.ReuseDistances(training)
	far := make(map[uint64][2]int, 1024) // block -> {far count, near count}
	for i, b := range training {
		d := dists[i]
		if d == analysis.InfiniteDistance || d <= 16 {
			continue // first touch or intra-burst: uninformative
		}
		c := far[b]
		if d > horizon {
			c[0]++
		} else {
			c[1]++
		}
		far[b] = c
	}
	out := make(map[uint64]bool, len(far))
	for b, c := range far {
		if c[0] > c[1] {
			out[b] = true
		}
	}
	return out
}

// NewProfileGuided returns the policy for a given classification. The map
// (the natural product of offline profiling) is flattened into an
// open-addressed set so the per-fill classification lookup on the hot path
// stays allocation-free and cache-friendly.
func NewProfileGuided(transient map[uint64]bool) *ProfileGuided {
	set := flat.NewTable(len(transient))
	for b, isTransient := range transient {
		if isTransient {
			set.Put(b, 1)
		}
	}
	return &ProfileGuided{transient: set}
}

// Name implements cache.Policy.
func (p *ProfileGuided) Name() string { return "ripple-lite" }

// Reset implements cache.Policy.
func (p *ProfileGuided) Reset(sets, ways int) {
	p.ways = ways
	p.lru.Reset(sets, ways)
	p.isTrans = make([]bool, sets*ways)
}

// OnHit implements cache.Policy.
func (p *ProfileGuided) OnHit(set, way int, ctx *cache.AccessContext) { p.lru.OnHit(set, way, ctx) }

// OnFill implements cache.Policy.
func (p *ProfileGuided) OnFill(set, way int, ctx *cache.AccessContext) {
	p.lru.OnFill(set, way, ctx)
	p.isTrans[set*p.ways+way] = p.transient.Contains(ctx.Block)
}

// OnEvict implements cache.Policy.
func (p *ProfileGuided) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy: LRU among profiled-transient lines first,
// else global LRU.
func (p *ProfileGuided) Victim(set int, ctx *cache.AccessContext) int {
	best := -1
	var bestStamp int64
	for w := 0; w < p.ways; w++ {
		if p.isTrans[set*p.ways+w] {
			s := p.lru.StampOf(set, w)
			if best == -1 || s < bestStamp {
				best, bestStamp = w, s
			}
		}
	}
	if best >= 0 {
		return best
	}
	return p.lru.Victim(set, ctx)
}

// TransientCount reports the classification size (introspection/tests).
func (p *ProfileGuided) TransientCount() int { return p.transient.Len() }
