package policy

import (
	"math/rand"
	"testing"
)

// refOptgen is the retained map-based reference implementation of the
// OPTgen per-block state (the pre-flat-table code): three Go maps keyed by
// block, pruned when they outgrow the usable window. The production optgen
// must be observably identical to it on any access stream.
type refOptgen struct {
	ways      int
	vec       []uint16
	t         int64
	last      map[uint64]int64
	lastSig   map[uint64]uint32
	lastPref  map[uint64]bool
	vecMask   int64
	vecLength int64
}

func newRefOptgen(ways, vecLen int) *refOptgen {
	return &refOptgen{
		ways:      ways,
		vec:       make([]uint16, vecLen),
		last:      make(map[uint64]int64),
		lastSig:   make(map[uint64]uint32),
		lastPref:  make(map[uint64]bool),
		vecMask:   int64(vecLen - 1),
		vecLength: int64(vecLen),
	}
}

func (g *refOptgen) access(block uint64, sig uint32, isPref bool) (trained bool, optHit bool, prevSig uint32, prevPref bool) {
	t0, seen := g.last[block]
	if seen && g.t-t0 < g.vecLength {
		optHit = true
		for q := t0; q < g.t; q++ {
			if int(g.vec[q&g.vecMask]) >= g.ways {
				optHit = false
				break
			}
		}
		if optHit {
			for q := t0; q < g.t; q++ {
				g.vec[q&g.vecMask]++
			}
		}
		trained = true
		prevSig = g.lastSig[block]
		prevPref = g.lastPref[block]
	}
	g.vec[g.t&g.vecMask] = 0
	g.last[block] = g.t
	g.lastSig[block] = sig
	g.lastPref[block] = isPref
	g.t++
	if len(g.last) > 8*int(g.vecLength) {
		for b, tb := range g.last {
			if g.t-tb >= g.vecLength {
				delete(g.last, b)
				delete(g.lastSig, b)
				delete(g.lastPref, b)
			}
		}
	}
	return trained, optHit, prevSig, prevPref
}

// TestOptgenMatchesMapReference drives the flat two-generation optgen and
// the map-based reference through identical access streams and requires
// identical outputs at every step, across block-locality regimes that
// exercise generation recycling, window expiry, and probe collisions.
func TestOptgenMatchesMapReference(t *testing.T) {
	for _, span := range []int{2, 8, 40, 300, 5000} {
		rng := rand.New(rand.NewSource(int64(span)))
		flat := newOptgen(8, 64)
		ref := newRefOptgen(8, 64)
		for step := 0; step < 50000; step++ {
			// Multiples of 64 collide in low bits; spans around the window
			// length stress the freshness boundary.
			block := uint64(rng.Intn(span)) * 64
			sig := uint32(block % 8192)
			pref := rng.Intn(4) == 0
			ft, fh, fs, fp := flat.access(block, sig, pref)
			rt, rh, rs, rp := ref.access(block, sig, pref)
			if ft != rt || fh != rh || fs != rs || fp != rp {
				t.Fatalf("span %d step %d block %d: flat=(%v,%v,%d,%v) ref=(%v,%v,%d,%v)",
					span, step, block, ft, fh, fs, fp, rt, rh, rs, rp)
			}
		}
	}
}
