package policy

import (
	"math/rand"
	"testing"

	"acic/internal/cache"
)

func TestLIPInsertsAtLRU(t *testing.T) {
	p := NewLIP()
	c := cache.MustNew(cache.Config{Sets: 1, Ways: 4}, p)
	for b := uint64(0); b < 4; b++ {
		c.Insert(&cache.AccessContext{Block: b})
	}
	// Without any hits, the most recent fill sits at the LRU position and
	// is the next victim.
	_, victim := c.PeekVictim(&cache.AccessContext{Block: 99})
	if victim.Block != 3 {
		t.Errorf("LIP victim = %d, want the latest fill (3)", victim.Block)
	}
	// A hit promotes to MRU, protecting the block.
	c.Access(&cache.AccessContext{Block: 3})
	_, victim = c.PeekVictim(&cache.AccessContext{Block: 99})
	if victim.Block == 3 {
		t.Error("promoted block must not be the victim")
	}
}

func TestLIPThrashResistance(t *testing.T) {
	// Cyclic access to a working set slightly larger than the cache: LRU
	// gets zero hits; LIP retains a resident core and hits.
	blocks := make([]uint64, 0, 6000)
	for r := 0; r < 1000; r++ {
		for b := uint64(0); b < 6; b++ {
			blocks = append(blocks, b)
		}
	}
	cfg := cache.Config{Sets: 1, Ways: 4}
	lruHits := runTrace(t, NewLRU(), cfg, blocks, nil)
	lipHits := runTrace(t, NewLIP(), cfg, blocks, nil)
	if lruHits != 0 {
		t.Fatalf("LRU should thrash a 6-block cycle in a 4-way set (got %d hits)", lruHits)
	}
	if lipHits == 0 {
		t.Fatal("LIP should retain part of the cyclic working set")
	}
}

func TestBIPOccasionallyInsertsAtMRU(t *testing.T) {
	p := NewBIP()
	p.Reset(1, 4)
	mru := 0
	for i := 0; i < 3200; i++ {
		p.OnFill(0, i%4, nil)
		if p.lip.lru.MRUWay(0) == i%4 {
			mru++
		}
	}
	// Roughly 1/32 of fills should land at MRU.
	if mru < 40 || mru > 260 {
		t.Errorf("MRU insertions = %d of 3200, want ~100", mru)
	}
}

func TestDIPSelectsWinningPolicy(t *testing.T) {
	p := NewDIP()
	c := cache.MustNew(cache.Config{Sets: 64, Ways: 4}, p)
	// A thrash pattern across all sets: BIP leader sets miss less, so PSEL
	// should drift positive (toward BIP).
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 120000; i++ {
		// 6 blocks per set cycle: thrash for LRU.
		set := uint64(rng.Intn(64))
		blk := set + uint64((i/64)%6)*64
		ctx := cache.AccessContext{Block: blk}
		if !c.Access(&ctx) {
			c.Insert(&ctx)
		}
	}
	if p.psel <= 0 {
		t.Errorf("PSEL = %d; DIP should have learned BIP wins a thrash pattern", p.psel)
	}
}

func TestDIPLeaderAssignment(t *testing.T) {
	p := NewDIP()
	p.Reset(64, 4)
	if !p.leaderLRU(0) || !p.leaderLRU(32) {
		t.Error("sets 0 and 32 must be LRU leaders")
	}
	if !p.leaderBIP(16) || !p.leaderBIP(48) {
		t.Error("sets 16 and 48 must be BIP leaders")
	}
	if p.leaderLRU(16) || p.leaderBIP(0) {
		t.Error("leader sets must be disjoint")
	}
	// Followers follow PSEL.
	p.psel = 5
	if !p.useBIP(1) {
		t.Error("positive PSEL must steer followers to BIP")
	}
	p.psel = -5
	if p.useBIP(1) {
		t.Error("negative PSEL must steer followers to LRU")
	}
	// Leaders ignore PSEL.
	if p.useBIP(0) || !p.useBIP(16) {
		t.Error("leaders must use their fixed policy")
	}
}

func TestDIPFamilyNames(t *testing.T) {
	if NewLIP().Name() != "lip" || NewBIP().Name() != "bip" || NewDIP().Name() != "dip" {
		t.Error("names wrong")
	}
}

func TestProfileClassifiesTransientBlocks(t *testing.T) {
	// Block 1: short reuse (hot); block 2: always far reuse (transient).
	var training []uint64
	for r := 0; r < 50; r++ {
		training = append(training, 1, 2)
		// 600 unique filler blocks between rounds: block 2's reuse distance
		// is ~601 (transient); block 1's is also far... interleave block 1
		// tightly instead.
		for f := uint64(100); f < 700; f++ {
			training = append(training, f, 1)
		}
	}
	prof := Profile(training, 512)
	if prof[1] {
		t.Error("tightly reused block misclassified as transient")
	}
	if !prof[2] {
		t.Error("far-reuse block should be transient")
	}
}

func TestProfileGuidedEvictsTransientFirst(t *testing.T) {
	p := NewProfileGuided(map[uint64]bool{8: true})
	c := cache.MustNew(cache.Config{Sets: 1, Ways: 3}, p)
	c.Insert(&cache.AccessContext{Block: 8}) // transient
	c.Insert(&cache.AccessContext{Block: 1})
	c.Insert(&cache.AccessContext{Block: 2})
	// LRU would evict 8 anyway here; touch it to make it MRU, then check
	// the policy still prefers it.
	c.Access(&cache.AccessContext{Block: 8})
	_, victim := c.PeekVictim(&cache.AccessContext{Block: 9})
	if victim.Block != 8 {
		t.Errorf("victim = %d, want the profiled-transient block 8", victim.Block)
	}
	if p.TransientCount() != 1 || p.Name() != "ripple-lite" {
		t.Error("metadata")
	}
	// Without transient lines the policy degenerates to LRU.
	c2 := cache.MustNew(cache.Config{Sets: 1, Ways: 2}, NewProfileGuided(nil))
	c2.Insert(&cache.AccessContext{Block: 1})
	c2.Insert(&cache.AccessContext{Block: 2})
	_, v2 := c2.PeekVictim(&cache.AccessContext{Block: 3})
	if v2.Block != 1 {
		t.Errorf("fallback LRU victim = %d, want 1", v2.Block)
	}
}
