package policy

import "acic/internal/cache"

// OPT is Belady's optimal replacement (Belady, 1966): evict the resident
// block whose next use lies furthest in the future. It requires oracle
// knowledge of the access stream, supplied per access through
// cache.AccessContext.NextUse; the oracle itself is built by
// internal/analysis.NextUseOracle from the trace's block-access sequence.
// OPT is not implementable in hardware; the paper uses it as the upper
// bound every practical scheme is measured against.
type OPT struct {
	ways   int
	blocks []uint64 // shadow of line contents, maintained via fill hooks
	valid  []bool
}

// NewOPT returns the Belady oracle policy.
func NewOPT() *OPT { return &OPT{} }

// Name implements cache.Policy.
func (p *OPT) Name() string { return "opt" }

// Reset implements cache.Policy.
func (p *OPT) Reset(sets, ways int) {
	p.ways = ways
	p.blocks = make([]uint64, sets*ways)
	p.valid = make([]bool, sets*ways)
}

// OnHit implements cache.Policy.
func (p *OPT) OnHit(int, int, *cache.AccessContext) {}

// OnFill implements cache.Policy: shadow the fill so Victim can consult the
// oracle about resident blocks.
func (p *OPT) OnFill(set, way int, ctx *cache.AccessContext) {
	i := set*p.ways + way
	p.blocks[i] = ctx.Block
	p.valid[i] = true
}

// OnEvict implements cache.Policy.
func (p *OPT) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy: the resident block re-used furthest in
// the future (ties broken by lowest way for determinism).
func (p *OPT) Victim(set int, ctx *cache.AccessContext) int {
	base := set * p.ways
	best, bestNext := 0, int64(-1)
	for w := 0; w < p.ways; w++ {
		if !p.valid[base+w] {
			return w
		}
		next := ctx.NextUseOf(p.blocks[base+w])
		if next > bestNext {
			best, bestNext = w, next
		}
	}
	return best
}

// ResidentBlock returns the shadowed block at (set, way); used by the
// OPT-bypass scheme to compare the incoming block's next use against the
// contender's.
func (p *OPT) ResidentBlock(set, way int) (uint64, bool) {
	i := set*p.ways + way
	return p.blocks[i], p.valid[i]
}
