package policy

import "acic/internal/cache"

// neverFilled orders empty ways before every resident line in the OPT
// victim scan: it exceeds cache.NeverUsed, so an invalid way always looks
// "furthest in the future" and is chosen first, matching the fill-empty-
// ways-first contract.
const neverFilled = int64(1<<63 - 1)

// OPT is Belady's optimal replacement (Belady, 1966): evict the resident
// block whose next use lies furthest in the future. It requires oracle
// knowledge of the access stream; rather than querying an oracle per way
// per eviction, each line carries its own next-use time, refreshed from the
// access context on every hit and fill (AccessContext.SelfNext is the O(1)
// successor-array value supplied by the i-cache layer; contexts without it
// fall back to the oracle closure). A line's carried value stays exact
// while it is resident: the value is an access index of that block, and if
// the block is still cached when that access arrives, the hit refreshes it.
// Victim selection is therefore a straight O(ways) int64 scan with no map
// traffic. OPT is not implementable in hardware; the paper uses it as the
// upper bound every practical scheme is measured against.
type OPT struct {
	ways   int
	blocks []uint64 // shadow of line contents, maintained via fill hooks
	next   []int64  // per-line next-use time; neverFilled when empty
}

// NewOPT returns the Belady oracle policy.
func NewOPT() *OPT { return &OPT{} }

// Name implements cache.Policy.
func (p *OPT) Name() string { return "opt" }

// Reset implements cache.Policy.
func (p *OPT) Reset(sets, ways int) {
	p.ways = ways
	p.blocks = make([]uint64, sets*ways)
	p.next = make([]int64, sets*ways)
	for i := range p.next {
		p.next[i] = neverFilled
	}
}

// OnHit implements cache.Policy: refresh the line's carried next-use time.
// A context without a precomputed value stores 0 ("unknown"); Victim
// resolves unknowns lazily.
func (p *OPT) OnHit(set, way int, ctx *cache.AccessContext) {
	p.next[set*p.ways+way] = ctx.SelfNext
}

// OnFill implements cache.Policy: shadow the fill and carry the incoming
// block's next-use time. Prefetch fills (and oracle-closure-only runs)
// carry no precomputed value and store 0; Victim resolves them lazily, so
// fills never pay an oracle query up front.
func (p *OPT) OnFill(set, way int, ctx *cache.AccessContext) {
	i := set*p.ways + way
	p.blocks[i] = ctx.Block
	p.next[i] = ctx.SelfNext
}

// OnEvict implements cache.Policy.
func (p *OPT) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy: the resident block re-used furthest in
// the future (ties broken by lowest way for determinism; empty ways sort
// first via the neverFilled sentinel).
//
// One edge preserves exact oracle semantics: a prefetch fill runs at the
// access index of the *upcoming* demand access, so an oracle query "next
// use strictly after AccessIdx" excludes a line whose re-use is that very
// access, while the line's carried value records it. Such a line (carried
// next == AccessIdx, prefetch context) is re-queried, keeping decisions
// byte-identical to the query-per-way implementation; this triggers only
// on prefetch-triggered evictions racing an imminent demand, so the scan
// stays oracle-free in the steady state.
func (p *OPT) Victim(set int, ctx *cache.AccessContext) int {
	base := set * p.ways
	best, bestNext := 0, int64(-1)
	for w := 0; w < p.ways; w++ {
		n := p.next[base+w]
		if n == 0 {
			// Unknown (prefetch-filled, or no successor array attached):
			// resolve with the oracle query the per-way implementation
			// would have made here, and cache it — later hits refresh it,
			// so the line never needs another query while resident.
			n = ctx.NextUseOf(p.blocks[base+w])
			p.next[base+w] = n
		} else if ctx != nil && ctx.IsPrefetch && n == ctx.AccessIdx {
			n = ctx.NextUseOf(p.blocks[base+w])
			p.next[base+w] = n
		}
		if n > bestNext {
			best, bestNext = w, n
		}
	}
	return best
}

// ResidentBlock returns the shadowed block at (set, way); used by the
// OPT-bypass scheme to compare the incoming block's next use against the
// contender's.
func (p *OPT) ResidentBlock(set, way int) (uint64, bool) {
	i := set*p.ways + way
	return p.blocks[i], p.next[i] != neverFilled
}
