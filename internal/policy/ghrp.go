package policy

import "acic/internal/cache"

// GHRP implements the Global History Reuse Predictor (Mirbagher Ajorpaz et
// al., "Exploring Predictive Replacement Policies for Instruction Cache and
// Branch Target Buffer", ISCA'18), the state-of-the-art hardware i-cache
// replacement policy the paper compares against.
//
// GHRP predicts dead blocks from the global history of recent block
// signatures: three skewed prediction tables of saturating counters are
// indexed by different hashes of (signature, global history); the majority
// vote classifies a block as dead. Victim selection prefers predicted-dead
// lines (LRU among them); insertion of a predicted-dead block can also be
// used as a bypass hint (exposed via PredictDead for the harness's GHRP
// bypass ablation, though Fig 10 evaluates it as a replacement policy).
//
// Per Table IV: 3 x 4096-entry tables of 2-bit counters, 16-bit signatures,
// 16-bit history register, 1 prediction bit per line.
type GHRP struct {
	cfg  GHRPConfig
	ways int

	hist   uint64
	tables [3][]uint8

	// Per-line training state.
	dead    []bool
	reused  []bool
	indices [][3]uint32 // table indices recorded at last touch
	lru     LRU
}

// GHRPConfig sizes GHRP; defaults follow Table IV.
type GHRPConfig struct {
	TableBits     int // log2 entries per table
	CounterMax    uint8
	Threshold     uint8 // counter >= Threshold votes dead
	HistoryBits   int
	SignatureBits int
}

// DefaultGHRPConfig matches Table IV (4096-entry tables, 2-bit counters,
// 16-bit signature and history).
func DefaultGHRPConfig() GHRPConfig {
	return GHRPConfig{TableBits: 12, CounterMax: 3, Threshold: 2, HistoryBits: 16, SignatureBits: 16}
}

// NewGHRP returns a GHRP policy.
func NewGHRP(cfg GHRPConfig) *GHRP { return &GHRP{cfg: cfg} }

// Name implements cache.Policy.
func (p *GHRP) Name() string { return "ghrp" }

// Reset implements cache.Policy.
func (p *GHRP) Reset(sets, ways int) {
	p.ways = ways
	p.hist = 0
	for t := range p.tables {
		p.tables[t] = make([]uint8, 1<<p.cfg.TableBits)
	}
	n := sets * ways
	p.dead = make([]bool, n)
	p.reused = make([]bool, n)
	p.indices = make([][3]uint32, n)
	p.lru.Reset(sets, ways)
}

func (p *GHRP) signature(block uint64) uint64 {
	return (block * 0x9E3779B97F4A7C15) >> (64 - p.cfg.SignatureBits)
}

// index computes the three skewed table indices for (signature, history).
func (p *GHRP) index(sig uint64) [3]uint32 {
	mask := uint64(1<<p.cfg.TableBits - 1)
	h := sig ^ p.hist
	var out [3]uint32
	out[0] = uint32(h & mask)
	out[1] = uint32(((h >> p.cfg.TableBits) ^ h*0x45D9F3B) & mask)
	out[2] = uint32(((h * 0x27D4EB2F165667C5) >> 16) & mask)
	return out
}

func (p *GHRP) predictDead(idx [3]uint32) bool {
	votes := 0
	for t := 0; t < 3; t++ {
		if p.tables[t][idx[t]] >= p.cfg.Threshold {
			votes++
		}
	}
	return votes >= 2
}

// PredictDead reports whether GHRP currently classifies block as dead-on-
// fill; exposed for bypass-style use of the predictor.
func (p *GHRP) PredictDead(block uint64) bool {
	return p.predictDead(p.index(p.signature(block)))
}

func (p *GHRP) train(idx [3]uint32, dead bool) {
	for t := 0; t < 3; t++ {
		c := &p.tables[t][idx[t]]
		if dead {
			if *c < p.cfg.CounterMax {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
	}
}

func (p *GHRP) updateHistory(sig uint64) {
	p.hist = ((p.hist << 4) ^ sig) & (1<<p.cfg.HistoryBits - 1)
}

func (p *GHRP) touch(set, way int, ctx *cache.AccessContext) {
	i := set*p.ways + way
	sig := p.signature(ctx.Block)
	idx := p.index(sig)
	p.indices[i] = idx
	p.dead[i] = p.predictDead(idx)
	p.updateHistory(sig)
}

// OnHit implements cache.Policy: the line was not dead after its previous
// touch, so train those entries toward live, then re-predict.
func (p *GHRP) OnHit(set, way int, ctx *cache.AccessContext) {
	i := set*p.ways + way
	p.train(p.indices[i], false)
	p.reused[i] = true
	p.touch(set, way, ctx)
	p.lru.OnHit(set, way, ctx)
}

// OnFill implements cache.Policy.
func (p *GHRP) OnFill(set, way int, ctx *cache.AccessContext) {
	i := set*p.ways + way
	p.reused[i] = false
	p.touch(set, way, ctx)
	p.lru.OnFill(set, way, ctx)
}

// OnEvict implements cache.Policy: the line was dead after its last touch.
func (p *GHRP) OnEvict(set, way int, _ *cache.AccessContext) {
	i := set*p.ways + way
	p.train(p.indices[i], true)
}

// Victim implements cache.Policy: LRU among predicted-dead lines if any,
// else global LRU.
func (p *GHRP) Victim(set int, ctx *cache.AccessContext) int {
	base := set * p.ways
	best := -1
	var bestStamp int64
	for w := 0; w < p.ways; w++ {
		if p.dead[base+w] {
			s := p.lru.StampOf(set, w)
			if best == -1 || s < bestStamp {
				best, bestStamp = w, s
			}
		}
	}
	if best >= 0 {
		return best
	}
	return p.lru.Victim(set, ctx)
}
