package policy

import "acic/internal/cache"

// Random replacement with a deterministic xorshift stream; a sanity-check
// baseline and the randomness source for the random-bypass experiment
// (Fig 12b).
type Random struct {
	ways  int
	state uint64
}

// NewRandom returns a Random policy seeded deterministically.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Random{state: seed}
}

// Name implements cache.Policy.
func (p *Random) Name() string { return "random" }

// Reset implements cache.Policy.
func (p *Random) Reset(_, ways int) { p.ways = ways }

// OnHit implements cache.Policy.
func (p *Random) OnHit(int, int, *cache.AccessContext) {}

// OnFill implements cache.Policy.
func (p *Random) OnFill(int, int, *cache.AccessContext) {}

// OnEvict implements cache.Policy.
func (p *Random) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy.
func (p *Random) Victim(int, *cache.AccessContext) int {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(p.ways))
}

// PLRU is tree-based pseudo-LRU, the common hardware approximation of LRU.
// Each set keeps ways-1 tree bits; a touch flips the path away from the
// touched way, and the victim follows the bits to the pseudo-oldest leaf.
// Associativity must be a power of two.
type PLRU struct {
	ways int
	bits [][]bool // per set, ways-1 tree bits
}

// NewPLRU returns a tree-PLRU policy.
func NewPLRU() *PLRU { return &PLRU{} }

// Name implements cache.Policy.
func (p *PLRU) Name() string { return "plru" }

// Reset implements cache.Policy.
func (p *PLRU) Reset(sets, ways int) {
	if ways&(ways-1) != 0 {
		panic("policy: PLRU requires power-of-two associativity")
	}
	p.ways = ways
	p.bits = make([][]bool, sets)
	for i := range p.bits {
		p.bits[i] = make([]bool, ways-1)
	}
}

func (p *PLRU) touch(set, way int) {
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			p.bits[set][node] = true // point away: right side is older
			node = 2*node + 1
			hi = mid
		} else {
			p.bits[set][node] = false
			node = 2*node + 2
			lo = mid
		}
	}
}

// OnHit implements cache.Policy.
func (p *PLRU) OnHit(set, way int, _ *cache.AccessContext) { p.touch(set, way) }

// OnFill implements cache.Policy.
func (p *PLRU) OnFill(set, way int, _ *cache.AccessContext) { p.touch(set, way) }

// OnEvict implements cache.Policy.
func (p *PLRU) OnEvict(int, int, *cache.AccessContext) {}

// Victim implements cache.Policy.
func (p *PLRU) Victim(set int, _ *cache.AccessContext) int {
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.bits[set][node] {
			node = 2*node + 2 // bit true: LRU side is right
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}
