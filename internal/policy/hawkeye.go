package policy

import "acic/internal/cache"

// Hawkeye (Jain & Lin, ISCA'16) learns from Belady's OPT: sampled sets run
// OPTgen, a reconstruction of what OPT would have done, and its verdicts
// train a signature-indexed predictor that classifies fills as cache
// friendly or cache averse. Friendly fills insert at RRPV 0, averse fills at
// RRPV max (immediately evictable). Harmony is the prefetch-aware variant
// from the follow-up paper (Jain & Lin, ISCA'18): it trains and predicts
// prefetch fills separately so that inaccurate prefetches become averse.
// The figures in the ACIC paper label this scheme "Harmony" because the
// platform includes a prefetcher; with no prefetch traffic it degenerates to
// exactly Hawkeye.
type Hawkeye struct {
	cfg  HawkeyeConfig
	ways int
	max  uint8

	rrpv     []uint8
	sig      []uint32 // signature that filled each line
	wasPref  []bool   // fill originated from a prefetch
	pred     []uint8  // 3-bit counters, demand predictor
	predPref []uint8  // 3-bit counters, prefetch predictor (Harmony)

	samples []optgen // one per sampled set; nil entries for unsampled
}

// HawkeyeConfig sizes the predictor per the paper's Table IV: 8K-entry
// predictor with 3-bit counters, 64-entry occupancy vectors, 3-bit RRIP.
type HawkeyeConfig struct {
	PredictorBits int // log2 of predictor entries
	VectorLen     int // occupancy vector length (time quanta)
	RRPVBits      int
	SampleShift   int // sample every 2^SampleShift-th set
}

// DefaultHawkeyeConfig matches Table IV.
func DefaultHawkeyeConfig() HawkeyeConfig {
	return HawkeyeConfig{PredictorBits: 13, VectorLen: 64, RRPVBits: 3, SampleShift: 0}
}

// optgenMeta is one block's last-access record: time (stored as t+1), the
// signature that accessed it, and the prefetch flag. One flat record
// replaces the three per-block Go maps the original implementation kept.
type optgenMeta struct {
	time int64 // last access time + 1
	sig  uint32
	pref bool
}

const optgenFibMul = 0x9E3779B97F4A7C15

// optgen reconstructs OPT decisions for one sampled set. Per-block state
// lives in two open-addressed generation tables recycled every vecLength
// accesses: an access at time t only ever consults records younger than
// vecLength, and any such record was written during the current or the
// previous generation, so the two tables together always cover the usable
// window while stale records vanish wholesale with a memclr instead of
// per-entry map deletions. Keys (block+1, so zero means empty) live apart
// from the metadata records, so a probe walks a dense uint64 array; each
// table is sized at 2x the generation's maximum insert count, so probes
// stay short and lookups never allocate.
type optgen struct {
	ways      int
	vec       []uint8 // occupancy per time quantum, ring buffer (<= ways <= 255)
	t         int64
	curKeys   []uint64 // block+1 per slot; 0 = empty
	prevKeys  []uint64
	curMeta   []optgenMeta // records written this generation
	prevMeta  []optgenMeta // records from the previous generation
	tabMask   int
	tabShift  uint
	vecMask   int64
	vecLength int64
}

func newOptgen(ways, vecLen int) optgen {
	tabCap := 2 * vecLen // <=vecLen inserts per generation -> <=50% load
	shift := uint(64)
	for c := tabCap; c > 1; c >>= 1 {
		shift--
	}
	return optgen{
		ways:      ways,
		vec:       make([]uint8, vecLen),
		curKeys:   make([]uint64, tabCap),
		prevKeys:  make([]uint64, tabCap),
		curMeta:   make([]optgenMeta, tabCap),
		prevMeta:  make([]optgenMeta, tabCap),
		tabMask:   tabCap - 1,
		tabShift:  shift,
		vecMask:   int64(vecLen - 1),
		vecLength: int64(vecLen),
	}
}

// slot probes keys for block, returning its slot when found, else the
// empty slot a new record for block should claim.
func (g *optgen) slot(keys []uint64, block uint64) (int, bool) {
	k := block + 1
	i := int((block * optgenFibMul) >> g.tabShift)
	for keys[i] != 0 {
		if keys[i] == k {
			return i, true
		}
		i = (i + 1) & g.tabMask
	}
	return i, false
}

// access simulates one access in the sampled set and returns whether OPT
// would have hit, plus the signature and prefetch flag of the *previous*
// access to this block (the access OPT's verdict trains).
func (g *optgen) access(block uint64, sig uint32, isPref bool) (trained bool, optHit bool, prevSig uint32, prevPref bool) {
	if g.t&g.vecMask == 0 {
		// Generation boundary: every record in the older table is now at
		// least vecLength old (unusable), so recycle it as the new current
		// table. Only the keys need clearing; metadata is valid iff its key
		// is.
		g.curKeys, g.prevKeys = g.prevKeys, g.curKeys
		g.curMeta, g.prevMeta = g.prevMeta, g.curMeta
		clear(g.curKeys)
	}
	// Latest record for block: the current generation shadows the previous.
	ci, inCur := g.slot(g.curKeys, block)
	var m optgenMeta
	seen := inCur
	if inCur {
		m = g.curMeta[ci]
	} else if pi, ok := g.slot(g.prevKeys, block); ok {
		m = g.prevMeta[pi]
		seen = true
	}
	if t0 := m.time - 1; seen && g.t-t0 < g.vecLength {
		optHit = true
		for q := t0; q < g.t; q++ {
			if int(g.vec[q&g.vecMask]) >= g.ways {
				optHit = false
				break
			}
		}
		if optHit {
			for q := t0; q < g.t; q++ {
				g.vec[q&g.vecMask]++
			}
		}
		trained = true
		prevSig = m.sig
		prevPref = m.pref
	}
	g.vec[g.t&g.vecMask] = 0 // open the new quantum
	g.curKeys[ci] = block + 1
	g.curMeta[ci] = optgenMeta{time: g.t + 1, sig: sig, pref: isPref}
	g.t++
	return trained, optHit, prevSig, prevPref
}

// NewHawkeye returns a Hawkeye/Harmony policy.
func NewHawkeye(cfg HawkeyeConfig) *Hawkeye {
	if cfg.VectorLen&(cfg.VectorLen-1) != 0 || cfg.VectorLen <= 0 {
		panic("policy: Hawkeye vector length must be a power of two")
	}
	return &Hawkeye{cfg: cfg, max: uint8(1<<cfg.RRPVBits - 1)}
}

// Name implements cache.Policy.
func (p *Hawkeye) Name() string { return "harmony" }

// Reset implements cache.Policy.
func (p *Hawkeye) Reset(sets, ways int) {
	p.ways = ways
	n := sets * ways
	p.rrpv = make([]uint8, n)
	for i := range p.rrpv {
		p.rrpv[i] = p.max
	}
	p.sig = make([]uint32, n)
	p.wasPref = make([]bool, n)
	p.pred = make([]uint8, 1<<p.cfg.PredictorBits)
	p.predPref = make([]uint8, 1<<p.cfg.PredictorBits)
	for i := range p.pred {
		p.pred[i] = 4 // weakly friendly
		p.predPref[i] = 4
	}
	p.samples = make([]optgen, sets)
	for s := 0; s < sets; s++ {
		if s&(1<<p.cfg.SampleShift-1) == 0 {
			p.samples[s] = newOptgen(ways, p.cfg.VectorLen)
		}
	}
}

func (p *Hawkeye) signature(block uint64) uint32 {
	h := block * 0x9E3779B97F4A7C15
	return uint32(h>>29) & uint32(1<<p.cfg.PredictorBits-1)
}

func (p *Hawkeye) table(isPref bool) []uint8 {
	if isPref {
		return p.predPref
	}
	return p.pred
}

// sample runs the set's OPTgen (when sampled) under the access's
// precomputed signature and trains the predictor from its verdict.
func (p *Hawkeye) sample(set int, sig uint32, ctx *cache.AccessContext) {
	if p.samples[set].vec == nil {
		return
	}
	trained, optHit, prevSig, prevPref := p.samples[set].access(ctx.Block, sig, ctx.IsPrefetch)
	if !trained {
		return
	}
	tbl := p.table(prevPref)
	if optHit {
		if tbl[prevSig] < 7 {
			tbl[prevSig]++
		}
	} else if tbl[prevSig] > 0 {
		tbl[prevSig]--
	}
}

// OnHit implements cache.Policy.
func (p *Hawkeye) OnHit(set, way int, ctx *cache.AccessContext) {
	sig := p.signature(ctx.Block)
	p.sample(set, sig, ctx)
	i := set*p.ways + way
	p.sig[i] = sig
	p.wasPref[i] = ctx.IsPrefetch
	if p.table(ctx.IsPrefetch)[sig] >= 4 {
		p.rrpv[i] = 0
	} else {
		p.rrpv[i] = p.max
	}
}

// OnFill implements cache.Policy.
func (p *Hawkeye) OnFill(set, way int, ctx *cache.AccessContext) {
	sig := p.signature(ctx.Block)
	p.sample(set, sig, ctx)
	i := set*p.ways + way
	p.sig[i] = sig
	p.wasPref[i] = ctx.IsPrefetch
	if p.table(ctx.IsPrefetch)[sig] >= 4 { // predicted cache-friendly
		// Age friendly lines so older friendly lines become evictable.
		base := set * p.ways
		for w := 0; w < p.ways; w++ {
			if w != way && p.rrpv[base+w] < p.max-1 {
				p.rrpv[base+w]++
			}
		}
		p.rrpv[i] = 0
	} else {
		p.rrpv[i] = p.max
	}
}

// OnEvict implements cache.Policy: evicting a friendly-predicted line that
// OPT would have kept signals the predictor was too optimistic.
func (p *Hawkeye) OnEvict(set, way int, _ *cache.AccessContext) {
	i := set*p.ways + way
	if p.rrpv[i] != p.max { // was predicted friendly
		tbl := p.table(p.wasPref[i])
		if tbl[p.sig[i]] > 0 {
			tbl[p.sig[i]]--
		}
	}
}

// Victim implements cache.Policy: prefer an averse (max-RRPV) line, else the
// oldest friendly line.
func (p *Hawkeye) Victim(set int, _ *cache.AccessContext) int {
	base := set * p.ways
	best, bestRRPV := 0, p.rrpv[base]
	for w := 0; w < p.ways; w++ {
		if p.rrpv[base+w] == p.max {
			return w
		}
		if p.rrpv[base+w] > bestRRPV {
			best, bestRRPV = w, p.rrpv[base+w]
		}
	}
	return best
}
