// Package faults is a deterministic, spec-driven fault injector for
// exercising the engine's failure paths in tests and CI. A spec names
// fault classes and their rates, e.g.
//
//	io-err:p=0.01;corrupt-artifact:p=0.005;panic-cell:every=97;seed=7
//
// and is installed process-wide (from -fault-spec or ACIC_FAULT_SPEC).
// Production code calls the cheap hook functions (FailIO, Corrupt,
// PanicPoint) at its fault sites; with no injector installed each hook is
// a single atomic load and injects nothing, so the hooks can sit on warm
// paths — though never on the per-access simulation hot path, which stays
// hook-free (DESIGN.md §13).
//
// Decisions are deterministic: each class keeps an atomic draw counter,
// and draw n of class c fires iff splitmix64(seed, c, n) maps below the
// class's probability (or n is a multiple of its period for every=N
// rules). For a fixed sequence of hook calls the injected faults are
// therefore reproducible; under concurrency the interleaving (and so the
// site each draw lands on) may vary, which is fine because correctness
// never depends on fault placement — only recovery does, and recovery is
// what the injector exists to exercise.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Class identifies one injectable fault kind.
type Class int

const (
	// IOErr makes a DiskCache read or write fail as if the underlying
	// storage errored: loads become misses, stores are skipped. Always
	// survivable — the cache is best-effort by contract.
	IOErr Class = iota
	// CorruptArtifact flips one bit in an encoded value before it is
	// persisted, simulating a torn or bit-rotted write. The corruption is
	// caught by the container/entry checksums on the next load, which
	// quarantines the file and regenerates.
	CorruptArtifact
	// PanicCell panics at a worker task boundary (group compute, gang
	// start, stream window) with an Injected value, exercising panic
	// isolation, retry, and the degradation ladder.
	PanicCell
	// NetErr makes an HTTP round trip fail as if the network dropped it:
	// remote store loads become misses, stores are skipped, and the
	// distributed coordinator/worker protocol sees a transport error its
	// retry ladder must absorb. Always survivable — remote callers treat
	// it exactly like a refused connection.
	NetErr

	numClasses
)

var classNames = [numClasses]string{"io-err", "corrupt-artifact", "panic-cell", "net-err"}

func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("faults.Class(%d)", int(c))
	}
	return classNames[c]
}

// rule is one class's firing schedule: probabilistic (p) or periodic
// (every). Exactly one is non-zero in a parsed rule.
type rule struct {
	p     float64
	every int64
}

// Injector holds a parsed spec plus per-class draw and fire counters.
// All methods are safe for concurrent use.
type Injector struct {
	spec  string
	seed  uint64
	rules [numClasses]rule
	draws [numClasses]atomic.Int64
	fired [numClasses]atomic.Int64
}

// Parse compiles a spec string. Grammar: semicolon-separated fields, each
// either "seed=N" or "class:param=value[,param=value]" where class is one
// of io-err, corrupt-artifact, panic-cell and param is p (probability in
// [0,1]) or every (fire on every Nth draw, N >= 1). An empty spec is
// valid and injects nothing.
func Parse(spec string) (*Injector, error) {
	in := &Injector{spec: spec, seed: 1}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if s, ok := strings.CutPrefix(field, "seed="); ok {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", s, err)
			}
			in.seed = n
			continue
		}
		name, params, ok := strings.Cut(field, ":")
		if !ok {
			return nil, fmt.Errorf("faults: field %q is not class:param=value or seed=N", field)
		}
		class := Class(-1)
		for c, cn := range classNames {
			if cn == name {
				class = Class(c)
			}
		}
		if class < 0 {
			return nil, fmt.Errorf("faults: unknown class %q (want io-err, corrupt-artifact, panic-cell, or net-err)", name)
		}
		var r rule
		for _, kv := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faults: %s: parameter %q is not key=value", name, kv)
			}
			switch k {
			case "p":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("faults: %s: p=%q is not a probability in [0,1]", name, v)
				}
				r.p = p
			case "every":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faults: %s: every=%q is not a positive integer", name, v)
				}
				r.every = n
			default:
				return nil, fmt.Errorf("faults: %s: unknown parameter %q (want p or every)", name, k)
			}
		}
		if r.p != 0 && r.every != 0 {
			return nil, fmt.Errorf("faults: %s: p and every are mutually exclusive", name)
		}
		if r.p == 0 && r.every == 0 {
			return nil, fmt.Errorf("faults: %s: rule needs p= or every=", name)
		}
		in.rules[class] = r
	}
	return in, nil
}

// Validate reports whether spec parses, without installing it.
func Validate(spec string) error {
	_, err := Parse(spec)
	return err
}

// Mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit mixing
// function. Exported for callers that need deterministic pseudo-random
// decisions without math/rand's locking (backoff jitter, bit selection).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fire draws once for class c, returning whether the fault fires and the
// zero-based draw index (for deriving secondary decisions such as which
// bit to flip).
func (in *Injector) fire(c Class) (bool, int64) {
	r := in.rules[c]
	if r.p == 0 && r.every == 0 {
		return false, 0
	}
	n := in.draws[c].Add(1) - 1
	hit := false
	if r.every > 0 {
		hit = n%r.every == r.every-1
	} else {
		u := Mix64(in.seed ^ uint64(c)<<32 ^ uint64(n))
		hit = float64(u>>11)/(1<<53) < r.p
	}
	if hit {
		in.fired[c].Add(1)
	}
	return hit, n
}

// Stats is a snapshot of injection activity.
type Stats struct {
	Spec        string `json:"spec,omitempty"`
	IOErrs      int64  `json:"io_errs"`
	Corruptions int64  `json:"corruptions"`
	Panics      int64  `json:"panics"`
	NetErrs     int64  `json:"net_errs"`
}

// Total is the number of faults fired across all hooks.
func (s Stats) Total() int64 {
	return s.IOErrs + s.Corruptions + s.Panics + s.NetErrs
}

// Injected is the panic value raised by PanicPoint. Recovery code uses
// IsInjected to classify such panics as transient (retryable): the panic
// was environmental, not a simulator bug, so re-running the work is both
// safe and expected to succeed.
type Injected struct {
	Site string // hook site, e.g. "compute", "gang", "stream-window"
	Draw int64  // draw index that fired
}

func (i *Injected) String() string {
	return fmt.Sprintf("injected fault at %s (draw %d)", i.Site, i.Draw)
}

// IsInjected reports whether a recovered panic value came from PanicPoint.
func IsInjected(r any) bool {
	_, ok := r.(*Injected)
	return ok
}

// active is the process-wide injector; nil means no injection.
var active atomic.Pointer[Injector]

// Install parses and installs spec process-wide, replacing any previous
// injector (and its counters). An empty spec uninstalls.
func Install(spec string) error {
	if spec == "" {
		active.Store(nil)
		return nil
	}
	in, err := Parse(spec)
	if err != nil {
		return err
	}
	active.Store(in)
	return nil
}

// Snapshot returns the installed injector's activity counters, or a zero
// Stats when none is installed.
func Snapshot() Stats {
	in := active.Load()
	if in == nil {
		return Stats{}
	}
	return Stats{
		Spec:        in.spec,
		IOErrs:      in.fired[IOErr].Load(),
		Corruptions: in.fired[CorruptArtifact].Load(),
		Panics:      in.fired[PanicCell].Load(),
		NetErrs:     in.fired[NetErr].Load(),
	}
}

// FailIO reports whether an injected IO error fires at this call site.
// Callers treat a true result exactly like a real storage error: loads
// miss, stores skip.
func FailIO() bool {
	in := active.Load()
	if in == nil {
		return false
	}
	hit, _ := in.fire(IOErr)
	return hit
}

// FailNet reports whether an injected network error fires at this call
// site. Remote-store and coordinator clients treat a true result exactly
// like a transport failure: the request is never issued, loads miss,
// stores skip, and protocol calls surface a transient error for the
// retry ladder.
func FailNet() bool {
	in := active.Load()
	if in == nil {
		return false
	}
	hit, _ := in.fire(NetErr)
	return hit
}

// Corrupt flips one deterministically-chosen bit of data in place when
// the corrupt-artifact rule fires, and returns data either way. The bit
// is drawn from the second half of the buffer so that for checksummed
// container formats it always lands in a CRC-covered region (headers and
// names are a small prefix); JSON cache entries are whole-file
// checksummed, so any position is caught there.
func Corrupt(data []byte) []byte {
	in := active.Load()
	if in == nil || len(data) == 0 {
		return data
	}
	hit, n := in.fire(CorruptArtifact)
	if !hit {
		return data
	}
	bits := uint64(len(data)) * 8
	lo := bits / 2
	bit := lo + Mix64(in.seed^0xc0ffee^uint64(n))%(bits-lo)
	data[bit/8] ^= 1 << (bit % 8)
	return data
}

// PanicPoint panics with an *Injected value when the panic-cell rule
// fires at this site. Sites are placed at task boundaries (before any
// state is mutated) so that recovery can always retry cleanly.
func PanicPoint(site string) {
	in := active.Load()
	if in == nil {
		return
	}
	if hit, n := in.fire(PanicCell); hit {
		panic(&Injected{Site: site, Draw: n})
	}
}
