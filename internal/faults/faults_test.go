package faults

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := []string{
		"",
		"seed=42",
		"io-err:p=0.01",
		"corrupt-artifact:p=1",
		"panic-cell:every=97",
		"io-err:p=0.01;corrupt-artifact:p=0.005;panic-cell:every=97;seed=7",
		" io-err:p=0.5 ; seed=1 ;",
	}
	for _, spec := range cases {
		if err := Validate(spec); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", spec, err)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"bogus", "not class:param=value"},
		{"warp-core:p=0.1", "unknown class"},
		{"io-err:p=2", "probability"},
		{"io-err:p=-0.5", "probability"},
		{"io-err:every=0", "positive integer"},
		{"io-err:q=0.5", "unknown parameter"},
		{"io-err:p=0.5,every=3", "mutually exclusive"},
		{"io-err:", "key=value"},
		{"panic-cell:p=0;seed=1", "needs p= or every="},
		{"seed=xyz", "bad seed"},
	}
	for _, c := range cases {
		err := Validate(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Validate(%q) = %v, want error containing %q", c.spec, err, c.wantSub)
		}
	}
}

func TestEveryIsPeriodic(t *testing.T) {
	in, err := Parse("panic-cell:every=5")
	if err != nil {
		t.Fatal(err)
	}
	var fires []int64
	for i := 0; i < 20; i++ {
		if hit, n := in.fire(PanicCell); hit {
			fires = append(fires, n)
		}
	}
	want := []int64{4, 9, 14, 19}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestProbabilityEndpointsAndDeterminism(t *testing.T) {
	always, _ := Parse("io-err:p=1")
	for i := 0; i < 100; i++ {
		if hit, _ := always.fire(IOErr); !hit {
			t.Fatalf("p=1 draw %d did not fire", i)
		}
	}
	// Two injectors with the same spec fire on the same draw indices.
	a, _ := Parse("io-err:p=0.3;seed=11")
	b, _ := Parse("io-err:p=0.3;seed=11")
	for i := 0; i < 1000; i++ {
		ha, _ := a.fire(IOErr)
		hb, _ := b.fire(IOErr)
		if ha != hb {
			t.Fatalf("draw %d diverged between identical injectors", i)
		}
	}
	if a.fired[IOErr].Load() == 0 {
		t.Fatal("p=0.3 never fired in 1000 draws")
	}
}

func TestInstallHooksAndSnapshot(t *testing.T) {
	defer Install("")
	if err := Install("io-err:p=1;corrupt-artifact:p=1;panic-cell:every=1;seed=9"); err != nil {
		t.Fatal(err)
	}
	if !FailIO() {
		t.Fatal("FailIO did not fire with p=1")
	}
	orig := bytes.Repeat([]byte{0xAA}, 64)
	data := append([]byte(nil), orig...)
	Corrupt(data)
	if bytes.Equal(data, orig) {
		t.Fatal("Corrupt did not flip a bit with p=1")
	}
	diff := 0
	for i := range data {
		if data[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("Corrupt changed %d bytes, want exactly 1", diff)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil || !IsInjected(r) {
				t.Fatalf("PanicPoint recovered %v, want *Injected", r)
			}
		}()
		PanicPoint("test")
	}()
	s := Snapshot()
	if s.IOErrs != 1 || s.Corruptions != 1 || s.Panics != 1 {
		t.Fatalf("Snapshot = %+v, want one fire per class", s)
	}
	if s.Spec == "" {
		t.Fatal("Snapshot.Spec empty with injector installed")
	}
}

func TestUninstalledHooksAreInert(t *testing.T) {
	Install("")
	if FailIO() {
		t.Fatal("FailIO fired with no injector")
	}
	data := []byte{1, 2, 3}
	Corrupt(data)
	if data[0] != 1 || data[1] != 2 || data[2] != 3 {
		t.Fatal("Corrupt mutated data with no injector")
	}
	PanicPoint("test") // must not panic
	if s := Snapshot(); s != (Stats{}) {
		t.Fatalf("Snapshot = %+v, want zero", s)
	}
}

func TestIsInjectedRejectsOtherPanics(t *testing.T) {
	if IsInjected("boom") || IsInjected(42) || IsInjected(nil) {
		t.Fatal("IsInjected accepted a non-injected value")
	}
}

func TestNetErrClass(t *testing.T) {
	if err := Validate("net-err:p=0.25;seed=3"); err != nil {
		t.Fatalf("Validate(net-err) = %v, want nil", err)
	}
	if err := Install("net-err:p=1;seed=3"); err != nil {
		t.Fatal(err)
	}
	defer Install("")
	for i := 0; i < 3; i++ {
		if !FailNet() {
			t.Fatalf("FailNet() draw %d = false under p=1", i)
		}
	}
	// The other hooks stay inert: net-err must never bleed into local
	// store I/O or compute paths.
	if FailIO() {
		t.Fatal("FailIO fired under a net-err-only spec")
	}
	PanicPoint("compute") // must not panic
	if got := Snapshot().NetErrs; got != 3 {
		t.Fatalf("Snapshot().NetErrs = %d, want 3", got)
	}
	if Snapshot().IOErrs != 0 || Snapshot().Panics != 0 {
		t.Fatal("net-err draws leaked into other class counters")
	}
}

func TestFailNetUninstalledIsInert(t *testing.T) {
	Install("")
	if FailNet() {
		t.Fatal("FailNet() fired with no injector installed")
	}
}
