package analysis

import "acic/internal/cache"

// Set-sampled estimators for the trace-characterization analyses: the
// quick-look lane runs them over the sampled set constituencies only and
// scales the unique-block counts back up by the stride, the same
// methodology the sampled simulator applies to miss counters
// (DESIGN.md §10). The full-analysis functions remain the reference.

// SampleRefs filters a block-reference sequence down to the sampled
// constituencies. With the zero filter it returns the input unchanged.
func SampleRefs(blocks []uint64, f cache.SampleFilter) []uint64 {
	if !f.Enabled() {
		return blocks
	}
	out := make([]uint64, 0, len(blocks)/f.Stride()+1)
	for _, b := range blocks {
		if f.Sampled(b) {
			out = append(out, b)
		}
	}
	return out
}

// SampledReuseDistances estimates the LRU stack distances of the sampled
// accesses: the unique blocks observed between consecutive uses within
// the sampled constituencies, scaled by the stride (unique blocks are
// spread uniformly over constituencies, so sampled-unique × stride is an
// unbiased estimate of true uniques). Distance 0 — the dominant
// same-block spatial bucket — is preserved exactly for runs with no
// intervening sampled block. With the zero filter this is exactly
// ReuseDistances.
func SampledReuseDistances(blocks []uint64, f cache.SampleFilter) []int64 {
	dists := ReuseDistances(SampleRefs(blocks, f))
	if f.Enabled() {
		scale := int64(f.Stride())
		for i, d := range dists {
			if d != InfiniteDistance {
				dists[i] = d * scale
			}
		}
	}
	return dists
}

// SampledMissRatioCurve estimates the fully-associative LRU miss-ratio
// curve from the sampled constituencies (cf. MissRatioCurve): an access
// hits a capacity-C cache iff its estimated stack distance is below C.
func SampledMissRatioCurve(blocks []uint64, capacities []int, f cache.SampleFilter) []float64 {
	if !f.Enabled() {
		return MissRatioCurve(blocks, capacities)
	}
	return missRatioFromDists(SampledReuseDistances(blocks, f), capacities)
}

// SampledMarkovChain estimates the Fig 1b reuse-distance Markov chain
// from the sampled constituencies, bucketing the scaled distances.
func SampledMarkovChain(blocks []uint64, edges []int64, f cache.SampleFilter) [][]float64 {
	if !f.Enabled() {
		return MarkovChain(blocks, edges)
	}
	refs := SampleRefs(blocks, f)
	dists := ReuseDistances(refs)
	scale := int64(f.Stride())
	for i, d := range dists {
		if d != InfiniteDistance {
			dists[i] = d * scale
		}
	}
	return markovFromDists(refs, dists, edges)
}
