package analysis

import (
	"acic/internal/cache"
)

// NextUseBuilder computes the successor array of a block-access sequence
// incrementally, one chunk at a time, producing exactly the array
// NextUseArray builds from the whole sequence. The batch form needs the
// full sequence for its backward pass; the builder instead patches
// forward: a running last-seen table carries the most recent access index
// of every block across chunk boundaries, and when block b is accessed
// again at j, the earlier slot out[last[b]] — whichever chunk it landed
// in — is patched to j. Slots never patched are exactly the "no later
// access" slots and finish as cache.NeverUsed (DESIGN.md §12 gives the
// equivalence argument).
type NextUseBuilder struct {
	out  []int64
	last map[uint64]int64
}

// NewNextUseBuilder returns a builder; capHint sizes the array upfront
// when the final sequence length is known (0 is fine).
func NewNextUseBuilder(capHint int) *NextUseBuilder {
	return &NextUseBuilder{
		out:  make([]int64, 0, capHint),
		last: make(map[uint64]int64, 1024),
	}
}

// Append feeds the next chunk of the block-access sequence.
func (b *NextUseBuilder) Append(blocks []uint64) {
	for _, blk := range blocks {
		i := int64(len(b.out))
		if j, ok := b.last[blk]; ok {
			b.out[j] = i
		}
		b.last[blk] = i
		b.out = append(b.out, cache.NeverUsed)
	}
}

// Len returns the number of accesses appended so far.
func (b *NextUseBuilder) Len() int { return len(b.out) }

// Finish returns the completed successor array. The builder must not be
// appended to afterwards.
func (b *NextUseBuilder) Finish() []int64 {
	b.last = nil
	return b.out
}
