// Package analysis provides the trace-characterization machinery behind the
// paper's motivation and oracle experiments: LRU stack (reuse) distances at
// instruction-block granularity (Fig 1a), Markov chains over reuse-distance
// ranges (Fig 1b), burst statistics, and the next-use oracle that powers
// Belady's OPT replacement and the OPT-bypass scheme.
package analysis

import (
	"acic/internal/cache"
	"acic/internal/trace"
)

// InstBlockRefs returns one block reference per dynamic instruction. This
// is the granularity of Fig 1a/1b: consecutive instructions in the same
// block are distance-0 re-references (the "spatial locality" bucket that
// dominates with ~85% of accesses), while the cache simulators operate on
// the collapsed sequence (trace.Trace.BlockAccesses).
func InstBlockRefs(tr *trace.Trace) []uint64 {
	out := make([]uint64, len(tr.Insts))
	for i := range tr.Insts {
		out[i] = tr.Insts[i].Block()
	}
	return out
}

// InfiniteDistance marks a first-ever access to a block (no previous use).
const InfiniteDistance = int64(1) << 62

// ReuseDistances computes, for each access in the block sequence, the LRU
// stack distance to the previous access of the same block: the number of
// unique blocks referenced between the two accesses (0 means the block was
// re-accessed with nothing else in between — pure spatial/streaming reuse).
// First accesses get InfiniteDistance.
//
// The implementation is the classic Fenwick-tree-over-positions algorithm
// and runs in O(n log n).
func ReuseDistances(blocks []uint64) []int64 {
	n := len(blocks)
	out := make([]int64, n)
	bit := newFenwick(n + 1)
	last := make(map[uint64]int, 1024)
	for i, b := range blocks {
		if j, ok := last[b]; ok {
			// Unique blocks between j and i = number of marked positions
			// in (j, i): each marked position is the latest access of a
			// distinct block.
			out[i] = int64(bit.rangeSum(j+1, i-1))
			bit.add(j+1, -1) // block b's old position is no longer latest
		} else {
			out[i] = InfiniteDistance
		}
		bit.add(i+1, 1)
		last[b] = i
	}
	return out
}

// fenwick is a 1-indexed binary indexed tree over positions.
type fenwick struct{ tree []int }

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum sums positions [lo, hi] (0-indexed inclusive) of marked counts.
func (f *fenwick) rangeSum(lo, hi int) int {
	if hi < lo {
		return 0
	}
	return f.prefix(hi+1) - f.prefix(lo)
}

// Fig1aEdges are the reuse-distance bucket upper bounds used by Figure 1a:
// 0, 1-16, 16-512, 512-1024, 1024-10000, and >10000 (overflow; the paper
// folds first accesses out of the distribution, as do we).
var Fig1aEdges = []int64{0, 16, 512, 1024, 10000}

// BucketIndex returns the Fig 1a bucket for a reuse distance.
func BucketIndex(d int64, edges []int64) int {
	for i, e := range edges {
		if d <= e {
			return i
		}
	}
	return len(edges)
}

// Distribution buckets reuse distances into the given edges (plus overflow)
// and returns per-bucket fractions over all finite-distance accesses.
func Distribution(dists []int64, edges []int64) []float64 {
	counts := make([]uint64, len(edges)+1)
	var total uint64
	for _, d := range dists {
		if d == InfiniteDistance {
			continue
		}
		counts[BucketIndex(d, edges)]++
		total++
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// MarkovChain counts transitions between consecutive reuse-distance buckets
// of the same block (Fig 1b). Row i gives the conditional distribution of
// the next reuse-distance bucket, given the current access's bucket is i.
func MarkovChain(blocks []uint64, edges []int64) [][]float64 {
	return markovFromDists(blocks, ReuseDistances(blocks), edges)
}

// markovFromDists is MarkovChain over precomputed (possibly estimated)
// distances aligned with blocks.
func markovFromDists(blocks []uint64, dists []int64, edges []int64) [][]float64 {
	n := len(edges) + 1
	counts := make([][]uint64, n)
	for i := range counts {
		counts[i] = make([]uint64, n)
	}
	prevBucket := make(map[uint64]int)
	for i, b := range blocks {
		if dists[i] == InfiniteDistance {
			continue
		}
		cur := BucketIndex(dists[i], edges)
		if prev, ok := prevBucket[b]; ok {
			counts[prev][cur]++
		}
		prevBucket[b] = cur
	}
	out := make([][]float64, n)
	for i := range counts {
		out[i] = make([]float64, n)
		var row uint64
		for _, c := range counts[i] {
			row += c
		}
		if row == 0 {
			continue
		}
		for j, c := range counts[i] {
			out[i][j] = float64(c) / float64(row)
		}
	}
	return out
}

// BurstStats summarizes the burstiness of accesses to instruction blocks:
// a burst is a maximal run of accesses to the same block whose successive
// reuse distances stay within threshold (the i-Filter's reach).
type BurstStats struct {
	Bursts        uint64
	AccessesTotal uint64
	MeanLength    float64 // accesses per burst
	FracInBurst   float64 // fraction of accesses that are intra-burst re-uses
}

// Bursts computes burst statistics at the given intra-burst distance
// threshold (16, the i-Filter size, in the paper's framing).
func Bursts(blocks []uint64, threshold int64) BurstStats {
	dists := ReuseDistances(blocks)
	var st BurstStats
	burstLen := make(map[uint64]uint64)
	var lengths []uint64
	for i, b := range blocks {
		st.AccessesTotal++
		if dists[i] != InfiniteDistance && dists[i] <= threshold {
			burstLen[b]++
			st.FracInBurst++
		} else {
			if l, ok := burstLen[b]; ok && l > 0 {
				lengths = append(lengths, l+1)
			}
			burstLen[b] = 0
			st.Bursts++
		}
	}
	for _, l := range burstLen {
		if l > 0 {
			lengths = append(lengths, l+1)
		}
	}
	if st.AccessesTotal > 0 {
		st.FracInBurst /= float64(st.AccessesTotal)
	}
	var sum uint64
	for _, l := range lengths {
		sum += l
	}
	if len(lengths) > 0 {
		st.MeanLength = float64(sum) / float64(len(lengths))
	}
	return st
}

// NextUseArray precomputes the successor array of a block-access sequence:
// out[i] is the index of the next access to blocks[i] strictly after i, or
// cache.NeverUsed when the block is never accessed again. One backward O(n)
// pass replaces the per-query map lookup + binary search of NextUseOracle
// for the dominant query shape — "when is the block I am touching right now
// used next" — which the cache layer then carries as per-line metadata, so
// OPT replacement and OPT bypass run without any oracle lookups on the hot
// path. NextUseOracle remains the reference implementation (and serves the
// arbitrary (block, after) queries of the offline figure analyses).
func NextUseArray(blocks []uint64) []int64 {
	out := make([]int64, len(blocks))
	last := make(map[uint64]int64, 1024)
	for i := len(blocks) - 1; i >= 0; i-- {
		if j, ok := last[blocks[i]]; ok {
			out[i] = j
		} else {
			out[i] = cache.NeverUsed
		}
		last[blocks[i]] = int64(i)
	}
	return out
}

// NextUseOracle answers "when is block b next accessed strictly after
// time t" over a fixed block-access sequence; it powers OPT replacement
// (Belady) and OPT bypass.
type NextUseOracle struct {
	positions map[uint64][]int32
}

// NewNextUseOracle indexes the block-access sequence. Sequences longer than
// 2^31 accesses are not supported (far beyond any simulated trace here).
func NewNextUseOracle(blocks []uint64) *NextUseOracle {
	pos := make(map[uint64][]int32, 1024)
	for i, b := range blocks {
		pos[b] = append(pos[b], int32(i))
	}
	return &NextUseOracle{positions: pos}
}

// NextUse returns the access index of the first access to block strictly
// after index `after`, or cache.NeverUsed if none exists. The binary search
// is hand-rolled: sort.Search costs a closure call per probe, and this
// query sits on the prefetch-fill path of the oracle schemes.
func (o *NextUseOracle) NextUse(block uint64, after int64) int64 {
	ps := o.positions[block]
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int64(ps[mid]) > after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(ps) {
		return cache.NeverUsed
	}
	return int64(ps[lo])
}

// Func adapts the oracle to the cache.AccessContext.NextUse signature.
func (o *NextUseOracle) Func() func(uint64, int64) int64 { return o.NextUse }
