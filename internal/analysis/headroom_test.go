package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMissRatioCurveExact(t *testing.T) {
	// Cycle over 4 blocks: distances are 3 after the first round, so a
	// capacity-4 cache hits everything after compulsories and capacity-2
	// misses everything.
	var blocks []uint64
	for r := 0; r < 100; r++ {
		for b := uint64(0); b < 4; b++ {
			blocks = append(blocks, b)
		}
	}
	curve := MissRatioCurve(blocks, []int{2, 4, 8})
	if curve[0] != 1.0 {
		t.Errorf("capacity 2 miss ratio = %v, want 1.0 (LRU thrash)", curve[0])
	}
	// Capacity 4: only 4 compulsory misses over 400 accesses.
	if want := 4.0 / 400.0; curve[1] != want {
		t.Errorf("capacity 4 miss ratio = %v, want %v", curve[1], want)
	}
	if curve[2] != curve[1] {
		t.Error("extra capacity beyond the working set must not help")
	}
}

func TestMissRatioCurveMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := make([]uint64, 3000)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(64))
		}
		curve := MissRatioCurve(blocks, []int{1, 2, 4, 8, 16, 32, 64, 128})
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-12 {
				return false // LRU stack inclusion: bigger cache never worse
			}
		}
		return curve[0] <= 1.0 && curve[len(curve)-1] >= 0.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMissRatioCurveEmpty(t *testing.T) {
	curve := MissRatioCurve(nil, []int{4})
	if curve[0] != 0 {
		t.Error("empty sequence should yield zero miss ratio")
	}
}

func TestWorkingSet(t *testing.T) {
	// 90 accesses to block 1, 10 spread over blocks 2..11.
	var blocks []uint64
	for i := 0; i < 90; i++ {
		blocks = append(blocks, 1)
	}
	for b := uint64(2); b < 12; b++ {
		blocks = append(blocks, b)
	}
	if ws := WorkingSet(blocks, 0.9); ws != 1 {
		t.Errorf("90%% working set = %d, want 1", ws)
	}
	if ws := WorkingSet(blocks, 1.0); ws != 11 {
		t.Errorf("100%% working set = %d, want 11", ws)
	}
}
