package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acic/internal/cache"
)

// bruteReuse is the O(n^2) reference: unique blocks between consecutive
// accesses to the same block.
func bruteReuse(blocks []uint64) []int64 {
	out := make([]int64, len(blocks))
	for i, b := range blocks {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if blocks[j] == b {
				prev = j
				break
			}
		}
		if prev < 0 {
			out[i] = InfiniteDistance
			continue
		}
		uniq := map[uint64]struct{}{}
		for j := prev + 1; j < i; j++ {
			uniq[blocks[j]] = struct{}{}
		}
		out[i] = int64(len(uniq))
	}
	return out
}

func TestReuseDistancesSimple(t *testing.T) {
	// a b c a : distance of second 'a' is 2 (b, c in between).
	got := ReuseDistances([]uint64{1, 2, 3, 1})
	want := []int64{InfiniteDistance, InfiniteDistance, InfiniteDistance, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// a a : distance 0 (pure spatial/streaming reuse).
	got = ReuseDistances([]uint64{5, 5})
	if got[1] != 0 {
		t.Fatalf("consecutive reuse distance = %d, want 0", got[1])
	}
	// a b a b a: distances 1,1,1.
	got = ReuseDistances([]uint64{1, 2, 1, 2, 1})
	for _, i := range []int{2, 3, 4} {
		if got[i] != 1 {
			t.Fatalf("alternating distances = %v", got)
		}
	}
}

func TestReuseDistancesMatchesBruteForce(t *testing.T) {
	f := func(seed int64, n uint8, spread uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := make([]uint64, int(n)+1)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(int(spread%32) + 1))
		}
		got := ReuseDistances(blocks)
		want := bruteReuse(blocks)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDistribution(t *testing.T) {
	dists := []int64{0, 0, 5, 100, 600, 5000, 20000, InfiniteDistance}
	fr := Distribution(dists, Fig1aEdges)
	// 7 finite samples; InfiniteDistance excluded.
	want := []float64{2.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7}
	for i := range want {
		if diff := fr[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d: got %v want %v", i, fr[i], want[i])
		}
	}
	empty := Distribution([]int64{InfiniteDistance}, Fig1aEdges)
	for _, f := range empty {
		if f != 0 {
			t.Fatal("all-infinite input should give zero distribution")
		}
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    int64
		want int
	}{{0, 0}, {1, 1}, {16, 1}, {17, 2}, {512, 2}, {513, 3}, {1024, 3}, {1025, 4}, {10000, 4}, {10001, 5}}
	for _, c := range cases {
		if got := BucketIndex(c.d, Fig1aEdges); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestMarkovChainRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	blocks := make([]uint64, 5000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(40))
	}
	chain := MarkovChain(blocks, Fig1aEdges)
	for i, row := range chain {
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatalf("row %d has out-of-range probability %v", i, p)
			}
			sum += p
		}
		if sum != 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestBursts(t *testing.T) {
	// Block 1 accessed in a burst (distances 0), then block 2 etc.
	blocks := []uint64{1, 1, 1, 2, 2, 1, 1}
	st := Bursts(blocks, 16)
	if st.AccessesTotal != 7 {
		t.Fatalf("accesses = %d", st.AccessesTotal)
	}
	if st.FracInBurst <= 0 || st.FracInBurst >= 1 {
		t.Fatalf("frac in burst = %v", st.FracInBurst)
	}
	if st.Bursts == 0 || st.MeanLength <= 1 {
		t.Fatalf("bursts=%d meanlen=%v", st.Bursts, st.MeanLength)
	}
}

func TestNextUseOracle(t *testing.T) {
	blocks := []uint64{10, 20, 10, 30, 20, 10}
	o := NewNextUseOracle(blocks)
	cases := []struct {
		block uint64
		after int64
		want  int64
	}{
		{10, -1, 0}, {10, 0, 2}, {10, 2, 5}, {10, 5, cache.NeverUsed},
		{20, 0, 1}, {20, 1, 4}, {20, 4, cache.NeverUsed},
		{30, 0, 3}, {30, 3, cache.NeverUsed},
		{99, 0, cache.NeverUsed},
	}
	for _, c := range cases {
		if got := o.NextUse(c.block, c.after); got != c.want {
			t.Errorf("NextUse(%d, %d) = %d, want %d", c.block, c.after, got, c.want)
		}
	}
}

func TestNextUseOracleProperty(t *testing.T) {
	// Property: NextUse returns the first index > after holding the block.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := make([]uint64, int(n)+1)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(8))
		}
		o := NewNextUseOracle(blocks)
		for trial := 0; trial < 20; trial++ {
			b := uint64(rng.Intn(8))
			after := int64(rng.Intn(len(blocks)+2)) - 1
			got := o.NextUse(b, after)
			want := cache.NeverUsed
			for i := int(after) + 1; i < len(blocks); i++ {
				if i >= 0 && blocks[i] == b {
					want = int64(i)
					break
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
