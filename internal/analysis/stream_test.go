package analysis

import (
	"math/rand"
	"testing"

	"acic/internal/cache"
)

func randomBlocks(rng *rand.Rand, n, distinct int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(rng.Intn(distinct)) * 7
	}
	return out
}

func TestNextUseBuilderMatchesArray(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 2, 100, 5003} {
		blocks := randomBlocks(rng, n, 1+n/10)
		want := NextUseArray(blocks)
		for _, window := range []int{1, 3, 64, n, n + 17} {
			if window == 0 {
				window = 1
			}
			b := NewNextUseBuilder(n)
			for lo := 0; lo < len(blocks); lo += window {
				b.Append(blocks[lo:min(lo+window, len(blocks))])
			}
			got := b.Finish()
			if len(got) != len(want) {
				t.Fatalf("n=%d window=%d: len %d want %d", n, window, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d window=%d: out[%d] = %d, want %d", n, window, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNextUseBuilderChunkBoundaryCarry pins the carry across a window
// edge explicitly: the successor of an access in one chunk lands in a
// later chunk, and must patch the already-appended slot.
func TestNextUseBuilderChunkBoundaryCarry(t *testing.T) {
	b := NewNextUseBuilder(0)
	b.Append([]uint64{10, 20, 10}) // chunk 1: 10@0, 20@1, 10@2
	b.Append([]uint64{20, 30})     // chunk 2: 20@3, 30@4
	b.Append([]uint64{10})         // chunk 3: 10@5
	got := b.Finish()
	want := []int64{2, 3, 5, cache.NeverUsed, cache.NeverUsed, cache.NeverUsed}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}
