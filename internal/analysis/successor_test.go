package analysis

import (
	"math/rand"
	"testing"

	"acic/internal/cache"
)

// TestNextUseArrayMatchesOracle pins the successor array to the map-based
// reference oracle: for every access i, next[i] must equal the oracle's
// answer for (blocks[i], after=i).
func TestNextUseArrayMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		blocks := make([]uint64, n)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(1 + trial*37))
		}
		oracle := NewNextUseOracle(blocks)
		next := NextUseArray(blocks)
		if len(next) != n {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(next), n)
		}
		for i, b := range blocks {
			if want := oracle.NextUse(b, int64(i)); next[i] != want {
				t.Fatalf("trial %d: next[%d] = %d, oracle = %d (block %d)", trial, i, next[i], want, b)
			}
		}
	}
}

// TestNextUseArrayBasics checks the hand-verifiable shape.
func TestNextUseArrayBasics(t *testing.T) {
	next := NextUseArray([]uint64{7, 8, 7, 9, 8, 7})
	want := []int64{2, 4, 5, cache.NeverUsed, cache.NeverUsed, cache.NeverUsed}
	for i := range want {
		if next[i] != want[i] {
			t.Errorf("next[%d] = %d, want %d", i, next[i], want[i])
		}
	}
	if len(NextUseArray(nil)) != 0 {
		t.Error("empty sequence should give empty successor array")
	}
}
