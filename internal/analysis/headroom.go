package analysis

import "sort"

// Headroom analysis: miss-ratio curves over cache size, computed exactly
// from the reuse-distance profile. For a fully-associative LRU cache of
// capacity C blocks, an access hits iff its stack distance is < C, so the
// complete miss-ratio curve falls out of one ReuseDistances pass — the
// standard Mattson stack algorithm. The paper's Section IV-F question
// ("would the real estate be better spent on more capacity?") is this
// curve's slope at 512 blocks; internal/experiments exposes it as the
// headroom ablation bench.

// MissRatioCurve returns the fully-associative LRU miss ratio of the block
// sequence at each candidate capacity (in blocks). Capacities are treated
// as given; pass them in ascending order for a readable curve.
func MissRatioCurve(blocks []uint64, capacities []int) []float64 {
	return missRatioFromDists(ReuseDistances(blocks), capacities)
}

// missRatioFromDists is MissRatioCurve over precomputed (possibly
// estimated) stack distances.
func missRatioFromDists(dists []int64, capacities []int) []float64 {
	// Histogram the finite distances once, then answer every capacity by
	// prefix sum.
	sorted := make([]int64, 0, len(dists))
	infinite := 0
	for _, d := range dists {
		if d == InfiniteDistance {
			infinite++
			continue
		}
		sorted = append(sorted, d)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]float64, len(capacities))
	n := float64(len(dists))
	if n == 0 {
		return out
	}
	for i, c := range capacities {
		// Hits = accesses with stack distance < c.
		hits := sort.Search(len(sorted), func(k int) bool { return sorted[k] >= int64(c) })
		out[i] = (n - float64(hits)) / n
	}
	return out
}

// WorkingSet reports the number of distinct blocks needed to cover the
// given fraction of accesses (e.g. 0.9 -> the 90% working set), a compact
// footprint descriptor for workload characterization.
func WorkingSet(blocks []uint64, fraction float64) int {
	counts := make(map[uint64]int64, 1024)
	for _, b := range blocks {
		counts[b]++
	}
	freqs := make([]int64, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	target := int64(fraction * float64(len(blocks)))
	var cum int64
	for i, f := range freqs {
		cum += f
		if cum >= target {
			return i + 1
		}
	}
	return len(freqs)
}
