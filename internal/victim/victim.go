// Package victim implements the victim-cache alternatives of Section IV-F:
// a traditional fully-associative victim cache (Jouppi, ISCA'90 — the 3KB
// "VC3K" and 8KB "VC8K" configurations of Table IV), and VVC, the virtual
// victim cache of Khan et al. (PACT'10) that parks victims in predicted-
// dead lines of other i-cache sets.
package victim

// VC is a fully-associative LRU victim cache of block numbers.
type VC struct {
	slots []vcSlot
	clock int64

	Hits   uint64
	Probes uint64
}

type vcSlot struct {
	block uint64
	stamp int64
	valid bool
}

// NewVC creates a victim cache holding n blocks. The paper's VC3K holds 48
// blocks (3KB of 64B lines); VC8K holds 128.
func NewVC(n int) *VC {
	if n <= 0 {
		panic("victim: size must be positive")
	}
	return &VC{slots: make([]vcSlot, n)}
}

// Size returns the capacity in blocks.
func (v *VC) Size() int { return len(v.slots) }

// Probe looks up block; on a hit the entry is removed (it will be swapped
// into the main cache by the caller) and true is returned.
func (v *VC) Probe(block uint64) bool {
	v.Probes++
	for i := range v.slots {
		if v.slots[i].valid && v.slots[i].block == block {
			v.slots[i].valid = false
			v.Hits++
			return true
		}
	}
	return false
}

// Insert places an evicted block into the victim cache, displacing LRU.
func (v *VC) Insert(block uint64) {
	v.clock++
	lru, lruStamp := -1, int64(0)
	for i := range v.slots {
		if !v.slots[i].valid {
			v.slots[i] = vcSlot{block: block, stamp: v.clock, valid: true}
			return
		}
		if lru == -1 || v.slots[i].stamp < lruStamp {
			lru, lruStamp = i, v.slots[i].stamp
		}
	}
	v.slots[lru] = vcSlot{block: block, stamp: v.clock, valid: true}
}

// StorageBits accounts tag+data storage (58-bit tag + valid + LRU bits per
// entry plus the 64-byte line), matching Table IV's 3KB/8KB accounting
// which charges the line data.
func (v *VC) StorageBits() int {
	lruBits := 0
	for 1<<lruBits < len(v.slots) {
		lruBits++
	}
	return len(v.slots) * (58 + 1 + lruBits + 64*8)
}
