package victim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVCProbeRemoves(t *testing.T) {
	v := NewVC(2)
	v.Insert(1)
	if !v.Probe(1) {
		t.Error("inserted block should probe-hit")
	}
	if v.Probe(1) {
		t.Error("probe removes the entry; second probe must miss")
	}
	if v.Hits != 1 || v.Probes != 2 {
		t.Errorf("hits=%d probes=%d", v.Hits, v.Probes)
	}
}

func TestVCLRUEviction(t *testing.T) {
	v := NewVC(2)
	v.Insert(1)
	v.Insert(2)
	v.Insert(3) // evicts 1
	if v.Probe(1) {
		t.Error("block 1 should have been LRU-evicted")
	}
	if !v.Probe(2) || !v.Probe(3) {
		t.Error("blocks 2 and 3 should be present")
	}
}

func TestVCStorage(t *testing.T) {
	// VC3K: 48 blocks of 64B plus metadata => a bit over 3KB.
	bits := NewVC(48).StorageBits()
	kb := float64(bits) / 8192
	if kb < 3.0 || kb > 3.5 {
		t.Errorf("VC3K storage = %.3f KB", kb)
	}
}

func TestVCRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewVC(0)
}

func TestVVCBasicHitMiss(t *testing.T) {
	v := NewVVC(VVCConfig{Sets: 4, Ways: 2, TableBits: 8})
	if v.Fetch(0) {
		t.Error("cold fetch must miss")
	}
	if !v.Fetch(0) {
		t.Error("second fetch must hit")
	}
	if v.Hits != 1 || v.Misses != 1 {
		t.Errorf("hits=%d misses=%d", v.Hits, v.Misses)
	}
}

func TestVVCParksVictimsInPartnerSet(t *testing.T) {
	v := NewVVC(VVCConfig{Sets: 4, Ways: 2, TableBits: 8})
	// Fill set 0 (blocks 0,4,8 map to set 0 with 4 sets) and overflow it;
	// the eviction should be parked in partner set 1.
	v.Fetch(0)
	v.Fetch(4)
	v.Fetch(8) // evicts one of {0,4}; parked in set 1
	if v.Parked == 0 {
		t.Error("eviction should have been parked")
	}
	// The parked block must still be findable.
	found := v.Contains(0) || v.Contains(4)
	if !found {
		t.Error("a parked victim should remain resident somewhere")
	}
}

func TestVVCPartnerHitRecovers(t *testing.T) {
	v := NewVVC(VVCConfig{Sets: 4, Ways: 2, TableBits: 8})
	v.Fetch(0)
	v.Fetch(4)
	v.Fetch(8) // park a victim
	// Re-fetch everything; at least one fetch should be a partner hit.
	v.Fetch(0)
	v.Fetch(4)
	v.Fetch(8)
	if v.PartnerHits == 0 {
		t.Error("expected at least one partner-set hit")
	}
}

func TestVVCFillIdempotent(t *testing.T) {
	v := NewVVC(VVCConfig{Sets: 4, Ways: 2, TableBits: 8})
	v.Fill(3)
	if !v.Contains(3) {
		t.Error("fill should install the block")
	}
	misses := v.Misses
	v.Fill(3) // no-op
	if v.Misses != misses {
		t.Error("Fill must not count demand misses")
	}
}

func TestVVCStorageBand(t *testing.T) {
	// Table IV charges VVC 9.06KB for the predictor state.
	bits := NewVVC(DefaultVVCConfig()).StorageBits()
	kb := float64(bits) / 8192
	if kb < 8.5 || kb > 9.5 {
		t.Errorf("VVC storage = %.3f KB, want ~9.06", kb)
	}
}

// Property: VVC never loses the block just fetched, and Contains agrees
// with Fetch hits.
func TestVVCInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVVC(VVCConfig{Sets: 8, Ways: 2, TableBits: 8})
		for i := 0; i < 500; i++ {
			b := uint64(rng.Intn(64))
			hit := v.Fetch(b)
			if hit != true && v.Contains(b) == false {
				return false // fetch must install the block
			}
			if !v.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
