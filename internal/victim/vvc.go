package victim

// VVC — the Virtual Victim Cache (Khan, Jiménez, Burger, Falsafi; PACT'10,
// [44] in the paper). Instead of a dedicated victim buffer, VVC parks
// blocks evicted from one set in lines of a *partner set* that a dead-block
// predictor believes are dead. On a miss, both the home set and the partner
// set are probed; a partner-set hit moves the block back home.
//
// The dead-block predictor follows the skewed-table design charged in
// Table IV: a 15-bit trace per line and two 2^14-entry tables of 2-bit
// counters (9.06KB total). The paper finds VVC *hurts* the instruction
// stream — in ~60% of cases the parked victim has a longer reuse distance
// than the "dead" line it displaces — and our reproduction preserves that
// behaviour because the same burstiness misleads the trace-based predictor.
//
// VVC manages its own line array (lines can hold foreign blocks), so it is
// a self-contained i-cache rather than a wrapper around cache.Cache.
type VVC struct {
	sets, ways int
	mask       uint64
	lines      []vvcLine
	clock      int64

	tables  [2][]uint8 // dead-block predictor tables
	tblMask uint32

	Hits        uint64
	PartnerHits uint64
	Misses      uint64
	Parked      uint64
}

type vvcLine struct {
	block   uint64
	trace   uint16 // 15-bit reference trace
	stamp   int64
	valid   bool
	foreign bool // parked victim from the partner set
}

// VVCConfig sizes VVC; defaults follow Table IV on the 32KB 8-way i-cache.
type VVCConfig struct {
	Sets      int
	Ways      int
	TableBits int // log2 entries per predictor table (14)
}

// DefaultVVCConfig returns the Table IV configuration for the baseline
// 64-set, 8-way i-cache.
func DefaultVVCConfig() VVCConfig { return VVCConfig{Sets: 64, Ways: 8, TableBits: 14} }

// NewVVC creates a VVC i-cache.
func NewVVC(cfg VVCConfig) *VVC {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 || cfg.Ways <= 0 {
		panic("victim: bad VVC geometry")
	}
	v := &VVC{
		sets:    cfg.Sets,
		ways:    cfg.Ways,
		mask:    uint64(cfg.Sets - 1),
		lines:   make([]vvcLine, cfg.Sets*cfg.Ways),
		tblMask: uint32(1)<<cfg.TableBits - 1,
	}
	v.tables[0] = make([]uint8, 1<<cfg.TableBits)
	v.tables[1] = make([]uint8, 1<<cfg.TableBits)
	return v
}

func (v *VVC) set(block uint64) int       { return int(block & v.mask) }
func (v *VVC) partner(set int) int        { return set ^ 1 }
func (v *VVC) line(set, way int) *vvcLine { return &v.lines[set*v.ways+way] }

func traceOf(block uint64, old uint16) uint16 {
	return uint16((uint64(old)<<3)^(block*0x9E3779B97F4A7C15)>>49) & 0x7FFF
}

func (v *VVC) idx(trace uint16, t int) uint32 {
	h := uint64(trace) * [2]uint64{0xFF51AFD7ED558CCD, 0xC4CEB9FE1A85EC53}[t]
	return uint32(h>>32) & v.tblMask
}

func (v *VVC) predictDead(trace uint16) bool {
	votes := 0
	for t := 0; t < 2; t++ {
		if v.tables[t][v.idx(trace, t)] >= 2 {
			votes++
		}
	}
	return votes == 2
}

func (v *VVC) train(trace uint16, dead bool) {
	for t := 0; t < 2; t++ {
		c := &v.tables[t][v.idx(trace, t)]
		if dead {
			if *c < 3 {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
	}
}

// Fetch performs a demand access: probe the home set, then the partner set
// for a parked copy; fill on miss. Returns whether the access hit.
func (v *VVC) Fetch(block uint64) bool {
	home := v.set(block)
	v.clock++
	// Home-set probe.
	for w := 0; w < v.ways; w++ {
		ln := v.line(home, w)
		if ln.valid && ln.block == block {
			v.train(ln.trace, false) // it was referenced: not dead
			ln.trace = traceOf(block, ln.trace)
			ln.stamp = v.clock
			ln.foreign = false
			v.Hits++
			return true
		}
	}
	// Partner-set probe for a parked victim.
	part := v.partner(home)
	for w := 0; w < v.ways; w++ {
		ln := v.line(part, w)
		if ln.valid && ln.foreign && ln.block == block {
			// Move it back home, parking the displaced home victim.
			v.train(ln.trace, false)
			tr := traceOf(block, ln.trace)
			ln.valid = false
			v.fill(home, block, tr)
			v.Hits++
			v.PartnerHits++
			return true
		}
	}
	v.Misses++
	v.fill(home, block, traceOf(block, 0))
	return false
}

// Fill installs block through the normal fill path without touching the
// demand hit/miss counters (prefetch fills).
func (v *VVC) Fill(block uint64) {
	if v.Contains(block) {
		return
	}
	v.clock++
	v.fill(v.set(block), block, traceOf(block, 0))
}

// Contains reports residency in home or partner set (no state updates).
func (v *VVC) Contains(block uint64) bool {
	home := v.set(block)
	for w := 0; w < v.ways; w++ {
		if ln := v.line(home, w); ln.valid && ln.block == block {
			return true
		}
	}
	part := v.partner(home)
	for w := 0; w < v.ways; w++ {
		if ln := v.line(part, w); ln.valid && ln.foreign && ln.block == block {
			return true
		}
	}
	return false
}

// fill inserts block into set, evicting LRU; the eviction may be parked in
// a predicted-dead partner-set line.
func (v *VVC) fill(set int, block uint64, trace uint16) {
	way := v.victimWay(set)
	old := *v.line(set, way)
	*v.line(set, way) = vvcLine{block: block, trace: trace, stamp: v.clock, valid: true}
	if old.valid && !old.foreign {
		v.train(old.trace, true) // evicted without re-reference since last touch
		v.park(v.partner(set), old)
	}
}

// victimWay selects LRU, preferring invalid then foreign (parked) lines.
func (v *VVC) victimWay(set int) int {
	best, bestScore := 0, int64(1)<<62
	for w := 0; w < v.ways; w++ {
		ln := v.line(set, w)
		if !ln.valid {
			return w
		}
		score := ln.stamp
		if ln.foreign {
			score -= 1 << 40 // prefer evicting parked foreigners
		}
		if score < bestScore {
			best, bestScore = w, score
		}
	}
	return best
}

// park stores an evicted block into a predicted-dead line of the partner
// set, if one exists.
func (v *VVC) park(set int, victim vvcLine) {
	for w := 0; w < v.ways; w++ {
		ln := v.line(set, w)
		if !ln.valid || (v.predictDead(ln.trace) && !ln.foreign) || ln.foreign {
			*ln = vvcLine{block: victim.block, trace: victim.trace, stamp: v.clock, valid: true, foreign: true}
			v.Parked++
			return
		}
	}
}

// StorageBits returns the predictor overhead charged by Table IV (the line
// array itself is the baseline i-cache): 15-bit trace per line plus two
// 2^14-entry tables of 2-bit counters.
func (v *VVC) StorageBits() int {
	return v.sets*v.ways*15 + 2*len(v.tables[0])*2
}
