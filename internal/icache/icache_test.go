package icache

import (
	"testing"

	"acic/internal/bypass"
	"acic/internal/cache"
	"acic/internal/core"
	"acic/internal/policy"
	"acic/internal/victim"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing policy must be rejected")
	}
	cc := core.DefaultConfig()
	if _, err := New(Config{Policy: policy.NewLRU(), ACIC: &cc, Bypass: bypass.AlwaysInsert{}}); err == nil {
		t.Error("ACIC and Bypass together must be rejected")
	}
}

func TestPlainCacheFetchMissFillsL1(t *testing.T) {
	c := MustNew(Config{Sets: 4, Ways: 2, Policy: policy.NewLRU()})
	if c.Fetch(10, 0, 0) {
		t.Error("cold fetch must miss")
	}
	if !c.Fetch(10, 1, 1) {
		t.Error("warm fetch must hit")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 || st.L1Hits != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.MissRate() != 0.5 {
		t.Errorf("miss rate %v", st.MissRate())
	}
}

func TestFilterFrontEnd(t *testing.T) {
	c := MustNew(Config{Sets: 4, Ways: 2, Policy: policy.NewLRU(), FilterSlots: 2})
	c.Fetch(10, 0, 0) // miss -> enters filter, NOT L1
	if c.L1().Contains(10) {
		t.Error("missed block must enter the i-Filter, not L1")
	}
	if !c.Fetch(10, 1, 1) || c.Stats().FilterHits != 1 {
		t.Error("second fetch should hit the filter")
	}
	// Overflow the 2-slot filter: the LRU filter victim moves into L1
	// (always-insert without an admission policy).
	c.Fetch(20, 2, 2)
	c.Fetch(30, 3, 3) // evicts 10 from filter -> L1
	if !c.L1().Contains(10) {
		t.Error("filter victim should be inserted into L1")
	}
}

func TestBypassOnDirectFillPath(t *testing.T) {
	// A bypass policy that rejects everything: L1 stays empty.
	c := MustNew(Config{Sets: 4, Ways: 2, Policy: policy.NewLRU(), Bypass: rejectAll{}})
	for b := uint64(0); b < 16; b++ {
		c.Fetch(b, int64(b), int64(b))
	}
	// First fills into empty ways are always allowed (contender invalid);
	// after the set fills, everything is bypassed.
	if got := c.L1().Occupancy(); got != 8 {
		t.Errorf("occupancy = %d, want 8 (only cold fills)", got)
	}
}

type rejectAll struct{}

func (rejectAll) Name() string { return "reject-all" }
func (rejectAll) ShouldInsert(_, _ uint64, contenderValid bool, _ *cache.AccessContext) bool {
	return !contenderValid
}
func (rejectAll) OnFetch(uint64)   {}
func (rejectAll) StorageBits() int { return 0 }

func TestVictimCacheSwap(t *testing.T) {
	c := MustNew(Config{Sets: 1, Ways: 1, Policy: policy.NewLRU(), VictimBlocks: 4})
	c.Fetch(1, 0, 0) // miss, fill
	c.Fetch(2, 1, 1) // miss, evicts 1 -> VC
	if !c.Fetch(1, 2, 2) {
		t.Error("block 1 should hit in the victim cache")
	}
	if c.Stats().VCHits != 1 {
		t.Errorf("VC hits = %d", c.Stats().VCHits)
	}
	if !c.L1().Contains(1) {
		t.Error("VC hit must swap the block back into L1")
	}
}

func TestACICAdmissionGatesInsertion(t *testing.T) {
	cc := core.DefaultConfig()
	cc.FilterSlots = 2
	c := MustNew(Config{Sets: 4, Ways: 2, Policy: policy.NewLRU(), ACIC: &cc})
	if c.ACIC() == nil || c.Filter() == nil {
		t.Fatal("ACIC complex must expose its parts")
	}
	for b := uint64(0); b < 64; b += 4 {
		c.Fetch(b, int64(b), int64(b))
	}
	if c.ACIC().Decisions == 0 {
		t.Error("filter evictions must trigger admission decisions")
	}
	st := c.Stats()
	if st.Accesses == 0 || st.Misses == 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestPrefetchFillGoesThroughFillPath(t *testing.T) {
	c := MustNew(Config{Sets: 4, Ways: 2, Policy: policy.NewLRU(), FilterSlots: 4})
	c.PrefetchFill(40, 0, 0)
	if !c.Filter().Contains(40) {
		t.Error("prefetch fill should land in the i-Filter")
	}
	misses := c.Stats().Misses
	if !c.Fetch(40, 1, 1) {
		t.Error("prefetched block should hit")
	}
	if c.Stats().Misses != misses {
		t.Error("prefetch-hit must not count as a demand miss")
	}
	// Redundant prefetch is a no-op.
	c.PrefetchFill(40, 2, 2)
	if c.Filter().Occupancy() != 1 {
		t.Errorf("redundant prefetch duplicated the block")
	}
}

func TestDeriveNames(t *testing.T) {
	cc := core.DefaultConfig()
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Policy: policy.NewLRU()}, "lru"},
		{Config{Policy: policy.NewLRU(), FilterSlots: 8}, "lru+ifilter"},
		{Config{Policy: policy.NewLRU(), Bypass: bypass.AlwaysInsert{}}, "always-insert"},
		{Config{Policy: policy.NewLRU(), Bypass: bypass.AlwaysInsert{}, FilterSlots: 8}, "always-insert+ifilter"},
		{Config{Policy: policy.NewLRU(), VictimBlocks: 8}, "lru+vc"},
		{Config{Policy: policy.NewLRU(), ACIC: &cc}, "acic-two-level"},
	}
	for _, c := range cases {
		sub := MustNew(c.cfg)
		if sub.Name() != c.want {
			t.Errorf("derived name = %q, want %q", sub.Name(), c.want)
		}
	}
}

func TestVVCAdapter(t *testing.T) {
	a := NewVVC(victim.VVCConfig{Sets: 4, Ways: 2, TableBits: 8})
	if a.Name() != "vvc" {
		t.Error("name")
	}
	if a.Fetch(1, 0, 0) {
		t.Error("cold fetch must miss")
	}
	if !a.Fetch(1, 1, 1) {
		t.Error("warm fetch must hit")
	}
	a.PrefetchFill(9, 2, 2)
	if !a.Contains(9) {
		t.Error("prefetch fill must install")
	}
	st := a.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}
