// Package icache composes the L1 instruction-cache complex evaluated in the
// paper: a set-associative i-cache with a pluggable replacement policy,
// optionally fronted by an i-Filter, an admission controller (ACIC or a
// bypass policy), and/or backed by a victim cache. Every scheme in Figs 10
// and 11 is expressible as a Config of this package; the VVC alternative,
// which restructures the cache itself, satisfies the same Subsystem
// interface from internal/victim.
package icache

import (
	"fmt"

	"acic/internal/bypass"
	"acic/internal/cache"
	"acic/internal/core"
	"acic/internal/flat"
	"acic/internal/victim"
)

// Subsystem is the contract the CPU front end drives: demand fetches and
// completed prefetch fills at instruction-block granularity.
type Subsystem interface {
	// Name identifies the scheme in reports.
	Name() string
	// Fetch processes a demand fetch. accessIdx is the index in the block-
	// access sequence (oracle time); cycle is the current core cycle (used
	// by ACIC's update pipelines). It returns true on a hit in any
	// structure of the complex (i-cache, i-Filter, or victim cache).
	Fetch(block uint64, accessIdx, cycle int64) bool
	// PrefetchFill installs a completed prefetch through the normal fill
	// path. It must be a no-op if the block is already resident.
	PrefetchFill(block uint64, accessIdx, cycle int64)
	// Contains reports residency (for prefetch filtering), with no side
	// effects.
	Contains(block uint64) bool
	// Stats returns cumulative counters.
	Stats() Stats
}

// Stats are the cumulative demand-access counters of a subsystem. Under
// set sampling they cover the sampled constituencies only (Skipped counts
// the bypassed accesses); every rate derived from them is scale-free.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	FilterHits uint64
	L1Hits     uint64
	VCHits     uint64
	Skipped    uint64 // demand accesses bypassed by the set-sampling filter
}

// MissRate returns demand misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Config selects and sizes one i-cache management scheme.
type Config struct {
	// Name overrides the derived scheme name (optional).
	Name string
	// Geometry of the L1 i-cache (default 64 sets x 8 ways = 32KB).
	Sets, Ways int
	// Policy is the replacement policy constructor's product. Required.
	Policy cache.Policy
	// Filter enables an i-Filter of the given size in front of the cache
	// (0 = none). Mutually exclusive with nothing; combines with Bypass or
	// ACIC, which then act on filter evictions.
	FilterSlots int
	// ACIC attaches an admission-controlled datapath. When set, Bypass must
	// be nil and FilterSlots is taken from the ACIC config.
	ACIC *core.Config
	// Bypass decides insertion for incoming blocks (direct fill path when
	// FilterSlots == 0, filter-eviction path otherwise).
	Bypass bypass.Policy
	// VictimBlocks attaches a fully-associative victim cache (0 = none).
	VictimBlocks int
	// NextUse attaches the oracle used by OPT replacement and OPT bypass.
	NextUse func(block uint64, after int64) int64
	// NextAt, when set, is the successor array of the workload's block-
	// access sequence: NextAt[i] is the next-use time of the block demanded
	// at access index i. With it attached, the oracle schemes answer "when
	// is the block I am touching used next" with one slice read, and carry
	// the value on cache lines and i-Filter slots so victim selection and
	// bypass decisions never query NextUse. The caller must drive Fetch
	// with accessIdx values that index this sequence (the CPU front end
	// does). Optional: without it, consumers fall back to NextUse.
	NextAt []int64
	// Sample restricts the complex to the sampled set constituencies
	// (SDM-style set sampling; zero value = full simulation). Accesses to
	// non-sampled constituencies bypass every structure with one mask
	// compare, and the fully-associative structures shared across sets
	// (i-Filter, victim cache — including the ACIC filter) are scaled to
	// the sampled traffic fraction so their residency windows match the
	// full run's (see cache.SampleFilter.ScaleShared).
	Sample cache.SampleFilter
}

// DefaultSets and DefaultWays are the paper's 32KB 8-way L1i baseline
// geometry, shared by every evaluated scheme and by the set-sampling
// stride arithmetic in the experiment harness.
const (
	DefaultSets = 64
	DefaultWays = 8
)

// DefaultGeometry fills Sets/Ways with the paper's 32KB 8-way baseline when
// unset.
func (c *Config) DefaultGeometry() {
	if c.Sets == 0 {
		c.Sets = DefaultSets
	}
	if c.Ways == 0 {
		c.Ways = DefaultWays
	}
}

// Complex is the standard composition: L1 + optional filter/admission/VC.
type Complex struct {
	name   string
	l1     *cache.Cache
	filter *core.IFilter
	acic   *core.ACIC
	byp    bypass.Policy
	vc     *victim.VC
	oracle func(uint64, int64) int64
	nextAt []int64
	sample cache.SampleFilter
	stats  Stats

	// footprint is the host working-set estimate captured at construction
	// (see FootprintBytes).
	footprint int64

	// actx is the reusable per-access context. One access may repopulate
	// it several times (demand lookup, then the fill candidate), but it
	// never escapes an access, so steady-state fetching performs zero heap
	// allocations.
	actx cache.AccessContext

	// prefFilled tracks blocks installed by a prefetch with no demand
	// access yet; the first demand to such a block is "prefetch covered"
	// (consumed by prefetch-aware admission control).
	prefFilled *flat.Table
}

// New builds a Complex from cfg.
func New(cfg Config) (*Complex, error) {
	cfg.DefaultGeometry()
	if cfg.Policy == nil {
		return nil, fmt.Errorf("icache: config requires a replacement policy")
	}
	if cfg.ACIC != nil && cfg.Bypass != nil {
		return nil, fmt.Errorf("icache: ACIC and Bypass are mutually exclusive")
	}
	l1, err := cache.New(cache.Config{Sets: cfg.Sets, Ways: cfg.Ways}, cfg.Policy)
	if err != nil {
		return nil, err
	}
	c := &Complex{l1: l1, byp: cfg.Bypass, oracle: cfg.NextUse, nextAt: cfg.NextAt,
		sample: cfg.Sample, prefFilled: flat.NewTable(64)}
	c.actx.NextUse = cfg.NextUse
	// The shared fully-associative structures shrink to the sampled traffic
	// fraction (no-ops when sampling is off) so their residency windows —
	// measured in arrivals — match the full-size structures under full
	// traffic.
	if cfg.ACIC != nil {
		cc := *cfg.ACIC
		cc.FilterSlots = cfg.Sample.ScaleShared(cc.FilterSlots)
		c.acic = core.New(cc)
		c.filter = c.acic.Filter
	} else if cfg.FilterSlots > 0 {
		c.filter = core.NewIFilter(cfg.Sample.ScaleShared(cfg.FilterSlots))
	}
	if cfg.VictimBlocks > 0 {
		c.vc = victim.NewVC(cfg.Sample.ScaleShared(cfg.VictimBlocks))
	}
	// Working-set estimate for gang window derivation: the L1 arrays are
	// measured exactly; the block-granular side structures (i-Filter slots,
	// victim-cache entries, the prefetch-covered table) are estimated at
	// trackedBlockBytes each. They are a rounding error next to a member's
	// memory-hierarchy arrays, so coarseness here is fine.
	c.footprint = l1.FootprintBytes() + 64*trackedBlockBytes
	if c.filter != nil {
		c.footprint += int64(c.filter.Size()) * trackedBlockBytes
	}
	if cfg.VictimBlocks > 0 {
		c.footprint += int64(cfg.Sample.ScaleShared(cfg.VictimBlocks)) * trackedBlockBytes
	}
	c.name = cfg.Name
	if c.name == "" {
		c.name = deriveName(cfg)
	}
	return c, nil
}

// trackedBlockBytes is the per-tracked-block host-byte estimate used for
// the fully-associative side structures in FootprintBytes: a block number,
// a carried next-use time, and bookkeeping.
const trackedBlockBytes = 24

// FootprintBytes estimates the host bytes of state this complex adds to a
// gang member's working set (exact for the L1 arrays, per-block estimates
// for the side structures). Adaptive gang-window derivation sums it with
// the member's memory-hierarchy footprint.
func (c *Complex) FootprintBytes() int64 { return c.footprint }

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Complex {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func deriveName(cfg Config) string {
	switch {
	case cfg.ACIC != nil:
		return "acic-" + cfg.ACIC.Variant.String()
	case cfg.Bypass != nil && cfg.FilterSlots > 0:
		return cfg.Bypass.Name() + "+ifilter"
	case cfg.Bypass != nil:
		return cfg.Bypass.Name()
	case cfg.FilterSlots > 0:
		return cfg.Policy.Name() + "+ifilter"
	case cfg.VictimBlocks > 0:
		return cfg.Policy.Name() + "+vc"
	default:
		return cfg.Policy.Name()
	}
}

// Name implements Subsystem.
func (c *Complex) Name() string { return c.name }

// L1 exposes the underlying cache (inspection, tests).
func (c *Complex) L1() *cache.Cache { return c.l1 }

// ACIC exposes the admission controller when configured (else nil).
func (c *Complex) ACIC() *core.ACIC { return c.acic }

// Filter exposes the i-Filter when configured (else nil).
func (c *Complex) Filter() *core.IFilter { return c.filter }

// ctx repopulates the reusable access context (NextUse is constant and set
// at construction). The pointer is only valid until the next ctx call;
// policies must not retain it (none do).
func (c *Complex) ctx(block uint64, accessIdx, selfNext int64, prefetch bool) *cache.AccessContext {
	c.actx.Block = block
	c.actx.AccessIdx = accessIdx
	c.actx.IsPrefetch = prefetch
	c.actx.SelfNext = selfNext
	c.actx.ContenderNext = 0
	return &c.actx
}

// demandNext returns the successor-array next-use time of the block
// demanded at accessIdx, or 0 when no array is attached.
func (c *Complex) demandNext(accessIdx int64) int64 {
	if c.nextAt == nil || accessIdx < 0 || accessIdx >= int64(len(c.nextAt)) {
		return 0
	}
	return c.nextAt[accessIdx]
}

// SampleFilter returns the constituency filter the complex runs under
// (the zero filter for a full simulation).
func (c *Complex) SampleFilter() cache.SampleFilter { return c.sample }

// Fetch implements Subsystem.
func (c *Complex) Fetch(block uint64, accessIdx, cycle int64) bool {
	if !c.sample.Sampled(block) {
		// Non-sampled constituency: presumed hit, no state anywhere in the
		// complex is touched. One mask compare; the full-simulation filter
		// matches every block.
		c.stats.Skipped++
		return true
	}
	c.stats.Accesses++
	sets := c.l1.Config().Sets
	set := c.l1.SetIndex(block)
	if c.acic != nil {
		// Prefetch-covered tracking is consumed only by ACIC's admission
		// control, so only ACIC complexes pay for it.
		prefetched := c.prefFilled.Contains(block)
		if prefetched {
			c.prefFilled.Delete(block)
		}
		c.acic.Tick(cycle)
		c.acic.OnFetch(block, set, sets, prefetched)
	}
	if c.byp != nil {
		c.byp.OnFetch(block)
	}
	selfNext := c.demandNext(accessIdx)
	// Concurrent search of i-Filter and i-cache (Fig 2).
	if c.filter != nil && c.filter.Access(block, selfNext) {
		c.stats.Hits++
		c.stats.FilterHits++
		return true
	}
	ctx := c.ctx(block, accessIdx, selfNext, false)
	if c.l1.Access(ctx) {
		c.stats.Hits++
		c.stats.L1Hits++
		return true
	}
	if c.vc != nil && c.vc.Probe(block) {
		// Swap the victim-cache hit into the i-cache.
		evicted := c.l1.Insert(ctx)
		if evicted.Valid {
			c.vc.Insert(evicted.Block)
		}
		c.stats.Hits++
		c.stats.VCHits++
		return true
	}
	c.stats.Misses++
	c.fill(block, accessIdx, cycle, false)
	return false
}

// PrefetchFill implements Subsystem.
func (c *Complex) PrefetchFill(block uint64, accessIdx, cycle int64) {
	if !c.sample.Sampled(block) {
		return
	}
	if c.Contains(block) {
		return
	}
	if c.acic != nil {
		c.prefFilled.Put(block, 1)
	}
	c.fill(block, accessIdx, cycle, true)
}

// fill routes a missed or prefetched block through the configured fill
// path: into the i-Filter when present (with admission control on the
// filter's victim), else directly into the i-cache subject to bypass.
func (c *Complex) fill(block uint64, accessIdx, cycle int64, prefetch bool) {
	// The incoming block's next use: one successor-array read for a demand
	// miss. A prefetched block is not the block demanded at accessIdx, so
	// its value stays 0 ("unknown"); consumers that ever examine it (OPT
	// victim scans, bypass decisions) resolve it lazily with the oracle —
	// most prefetched blocks are demanded first, which fills the value for
	// free.
	var next int64
	if !prefetch {
		next = c.demandNext(accessIdx)
	}
	sets := c.l1.Config().Sets
	if c.filter != nil {
		victimBlock, victimNext, evicted := c.filter.Insert(block, next)
		if !evicted {
			return
		}
		// The filter victim is the insertion candidate now, and its slot
		// carried its next-use time, so the oracle bypass decision below
		// needs no lookups.
		vctx := c.ctx(victimBlock, accessIdx, victimNext, prefetch)
		way, contender := c.l1.PeekVictim(vctx)
		admit := true
		switch {
		case c.acic != nil:
			admit = c.acic.Decide(victimBlock, contender.Block, c.l1.SetIndex(victimBlock), sets, accessIdx)
			if !contender.Valid {
				admit = true // empty way: nothing to pollute
			}
		case c.byp != nil:
			vctx.ContenderNext = contender.Next
			admit = c.byp.ShouldInsert(victimBlock, contender.Block, contender.Valid, vctx)
		}
		if !admit {
			return
		}
		ev := c.l1.InsertAt(way, vctx)
		if ev.Valid {
			c.notifyEvict(ev.Block)
			if c.vc != nil {
				c.vc.Insert(ev.Block)
			}
		}
		return
	}
	ctx := c.ctx(block, accessIdx, next, prefetch)
	if c.byp != nil {
		_, contender := c.l1.PeekVictim(ctx)
		ctx.ContenderNext = contender.Next
		if !c.byp.ShouldInsert(block, contender.Block, contender.Valid, ctx) {
			return
		}
	}
	ev := c.l1.Insert(ctx)
	if ev.Valid {
		c.notifyEvict(ev.Block)
		if c.vc != nil {
			c.vc.Insert(ev.Block)
		}
	}
}

// evictObserver is implemented by bypass policies that train on evictions
// (e.g. the evicted-address filter).
type evictObserver interface{ OnEvict(block uint64) }

// notifyEvict forwards an L1 eviction to an interested bypass policy.
func (c *Complex) notifyEvict(block uint64) {
	if o, ok := c.byp.(evictObserver); ok {
		o.OnEvict(block)
	}
}

// Contains implements Subsystem. Non-sampled blocks are never resident:
// the complex holds no state for them.
func (c *Complex) Contains(block uint64) bool {
	if !c.sample.Sampled(block) {
		return false
	}
	if c.filter != nil && c.filter.Contains(block) {
		return true
	}
	return c.l1.Contains(block)
}

// Stats implements Subsystem.
func (c *Complex) Stats() Stats { return c.stats }

// VVCAdapter adapts victim.VVC to the Subsystem interface.
type VVCAdapter struct {
	V         *victim.VVC
	sample    cache.SampleFilter
	stats     Stats
	footprint int64
}

// NewVVC builds a VVC subsystem with the given geometry.
func NewVVC(cfg victim.VVCConfig) *VVCAdapter {
	return NewSampledVVC(cfg, cache.SampleFilter{})
}

// NewSampledVVC builds a VVC subsystem restricted to the sampled set
// constituencies (the VVC's sets are indexed by the same block low bits as
// the standard complex, so the same constituency filter applies).
func NewSampledVVC(cfg victim.VVCConfig, sample cache.SampleFilter) *VVCAdapter {
	return &VVCAdapter{
		V:      victim.NewVVC(cfg),
		sample: sample,
		// Per-block estimate over the cache proper plus the tag table.
		footprint: int64(cfg.Sets*cfg.Ways+1<<cfg.TableBits) * trackedBlockBytes,
	}
}

// Name implements Subsystem.
func (a *VVCAdapter) Name() string { return "vvc" }

// FootprintBytes estimates the adapter's host working set for gang window
// derivation, like Complex.FootprintBytes.
func (a *VVCAdapter) FootprintBytes() int64 { return a.footprint }

// Fetch implements Subsystem.
func (a *VVCAdapter) Fetch(block uint64, _, _ int64) bool {
	if !a.sample.Sampled(block) {
		a.stats.Skipped++
		return true
	}
	a.stats.Accesses++
	if a.V.Fetch(block) {
		a.stats.Hits++
		a.stats.L1Hits++
		return true
	}
	a.stats.Misses++
	return false
}

// PrefetchFill implements Subsystem: VVC fills via its normal path; demand
// hit/miss statistics are unaffected.
func (a *VVCAdapter) PrefetchFill(block uint64, _, _ int64) {
	if !a.sample.Sampled(block) {
		return
	}
	a.V.Fill(block)
}

// Contains implements Subsystem.
func (a *VVCAdapter) Contains(block uint64) bool {
	return a.sample.Sampled(block) && a.V.Contains(block)
}

// Stats implements Subsystem.
func (a *VVCAdapter) Stats() Stats { return a.stats }
