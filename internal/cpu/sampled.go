// Set-sampled fast lane (SDM-style sampled simulation).
//
// The reference simulation advances one core cycle at a time. With set
// sampling enabled, almost every cycle is uneventful — only 1-in-stride
// demand accesses touch the i-cache subsystem, the rest are presumed hits
// — so the per-cycle walk (retire scan, run-ahead tick, fetch-slot loop)
// is pure overhead. The sampled lane therefore visits only the
// instructions that can change observable state, over a per-workload
// index built once and shared by every scheme cell:
//
//   - samplePace: the cumulative fetch-slot prefix with fetch-group
//     roundups and redirect penalties baked in, so "what cycle does
//     instruction k fetch at" is one add and one divide from the current
//     pace base; a fill stall just rebases. Between stalls this
//     reproduces the reference's FetchWidth-per-cycle, group-at-a-time
//     pacing to within one cycle per stretch.
//   - sampleAccK/sampleAccA: the sampled-constituency accesses (cached
//     per filter), the walk's primary cursor. Non-sampled accesses are
//     never visited — their consumption timestamps, when the FTQ window
//     lookback needs one, are reconstructed exactly from the pace prefix
//     plus a short history of pace rebases.
//   - sampleEvents: redirects (which block the FDP stream and carry the
//     stall statistic; their fetch-pacing cost is baked into samplePace)
//     and the long-latency loads whose completion spikes can back up the
//     ROB. Spikes drive the retire chain — the exact in-order
//     RetireWidth-wide drain bound — which gates fetch at ROB distance
//     and sets the final drain; short loads retire inside the fetch
//     shadow and are left out.
//
// FDP is emulated per sampled block instead of walked per cycle: the
// fetch-target-queue window "reaches" access a when access a-FTQBlocks is
// consumed, a prefetch cannot start before the last front-end redirect
// resolves, and the sampled-scaled L2 port and MSHR pool serialize issues
// exactly as the reference's per-cycle budget does. Demand misses then
// charge full or residual (late prefetch) fill latency like the
// reference demandAccess.
//
// The sampled lane is a deliberate approximation with measured error
// bars (DESIGN.md §10; `acic-bench -sample-validate` regenerates them).
// The full-simulation path never enters this file and stays
// byte-identical to the reference loop.
package cpu

import (
	"math/bits"
	"sort"

	"acic/internal/cache"
)

// bigLoadLat is the data-load latency (cycles) from which a completion
// spike can back up the ROB: the spike must outlast the ROB/RetireWidth
// cycles (≈59 at Table II geometry) the in-order drain needs to fall a
// full ROB behind, minus the pipeline depth already counted. Shorter
// loads drain inside the fetch shadow and are left out of the event
// index (they are the L1D/L2 hit classes; 48 cleanly separates them from
// the L3-and-beyond latencies that matter).
const bigLoadLat = 48

// rebaseRing bounds the pace-rebase history. Rebases happen only at
// sampled-access stalls and at most a few sampled accesses fit in one
// FTQBlocks lookback window, so 8 entries always cover it.
const rebaseRing = 8

// ensureSampleIndex builds the sampled lane's shared per-workload index
// (pace prefix, redirect/big-load event bitmap, access→instruction map)
// once. The pacing is quantized to the given fetch width and the
// redirect penalties are baked in as whole-cycle gaps, so a front-end
// redirect costs the runtime loop only its stall-statistics bookkeeping.
// Concurrent scheme cells share one build; the parameters must match
// every sharing simulator's Config (platformConfig never varies them).
func (p *Program) ensureSampleIndex(width int, mispredict, misfetch int64) {
	p.sampleOnce.Do(func() {
		n := len(p.Desc)
		// The pace prefix is int64: it grows ~1 slot per instruction plus
		// (penalty-1)*width per redirect, which overflows int32 from
		// roughly half-billion-instruction traces — paper-scale -n values.
		pace := make([]int64, n+1)
		ev := make([]uint64, (n+63)/64+1)
		accInstr := make([]int32, 0, len(p.Blocks))
		var pc int64
		w := int64(width)
		for i, d := range p.Desc {
			pace[i] = pc
			pc++
			if d&(descGroupEnd|descMispredict|descMisfetch) != 0 {
				// Group end or redirect: the rest of the fetch cycle is
				// wasted, and a redirect additionally charges its penalty
				// as whole lost cycles.
				if r := pc % w; r != 0 {
					pc += w - r
				}
				switch {
				case d&descMispredict != 0:
					pc += (mispredict - 1) * w
					ev[i>>6] |= 1 << uint(i&63)
				case d&descMisfetch != 0:
					pc += (misfetch - 1) * w
					ev[i>>6] |= 1 << uint(i&63)
				}
			}
			if d&descNewBlock != 0 {
				accInstr = append(accInstr, int32(i))
			}
			if d&descLoad != 0 && p.DataLat[i] >= bigLoadLat {
				ev[i>>6] |= 1 << uint(i&63)
			}
		}
		pace[n] = pc
		p.samplePace, p.sampleEvents, p.sampleAccInstr = pace, ev, accInstr
	})
}

// sampledAccessList returns (and caches) the accesses of one constituency
// filter: instruction index and access index per sampled access. One
// suite run uses one filter, so the cache holds a single entry.
func (p *Program) sampledAccessList(f cache.SampleFilter) (saK, saA []int32) {
	p.sampleListMu.Lock()
	defer p.sampleListMu.Unlock()
	if p.sampleAccK != nil && p.sampleListFilter == f {
		return p.sampleAccK, p.sampleAccA
	}
	k := make([]int32, 0, len(p.Blocks)/f.Stride()+1)
	a := make([]int32, 0, cap(k))
	for i, b := range p.Blocks {
		if f.Sampled(b) {
			k = append(k, p.sampleAccInstr[i])
			a = append(a, int32(i))
		}
	}
	p.sampleListFilter, p.sampleAccK, p.sampleAccA = f, k, a
	return k, a
}

// nextSampleEvent returns the smallest redirect/big-load event index
// >= i, or n when none remains before n.
func (p *Program) nextSampleEvent(i, n int) int {
	w := i >> 6
	word := p.sampleEvents[w] & (^uint64(0) << uint(i&63))
	for word == 0 {
		w++
		if w >= len(p.sampleEvents) {
			return n
		}
		word = p.sampleEvents[w]
	}
	if j := w<<6 + bits.TrailingZeros64(word); j < n {
		return j
	}
	return n
}

// fcAt returns the fetch cycle of instruction k under the current pace
// base (valid for instructions at or after the last stall).
func (s *Simulator) fcAt(k int) int64 {
	return (s.paceBase + s.prog.samplePace[k]) / int64(s.cfg.FetchWidth)
}

// setFetchCycle rebases pacing so instruction k fetches at cycle c with a
// fresh fetch group (what the reference does when a stall ends),
// recording the outgoing base in the rebase history.
func (s *Simulator) setFetchCycle(k int, c int64) {
	s.rebPos = (s.rebPos + 1) % rebaseRing
	s.rebIdx[s.rebPos], s.rebVal[s.rebPos] = int32(k), s.paceBase
	s.paceBase = c*int64(s.cfg.FetchWidth) - s.prog.samplePace[k]
	s.cycle = c
}

// paceSlotAt reconstructs the pace slot instruction j was fetched at,
// consulting the rebase history when j predates the current base. The
// history always covers the FTQ lookback exactly; anything older falls
// back to the oldest recorded base (initial entries are the zero base).
func (s *Simulator) paceSlotAt(j int32) int64 {
	pace := s.prog.samplePace[j]
	if s.rebIdx[s.rebPos] <= j {
		return s.paceBase + pace
	}
	for i := 1; i < rebaseRing; i++ {
		p := (s.rebPos - i + rebaseRing) % rebaseRing
		if s.rebIdx[p] <= j {
			return s.rebVal[(s.rebPos-i+1+rebaseRing)%rebaseRing] + pace
		}
	}
	return s.rebVal[(s.rebPos+1)%rebaseRing] + pace
}

// accessCountAt returns how many block accesses start before instruction
// k (the exact accessIdx at an instruction boundary).
func (s *Simulator) accessCountAt(k int) int64 {
	ai := s.prog.sampleAccInstr
	return int64(sort.Search(len(ai), func(i int) bool { return ai[i] >= int32(k) }))
}

// runSampledTo is the sampled-lane runTo: it advances the simulation
// until the next instruction to fetch reaches bound or the program ends
// (then true). Pausing is at instruction granularity and touches no lane
// state, so gang scheduling preserves results exactly.
func (s *Simulator) runSampledTo(bound int) bool {
	n := s.prog.Len()
	limit := min(bound, n)
	for s.fetchIdx < limit {
		seg := limit
		if !s.warmupTaken && s.warmupInstrs < int64(seg) {
			seg = max(int(s.warmupInstrs), s.fetchIdx)
		}
		s.sampledWalk(seg)
		if !s.warmupTaken && int64(s.fetchIdx) >= s.warmupInstrs {
			s.wCycles, s.wInstr, s.wBlocks = s.fcAt(s.fetchIdx), s.instructions, s.accessIdx
			s.wMiss, s.wLate, s.wPf = s.demandMisses, s.lateMisses, s.prefetches
			s.wIStall, s.wRStall = s.imissStall, s.redirectStall
			s.wSampled = s.sampledAccesses
			s.warmupTaken = true
		}
	}
	if s.fetchIdx < n {
		return false
	}
	if !s.sampledDone {
		s.sampledDone = true
		// Drain: the run ends one cycle after the last instruction
		// retires — the later of its own pipeline completion and the
		// retire chain emptying the ROB behind the last big spike.
		end := s.fcAt(n-1) + s.cfg.PipelineDepth
		rw := int64(s.cfg.RetireWidth)
		if chain := (s.vtRetire6 + int64(n-1-s.vtIdx) + rw - 1) / rw; chain > end {
			end = chain
		}
		s.cycle = end + 1
	}
	return true
}

// sampledWalk merges the two event streams — the sampled-access list and
// the redirect/big-load bitmap — in instruction order up to seg, then
// advances the fetch pointer; everything in between is pace-only.
func (s *Simulator) sampledWalk(seg int) {
	prog := s.prog
	kb := prog.nextSampleEvent(s.fetchIdx, seg)
	for {
		ka := seg
		if s.saCursor < len(s.saK) {
			if v := int(s.saK[s.saCursor]); v < seg {
				ka = v
			}
		}
		if ka >= seg && kb >= seg {
			break
		}
		if ka <= kb {
			a := int64(s.saA[s.saCursor])
			s.saCursor++
			s.sampledDemand(ka, a)
			if ka == kb {
				s.handleSampledEvent(kb)
				kb = prog.nextSampleEvent(kb+1, seg)
			}
		} else {
			s.handleSampledEvent(kb)
			kb = prog.nextSampleEvent(kb+1, seg)
		}
	}
	s.fetchIdx = seg
	s.instructions = int64(seg)
	s.accessIdx = s.accessCountAt(seg)
}

// handleSampledEvent applies one redirect or big-load event.
func (s *Simulator) handleSampledEvent(k int) {
	d := s.prog.Desc[k]
	if k >= s.gateIdx {
		s.robGate(k)
	}
	if d&descLoad != 0 && s.prog.DataLat[k] >= bigLoadLat {
		// Completion in retire-slot units, computed straight from the pace
		// slot: fetch and retire widths coincide (Table II), so the pace
		// coordinate doubles as the retire coordinate to within one cycle
		// — the chain only feeds the rare gate and the final drain.
		c6 := s.paceBase + s.prog.samplePace[k] +
			(s.cfg.PipelineDepth+int64(s.prog.DataLat[k]))*int64(s.cfg.RetireWidth)
		if chain := s.vtRetire6 + int64(k-s.vtIdx); c6 > chain {
			s.vtRetire6, s.vtIdx = c6, k
			s.gateIdx = k + s.cfg.ROB
		}
	}
	if d&(descMispredict|descMisfetch) != 0 {
		// The fetch-pacing cost is baked into the pace prefix; what is
		// left is the stall statistic and the run-ahead stream blocking —
		// the stream cannot issue past a branch the front end will get
		// wrong, and resumes the cycle after fetch passes it.
		s.lastRedirect = s.paceBase + s.prog.samplePace[k] + int64(s.cfg.FetchWidth)
		if d&descMispredict != 0 {
			s.redirectStall += s.cfg.MispredictPenalty - 1
		} else {
			s.redirectStall += s.cfg.MisfetchPenalty - 1
		}
	}
}

// robGate applies the one-shot ROB-full check: the gate can only start
// binding a full ROB after the chain anchor, and once fetch is past (or
// level with) the drain they advance at the same width, so a single
// adjustment suffices.
func (s *Simulator) robGate(k int) {
	s.gateIdx = maxInt
	rw := int64(s.cfg.RetireWidth)
	gate := (s.vtRetire6 + int64(k-s.cfg.ROB-s.vtIdx) + rw - 1) / rw
	if gate > s.fcAt(k) {
		s.setFetchCycle(k, gate)
	}
}

// sampledDemand consumes the sampled block access a starting at
// instruction k: it emulates the FDP prefetch the block received when
// the run-ahead window reached it, drives the subsystem, and charges
// fill stalls like the reference demandAccess.
func (s *Simulator) sampledDemand(k int, a int64) {
	if k >= s.gateIdx {
		s.robGate(k)
	}
	s.accessIdx = a + 1
	s.sampledAccesses++
	b := s.prog.Blocks[a]
	six := s.paceBase + s.prog.samplePace[k]
	cycle := six / int64(s.cfg.FetchWidth)
	s.cycle = cycle
	if len(s.pfInFlight) > 0 {
		// Extra-prefetcher fills (non-FDP platforms) land through the
		// pending list, exactly when their latency has elapsed.
		s.installReadyPrefetches()
	}
	if readyAt, pending := s.prefetchPending(b); pending {
		// Late extra prefetch: install it now, charge the residual.
		s.removeInFlight(b)
		s.sub.PrefetchFill(b, a, cycle)
		s.sub.Fetch(b, a, cycle)
		s.demandMisses++
		s.lateMisses++
		s.sampledExtraPrefetch(b, true)
		if readyAt > cycle {
			s.imissStall += readyAt - cycle - 1
			s.setFetchCycle(k, readyAt)
		}
		return
	}
	if s.cfg.UseFDP && !s.sub.Contains(b) {
		// FDP covers every upcoming fetch block: the window reached this
		// access when access a-FTQBlocks was consumed.
		issue := six
		if back := a - int64(s.cfg.FTQBlocks); back >= 0 {
			issue = s.paceSlotAt(s.prog.sampleAccInstr[back])
		}
		issue /= int64(s.cfg.FetchWidth)
		if lr := s.lastRedirect / int64(s.cfg.FetchWidth); lr > issue {
			issue = lr
		}
		kept := s.mshr[:0]
		for _, r := range s.mshr {
			if r > issue {
				kept = append(kept, r)
			}
		}
		s.mshr = kept
		if len(s.mshr) >= s.cfg.MaxPrefetches {
			// All (sampled-scaled) MSHRs busy: the stream waits for the
			// earliest fill and reuses its slot.
			earliest := 0
			for i, r := range s.mshr {
				if r < s.mshr[earliest] {
					earliest = i
				}
			}
			if s.mshr[earliest] > issue {
				issue = s.mshr[earliest]
			}
			s.mshr[earliest] = s.mshr[len(s.mshr)-1]
			s.mshr = s.mshr[:len(s.mshr)-1]
		}
		start := issue
		if s.l2NextFree > start {
			start = s.l2NextFree
		}
		s.l2NextFree = start + s.cfg.L2ServiceInterval
		readyAt := start + s.hier.InstrMiss(b)
		s.mshr = append(s.mshr, readyAt)
		s.prefetches++
		s.sub.PrefetchFill(b, a, cycle)
		if readyAt > cycle {
			// Late prefetch, like the reference: residual latency only.
			s.sub.Fetch(b, a, cycle)
			s.demandMisses++
			s.lateMisses++
			s.sampledExtraPrefetch(b, true)
			s.imissStall += readyAt - cycle - 1
			s.setFetchCycle(k, readyAt)
			return
		}
		// Timely fill. The demand still misses when the scheme's
		// admission path dropped the fill — then it pays full latency.
		if s.sub.Fetch(b, a, cycle) {
			s.sampledExtraPrefetch(b, false)
			return
		}
		s.sampledMiss(b, k, cycle)
		return
	}
	if s.sub.Fetch(b, a, cycle) {
		s.sampledExtraPrefetch(b, false)
		return
	}
	s.sampledMiss(b, k, cycle)
}

// sampledMiss charges a full demand fill through the (sampled-scaled) L2
// port, exactly like the reference miss path.
func (s *Simulator) sampledMiss(b uint64, k int, cycle int64) {
	s.demandMisses++
	ready := s.instrFillReady(b)
	s.sampledExtraPrefetch(b, true)
	s.imissStall += ready - cycle - 1
	s.setFetchCycle(k, ready)
}

// sampledIssuePrefetch starts an extra-prefetcher fill for a sampled
// block unless redundant; false means the MSHRs are full.
func (s *Simulator) sampledIssuePrefetch(block uint64) bool {
	if len(s.pfInFlight) >= s.cfg.MaxPrefetches {
		return false
	}
	if s.sub.Contains(block) {
		return true
	}
	if _, pending := s.prefetchPending(block); pending {
		return true
	}
	readyAt := s.instrFillReady(block)
	if len(s.pfInFlight) == 0 || readyAt < s.pfNextReady {
		s.pfNextReady = readyAt
	}
	s.pfInFlight = append(s.pfInFlight, inflight{block: block, readyAt: readyAt})
	s.prefetches++
	return true
}

// installReadyPrefetches completes pending extra-prefetcher fills whose
// latency has elapsed. The sampled lane needs them only when a demand
// access is about to probe the subsystem, so it runs there instead of
// every cycle.
func (s *Simulator) installReadyPrefetches() {
	if s.cycle < s.pfNextReady {
		return
	}
	kept := s.pfInFlight[:0]
	nextReady := int64(1)<<62 - 1
	for _, pf := range s.pfInFlight {
		if pf.readyAt <= s.cycle {
			s.sub.PrefetchFill(pf.block, s.accessIdx, s.cycle)
		} else {
			if pf.readyAt < nextReady {
				nextReady = pf.readyAt
			}
			kept = append(kept, pf)
		}
	}
	s.pfInFlight = kept
	s.pfNextReady = nextReady
}

// sampledExtraPrefetch drives the optional table prefetcher on the
// sampled access stream, issuing its sampled-constituency candidates.
func (s *Simulator) sampledExtraPrefetch(block uint64, miss bool) {
	if s.cfg.Extra == nil {
		return
	}
	s.pfScratch = s.cfg.Extra.OnAccess(block, s.cycle, miss, s.pfScratch[:0])
	for _, c := range s.pfScratch {
		if c&s.sampleMask == s.sampleMatch {
			s.sampledIssuePrefetch(c)
		}
	}
}
