package cpu

import (
	"acic/internal/branch"
	"acic/internal/mem"
	"acic/internal/trace"
)

// ProgramBuilder assembles a Program incrementally from instruction
// windows, fusing the three whole-trace prepare passes — branch
// annotation, descriptor derivation, and the data-latency replay — into
// one per-window pass. The builder owns a branch.FrontEnd and a
// persistent data hierarchy; both are plain sequential state machines, so
// feeding the trace window by window produces field-identical results to
// NewProgram(tr, fe.Annotate(tr)) followed by EnsureDataLatencies(cfg)
// (TestProgramBuilderMatchesBatch pins this at several window sizes).
//
// The payoff is what the builder does NOT keep: the instruction window is
// dead once appended, so a streamed prepare holds O(window) Inst records
// instead of O(trace) — the finished Program carries only the per-
// instruction byte/array state the simulator actually reads (Desc, Ann,
// MemBlk, DataLat, Blocks, runEvents; the Trace field has no Insts).
type ProgramBuilder struct {
	p         *Program
	fe        *branch.FrontEnd
	hier      *mem.Hierarchy
	cfg       mem.Config
	prevBlock uint64
}

// NewProgramBuilder starts an incremental build. name becomes the finished
// Program's trace name; cfg is the data-hierarchy configuration the
// latency timeline is replayed under (the same one EnsureDataLatencies
// would take); capHint pre-sizes the per-instruction arrays when the final
// length is known (0 is fine).
func NewProgramBuilder(name string, cfg mem.Config, capHint int) *ProgramBuilder {
	return &ProgramBuilder{
		p: &Program{
			Trace:   &trace.Trace{Name: name},
			Ann:     make([]branch.Annotation, 0, capHint),
			Desc:    make([]uint8, 0, capHint),
			Blocks:  make([]uint64, 0, capHint/4+1),
			MemBlk:  make([]uint64, 0, capHint),
			DataLat: make([]int16, 0, capHint),
		},
		fe:   branch.NewFrontEnd(),
		hier: mem.New(cfg),
		cfg:  cfg,
	}
}

// Append annotates and assembles one instruction window. It returns the
// block accesses the window opened (the tail of the collapsed Blocks
// sequence), which is what the successor-array builder consumes; the
// returned slice aliases the Program and must not be mutated. The insts
// slice itself is not retained — callers may reuse its backing array.
func (b *ProgramBuilder) Append(insts []trace.Inst) []uint64 {
	p := b.p
	ann := b.fe.AnnotateInsts(insts)
	firstBlock := len(p.Blocks)
	for k := range insts {
		in := &insts[k]
		i := len(p.Desc)
		var d uint8
		blk := in.Block()
		if i == 0 || blk != b.prevBlock {
			d |= descNewBlock
			p.Blocks = append(p.Blocks, blk)
		}
		b.prevBlock = blk
		var memBlk uint64
		var lat int16
		switch in.Class {
		case trace.ClassLoad:
			d |= descLoad
			memBlk = trace.Block(in.MemAddr)
			lat = int16(b.hier.DataAccess(memBlk))
		case trace.ClassStore:
			d |= descStore
			memBlk = trace.Block(in.MemAddr)
			lat = int16(b.hier.DataAccess(memBlk))
		}
		if in.Class.IsBranch() && (in.Class != trace.ClassCondBranch || in.Taken) {
			d |= descGroupEnd
		}
		switch ann[k].Redirect {
		case branch.RedirectMispredict:
			d |= descMispredict
		case branch.RedirectMisfetch:
			d |= descMisfetch
		}
		p.Desc = append(p.Desc, d)
		p.MemBlk = append(p.MemBlk, memBlk)
		p.DataLat = append(p.DataLat, lat)
		if d&descRunEvent != 0 {
			for i>>6 >= len(p.runEvents) {
				p.runEvents = append(p.runEvents, 0)
			}
			p.runEvents[i>>6] |= 1 << uint(i&63)
		}
	}
	p.Ann = append(p.Ann, ann...)
	return p.Blocks[firstBlock:]
}

// Len returns the number of instructions appended so far.
func (b *ProgramBuilder) Len() int { return len(b.p.Desc) }

// Finish returns the completed Program. The data-latency timeline is
// already installed under the builder's config (a later
// EnsureDataLatencies with the same config is a no-op; a different config
// panics, as always). The builder must not be appended to afterwards.
func (b *ProgramBuilder) Finish() *Program {
	p := b.p
	// NewProgram sizes the run-ahead bitmap to (n+63)/64+1 words; match it
	// exactly so the run-ahead walker's word loop sees the same bounds.
	want := (len(p.Desc)+63)/64 + 1
	for len(p.runEvents) < want {
		p.runEvents = append(p.runEvents, 0)
	}
	p.runEvents = p.runEvents[:want]
	p.dataLatOnce.Do(func() { p.dataLatCfg = b.cfg })
	b.p = nil
	return p
}

// BlockRefs expands the per-instruction block-reference sequence from the
// descriptor stream and the collapsed Blocks array: instructions that open
// a block access advance through Blocks, the rest repeat the current
// block. For a batch-built Program this equals analysis.InstBlockRefs of
// the source trace; it exists so the figure analyses that need
// instruction-granularity references (Fig 1a/1b) work on streamed
// Programs, which do not retain Inst records.
func (p *Program) BlockRefs() []uint64 {
	out := make([]uint64, len(p.Desc))
	bi := -1
	var cur uint64
	for i, d := range p.Desc {
		if d&descNewBlock != 0 {
			bi++
			cur = p.Blocks[bi]
		}
		out[i] = cur
	}
	return out
}
