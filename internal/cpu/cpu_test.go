package cpu

import (
	"testing"

	"acic/internal/branch"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/policy"
	"acic/internal/trace"
	"acic/internal/workload"
)

// tinyWorkload builds a small deterministic workload for timing tests.
func tinyWorkload(t *testing.T, n int) (*trace.Trace, []branch.Annotation) {
	t.Helper()
	prof, ok := workload.ByName("media-streaming")
	if !ok {
		t.Fatal("profile missing")
	}
	tr := workload.Generate(prof, n)
	return tr, branch.NewFrontEnd().Annotate(tr)
}

func newSub(t *testing.T) *icache.Complex {
	t.Helper()
	return icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU()})
}

func TestSimulatorRetiresEverything(t *testing.T) {
	tr, ann := tinyWorkload(t, 20000)
	sim := NewSimulator(DefaultConfig(), NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig()))
	res := sim.Run(0)
	if res.Instructions != int64(len(tr.Insts)) {
		t.Errorf("retired %d of %d instructions", res.Instructions, len(tr.Insts))
	}
	if res.Cycles <= res.Instructions/6 {
		t.Errorf("cycles %d below the 6-wide bound", res.Cycles)
	}
	if res.IPC() <= 0 || res.IPC() > 6 {
		t.Errorf("IPC %v out of range", res.IPC())
	}
	if res.BlockAccesses == 0 || res.DemandMisses == 0 {
		t.Errorf("implausible counters: %+v", res)
	}
}

func TestWarmupExcluded(t *testing.T) {
	tr, ann := tinyWorkload(t, 20000)
	full := NewSimulator(DefaultConfig(), NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig())).Run(0)
	warm := NewSimulator(DefaultConfig(), NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig())).Run(10000)
	if warm.Instructions >= full.Instructions {
		t.Errorf("warmup did not reduce measured instructions: %d vs %d", warm.Instructions, full.Instructions)
	}
	if warm.Cycles >= full.Cycles {
		t.Error("warmup did not reduce measured cycles")
	}
}

func TestBlockAccessIndexMatchesOracleTimebase(t *testing.T) {
	// The simulator's access numbering must equal trace.BlockAccesses'
	// numbering — the OPT oracle depends on it.
	tr, ann := tinyWorkload(t, 30000)
	sim := NewSimulator(DefaultConfig(), NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig()))
	res := sim.Run(0)
	if got, want := res.BlockAccesses, int64(len(tr.BlockAccesses())); got != want {
		t.Errorf("simulator saw %d block accesses, trace has %d", got, want)
	}
}

func TestFDPReducesStallsNotMissesAccounting(t *testing.T) {
	tr, ann := tinyWorkload(t, 60000)
	cfgOn := DefaultConfig()
	cfgOff := DefaultConfig()
	cfgOff.UseFDP = false
	on := NewSimulator(cfgOn, NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig())).Run(0)
	off := NewSimulator(cfgOff, NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig())).Run(0)
	if on.Cycles >= off.Cycles {
		t.Errorf("FDP should speed things up: %d vs %d cycles", on.Cycles, off.Cycles)
	}
	if on.DemandMisses >= off.DemandMisses {
		t.Errorf("FDP should reduce demand misses: %d vs %d", on.DemandMisses, off.DemandMisses)
	}
	if on.Prefetches == 0 {
		t.Error("FDP issued no prefetches")
	}
	if off.Prefetches != 0 {
		t.Error("disabled FDP issued prefetches")
	}
}

func TestBiggerCacheIsFaster(t *testing.T) {
	tr, ann := tinyWorkload(t, 60000)
	small := icache.MustNew(icache.Config{Sets: 16, Ways: 2, Policy: policy.NewLRU()})
	big := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU()})
	rs := NewSimulator(DefaultConfig(), NewProgram(tr, ann), small, mem.New(mem.DefaultConfig())).Run(0)
	rb := NewSimulator(DefaultConfig(), NewProgram(tr, ann), big, mem.New(mem.DefaultConfig())).Run(0)
	if rb.Cycles >= rs.Cycles {
		t.Errorf("32KB cache should beat 2KB: %d vs %d cycles", rb.Cycles, rs.Cycles)
	}
	if rb.MPKI() >= rs.MPKI() {
		t.Errorf("32KB MPKI %.2f should be below 2KB MPKI %.2f", rb.MPKI(), rs.MPKI())
	}
}

func TestMPKIComputation(t *testing.T) {
	r := Result{Instructions: 2000, DemandMisses: 50}
	if got := r.MPKI(); got != 25 {
		t.Errorf("MPKI = %v, want 25", got)
	}
	var zero Result
	if zero.MPKI() != 0 || zero.IPC() != 0 {
		t.Error("zero result must not divide by zero")
	}
}

func TestAnnotationLengthChecked(t *testing.T) {
	tr, _ := tinyWorkload(t, 1000)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on annotation mismatch")
		}
	}()
	NewSimulator(DefaultConfig(), NewProgram(tr, nil), newSub(t), mem.New(mem.DefaultConfig()))
}

func TestEmptyTrace(t *testing.T) {
	tr := &trace.Trace{}
	sim := NewSimulator(DefaultConfig(), NewProgram(tr, nil), newSub(t), mem.New(mem.DefaultConfig()))
	res := sim.Run(0)
	if res.Instructions != 0 {
		t.Error("empty trace should retire nothing")
	}
}

func TestDeterminism(t *testing.T) {
	tr, ann := tinyWorkload(t, 30000)
	r1 := NewSimulator(DefaultConfig(), NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig())).Run(1000)
	r2 := NewSimulator(DefaultConfig(), NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig())).Run(1000)
	if r1 != r2 {
		t.Errorf("simulation is not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestStallBreakdownAccounting(t *testing.T) {
	tr, ann := tinyWorkload(t, 40000)
	res := NewSimulator(DefaultConfig(), NewProgram(tr, ann), newSub(t), mem.New(mem.DefaultConfig())).Run(0)
	if res.IMissStallCycles <= 0 {
		t.Error("a missing workload must accumulate i-miss stall cycles")
	}
	if res.RedirectStallCycles <= 0 {
		t.Error("mispredicting workload must accumulate redirect stall cycles")
	}
	if res.IMissStallCycles+res.RedirectStallCycles >= res.Cycles {
		t.Errorf("stall cycles %d+%d exceed total %d",
			res.IMissStallCycles, res.RedirectStallCycles, res.Cycles)
	}
	// A perfect-size cache reduces i-miss stalls.
	big := icache.MustNew(icache.Config{Sets: 512, Ways: 8, Policy: policy.NewLRU()})
	resBig := NewSimulator(DefaultConfig(), NewProgram(tr, ann), big, mem.New(mem.DefaultConfig())).Run(0)
	if resBig.IMissStallCycles >= res.IMissStallCycles {
		t.Error("a much larger cache should cut i-miss stalls")
	}
}
