package cpu

import (
	"fmt"

	"acic/internal/branch"
	"acic/internal/mem"
	"acic/internal/trace"
)

// NewProgramFromParts reassembles a Program from persisted artifacts: the
// trace plus the annotation, descriptor, and collapsed-block arrays that
// NewProgram derives (trace codec v2 sections ANNO/DESC/BLKS). Only the
// cheap purely-local state — the per-instruction data-block array and the
// run-ahead event bitmap — is recomputed; the expensive branch-predictor
// replay behind ann and the descriptor pass are skipped. The parts are
// validated against the trace (lengths, block count, event bits) so a
// mismatched or stale artifact fails here and the caller regenerates
// instead of simulating garbage.
func NewProgramFromParts(tr *trace.Trace, ann []branch.Annotation, desc []uint8, blocks []uint64) (*Program, error) {
	if len(ann) != len(tr.Insts) {
		return nil, fmt.Errorf("cpu: annotation length %d != trace length %d", len(ann), len(tr.Insts))
	}
	if len(desc) != len(tr.Insts) {
		return nil, fmt.Errorf("cpu: descriptor length %d != trace length %d", len(desc), len(tr.Insts))
	}
	p := &Program{
		Trace:     tr,
		Ann:       ann,
		Desc:      desc,
		Blocks:    blocks,
		MemBlk:    make([]uint64, len(tr.Insts)),
		runEvents: make([]uint64, (len(tr.Insts)+63)/64+1),
	}
	nblocks := 0
	for i := range tr.Insts {
		d := desc[i]
		if tr.Insts[i].Class.IsMem() {
			p.MemBlk[i] = trace.Block(tr.Insts[i].MemAddr)
		}
		if d&descNewBlock != 0 {
			nblocks++
		}
		if d&descRunEvent != 0 {
			p.runEvents[i>>6] |= 1 << uint(i&63)
		}
	}
	if nblocks != len(blocks) {
		return nil, fmt.Errorf("cpu: descriptor stream opens %d blocks, artifact carries %d", nblocks, len(blocks))
	}
	return p, nil
}

// AnnotationBytes flattens the per-instruction branch annotations to one
// redirect byte each (the trace codec's ANNO section payload).
func (p *Program) AnnotationBytes() []byte {
	out := make([]byte, len(p.Ann))
	for i, a := range p.Ann {
		out[i] = byte(a.Redirect)
	}
	return out
}

// AnnotationsFromBytes rebuilds the annotation array from an ANNO payload.
func AnnotationsFromBytes(data []byte) ([]branch.Annotation, error) {
	out := make([]branch.Annotation, len(data))
	for i, b := range data {
		r := branch.Redirect(b)
		if r > branch.RedirectMispredict {
			return nil, fmt.Errorf("cpu: annotation %d: bad redirect %d", i, b)
		}
		out[i].Redirect = r
	}
	return out, nil
}

// AdoptDataLatencies installs a precomputed data-side latency timeline
// (from the workload artifact store) instead of replaying the data
// hierarchy. Adopting after the timeline was already computed (or adopted)
// under the same config is a no-op; a different config panics exactly like
// EnsureDataLatencies, and a timeline of the wrong length is rejected
// before installation so a stale artifact cannot poison the Program.
func (p *Program) AdoptDataLatencies(lat []int16, cfg mem.Config) error {
	if len(lat) != len(p.Desc) {
		return fmt.Errorf("cpu: data-latency timeline length %d != program length %d", len(lat), len(p.Desc))
	}
	p.dataLatOnce.Do(func() {
		p.DataLat = lat
		p.dataLatCfg = cfg
	})
	if p.dataLatCfg != cfg {
		panic("cpu: data-latency timeline was computed under a different mem.Config; use one Program per hierarchy configuration")
	}
	return nil
}
