package cpu

import (
	"testing"

	"acic/internal/branch"
	"acic/internal/bypass"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/policy"
	"acic/internal/prefetch"
	"acic/internal/trace"
	"acic/internal/workload"
)

// gangTestSubs builds a representative member set: plain LRU, a RRIP
// policy, and a filter+bypass complex, each fresh per call.
func gangTestSubs() []icache.Subsystem {
	lru := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU()})
	srrip := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewSRRIP(2)})
	dsb := icache.MustNew(icache.Config{
		Sets: 64, Ways: 8, Policy: policy.NewLRU(),
		FilterSlots: 16, Bypass: bypass.NewDSB(bypass.DefaultDSBConfig(64)),
	})
	return []icache.Subsystem{lru, srrip, dsb}
}

// TestGangMatchesSerial pins the gang's core promise: every member's
// Result is bit-identical to a serial Simulator.Run, whatever the window.
func TestGangMatchesSerial(t *testing.T) {
	prof, ok := workload.ByName("media-streaming")
	if !ok {
		t.Fatal("profile missing")
	}
	tr := workload.Generate(prof, 60_000)
	ann := branch.NewFrontEnd().Annotate(tr)
	prog := NewProgram(tr, ann)

	var want []Result
	for _, sub := range gangTestSubs() {
		sim := NewSimulator(DefaultConfig(), prog, sub, mem.New(mem.DefaultConfig()))
		want = append(want, sim.Run(6000))
	}

	for _, window := range []int{1, 7, 4096, DefaultGangWindow, 1 << 30} {
		subs := gangTestSubs()
		hiers := mem.NewGang(mem.DefaultConfig(), len(subs))
		members := make([]GangMember, len(subs))
		for i, sub := range subs {
			members[i] = GangMember{Cfg: DefaultConfig(), Sub: sub, Hier: hiers[i]}
		}
		got := NewGang(prog, members, window).Run(6000)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("window %d member %d: gang %+v != serial %+v", window, i, got[i], want[i])
			}
		}
	}
}

// TestGangHeterogeneousConfigs runs members under different core configs
// (FDP on and off) in one gang; each must match its serial twin.
func TestGangHeterogeneousConfigs(t *testing.T) {
	prof, _ := workload.ByName("data-caching")
	tr := workload.Generate(prof, 50_000)
	prog := NewProgram(tr, branch.NewFrontEnd().Annotate(tr))

	on := DefaultConfig()
	off := DefaultConfig()
	off.UseFDP = false

	wantOn := NewSimulator(on, prog, gangTestSubs()[0], mem.New(mem.DefaultConfig())).Run(0)
	wantOff := NewSimulator(off, prog, gangTestSubs()[0], mem.New(mem.DefaultConfig())).Run(0)

	hiers := mem.NewGang(mem.DefaultConfig(), 2)
	got := NewGang(prog, []GangMember{
		{Cfg: on, Sub: gangTestSubs()[0], Hier: hiers[0]},
		{Cfg: off, Sub: gangTestSubs()[0], Hier: hiers[1]},
	}, 1024).Run(0)
	if got[0] != wantOn {
		t.Errorf("FDP-on member diverged: %+v != %+v", got[0], wantOn)
	}
	if got[1] != wantOff {
		t.Errorf("FDP-off member diverged: %+v != %+v", got[1], wantOff)
	}
}

// TestGangHeterogeneousPrefetchers mixes prefetcher platforms in one gang
// — FDP, no prefetching, next-line, and entangling — at several windows;
// every member must match its serial twin bit for bit. This is the
// cpu-level soundness fact behind cross-prefetcher gang rows: the shared
// Program and data-latency timeline are prefetcher-independent, all
// prefetcher-touched state is per-member.
func TestGangHeterogeneousPrefetchers(t *testing.T) {
	prof, _ := workload.ByName("web-search")
	tr := workload.Generate(prof, 50_000)
	prog := NewProgram(tr, branch.NewFrontEnd().Annotate(tr))

	cfgs := []func() Config{
		func() Config { return DefaultConfig() }, // FDP
		func() Config { c := DefaultConfig(); c.UseFDP = false; return c },
		func() Config {
			c := DefaultConfig()
			c.UseFDP = false
			c.Extra = prefetch.NewNextLine(1)
			return c
		},
		func() Config {
			c := DefaultConfig()
			c.UseFDP = false
			c.Extra = prefetch.NewEntangling(prefetch.DefaultEntanglingConfig())
			return c
		},
	}
	want := make([]Result, len(cfgs))
	for i, mk := range cfgs {
		want[i] = NewSimulator(mk(), prog, gangTestSubs()[0], mem.New(mem.DefaultConfig())).Run(5000)
	}
	for _, window := range []int{1, 1024, DefaultGangWindow, MaxGangWindow} {
		hiers := mem.NewGang(mem.DefaultConfig(), len(cfgs))
		members := make([]GangMember, len(cfgs))
		for i, mk := range cfgs {
			// Configs are rebuilt per gang: Extra prefetchers are stateful
			// and must be private to one simulation.
			members[i] = GangMember{Cfg: mk(), Sub: gangTestSubs()[0], Hier: hiers[i]}
		}
		got := NewGang(prog, members, window).Run(5000)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("window %d member %d: gang %+v != serial %+v", window, i, got[i], want[i])
			}
		}
	}
}

// TestAutoGangWindow pins the measured-window rule on representative
// budgets: a small budget (or one consumed by member state) floors at the
// fixed heuristic, a huge budget caps at MaxGangWindow, and a mid-range
// budget lands on the power-of-two floor of the byte arithmetic.
func TestAutoGangWindow(t *testing.T) {
	cases := []struct {
		name         string
		budget, per  int64
		members, bpi int
		want         int
	}{
		{"small budget floors", 8 << 20, 1 << 20, 10, 26, DefaultGangWindow},
		{"member state overflows budget", 4 << 20, 1 << 20, 10, 26, DefaultGangWindow},
		{"huge budget caps", 1 << 30, 1 << 20, 10, 26, MaxGangWindow},
		// (16M - 6M) / 16 = 655360 -> pow2 floor 524288.
		{"mid budget pow2 floor", 16 << 20, 1 << 20, 6, 16, 524288},
		{"zero bytes-per-instr clamps", 64 << 20, 1 << 20, 2, 0, MaxGangWindow},
	}
	for _, c := range cases {
		if got := AutoGangWindow(c.budget, c.per, c.members, c.bpi); got != c.want {
			t.Errorf("%s: AutoGangWindow(%d, %d, %d, %d) = %d, want %d",
				c.name, c.budget, c.per, c.members, c.bpi, got, c.want)
		}
	}
}

// TestGangBytesPerInstr sanity-bounds the measured per-instruction byte
// cost of a real program: at least the descriptor byte plus the timeline's
// int16, and nowhere near the pathological.
func TestGangBytesPerInstr(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	tr := workload.Generate(prof, 30_000)
	prog := NewProgram(tr, branch.NewFrontEnd().Annotate(tr))
	if got := prog.GangBytesPerInstr(); got < 3 || got > 64 {
		t.Errorf("GangBytesPerInstr() = %d, want a few tens of bytes", got)
	}
	if got := NewProgram(&trace.Trace{}, nil).GangBytesPerInstr(); got != 1 {
		t.Errorf("empty program GangBytesPerInstr() = %d, want 1", got)
	}
}

// TestGangEdgeCases covers the degenerate shapes: no members, one member,
// and an empty trace.
func TestGangEdgeCases(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	tr := workload.Generate(prof, 10_000)
	prog := NewProgram(tr, branch.NewFrontEnd().Annotate(tr))

	if res := NewGang(prog, nil, 0).Run(0); len(res) != 0 {
		t.Errorf("empty gang returned %d results", len(res))
	}

	sub := gangTestSubs()[0]
	want := NewSimulator(DefaultConfig(), prog, gangTestSubs()[0], mem.New(mem.DefaultConfig())).Run(0)
	hiers := mem.NewGang(mem.DefaultConfig(), 1)
	got := NewGang(prog, []GangMember{{Cfg: DefaultConfig(), Sub: sub, Hier: hiers[0]}}, 0).Run(0)
	if got[0] != want {
		t.Errorf("single-member gang %+v != serial %+v", got[0], want)
	}

	empty := NewProgram(&trace.Trace{}, nil)
	hiers = mem.NewGang(mem.DefaultConfig(), 1)
	res := NewGang(empty, []GangMember{{Cfg: DefaultConfig(), Sub: gangTestSubs()[0], Hier: hiers[0]}}, 0).Run(0)
	if res[0].Instructions != 0 {
		t.Errorf("empty trace retired %d instructions", res[0].Instructions)
	}
}

// TestDataLatenciesMatchReplay pins the timeline precompute against a
// direct hierarchy replay: the array must equal DataAccess called per
// memory instruction in order, and be stable across Ensure calls.
func TestDataLatenciesMatchReplay(t *testing.T) {
	prof, _ := workload.ByName("wikipedia")
	tr := workload.Generate(prof, 30_000)
	prog := NewProgram(tr, branch.NewFrontEnd().Annotate(tr))
	prog.EnsureDataLatencies(mem.DefaultConfig())

	h := mem.New(mem.DefaultConfig())
	saved := append([]int16(nil), prog.DataLat...)
	for i, d := range prog.Desc {
		want := int16(0)
		if d&(descLoad|descStore) != 0 {
			want = int16(h.DataAccess(prog.MemBlk[i]))
		}
		if saved[i] != want {
			t.Fatalf("DataLat[%d] = %d, replay says %d", i, saved[i], want)
		}
	}

	// A second same-config Ensure must be a no-op.
	prog.EnsureDataLatencies(mem.DefaultConfig())
	for i := range saved {
		if prog.DataLat[i] != saved[i] {
			t.Fatalf("EnsureDataLatencies recomputed the timeline at %d", i)
		}
	}

	// A different config would silently mis-time every load: it must panic.
	cfg := mem.DefaultConfig()
	cfg.L1DSets = 1
	cfg.L1DWays = 1
	defer func() {
		if recover() == nil {
			t.Error("EnsureDataLatencies with a mismatched config must panic")
		}
	}()
	prog.EnsureDataLatencies(cfg)
}
