// Gang simulation: one Program traversal drives every scheme in a row.
//
// The evaluation grid re-runs the same workload under many i-cache
// schemes. Each run used to walk the Program stream — descriptor bytes,
// collapsed block sequence, data-latency timeline — from cold host cache,
// once per scheme. A Gang instead advances N independent scheme
// simulations lock-step through a single traversal: members are visited
// round-robin over instruction windows, so a window's slice of the shared
// arrays is faulted into the host cache once and then re-read warm by the
// other N-1 members. Per-member state is laid out for the same rotation:
// the Simulator values sit in one contiguous slice (struct-of-gangs), and
// mem.NewGang carves all members' instruction-side level arrays out of
// shared backing allocations.
//
// Scheduling is the only thing a gang changes. Every member owns its full
// simulator state (timing, ROB, FDP stream, subsystem, hierarchy), the
// shared Program is read-only, and Simulator.runTo pauses exactly between
// the iterations the single-run loop executes — so each member's Result is
// bit-identical to a serial Simulator.Run at any window size, which
// TestGangMatchesSerial and the experiments-level differential test pin.
package cpu

import (
	"acic/internal/icache"
	"acic/internal/mem"
)

// GangMember is one scheme's slot in a gang: its core configuration (all
// members normally share a prefetch platform, but nothing requires it),
// i-cache subsystem, and private instruction-side hierarchy.
type GangMember struct {
	Cfg  Config
	Sub  icache.Subsystem
	Hier *mem.Hierarchy
}

// DefaultGangWindow is the default traversal window in instructions. It is
// a locality/overhead trade: small enough that a window's program slice
// (descriptor bytes, block sequence, data timeline — roughly 26B per
// instruction) stays resident while every member replays it, large enough
// that per-member suspend/resume cost vanishes. Results never depend on it.
const DefaultGangWindow = 8192

// MaxGangWindow caps the derived traversal window (AutoGangWindow). Beyond
// one million instructions a window exceeds most evaluated trace lengths,
// at which point rotation — and thus the window — stops mattering.
const MaxGangWindow = 1 << 20

// AutoGangWindow derives a traversal window from measured sizes instead of
// the fixed DefaultGangWindow heuristic. Out of budgetBytes of host cache
// (the effective LLC), members × perMemberBytes is claimed by the gang's
// per-member state — every member's hierarchy and subsystem arrays are
// touched each rotation — and the remainder bounds the shared window
// slice (bytesPerInstr of program arrays per instruction, measured by
// Program.GangBytesPerInstr). A larger window amortizes the per-rotation
// refault of member state, so the derivation picks the largest window
// whose slice still fits: (budget − members·perMember) / bytesPerInstr,
// clamped to [DefaultGangWindow, MaxGangWindow] and rounded down to a
// power of two. The floor at DefaultGangWindow means the derived window is
// never more rotation-heavy than the fixed heuristic; when member state
// alone overflows the budget, the floor is returned. Like every window,
// the result affects only host-cache behavior, never simulation results.
func AutoGangWindow(budgetBytes, perMemberBytes int64, members, bytesPerInstr int) int {
	if bytesPerInstr < 1 {
		bytesPerInstr = 1
	}
	w := (budgetBytes - int64(members)*perMemberBytes) / int64(bytesPerInstr)
	if w <= DefaultGangWindow {
		return DefaultGangWindow
	}
	if w > MaxGangWindow {
		w = MaxGangWindow
	}
	p := int64(DefaultGangWindow)
	for p<<1 <= w {
		p <<= 1
	}
	return int(p)
}

// GangBytesPerInstr measures the bytes of shared program arrays a gang
// traversal touches per instruction: the descriptor and data-block arrays,
// the collapsed block-access sequence, the run-ahead event bitmap, and the
// data-latency timeline (counted at its final size even before
// EnsureDataLatencies materializes it). AutoGangWindow uses this to size
// the window slice against the host cache budget.
func (p *Program) GangBytesPerInstr() int {
	n := int64(p.Len())
	if n == 0 {
		return 1
	}
	bytes := int64(len(p.Desc)) +
		8*int64(len(p.MemBlk)) +
		8*int64(len(p.Blocks)) +
		8*int64(len(p.runEvents)) +
		2*n // DataLat: one int16 per instruction once materialized
	per := bytes / n
	if per < 1 {
		per = 1
	}
	return int(per)
}

// Gang advances N independent scheme simulations through one traversal of
// a shared Program. Build with NewGang, run with Run.
type Gang struct {
	prog   *Program
	sims   []Simulator // contiguous member state, index-aligned with NewGang's members
	done   []bool
	window int
}

// NewGang assembles a gang over the shared program. window is the
// traversal window in instructions (<= 0 selects DefaultGangWindow); it
// affects only host-cache behavior, never results. Members must not share
// subsystems or hierarchies with each other.
func NewGang(prog *Program, members []GangMember, window int) *Gang {
	if window <= 0 {
		window = DefaultGangWindow
	}
	g := &Gang{
		prog:   prog,
		sims:   make([]Simulator, len(members)),
		done:   make([]bool, len(members)),
		window: window,
	}
	for i, m := range members {
		g.sims[i].init(m.Cfg, prog, m.Sub, m.Hier)
	}
	return g
}

// Members returns the number of simulations in the gang.
func (g *Gang) Members() int { return len(g.sims) }

// Window returns the traversal window the gang runs under (after default
// substitution), in instructions.
func (g *Gang) Window() int { return g.window }

// advance runs every unfinished member up to the fetch bound and returns
// how many are still running. It is the steady-state unit of gang
// execution and, like Simulator.step, must not allocate.
func (g *Gang) advance(bound int) int {
	remaining := 0
	for i := range g.sims {
		if g.done[i] {
			continue
		}
		if g.sims[i].runTo(bound) {
			g.done[i] = true
		} else {
			remaining++
		}
	}
	return remaining
}

// Run executes every member to completion, lock-step over instruction
// windows, and returns their Results in member order. warmupInstrs applies
// to each member exactly as in Simulator.Run.
func (g *Gang) Run(warmupInstrs int64) []Result {
	for i := range g.sims {
		g.sims[i].start(warmupInstrs)
	}
	n := g.prog.Len()
	for bound := g.window; bound < n; bound += g.window {
		g.advance(bound)
	}
	// Final pass: members fetch their last window and drain their ROBs at
	// their own pace; nothing is left to share.
	g.advance(maxInt)
	results := make([]Result, len(g.sims))
	for i := range g.sims {
		results[i] = g.sims[i].result()
	}
	return results
}
