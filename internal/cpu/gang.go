// Gang simulation: one Program traversal drives every scheme in a row.
//
// The evaluation grid re-runs the same workload under many i-cache
// schemes. Each run used to walk the Program stream — descriptor bytes,
// collapsed block sequence, data-latency timeline — from cold host cache,
// once per scheme. A Gang instead advances N independent scheme
// simulations lock-step through a single traversal: members are visited
// round-robin over instruction windows, so a window's slice of the shared
// arrays is faulted into the host cache once and then re-read warm by the
// other N-1 members. Per-member state is laid out for the same rotation:
// the Simulator values sit in one contiguous slice (struct-of-gangs), and
// mem.NewGang carves all members' instruction-side level arrays out of
// shared backing allocations.
//
// Scheduling is the only thing a gang changes. Every member owns its full
// simulator state (timing, ROB, FDP stream, subsystem, hierarchy), the
// shared Program is read-only, and Simulator.runTo pauses exactly between
// the iterations the single-run loop executes — so each member's Result is
// bit-identical to a serial Simulator.Run at any window size, which
// TestGangMatchesSerial and the experiments-level differential test pin.
package cpu

import (
	"acic/internal/icache"
	"acic/internal/mem"
)

// GangMember is one scheme's slot in a gang: its core configuration (all
// members normally share a prefetch platform, but nothing requires it),
// i-cache subsystem, and private instruction-side hierarchy.
type GangMember struct {
	Cfg  Config
	Sub  icache.Subsystem
	Hier *mem.Hierarchy
}

// DefaultGangWindow is the default traversal window in instructions. It is
// a locality/overhead trade: small enough that a window's program slice
// (descriptor bytes, block sequence, data timeline — roughly 26B per
// instruction) stays resident while every member replays it, large enough
// that per-member suspend/resume cost vanishes. Results never depend on it.
const DefaultGangWindow = 8192

// Gang advances N independent scheme simulations through one traversal of
// a shared Program. Build with NewGang, run with Run.
type Gang struct {
	prog   *Program
	sims   []Simulator // contiguous member state, index-aligned with NewGang's members
	done   []bool
	window int
}

// NewGang assembles a gang over the shared program. window is the
// traversal window in instructions (<= 0 selects DefaultGangWindow); it
// affects only host-cache behavior, never results. Members must not share
// subsystems or hierarchies with each other.
func NewGang(prog *Program, members []GangMember, window int) *Gang {
	if window <= 0 {
		window = DefaultGangWindow
	}
	g := &Gang{
		prog:   prog,
		sims:   make([]Simulator, len(members)),
		done:   make([]bool, len(members)),
		window: window,
	}
	for i, m := range members {
		g.sims[i].init(m.Cfg, prog, m.Sub, m.Hier)
	}
	return g
}

// Members returns the number of simulations in the gang.
func (g *Gang) Members() int { return len(g.sims) }

// advance runs every unfinished member up to the fetch bound and returns
// how many are still running. It is the steady-state unit of gang
// execution and, like Simulator.step, must not allocate.
func (g *Gang) advance(bound int) int {
	remaining := 0
	for i := range g.sims {
		if g.done[i] {
			continue
		}
		if g.sims[i].runTo(bound) {
			g.done[i] = true
		} else {
			remaining++
		}
	}
	return remaining
}

// Run executes every member to completion, lock-step over instruction
// windows, and returns their Results in member order. warmupInstrs applies
// to each member exactly as in Simulator.Run.
func (g *Gang) Run(warmupInstrs int64) []Result {
	for i := range g.sims {
		g.sims[i].start(warmupInstrs)
	}
	n := g.prog.Len()
	for bound := g.window; bound < n; bound += g.window {
		g.advance(bound)
	}
	// Final pass: members fetch their last window and drain their ROBs at
	// their own pace; nothing is left to share.
	g.advance(maxInt)
	results := make([]Result, len(g.sims))
	for i := range g.sims {
		results[i] = g.sims[i].result()
	}
	return results
}
