// Package cpu is the trace-driven timing model of the simulated core
// (Table II): a 6-wide decoupled front end with a fetch target queue that
// realizes fetch-directed prefetching (FDP), an i-cache subsystem slot where
// every evaluated scheme plugs in, and a 352-entry ROB backend that retires
// up to 6 instructions per cycle with data-side latencies taken from the
// workload's precomputed data timeline (Program.EnsureDataLatencies).
//
// The model is detailed where the paper's experiments live — the
// instruction supply path — and calibrated-approximate elsewhere: the
// backend executes instructions with class-based completion latencies and
// in-order retirement from a ROB-sized window, which preserves the relative
// cost of front-end stalls across schemes (the quantity all figures
// report). Wrong-path fetch effects are not modeled (standard for
// trace-driven simulation); branch redirects charge the Table II penalties.
package cpu

import (
	"fmt"
	"math/bits"
	"sync"

	"acic/internal/branch"
	"acic/internal/cache"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/prefetch"
	"acic/internal/trace"
)

// SampleConfig selects SDM-style set-sampled simulation: only the i-cache
// sets of one constituency (set index ≡ Offset mod Stride) are simulated.
// Demand fetches and prefetches to non-sampled constituencies bypass the
// i-cache subsystem and never stall the front end; the Result records the
// sampled access count so miss and stall statistics extrapolate back to
// the whole cache (Result.Extrapolated). The zero value disables sampling
// and leaves the simulation bit-identical to a build without this feature.
type SampleConfig struct {
	Stride int // simulate one in Stride set constituencies (0 or 1 = full)
	Offset int // which constituency, in [0, Stride)
}

// Enabled reports whether sampling is on.
func (c SampleConfig) Enabled() bool { return c.Stride > 1 }

// Validate reports an error for an unusable sampling configuration.
func (c SampleConfig) Validate() error {
	_, err := cache.NewSampleFilter(c.Stride, c.Offset)
	return err
}

// Filter returns the constituency filter (the zero filter when disabled).
// It panics on an invalid configuration; call Validate first on untrusted
// values.
func (c SampleConfig) Filter() cache.SampleFilter {
	f, err := cache.NewSampleFilter(c.Stride, c.Offset)
	if err != nil {
		panic(fmt.Sprintf("cpu: %v", err))
	}
	return f
}

// Config are the core parameters (Table II defaults via DefaultConfig).
type Config struct {
	FetchWidth        int   // instructions fetched per cycle (6)
	FTQBlocks         int   // FDP run-ahead depth in fetch blocks (24)
	ROB               int   // reorder-buffer entries (352)
	RetireWidth       int   // instructions retired per cycle (6)
	PipelineDepth     int64 // fetch-to-complete depth for non-memory ops
	MispredictPenalty int64 // execute-resolved redirect penalty
	MisfetchPenalty   int64 // decode-resolved redirect penalty (BTB miss)
	MaxPrefetches     int   // outstanding prefetch limit (L1i MSHRs, 16)
	PrefetchPerCycle  int   // prefetch issue bandwidth
	L2ServiceInterval int64 // min cycles between instruction-side L2 requests

	UseFDP bool // enable the fetch-directed prefetcher
	// Extra is an additional table-driven prefetcher (e.g. entangling);
	// nil for none.
	Extra prefetch.Prefetcher

	// Sample enables set-sampled simulation (zero value = full simulation).
	Sample SampleConfig
}

// DefaultConfig returns the Table II core with FDP enabled.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        6,
		FTQBlocks:         24,
		ROB:               352,
		RetireWidth:       6,
		PipelineDepth:     12,
		MispredictPenalty: 14,
		MisfetchPenalty:   6,
		MaxPrefetches:     8,
		PrefetchPerCycle:  1,
		L2ServiceInterval: 4,
		UseFDP:            true,
	}
}

// Result reports the simulation outcome, measured after warmup.
type Result struct {
	Cycles        int64
	Instructions  int64
	BlockAccesses int64

	DemandMisses uint64 // demand fetches that missed (incl. late prefetches)
	LateMisses   uint64 // demand fetches that hit an in-flight prefetch
	Prefetches   uint64 // prefetches issued

	// Stall breakdown: cycles the front end spent waiting on instruction
	// fills vs. branch redirects (disjoint; the remainder of the cycle
	// budget is productive fetch or backend-bound).
	IMissStallCycles    int64
	RedirectStallCycles int64

	// Set-sampling provenance. SampleStride is the stride the run was
	// simulated under (0 = full simulation); SampledAccesses counts the
	// post-warmup demand accesses that fell in the sampled constituencies.
	// Raw sampled counters cover the sampled subset only, until
	// Extrapolated scales them back to the whole cache.
	SampleStride    int
	SampledAccesses int64

	ICache icache.Stats // subsystem counters over the whole run (incl. warmup)
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MPKI returns demand L1i misses per kilo-instruction.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.DemandMisses) / float64(r.Instructions)
}

// Extrapolated scales a set-sampled Result back to the whole cache; it
// returns the receiver unchanged for a full-simulation run. Demand misses,
// late misses, prefetches, and i-miss stall cycles are multiplied by the
// measured access ratio (total demand accesses over sampled demand
// accesses — more faithful than the configured stride when constituencies
// see uneven traffic), and the cycle count absorbs the scaled-up stall so
// speedups computed from sampled cells are first-order comparable to full
// runs. The ICache stats are left as measured — they are the sampled
// subset's ground truth, and every rate derived from them (miss rate,
// filter-hit fraction) is already scale-free. DESIGN.md §10 documents the
// error model and the validated bounds.
func (r Result) Extrapolated() Result {
	if r.SampleStride <= 1 {
		return r
	}
	scale := float64(r.SampleStride)
	if r.SampledAccesses > 0 {
		scale = float64(r.BlockAccesses) / float64(r.SampledAccesses)
	}
	round := func(v uint64) uint64 { return uint64(float64(v)*scale + 0.5) }
	out := r
	out.DemandMisses = round(r.DemandMisses)
	out.LateMisses = round(r.LateMisses)
	out.Prefetches = round(r.Prefetches)
	out.IMissStallCycles = int64(float64(r.IMissStallCycles)*scale + 0.5)
	out.Cycles = r.Cycles + (out.IMissStallCycles - r.IMissStallCycles)
	return out
}

// inflight tracks outstanding prefetches.
type inflight struct {
	block   uint64
	readyAt int64
}

// Per-instruction descriptor bits, precomputed in NewProgram. The fetch
// and run-ahead loops each visit every dynamic instruction; one descriptor
// byte answers their common questions (does this instruction open a new
// fetch block / touch memory / end the fetch group / redirect the front
// end) without loading the 32-byte Inst record or the branch annotation,
// which cuts the loops' memory traffic to a sequential byte stream.
const (
	descNewBlock uint8 = 1 << iota // first instruction of a block access
	descLoad
	descStore
	descGroupEnd // taken branch: ends the fetch group
	descMispredict
	descMisfetch

	descRunEvent = descNewBlock | descMispredict | descMisfetch
)

// Program is a trace preprocessed for simulation: flat, scheme-independent
// per-instruction and per-access arrays that every scheme run over a
// workload shares. The simulation loops read only these arrays — the
// descriptor byte stream, the collapsed block-access sequence (one uint64
// per access, indexed by access index), and the data-block array for
// memory operations — never the 32-byte Inst records, which matters when
// the per-access budget is a few hundred nanoseconds.
type Program struct {
	Trace  *trace.Trace
	Ann    []branch.Annotation
	Desc   []uint8  // descriptor byte per instruction
	Blocks []uint64 // collapsed block-access sequence (== Trace.BlockAccesses())
	MemBlk []uint64 // data block per instruction (loads/stores; 0 otherwise)

	// DataLat is the data-side latency timeline: the load-to-use latency,
	// in cycles, of the memory operation at each instruction index (0 for
	// non-memory instructions). The data-access sequence is fixed by
	// instruction order — the front end issues every load and store exactly
	// once, in order, regardless of i-cache scheme or timing — so the
	// timeline is scheme-independent and computed once per workload by
	// EnsureDataLatencies. Populated lazily by NewSimulator when the caller
	// has not done it explicitly.
	DataLat []int16

	dataLatOnce sync.Once
	dataLatCfg  mem.Config

	// runEvents is a bitmap over instructions with a run-ahead event bit
	// (descRunEvent) set, letting the run-ahead walker skip straight-line
	// stretches 64 instructions per word instead of byte by byte.
	runEvents []uint64

	// Sampled-lane index (built lazily by ensureSampleIndex, shared by
	// every scheme cell over this workload): samplePace is the cumulative
	// fetch-slot prefix (group-end, redirect-penalty, and roundup costs
	// baked in) that converts an instruction index to a fetch cycle with
	// one add and one divide; sampleEvents flags redirects and the
	// long-latency loads whose completions can back up the ROB; and
	// sampleAccInstr maps each block access to its first instruction.
	// sampleAccK/sampleAccA list the accesses of one constituency filter
	// (instruction index and access index), cached per filter under
	// sampleListMu so the walk visits only sampled accesses.
	samplePace     []int64
	sampleEvents   []uint64
	sampleAccInstr []int32
	sampleOnce     sync.Once

	sampleListMu     sync.Mutex
	sampleListFilter cache.SampleFilter
	sampleAccK       []int32
	sampleAccA       []int32
}

// EnsureDataLatencies computes the data-side latency timeline by replaying
// the program's loads and stores, in instruction order, through a fresh
// data hierarchy of the given configuration. It runs at most once per
// Program (subsequent same-config calls, even concurrent ones, are
// no-ops), so N scheme simulations over one workload pay for the data
// side once instead of N times. A Program is bound to one hierarchy
// configuration: asking for a timeline under a different config would
// silently hand every simulation the wrong latencies, so it panics
// instead — build a separate Program to simulate another hierarchy.
func (p *Program) EnsureDataLatencies(cfg mem.Config) {
	p.dataLatOnce.Do(func() {
		h := mem.New(cfg)
		lat := make([]int16, len(p.Desc))
		for i, d := range p.Desc {
			if d&(descLoad|descStore) != 0 {
				lat[i] = int16(h.DataAccess(p.MemBlk[i]))
			}
		}
		p.DataLat = lat
		p.dataLatCfg = cfg
	})
	if p.dataLatCfg != cfg {
		panic("cpu: data-latency timeline was computed under a different mem.Config; use one Program per hierarchy configuration")
	}
}

// nextRunEvent returns the smallest index >= i whose descriptor carries a
// run-ahead event bit, or n when none remains.
func (p *Program) nextRunEvent(i, n int) int {
	w := i >> 6
	word := p.runEvents[w] & (^uint64(0) << uint(i&63))
	for word == 0 {
		w++
		if w >= len(p.runEvents) {
			return n
		}
		word = p.runEvents[w]
	}
	if j := w<<6 + bits.TrailingZeros64(word); j < n {
		return j
	}
	return n
}

// NewProgram preprocesses tr under its branch annotations ann
// (branch.FrontEnd.Annotate) in one pass.
func NewProgram(tr *trace.Trace, ann []branch.Annotation) *Program {
	if len(ann) != len(tr.Insts) {
		panic("cpu: annotation length mismatch")
	}
	p := &Program{
		Trace:     tr,
		Ann:       ann,
		Desc:      make([]uint8, len(tr.Insts)),
		Blocks:    make([]uint64, 0, len(tr.Insts)/4+1),
		MemBlk:    make([]uint64, len(tr.Insts)),
		runEvents: make([]uint64, (len(tr.Insts)+63)/64+1),
	}
	var prevBlock uint64
	for i := range tr.Insts {
		in := &tr.Insts[i]
		var d uint8
		b := in.Block()
		if i == 0 || b != prevBlock {
			d |= descNewBlock
			p.Blocks = append(p.Blocks, b)
		}
		prevBlock = b
		switch in.Class {
		case trace.ClassLoad:
			d |= descLoad
			p.MemBlk[i] = trace.Block(in.MemAddr)
		case trace.ClassStore:
			d |= descStore
			p.MemBlk[i] = trace.Block(in.MemAddr)
		}
		if in.Class.IsBranch() && (in.Class != trace.ClassCondBranch || in.Taken) {
			d |= descGroupEnd
		}
		switch ann[i].Redirect {
		case branch.RedirectMispredict:
			d |= descMispredict
		case branch.RedirectMisfetch:
			d |= descMisfetch
		}
		p.Desc[i] = d
		if d&descRunEvent != 0 {
			p.runEvents[i>>6] |= 1 << uint(i&63)
		}
	}
	return p
}

// Len returns the number of dynamic instructions.
func (p *Program) Len() int { return len(p.Desc) }

// Simulator runs one (trace, scheme) simulation.
type Simulator struct {
	cfg  Config
	sub  icache.Subsystem
	hier *mem.Hierarchy
	prog *Program

	// Timing state.
	cycle       int64
	stallUntil  int64
	stallIsMiss bool    // current stall reason: true = instruction fill
	rob         []int64 // completion cycles, ring buffer
	robHead     int
	robLen      int

	// Fetch state.
	fetchIdx  int
	lastBlock uint64
	haveBlock bool
	retrying  bool // current instruction's demand access already performed (stall retry)
	accessIdx int64

	// FDP run-ahead state.
	runIdx       int
	runLastBlk   uint64
	runHaveBlk   bool
	runSkipIssue bool // current run-ahead event already counted; skip its issue on retry
	runAccesses  int64
	blockedAt    int // trace index of the mispredict blocking run-ahead (-1 none)

	// Prefetch state.
	pfInFlight  []inflight
	pfScratch   []uint64
	pfNextReady int64 // earliest readyAt in pfInFlight (scan gate)
	l2NextFree  int64 // instruction-side L2 port availability (bandwidth)

	// Set-sampling state (SDM fast lane; see sampled.go). sampleMask/
	// sampleMatch are the constituency filter of cfg.Sample, denormalized
	// so the hot-path test is one compare; mask 0 means full simulation
	// and routes runTo through the reference cycle loop.
	sampleMask      uint64
	sampleMatch     uint64
	sampledAccesses int64   // demand accesses in the sampled constituencies
	paceBase        int64   // fetch-slot offset: fc(k) = (paceBase+pace[k])/width
	lastRedirect    int64   // pace slot the last front-end redirect resolved at
	mshr            []int64 // readyAt of in-flight emulated FDP prefetches
	saK, saA        []int32 // this run's sampled-access list (Program-cached)
	saCursor        int     // next sampled access to process
	vtRetire6       int64   // retire chain anchor: completion in retire slots
	vtIdx           int     // instruction index of the chain anchor
	gateIdx         int     // next one-shot ROB-full check (maxInt = none)
	sampledDone     bool    // final ROB drain already charged

	// Pace-rebase history: the slot offsets in force before each of the
	// most recent stalls, so the FTQ-window lookback can reconstruct the
	// exact consumption slot of an access that predates a rebase (stalls
	// only happen at sampled accesses, so a handful of entries always
	// covers the FTQBlocks window).
	rebIdx [rebaseRing]int32
	rebVal [rebaseRing]int64
	rebPos int

	// Counters.
	demandMisses  uint64
	lateMisses    uint64
	prefetches    uint64
	instructions  int64
	imissStall    int64
	redirectStall int64

	// Warmup accounting (start/result). Kept on the simulator rather than
	// in Run's frame so a gang can suspend and resume a member mid-run.
	warmupInstrs      int64
	warmupTaken       bool
	wCycles, wInstr   int64
	wBlocks, wSampled int64
	wIStall, wRStall  int64
	wMiss, wLate, wPf uint64
}

// NewSimulator assembles a simulation of the preprocessed program over the
// given i-cache subsystem and hierarchy. The Program is immutable and
// shared: build it once per workload (NewProgram) and hand it to every
// scheme's simulator. The program's data-side latency timeline is
// precomputed here (a no-op when the workload already did it).
func NewSimulator(cfg Config, prog *Program, sub icache.Subsystem, hier *mem.Hierarchy) *Simulator {
	s := new(Simulator)
	s.init(cfg, prog, sub, hier)
	return s
}

// init readies a (possibly embedded) simulator value; NewGang uses it to
// lay its members out contiguously.
func (s *Simulator) init(cfg Config, prog *Program, sub icache.Subsystem, hier *mem.Hierarchy) {
	prog.EnsureDataLatencies(hier.Config())
	filter := cfg.Sample.Filter() // panics on an invalid sampling config
	if filter.Enabled() {
		// The sampled constituencies keep their private behavior, but the
		// fetch-path resources shared across all sets serve 1/stride of
		// their full-run traffic, which would make prefetching unrealistically
		// effective (no MSHR contention, an idle L2 port) and bias sampled
		// miss/stall rates low. Scale them to the sampled fraction so per-
		// request contention matches the full run: 1/stride of the MSHRs,
		// and an L2 port stride× slower per request (equal utilization at
		// 1/stride the request rate).
		stride := int64(filter.Stride())
		cfg.MaxPrefetches = int(max(1, int64(cfg.MaxPrefetches)/stride))
		cfg.L2ServiceInterval *= stride
	}
	*s = Simulator{
		cfg:         cfg,
		sub:         sub,
		hier:        hier,
		prog:        prog,
		rob:         make([]int64, cfg.ROB),
		pfInFlight:  make([]inflight, 0, cfg.MaxPrefetches),
		blockedAt:   -1,
		sampleMask:  filter.Mask,
		sampleMatch: filter.Match,
	}
	if filter.Enabled() {
		prog.ensureSampleIndex(cfg.FetchWidth, cfg.MispredictPenalty, cfg.MisfetchPenalty)
		s.saK, s.saA = prog.sampledAccessList(filter)
		s.gateIdx = maxInt
		s.mshr = make([]int64, 0, cfg.MaxPrefetches)
	}
}

// maxInt is an unreachable fetch bound: runTo(maxInt) runs to completion.
const maxInt = int(^uint(0) >> 1)

// Run executes the simulation, treating the first warmupInstrs instructions
// as warmup (excluded from the reported Result timing/counters).
func (s *Simulator) Run(warmupInstrs int64) Result {
	s.start(warmupInstrs)
	s.runTo(maxInt)
	return s.result()
}

// start arms warmup accounting; call once, before the first runTo.
func (s *Simulator) start(warmupInstrs int64) {
	s.warmupInstrs = warmupInstrs
	s.warmupTaken = warmupInstrs <= 0
}

// runTo advances the simulation until the next instruction to fetch is at
// or past bound, or the program has fully retired (then it returns true).
// The state after runTo(b1); runTo(b2) is identical to the state the
// single-run loop passes through — bounds only choose where the loop
// pauses — which is what makes gang scheduling result-preserving. A
// set-sampled simulation routes through the event-driven sampled loop
// instead (sampled.go), with the same bound/pause contract.
func (s *Simulator) runTo(bound int) bool {
	if s.sampleMask != 0 {
		return s.runSampledTo(bound)
	}
	n := s.prog.Len()
	for s.fetchIdx < n || s.robLen > 0 {
		if s.fetchIdx >= bound && s.fetchIdx < n {
			return false
		}
		s.step()
		if !s.warmupTaken && s.instructions >= s.warmupInstrs {
			s.wCycles, s.wInstr, s.wBlocks = s.cycle, s.instructions, s.accessIdx
			s.wMiss, s.wLate, s.wPf = s.demandMisses, s.lateMisses, s.prefetches
			s.wIStall, s.wRStall = s.imissStall, s.redirectStall
			s.wSampled = s.sampledAccesses
			s.warmupTaken = true
		}
		// Quiescent-stall fast-forward: while the front end is stalled, a
		// cycle can only matter if the ROB head completes, a prefetch fill
		// lands, or the run-ahead stream advances. When the stream is
		// gated (blocked on a redirect, FTQ full, or past the trace end —
		// all conditions only fetch progress can change) and neither
		// completion is due, every intermediate cycle is a pure idle tick:
		// jump to the earliest event and account the skipped cycles to the
		// active stall counter. Observable state is identical to stepping.
		if s.cycle < s.stallUntil &&
			(s.robLen == 0 || s.rob[s.robHead] > s.cycle) &&
			(len(s.pfInFlight) == 0 || s.pfNextReady > s.cycle) {
			gated := !s.cfg.UseFDP || s.fetchIdx >= n || s.runIdx >= n ||
				(s.blockedAt >= 0 && s.fetchIdx <= s.blockedAt) ||
				s.runAccesses-s.accessIdx >= int64(s.cfg.FTQBlocks)
			if gated {
				target := s.stallUntil
				if s.robLen > 0 && s.rob[s.robHead] < target {
					target = s.rob[s.robHead]
				}
				if len(s.pfInFlight) > 0 && s.pfNextReady < target {
					target = s.pfNextReady
				}
				if skipped := target - s.cycle; skipped > 0 {
					s.cycle = target
					if s.stallIsMiss {
						s.imissStall += skipped
					} else {
						s.redirectStall += skipped
					}
				}
			}
		}
	}
	return true
}

// result reports the post-warmup counters of a completed run.
func (s *Simulator) result() Result {
	r := Result{
		Cycles:              s.cycle - s.wCycles,
		Instructions:        s.instructions - s.wInstr,
		BlockAccesses:       s.accessIdx - s.wBlocks,
		DemandMisses:        s.demandMisses - s.wMiss,
		LateMisses:          s.lateMisses - s.wLate,
		Prefetches:          s.prefetches - s.wPf,
		IMissStallCycles:    s.imissStall - s.wIStall,
		RedirectStallCycles: s.redirectStall - s.wRStall,
		ICache:              s.sub.Stats(),
	}
	if s.sampleMask != 0 {
		r.SampleStride = int(s.sampleMask) + 1
		r.SampledAccesses = s.sampledAccesses - s.wSampled
	}
	return r
}

// step advances the simulation by one core cycle. It is the unit the
// steady-state allocation guard measures: after warmup, a step must not
// allocate (testing.AllocsPerRun == 0), which keeps the per-access cost of
// wide sweeps bounded by arithmetic and cache misses rather than GC.
func (s *Simulator) step() {
	s.retire()
	s.completePrefetches()
	if s.cfg.UseFDP && s.fetchIdx < s.prog.Len() {
		s.runAhead()
	}
	s.fetch()
	s.cycle++
}

// done reports whether the simulation has retired everything.
func (s *Simulator) done() bool { return s.fetchIdx >= s.prog.Len() && s.robLen == 0 }

// retire pops completed instructions from the ROB head.
func (s *Simulator) retire() {
	rob := s.rob
	for k := 0; k < s.cfg.RetireWidth && s.robLen > 0; k++ {
		if rob[s.robHead] > s.cycle {
			return
		}
		// Conditional wrap instead of modulo: ROB size is not a power of
		// two, and an integer division per retired instruction is
		// measurable in the cycle loop.
		s.robHead++
		if s.robHead == len(rob) {
			s.robHead = 0
		}
		s.robLen--
	}
}

// completePrefetches installs prefetches whose fill latency elapsed. The
// in-flight list is scanned only when the earliest completion is due — the
// loop runs every cycle, and most cycles nothing completes.
func (s *Simulator) completePrefetches() {
	if len(s.pfInFlight) == 0 || s.cycle < s.pfNextReady {
		return
	}
	kept := s.pfInFlight[:0]
	nextReady := int64(1)<<62 - 1
	for _, pf := range s.pfInFlight {
		if pf.readyAt <= s.cycle {
			s.sub.PrefetchFill(pf.block, s.accessIdx, s.cycle)
		} else {
			if pf.readyAt < nextReady {
				nextReady = pf.readyAt
			}
			kept = append(kept, pf)
		}
	}
	s.pfInFlight = kept
	s.pfNextReady = nextReady
}

func (s *Simulator) prefetchPending(block uint64) (int64, bool) {
	for _, pf := range s.pfInFlight {
		if pf.block == block {
			return pf.readyAt, true
		}
	}
	return 0, false
}

// issuePrefetch starts a prefetch for block unless redundant.
func (s *Simulator) issuePrefetch(block uint64) bool {
	if len(s.pfInFlight) >= s.cfg.MaxPrefetches {
		return false
	}
	if s.sub.Contains(block) {
		return true // redundant; costs nothing, does not consume an MSHR
	}
	if _, pending := s.prefetchPending(block); pending {
		return true
	}
	readyAt := s.instrFillReady(block)
	if len(s.pfInFlight) == 0 || readyAt < s.pfNextReady {
		s.pfNextReady = readyAt
	}
	s.pfInFlight = append(s.pfInFlight, inflight{block: block, readyAt: readyAt})
	s.prefetches++
	return true
}

// instrFillReady reserves the instruction-side L2 port and returns when the
// fill for block completes. The port models finite L2 bandwidth: a scheme
// that turns the FDP stream into a firehose (by discarding blocks and
// re-prefetching them) queues behind its own traffic, as it would in
// hardware.
func (s *Simulator) instrFillReady(block uint64) int64 {
	start := s.cycle
	if s.l2NextFree > start {
		start = s.l2NextFree
	}
	s.l2NextFree = start + s.cfg.L2ServiceInterval
	return start + s.hier.InstrMiss(block)
}

// runAhead advances the FDP fetch-target-queue pointer and issues
// prefetches for upcoming fetch blocks. The run-ahead stream follows the
// branch predictor, so it stops at a branch the predictor gets wrong and
// resumes once fetch passes the resolved branch.
func (s *Simulator) runAhead() {
	if s.blockedAt >= 0 {
		if s.fetchIdx <= s.blockedAt {
			return
		}
		s.blockedAt = -1
	}
	if s.runIdx < s.fetchIdx {
		s.runIdx = s.fetchIdx
		s.runHaveBlk = s.haveBlock
		s.runLastBlk = s.lastBlock
		s.runAccesses = s.accessIdx
		// Fetch stalled retrying the instruction at fetchIdx means its
		// demand access is already counted in accessIdx: suppress that
		// event's issue (keeping the access counter aligned with the
		// collapsed block sequence) but still process its redirect bits —
		// a mispredicted branch at the retried block start must block the
		// stream exactly as the per-instruction walk did.
		s.runSkipIssue = s.retrying
	}
	issued := 0
	n := s.prog.Len()
	for s.runIdx < n && issued < s.cfg.PrefetchPerCycle {
		d := s.prog.Desc[s.runIdx]
		if d&descRunEvent == 0 {
			// Same block, no redirect: nothing for the run-ahead stream to
			// do until the next event; jump there via the event bitmap.
			s.runIdx = s.prog.nextRunEvent(s.runIdx, n)
			continue
		}
		if s.runAccesses-s.accessIdx >= int64(s.cfg.FTQBlocks) {
			return
		}
		if d&descNewBlock != 0 {
			if s.runSkipIssue {
				// This event's access was counted on a previous attempt
				// that found the MSHRs full; the stream does not re-issue
				// it (the block comparison against the already-updated
				// run-ahead state used to absorb it).
				s.runSkipIssue = false
			} else {
				// The run-ahead access counter indexes the collapsed
				// sequence, so the upcoming block is one array read.
				b := s.prog.Blocks[s.runAccesses]
				if !s.runHaveBlk || b != s.runLastBlk {
					s.runHaveBlk = true
					s.runLastBlk = b
					s.runAccesses++
					if !s.issuePrefetch(b) {
						s.runSkipIssue = true
						return // MSHRs full
					}
					issued++
				}
			}
		}
		if d&(descMispredict|descMisfetch) != 0 {
			// The run-ahead stream cannot proceed past a branch the front
			// end will get wrong: a mispredicted direction sends it down
			// the wrong path, and a BTB miss leaves it with no target to
			// follow. Resume once fetch resolves the branch.
			s.blockedAt = s.runIdx
			s.runIdx++
			return
		}
		s.runIdx++
	}
}

// fetch supplies up to FetchWidth instructions into the ROB.
func (s *Simulator) fetch() {
	if s.cycle < s.stallUntil {
		if s.stallIsMiss {
			s.imissStall++
		} else {
			s.redirectStall++
		}
		return
	}
	desc := s.prog.Desc
	for f := 0; f < s.cfg.FetchWidth; f++ {
		if s.fetchIdx >= len(desc) || s.robLen >= len(s.rob) {
			return
		}
		d := desc[s.fetchIdx]
		if d&descNewBlock != 0 {
			// The descriptor flags the first instruction of a block access;
			// the accessIdx counter indexes the collapsed sequence, so the
			// demanded block is one array read. A stalled fetch retries
			// this instruction after its demand access already ran; the
			// retrying flag keeps the retry from double-counting.
			if s.retrying {
				s.retrying = false
			} else if !s.demandAccess(s.prog.Blocks[s.accessIdx]) {
				s.retrying = true
				return // miss: front end stalls until the fill arrives
			}
		}

		// Dispatch into the ROB with a class-based completion time. Loads
		// take their latency from the precomputed data-side timeline (the
		// data hierarchy was replayed once per workload); stores retire
		// through the store buffer and do not delay completion, so their
		// hierarchy effect lives entirely in the precompute.
		completion := s.cycle + s.cfg.PipelineDepth
		if d&descLoad != 0 {
			completion += int64(s.prog.DataLat[s.fetchIdx])
		}
		tail := s.robHead + s.robLen
		if tail >= len(s.rob) {
			tail -= len(s.rob)
		}
		s.rob[tail] = completion
		s.robLen++
		s.instructions++
		s.fetchIdx++

		// Front-end redirects end the fetch group.
		if d&(descMispredict|descMisfetch) != 0 {
			if d&descMispredict != 0 {
				s.stallUntil = s.cycle + s.cfg.MispredictPenalty
			} else {
				s.stallUntil = s.cycle + s.cfg.MisfetchPenalty
			}
			s.stallIsMiss = false
			return
		}
		// A taken branch ends the fetch group (new fetch target next cycle).
		if d&descGroupEnd != 0 {
			return
		}
	}
}

// demandAccess performs the block-granular demand fetch; returns true when
// the block supplied instructions this cycle (hit), false when the front
// end must stall for a fill.
func (s *Simulator) demandAccess(b uint64) bool {
	s.haveBlock = true
	s.lastBlock = b
	s.accessIdx++
	idx := s.accessIdx - 1

	if readyAt, pending := s.prefetchPending(b); pending {
		// Late prefetch: the block is in flight. Install it now, charge
		// the residual latency, and count a demand miss.
		s.removeInFlight(b)
		s.sub.PrefetchFill(b, idx, s.cycle)
		s.sub.Fetch(b, idx, s.cycle)
		s.demandMisses++
		s.lateMisses++
		s.extraPrefetch(b, true)
		if readyAt > s.cycle {
			s.stallUntil = readyAt
			s.stallIsMiss = true
			return false
		}
		return true
	}

	hit := s.sub.Fetch(b, idx, s.cycle)
	if hit {
		s.extraPrefetch(b, false)
		return true
	}
	s.demandMisses++
	s.stallUntil = s.instrFillReady(b)
	s.stallIsMiss = true
	s.extraPrefetch(b, true)
	return false
}

func (s *Simulator) removeInFlight(block uint64) {
	for i := range s.pfInFlight {
		if s.pfInFlight[i].block == block {
			s.pfInFlight[i] = s.pfInFlight[len(s.pfInFlight)-1]
			s.pfInFlight = s.pfInFlight[:len(s.pfInFlight)-1]
			return
		}
	}
}

// extraPrefetch drives the optional table prefetcher (entangling).
func (s *Simulator) extraPrefetch(block uint64, miss bool) {
	if s.cfg.Extra == nil {
		return
	}
	s.pfScratch = s.cfg.Extra.OnAccess(block, s.cycle, miss, s.pfScratch[:0])
	for _, c := range s.pfScratch {
		s.issuePrefetch(c)
	}
}
