// Package cpu is the trace-driven timing model of the simulated core
// (Table II): a 6-wide decoupled front end with a fetch target queue that
// realizes fetch-directed prefetching (FDP), an i-cache subsystem slot where
// every evaluated scheme plugs in, and a 352-entry ROB backend that retires
// up to 6 instructions per cycle with data-side latencies taken from the
// shared memory hierarchy.
//
// The model is detailed where the paper's experiments live — the
// instruction supply path — and calibrated-approximate elsewhere: the
// backend executes instructions with class-based completion latencies and
// in-order retirement from a ROB-sized window, which preserves the relative
// cost of front-end stalls across schemes (the quantity all figures
// report). Wrong-path fetch effects are not modeled (standard for
// trace-driven simulation); branch redirects charge the Table II penalties.
package cpu

import (
	"acic/internal/branch"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/prefetch"
	"acic/internal/trace"
)

// Config are the core parameters (Table II defaults via DefaultConfig).
type Config struct {
	FetchWidth        int   // instructions fetched per cycle (6)
	FTQBlocks         int   // FDP run-ahead depth in fetch blocks (24)
	ROB               int   // reorder-buffer entries (352)
	RetireWidth       int   // instructions retired per cycle (6)
	PipelineDepth     int64 // fetch-to-complete depth for non-memory ops
	MispredictPenalty int64 // execute-resolved redirect penalty
	MisfetchPenalty   int64 // decode-resolved redirect penalty (BTB miss)
	MaxPrefetches     int   // outstanding prefetch limit (L1i MSHRs, 16)
	PrefetchPerCycle  int   // prefetch issue bandwidth
	L2ServiceInterval int64 // min cycles between instruction-side L2 requests

	UseFDP bool // enable the fetch-directed prefetcher
	// Extra is an additional table-driven prefetcher (e.g. entangling);
	// nil for none.
	Extra prefetch.Prefetcher
}

// DefaultConfig returns the Table II core with FDP enabled.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        6,
		FTQBlocks:         24,
		ROB:               352,
		RetireWidth:       6,
		PipelineDepth:     12,
		MispredictPenalty: 14,
		MisfetchPenalty:   6,
		MaxPrefetches:     8,
		PrefetchPerCycle:  1,
		L2ServiceInterval: 4,
		UseFDP:            true,
	}
}

// Result reports the simulation outcome, measured after warmup.
type Result struct {
	Cycles        int64
	Instructions  int64
	BlockAccesses int64

	DemandMisses uint64 // demand fetches that missed (incl. late prefetches)
	LateMisses   uint64 // demand fetches that hit an in-flight prefetch
	Prefetches   uint64 // prefetches issued

	// Stall breakdown: cycles the front end spent waiting on instruction
	// fills vs. branch redirects (disjoint; the remainder of the cycle
	// budget is productive fetch or backend-bound).
	IMissStallCycles    int64
	RedirectStallCycles int64

	ICache icache.Stats // subsystem counters over the whole run (incl. warmup)
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MPKI returns demand L1i misses per kilo-instruction.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.DemandMisses) / float64(r.Instructions)
}

// inflight tracks outstanding prefetches.
type inflight struct {
	block   uint64
	readyAt int64
}

// Simulator runs one (trace, scheme) simulation.
type Simulator struct {
	cfg  Config
	sub  icache.Subsystem
	hier *mem.Hierarchy
	tr   *trace.Trace
	ann  []branch.Annotation

	// Timing state.
	cycle       int64
	stallUntil  int64
	stallIsMiss bool    // current stall reason: true = instruction fill
	rob         []int64 // completion cycles, ring buffer
	robHead     int
	robLen      int

	// Fetch state.
	fetchIdx  int
	lastBlock uint64
	haveBlock bool
	accessIdx int64

	// FDP run-ahead state.
	runIdx      int
	runLastBlk  uint64
	runHaveBlk  bool
	runAccesses int64
	blockedAt   int // trace index of the mispredict blocking run-ahead (-1 none)

	// Prefetch state.
	pfInFlight []inflight
	pfScratch  []uint64
	l2NextFree int64 // instruction-side L2 port availability (bandwidth)

	// Counters.
	demandMisses  uint64
	lateMisses    uint64
	prefetches    uint64
	instructions  int64
	imissStall    int64
	redirectStall int64
}

// NewSimulator assembles a simulation of tr over the given i-cache
// subsystem and hierarchy. ann must be the branch annotations of tr
// (branch.FrontEnd.Annotate); they are scheme-independent and reusable.
func NewSimulator(cfg Config, tr *trace.Trace, ann []branch.Annotation, sub icache.Subsystem, hier *mem.Hierarchy) *Simulator {
	if len(ann) != len(tr.Insts) {
		panic("cpu: annotation length mismatch")
	}
	return &Simulator{
		cfg:       cfg,
		sub:       sub,
		hier:      hier,
		tr:        tr,
		ann:       ann,
		rob:       make([]int64, cfg.ROB),
		blockedAt: -1,
	}
}

// Run executes the simulation, treating the first warmupInstrs instructions
// as warmup (excluded from the reported Result timing/counters).
func (s *Simulator) Run(warmupInstrs int64) Result {
	var wCycles, wInstr, wBlocks, wIStall, wRStall int64
	var wMiss, wLate, wPf uint64
	warmupTaken := warmupInstrs <= 0

	n := len(s.tr.Insts)
	for s.fetchIdx < n || s.robLen > 0 {
		s.retire()
		s.completePrefetches()
		if s.cfg.UseFDP && s.fetchIdx < n {
			s.runAhead()
		}
		s.fetch()
		s.cycle++
		if !warmupTaken && s.instructions >= warmupInstrs {
			wCycles, wInstr, wBlocks = s.cycle, s.instructions, s.accessIdx
			wMiss, wLate, wPf = s.demandMisses, s.lateMisses, s.prefetches
			wIStall, wRStall = s.imissStall, s.redirectStall
			warmupTaken = true
		}
	}
	return Result{
		Cycles:              s.cycle - wCycles,
		Instructions:        s.instructions - wInstr,
		BlockAccesses:       s.accessIdx - wBlocks,
		DemandMisses:        s.demandMisses - wMiss,
		LateMisses:          s.lateMisses - wLate,
		Prefetches:          s.prefetches - wPf,
		IMissStallCycles:    s.imissStall - wIStall,
		RedirectStallCycles: s.redirectStall - wRStall,
		ICache:              s.sub.Stats(),
	}
}

// retire pops completed instructions from the ROB head.
func (s *Simulator) retire() {
	for k := 0; k < s.cfg.RetireWidth && s.robLen > 0; k++ {
		if s.rob[s.robHead] > s.cycle {
			return
		}
		s.robHead = (s.robHead + 1) % len(s.rob)
		s.robLen--
	}
}

// completePrefetches installs prefetches whose fill latency elapsed.
func (s *Simulator) completePrefetches() {
	kept := s.pfInFlight[:0]
	for _, pf := range s.pfInFlight {
		if pf.readyAt <= s.cycle {
			s.sub.PrefetchFill(pf.block, s.accessIdx, s.cycle)
		} else {
			kept = append(kept, pf)
		}
	}
	s.pfInFlight = kept
}

func (s *Simulator) prefetchPending(block uint64) (int64, bool) {
	for _, pf := range s.pfInFlight {
		if pf.block == block {
			return pf.readyAt, true
		}
	}
	return 0, false
}

// issuePrefetch starts a prefetch for block unless redundant.
func (s *Simulator) issuePrefetch(block uint64) bool {
	if len(s.pfInFlight) >= s.cfg.MaxPrefetches {
		return false
	}
	if s.sub.Contains(block) {
		return true // redundant; costs nothing, does not consume an MSHR
	}
	if _, pending := s.prefetchPending(block); pending {
		return true
	}
	s.pfInFlight = append(s.pfInFlight, inflight{block: block, readyAt: s.instrFillReady(block)})
	s.prefetches++
	return true
}

// instrFillReady reserves the instruction-side L2 port and returns when the
// fill for block completes. The port models finite L2 bandwidth: a scheme
// that turns the FDP stream into a firehose (by discarding blocks and
// re-prefetching them) queues behind its own traffic, as it would in
// hardware.
func (s *Simulator) instrFillReady(block uint64) int64 {
	start := s.cycle
	if s.l2NextFree > start {
		start = s.l2NextFree
	}
	s.l2NextFree = start + s.cfg.L2ServiceInterval
	return start + s.hier.InstrMiss(block)
}

// runAhead advances the FDP fetch-target-queue pointer and issues
// prefetches for upcoming fetch blocks. The run-ahead stream follows the
// branch predictor, so it stops at a branch the predictor gets wrong and
// resumes once fetch passes the resolved branch.
func (s *Simulator) runAhead() {
	if s.blockedAt >= 0 {
		if s.fetchIdx <= s.blockedAt {
			return
		}
		s.blockedAt = -1
	}
	if s.runIdx < s.fetchIdx {
		s.runIdx = s.fetchIdx
		s.runHaveBlk = s.haveBlock
		s.runLastBlk = s.lastBlock
		s.runAccesses = s.accessIdx
	}
	issued := 0
	n := len(s.tr.Insts)
	for s.runIdx < n && issued < s.cfg.PrefetchPerCycle {
		if s.runAccesses-s.accessIdx >= int64(s.cfg.FTQBlocks) {
			return
		}
		in := &s.tr.Insts[s.runIdx]
		b := in.Block()
		if !s.runHaveBlk || b != s.runLastBlk {
			s.runHaveBlk = true
			s.runLastBlk = b
			s.runAccesses++
			if !s.issuePrefetch(b) {
				return // MSHRs full; retry next cycle
			}
			issued++
		}
		if s.ann[s.runIdx].Redirect != branch.RedirectNone {
			// The run-ahead stream cannot proceed past a branch the front
			// end will get wrong: a mispredicted direction sends it down
			// the wrong path, and a BTB miss leaves it with no target to
			// follow. Resume once fetch resolves the branch.
			s.blockedAt = s.runIdx
			s.runIdx++
			return
		}
		s.runIdx++
	}
}

// fetch supplies up to FetchWidth instructions into the ROB.
func (s *Simulator) fetch() {
	if s.cycle < s.stallUntil {
		if s.stallIsMiss {
			s.imissStall++
		} else {
			s.redirectStall++
		}
		return
	}
	n := len(s.tr.Insts)
	for f := 0; f < s.cfg.FetchWidth; f++ {
		if s.fetchIdx >= n || s.robLen >= len(s.rob) {
			return
		}
		in := &s.tr.Insts[s.fetchIdx]
		b := in.Block()
		if !s.haveBlock || b != s.lastBlock {
			if !s.demandAccess(b) {
				return // miss: front end stalls until the fill arrives
			}
		}

		// Dispatch into the ROB with a class-based completion time.
		completion := s.cycle + s.cfg.PipelineDepth
		switch in.Class {
		case trace.ClassLoad:
			completion += s.hier.DataAccess(trace.Block(in.MemAddr))
		case trace.ClassStore:
			// Stores retire through the store buffer; access the hierarchy
			// for fills but do not delay completion.
			s.hier.DataAccess(trace.Block(in.MemAddr))
		}
		tail := (s.robHead + s.robLen) % len(s.rob)
		s.rob[tail] = completion
		s.robLen++
		s.instructions++
		s.fetchIdx++

		// Front-end redirects end the fetch group.
		switch s.ann[s.fetchIdx-1].Redirect {
		case branch.RedirectMispredict:
			s.stallUntil = s.cycle + s.cfg.MispredictPenalty
			s.stallIsMiss = false
			return
		case branch.RedirectMisfetch:
			s.stallUntil = s.cycle + s.cfg.MisfetchPenalty
			s.stallIsMiss = false
			return
		}
		// A taken branch ends the fetch group (new fetch target next cycle).
		if in.Class.IsBranch() && (in.Class != trace.ClassCondBranch || in.Taken) {
			return
		}
	}
}

// demandAccess performs the block-granular demand fetch; returns true when
// the block supplied instructions this cycle (hit), false when the front
// end must stall for a fill.
func (s *Simulator) demandAccess(b uint64) bool {
	s.haveBlock = true
	s.lastBlock = b
	s.accessIdx++
	idx := s.accessIdx - 1

	if readyAt, pending := s.prefetchPending(b); pending {
		// Late prefetch: the block is in flight. Install it now, charge
		// the residual latency, and count a demand miss.
		s.removeInFlight(b)
		s.sub.PrefetchFill(b, idx, s.cycle)
		s.sub.Fetch(b, idx, s.cycle)
		s.demandMisses++
		s.lateMisses++
		s.extraPrefetch(b, true)
		if readyAt > s.cycle {
			s.stallUntil = readyAt
			s.stallIsMiss = true
			return false
		}
		return true
	}

	hit := s.sub.Fetch(b, idx, s.cycle)
	if hit {
		s.extraPrefetch(b, false)
		return true
	}
	s.demandMisses++
	s.stallUntil = s.instrFillReady(b)
	s.stallIsMiss = true
	s.extraPrefetch(b, true)
	return false
}

func (s *Simulator) removeInFlight(block uint64) {
	for i := range s.pfInFlight {
		if s.pfInFlight[i].block == block {
			s.pfInFlight[i] = s.pfInFlight[len(s.pfInFlight)-1]
			s.pfInFlight = s.pfInFlight[:len(s.pfInFlight)-1]
			return
		}
	}
}

// extraPrefetch drives the optional table prefetcher (entangling).
func (s *Simulator) extraPrefetch(block uint64, miss bool) {
	if s.cfg.Extra == nil {
		return
	}
	s.pfScratch = s.cfg.Extra.OnAccess(block, s.cycle, miss, s.pfScratch[:0])
	for _, c := range s.pfScratch {
		s.issuePrefetch(c)
	}
}
