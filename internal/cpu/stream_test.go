package cpu

import (
	"testing"

	"acic/internal/branch"
	"acic/internal/mem"
	"acic/internal/workload"
)

// TestProgramBuilderMatchesBatch pins the streaming prepare contract at
// the cpu layer: appending the trace window by window yields a Program
// field-identical to the batch NewProgram + EnsureDataLatencies path, at
// window sizes including 1 and beyond the trace length.
func TestProgramBuilderMatchesBatch(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	const n = 30000
	tr := workload.Generate(prof, n)
	memCfg := mem.DefaultConfig()

	want := NewProgram(tr, branch.NewFrontEnd().Annotate(tr))
	want.EnsureDataLatencies(memCfg)

	for _, window := range []int{1, 13, 4096, n, n + 999} {
		b := NewProgramBuilder(prof.Name, memCfg, n)
		var blocksSeen int
		for lo := 0; lo < n; lo += window {
			added := b.Append(tr.Insts[lo:min(lo+window, n)])
			blocksSeen += len(added)
		}
		if b.Len() != n {
			t.Fatalf("window=%d: builder length %d", window, b.Len())
		}
		got := b.Finish()

		if got.Trace.Name != tr.Name || len(got.Trace.Insts) != 0 {
			t.Fatalf("window=%d: streamed Program should carry name only, got %d insts", window, len(got.Trace.Insts))
		}
		if blocksSeen != len(want.Blocks) {
			t.Fatalf("window=%d: Append yielded %d blocks, want %d", window, blocksSeen, len(want.Blocks))
		}
		if !equal(got.Desc, want.Desc) {
			t.Fatalf("window=%d: Desc differs", window)
		}
		if !equal(got.Blocks, want.Blocks) {
			t.Fatalf("window=%d: Blocks differs", window)
		}
		if !equal(got.MemBlk, want.MemBlk) {
			t.Fatalf("window=%d: MemBlk differs", window)
		}
		if !equal(got.DataLat, want.DataLat) {
			t.Fatalf("window=%d: DataLat differs", window)
		}
		if !equal(got.Ann, want.Ann) {
			t.Fatalf("window=%d: Ann differs", window)
		}
		if !equal(got.runEvents, want.runEvents) {
			t.Fatalf("window=%d: runEvents differs (%d vs %d words)", window, len(got.runEvents), len(want.runEvents))
		}
		// Same-config Ensure must be a no-op, not a recompute or panic.
		got.EnsureDataLatencies(memCfg)
		if !equal(got.DataLat, want.DataLat) {
			t.Fatalf("window=%d: EnsureDataLatencies disturbed the adopted timeline", window)
		}
	}
}

func TestProgramBuilderEmpty(t *testing.T) {
	b := NewProgramBuilder("empty", mem.DefaultConfig(), 0)
	p := b.Finish()
	if p.Len() != 0 || len(p.Blocks) != 0 || len(p.runEvents) != 1 {
		t.Fatalf("empty program: len %d, %d blocks, %d event words", p.Len(), len(p.Blocks), len(p.runEvents))
	}
}

// TestBlockRefsMatchesInstBlockRefs checks the descriptor-expanded
// per-instruction reference sequence against the trace-derived one the
// figures used to compute directly.
func TestBlockRefsMatchesInstBlockRefs(t *testing.T) {
	prof, _ := workload.ByName("sibench")
	tr := workload.Generate(prof, 20000)
	p := NewProgram(tr, branch.NewFrontEnd().Annotate(tr))
	got := p.BlockRefs()
	if len(got) != len(tr.Insts) {
		t.Fatalf("BlockRefs length %d", len(got))
	}
	for i := range tr.Insts {
		if got[i] != tr.Insts[i].Block() {
			t.Fatalf("ref %d: %#x, want %#x", i, got[i], tr.Insts[i].Block())
		}
	}
}

func equal[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
