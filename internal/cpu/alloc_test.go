package cpu

import (
	"testing"

	"acic/internal/analysis"
	"acic/internal/branch"
	"acic/internal/bypass"
	"acic/internal/core"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/policy"
	"acic/internal/workload"
)

// TestSteadyStateZeroAllocs pins the zero-allocation property of the
// simulation hot path: once warm, one simulated cycle — demand fetches,
// prefetch fills, policy updates, admission decisions, data-side hierarchy
// accesses — must not touch the heap, for every scheme family with
// per-block state (flat tables, carried next-use metadata, reusable access
// contexts). A regression here silently reintroduces GC pressure into
// every experiment sweep.
func TestSteadyStateZeroAllocs(t *testing.T) {
	prof, ok := workload.ByName("media-streaming")
	if !ok {
		t.Fatal("media-streaming profile missing")
	}
	const n = 150_000
	tr := workload.Generate(prof, n)
	ann := branch.NewFrontEnd().Annotate(tr)
	blocks := tr.BlockAccesses()
	oracle := analysis.NewNextUseOracle(blocks).Func()
	nextAt := analysis.NextUseArray(blocks)

	base := func() icache.Config { return icache.Config{Sets: 64, Ways: 8} }
	subsystems := map[string]func() icache.Subsystem{
		"lru": func() icache.Subsystem {
			c := base()
			c.Policy = policy.NewLRU()
			return icache.MustNew(c)
		},
		"opt": func() icache.Subsystem {
			c := base()
			c.Policy = policy.NewOPT()
			c.NextUse = oracle
			c.NextAt = nextAt
			return icache.MustNew(c)
		},
		"opt-bypass": func() icache.Subsystem {
			c := base()
			c.Policy = policy.NewLRU()
			c.FilterSlots = 16
			c.Bypass = bypass.OPTBypass{}
			c.NextUse = oracle
			c.NextAt = nextAt
			return icache.MustNew(c)
		},
		"harmony": func() icache.Subsystem {
			c := base()
			c.Policy = policy.NewHawkeye(policy.DefaultHawkeyeConfig())
			return icache.MustNew(c)
		},
		"acic": func() icache.Subsystem {
			cc := core.DefaultConfig()
			c := base()
			c.Policy = policy.NewLRU()
			c.ACIC = &cc
			return icache.MustNew(c)
		},
		"eaf": func() icache.Subsystem {
			c := base()
			c.Policy = policy.NewLRU()
			c.Bypass = bypass.NewEAF(bypass.DefaultEAFConfig())
			return icache.MustNew(c)
		},
		"ripple-lite": func() icache.Subsystem {
			c := base()
			c.Policy = policy.NewProfileGuided(policy.Profile(blocks[:len(blocks)/10], 512))
			return icache.MustNew(c)
		},
	}

	for name, mk := range subsystems {
		t.Run(name, func(t *testing.T) {
			s := NewSimulator(DefaultConfig(), NewProgram(tr, ann), mk(), mem.New(mem.DefaultConfig()))
			// Warm to steady state: structures reach their high-water
			// capacities within the first three quarters of the trace.
			for !s.done() && s.instructions < 3*n/4 {
				s.step()
			}
			if s.done() {
				t.Fatal("trace too short to measure steady state")
			}
			allocs := testing.AllocsPerRun(2000, func() {
				if !s.done() {
					s.step()
				}
			})
			if allocs != 0 {
				t.Errorf("%s: steady-state cycle allocates %.2f times", name, allocs)
			}
		})
	}

	// The gang path must preserve the property: once its members are warm,
	// advancing the whole gang through traversal windows stays off the heap.
	t.Run("gang", func(t *testing.T) {
		prog := NewProgram(tr, ann)
		names := []string{"lru", "opt", "harmony", "acic", "eaf"}
		hiers := mem.NewGang(mem.DefaultConfig(), len(names))
		members := make([]GangMember, len(names))
		for i, name := range names {
			members[i] = GangMember{Cfg: DefaultConfig(), Sub: subsystems[name](), Hier: hiers[i]}
		}
		g := NewGang(prog, members, DefaultGangWindow)
		for i := range g.sims {
			g.sims[i].start(0)
		}
		bound := 0
		for bound < 3*n/4 {
			bound += DefaultGangWindow
			g.advance(bound)
		}
		if g.advance(bound) == 0 {
			t.Fatal("trace too short to measure gang steady state")
		}
		allocs := testing.AllocsPerRun(200, func() {
			bound += 64
			g.advance(bound)
		})
		if allocs != 0 {
			t.Errorf("gang: steady-state advance allocates %.2f times", allocs)
		}
	})
}
