package distrib

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"acic/internal/experiments"
	"acic/internal/experiments/engine"
	"acic/internal/faults"
)

// testExperiments is the render subset the determinism tests diff: two
// Require-grid experiments (the distributed path) plus a static table (a
// pure-local render that must be untouched by distribution).
var testExperiments = []string{"table3", "fig10", "fig11"}

const (
	testN     = 30_000
	testGang  = 4
	testApps  = "media-streaming,web-search"
	testWidth = 2 // per-process pool width, workers and coordinator alike
)

func testSuiteConfig() Config {
	return Config{
		N:        testN,
		Apps:     strings.Split(testApps, ","),
		GangSize: testGang,
	}
}

// newTestGrid wires the full distributed fixture: a scratch store and a
// coordinator served from one httptest listener (the same one-URL layout
// acic-coord uses), and a coordinator-side Suite whose Remote is the
// coordinator and whose stores are the local view of the shared root.
func newTestGrid(t *testing.T, opts CoordinatorOptions) (*experiments.Suite, *Coordinator, string) {
	t.Helper()
	storeDir := t.TempDir()
	storeHandler, err := engine.NewStoreHandler(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(opts)
	t.Cleanup(coord.Close)
	mux := http.NewServeMux()
	mux.Handle("/api/", coord.Handler())
	mux.Handle("/", storeHandler)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	// The coordinator advertises the shared listener as the store.
	coord.cfg.StoreURL = srv.URL

	s := experiments.NewSuite(testN)
	s.Apps = strings.Split(testApps, ",")
	s.Workers = testWidth
	s.GangSize = testGang
	s.CacheDir = storeDir
	s.ArtifactDir = storeDir
	s.Remote = coord
	if err := s.CacheError(); err != nil {
		t.Fatal(err)
	}
	return s, coord, srv.URL
}

// renderAll runs the test experiment subset and concatenates their
// printed output — the byte-identity unit the tests diff.
func renderAll(t *testing.T, s *experiments.Suite) string {
	t.Helper()
	var sb strings.Builder
	for _, e := range experiments.Registry() {
		for _, want := range testExperiments {
			if e.Slug != want {
				continue
			}
			out, err := e.Run(s)
			if err != nil {
				// Errorf, not Fatalf: renderAll runs on background
				// goroutines in the requeue test, where Goexit would
				// strand the channel receive.
				t.Errorf("%s: %v", e.Slug, err)
				continue
			}
			fmt.Fprintf(&sb, "=== %s\n%s\n", e.Slug, out)
		}
	}
	return sb.String()
}

// localReference renders the subset on a plain single-process suite with
// the same configuration and no store at all.
func localReference(t *testing.T) string {
	t.Helper()
	s := experiments.NewSuite(testN)
	s.Apps = strings.Split(testApps, ",")
	s.Workers = testWidth
	s.GangSize = testGang
	return renderAll(t, s)
}

// TestDistributedByteIdentical is the tentpole invariant: the rendered
// output of a distributed run — 1, 2, and 4 workers, each a cold shared
// store — is byte-identical to single-process execution.
func TestDistributedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-lane simulation grids")
	}
	want := localReference(t)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s, coord, url := newTestGrid(t, CoordinatorOptions{Config: testSuiteConfig(), Lease: 30 * time.Second})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					err := RunWorker(ctx, WorkerOptions{Coord: url, Workers: testWidth, Name: fmt.Sprintf("w%d", i)})
					if err != nil && ctx.Err() == nil {
						t.Errorf("worker %d: %v", i, err)
					}
				}(i)
			}
			got := renderAll(t, s)
			coord.Close() // workers see Done and exit
			wg.Wait()
			if got != want {
				t.Errorf("distributed output at %d workers differs from single-process\n--- got ---\n%s--- want ---\n%s", workers, got, want)
			}
			if st := coord.Stats(); st.Completed == 0 {
				t.Errorf("no cells completed remotely (stats %+v) — the grid ran locally", st)
			}
		})
	}
}

// TestWorkerDeathRequeues pins the lease ladder: a worker that claims a
// batch and vanishes must not lose the work — the lease expires, the
// batch requeues under a fresh ID, a healthy worker finishes it, and the
// output is still byte-identical. The zombie's late completion (stale
// ID) must be ignored.
func TestWorkerDeathRequeues(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	s, coord, url := newTestGrid(t, CoordinatorOptions{Config: testSuiteConfig(), Lease: 300 * time.Millisecond})

	// Render in the background; the grid blocks until workers (or the
	// ladder) produce every cell.
	outCh := make(chan string, 1)
	go func() { outCh <- renderAll(t, s) }()

	// The zombie steals one batch and never reports it.
	var zombie Batch
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := coord.Claim(ClaimRequest{Worker: "zombie", Want: 1})
		if len(resp.Batches) > 0 {
			zombie = resp.Batches[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no batch ever became claimable")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A healthy worker joins after the zombie's lease has begun.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(ctx, WorkerOptions{Coord: url, Workers: testWidth, Name: "healthy"}); err != nil && ctx.Err() == nil {
			t.Errorf("healthy worker: %v", err)
		}
	}()

	got := <-outCh
	// Late completion for the stale lease: must be a no-op, the cells
	// were already settled by the requeued copy.
	coord.Complete(CompleteRequest{Worker: "zombie", BatchID: zombie.ID,
		Results: []CellResult{{Cell: zombie.Cells[0]}}})
	coord.Close()
	wg.Wait()

	if want := localReference(t); got != want {
		t.Errorf("output after worker death differs from single-process\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if st := coord.Stats(); st.Requeued < 1 {
		t.Errorf("zombie batch was never requeued (stats %+v)", st)
	}
}

// TestNoWorkerFallsBackLocal pins liveness with zero workers: under
// NoWorkerTimeout the queued batches fail transiently back into the
// Suite, whose serial ladder computes every cell locally — the run
// finishes, merely without speedup.
func TestNoWorkerFallsBackLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	s, coord, _ := newTestGrid(t, CoordinatorOptions{
		Config:          testSuiteConfig(),
		Lease:           time.Second,
		NoWorkerTimeout: 200 * time.Millisecond,
	})
	got := renderAll(t, s)
	if want := localReference(t); got != want {
		t.Errorf("local-fallback output differs from single-process\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if st := coord.Stats(); st.LocalFell == 0 {
		t.Errorf("no cells fell back locally (stats %+v)", st)
	}
}

// TestNetErrFaultedRunStaysIdentical wires the net-err satellite end to
// end: with injected network faults hitting both the store client and the
// protocol client, the distributed run must still complete with output
// byte-identical to a fault-free single-process run — net-errs are
// absorbed as store misses and transient protocol retries.
func TestNetErrFaultedRunStaysIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	s, coord, url := newTestGrid(t, CoordinatorOptions{Config: testSuiteConfig(), Lease: 5 * time.Second})
	if err := faults.Install("net-err:p=0.05;seed=11"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { faults.Install("") })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := RunWorker(ctx, WorkerOptions{Coord: url, Workers: testWidth, Name: fmt.Sprintf("w%d", i)})
			if err != nil && ctx.Err() == nil {
				// A worker may legitimately die when injected net-errs
				// exhaust its claim budget; the grid must survive it.
				t.Logf("worker %d gave up: %v", i, err)
			}
		}(i)
	}
	got := renderAll(t, s)
	coord.Close()
	wg.Wait()
	snap := faults.Snapshot()
	faults.Install("")

	if want := localReference(t); got != want {
		t.Errorf("net-err-faulted output differs from single-process\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if snap.NetErrs == 0 {
		t.Error("fault spec was installed but no net-err ever fired")
	}
}
