package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"acic/internal/api"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
	"acic/internal/faults"
)

// client speaks the coordinator protocol. Transport failures — real or
// injected net-err faults — come back MarkTransient, so callers retry
// them with the engine's standard policy; HTTP 5xx is transient too
// (the coordinator may be restarting), anything else is final.
type client struct {
	base string
	hc   *http.Client
}

func newClient(coord string) *client {
	return &client{base: strings.TrimRight(coord, "/"), hc: &http.Client{Timeout: 60 * time.Second}}
}

// call performs one JSON round trip; out may be nil for fire-and-forget
// endpoints.
func (cl *client) call(method, path string, in, out any) error {
	if faults.FailNet() {
		return engine.MarkTransient(errors.New("distrib: injected net-err"))
	}
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, cl.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return engine.MarkTransient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		// The coordinator answers errors as api.Envelope; decode it so
		// the typed code and message survive, and classify by the
		// envelope's transient flag or the status class.
		apiErr := api.ReadError(resp)
		err := fmt.Errorf("distrib: %s %s: %w", method, path, apiErr)
		if resp.StatusCode >= 500 || apiErr.Transient {
			return engine.MarkTransient(err)
		}
		return err
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (cl *client) config() (Config, error) {
	var cfg Config
	err := cl.call(http.MethodGet, "/api/config", nil, &cfg)
	return cfg, err
}

func (cl *client) claim(req ClaimRequest) (ClaimResponse, error) {
	var resp ClaimResponse
	err := cl.call(http.MethodPost, "/api/claim", req, &resp)
	return resp, err
}

func (cl *client) complete(req CompleteRequest) error {
	return cl.call(http.MethodPost, "/api/complete", req, nil)
}

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Coord is the coordinator base URL (also serving the store by
	// default; the fetched Config carries the authoritative StoreURL).
	Coord string
	// Workers bounds the worker's pool (0 = ACIC_WORKERS or GOMAXPROCS).
	Workers int
	// Name identifies this worker in claims and coordinator logs
	// ("" = host-pid).
	Name string
	// Log, if non-nil, receives one-line progress messages.
	Log func(format string, args ...any)
}

// workerFailBudget bounds consecutive coordinator round-trip failures
// (after per-call retries) before the worker gives up: the coordinator is
// gone, and its lease sweeper has already re-owned our batches.
const workerFailBudget = 5

// RunWorker runs one stateless worker against a coordinator: fetch the
// run Config, build a Suite whose cache and artifact store point at the
// shared StoreURL, then steal batches until the coordinator reports Done
// (or ctx cancels). Every claimed batch is executed as a local gang via
// Suite.Require — the same code path a single-process run takes, which is
// the determinism argument: results are computed identically and
// published to the same content-addressed entries.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	name := opts.Name
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cl := newClient(opts.Coord)

	cfg, err, _ := engine.Retry(engine.DefaultRetry(), "config", false, cl.config)
	if err != nil {
		return fmt.Errorf("distrib: worker %s: fetch config from %s: %w", name, opts.Coord, err)
	}
	if cfg.StoreURL == "" {
		return fmt.Errorf("distrib: worker %s: coordinator config has no store URL", name)
	}

	s := experiments.NewSuite(cfg.N)
	s.Apps = cfg.Apps
	s.Workers = opts.Workers
	s.CacheDir = cfg.StoreURL
	s.ArtifactDir = cfg.StoreURL
	s.SampleSets = cfg.SampleSets
	s.SampleOffset = cfg.SampleOffset
	s.GangSize = cfg.GangSize
	s.GangWindow = cfg.GangWindow
	s.PrepareWindow = cfg.PrepareWindow
	s.Context = ctx
	if err := s.CacheError(); err != nil {
		return fmt.Errorf("distrib: worker %s: shared store: %w", name, err)
	}
	logf("worker %s: n=%d store=%s width=%d", name, s.N, cfg.StoreURL, func() int {
		r, i, _ := s.Occupancy()
		return r + i
	}())

	var inflight sync.WaitGroup
	defer inflight.Wait()
	fails := 0
	for ctx.Err() == nil {
		running, idle, queued := s.Occupancy()
		want := idle - queued
		if want < 0 {
			want = 0
		}
		resp, err := cl.claim(ClaimRequest{Worker: name, Running: running, Idle: idle, Queued: queued, Want: want})
		if err != nil {
			if !engine.IsTransient(err) {
				return fmt.Errorf("distrib: worker %s: claim: %w", name, err)
			}
			fails++
			if fails >= workerFailBudget {
				return fmt.Errorf("distrib: worker %s: coordinator unreachable: %w", name, err)
			}
			sleepCtx(ctx, time.Duration(fails)*200*time.Millisecond)
			continue
		}
		fails = 0
		if resp.Done {
			break
		}
		if len(resp.Batches) == 0 {
			wait := time.Duration(resp.WaitMillis) * time.Millisecond
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			sleepCtx(ctx, wait)
			continue
		}
		for _, b := range resp.Batches {
			inflight.Add(1)
			go func(b Batch) {
				defer inflight.Done()
				results := runBatch(s, b)
				req := CompleteRequest{Worker: name, BatchID: b.ID, Results: results}
				if _, err, _ := engine.Retry(engine.DefaultRetry(), fmt.Sprintf("complete:%d", b.ID), false,
					func() (struct{}, error) { return struct{}{}, cl.complete(req) }); err != nil {
					// The completion is lost; the lease sweeper will
					// requeue the batch, and our published results warm
					// the store for whoever re-runs it.
					logf("worker %s: batch %d completion lost: %v", name, b.ID, err)
				}
			}(b)
		}
		logf("worker %s: claimed %d batch(es)", name, len(resp.Batches))
	}
	return ctx.Err()
}

// runBatch executes one batch on the worker's suite and classifies each
// cell's outcome into the wire taxonomy. Transient failures (injected
// faults past the retry budget, cancellation mid-batch) are Forgotten
// from the local memo so a requeue of the same cell to this worker
// recomputes instead of replaying the memoized error.
func runBatch(s *experiments.Suite, b Batch) []CellResult {
	cells := make([]experiments.Cell, len(b.Cells))
	for i, c := range b.Cells {
		cells[i] = experiments.CellFromAPI(c)
	}
	s.Require(cells...) // per-cell outcomes read below
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		_, err := s.Result(c.App, c.Scheme, c.Prefetcher)
		if err == nil {
			out[i] = CellResult{Cell: b.Cells[i]}
			continue
		}
		transient := engine.IsTransient(err) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		code := api.CodeCellError
		if transient {
			s.Forget(c)
			code = api.CodeTransient
		}
		out[i] = CellResult{Cell: b.Cells[i], Error: &api.Error{
			Code: code, Message: err.Error(), Transient: transient, Cell: c.String()}}
	}
	return out
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
