package distrib

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"acic/internal/api"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
)

// CoordinatorOptions configures NewCoordinator. The zero value of every
// field but Config is usable.
type CoordinatorOptions struct {
	// Config is served to workers verbatim (GET /api/config).
	Config Config
	// Lease bounds how long a claimed batch may stay unreported before
	// the sweeper presumes its worker dead and requeues it (default 30s —
	// generously above one gang's latency at bench trace lengths).
	Lease time.Duration
	// MaxRequeues bounds how many times one batch's cells are requeued
	// (lease expiries and transient failures both count) before they fail
	// transiently back into the Suite's local ladder. Default 3.
	MaxRequeues int
	// NoWorkerTimeout, when > 0, bounds how long queued work waits with
	// no worker contact at all before failing back to local execution;
	// 0 waits forever.
	NoWorkerTimeout time.Duration
}

// CoordinatorStats snapshots scheduling activity.
type CoordinatorStats struct {
	Batches   int64 // batches ever enqueued (including requeues)
	Claimed   int64 // batches handed to workers
	Completed int64 // cells completed by workers (success or final error)
	Requeued  int64 // batches requeued after lease expiry or transient failure
	LocalFell int64 // cells failed back to the Suite's local ladder
}

// batch is the coordinator-side state of one steal unit.
type batch struct {
	id       int64
	app      string
	cells    []experiments.Cell
	done     func(experiments.Cell, error)
	requeues int
	deadline time.Time
	worker   string
}

// Coordinator is the work-stealing scheduler behind acic-coord. It
// implements experiments.Remote: the Suite submits same-app cell groups,
// workers claim them over HTTP, and each cell's completion flows back
// through the done callback with PR 8's transient/deterministic split
// intact. All methods are safe for concurrent use.
type Coordinator struct {
	cfg         Config
	lease       time.Duration
	maxRequeues int
	noWorker    time.Duration

	mu          sync.Mutex
	nextID      int64
	ready       []*batch
	leased      map[int64]*batch
	closed      bool
	lastContact time.Time

	stopOnce sync.Once
	stop     chan struct{}

	batches   atomic.Int64
	claimed   atomic.Int64
	completed atomic.Int64
	requeued  atomic.Int64
	localFell atomic.Int64
}

var _ experiments.Remote = (*Coordinator)(nil)

// NewCoordinator creates a coordinator and starts its lease sweeper.
// Call Close when the run is over.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		cfg:         opts.Config,
		lease:       opts.Lease,
		maxRequeues: opts.MaxRequeues,
		noWorker:    opts.NoWorkerTimeout,
		leased:      make(map[int64]*batch),
		lastContact: time.Now(),
		stop:        make(chan struct{}),
	}
	if c.lease <= 0 {
		c.lease = 30 * time.Second
	}
	if c.maxRequeues <= 0 {
		c.maxRequeues = 3
	}
	go c.sweep()
	return c
}

// Submit implements experiments.Remote: one same-app cell group becomes
// one batch on the ready queue. Never blocks on completion.
func (c *Coordinator) Submit(app string, cells []experiments.Cell, done func(experiments.Cell, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enqueue(&batch{app: app, cells: cells, done: done})
}

// enqueue assigns a fresh ID and appends to the ready queue (FIFO).
// Caller holds mu.
func (c *Coordinator) enqueue(b *batch) {
	c.nextID++
	b.id = c.nextID
	b.deadline = time.Time{}
	b.worker = ""
	c.ready = append(c.ready, b)
	c.batches.Add(1)
}

// failLocal completes every cell of b with a transient error, dropping
// the work back into the Suite's local serial ladder. Called with mu held
// for queue surgery; the done callbacks run without the lock (they may
// simulate).
func (c *Coordinator) failLocal(b *batch, cause string) {
	cells, done := b.cells, b.done
	c.localFell.Add(int64(len(cells)))
	go func() {
		for _, cell := range cells {
			done(cell, engine.MarkTransient(fmt.Errorf("distrib: %s: %s", cell, cause)))
		}
	}()
}

// Claim grants up to req.Want ready batches, stamping each with a lease.
// A Want of 0 (or an empty queue) grants nothing; Done reports the
// coordinator is closed and the worker should exit.
func (c *Coordinator) Claim(req ClaimRequest) ClaimResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastContact = time.Now()
	if c.closed {
		return ClaimResponse{Done: true}
	}
	n := req.Want
	if n > len(c.ready) {
		n = len(c.ready)
	}
	if n <= 0 {
		return ClaimResponse{WaitMillis: 50}
	}
	resp := ClaimResponse{Batches: make([]Batch, 0, n)}
	deadline := time.Now().Add(c.lease)
	for _, b := range c.ready[:n] {
		b.deadline = deadline
		b.worker = req.Worker
		c.leased[b.id] = b
		wire := make([]api.Cell, len(b.cells))
		for i, cell := range b.cells {
			wire[i] = cell.API()
		}
		resp.Batches = append(resp.Batches, Batch{ID: b.id, App: b.app, Cells: wire})
	}
	c.ready = append(c.ready[:0], c.ready[n:]...)
	c.claimed.Add(int64(n))
	return resp
}

// Complete settles a reported batch. A stale BatchID — the lease already
// expired and the batch was requeued under a new ID — is ignored: the
// requeued copy owns the cells now, and whatever the late worker did
// publish still warms the shared store. Cells the report omits are
// treated as transient failures.
func (c *Coordinator) Complete(req CompleteRequest) {
	c.mu.Lock()
	b, ok := c.leased[req.BatchID]
	if ok {
		delete(c.leased, req.BatchID)
	}
	c.lastContact = time.Now()
	c.mu.Unlock()
	if !ok {
		return
	}

	reported := make(map[api.Cell]CellResult, len(req.Results))
	for _, r := range req.Results {
		reported[r.Cell] = r
	}
	var transient []experiments.Cell
	for _, cell := range b.cells {
		r, ok := reported[cell.API()]
		switch {
		case !ok || (r.Error != nil && r.Error.Transient):
			transient = append(transient, cell)
		case r.Error != nil:
			// A deterministic wire error settles the cell as-is: the
			// *api.Error flows into the suite's memo as the cell's typed
			// error, exactly like a local CellError would.
			c.completed.Add(1)
			b.done(cell, r.Error)
		default:
			c.completed.Add(1)
			b.done(cell, nil)
		}
	}
	if len(transient) == 0 {
		return
	}
	c.requeueCells(b, transient, "transient failures exhausted the requeue budget")
}

// requeueCells puts a batch's still-pending cells back on the ready
// queue — or, past the requeue budget, fails them back to local
// execution.
func (c *Coordinator) requeueCells(b *batch, cells []experiments.Cell, cause string) {
	nb := &batch{app: b.app, cells: cells, done: b.done, requeues: b.requeues + 1}
	c.mu.Lock()
	defer c.mu.Unlock()
	if nb.requeues > c.maxRequeues || c.closed {
		c.failLocal(nb, cause)
		return
	}
	c.requeued.Add(1)
	c.enqueue(nb)
}

// sweep requeues leased batches whose deadline passed (their worker is
// presumed dead) and, under NoWorkerTimeout, fails queued work back to
// local execution when no worker has made contact for too long.
func (c *Coordinator) sweep() {
	interval := c.lease / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		c.mu.Lock()
		var expired []*batch
		for id, b := range c.leased {
			if now.After(b.deadline) {
				delete(c.leased, id)
				expired = append(expired, b)
			}
		}
		var starved []*batch
		if c.noWorker > 0 && len(c.ready) > 0 && now.Sub(c.lastContact) > c.noWorker {
			starved = c.ready
			c.ready = nil
			for _, b := range starved {
				c.failLocal(b, "no worker contact")
			}
		}
		c.mu.Unlock()
		for _, b := range expired {
			c.requeueCells(b, b.cells, fmt.Sprintf("lease expired %d times (worker %q presumed dead)", b.requeues+1, b.worker))
		}
	}
}

// Close ends the run: subsequent claims answer Done, the sweeper stops,
// and anything still queued fails back to local execution (it should be
// nothing — the Suite's Require returns only once every submitted cell
// completed).
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	orphans := c.ready
	c.ready = nil
	for _, b := range orphans {
		c.failLocal(b, "coordinator closed")
	}
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
}

// Stats snapshots the coordinator's scheduling counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Batches:   c.batches.Load(),
		Claimed:   c.claimed.Load(),
		Completed: c.completed.Load(),
		Requeued:  c.requeued.Load(),
		LocalFell: c.localFell.Load(),
	}
}

// Handler returns the coordinator's HTTP API:
//
//	GET  /api/config   — the run Config for stateless worker setup
//	POST /api/claim    — ClaimRequest -> ClaimResponse
//	POST /api/complete — CompleteRequest -> 204
//
// Errors are api.Envelope: malformed bodies are bad_request, wrong
// verbs are method_not_allowed. Mount it alongside an
// engine.NewStoreHandler on one listener and a single -coord URL serves
// both scheduling and the shared store.
func (c *Coordinator) Handler() http.Handler {
	// Methods are checked by hand rather than with mux method patterns so
	// a wrong verb gets the envelope, not ServeMux's plain-text 405.
	requireMethod := func(w http.ResponseWriter, r *http.Request, method string) bool {
		if r.Method != method {
			api.WriteError(w, http.StatusMethodNotAllowed, &api.Error{
				Code: api.CodeMethodNotAllowed, Message: r.URL.Path + " requires " + method})
			return false
		}
		return true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/config", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		api.WriteJSON(w, http.StatusOK, c.cfg)
	})
	mux.HandleFunc("/api/claim", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		var req ClaimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, &api.Error{
				Code: api.CodeBadRequest, Message: "claim body: " + err.Error()})
			return
		}
		api.WriteJSON(w, http.StatusOK, c.Claim(req))
	})
	mux.HandleFunc("/api/complete", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		var req CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, &api.Error{
				Code: api.CodeBadRequest, Message: "complete body: " + err.Error()})
			return
		}
		c.Complete(req)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/api/", func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, http.StatusNotFound, &api.Error{
			Code: api.CodeNotFound, Message: "no such endpoint: " + r.URL.Path})
	})
	return mux
}
