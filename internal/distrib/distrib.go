// Package distrib shards a Suite's cell grid across processes: a
// work-stealing coordinator enumerates the deduplicated plan (it is the
// Suite's Remote) and hands same-app batches to stateless workers over a
// thin HTTP/JSON protocol, while artifacts and results flow through one
// shared store (the engine's http:// DiskCache backend), so the
// coordinator's render path reads bytes identical to a single-process
// run at any worker count (DESIGN.md §14).
//
// The protocol is three endpoints. GET /api/config tells a fresh worker
// everything it needs to build its Suite — trace length, sampling, gang
// policy, and the store URL — which is what makes workers stateless:
// point acic-worker at a coordinator and it configures itself. POST
// /api/claim is the steal: the worker sends its pool occupancy snapshot
// (running/idle/queued) and how many batches it wants, the coordinator
// grants up to that many. POST /api/complete reports per-cell outcomes,
// split transient/deterministic exactly like the local ladder: transient
// cells are requeued (bounded), deterministic failures are final.
//
// Failure handling is lease-based. A claimed batch carries a lease
// deadline; a worker that dies mid-batch (or a completion lost to the
// network) simply lets the lease expire, and the sweeper requeues the
// batch under a fresh ID — the stale ID makes any late completion
// harmless, and results the dead worker did publish still warm the
// shared store for whoever re-runs the cells. When a batch exhausts its
// requeue budget, or no worker has contacted the coordinator for
// NoWorkerTimeout, its cells fail transiently back into the Suite, whose
// ladder re-runs them locally — a coordinator with zero healthy workers
// still finishes, just without the speedup.
package distrib

import (
	"acic/internal/experiments"
)

// Config is everything a stateless worker needs to reconstruct the
// coordinator's Suite configuration. Served by GET /api/config; the
// worker's own pool width is deliberately absent — that is per-process
// capacity, not plan configuration.
type Config struct {
	N             int      `json:"n"`
	Apps          []string `json:"apps,omitempty"`
	SampleSets    int      `json:"sample_sets,omitempty"`
	SampleOffset  int      `json:"sample_offset,omitempty"`
	GangSize      int      `json:"gang_size,omitempty"`
	GangWindow    int      `json:"gang_window,omitempty"`
	PrepareWindow int      `json:"prepare_window,omitempty"`
	// StoreURL is the shared artifact + result store every worker points
	// its CacheDir and ArtifactDir at.
	StoreURL string `json:"store_url"`
}

// Batch is one steal unit: same-app cells a worker runs as a single gang
// (one Program traversal driving every member). IDs are fresh per lease —
// a requeued batch gets a new one, fencing off late completions from its
// previous owner.
type Batch struct {
	ID    int64              `json:"id"`
	App   string             `json:"app"`
	Cells []experiments.Cell `json:"cells"`
}

// ClaimRequest is a worker's steal: its occupancy snapshot plus how many
// batches it can absorb. Want 0 is a pure heartbeat — it grants nothing
// but still counts as worker contact.
type ClaimRequest struct {
	Worker  string `json:"worker"`
	Running int    `json:"running"`
	Idle    int    `json:"idle"`
	Queued  int    `json:"queued"`
	Want    int    `json:"want"`
}

// ClaimResponse grants batches. Done tells the worker the run is over;
// WaitMillis is the suggested poll delay when no work was available.
type ClaimResponse struct {
	Batches    []Batch `json:"batches,omitempty"`
	Done       bool    `json:"done,omitempty"`
	WaitMillis int     `json:"wait_millis,omitempty"`
}

// CellResult is one cell's outcome. Err "" means the result was computed
// and published to the shared store; otherwise Transient carries PR 8's
// error split across the wire — true requeues the cell, false is final.
type CellResult struct {
	Cell      experiments.Cell `json:"cell"`
	Err       string           `json:"err,omitempty"`
	Transient bool             `json:"transient,omitempty"`
}

// CompleteRequest reports a finished batch. Cells of the batch missing
// from Results are treated as transient failures (a worker that
// half-reported is a worker that half-died).
type CompleteRequest struct {
	Worker  string       `json:"worker"`
	BatchID int64        `json:"batch_id"`
	Results []CellResult `json:"results"`
}
