// Package distrib shards a Suite's cell grid across processes: a
// work-stealing coordinator enumerates the deduplicated plan (it is the
// Suite's Remote) and hands same-app batches to stateless workers over a
// thin HTTP/JSON protocol, while artifacts and results flow through one
// shared store (the engine's http:// DiskCache backend), so the
// coordinator's render path reads bytes identical to a single-process
// run at any worker count (DESIGN.md §14).
//
// The wire types live in internal/api — the one versioned contract this
// protocol shares with acic-serve and the store handler — and are
// aliased here so coordinator and worker code reads naturally. The
// protocol is three endpoints. GET /api/config tells a fresh worker
// everything it needs to build its Suite — trace length, sampling, gang
// policy, and the store URL — which is what makes workers stateless:
// point acic-worker at a coordinator and it configures itself. POST
// /api/claim is the steal: the worker sends its pool occupancy snapshot
// (running/idle/queued) and how many batches it wants, the coordinator
// grants up to that many. POST /api/complete reports per-cell outcomes
// as api.CellResults, whose *api.Error carries PR 8's split as a typed
// field: transient cells are requeued (bounded), deterministic failures
// are final. Errors on every endpoint are api.Envelope.
package distrib

import "acic/internal/api"

// Aliases into the shared wire contract. Cells travel as api.Cell on
// the wire; the coordinator converts to and from experiments.Cell at
// the protocol boundary (Claim/Complete), nowhere else.
type (
	// Config is everything a stateless worker needs to reconstruct the
	// coordinator's Suite configuration (GET /api/config). The worker's
	// own pool width is deliberately absent — that is per-process
	// capacity, not plan configuration.
	Config = api.WorkerConfig
	// Batch is one steal unit: same-app cells a worker runs as a single
	// gang. IDs are fresh per lease — a requeued batch gets a new one,
	// fencing off late completions from its previous owner.
	Batch = api.Batch
	// ClaimRequest is a worker's steal: its occupancy snapshot plus how
	// many batches it can absorb. Want 0 is a pure heartbeat.
	ClaimRequest = api.ClaimRequest
	// ClaimResponse grants batches, reports Done, or suggests a poll
	// delay.
	ClaimResponse = api.ClaimResponse
	// CellResult is one cell's outcome: nil Error means computed and
	// published to the shared store; Error.Transient requeues, anything
	// else is final.
	CellResult = api.CellResult
	// CompleteRequest reports a finished batch. Cells of the batch
	// missing from Results are treated as transient failures (a worker
	// that half-reported is a worker that half-died).
	CompleteRequest = api.CompleteRequest
)
