package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIFilterLRU(t *testing.T) {
	f := NewIFilter(2)
	if _, _, ev := f.Insert(1, 0); ev {
		t.Error("insert into empty filter must not evict")
	}
	if _, _, ev := f.Insert(2, 0); ev {
		t.Error("second insert must not evict")
	}
	if !f.Access(1, 0) {
		t.Error("block 1 should hit")
	}
	victim, _, ev := f.Insert(3, 0)
	if !ev || victim != 2 {
		t.Errorf("victim = %d,%v; want 2 (LRU)", victim, ev)
	}
	if f.Contains(2) {
		t.Error("block 2 should be gone")
	}
	if f.Occupancy() != 2 || f.Size() != 2 {
		t.Errorf("occupancy=%d size=%d", f.Occupancy(), f.Size())
	}
}

func TestIFilterInvalidate(t *testing.T) {
	f := NewIFilter(4)
	f.Insert(7, 0)
	if !f.Invalidate(7) || f.Invalidate(7) {
		t.Error("invalidate semantics wrong")
	}
	if f.Access(7, 0) {
		t.Error("invalidated block must miss")
	}
}

func TestIFilterStorageMatchesTable1(t *testing.T) {
	// Table I: 16 entries x (63 metadata bits + 64B block) = 1.123KB.
	f := NewIFilter(16)
	bits := f.StorageBits()
	kb := float64(bits) / 8192
	if kb < 1.12 || kb > 1.13 {
		t.Errorf("i-Filter storage = %.4f KB, want ~1.123", kb)
	}
}

func TestIFilterRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	NewIFilter(0)
}

func TestPredictorLearnsBias(t *testing.T) {
	cfg := DefaultPredictorConfig()
	cfg.UpdateLatency = 0
	p := NewPredictor(cfg)
	tag := uint32(0x123)
	// Train "later than contender" (drop) consistently.
	for i := 0; i < 40; i++ {
		p.Train(tag, false)
		p.Tick(int64(i + 1))
	}
	if p.Predict(tag) {
		t.Error("consistently losing block should be dropped")
	}
	// Another tag trained to win.
	tag2 := uint32(0x456)
	for i := 40; i < 80; i++ {
		p.Train(tag2, true)
		p.Tick(int64(i + 1))
	}
	if !p.Predict(tag2) {
		t.Error("consistently winning block should be admitted")
	}
}

func TestPredictorQueuedUpdateStaleness(t *testing.T) {
	cfg := DefaultPredictorConfig()
	cfg.UpdateLatency = 2
	p := NewPredictor(cfg)
	tag := uint32(0x321)
	h0 := p.History(tag)
	c0 := p.Counter(h0)
	p.Tick(10)
	p.Train(tag, false)
	// Immediately after training, neither the counter nor the history has
	// changed (2-cycle pipeline).
	if p.Counter(h0) != c0 {
		t.Error("PT updated too early")
	}
	if p.History(tag) != h0 {
		t.Error("HRT shifted too early")
	}
	p.Tick(11) // HRT shift due
	if p.History(tag) != ((h0<<1)&0xF) || p.Counter(h0) != c0 {
		t.Error("after 1 cycle only the HRT should have shifted")
	}
	p.Tick(12) // PT update due
	if p.Counter(h0) != c0-1 {
		t.Errorf("PT counter = %d, want %d", p.Counter(h0), c0-1)
	}
}

func TestPredictorAliasDrop(t *testing.T) {
	cfg := DefaultPredictorConfig()
	cfg.UpdateLatency = 0
	p := NewPredictor(cfg)
	p.Tick(5)
	p.Train(1, true)
	p.Train(1, true) // same HRT entry, same cycle: dropped
	if p.AliasDrops != 1 {
		t.Errorf("alias drops = %d, want 1", p.AliasDrops)
	}
	p.Tick(6)
	p.Train(1, true)
	if p.AliasDrops != 1 {
		t.Error("training in a later cycle must not be dropped")
	}
}

func TestPredictorQueueOverflow(t *testing.T) {
	cfg := DefaultPredictorConfig()
	cfg.QueueSlots = 2
	p := NewPredictor(cfg)
	// Use distinct tags mapping to distinct HRT entries but the same
	// (initial zero) history, so updates pile into PT queue for history 0.
	cycle := int64(1)
	for i := 0; i < 50; i++ {
		p.now = cycle // distinct cycles to dodge the alias filter
		p.Train(uint32(i*7+1), true)
		cycle++
	}
	if p.QueueOverflow == 0 {
		t.Error("expected PT queue overflow with 2 slots and no ticks")
	}
}

func TestPredictorStorageMatchesTable1(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	// HRT 0.5KB + PT 10B + queues 100B = 4096 + 80 + 800 bits.
	if got := p.StorageBits(); got != 4096+80+800 {
		t.Errorf("predictor storage = %d bits, want %d", got, 4096+80+800)
	}
}

func TestCSHRInsertLookupResolve(t *testing.T) {
	s := NewCSHR(DefaultCSHRConfig())
	const icacheSets = 64
	if _, ev := s.Insert(0, icacheSets, 100, 200); ev {
		t.Error("insert into empty CSHR must not evict")
	}
	// Fetching the victim resolves Sooner=true.
	res := s.Lookup(0, icacheSets, 100, nil)
	if len(res) != 1 || !res[0].Sooner {
		t.Fatalf("victim fetch resolution = %+v", res)
	}
	// Entry now invalid: no double resolution.
	if res := s.Lookup(0, icacheSets, 100, nil); len(res) != 0 {
		t.Error("resolved entry must be invalidated")
	}
	// Contender-side resolution.
	s.Insert(0, icacheSets, 100, 200)
	res = s.Lookup(0, icacheSets, 200, nil)
	if len(res) != 1 || res[0].Sooner {
		t.Fatalf("contender fetch resolution = %+v", res)
	}
}

func TestCSHRSetMapping(t *testing.T) {
	s := NewCSHR(DefaultCSHRConfig())
	// i-cache sets 0..7 map to CSHR set 0 (top 3 bits of 6-bit index).
	s.Insert(0, 64, 100, 200)
	// A fetch in i-cache set 8 (CSHR set 1) must not resolve it.
	if res := s.Lookup(8, 64, 100, nil); len(res) != 0 {
		t.Error("cross-set resolution should not happen")
	}
	if res := s.Lookup(7, 64, 100, nil); len(res) != 1 {
		t.Error("same-CSHR-set fetch should resolve")
	}
}

func TestCSHREvictionBenefitOfDoubt(t *testing.T) {
	cfg := CSHRConfig{Sets: 1, Ways: 2, TagBits: 12}
	s := NewCSHR(cfg)
	s.Insert(0, 64, 1, 2)
	s.Insert(0, 64, 3, 4)
	ev, has := s.Insert(0, 64, 5, 6)
	if !has {
		t.Fatal("full CSHR set must evict")
	}
	if !ev.Sooner || !ev.Evicted {
		t.Errorf("eviction resolution = %+v, want benefit-of-doubt", ev)
	}
	if ev.VictimTag != s.PartialTag(1) {
		t.Error("LRU entry (first inserted) should be evicted")
	}
}

func TestCSHRStorageMatchesTable1(t *testing.T) {
	s := NewCSHR(DefaultCSHRConfig())
	// 256 x (24 tag + 1 valid + 5 LRU) = 7680 bits = 0.9375KB.
	if got := s.StorageBits(); got != 7680 {
		t.Errorf("CSHR storage = %d bits, want 7680", got)
	}
}

func TestACICStorageTotalMatchesTable1(t *testing.T) {
	a := New(DefaultConfig())
	kb := float64(a.StorageBits()) / 8192
	if kb < 2.66 || kb > 2.68 {
		t.Errorf("ACIC storage = %.4f KB, want ~2.67", kb)
	}
}

func TestACICAdmissionFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Predictor.UpdateLatency = 0
	a := New(cfg)
	const sets = 64
	// Decide inserts a CSHR pair and returns the (initially admit-biased)
	// decision.
	// Victim and contender always share an i-cache set in the real
	// datapath; 100 and 164 both map to set 36 of 64.
	admit := a.Decide(100, 164, int(100%sets), sets, 0)
	if !admit {
		t.Error("untrained ACIC should admit (always-insert degeneration)")
	}
	if a.Decisions != 1 || a.Admitted != 1 {
		t.Errorf("decision counters: %+v", a)
	}
	// Resolve via contender fetch -> drop training for victim 100's tag.
	for i := 0; i < 64; i++ {
		a.Tick(int64(i + 1))
		a.OnFetch(164, int(164%sets), sets, false)
		a.Decide(100, 164, int(100%sets), sets, int64(i))
	}
	if a.AdmitFraction() > 0.9 {
		t.Errorf("admit fraction %.2f should fall once contender keeps winning", a.AdmitFraction())
	}
}

func TestACICVariants(t *testing.T) {
	for _, v := range []Variant{VariantTwoLevel, VariantGlobalHistory, VariantBimodal, VariantAlwaysAdmit} {
		cfg := DefaultConfig()
		cfg.Variant = v
		a := New(cfg)
		if a.Pred.Name() != v.String() {
			t.Errorf("variant %v: predictor name %q", v, a.Pred.Name())
		}
		// Smoke: decide/train cycles run without panic.
		for i := 0; i < 100; i++ {
			a.Tick(int64(i))
			a.OnFetch(uint64(i%37), i%64, 64, false)
			a.Decide(uint64(i%11), uint64(i%13+20), i%64, 64, int64(i))
		}
		if v == VariantAlwaysAdmit && a.AdmitFraction() != 1.0 {
			t.Error("always-admit variant must admit everything")
		}
	}
}

func TestACICEvictTrainingModes(t *testing.T) {
	for _, mode := range []EvictTraining{EvictTrainNone, EvictTrainAdmit, EvictTrainDrop} {
		cfg := DefaultConfig()
		cfg.EvictTrain = mode
		cfg.CSHR = CSHRConfig{Sets: 1, Ways: 2, TagBits: 12}
		cfg.Predictor.UpdateLatency = 0
		a := New(cfg)
		before := a.Pred.(twoLevelAdapter).TrainEvents
		for i := 0; i < 10; i++ {
			a.Tick(int64(i + 1))
			a.Decide(uint64(i*64), uint64(i*64+1), 0, 64, int64(i))
		}
		trained := a.Pred.(twoLevelAdapter).TrainEvents - before
		if mode == EvictTrainNone && trained != 0 {
			t.Errorf("mode %v: %d trainings, want 0", mode, trained)
		}
		if mode != EvictTrainNone && trained == 0 {
			t.Errorf("mode %v: no trainings despite evictions", mode)
		}
	}
}

func TestGlobalHistoryAndBimodalLearn(t *testing.T) {
	g := newGlobalHistory(DefaultPredictorConfig())
	for i := 0; i < 40; i++ {
		g.Train(0, false)
	}
	if g.Predict(0) {
		t.Error("global-history predictor should learn to drop")
	}
	b := newBimodal(DefaultPredictorConfig())
	for i := 0; i < 40; i++ {
		b.Train(7, true)
		b.Train(9, false)
	}
	if !b.Predict(7) || b.Predict(9) {
		t.Error("bimodal should separate per-tag outcomes")
	}
}

// Property: the i-Filter never exceeds its capacity and Insert evicts
// exactly when full.
func TestIFilterInvariantProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := NewIFilter(int(ops%15) + 1)
		resident := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			b := uint64(rng.Intn(40))
			if fl.Access(b, 0) != resident[b] {
				return false
			}
			if !resident[b] {
				victim, _, ev := fl.Insert(b, 0)
				if ev {
					if !resident[victim] {
						return false
					}
					delete(resident, victim)
				}
				resident[b] = true
			}
			if fl.Occupancy() > fl.Size() || fl.Occupancy() != len(resident) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CSHR occupancy is bounded and every insert beyond capacity
// yields exactly one eviction.
func TestCSHRInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewCSHR(CSHRConfig{Sets: 2, Ways: 4, TagBits: 12})
		for i := 0; i < 300; i++ {
			set := rng.Intn(64)
			if rng.Intn(2) == 0 {
				s.Insert(set, 64, uint64(rng.Intn(100)), uint64(rng.Intn(100)+100))
			} else {
				s.Lookup(set, 64, uint64(rng.Intn(200)), nil)
			}
			if s.Occupancy() > 8 {
				return false
			}
		}
		return uint64(s.Occupancy())+s.ResolvedVictim+s.ResolvedContend+s.EvictedUnres == s.Inserts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPrefetchAwareDiscountsCoveredReuse(t *testing.T) {
	const sets = 64
	mk := func(aware bool) *ACIC {
		cfg := DefaultConfig()
		cfg.Predictor.UpdateLatency = 0
		cfg.PrefetchAware = aware
		return New(cfg)
	}
	// Victim 100 is re-accessed first, but every resolving fetch is
	// prefetch-covered: the aware variant should learn "drop", the
	// baseline should learn "admit".
	train := func(a *ACIC) {
		for i := 0; i < 64; i++ {
			a.Tick(int64(i + 1))
			a.Decide(100, 164, int(100%sets), sets, int64(i))
			a.OnFetch(100, int(100%sets), sets, true) // prefetched fetch
		}
	}
	base := mk(false)
	train(base)
	aware := mk(true)
	train(aware)
	if base.AdmitFraction() < 0.9 {
		t.Errorf("baseline ACIC should keep admitting (got %.2f)", base.AdmitFraction())
	}
	if aware.AdmitFraction() > 0.5 {
		t.Errorf("prefetch-aware ACIC should learn to drop (got %.2f)", aware.AdmitFraction())
	}
}

func TestPrefetchAwareSkipsContenderResolutions(t *testing.T) {
	const sets = 64
	cfg := DefaultConfig()
	cfg.Predictor.UpdateLatency = 0
	cfg.PrefetchAware = true
	a := New(cfg)
	pred := a.Pred.(twoLevelAdapter)
	a.Decide(100, 164, int(100%sets), sets, 0)
	before := pred.TrainEvents
	a.OnFetch(164, int(164%sets), sets, true) // contender fetch, prefetched
	if pred.TrainEvents != before {
		t.Error("prefetch-covered contender resolution must not train")
	}
}
