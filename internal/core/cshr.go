package core

// CSHR — Comparison Status Holding Registers (Fig 5/7). Inspired by MSHRs,
// the CSHR tracks pairs of (i-Filter victim, i-cache contender) partial tags
// whose "who is re-accessed first" comparison is still unresolved. It is
// organized set-associatively: 256 entries in 8 sets of 32 ways, indexed by
// the top m=3 bits of the i-cache set index (victim and contender always
// map to the same i-cache set, hence the same CSHR set). Each set is LRU
// replaced; entries evicted before resolving give the benefit of the doubt
// to the i-Filter victim (trained as if re-accessed sooner).

// CSHRConfig sizes the CSHR. Defaults follow Table I / Section III-C.
type CSHRConfig struct {
	Sets    int // 8
	Ways    int // 32
	TagBits int // partial tag width (12)
}

// DefaultCSHRConfig matches the paper: 256 entries as 8 sets x 32 ways with
// 12-bit partial tags.
func DefaultCSHRConfig() CSHRConfig { return CSHRConfig{Sets: 8, Ways: 32, TagBits: 12} }

// Entries returns total capacity.
func (c CSHRConfig) Entries() int { return c.Sets * c.Ways }

type cshrEntry struct {
	victimTag    uint32
	contenderTag uint32
	valid        bool
	stamp        int64
	born         int64 // fetch-sequence time of insertion (Fig 6 statistics)
}

// Resolution is a resolved comparison delivered to the predictor.
type Resolution struct {
	VictimTag uint32
	// Sooner is true when the i-Filter victim was re-accessed before its
	// contender (or when the entry was evicted unresolved — benefit of the
	// doubt).
	Sooner bool
	// Evicted marks resolutions synthesized by capacity eviction.
	Evicted bool
	// Age is the number of lookups in this CSHR set between insertion and
	// resolution (Fig 6's "number of comparisons during entry lifetime").
	Age int64
}

// CSHR is the set-associative comparison tracker.
type CSHR struct {
	cfg     CSHRConfig
	sets    [][]cshrEntry
	tagMask uint32
	clock   int64
	lookups []int64 // per-set lookup counters (for entry age accounting)

	// Stats.
	Inserts         uint64
	ResolvedVictim  uint64 // resolved because the victim tag was fetched
	ResolvedContend uint64 // resolved because the contender tag was fetched
	EvictedUnres    uint64 // evicted before resolution
}

// NewCSHR creates a CSHR from cfg.
func NewCSHR(cfg CSHRConfig) *CSHR {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("core: CSHR sets must be a positive power of two")
	}
	if cfg.Ways <= 0 || cfg.TagBits <= 0 || cfg.TagBits > 32 {
		panic("core: bad CSHR geometry")
	}
	s := &CSHR{
		cfg:     cfg,
		sets:    make([][]cshrEntry, cfg.Sets),
		tagMask: uint32(1)<<cfg.TagBits - 1,
		lookups: make([]int64, cfg.Sets),
	}
	for i := range s.sets {
		s.sets[i] = make([]cshrEntry, cfg.Ways)
	}
	return s
}

// Config returns the CSHR configuration.
func (s *CSHR) Config() CSHRConfig { return s.cfg }

// PartialTag derives the stored partial tag from a block number.
func (s *CSHR) PartialTag(block uint64) uint32 {
	h := block * 0xFF51AFD7ED558CCD
	return uint32(h>>24) & s.tagMask
}

// setIndex maps an i-cache set index to a CSHR set using its top bits.
func (s *CSHR) setIndex(icacheSet, icacheSets int) int {
	if icacheSets <= s.cfg.Sets {
		return icacheSet & (s.cfg.Sets - 1)
	}
	shift := 0
	for 1<<shift < icacheSets/s.cfg.Sets {
		shift++
	}
	return icacheSet >> shift
}

// Insert records a new unresolved (victim, contender) pair for the given
// i-cache set. If the CSHR set is full, the LRU entry is evicted and
// returned as an unresolved resolution (benefit of the doubt: Sooner=true).
func (s *CSHR) Insert(icacheSet, icacheSets int, victimBlock, contenderBlock uint64) (evicted Resolution, hasEvicted bool) {
	si := s.setIndex(icacheSet, icacheSets)
	set := s.sets[si]
	s.clock++
	s.Inserts++
	e := cshrEntry{
		victimTag:    s.PartialTag(victimBlock),
		contenderTag: s.PartialTag(contenderBlock),
		valid:        true,
		stamp:        s.clock,
		born:         s.lookups[si],
	}
	lru := -1
	var lruStamp int64
	for i := range set {
		if !set[i].valid {
			set[i] = e
			return Resolution{}, false
		}
		if lru == -1 || set[i].stamp < lruStamp {
			lru, lruStamp = i, set[i].stamp
		}
	}
	old := set[lru]
	set[lru] = e
	s.EvictedUnres++
	return Resolution{
		VictimTag: old.victimTag,
		Sooner:    true, // benefit of the doubt to the i-Filter victim
		Evicted:   true,
		Age:       s.lookups[si] - old.born,
	}, true
}

// Lookup searches the CSHR set for the fetched block's partial tag and
// resolves matching comparisons (Fig 7): a victim-field match resolves that
// single entry with Sooner=true (at most one can match, see §III-C2); a
// contender-field match resolves with Sooner=false and may hit several
// entries. Resolved entries are invalidated. Results are appended to dst
// and returned.
func (s *CSHR) Lookup(icacheSet, icacheSets int, fetchedBlock uint64, dst []Resolution) []Resolution {
	si := s.setIndex(icacheSet, icacheSets)
	s.lookups[si]++
	tag := s.PartialTag(fetchedBlock)
	set := s.sets[si]
	for i := range set {
		if !set[i].valid {
			continue
		}
		switch tag {
		case set[i].victimTag:
			dst = append(dst, Resolution{VictimTag: set[i].victimTag, Sooner: true, Age: s.lookups[si] - set[i].born})
			set[i].valid = false
			s.ResolvedVictim++
		case set[i].contenderTag:
			dst = append(dst, Resolution{VictimTag: set[i].victimTag, Sooner: false, Age: s.lookups[si] - set[i].born})
			set[i].valid = false
			s.ResolvedContend++
		}
	}
	return dst
}

// Occupancy returns the number of valid entries.
func (s *CSHR) Occupancy() int {
	n := 0
	for _, set := range s.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// StorageBits returns CSHR storage per Table I: per entry, two partial tags
// + 1 valid bit + 5 LRU bits (for the 32-way organization).
func (s *CSHR) StorageBits() int {
	lruBits := 0
	for 1<<lruBits < s.cfg.Ways {
		lruBits++
	}
	return s.cfg.Entries() * (2*s.cfg.TagBits + 1 + lruBits)
}
