// Package core implements the paper's contribution: the Admission-
// Controlled Instruction Cache (ACIC). It provides the i-Filter (a small
// fully-associative buffer that absorbs the spatial/short-temporal burst of
// accesses to an instruction block), the two-level admission predictor
// (History Register Table + Pattern Table with queued updates), and the
// Comparison Status Holding Registers (CSHR) that resolve, after the fact,
// whether an i-Filter victim was re-accessed sooner than the i-cache
// contender it was compared against.
package core

// IFilter is the 16-slot fully-associative, LRU-replaced buffer that sits
// beside the i-cache (Fig 2). Missed blocks are placed here first; only on
// eviction from the i-Filter does a block become a candidate for i-cache
// insertion, at which point admission control runs.
type IFilter struct {
	slots []ifSlot
	clock int64

	Hits   uint64
	Misses uint64
}

type ifSlot struct {
	block uint64
	stamp int64
	next  int64 // carried next-use time of block (0 = unknown)
	valid bool
}

// NewIFilter creates an i-Filter with n slots (16 in the paper's default).
func NewIFilter(n int) *IFilter {
	if n <= 0 {
		panic("core: i-Filter size must be positive")
	}
	return &IFilter{slots: make([]ifSlot, n)}
}

// Size returns the number of slots.
func (f *IFilter) Size() int { return len(f.slots) }

// Contains reports whether block is resident without touching LRU state.
func (f *IFilter) Contains(block uint64) bool {
	for i := range f.slots {
		if f.slots[i].valid && f.slots[i].block == block {
			return true
		}
	}
	return false
}

// Access looks up block, updating LRU state and hit statistics on a hit.
// next, when non-zero, is the next-use time of block strictly after this
// access (successor-array value); the slot carries it so that, at eviction
// time, the victim's next use is known without an oracle query.
func (f *IFilter) Access(block uint64, next int64) bool {
	for i := range f.slots {
		if f.slots[i].valid && f.slots[i].block == block {
			f.clock++
			f.slots[i].stamp = f.clock
			f.slots[i].next = next
			f.Hits++
			return true
		}
	}
	f.Misses++
	return false
}

// Insert places block into the filter, evicting the LRU slot if full.
// It returns the evicted block, its carried next-use time (0 when the
// filter was run without next-use tracking), and whether an eviction
// happened. The caller (the ACIC datapath) runs admission control on the
// victim.
func (f *IFilter) Insert(block uint64, next int64) (victim uint64, victimNext int64, evicted bool) {
	f.clock++
	lru, lruStamp := -1, int64(0)
	for i := range f.slots {
		if !f.slots[i].valid {
			f.slots[i] = ifSlot{block: block, stamp: f.clock, next: next, valid: true}
			return 0, 0, false
		}
		if lru == -1 || f.slots[i].stamp < lruStamp {
			lru, lruStamp = i, f.slots[i].stamp
		}
	}
	victim, victimNext = f.slots[lru].block, f.slots[lru].next
	f.slots[lru] = ifSlot{block: block, stamp: f.clock, next: next, valid: true}
	return victim, victimNext, true
}

// Invalidate removes block if resident (used when a block is promoted into
// the i-cache by a path other than filter eviction, e.g. victim-cache swap).
func (f *IFilter) Invalidate(block uint64) bool {
	for i := range f.slots {
		if f.slots[i].valid && f.slots[i].block == block {
			f.slots[i].valid = false
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid slots.
func (f *IFilter) Occupancy() int {
	n := 0
	for i := range f.slots {
		if f.slots[i].valid {
			n++
		}
	}
	return n
}

// StorageBits returns the metadata+data storage of the filter in bits, as
// accounted in Table I: per slot, 58 tag bits + 1 valid + 4 LRU bits of
// metadata plus the 64-byte instruction block.
func (f *IFilter) StorageBits() int {
	const metadataBits = 58 + 1 + 4
	const blockBits = 64 * 8
	return len(f.slots) * (metadataBits + blockBits)
}
