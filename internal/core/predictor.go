package core

// The two-level admission predictor (Fig 4) mirrors the Yeh/Patt two-level
// branch predictor. The first level, the History Register Table (HRT), is
// indexed by a hash of the i-Filter victim's partial tag; each entry is a
// short shift register of past comparison outcomes (1 = the victim was
// re-accessed sooner than its i-cache contender). The second level, the
// Pattern Table (PT), is indexed by the history value; each entry is a
// saturating counter thresholded to produce the admit/drop decision.
//
// Updates are not instantaneous in hardware: HRT is read, then PT is
// updated one cycle later through a 10-slot per-entry update queue (Fig 8),
// and the HRT history register shifts after its value has been handed to
// the PT updater. The predictor models that pipeline when UpdateLatency is
// positive, so predictions made in the shadow of an in-flight update see
// stale state exactly as the real datapath would (Fig 9 / Fig 14).

// PredictorConfig sizes the two-level predictor. Defaults follow Table I.
type PredictorConfig struct {
	HRTEntries    int   // number of history registers (1024)
	HistoryBits   int   // bits per history register (4) -> PT has 2^bits entries
	CounterBits   int   // PT counter width (5)
	QueueSlots    int   // PT update queue slots per entry (10)
	UpdateLatency int64 // cycles from outcome to PT visibility (2; 0 = instant)
	Threshold     int64 // admit when counter >= Threshold; <0 selects midpoint
}

// DefaultPredictorConfig matches Table I: 1024-entry HRT with 4-bit
// histories, a 16-entry PT with 5-bit counters, 10-slot update queues, and
// the 2-cycle parallel update path.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		HRTEntries:    1024,
		HistoryBits:   4,
		CounterBits:   5,
		QueueSlots:    10,
		UpdateLatency: 2,
		Threshold:     -1,
	}
}

func (c PredictorConfig) threshold() int64 {
	if c.Threshold >= 0 {
		return c.Threshold
	}
	return int64(1) << (c.CounterBits - 1) // midpoint of the counter range
}

type ptUpdate struct {
	due       int64
	increment bool
}

type hrtShift struct {
	due     int64
	idx     int
	outcome bool
}

// Predictor is the two-level admission predictor.
type Predictor struct {
	cfg       PredictorConfig
	hrt       []uint32
	pt        []int64
	ctrMax    int64
	threshold int64
	histMask  uint32

	queues    [][]ptUpdate // pending PT updates, one FIFO per PT entry
	pendHRT   []hrtShift   // HRT shifts in flight
	now       int64
	trainedAt []int64 // per-HRT-entry cycle of last training (alias filter)

	// Stats.
	Predictions   uint64
	Admits        uint64
	TrainEvents   uint64
	AliasDrops    uint64
	QueueOverflow uint64
}

// NewPredictor creates a predictor from cfg.
func NewPredictor(cfg PredictorConfig) *Predictor {
	if cfg.HRTEntries <= 0 || cfg.HistoryBits <= 0 || cfg.HistoryBits > 20 || cfg.CounterBits <= 0 || cfg.CounterBits > 62 {
		panic("core: bad predictor configuration")
	}
	p := &Predictor{
		cfg:       cfg,
		hrt:       make([]uint32, cfg.HRTEntries),
		pt:        make([]int64, 1<<cfg.HistoryBits),
		ctrMax:    int64(1)<<cfg.CounterBits - 1,
		threshold: cfg.threshold(),
		histMask:  uint32(1)<<cfg.HistoryBits - 1,
		queues:    make([][]ptUpdate, 1<<cfg.HistoryBits),
		trainedAt: make([]int64, cfg.HRTEntries),
	}
	for i := range p.trainedAt {
		p.trainedAt[i] = -1
	}
	// Initialize counters at the threshold so an untrained ACIC behaves as
	// "always insert", i.e. degenerates to the plain i-Filter design until
	// comparisons have been observed.
	for i := range p.pt {
		p.pt[i] = p.threshold
	}
	return p
}

// Config returns the predictor configuration.
func (p *Predictor) Config() PredictorConfig { return p.cfg }

// hrtIndex hashes a partial tag into the HRT.
func (p *Predictor) hrtIndex(partialTag uint32) int {
	h := uint64(partialTag) * 0x9E3779B97F4A7C15
	return int(h % uint64(p.cfg.HRTEntries))
}

// Predict returns the admission decision for an i-Filter victim identified
// by its partial tag: true to insert into the i-cache, false to drop.
func (p *Predictor) Predict(partialTag uint32) bool {
	p.Predictions++
	h := p.hrt[p.hrtIndex(partialTag)]
	admit := p.pt[h] >= p.threshold
	if admit {
		p.Admits++
	}
	return admit
}

// Train records one resolved comparison outcome for the i-Filter victim
// identified by partialTag: outcome true means the victim was re-accessed
// sooner than its i-cache contender. With a positive UpdateLatency the PT
// counter update is queued and the HRT shift lands one cycle later;
// multiple trainings hitting the same HRT entry in the same cycle are
// dropped after the first (the paper's aliasing rule).
func (p *Predictor) Train(partialTag uint32, outcome bool) {
	idx := p.hrtIndex(partialTag)
	if p.trainedAt[idx] == p.now {
		p.AliasDrops++
		return
	}
	p.trainedAt[idx] = p.now
	p.TrainEvents++
	h := p.hrt[idx] // history value handed to the PT updater
	if p.cfg.UpdateLatency <= 0 {
		p.applyPT(h, outcome)
		p.hrt[idx] = ((h << 1) | b2u(outcome)) & p.histMask
		return
	}
	q := p.queues[h]
	if len(q) >= p.cfg.QueueSlots {
		p.QueueOverflow++
	} else {
		p.queues[h] = append(q, ptUpdate{due: p.now + p.cfg.UpdateLatency, increment: outcome})
	}
	p.pendHRT = append(p.pendHRT, hrtShift{due: p.now + 1, idx: idx, outcome: outcome})
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (p *Predictor) applyPT(h uint32, increment bool) {
	if increment {
		if p.pt[h] < p.ctrMax {
			p.pt[h]++
		}
	} else if p.pt[h] > 0 {
		p.pt[h]--
	}
}

// Tick advances the predictor to the given cycle, draining due HRT shifts
// and popping due PT-queue heads (one per elapsed cycle per queue, modeling
// the single update port per PT entry).
func (p *Predictor) Tick(cycle int64) {
	if cycle <= p.now {
		return
	}
	elapsed := cycle - p.now
	p.now = cycle
	if len(p.pendHRT) > 0 {
		kept := p.pendHRT[:0]
		for _, s := range p.pendHRT {
			if s.due <= cycle {
				p.hrt[s.idx] = ((p.hrt[s.idx] << 1) | b2u(s.outcome)) & p.histMask
			} else {
				kept = append(kept, s)
			}
		}
		p.pendHRT = kept
	}
	for h := range p.queues {
		q := p.queues[h]
		pops := 0
		for pops < len(q) && q[pops].due <= cycle && int64(pops) < elapsed {
			p.applyPT(uint32(h), q[pops].increment)
			pops++
		}
		if pops > 0 {
			// Compact to the front instead of re-slicing the head away:
			// q[1:] bleeds capacity, so the next Train append reallocates —
			// a steady-state heap allocation the zero-alloc guard forbids.
			p.queues[h] = q[:copy(q, q[pops:])]
		}
	}
}

// Counter exposes the PT counter for a history value (tests, introspection).
func (p *Predictor) Counter(history uint32) int64 { return p.pt[history&p.histMask] }

// History exposes the HRT entry a partial tag maps to.
func (p *Predictor) History(partialTag uint32) uint32 { return p.hrt[p.hrtIndex(partialTag)] }

// StorageBits returns HRT + PT + update-queue storage per Table I:
// HRT entries x history bits, PT entries x counter bits, and per PT entry a
// QueueSlots-deep queue of (history-bits index + 1 update bit) slots.
func (p *Predictor) StorageBits() int {
	hrt := p.cfg.HRTEntries * p.cfg.HistoryBits
	ptEntries := 1 << p.cfg.HistoryBits
	pt := ptEntries * p.cfg.CounterBits
	queues := ptEntries * p.cfg.QueueSlots * (p.cfg.HistoryBits + 1)
	return hrt + pt + queues
}
