package core

// ACIC glues the three structures together: the i-Filter absorbs bursts; on
// a filter eviction the admission predictor decides whether the victim
// enters the i-cache in place of the replacement policy's contender or is
// dropped; and the CSHR observes the subsequent fetch stream to resolve
// which of the two was re-accessed sooner, training the predictor.
//
// ACIC is deliberately agnostic of the i-cache itself: the owning i-cache
// subsystem (internal/icache) calls OnFetch for every demand block fetch,
// routes misses into the filter via FillMiss, and consults Decide when the
// filter evicts. This keeps ACIC a pure admission controller, mirroring the
// paper's datapath (Figs 2, 5, 7, 8).

// Variant selects the admission predictor organization (Fig 17 ablation).
type Variant int

// Predictor variants.
const (
	// VariantTwoLevel is the default per-address two-level predictor.
	VariantTwoLevel Variant = iota
	// VariantGlobalHistory shares one global comparison-history register
	// across all blocks (the "global history two-level predictor" bar).
	VariantGlobalHistory
	// VariantBimodal indexes counters directly by the victim's tag with no
	// history (the "bimodal predictor" bar).
	VariantBimodal
	// VariantAlwaysAdmit disables prediction: every filter victim is
	// admitted ("i-Filter only" bar, also Fig 3a's Always-insert scheme).
	VariantAlwaysAdmit
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantTwoLevel:
		return "two-level"
	case VariantGlobalHistory:
		return "global-history"
	case VariantBimodal:
		return "bimodal"
	case VariantAlwaysAdmit:
		return "always-admit"
	default:
		return "unknown"
	}
}

// EvictTraining selects what an unresolved CSHR eviction teaches the
// predictor.
type EvictTraining int

// Eviction-training modes.
const (
	// EvictTrainNone discards unresolved comparisons (the default). The
	// paper's prose gives the evicted i-Filter victim "the benefit of the
	// doubt", but its datapath (Fig 8) only updates the tables from
	// *matched* CSHR entries; training on synthetic outcomes floods the PT
	// with admit updates on workloads where a third of comparisons never
	// resolve, so the conservative reading is the default here. The
	// literal reading is available as EvictTrainAdmit and is evaluated by
	// the BenchmarkAblationCSHRDefault ablation.
	EvictTrainNone EvictTraining = iota
	// EvictTrainAdmit trains eviction as "victim re-accessed sooner".
	EvictTrainAdmit
	// EvictTrainDrop trains eviction as "contender re-accessed sooner".
	EvictTrainDrop
)

// Config assembles a full ACIC instance. Zero value is not usable; use
// DefaultConfig.
type Config struct {
	FilterSlots int // i-Filter entries (16)
	Predictor   PredictorConfig
	CSHR        CSHRConfig
	Variant     Variant
	EvictTrain  EvictTraining

	// PrefetchAware enables the extension sketched in the paper's future
	// work (§VI): comparisons resolved by a fetch that a prefetcher had
	// already covered do not train "admit" — a block the prefetcher
	// reliably delivers does not need to occupy i-cache space, so its
	// resolution trains "drop" on the victim side and is ignored on the
	// contender side. See BenchmarkExtensionPrefetchAware.
	PrefetchAware bool
}

// DefaultConfig returns the paper's Table I configuration.
func DefaultConfig() Config {
	return Config{
		FilterSlots: 16,
		Predictor:   DefaultPredictorConfig(),
		CSHR:        DefaultCSHRConfig(),
		Variant:     VariantTwoLevel,
		EvictTrain:  EvictTrainNone,
	}
}

// AdmissionPredictor abstracts the predictor organization (Fig 17).
type AdmissionPredictor interface {
	// Predict returns true to admit the i-Filter victim into the i-cache.
	Predict(partialTag uint32) bool
	// Train records a resolved comparison outcome.
	Train(partialTag uint32, outcome bool)
	// Tick advances internal update pipelines to the given cycle.
	Tick(cycle int64)
	// StorageBits accounts the predictor's storage.
	StorageBits() int
	// Name identifies the organization.
	Name() string
}

// twoLevelAdapter adapts *Predictor to AdmissionPredictor.
type twoLevelAdapter struct{ *Predictor }

func (a twoLevelAdapter) Name() string { return "two-level" }

// globalHistory is the Fig 17 "global history" ablation: one shared history
// register indexes the PT; the victim's identity is ignored for indexing.
type globalHistory struct {
	pt        []int64
	hist      uint32
	histMask  uint32
	ctrMax    int64
	threshold int64
	bits      int
	ctrBits   int
}

func newGlobalHistory(cfg PredictorConfig) *globalHistory {
	g := &globalHistory{
		pt:        make([]int64, 1<<cfg.HistoryBits),
		histMask:  uint32(1)<<cfg.HistoryBits - 1,
		ctrMax:    int64(1)<<cfg.CounterBits - 1,
		threshold: cfg.threshold(),
		bits:      cfg.HistoryBits,
		ctrBits:   cfg.CounterBits,
	}
	for i := range g.pt {
		g.pt[i] = g.threshold
	}
	return g
}

func (g *globalHistory) Predict(uint32) bool { return g.pt[g.hist] >= g.threshold }

func (g *globalHistory) Train(_ uint32, outcome bool) {
	if outcome {
		if g.pt[g.hist] < g.ctrMax {
			g.pt[g.hist]++
		}
	} else if g.pt[g.hist] > 0 {
		g.pt[g.hist]--
	}
	var bit uint32
	if outcome {
		bit = 1
	}
	g.hist = ((g.hist << 1) | bit) & g.histMask
}

func (g *globalHistory) Tick(int64) {}

func (g *globalHistory) StorageBits() int { return g.bits + len(g.pt)*g.ctrBits }

func (g *globalHistory) Name() string { return "global-history" }

// bimodal is the Fig 17 "bimodal" ablation: per-tag counters, no history.
type bimodal struct {
	ctr       []int64
	ctrMax    int64
	threshold int64
	ctrBits   int
}

func newBimodal(cfg PredictorConfig) *bimodal {
	b := &bimodal{
		ctr:       make([]int64, cfg.HRTEntries),
		ctrMax:    int64(1)<<cfg.CounterBits - 1,
		threshold: cfg.threshold(),
		ctrBits:   cfg.CounterBits,
	}
	for i := range b.ctr {
		b.ctr[i] = b.threshold
	}
	return b
}

func (b *bimodal) index(tag uint32) int {
	return int(uint64(tag) * 0x9E3779B97F4A7C15 % uint64(len(b.ctr)))
}

func (b *bimodal) Predict(tag uint32) bool { return b.ctr[b.index(tag)] >= b.threshold }

func (b *bimodal) Train(tag uint32, outcome bool) {
	i := b.index(tag)
	if outcome {
		if b.ctr[i] < b.ctrMax {
			b.ctr[i]++
		}
	} else if b.ctr[i] > 0 {
		b.ctr[i]--
	}
}

func (b *bimodal) Tick(int64) {}

func (b *bimodal) StorageBits() int { return len(b.ctr) * b.ctrBits }

func (b *bimodal) Name() string { return "bimodal" }

// alwaysAdmit admits everything (plain i-Filter design).
type alwaysAdmit struct{}

func (alwaysAdmit) Predict(uint32) bool { return true }
func (alwaysAdmit) Train(uint32, bool)  {}
func (alwaysAdmit) Tick(int64)          {}
func (alwaysAdmit) StorageBits() int    { return 0 }
func (alwaysAdmit) Name() string        { return "always-admit" }

// Decision records one admission decision for offline accuracy analysis
// (Fig 12a compares these against oracle reuse distances).
type Decision struct {
	Victim    uint64 // i-Filter victim block
	Contender uint64 // i-cache contender block
	Admitted  bool
	AccessIdx int64 // block-access sequence index at decision time
}

// ACIC is the complete admission-controlled i-cache front end.
type ACIC struct {
	cfg    Config
	Filter *IFilter
	Pred   AdmissionPredictor
	CSHR   *CSHR

	resolutions []Resolution // scratch, reused across fetches

	// OnDecision, when set, observes every admission decision (used by the
	// accuracy experiments; nil in normal runs).
	OnDecision func(Decision)

	// AgeSamples, when set, receives the CSHR entry age of every resolved
	// or evicted comparison (Fig 6); nil in normal runs.
	AgeSamples func(age int64, resolved bool)

	// Stats.
	Decisions uint64
	Admitted  uint64
	Dropped   uint64
}

// New creates an ACIC instance from cfg.
func New(cfg Config) *ACIC {
	var pred AdmissionPredictor
	switch cfg.Variant {
	case VariantTwoLevel:
		pred = twoLevelAdapter{NewPredictor(cfg.Predictor)}
	case VariantGlobalHistory:
		pred = newGlobalHistory(cfg.Predictor)
	case VariantBimodal:
		pred = newBimodal(cfg.Predictor)
	case VariantAlwaysAdmit:
		pred = alwaysAdmit{}
	default:
		panic("core: unknown ACIC variant")
	}
	return &ACIC{
		cfg:    cfg,
		Filter: NewIFilter(cfg.FilterSlots),
		Pred:   pred,
		CSHR:   NewCSHR(cfg.CSHR),
	}
}

// Config returns the assembled configuration.
func (a *ACIC) Config() Config { return a.cfg }

// OnFetch must be called for every demand fetch of an instruction block
// (before the miss path runs). It resolves CSHR comparisons against the
// fetched block and trains the predictor. prefetched reports that the
// fetched block was supplied by a prefetcher since the last demand to it;
// the paper's baseline ACIC ignores the flag, while the prefetch-aware
// extension (Config.PrefetchAware) discounts such resolutions.
func (a *ACIC) OnFetch(block uint64, icacheSet, icacheSets int, prefetched bool) {
	a.resolutions = a.CSHR.Lookup(icacheSet, icacheSets, block, a.resolutions[:0])
	for _, r := range a.resolutions {
		outcome := r.Sooner
		if a.cfg.PrefetchAware && prefetched {
			if r.Sooner {
				// The victim was re-accessed first, but the prefetcher
				// delivered it: keeping it in i-cache buys nothing.
				outcome = false
			} else {
				// The contender's reuse was prefetch-covered; the
				// comparison says nothing about the victim. Skip.
				if a.AgeSamples != nil {
					a.AgeSamples(r.Age, true)
				}
				continue
			}
		}
		a.Pred.Train(r.VictimTag, outcome)
		if a.AgeSamples != nil {
			a.AgeSamples(r.Age, true)
		}
	}
}

// Decide runs admission control for an i-Filter victim against the i-cache
// contender chosen by the replacement policy, inserting the pair into the
// CSHR for future resolution. It returns true when the victim should be
// inserted into the i-cache.
func (a *ACIC) Decide(victimBlock, contenderBlock uint64, icacheSet, icacheSets int, accessIdx int64) bool {
	admit := a.Pred.Predict(a.CSHR.PartialTag(victimBlock))
	a.Decisions++
	if admit {
		a.Admitted++
	} else {
		a.Dropped++
	}
	if ev, has := a.CSHR.Insert(icacheSet, icacheSets, victimBlock, contenderBlock); has {
		switch a.cfg.EvictTrain {
		case EvictTrainAdmit:
			a.Pred.Train(ev.VictimTag, true)
		case EvictTrainDrop:
			a.Pred.Train(ev.VictimTag, false)
		}
		if a.AgeSamples != nil {
			a.AgeSamples(ev.Age, false)
		}
	}
	if a.OnDecision != nil {
		a.OnDecision(Decision{Victim: victimBlock, Contender: contenderBlock, Admitted: admit, AccessIdx: accessIdx})
	}
	return admit
}

// Tick advances predictor update pipelines to the given cycle.
func (a *ACIC) Tick(cycle int64) { a.Pred.Tick(cycle) }

// AdmitFraction returns the fraction of filter victims admitted (Fig 13).
func (a *ACIC) AdmitFraction() float64 {
	if a.Decisions == 0 {
		return 0
	}
	return float64(a.Admitted) / float64(a.Decisions)
}

// StorageBits returns the total added state of ACIC per Table I: i-Filter
// metadata+data, HRT, PT, PT update queues, and CSHR.
func (a *ACIC) StorageBits() int {
	return a.Filter.StorageBits() + a.Pred.StorageBits() + a.CSHR.StorageBits()
}
