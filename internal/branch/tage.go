// Package branch implements the front-end control-flow substrate of the
// simulated core (Table II): a TAGE conditional-branch direction predictor
// (Seznec & Michaud), an 8192-entry 4-way BTB, and a return address stack.
// The package also provides Annotate, a sequential predict-and-train pass
// over a trace that records, per instruction, whether the front end would
// have redirected on it; the timing model and the fetch-directed prefetcher
// both consume these annotations.
package branch

// TAGEConfig sizes the TAGE predictor.
type TAGEConfig struct {
	BimodalBits  int   // log2 bimodal entries
	TableBits    int   // log2 entries per tagged table
	TagBits      int   // tag width in tagged tables
	HistLengths  []int // geometric history lengths, ascending
	MaxHistory   int   // history buffer capacity (>= max hist length)
	UseAltOnNewl bool  // prefer alt prediction for newly allocated entries
}

// DefaultTAGEConfig returns a compact 4-table TAGE suited to the simulated
// front end.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BimodalBits: 13,
		TableBits:   11,
		TagBits:     9,
		HistLengths: []int{8, 24, 64, 160},
		MaxHistory:  256,
	}
}

type tageEntry struct {
	tag    uint32
	ctr    int8 // -4..3 signed counter, taken when >= 0
	useful uint8
}

// folded maintains a cyclically folded history register for index/tag
// computation, updated incrementally as history bits shift in and out.
type folded struct {
	comp    uint32
	compLen int
	origLen int
	outPos  int
}

func newFolded(origLen, compLen int) folded {
	return folded{compLen: compLen, origLen: origLen, outPos: origLen % compLen}
}

func (f *folded) update(newBit, oldBit uint32) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << f.outPos
	f.comp ^= f.comp >> f.compLen
	f.comp &= 1<<f.compLen - 1
}

// TAGE is the tagged geometric-history-length direction predictor.
type TAGE struct {
	cfg     TAGEConfig
	bimodal []int8
	tables  [][]tageEntry
	idxFold []folded
	tagFold [][2]folded

	hist    []uint8 // ring buffer of outcome bits
	histPos int

	state uint64 // allocation tie-break randomness

	// Stats.
	Lookups     uint64
	Mispredicts uint64
}

// NewTAGE creates a TAGE predictor.
func NewTAGE(cfg TAGEConfig) *TAGE {
	t := &TAGE{
		cfg:     cfg,
		bimodal: make([]int8, 1<<cfg.BimodalBits),
		hist:    make([]uint8, cfg.MaxHistory),
		state:   0x853C49E6748FEA9B,
	}
	t.tables = make([][]tageEntry, len(cfg.HistLengths))
	t.idxFold = make([]folded, len(cfg.HistLengths))
	t.tagFold = make([][2]folded, len(cfg.HistLengths))
	for i, hl := range cfg.HistLengths {
		if hl > cfg.MaxHistory {
			panic("branch: history length exceeds MaxHistory")
		}
		t.tables[i] = make([]tageEntry, 1<<cfg.TableBits)
		t.idxFold[i] = newFolded(hl, cfg.TableBits)
		t.tagFold[i][0] = newFolded(hl, cfg.TagBits)
		t.tagFold[i][1] = newFolded(hl, cfg.TagBits-1)
	}
	return t
}

func (t *TAGE) bimodalIndex(pc uint64) int {
	return int((pc >> 2) & uint64(len(t.bimodal)-1))
}

func (t *TAGE) index(pc uint64, table int) int {
	hl := t.cfg.HistLengths[table]
	h := (pc >> 2) ^ (pc >> (2 + uint(t.cfg.TableBits))) ^ uint64(t.idxFold[table].comp) ^ uint64(hl)
	return int(h & uint64(len(t.tables[table])-1))
}

func (t *TAGE) tag(pc uint64, table int) uint32 {
	h := uint32(pc>>2) ^ t.tagFold[table][0].comp ^ (t.tagFold[table][1].comp << 1)
	return h & (1<<t.cfg.TagBits - 1)
}

// Predict returns the predicted direction for a conditional branch at pc.
// It performs the lookup only; call Update with the actual outcome next.
func (t *TAGE) Predict(pc uint64) bool {
	pred, _, _, _ := t.predictInternal(pc)
	return pred
}

func (t *TAGE) predictInternal(pc uint64) (pred bool, provider int, altPred bool, providerIdx int) {
	provider = -1
	altProvider := -1
	var altIdx int
	for i := len(t.tables) - 1; i >= 0; i-- {
		idx := t.index(pc, i)
		if t.tables[i][idx].tag == t.tag(pc, i) {
			if provider == -1 {
				provider, providerIdx = i, idx
			} else if altProvider == -1 {
				altProvider, altIdx = i, idx
			}
		}
	}
	bi := t.bimodal[t.bimodalIndex(pc)] >= 0
	if altProvider >= 0 {
		altPred = t.tables[altProvider][altIdx].ctr >= 0
	} else {
		altPred = bi
	}
	if provider >= 0 {
		pred = t.tables[provider][providerIdx].ctr >= 0
	} else {
		pred = bi
	}
	return pred, provider, altPred, providerIdx
}

// PredictAndUpdate predicts the branch at pc, trains with the actual
// outcome, shifts history, and reports whether the prediction was wrong.
func (t *TAGE) PredictAndUpdate(pc uint64, taken bool) (mispredicted bool) {
	t.Lookups++
	pred, provider, altPred, providerIdx := t.predictInternal(pc)
	mispredicted = pred != taken
	if mispredicted {
		t.Mispredicts++
	}

	// Update provider counter (or bimodal).
	if provider >= 0 {
		e := &t.tables[provider][providerIdx]
		if taken {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > -4 {
			e.ctr--
		}
		if pred != altPred {
			if pred == taken {
				if e.useful < 3 {
					e.useful++
				}
			} else if e.useful > 0 {
				e.useful--
			}
		}
	} else {
		b := &t.bimodal[t.bimodalIndex(pc)]
		if taken {
			if *b < 3 {
				*b++
			}
		} else if *b > -4 {
			*b--
		}
	}

	// Allocate a longer-history entry on a provider misprediction.
	if mispredicted && provider < len(t.tables)-1 {
		allocated := false
		for i := provider + 1; i < len(t.tables); i++ {
			idx := t.index(pc, i)
			if t.tables[i][idx].useful == 0 {
				t.tables[i][idx] = tageEntry{tag: t.tag(pc, i), ctr: ctrInit(taken)}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations can succeed.
			for i := provider + 1; i < len(t.tables); i++ {
				idx := t.index(pc, i)
				if t.tables[i][idx].useful > 0 {
					t.tables[i][idx].useful--
				}
			}
		}
	}

	t.shiftHistory(taken)
	return mispredicted
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

func (t *TAGE) shiftHistory(taken bool) {
	var newBit uint8
	if taken {
		newBit = 1
	}
	t.histPos = (t.histPos + 1) % len(t.hist)
	t.hist[t.histPos] = newBit
	for i, hl := range t.cfg.HistLengths {
		oldPos := (t.histPos - hl + len(t.hist)) % len(t.hist)
		oldBit := uint32(t.hist[oldPos])
		t.idxFold[i].update(uint32(newBit), oldBit)
		t.tagFold[i][0].update(uint32(newBit), oldBit)
		t.tagFold[i][1].update(uint32(newBit), oldBit)
	}
}

// MispredictRate returns mispredictions per lookup.
func (t *TAGE) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}
