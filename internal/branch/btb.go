package branch

import "acic/internal/trace"

// BTB is the branch target buffer: 8192-entry, 4-way set associative with
// per-set LRU (Table II). It caches branch targets; a taken branch whose
// target is absent causes a misfetch redirect even when the direction was
// predicted correctly.
type BTB struct {
	sets, ways int
	entries    []btbEntry
	clock      int64

	Lookups   uint64
	Misses    uint64
	WrongTgts uint64
}

type btbEntry struct {
	pc     uint64
	target uint64
	stamp  int64
	valid  bool
}

// NewBTB creates a BTB with the given total entries and associativity.
func NewBTB(entries, ways int) *BTB {
	sets := entries / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("branch: BTB sets must be a positive power of two")
	}
	return &BTB{sets: sets, ways: ways, entries: make([]btbEntry, entries)}
}

func (b *BTB) set(pc uint64) int { return int((pc >> 2) & uint64(b.sets-1)) }

// Lookup returns the cached target for pc.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	b.Lookups++
	base := b.set(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		e := &b.entries[base+w]
		if e.valid && e.pc == pc {
			b.clock++
			e.stamp = b.clock
			return e.target, true
		}
	}
	b.Misses++
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	base := b.set(pc) * b.ways
	b.clock++
	lru, lruStamp := 0, int64(1)<<62
	for w := 0; w < b.ways; w++ {
		e := &b.entries[base+w]
		if e.valid && e.pc == pc {
			e.target = target
			e.stamp = b.clock
			return
		}
		if !e.valid {
			*e = btbEntry{pc: pc, target: target, stamp: b.clock, valid: true}
			return
		}
		if e.stamp < lruStamp {
			lru, lruStamp = w, e.stamp
		}
	}
	b.entries[base+lru] = btbEntry{pc: pc, target: target, stamp: b.clock, valid: true}
}

// RAS is the return address stack.
type RAS struct {
	stack []uint64
	top   int
}

// NewRAS creates a RAS with the given depth.
func NewRAS(depth int) *RAS { return &RAS{stack: make([]uint64, depth)} }

// Push records a return address on a call.
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
}

// Pop predicts the target of a return.
func (r *RAS) Pop() uint64 {
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	return r.stack[r.top]
}

// Redirect classifies the front-end redirect an instruction causes.
type Redirect uint8

// Redirect kinds, in increasing cost order.
const (
	// RedirectNone: correctly predicted (or not a branch).
	RedirectNone Redirect = iota
	// RedirectMisfetch: direction right but target unknown at fetch (BTB
	// miss on a taken branch); resolved at decode.
	RedirectMisfetch
	// RedirectMispredict: wrong direction or wrong target; resolved at
	// execute, flushing the front end.
	RedirectMispredict
)

// Annotation is the per-instruction front-end outcome recorded by Annotate.
type Annotation struct {
	Redirect Redirect
}

// FrontEnd bundles the three predictors as the fetch engine sees them.
type FrontEnd struct {
	TAGE *TAGE
	BTB  *BTB
	RAS  *RAS
}

// NewFrontEnd constructs the Table II front-end: TAGE, 8192x4 BTB, 32-deep
// RAS.
func NewFrontEnd() *FrontEnd {
	return &FrontEnd{TAGE: NewTAGE(DefaultTAGEConfig()), BTB: NewBTB(8192, 4), RAS: NewRAS(32)}
}

// Annotate runs the sequential predict-and-train pass over a trace,
// returning one Annotation per instruction. The timing model charges
// redirect penalties from these, and the fetch-directed prefetcher stops
// its run-ahead at mispredicted branches. Annotations are independent of
// the i-cache scheme, so one pass serves every scheme evaluated on the
// trace.
func (fe *FrontEnd) Annotate(tr *trace.Trace) []Annotation {
	return fe.AnnotateInsts(tr.Insts)
}

// AnnotateInsts is Annotate over a bare instruction window. The pass is a
// plain sequential walk over predictor state, so feeding a trace through
// one FrontEnd window by window yields exactly the annotations of a single
// whole-trace call — that per-window form is what the streaming prepare
// pipeline runs (DESIGN.md §12).
func (fe *FrontEnd) AnnotateInsts(insts []trace.Inst) []Annotation {
	out := make([]Annotation, len(insts))
	for i := range insts {
		in := &insts[i]
		fallthru := in.PC + 4
		switch in.Class {
		case trace.ClassCondBranch:
			mis := fe.TAGE.PredictAndUpdate(in.PC, in.Taken)
			if mis {
				out[i].Redirect = RedirectMispredict
			} else if in.Taken {
				if tgt, hit := fe.BTB.Lookup(in.PC); !hit || tgt != in.Target {
					out[i].Redirect = RedirectMisfetch
				}
			}
			if in.Taken {
				fe.BTB.Update(in.PC, in.Target)
			}
		case trace.ClassJump:
			if tgt, hit := fe.BTB.Lookup(in.PC); !hit || tgt != in.Target {
				out[i].Redirect = RedirectMisfetch
			}
			fe.BTB.Update(in.PC, in.Target)
		case trace.ClassCall:
			if tgt, hit := fe.BTB.Lookup(in.PC); !hit || tgt != in.Target {
				out[i].Redirect = RedirectMisfetch
			}
			fe.BTB.Update(in.PC, in.Target)
			fe.RAS.Push(fallthru)
		case trace.ClassRet:
			if fe.RAS.Pop() != in.Target {
				out[i].Redirect = RedirectMispredict
			}
		case trace.ClassIndirect:
			if tgt, hit := fe.BTB.Lookup(in.PC); !hit || tgt != in.Target {
				out[i].Redirect = RedirectMispredict
			}
			fe.BTB.Update(in.PC, in.Target)
		}
	}
	return out
}
