package branch

import (
	"math/rand"
	"testing"

	"acic/internal/trace"
)

func TestTAGELearnsLoopPattern(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	// A loop branch: taken 9 times, not-taken once, repeated. TAGE should
	// get well above 80% after warmup.
	pc := uint64(0x1000)
	var mis int
	const rounds = 400
	for r := 0; r < rounds; r++ {
		for i := 0; i < 10; i++ {
			taken := i != 9
			if tg.PredictAndUpdate(pc, taken) && r > 40 {
				mis++
			}
		}
	}
	rate := float64(mis) / float64((rounds-40)*10)
	if rate > 0.12 {
		t.Errorf("TAGE mispredict rate %.3f on a 10-iteration loop; want < 0.12", rate)
	}
}

func TestTAGERandomBranchIsHard(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	rng := rand.New(rand.NewSource(5))
	var mis int
	const n = 4000
	for i := 0; i < n; i++ {
		if tg.PredictAndUpdate(0x2000, rng.Intn(2) == 0) {
			mis++
		}
	}
	rate := float64(mis) / n
	if rate < 0.35 {
		t.Errorf("mispredict rate %.3f on random branch; predictor is cheating", rate)
	}
	if tg.MispredictRate() <= 0 {
		t.Error("MispredictRate should be positive")
	}
}

func TestTAGEBiasedBranch(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	var mis int
	for i := 0; i < 2000; i++ {
		if tg.PredictAndUpdate(0x3000, true) && i > 50 {
			mis++
		}
	}
	if mis > 10 {
		t.Errorf("%d mispredicts on an always-taken branch", mis)
	}
}

func TestBTBInstallAndLookup(t *testing.T) {
	b := NewBTB(64, 4)
	if _, hit := b.Lookup(0x100); hit {
		t.Error("cold BTB lookup must miss")
	}
	b.Update(0x100, 0x500)
	if tgt, hit := b.Lookup(0x100); !hit || tgt != 0x500 {
		t.Errorf("lookup = %#x,%v", tgt, hit)
	}
	b.Update(0x100, 0x600) // retarget
	if tgt, _ := b.Lookup(0x100); tgt != 0x600 {
		t.Error("update must overwrite the target")
	}
}

func TestBTBEvictsLRUWithinSet(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets x 2 ways
	// PCs mapping to the same set: (pc>>2) & 3 == 0 -> pc = 0, 16, 32.
	b.Update(0, 1)
	b.Update(16, 2)
	b.Lookup(0) // touch 0: 16 becomes LRU
	b.Update(32, 3)
	if _, hit := b.Lookup(16); hit {
		t.Error("LRU entry should have been evicted")
	}
	if _, hit := b.Lookup(0); !hit {
		t.Error("MRU entry should have survived")
	}
}

func TestRASMatchesCallStack(t *testing.T) {
	r := NewRAS(8)
	r.Push(100)
	r.Push(200)
	if r.Pop() != 200 || r.Pop() != 100 {
		t.Error("RAS must be LIFO")
	}
	// Overflow wraps (deep recursion loses oldest entries, as in hardware).
	for i := 0; i < 10; i++ {
		r.Push(uint64(i))
	}
	if r.Pop() != 9 {
		t.Error("most recent push must survive overflow")
	}
}

// buildLoopTrace makes a small two-block loop with a call/return pair.
func buildLoopTrace(iters int) *trace.Trace {
	tr := &trace.Trace{Name: "loop"}
	for i := 0; i < iters; i++ {
		// Loop body: 3 ALU + backedge.
		tr.Insts = append(tr.Insts,
			trace.Inst{PC: 0x1000, Class: trace.ClassALU},
			trace.Inst{PC: 0x1004, Class: trace.ClassCall, Target: 0x2000, Taken: true},
			trace.Inst{PC: 0x2000, Class: trace.ClassALU},
			trace.Inst{PC: 0x2004, Class: trace.ClassRet, Target: 0x1008, Taken: true},
			trace.Inst{PC: 0x1008, Class: trace.ClassCondBranch, Target: 0x1000, Taken: i != iters-1},
		)
	}
	return tr
}

func TestAnnotateConvergesOnRegularTrace(t *testing.T) {
	fe := NewFrontEnd()
	tr := buildLoopTrace(500)
	ann := fe.Annotate(tr)
	if len(ann) != len(tr.Insts) {
		t.Fatal("annotation length mismatch")
	}
	// Count redirects in the second half: the predictor must have learned
	// the loop, the call target, and the return.
	redirects := 0
	for i := len(ann) / 2; i < len(ann); i++ {
		if ann[i].Redirect != RedirectNone {
			redirects++
		}
	}
	if redirects > 6 {
		t.Errorf("%d redirects in steady state of a trivial loop", redirects)
	}
}

func TestAnnotateFlagsColdTargets(t *testing.T) {
	fe := NewFrontEnd()
	tr := buildLoopTrace(2)
	ann := fe.Annotate(tr)
	// The first call has no BTB entry: must be a misfetch or worse.
	if ann[1].Redirect == RedirectNone {
		t.Error("cold call target should cause a redirect")
	}
	// The first return: RAS actually predicts it correctly since the call
	// pushed the address; verify no crash and correct classification.
	if ann[3].Redirect == RedirectMispredict {
		t.Error("matched call/ret should not mispredict")
	}
}

func TestFoldedHistoryStability(t *testing.T) {
	// The folded register must stay within its compressed width.
	f := newFolded(64, 11)
	rng := rand.New(rand.NewSource(2))
	bits := make([]uint32, 0, 1000)
	for i := 0; i < 1000; i++ {
		nb := uint32(rng.Intn(2))
		bits = append(bits, nb)
		ob := uint32(0)
		if i >= 64 {
			ob = bits[i-64]
		}
		f.update(nb, ob)
		if f.comp >= 1<<11 {
			t.Fatalf("folded register overflowed: %#x", f.comp)
		}
	}
}
