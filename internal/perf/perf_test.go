package perf

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"acic/internal/experiments"
)

func sampleReport() *Report {
	return &Report{
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		N:             400000,
		PrepareWallNs: 50_000_000,
		PrepareStages: []experiments.StageStats{
			{Stage: "trace", Computed: 1}, {Stage: "program", Computed: 1},
			{Stage: "nextat", Computed: 1}, {Stage: "datalat", Computed: 1},
		},
		Cells: []Cell{
			{App: "a", Scheme: "lru", Prefetcher: "none", Accesses: 1000, Instructions: 400000,
				Runs: 3, NsPerAccess: 100, AccessesPerSec: 1e7},
			{App: "a", Scheme: "opt", Prefetcher: "fdp", Accesses: 1000, Instructions: 400000,
				Runs: 3, NsPerAccess: 250, AccessesPerSec: 4e6},
		},
		Sweeps: []Sweep{{
			App: "a", Prefetcher: "fdp", Schemes: []string{"lru", "opt"}, GangSize: 2,
			Runs: 3, Accesses: 1000, SerialWallNs: 2_000_000, GangWallNs: 1_000_000,
			GangSpeedup: 2, SerialNsPerAccess: 1000, GangNsPerAccess: 500,
		}},
		DistributedSweeps: []DistributedSweep{{
			Apps: []string{"a"}, Schemes: []string{"lru", "opt"}, Prefetcher: "fdp",
			GangSize: 2, PoolWidth: 1, HostCPUs: 2, Cells: 2, SingleWallNs: 2_000_000,
			Lanes: []DistributedLane{
				{Workers: 2, WallNs: 1_000_000, Speedup: 2, RemoteCells: 2, Identical: true},
			},
		}},
	}
}

// TestReportRoundTrip pins the JSON encode/decode cycle the trajectory
// files (bench/trajectory/BENCH_PR*.json) and CI comparisons rely on.
func TestReportRoundTrip(t *testing.T) {
	want := sampleReport()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := want.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(bad); err == nil {
		t.Error("corrupt file must error")
	}
}

// TestCellLookupAndTables covers the report accessors the CLI renders.
func TestCellLookupAndTables(t *testing.T) {
	r := sampleReport()
	if c, ok := r.Cell("opt", "fdp"); !ok || c.NsPerAccess != 250 {
		t.Errorf("Cell lookup = %+v, %v", c, ok)
	}
	if _, ok := r.Cell("opt", "none"); ok {
		t.Error("absent cell must not be found")
	}
	if tbl := r.Table().String(); !strings.Contains(tbl, "lru") {
		t.Errorf("table missing rows:\n%s", tbl)
	}
	if st := r.SweepTable(); st == nil || !strings.Contains(st.String(), "2.00x") {
		t.Errorf("sweep table = %v", st)
	}
	if st := (&Report{}).SweepTable(); st != nil {
		t.Error("empty report must have no sweep table")
	}
	if st := r.DistributedSweepTable(); st == nil || !strings.Contains(st.String(), "2 workers") {
		t.Errorf("distributed sweep table = %v", st)
	}
	if st := (&Report{}).DistributedSweepTable(); st != nil {
		t.Error("empty report must have no distributed sweep table")
	}
}

// TestMeasureDistributedSweep runs the distributed lane measurement at a
// tiny trace length: every lane must produce results cell-identical to
// the single-process reference, completed remotely by its workers.
func TestMeasureDistributedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-lane simulation grids")
	}
	sweep, err := measureDistributedSweep(Config{N: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Cells != len(sweep.Apps)*len(sweep.Schemes) || sweep.SingleWallNs <= 0 {
		t.Fatalf("implausible sweep: %+v", sweep)
	}
	if len(sweep.Lanes) != len(DistributedWorkerCounts()) {
		t.Fatalf("measured %d lanes, want %d", len(sweep.Lanes), len(DistributedWorkerCounts()))
	}
	for _, l := range sweep.Lanes {
		if !l.Identical {
			t.Errorf("lane workers=%d diverged from single-process results", l.Workers)
		}
		if l.RemoteCells == 0 {
			t.Errorf("lane workers=%d completed no cells remotely", l.Workers)
		}
		if l.WallNs <= 0 || l.Speedup <= 0 {
			t.Errorf("implausible lane: %+v", l)
		}
	}
}

// TestCompare pins the per-cell delta math, the aggregate wall-clock
// speedup, and the regression detector.
func TestCompare(t *testing.T) {
	oldRep := sampleReport()
	newRep := &Report{Cells: []Cell{
		{App: "a", Scheme: "lru", Prefetcher: "none", Accesses: 1000, NsPerAccess: 50}, // 2x faster
		{App: "a", Scheme: "opt", Prefetcher: "fdp", Accesses: 1000, NsPerAccess: 300}, // 20% slower
		{App: "a", Scheme: "ship", Prefetcher: "fdp", Accesses: 1000, NsPerAccess: 10}, // new cell
	}}
	c := Compare(oldRep, newRep)
	if len(c.Deltas) != 2 {
		t.Fatalf("matched %d cells, want 2", len(c.Deltas))
	}
	if c.Deltas[0].Pct != -50 {
		t.Errorf("lru delta = %+.1f%%, want -50%%", c.Deltas[0].Pct)
	}
	if got := c.Deltas[1].Pct; got < 19.9 || got > 20.1 {
		t.Errorf("opt delta = %+.1f%%, want +20%%", got)
	}
	if got := c.WorstPct(); got < 19.9 || got > 20.1 {
		t.Errorf("WorstPct = %+.1f, want +20", got)
	}
	// Aggregate: old 100k+250k ns vs new 50k+300k ns.
	if got := c.Speedup(); got < 0.99 || got > 1.01 {
		t.Errorf("Speedup = %.3f, want 1.0", got)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "a/ship/fdp" {
		t.Errorf("OnlyNew = %v", c.OnlyNew)
	}
	if !strings.Contains(c.Summary(), "matched 2 cells") {
		t.Errorf("Summary = %q", c.Summary())
	}
	if tbl := c.Table().String(); !strings.Contains(tbl, "-50.0%") {
		t.Errorf("delta table:\n%s", tbl)
	}
}

// TestCompareMissingCells: matched reports pass, while a cell present in
// only one report is a loud error naming the one-sided cells — never a
// silent zero-delta row.
func TestCompareMissingCells(t *testing.T) {
	if err := Compare(sampleReport(), sampleReport()).MissingCells(); err != nil {
		t.Errorf("identical reports reported missing cells: %v", err)
	}
	oldRep := sampleReport()
	newRep := &Report{Cells: []Cell{
		oldRep.Cells[0],
		{App: "a", Scheme: "ship", Prefetcher: "fdp", Accesses: 1000, NsPerAccess: 10},
	}}
	err := Compare(oldRep, newRep).MissingCells()
	if err == nil {
		t.Fatal("one-sided cells must error")
	}
	for _, want := range []string{"a/opt/fdp", "a/ship/fdp"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("MissingCells error %q does not name %s", err, want)
		}
	}
}

// TestMeasureTiny runs a minimal grid end to end: one scheme, one
// prefetcher, and a two-member gang sweep whose identical-results check is
// live. Small n keeps this fast; it exercises the real simulator.
func TestMeasureTiny(t *testing.T) {
	rep, err := Measure(Config{
		App:         "media-streaming",
		N:           20_000,
		Schemes:     []string{"lru", "opt"},
		Prefetchers: []string{"none"},
		Repeats:     1,
		GangSize:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("measured %d cells, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.NsPerAccess <= 0 || c.Accesses <= 0 {
			t.Errorf("implausible cell: %+v", c)
		}
	}
	if len(rep.Sweeps) != 1 {
		t.Fatalf("measured %d sweeps, want 1", len(rep.Sweeps))
	}
	s := rep.Sweeps[0]
	if s.SerialWallNs <= 0 || s.GangWallNs <= 0 || s.GangSpeedup <= 0 || s.Accesses <= 0 {
		t.Errorf("implausible sweep: %+v", s)
	}
}

// TestMeasurePrepareStats: the report carries the prepare phase — cold it
// regenerates all four stage artifacts, and over a warm artifact store it
// regenerates none.
func TestMeasurePrepareStats(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		App: "media-streaming", N: 20_000,
		Schemes: []string{"lru"}, Prefetchers: []string{"none"},
		Repeats: 1, GangSize: -1, ArtifactDir: dir,
	}
	cold, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PrepareWallNs <= 0 || len(cold.PrepareStages) != 4 {
		t.Fatalf("implausible cold prepare: %dns, %d stages", cold.PrepareWallNs, len(cold.PrepareStages))
	}
	for _, st := range cold.PrepareStages {
		if st.Computed != 1 || st.FromStore != 0 {
			t.Errorf("cold stage %s: %+v, want computed=1", st.Stage, st)
		}
	}
	warm, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range warm.PrepareStages {
		if st.Computed != 0 || st.FromStore != 1 {
			t.Errorf("warm stage %s: %+v, want fromStore=1", st.Stage, st)
		}
	}
	if warm.Cells[0].Accesses != cold.Cells[0].Accesses {
		t.Errorf("warm store changed the measured workload: %d vs %d accesses",
			warm.Cells[0].Accesses, cold.Cells[0].Accesses)
	}
	if s := warm.PrepareSummary(); !strings.Contains(s, "4 from store") {
		t.Errorf("prepare summary: %q", s)
	}
}

// TestMeasurePrepareSweep runs the batch-vs-streamed cold-prepare
// measurement end to end at a small n: both identity verdicts must hold
// (they gate the trajectory file's memory claim), the peaks must be
// positive, and the table/summary renderers must carry the numbers.
func TestMeasurePrepareSweep(t *testing.T) {
	rep, err := Measure(Config{
		App: "media-streaming", N: 20_000,
		Schemes: []string{"lru"}, Prefetchers: []string{"none"},
		Repeats: 1, GangSize: -1,
		PrepareSweeps: true, PrepareWindow: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PrepareSweeps) != 2 {
		t.Fatalf("measured %d prepare sweeps, want 2 (n and 4n)", len(rep.PrepareSweeps))
	}
	for _, s := range rep.PrepareSweeps {
		if !s.ArraysIdentical {
			t.Errorf("n=%d: streamed arrays diverge from batch", s.N)
		}
		if !s.ArtifactsLoadClean {
			t.Errorf("n=%d: batch pipeline could not warm-load the streamed store", s.N)
		}
		if s.Window != 2048 {
			t.Errorf("n=%d: window %d, want 2048", s.N, s.Window)
		}
		if s.BatchPeakBytes <= 0 || s.StreamedPeakBytes <= 0 || s.BatchWallNs <= 0 || s.StreamedWallNs <= 0 {
			t.Errorf("implausible prepare sweep: %+v", s)
		}
	}
	if rep.PrepareSweeps[1].N != 4*rep.PrepareSweeps[0].N {
		t.Errorf("sweep rows n=%d,%d; want the second at 4x", rep.PrepareSweeps[0].N, rep.PrepareSweeps[1].N)
	}
	if tbl := rep.PrepareSweepTable(); tbl == nil || !strings.Contains(tbl.String(), "2048") {
		t.Errorf("prepare sweep table = %v", tbl)
	}
	if st := (&Report{}).PrepareSweepTable(); st != nil {
		t.Error("empty report must have no prepare sweep table")
	}
	if s := rep.PrepareSummary(); !strings.Contains(s, "peak heap") {
		t.Errorf("prepare summary missing peak: %q", s)
	}
}

// TestReportFaultsRoundTrip: the faults block and the interrupted flag
// survive the JSON cycle, and a clean report omits "interrupted" so the
// trajectory baselines stay byte-stable.
func TestReportFaultsRoundTrip(t *testing.T) {
	want := sampleReport()
	want.Faults = &experiments.FaultStats{
		Spec: "io-err:p=0.01", InjectedIOErrs: 3, Retries: 2, Quarantined: 1,
	}
	want.Interrupted = true
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := want.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"faults"`, `"interrupted": true`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("serialized report missing %s:\n%s", key, raw)
		}
	}
	clean := sampleReport()
	cleanPath := filepath.Join(t.TempDir(), "clean.json")
	if err := clean.WriteJSON(cleanPath); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "interrupted") {
		t.Errorf("clean report must omit the interrupted flag:\n%s", raw)
	}
}

// TestMeasureInterrupted: a cancelled Config.Context yields a partial
// report flagged interrupted — not an error — so the caller can flush it
// before exiting 130.
func TestMeasureInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Measure(Config{
		Context: ctx,
		App:     "media-streaming", N: 20_000,
		Schemes: []string{"lru"}, Prefetchers: []string{"none"},
		Repeats: 1, GangSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Error("report not marked interrupted")
	}
	if len(rep.Cells) != 0 || len(rep.Sweeps) != 0 {
		t.Errorf("cancelled run still measured %d cells, %d sweeps", len(rep.Cells), len(rep.Sweeps))
	}
	if rep.Faults == nil {
		t.Error("interrupted report must still carry the faults block")
	}
}

// TestMeasureFaultsBlock: every report carries the faults block; without
// an installed spec it is all-zero.
func TestMeasureFaultsBlock(t *testing.T) {
	rep, err := Measure(Config{
		App: "media-streaming", N: 20_000,
		Schemes: []string{"lru"}, Prefetchers: []string{"none"},
		Repeats: 1, GangSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == nil {
		t.Fatal("report missing faults block")
	}
	if rep.Faults.Any() || rep.Faults.Spec != "" {
		t.Errorf("fault-free run recorded fault activity: %+v", rep.Faults)
	}
}

// TestMeasureSkipsSweeps: a negative GangSize disables the sweep section.
func TestMeasureSkipsSweeps(t *testing.T) {
	rep, err := Measure(Config{
		App: "media-streaming", N: 20_000,
		Schemes: []string{"lru"}, Prefetchers: []string{"none"},
		Repeats: 1, GangSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweeps) != 0 {
		t.Errorf("sweeps measured despite GangSize=-1: %+v", rep.Sweeps)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
