// Package perf measures raw simulator throughput — nanoseconds per block
// access and accesses per second — for a grid of (scheme × prefetcher)
// cells over one workload. The measurements serialize to JSON
// (BENCH_PR2.json at the repo root is the tracked trajectory file) so that
// future PRs can regress hot-path changes against a committed baseline
// instead of folklore.
//
// Throughput here is *simulator* speed, not simulated-machine speed: the
// denominator is the number of instruction-block accesses the front end
// issues over the whole run (warmup included), which is identical across
// schemes for a given workload and therefore isolates the per-access cost
// of the i-cache subsystem under test.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"acic/internal/experiments"
	"acic/internal/stats"
)

// Cell is one measured (scheme × prefetcher) throughput point.
type Cell struct {
	App            string  `json:"app"`
	Scheme         string  `json:"scheme"`
	Prefetcher     string  `json:"prefetcher"`
	Accesses       int64   `json:"accesses"`         // block accesses per run (warmup included)
	Instructions   int64   `json:"instructions"`     // trace length
	Runs           int     `json:"runs"`             // repetitions measured; best run reported
	NsPerAccess    float64 `json:"ns_per_access"`    // best-of-runs wall time / accesses
	AccessesPerSec float64 `json:"accesses_per_sec"` // 1e9 / NsPerAccess
}

// Report is the serialized benchmark trajectory for one tree state.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	N         int    `json:"trace_instructions"`
	Cells     []Cell `json:"cells"`
}

// Config selects the measurement grid.
type Config struct {
	App         string   // workload name (default "media-streaming")
	N           int      // trace length (0 = experiments.DefaultTraceLen)
	Schemes     []string // scheme names (default DefaultSchemes)
	Prefetchers []string // prefetcher platforms (default {"none", "fdp"})
	Repeats     int      // timed repetitions per cell, best kept (default 3)
}

// DefaultSchemes is the tracked scheme set: the baseline, the learned and
// oracle policies whose inner loops this repo optimizes, and the bypass
// family with per-block state.
func DefaultSchemes() []string {
	return []string{
		"lru", "srrip", "ship", "harmony", "ghrp",
		"eaf", "ripple-lite", "acic", "opt", "opt-bypass",
	}
}

func (c *Config) defaults() {
	if c.App == "" {
		c.App = "media-streaming"
	}
	if c.N <= 0 {
		c.N = experiments.DefaultTraceLen()
	}
	if len(c.Schemes) == 0 {
		c.Schemes = DefaultSchemes()
	}
	if len(c.Prefetchers) == 0 {
		c.Prefetchers = []string{"none", "fdp"}
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
}

// Measure runs the configured grid and returns the throughput report.
// Workload preparation (trace generation, branch annotation, oracle
// construction) happens once and is excluded from the timings; subsystem
// construction is re-done per run but timed separately and excluded too,
// so the numbers isolate the simulation loop.
func Measure(cfg Config) (*Report, error) {
	cfg.defaults()
	s := experiments.NewSuite(cfg.N)
	w, err := s.Workload(cfg.App)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		N:         cfg.N,
	}
	for _, pf := range cfg.Prefetchers {
		for _, scheme := range cfg.Schemes {
			cell, err := measureCell(w, cfg.App, scheme, pf, cfg.Repeats)
			if err != nil {
				return nil, fmt.Errorf("perf: %s/%s: %w", scheme, pf, err)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

func measureCell(w *experiments.Workload, app, scheme, pf string, repeats int) (Cell, error) {
	opts := experiments.DefaultOptions()
	opts.Prefetcher = pf
	var best time.Duration
	var accesses int64
	for r := 0; r < repeats; r++ {
		sub, err := experiments.NewScheme(scheme, w)
		if err != nil {
			return Cell{}, err
		}
		start := time.Now()
		res, err := experiments.RunSubsystem(w, sub, opts)
		elapsed := time.Since(start)
		if err != nil {
			return Cell{}, err
		}
		// Total accesses processed: the subsystem's demand-access counter
		// covers the whole run including warmup and is scheme-independent
		// for a fixed workload.
		accesses = int64(res.ICache.Accesses)
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	if accesses == 0 {
		return Cell{}, fmt.Errorf("no accesses simulated")
	}
	ns := float64(best.Nanoseconds()) / float64(accesses)
	return Cell{
		App:            app,
		Scheme:         scheme,
		Prefetcher:     pf,
		Accesses:       accesses,
		Instructions:   int64(len(w.Trace.Insts)),
		Runs:           repeats,
		NsPerAccess:    ns,
		AccessesPerSec: 1e9 / ns,
	}, nil
}

// WriteJSON serializes the report to path with stable formatting.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadJSON loads a previously written report (regression comparisons).
func ReadJSON(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Table renders the report for terminal output.
func (r *Report) Table() *stats.Table {
	t := &stats.Table{Header: []string{"scheme", "prefetcher", "ns/access", "accesses/sec"}}
	for _, c := range r.Cells {
		t.AddRow(c.Scheme, c.Prefetcher, fmt.Sprintf("%.1f", c.NsPerAccess),
			fmt.Sprintf("%.3fM", c.AccessesPerSec/1e6))
	}
	return t
}

// Cell returns the measurement for (scheme, prefetcher), if present.
func (r *Report) Cell(scheme, prefetcher string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Scheme == scheme && c.Prefetcher == prefetcher {
			return c, true
		}
	}
	return Cell{}, false
}
