// Package perf measures raw simulator throughput — nanoseconds per block
// access and accesses per second — for a grid of (scheme × prefetcher)
// cells over one workload, plus suite-level sweep wall-clocks that compare
// the per-scheme path against gang execution (one Program traversal
// driving a whole scheme row, experiments.RunGang) and the prepare-phase
// wall-clock over the staged workload artifact pipeline. The measurements
// serialize to JSON (the files under bench/trajectory/ are the tracked
// trajectory, one per hot-path PR — see its index.json) so that future
// PRs can regress hot-path changes against a committed baseline instead
// of folklore; Compare diffs two such files cell by cell.
//
// Throughput here is *simulator* speed, not simulated-machine speed: the
// denominator is the number of instruction-block accesses the front end
// issues over the whole run (warmup included), which is identical across
// schemes for a given workload and therefore isolates the per-access cost
// of the i-cache subsystem under test.
package perf

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"acic/internal/cpu"
	"acic/internal/experiments"
	"acic/internal/stats"
)

// Cell is one measured (scheme × prefetcher) throughput point.
type Cell struct {
	App            string  `json:"app"`
	Scheme         string  `json:"scheme"`
	Prefetcher     string  `json:"prefetcher"`
	Accesses       int64   `json:"accesses"`         // block accesses per run (warmup included)
	Instructions   int64   `json:"instructions"`     // trace length
	Runs           int     `json:"runs"`             // repetitions measured; best run reported
	NsPerAccess    float64 `json:"ns_per_access"`    // best-of-runs wall time / accesses
	AccessesPerSec float64 `json:"accesses_per_sec"` // 1e9 / NsPerAccess
}

// Sweep is one suite-level wall-clock measurement: a full scheme row under
// one prefetcher, timed end to end (subsystem construction included, as a
// suite pays it) through the per-scheme path and through gangs. The
// per-member results of both paths are verified identical before the
// timing is reported.
type Sweep struct {
	App               string   `json:"app"`
	Prefetcher        string   `json:"prefetcher"`
	Schemes           []string `json:"schemes"`
	GangSize          int      `json:"gang_size"`
	Runs              int      `json:"runs"` // repetitions per path; best kept
	Accesses          int64    `json:"accesses_per_scheme"`
	SerialWallNs      int64    `json:"serial_wall_ns"`
	GangWallNs        int64    `json:"gang_wall_ns"`
	GangSpeedup       float64  `json:"gang_speedup"`         // serial wall / gang wall
	SerialNsPerAccess float64  `json:"serial_ns_per_access"` // aggregate over all members
	GangNsPerAccess   float64  `json:"gang_ns_per_access"`
}

// SampledSweep is one set-sampled fast-mode wall-clock measurement: a
// full scheme row under one prefetcher, timed end to end through the
// reference path and through the sampled lane (experiments.RunSampled),
// with the per-cell cycle-count error of the sampled run recorded
// alongside — the wall-clock claim and the accuracy claim travel
// together in the trajectory file.
type SampledSweep struct {
	App               string   `json:"app"`
	Prefetcher        string   `json:"prefetcher"`
	Schemes           []string `json:"schemes"`
	SampleSets        int      `json:"sample_sets"`
	Runs              int      `json:"runs"` // repetitions per path; best kept
	FullWallNs        int64    `json:"full_wall_ns"`
	SampledWallNs     int64    `json:"sampled_wall_ns"`
	Speedup           float64  `json:"sampled_speedup"`
	MeanCyclesErrPct  float64  `json:"mean_cycles_err_pct"`
	WorstCyclesErrPct float64  `json:"worst_cycles_err_pct"`
}

// CrossSweep is one cross-prefetcher row wall-clock measurement: a grid
// of (scheme × prefetcher) cells over one workload, timed end to end
// through the per-cell serial path and through gang execution twice —
// once under the fixed default traversal window and once under the
// measured adaptive window (experiments.AutoGangWindow). All three paths
// are verified to produce identical results before the timings are
// reported, so the speedups travel with the determinism claim.
type CrossSweep struct {
	Name         string   `json:"name"` // row composition id (CrossSweepRows)
	App          string   `json:"app"`
	Schemes      []string `json:"schemes"`
	Prefetchers  []string `json:"prefetchers"`
	GangSize     int      `json:"gang_size"`
	Runs         int      `json:"runs"`        // repetitions per path; best kept
	AutoWindow   int      `json:"auto_window"` // derived traversal window (instructions)
	SerialWallNs int64    `json:"serial_wall_ns"`
	FixedWallNs  int64    `json:"fixed_wall_ns"` // gang, default window
	AutoWallNs   int64    `json:"auto_wall_ns"`  // gang, measured window
	FixedSpeedup float64  `json:"fixed_speedup"` // serial wall / fixed-window gang wall
	AutoSpeedup  float64  `json:"auto_speedup"`  // serial wall / auto-window gang wall
}

// PrepareSweep is one cold-prepare measurement: the same workload prepared
// from an empty artifact store through the batch path and through the
// windowed streaming pipeline, recording wall-clock and peak live-heap
// growth for each, with the two lanes' prepared arrays verified identical
// before the numbers are reported. The peak-reduction column is the
// memory claim the streaming prepare makes (cold peak O(window) instead
// of O(trace)); committing it to bench/trajectory keeps it regressable.
type PrepareSweep struct {
	App                string  `json:"app"`
	N                  int     `json:"trace_instructions"`
	Window             int     `json:"window"`
	BatchWallNs        int64   `json:"batch_wall_ns"`
	BatchPeakBytes     int64   `json:"batch_peak_bytes"`
	StreamedWallNs     int64   `json:"streamed_wall_ns"`
	StreamedPeakBytes  int64   `json:"streamed_peak_bytes"`
	PeakReduction      float64 `json:"peak_reduction"` // batch peak / streamed peak
	ArraysIdentical    bool    `json:"arrays_identical"`
	ArtifactsLoadClean bool    `json:"artifacts_load_clean"` // batch pipeline warm-loads the streamed store
}

// CrossSweepRow names a tracked cross-prefetcher row composition.
type CrossSweepRow struct {
	Name        string
	Schemes     []string
	Prefetchers []string
}

// CrossSweepRows returns the tracked row compositions: the Fig 20/21
// scheme row on the entangling platform, the prefetcher-baseline row
// (one scheme fanned across every platform — gangable only since rows
// may span prefetchers), and the prefetch-aware comparison grid.
func CrossSweepRows() []CrossSweepRow {
	return []CrossSweepRow{
		{Name: "fig20-21",
			Schemes:     append([]string{experiments.Baseline}, experiments.SPECSchemes...),
			Prefetchers: []string{"entangling"}},
		{Name: "ext-prefetchers",
			Schemes:     []string{experiments.Baseline},
			Prefetchers: experiments.Prefetchers()},
		{Name: "ext-pfaware",
			Schemes:     []string{experiments.Baseline, "acic", "acic-pfaware"},
			Prefetchers: []string{"fdp", "entangling"}},
	}
}

// Report is the serialized benchmark trajectory for one tree state.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	N         int    `json:"trace_instructions"`
	// PrepareWallNs is the wall-clock of the workload prepare phase (all
	// four pipeline stages plus assembly) before the first simulation.
	// With a warm artifact store it collapses to the time needed to load
	// and reassemble the artifacts — the "prepare ~0" the staged pipeline
	// targets; PrepareStages records where the time went.
	PrepareWallNs int64 `json:"prepare_wall_ns"`
	// PreparePeakBytes is the high-water mark of the live heap
	// (runtime.MemStats HeapAlloc, sampled every millisecond) over the
	// prepare phase, relative to the GC-settled baseline before it — the
	// number the streaming prepare (-prepare-window) shrinks.
	PreparePeakBytes int64                    `json:"prepare_peak_bytes"`
	PrepareWindow    int                      `json:"prepare_window,omitempty"`
	PrepareStages    []experiments.StageStats `json:"prepare_stages,omitempty"`
	Cells            []Cell                   `json:"cells"`
	Sweeps           []Sweep                  `json:"gang_sweeps,omitempty"`
	SampledSweeps    []SampledSweep           `json:"sampled_sweeps,omitempty"`
	CrossSweeps      []CrossSweep             `json:"cross_sweeps,omitempty"`
	PrepareSweeps    []PrepareSweep           `json:"prepare_sweeps,omitempty"`
	// DistributedSweeps records the coordinator/worker lane measurements
	// (distributed.go) when Config.DistributedSweeps asked for them.
	DistributedSweeps []DistributedSweep `json:"distributed_sweeps,omitempty"`
	// Faults records the run's fault-injection and recovery activity
	// (always present; all-zero without -fault-spec). Injected faults on
	// the measurement path would distort timings, so bench runs are
	// normally fault-free — the block exists so CI can assert that and so
	// faulted diagnostics runs are self-describing.
	Faults *experiments.FaultStats `json:"faults,omitempty"`
	// Interrupted marks a report cut short by SIGINT/SIGTERM (Config.
	// Context): the measurements present are valid, the grid is partial.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Config selects the measurement grid.
type Config struct {
	// Context, when non-nil, lets the caller cancel the measurement run
	// (SIGINT/SIGTERM in acic-bench). Cancellation is honored between
	// cells and between sweep families — the measurement in flight
	// finishes — and yields a partial Report with Interrupted set, not an
	// error; the caller decides the exit code.
	Context     context.Context
	App         string   // workload name (default "media-streaming")
	N           int      // trace length (0 = experiments.DefaultTraceLen)
	Schemes     []string // scheme names (default DefaultSchemes)
	Prefetchers []string // prefetcher platforms (default {"none", "fdp"})
	Repeats     int      // timed repetitions per cell, best kept (default 3)
	GangSize    int      // schemes per gang in the sweep (0 = all; < 0 skips sweeps)
	GangWindow  int      // gang traversal window for the plain gang sweeps (experiments.Options.GangWindow encoding)
	SampleSets  int      // also measure set-sampled sweeps at this -sample-sets (0 = skip)
	ArtifactDir string   // persistent workload artifact store ("" = prepare in memory)
	// PrepareWindow streams the report's own prepare phase in windows of
	// this many instructions (0 = batch), mirroring -prepare-window.
	PrepareWindow int
	// PrepareSweeps adds the batch-vs-streamed cold-prepare measurements
	// (wall + peak heap, over scratch stores) at N and 4N instructions.
	PrepareSweeps bool
	// DistributedSweeps adds the distributed-execution measurements: the
	// full DistributedSchemes × datacenter-apps grid under FDP, run
	// single-process and through a coordinator at each worker count in
	// DistributedWorkerCounts, every lane over its own cold store, with
	// per-cell results verified identical (DESIGN.md §14).
	DistributedSweeps bool
}

// DefaultPrepareWindow is the streaming window the prepare sweeps (and CI)
// use when none is pinned: 64k instructions keeps the resident window
// around 2 MB while staying far above the per-window fixed costs.
const DefaultPrepareWindow = 1 << 16

// DefaultSchemes is the tracked scheme set: the baseline, the learned and
// oracle policies whose inner loops this repo optimizes, and the bypass
// family with per-block state.
func DefaultSchemes() []string {
	return []string{
		"lru", "srrip", "ship", "harmony", "ghrp",
		"eaf", "ripple-lite", "acic", "opt", "opt-bypass",
	}
}

func (c *Config) defaults() {
	if c.App == "" {
		c.App = "media-streaming"
	}
	if c.N <= 0 {
		c.N = experiments.DefaultTraceLen()
	}
	if len(c.Schemes) == 0 {
		c.Schemes = DefaultSchemes()
	}
	if len(c.Prefetchers) == 0 {
		c.Prefetchers = []string{"none", "fdp"}
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
}

// Measure runs the configured grid and returns the throughput report.
// Workload preparation (trace generation, branch annotation, oracle
// construction) happens once, is timed as the report's prepare phase, and
// is excluded from the per-cell timings; subsystem construction is re-done
// per run but timed separately and excluded too, so the numbers isolate
// the simulation loop. With a Config.ArtifactDir the prepare phase runs
// over the persistent store — a warm store drops it to artifact loading.
func Measure(cfg Config) (*Report, error) {
	cfg.defaults()
	s := experiments.NewSuite(cfg.N)
	s.ArtifactDir = cfg.ArtifactDir
	s.PrepareWindow = cfg.PrepareWindow
	s.Context = cfg.Context
	// An unusable artifact store would silently measure a cold prepare
	// phase; fail like the -exp path does instead of benchmarking a lie.
	if err := s.CacheError(); err != nil {
		return nil, err
	}
	var w *experiments.Workload
	prepStart := time.Now()
	peak, err := heapWatermark(func() error {
		var err error
		w, err = s.Workload(cfg.App)
		return err
	})
	if err != nil {
		return nil, err
	}
	prepare := time.Since(prepStart)
	rep := &Report{
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		N:                cfg.N,
		PrepareWallNs:    prepare.Nanoseconds(),
		PreparePeakBytes: peak,
		PrepareWindow:    cfg.PrepareWindow,
		PrepareStages:    s.PrepareStats(),
	}
	// canceled gates each measurement: the first true marks the report
	// interrupted and every later call short-circuits, so the partial
	// report flushes without starting further multi-second measurements.
	canceled := func() bool {
		if rep.Interrupted {
			return true
		}
		if cfg.Context != nil && cfg.Context.Err() != nil {
			rep.Interrupted = true
		}
		return rep.Interrupted
	}
	finish := func() (*Report, error) {
		fs := s.FaultStats()
		rep.Faults = &fs
		return rep, nil
	}
	for _, pf := range cfg.Prefetchers {
		for _, scheme := range cfg.Schemes {
			if canceled() {
				return finish()
			}
			cell, err := measureCell(w, cfg.App, scheme, pf, cfg.Repeats)
			if err != nil {
				return nil, fmt.Errorf("perf: %s/%s: %w", scheme, pf, err)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	if cfg.GangSize >= 0 {
		for _, pf := range cfg.Prefetchers {
			if canceled() {
				return finish()
			}
			sweep, err := measureSweep(w, cfg, pf)
			if err != nil {
				return nil, fmt.Errorf("perf: sweep %s: %w", pf, err)
			}
			rep.Sweeps = append(rep.Sweeps, sweep)
		}
	}
	if cfg.SampleSets > 0 {
		for _, pf := range cfg.Prefetchers {
			if canceled() {
				return finish()
			}
			sweep, err := measureSampledSweep(w, cfg, pf)
			if err != nil {
				return nil, fmt.Errorf("perf: sampled sweep %s: %w", pf, err)
			}
			rep.SampledSweeps = append(rep.SampledSweeps, sweep)
		}
	}
	if cfg.GangSize >= 0 {
		for _, row := range CrossSweepRows() {
			if canceled() {
				return finish()
			}
			sweep, err := measureCrossSweep(w, cfg, row)
			if err != nil {
				return nil, fmt.Errorf("perf: cross sweep %s: %w", row.Name, err)
			}
			rep.CrossSweeps = append(rep.CrossSweeps, sweep)
		}
	}
	if cfg.PrepareSweeps {
		for _, n := range []int{cfg.N, 4 * cfg.N} {
			if canceled() {
				return finish()
			}
			sweep, err := measurePrepareSweep(cfg.App, n, cfg.PrepareWindow)
			if err != nil {
				return nil, fmt.Errorf("perf: prepare sweep n=%d: %w", n, err)
			}
			rep.PrepareSweeps = append(rep.PrepareSweeps, sweep)
		}
	}
	if cfg.DistributedSweeps {
		if canceled() {
			return finish()
		}
		sweep, err := measureDistributedSweep(cfg)
		if err != nil {
			return nil, fmt.Errorf("perf: distributed sweep: %w", err)
		}
		rep.DistributedSweeps = append(rep.DistributedSweeps, sweep)
	}
	return finish()
}

// heapWatermark runs fn while sampling the live heap every millisecond and
// returns the high-water HeapAlloc growth over the GC-settled baseline
// taken just before fn. A final read after fn catches work that outpaces
// the ticker. Sampling is approximate by nature — short allocation spikes
// between ticks can be missed — but the prepare phases it measures run for
// hundreds of ticks, and the trajectory gate compares like against like.
//
// GC is tightened for the duration (GOGC 20) so the watermark tracks live
// bytes rather than collector slack: under the default GOGC=100 deadband
// HeapAlloc is allowed to reach ~2x the live set before a collection, a
// slack proportional to allocation rate rather than footprint, which would
// flatter whichever lane allocates less and keeps more resident. Both
// prepare lanes are measured under the same setting.
func heapWatermark(fn func() error) (int64, error) {
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base, high := ms.HeapAlloc, ms.HeapAlloc
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > high {
					high = ms.HeapAlloc
				}
			}
		}
	}()
	err := fn()
	close(stop)
	<-done
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > high {
		high = ms.HeapAlloc
	}
	if high < base {
		return 0, err
	}
	return int64(high - base), err
}

// measurePrepareSweep cold-prepares one workload of n instructions twice —
// batch and streamed, each over its own scratch artifact store — and
// verifies (a) the two lanes produced identical prepared arrays and (b) a
// batch pipeline over the streamed store warm-loads it with zero
// regenerations, before reporting the wall/peak-heap numbers.
func measurePrepareSweep(app string, n, window int) (PrepareSweep, error) {
	if window <= 0 {
		window = DefaultPrepareWindow
	}
	lane := func(win int) (*experiments.Workload, string, int64, int64, error) {
		dir, err := os.MkdirTemp("", "acic-prepare-sweep-*")
		if err != nil {
			return nil, "", 0, 0, err
		}
		pl, err := experiments.NewPipeline(experiments.PipelineConfig{N: n, Dir: dir, Window: win})
		if err != nil {
			os.RemoveAll(dir)
			return nil, "", 0, 0, err
		}
		var w *experiments.Workload
		start := time.Now()
		peak, err := heapWatermark(func() error {
			var err error
			w, err = pl.Workload(app)
			return err
		})
		wall := time.Since(start).Nanoseconds()
		if err != nil {
			os.RemoveAll(dir)
			return nil, "", 0, 0, err
		}
		return w, dir, wall, peak, nil
	}

	batchW, batchDir, batchWall, batchPeak, err := lane(0)
	if err != nil {
		return PrepareSweep{}, err
	}
	defer os.RemoveAll(batchDir)
	// The identity check below reads only the prepared arrays, so drop the
	// batch lane's instruction records before timing the streamed lane: GC
	// pacing budgets heap growth proportional to *total* live bytes, and 32
	// bytes/inst of dead batch state would hand the streamed lane extra
	// slack its watermark would charge as its own.
	batchW.Prog.Trace.Insts = nil
	streamW, streamDir, streamWall, streamPeak, err := lane(window)
	if err != nil {
		return PrepareSweep{}, err
	}
	defer os.RemoveAll(streamDir)

	identical := equalSlices(batchW.Prog.Desc, streamW.Prog.Desc) &&
		equalSlices(batchW.Prog.Blocks, streamW.Prog.Blocks) &&
		equalSlices(batchW.Prog.MemBlk, streamW.Prog.MemBlk) &&
		equalSlices(batchW.Prog.DataLat, streamW.Prog.DataLat) &&
		equalSlices(batchW.Ann, streamW.Ann) &&
		equalSlices(batchW.NextAt, streamW.NextAt)

	loadClean := false
	if warm, err := experiments.NewPipeline(experiments.PipelineConfig{N: n, Dir: streamDir}); err == nil {
		if _, err := warm.Workload(app); err == nil {
			loadClean = warm.Regenerated() == 0
		}
	}

	reduction := 0.0
	if streamPeak > 0 {
		reduction = float64(batchPeak) / float64(streamPeak)
	}
	return PrepareSweep{
		App:                app,
		N:                  n,
		Window:             window,
		BatchWallNs:        batchWall,
		BatchPeakBytes:     batchPeak,
		StreamedWallNs:     streamWall,
		StreamedPeakBytes:  streamPeak,
		PeakReduction:      reduction,
		ArraysIdentical:    identical,
		ArtifactsLoadClean: loadClean,
	}, nil
}

func equalSlices[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// measureCrossSweep times one cross-prefetcher row three ways — the
// per-cell serial path, gang execution under the fixed default window,
// and gang execution under the measured adaptive window — keeping the
// best wall-clock of Repeats runs for each, and verifies all three paths
// produced identical results. One gang covers the whole row (capped at
// GangSize members per chunk, like the suite scheduler).
func measureCrossSweep(w *experiments.Workload, cfg Config, row CrossSweepRow) (CrossSweep, error) {
	cells := make([]experiments.GangCell, 0, len(row.Schemes)*len(row.Prefetchers))
	for _, pf := range row.Prefetchers {
		for _, scheme := range row.Schemes {
			cells = append(cells, experiments.GangCell{Scheme: scheme, Prefetcher: pf})
		}
	}
	gangSize := cfg.GangSize
	if gangSize == 0 || gangSize > len(cells) {
		gangSize = len(cells)
	}

	var serialRes []cpu.Result
	var serialBest time.Duration
	for r := 0; r < cfg.Repeats; r++ {
		res := make([]cpu.Result, len(cells))
		start := time.Now()
		for i, c := range cells {
			opts := experiments.DefaultOptions()
			opts.Prefetcher = c.Prefetcher
			sub, err := experiments.NewScheme(c.Scheme, w)
			if err != nil {
				return CrossSweep{}, err
			}
			if res[i], err = experiments.RunSubsystem(w, sub, opts); err != nil {
				return CrossSweep{}, err
			}
		}
		if elapsed := time.Since(start); serialBest == 0 || elapsed < serialBest {
			serialBest = elapsed
			serialRes = res
		}
	}

	gangPath := func(window int) ([]cpu.Result, time.Duration, int, error) {
		var best time.Duration
		var bestRes []cpu.Result
		var usedWindow int
		for r := 0; r < cfg.Repeats; r++ {
			res := make([]cpu.Result, 0, len(cells))
			start := time.Now()
			for at := 0; at < len(cells); at += gangSize {
				chunk := cells[at:min(at+gangSize, len(cells))]
				opts := experiments.DefaultOptions()
				opts.GangWindow = window
				results, ran, errs := experiments.RunGangCells(w, chunk, opts)
				for _, err := range errs {
					if err != nil {
						return nil, 0, 0, err
					}
				}
				usedWindow = ran
				res = append(res, results...)
			}
			if elapsed := time.Since(start); best == 0 || elapsed < best {
				best = elapsed
				bestRes = res
			}
		}
		return bestRes, best, usedWindow, nil
	}
	fixedRes, fixedBest, _, err := gangPath(0)
	if err != nil {
		return CrossSweep{}, err
	}
	autoRes, autoBest, autoWindow, err := gangPath(experiments.AutoGangWindow)
	if err != nil {
		return CrossSweep{}, err
	}

	for i := range serialRes {
		if serialRes[i] != fixedRes[i] || serialRes[i] != autoRes[i] {
			return CrossSweep{}, fmt.Errorf("gang result diverges from serial for %s/%s",
				cells[i].Scheme, cells[i].Prefetcher)
		}
	}
	return CrossSweep{
		Name:         row.Name,
		App:          cfg.App,
		Schemes:      row.Schemes,
		Prefetchers:  row.Prefetchers,
		GangSize:     gangSize,
		Runs:         cfg.Repeats,
		AutoWindow:   autoWindow,
		SerialWallNs: serialBest.Nanoseconds(),
		FixedWallNs:  fixedBest.Nanoseconds(),
		AutoWallNs:   autoBest.Nanoseconds(),
		FixedSpeedup: float64(serialBest.Nanoseconds()) / float64(fixedBest.Nanoseconds()),
		AutoSpeedup:  float64(serialBest.Nanoseconds()) / float64(autoBest.Nanoseconds()),
	}, nil
}

// measureSampledSweep times one full scheme row through the reference
// path and through the set-sampled fast lane (best of Repeats each) and
// records the sampled run's per-cell cycle errors against the reference
// results.
func measureSampledSweep(w *experiments.Workload, cfg Config, pf string) (SampledSweep, error) {
	opts := experiments.DefaultOptions()
	opts.Prefetcher = pf

	var fullRes []cpu.Result
	var fullBest time.Duration
	for r := 0; r < cfg.Repeats; r++ {
		res := make([]cpu.Result, len(cfg.Schemes))
		start := time.Now()
		for i, scheme := range cfg.Schemes {
			var err error
			if res[i], err = experiments.RunSampled(w, scheme, 0, opts); err != nil {
				return SampledSweep{}, err
			}
		}
		if elapsed := time.Since(start); fullBest == 0 || elapsed < fullBest {
			fullBest = elapsed
			fullRes = res
		}
	}

	var sampRes []cpu.Result
	var sampBest time.Duration
	for r := 0; r < cfg.Repeats; r++ {
		res := make([]cpu.Result, len(cfg.Schemes))
		start := time.Now()
		for i, scheme := range cfg.Schemes {
			var err error
			if res[i], err = experiments.RunSampled(w, scheme, cfg.SampleSets, opts); err != nil {
				return SampledSweep{}, err
			}
		}
		if elapsed := time.Since(start); sampBest == 0 || elapsed < sampBest {
			sampBest = elapsed
			sampRes = res
		}
	}

	var sum, worst float64
	for i := range fullRes {
		err := 100 * math.Abs(float64(sampRes[i].Cycles)/float64(fullRes[i].Cycles)-1)
		sum += err
		if err > worst {
			worst = err
		}
	}
	return SampledSweep{
		App:               cfg.App,
		Prefetcher:        pf,
		Schemes:           cfg.Schemes,
		SampleSets:        cfg.SampleSets,
		Runs:              cfg.Repeats,
		FullWallNs:        fullBest.Nanoseconds(),
		SampledWallNs:     sampBest.Nanoseconds(),
		Speedup:           float64(fullBest.Nanoseconds()) / float64(sampBest.Nanoseconds()),
		MeanCyclesErrPct:  sum / float64(len(fullRes)),
		WorstCyclesErrPct: worst,
	}, nil
}

// measureSweep times one full scheme row two ways — the per-scheme path
// (construct + simulate each cell independently, as the PR 2 engine did)
// and the gang path (experiments.RunGang over GangSize-chunks) — keeping
// the best wall-clock of Repeats runs for each, and verifies the two paths
// produced identical results.
func measureSweep(w *experiments.Workload, cfg Config, pf string) (Sweep, error) {
	opts := experiments.DefaultOptions()
	opts.Prefetcher = pf
	gangSize := cfg.GangSize
	if gangSize == 0 || gangSize > len(cfg.Schemes) {
		gangSize = len(cfg.Schemes)
	}

	var serialRes []cpu.Result
	var serialBest time.Duration
	for r := 0; r < cfg.Repeats; r++ {
		res := make([]cpu.Result, len(cfg.Schemes))
		start := time.Now()
		for i, scheme := range cfg.Schemes {
			sub, err := experiments.NewScheme(scheme, w)
			if err != nil {
				return Sweep{}, err
			}
			if res[i], err = experiments.RunSubsystem(w, sub, opts); err != nil {
				return Sweep{}, err
			}
		}
		if elapsed := time.Since(start); serialBest == 0 || elapsed < serialBest {
			serialBest = elapsed
			serialRes = res
		}
	}

	var gangRes []cpu.Result
	var gangBest time.Duration
	for r := 0; r < cfg.Repeats; r++ {
		res := make([]cpu.Result, 0, len(cfg.Schemes))
		start := time.Now()
		for at := 0; at < len(cfg.Schemes); at += gangSize {
			chunk := cfg.Schemes[at:min(at+gangSize, len(cfg.Schemes))]
			gangOpts := opts
			gangOpts.GangWindow = cfg.GangWindow
			results, errs := experiments.RunGang(w, chunk, gangOpts)
			for _, err := range errs {
				if err != nil {
					return Sweep{}, err
				}
			}
			res = append(res, results...)
		}
		if elapsed := time.Since(start); gangBest == 0 || elapsed < gangBest {
			gangBest = elapsed
			gangRes = res
		}
	}

	for i := range serialRes {
		if serialRes[i] != gangRes[i] {
			return Sweep{}, fmt.Errorf("gang result diverges from serial for %s: %+v != %+v",
				cfg.Schemes[i], gangRes[i], serialRes[i])
		}
	}
	accesses := int64(serialRes[0].ICache.Accesses)
	total := float64(accesses) * float64(len(cfg.Schemes))
	return Sweep{
		App:               cfg.App,
		Prefetcher:        pf,
		Schemes:           cfg.Schemes,
		GangSize:          gangSize,
		Runs:              cfg.Repeats,
		Accesses:          accesses,
		SerialWallNs:      serialBest.Nanoseconds(),
		GangWallNs:        gangBest.Nanoseconds(),
		GangSpeedup:       float64(serialBest.Nanoseconds()) / float64(gangBest.Nanoseconds()),
		SerialNsPerAccess: float64(serialBest.Nanoseconds()) / total,
		GangNsPerAccess:   float64(gangBest.Nanoseconds()) / total,
	}, nil
}

func measureCell(w *experiments.Workload, app, scheme, pf string, repeats int) (Cell, error) {
	opts := experiments.DefaultOptions()
	opts.Prefetcher = pf
	var best time.Duration
	var accesses int64
	for r := 0; r < repeats; r++ {
		sub, err := experiments.NewScheme(scheme, w)
		if err != nil {
			return Cell{}, err
		}
		start := time.Now()
		res, err := experiments.RunSubsystem(w, sub, opts)
		elapsed := time.Since(start)
		if err != nil {
			return Cell{}, err
		}
		// Total accesses processed: the subsystem's demand-access counter
		// covers the whole run including warmup and is scheme-independent
		// for a fixed workload.
		accesses = int64(res.ICache.Accesses)
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	if accesses == 0 {
		return Cell{}, fmt.Errorf("no accesses simulated")
	}
	ns := float64(best.Nanoseconds()) / float64(accesses)
	return Cell{
		App:            app,
		Scheme:         scheme,
		Prefetcher:     pf,
		Accesses:       accesses,
		Instructions:   int64(w.Prog.Len()),
		Runs:           repeats,
		NsPerAccess:    ns,
		AccessesPerSec: 1e9 / ns,
	}, nil
}

// WriteJSON serializes the report to path with stable formatting.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadJSON loads a previously written report (regression comparisons).
func ReadJSON(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Table renders the report for terminal output.
func (r *Report) Table() *stats.Table {
	t := &stats.Table{Header: []string{"scheme", "prefetcher", "ns/access", "accesses/sec"}}
	for _, c := range r.Cells {
		t.AddRow(c.Scheme, c.Prefetcher, fmt.Sprintf("%.1f", c.NsPerAccess),
			fmt.Sprintf("%.3fM", c.AccessesPerSec/1e6))
	}
	return t
}

// PrepareSummary renders the prepare-phase measurement as one line: the
// wall-clock and peak live-heap growth, plus how many stage artifacts were
// regenerated vs. loaded from the store.
func (r *Report) PrepareSummary() string {
	var computed, loaded int64
	for _, st := range r.PrepareStages {
		computed += st.Computed
		loaded += st.FromStore
	}
	mode := ""
	if r.PrepareWindow > 0 {
		mode = fmt.Sprintf(", streamed window %d", r.PrepareWindow)
	}
	return fmt.Sprintf("prepare phase: %.1fms, peak heap +%.1fMB (%d stage artifacts regenerated, %d from store%s)",
		float64(r.PrepareWallNs)/1e6, float64(r.PreparePeakBytes)/(1<<20), computed, loaded, mode)
}

// PrepareSweepTable renders the batch-vs-streamed cold-prepare
// measurements (nil when none were run).
func (r *Report) PrepareSweepTable() *stats.Table {
	if len(r.PrepareSweeps) == 0 {
		return nil
	}
	t := &stats.Table{Header: []string{
		"n", "window", "batch-ms", "streamed-ms", "batch-peak-MB", "streamed-peak-MB", "peak-reduction", "identical"}}
	for _, s := range r.PrepareSweeps {
		ident := "yes"
		if !s.ArraysIdentical || !s.ArtifactsLoadClean {
			ident = "NO"
		}
		t.AddRow(s.N, s.Window,
			fmt.Sprintf("%.1f", float64(s.BatchWallNs)/1e6),
			fmt.Sprintf("%.1f", float64(s.StreamedWallNs)/1e6),
			fmt.Sprintf("%.1f", float64(s.BatchPeakBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(s.StreamedPeakBytes)/(1<<20)),
			fmt.Sprintf("%.2fx", s.PeakReduction),
			ident)
	}
	return t
}

// SampledSweepTable renders the set-sampled fast-mode sweep measurements
// (nil when none were run).
func (r *Report) SampledSweepTable() *stats.Table {
	if len(r.SampledSweeps) == 0 {
		return nil
	}
	t := &stats.Table{Header: []string{
		"prefetcher", "schemes", "sample-sets", "full-ms", "sampled-ms", "speedup", "cycles-err mean/worst"}}
	for _, s := range r.SampledSweeps {
		t.AddRow(s.Prefetcher, len(s.Schemes), s.SampleSets,
			fmt.Sprintf("%.1f", float64(s.FullWallNs)/1e6),
			fmt.Sprintf("%.1f", float64(s.SampledWallNs)/1e6),
			fmt.Sprintf("%.2fx", s.Speedup),
			fmt.Sprintf("%.2f%% / %.2f%%", s.MeanCyclesErrPct, s.WorstCyclesErrPct))
	}
	return t
}

// SweepTable renders the gang-sweep measurements (nil when none were run).
func (r *Report) SweepTable() *stats.Table {
	if len(r.Sweeps) == 0 {
		return nil
	}
	t := &stats.Table{Header: []string{
		"prefetcher", "schemes", "gang-size", "serial-ms", "gang-ms", "gang-speedup"}}
	for _, s := range r.Sweeps {
		t.AddRow(s.Prefetcher, len(s.Schemes), s.GangSize,
			fmt.Sprintf("%.1f", float64(s.SerialWallNs)/1e6),
			fmt.Sprintf("%.1f", float64(s.GangWallNs)/1e6),
			fmt.Sprintf("%.2fx", s.GangSpeedup))
	}
	return t
}

// CrossSweepTable renders the cross-prefetcher sweep measurements (nil
// when none were run).
func (r *Report) CrossSweepTable() *stats.Table {
	if len(r.CrossSweeps) == 0 {
		return nil
	}
	t := &stats.Table{Header: []string{
		"row", "cells", "auto-window", "serial-ms", "fixed-ms", "auto-ms", "fixed-speedup", "auto-speedup"}}
	for _, s := range r.CrossSweeps {
		t.AddRow(s.Name, len(s.Schemes)*len(s.Prefetchers), s.AutoWindow,
			fmt.Sprintf("%.1f", float64(s.SerialWallNs)/1e6),
			fmt.Sprintf("%.1f", float64(s.FixedWallNs)/1e6),
			fmt.Sprintf("%.1f", float64(s.AutoWallNs)/1e6),
			fmt.Sprintf("%.2fx", s.FixedSpeedup),
			fmt.Sprintf("%.2fx", s.AutoSpeedup))
	}
	return t
}

// Cell returns the measurement for (scheme, prefetcher), if present.
func (r *Report) Cell(scheme, prefetcher string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Scheme == scheme && c.Prefetcher == prefetcher {
			return c, true
		}
	}
	return Cell{}, false
}
