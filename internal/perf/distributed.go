package perf

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"acic/internal/cpu"
	"acic/internal/distrib"
	"acic/internal/experiments"
	"acic/internal/experiments/engine"
	"acic/internal/stats"
)

// DistributedLane is one worker-count point of a DistributedSweep: the
// same cell grid executed through a coordinator with this many in-process
// workers over a cold shared store, wall-clocked end to end (workload
// prepare included — every lane starts cold) and verified cell-for-cell
// identical to the single-process reference.
type DistributedLane struct {
	Workers     int     `json:"workers"`
	WallNs      int64   `json:"wall_ns"`
	Speedup     float64 `json:"speedup"`      // single-process wall / lane wall
	RemoteCells int     `json:"remote_cells"` // cells completed by workers
	Requeued    int     `json:"requeued"`     // batch requeues (lease expiry / transient)
	Identical   bool    `json:"results_identical"`
}

// DistributedSweep is the distributed-execution measurement (DESIGN.md
// §14): the full (app × scheme) grid under one prefetcher, run once
// single-process and once per worker count through the acic-coord
// work-stealing protocol with the shared HTTP store. Every lane is cold —
// fresh scratch store, workloads prepared from nothing — so the speedup
// column is the end-to-end `-exp`-style wall-clock a user would see.
//
// Workers here are in-process (goroutines running distrib.RunWorker
// against a real HTTP listener), so lane parallelism is bounded by
// HostCPUs: the ideal speedup at w workers is min(w·PoolWidth, HostCPUs)
// / min(PoolWidth, HostCPUs), and a single-core host pins every lane to
// ~1x regardless of worker count. The committed trajectory entry carries
// HostCPUs so a reader can tell scheduling overhead from a small host.
type DistributedSweep struct {
	Apps         []string          `json:"apps"`
	Schemes      []string          `json:"schemes"`
	Prefetcher   string            `json:"prefetcher"`
	GangSize     int               `json:"gang_size"`
	PoolWidth    int               `json:"pool_width"` // per-process worker pool
	HostCPUs     int               `json:"host_cpus"`  // runtime.NumCPU ceiling on lane parallelism
	Cells        int               `json:"cells"`
	SingleWallNs int64             `json:"single_wall_ns"`
	Lanes        []DistributedLane `json:"lanes"`
}

// DistributedSchemes is the scheme row the distributed sweep shards: the
// three classic baselines plus the paper's policy and the oracle — wide
// enough that one app's row is a full gang, small enough that the sweep's
// four cold lanes stay minutes, not hours.
func DistributedSchemes() []string {
	return []string{"lru", "srrip", "ship", "acic", "opt"}
}

// DistributedWorkerCounts is the default lane ladder.
func DistributedWorkerCounts() []int { return []int{1, 2, 4} }

// distPoolWidth is the per-process pool width every lane pins: half the
// host's CPUs, so the 2-worker lane can occupy the whole machine while
// the single-process reference runs at exactly half.
func distPoolWidth() int {
	if w := runtime.NumCPU() / 2; w > 1 {
		return w
	}
	return 1
}

// measureDistributedSweep runs the single-process reference lane and one
// distributed lane per worker count, each over the full DistributedSchemes
// × datacenter-apps grid under the FDP platform, cold.
func measureDistributedSweep(cfg Config) (DistributedSweep, error) {
	schemes := DistributedSchemes()
	width := distPoolWidth()
	gang := len(schemes)

	single := experiments.NewSuite(cfg.N)
	single.Context = cfg.Context
	single.Workers = width
	single.GangSize = gang
	apps := single.AppNames()
	cells := experiments.CrossCells(apps, schemes, "fdp")
	start := time.Now()
	if err := single.Require(cells...); err != nil {
		return DistributedSweep{}, err
	}
	singleWall := time.Since(start)
	ref := make([]cpu.Result, len(cells))
	for i, c := range cells {
		r, err := single.Result(c.App, c.Scheme, c.Prefetcher)
		if err != nil {
			return DistributedSweep{}, err
		}
		ref[i] = r
	}

	sweep := DistributedSweep{
		Apps:         apps,
		Schemes:      schemes,
		Prefetcher:   "fdp",
		GangSize:     gang,
		PoolWidth:    width,
		HostCPUs:     runtime.NumCPU(),
		Cells:        len(cells),
		SingleWallNs: singleWall.Nanoseconds(),
	}
	for _, nw := range DistributedWorkerCounts() {
		if cfg.Context != nil && cfg.Context.Err() != nil {
			return sweep, nil
		}
		lane, err := runDistributedLane(cfg, cells, ref, nw, width, gang)
		if err != nil {
			return sweep, fmt.Errorf("lane workers=%d: %w", nw, err)
		}
		lane.Speedup = float64(singleWall.Nanoseconds()) / float64(lane.WallNs)
		sweep.Lanes = append(sweep.Lanes, lane)
	}
	return sweep, nil
}

// runDistributedLane executes the grid through a real coordinator — HTTP
// listener, shared store, work-stealing claims — with nw in-process
// workers, the same wiring acic-coord uses minus the process boundary.
func runDistributedLane(cfg Config, cells []experiments.Cell, ref []cpu.Result, nw, width, gang int) (DistributedLane, error) {
	dir, err := os.MkdirTemp("", "acic-dist-sweep-*")
	if err != nil {
		return DistributedLane{}, err
	}
	defer os.RemoveAll(dir)
	storeHandler, err := engine.NewStoreHandler(dir)
	if err != nil {
		return DistributedLane{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return DistributedLane{}, err
	}
	url := "http://" + ln.Addr().String()

	coord := distrib.NewCoordinator(distrib.CoordinatorOptions{
		Config: distrib.Config{N: cfg.N, GangSize: gang, StoreURL: url},
		Lease:  time.Minute,
	})
	defer coord.Close()
	mux := http.NewServeMux()
	mux.Handle("/api/", coord.Handler())
	mux.Handle("/", storeHandler)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A worker error surfaces as the coordinator falling back or
			// the identity check failing; the lane itself keeps going.
			distrib.RunWorker(wctx, distrib.WorkerOptions{
				Coord: url, Workers: width, Name: fmt.Sprintf("lane%d-w%d", nw, i)})
		}(i)
	}

	s := experiments.NewSuite(cfg.N)
	s.Context = cfg.Context
	s.Workers = width
	s.GangSize = gang
	s.CacheDir, s.ArtifactDir = dir, dir
	s.Remote = coord
	if err := s.CacheError(); err != nil {
		return DistributedLane{}, err
	}
	start := time.Now()
	reqErr := s.Require(cells...)
	wall := time.Since(start)
	coord.Close()
	wg.Wait()
	if reqErr != nil {
		return DistributedLane{}, reqErr
	}

	identical := true
	for i, c := range cells {
		r, err := s.Result(c.App, c.Scheme, c.Prefetcher)
		if err != nil || r != ref[i] {
			identical = false
			break
		}
	}
	st := coord.Stats()
	return DistributedLane{
		Workers:     nw,
		WallNs:      wall.Nanoseconds(),
		RemoteCells: int(st.Completed),
		Requeued:    int(st.Requeued),
		Identical:   identical,
	}, nil
}

// DistributedSweepTable renders the distributed lane measurements (nil
// when none were run). The single-process reference is the 1.00x row.
func (r *Report) DistributedSweepTable() *stats.Table {
	if len(r.DistributedSweeps) == 0 {
		return nil
	}
	t := &stats.Table{Header: []string{
		"lane", "cells", "pool-width", "wall-ms", "speedup", "remote-cells", "requeued", "identical"}}
	for _, s := range r.DistributedSweeps {
		t.AddRow("single-process", s.Cells, s.PoolWidth,
			fmt.Sprintf("%.1f", float64(s.SingleWallNs)/1e6), "1.00x", 0, 0, "yes")
		for _, l := range s.Lanes {
			ident := "yes"
			if !l.Identical {
				ident = "NO"
			}
			t.AddRow(fmt.Sprintf("%d workers", l.Workers), s.Cells, s.PoolWidth,
				fmt.Sprintf("%.1f", float64(l.WallNs)/1e6),
				fmt.Sprintf("%.2fx", l.Speedup),
				l.RemoteCells, l.Requeued, ident)
		}
	}
	return t
}
