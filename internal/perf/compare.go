package perf

import (
	"fmt"

	"acic/internal/stats"
)

// Delta is one cell's throughput change between two reports. Pct is the
// ns/access change relative to the old report: negative is faster, +25
// means the new tree takes 25% longer per access.
type Delta struct {
	App        string
	Scheme     string
	Prefetcher string
	OldNs      float64
	NewNs      float64
	Pct        float64
}

// Comparison is the cell-by-cell diff of two reports (old baseline vs new
// measurement), the basis of `acic-bench -compare`.
type Comparison struct {
	Deltas []Delta
	// OnlyOld / OnlyNew list cells present in exactly one report (labelled
	// app/scheme/prefetcher); they are excluded from the aggregates.
	OnlyOld []string
	OnlyNew []string
	// OldWallNs / NewWallNs aggregate ns_per_access × accesses over the
	// matched cells: the wall-clock a serial sweep of that grid costs in
	// each tree, so OldWallNs/NewWallNs is the suite-level speedup.
	OldWallNs float64
	NewWallNs float64
}

// Compare diffs two reports cell by cell, in the old report's order.
func Compare(oldRep, newRep *Report) *Comparison {
	c := &Comparison{}
	key := func(cell Cell) string {
		return cell.App + "/" + cell.Scheme + "/" + cell.Prefetcher
	}
	matched := make(map[string]bool)
	for _, o := range oldRep.Cells {
		n, ok := findCell(newRep, o)
		if !ok {
			c.OnlyOld = append(c.OnlyOld, key(o))
			continue
		}
		matched[key(o)] = true
		c.Deltas = append(c.Deltas, Delta{
			App:        o.App,
			Scheme:     o.Scheme,
			Prefetcher: o.Prefetcher,
			OldNs:      o.NsPerAccess,
			NewNs:      n.NsPerAccess,
			Pct:        100 * (n.NsPerAccess - o.NsPerAccess) / o.NsPerAccess,
		})
		c.OldWallNs += o.NsPerAccess * float64(o.Accesses)
		c.NewWallNs += n.NsPerAccess * float64(n.Accesses)
	}
	for _, n := range newRep.Cells {
		if !matched[key(n)] {
			c.OnlyNew = append(c.OnlyNew, key(n))
		}
	}
	return c
}

func findCell(r *Report, want Cell) (Cell, bool) {
	for _, c := range r.Cells {
		if c.App == want.App && c.Scheme == want.Scheme && c.Prefetcher == want.Prefetcher {
			return c, true
		}
	}
	return Cell{}, false
}

// MissingCells returns an error describing cells present in exactly one
// of the two reports, or nil when the cell sets match. An enforcing
// comparison treats a one-sided cell as a broken gate, not a zero-delta
// row — a renamed or dropped cell must fail loudly rather than silently
// leave the regression check with nothing to compare.
func (c *Comparison) MissingCells() error {
	if len(c.OnlyOld) == 0 && len(c.OnlyNew) == 0 {
		return nil
	}
	return fmt.Errorf("cell sets differ: %d only in baseline %v, %d only in new %v",
		len(c.OnlyOld), c.OnlyOld, len(c.OnlyNew), c.OnlyNew)
}

// Speedup returns the aggregate old/new wall-clock ratio over matched
// cells (> 1 means the new tree is faster), or 0 with nothing matched.
func (c *Comparison) Speedup() float64 {
	if c.NewWallNs == 0 {
		return 0
	}
	return c.OldWallNs / c.NewWallNs
}

// WorstPct returns the largest per-cell regression percentage (the most
// positive Pct), or 0 with no deltas; a fully-improved comparison reports
// a negative value.
func (c *Comparison) WorstPct() float64 {
	worst := 0.0
	for i, d := range c.Deltas {
		if i == 0 || d.Pct > worst {
			worst = d.Pct
		}
	}
	return worst
}

// Table renders the per-cell delta table.
func (c *Comparison) Table() *stats.Table {
	t := &stats.Table{Header: []string{"app", "scheme", "prefetcher", "old ns/access", "new ns/access", "delta"}}
	for _, d := range c.Deltas {
		t.AddRow(d.App, d.Scheme, d.Prefetcher,
			fmt.Sprintf("%.1f", d.OldNs), fmt.Sprintf("%.1f", d.NewNs),
			fmt.Sprintf("%+.1f%%", d.Pct))
	}
	return t
}

// Summary is the one-line aggregate for logs and CI job summaries.
func (c *Comparison) Summary() string {
	return fmt.Sprintf("matched %d cells: aggregate speedup %.2fx (old %.1fms -> new %.1fms), worst cell %+.1f%%",
		len(c.Deltas), c.Speedup(), c.OldWallNs/1e6, c.NewWallNs/1e6, c.WorstPct())
}
