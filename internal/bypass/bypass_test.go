package bypass

import (
	"testing"

	"acic/internal/cache"
)

func TestAlwaysInsert(t *testing.T) {
	var p AlwaysInsert
	if !p.ShouldInsert(1, 2, true, nil) || !p.ShouldInsert(1, 2, false, nil) {
		t.Error("always-insert must always insert")
	}
	if p.Name() != "always-insert" || p.StorageBits() != 0 {
		t.Error("metadata wrong")
	}
}

func TestAccessCountComparison(t *testing.T) {
	p := NewAccessCount(6, 1024)
	for i := 0; i < 10; i++ {
		p.OnFetch(100) // hot block
	}
	p.OnFetch(200) // cold block
	if !p.ShouldInsert(100, 200, true, nil) {
		t.Error("hot incoming should beat cold contender")
	}
	if p.ShouldInsert(200, 100, true, nil) {
		t.Error("cold incoming should lose to hot contender")
	}
	if !p.ShouldInsert(200, 999, false, nil) {
		t.Error("invalid contender must always be replaced")
	}
}

func TestAccessCountSaturatesAndConflicts(t *testing.T) {
	p := NewAccessCount(2, 4) // tiny direct-mapped MAT
	for i := 0; i < 100; i++ {
		p.OnFetch(1)
	}
	if p.count(1) > 3 {
		t.Errorf("counter %d exceeds 2-bit max", p.count(1))
	}
	// Stream conflicting blocks through the 4-entry MAT: block 1's count
	// must eventually be stolen (the hardware-faithful burst-local memory).
	for b := uint64(2); b < 64; b++ {
		p.OnFetch(b)
	}
	if p.count(1) == 3 {
		t.Error("MAT entry survived a conflict storm; counts should be burst-local")
	}
}

func TestAccessCountRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two MAT")
		}
	}()
	NewAccessCount(6, 3)
}

func TestRandomAdmitProbability(t *testing.T) {
	p := NewRandomAdmit(60, 42)
	admits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.ShouldInsert(1, 2, true, nil) {
			admits++
		}
	}
	frac := float64(admits) / n
	if frac < 0.57 || frac > 0.63 {
		t.Errorf("admit fraction = %.3f, want ~0.60", frac)
	}
	if !p.ShouldInsert(1, 2, false, nil) {
		t.Error("invalid contender must always admit")
	}
}

func TestOPTBypassUsesOracle(t *testing.T) {
	oracle := func(b uint64, _ int64) int64 {
		switch b {
		case 1:
			return 10
		case 2:
			return 20
		}
		return cache.NeverUsed
	}
	ctx := &cache.AccessContext{NextUse: oracle}
	var p OPTBypass
	if !p.ShouldInsert(1, 2, true, ctx) {
		t.Error("incoming with sooner reuse must be inserted")
	}
	if p.ShouldInsert(2, 1, true, ctx) {
		t.Error("incoming with later reuse must be bypassed")
	}
	if !p.ShouldInsert(2, 1, false, ctx) {
		t.Error("invalid contender must always admit")
	}
}

func TestDSBAdaptsProbability(t *testing.T) {
	p := NewDSB(DefaultDSBConfig(64))
	start := p.prob
	// Force a bypass, then fetch the bypassed block first: bad bypass.
	var bypassed bool
	for i := 0; i < 200 && !bypassed; i++ {
		// blocks 64*i and 64*i+... same set 0
		if !p.ShouldInsert(uint64(64*i), uint64(64*i+64), true, nil) {
			bypassed = true
			p.OnFetch(uint64(64 * i)) // bypassed block re-fetched first
		}
	}
	if !bypassed {
		t.Fatal("DSB never bypassed despite initial probability")
	}
	if p.prob >= start {
		t.Errorf("prob %d should fall after a bad bypass (start %d)", p.prob, start)
	}
	if p.BadBp == 0 {
		t.Error("bad-bypass counter not incremented")
	}
}

func TestDSBRewardsGoodBypass(t *testing.T) {
	p := NewDSB(DSBConfig{Sets: 64, InitialProb: 1024, Step: 32})
	if p.ShouldInsert(0, 64, true, nil) {
		t.Fatal("prob=1024 must bypass")
	}
	before := p.prob
	p.OnFetch(64) // the retained victim re-used first: bypass was right
	if p.prob <= before-33 || p.GoodBp != 1 {
		t.Errorf("good bypass should raise prob (got %d, before %d)", p.prob, before)
	}
}

func TestOBMLearnsOptimalDecision(t *testing.T) {
	cfg := DefaultOBMConfig()
	cfg.SampleOneIn = 1 // sample every pair for the test
	p := NewOBM(cfg)
	inc, vic := uint64(500), uint64(564)
	// Repeatedly: pair sampled, then victim re-used first => bypass optimal.
	for i := 0; i < 40; i++ {
		p.ShouldInsert(inc, vic, true, nil)
		p.OnFetch(vic)
	}
	if p.TrainBypass == 0 {
		t.Fatal("OBM never trained toward bypass")
	}
	if p.ShouldInsert(inc, vic, true, nil) {
		t.Error("OBM should have learned to bypass this signature")
	}
	// Opposite: incoming re-used first => insert optimal.
	inc2, vic2 := uint64(12), uint64(76)
	for i := 0; i < 60; i++ {
		p.ShouldInsert(inc2, vic2, true, nil)
		p.OnFetch(inc2)
	}
	if !p.ShouldInsert(inc2, vic2, true, nil) {
		t.Error("OBM should have learned to insert this signature")
	}
}

func TestStorageBudgets(t *testing.T) {
	// Table IV bands: DSB 0.48KB, OBM 1.41KB.
	dsb := NewDSB(DefaultDSBConfig(64)).StorageBits()
	if kb := float64(dsb) / 8192; kb > 0.5 {
		t.Errorf("DSB storage %.3f KB exceeds Table IV budget", kb)
	}
	obm := NewOBM(DefaultOBMConfig()).StorageBits()
	if kb := float64(obm) / 8192; kb < 1.0 || kb > 1.5 {
		t.Errorf("OBM storage %.3f KB out of Table IV band", kb)
	}
}
