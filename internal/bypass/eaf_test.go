package bypass

import "testing"

func TestEAFTracksEvictions(t *testing.T) {
	p := NewEAF(EAFConfig{Capacity: 4, BypassOneIn: 1}) // bypass every EAF miss
	if p.InFilter(10) {
		t.Error("empty filter should not contain anything")
	}
	p.OnEvict(10)
	if !p.InFilter(10) {
		t.Error("evicted block must be tracked")
	}
	// A tracked block is always inserted (early-eviction signal).
	if !p.ShouldInsert(10, 99, true, nil) {
		t.Error("EAF hit must insert")
	}
	if p.ReuseHits != 1 {
		t.Errorf("reuse hits = %d", p.ReuseHits)
	}
	// An untracked block is bypassed (BypassOneIn=1).
	if p.ShouldInsert(11, 99, true, nil) {
		t.Error("EAF miss with BypassOneIn=1 must bypass")
	}
	if !p.ShouldInsert(11, 99, false, nil) {
		t.Error("invalid contender must always insert")
	}
}

func TestEAFFIFOAging(t *testing.T) {
	p := NewEAF(EAFConfig{Capacity: 3, BypassOneIn: 1})
	for b := uint64(1); b <= 3; b++ {
		p.OnEvict(b)
	}
	p.OnEvict(4) // displaces 1
	if p.InFilter(1) {
		t.Error("oldest tracked address must age out")
	}
	for _, b := range []uint64{2, 3, 4} {
		if !p.InFilter(b) {
			t.Errorf("block %d should still be tracked", b)
		}
	}
}

func TestEAFDuplicateEvictions(t *testing.T) {
	p := NewEAF(EAFConfig{Capacity: 3, BypassOneIn: 1})
	p.OnEvict(7)
	p.OnEvict(7)
	p.OnEvict(8) // filter: [7,7,8]
	p.OnEvict(9) // displaces first 7; the second 7 remains
	if !p.InFilter(7) {
		t.Error("duplicate occurrence must keep the block tracked")
	}
	p.OnEvict(10) // displaces second 7
	if p.InFilter(7) {
		t.Error("block must leave the filter after its last occurrence ages out")
	}
}

func TestEAFBypassRate(t *testing.T) {
	p := NewEAF(EAFConfig{Capacity: 8, BypassOneIn: 2})
	bypassed := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if !p.ShouldInsert(uint64(1000+i), 5, true, nil) {
			bypassed++
		}
	}
	frac := float64(bypassed) / n
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("bypass fraction %.2f, want ~0.5", frac)
	}
}

func TestEAFRejectsBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEAF(EAFConfig{Capacity: 0})
}
