package bypass

import "acic/internal/cache"

// DSB implements the adaptive-bypassing component of Gao & Wilkerson's
// "Dueling Segmented LRU Replacement Algorithm with Adaptive Bypassing"
// (JWAC'10 cache replacement championship, [23] in the paper). Incoming
// blocks are bypassed with a learned probability. Every bypass decision is
// audited: the bypassed block's tag and its would-be victim are remembered
// in a per-set tracker, and whichever is fetched again first tells us
// whether bypassing was right (victim re-used first) or wrong (bypassed
// block re-used first); the outcome adapts the global bypass probability.
//
// Per Table IV the tracker stores a 16-bit line tag plus a 3-bit competitor
// way; the storage charge is 0.48KB.
type DSB struct {
	sets     int
	prob     int64 // bypass probability numerator, denominator 1024
	step     int64
	state    uint64
	trackers []dsbTracker

	// Stats.
	Bypassed uint64
	Inserted uint64
	GoodBp   uint64
	BadBp    uint64
}

type dsbTracker struct {
	bypassedTag uint32
	victimBlock uint64
	valid       bool
}

// DSBConfig configures DSB.
type DSBConfig struct {
	Sets        int   // number of i-cache sets (one tracker per set)
	InitialProb int64 // initial bypass probability (x/1024)
	Step        int64 // adaptation step
}

// DefaultDSBConfig mirrors the original tuning: start with moderate
// bypassing and adapt by small steps.
func DefaultDSBConfig(sets int) DSBConfig {
	return DSBConfig{Sets: sets, InitialProb: 256, Step: 32}
}

// NewDSB returns a DSB bypass policy.
func NewDSB(cfg DSBConfig) *DSB {
	return &DSB{
		sets:     cfg.Sets,
		prob:     cfg.InitialProb,
		step:     cfg.Step,
		state:    0xA5A5A5A5DEADBEEF,
		trackers: make([]dsbTracker, cfg.Sets),
	}
}

// Name implements Policy.
func (p *DSB) Name() string { return "dsb" }

func tag16(block uint64) uint32 {
	return uint32((block*0x9E3779B97F4A7C15)>>48) & 0xFFFF
}

func (p *DSB) rand1024() int64 {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int64(p.state & 1023)
}

// OnFetch implements Policy: audit outstanding bypass decisions.
func (p *DSB) OnFetch(block uint64) {
	t := &p.trackers[block%uint64(p.sets)]
	if !t.valid {
		return
	}
	switch {
	case tag16(block) == t.bypassedTag:
		// The bypassed block was needed again first: bypassing hurt.
		p.BadBp++
		p.prob -= p.step
		if p.prob < 0 {
			p.prob = 0
		}
		t.valid = false
	case block == t.victimBlock:
		// The retained victim was re-used first: bypassing was right.
		p.GoodBp++
		p.prob += p.step
		if p.prob > 1024 {
			p.prob = 1024
		}
		t.valid = false
	}
}

// ShouldInsert implements Policy.
func (p *DSB) ShouldInsert(incoming, contender uint64, contenderValid bool, _ *cache.AccessContext) bool {
	if !contenderValid {
		p.Inserted++
		return true
	}
	if p.rand1024() < p.prob {
		p.Bypassed++
		t := &p.trackers[incoming%uint64(p.sets)]
		*t = dsbTracker{bypassedTag: tag16(incoming), victimBlock: contender, valid: true}
		return false
	}
	p.Inserted++
	return true
}

// StorageBits implements Policy: per Table IV, 0.48KB total.
func (p *DSB) StorageBits() int { return p.sets*(16+3+1) + 10 }

// OBM implements the Optimal Bypass Monitor (Li et al., PACT'12, [58]).
// A small Recent History Table samples (incoming, victim) pairs; when
// either block is fetched again the optimal decision for that pair becomes
// known and trains a Bypass Decision Counter Table indexed by the incoming
// block's signature. Per Table IV: 21-bit tags, 10-bit signature, 128-entry
// RHT, 1024-entry BDCT of 4-bit counters (1.41KB).
type OBM struct {
	rht      []obmEntry
	bdct     []uint8
	clock    int64
	state    uint64
	sampleIn uint64 // sample 1 in sampleIn insertions into RHT

	// Stats.
	TrainInsert uint64
	TrainBypass uint64
}

type obmEntry struct {
	incTag uint32
	vicTag uint32
	incSig uint32
	valid  bool
	stamp  int64
}

// OBMConfig sizes OBM.
type OBMConfig struct {
	RHTEntries    int
	BDCTEntries   int
	SampleOneIn   uint64
	TagBits       int
	SignatureBits int
}

// DefaultOBMConfig matches Table IV.
func DefaultOBMConfig() OBMConfig {
	return OBMConfig{RHTEntries: 128, BDCTEntries: 1024, SampleOneIn: 8, TagBits: 21, SignatureBits: 10}
}

// NewOBM returns an OBM bypass policy.
func NewOBM(cfg OBMConfig) *OBM {
	p := &OBM{
		rht:      make([]obmEntry, cfg.RHTEntries),
		bdct:     make([]uint8, cfg.BDCTEntries),
		state:    0xC0FFEE123456789,
		sampleIn: cfg.SampleOneIn,
	}
	for i := range p.bdct {
		p.bdct[i] = 8 // weakly insert
	}
	return p
}

// Name implements Policy.
func (p *OBM) Name() string { return "obm" }

func tag21(block uint64) uint32 {
	return uint32((block*0xFF51AFD7ED558CCD)>>32) & 0x1FFFFF
}

func (p *OBM) sig(block uint64) uint32 {
	return uint32(block*0x9E3779B97F4A7C15>>54) % uint32(len(p.bdct))
}

// OnFetch implements Policy: resolve sampled pairs.
func (p *OBM) OnFetch(block uint64) {
	t := tag21(block)
	for i := range p.rht {
		e := &p.rht[i]
		if !e.valid {
			continue
		}
		switch t {
		case e.incTag:
			// Incoming block re-used first: inserting would have been
			// optimal. Train toward insert.
			if p.bdct[e.incSig] < 15 {
				p.bdct[e.incSig]++
			}
			p.TrainInsert++
			e.valid = false
		case e.vicTag:
			// Victim re-used first: bypassing would have been optimal.
			if p.bdct[e.incSig] > 0 {
				p.bdct[e.incSig]--
			}
			p.TrainBypass++
			e.valid = false
		}
	}
}

// ShouldInsert implements Policy.
func (p *OBM) ShouldInsert(incoming, contender uint64, contenderValid bool, _ *cache.AccessContext) bool {
	if !contenderValid {
		return true
	}
	// Sample this pair into the RHT with probability 1/sampleIn.
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	if p.state%p.sampleIn == 0 {
		p.clock++
		lru, lruStamp := 0, p.rht[0].stamp
		for i := range p.rht {
			if !p.rht[i].valid {
				lru = i
				break
			}
			if p.rht[i].stamp < lruStamp {
				lru, lruStamp = i, p.rht[i].stamp
			}
		}
		p.rht[lru] = obmEntry{incTag: tag21(incoming), vicTag: tag21(contender), incSig: p.sig(incoming), valid: true, stamp: p.clock}
	}
	return p.bdct[p.sig(incoming)] >= 8
}

// StorageBits implements Policy: Table IV charges 1.41KB.
func (p *OBM) StorageBits() int {
	return len(p.rht)*(21+21+1) + len(p.bdct)*4
}
