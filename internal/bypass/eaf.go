package bypass

import (
	"acic/internal/cache"
	"acic/internal/flat"
)

// EAF implements the Evicted-Address Filter (Seshadri et al., PACT'12,
// [78] in the paper's related work) as a bypass policy: a bounded filter
// remembers recently evicted block addresses. An incoming block that hits
// the EAF was evicted too early (it has reuse) and is inserted; a block
// absent from the EAF is seen for the first time in its generation and is
// inserted conservatively — here, with probability 1/BypassOneIn it is
// bypassed outright, which is the EAF-bypass variant of the original
// paper. The EAF itself is modeled as a FIFO of addresses with a bounded
// capacity (the original uses a Bloom filter of equivalent reach).
type EAF struct {
	capacity    int
	fifo        []uint64
	pos         int
	index       *flat.Table // block -> count of live occurrences
	state       uint64
	BypassOneIn uint64

	// Stats.
	ReuseHits uint64
	Bypassed  uint64
}

// EAFConfig sizes the filter.
type EAFConfig struct {
	Capacity    int    // tracked evicted addresses (cache-size worth: 512)
	BypassOneIn uint64 // bypass 1 in N EAF-miss insertions (2)
}

// DefaultEAFConfig follows the original proposal's sizing guidance: track
// as many evicted addresses as the cache holds blocks.
func DefaultEAFConfig() EAFConfig { return EAFConfig{Capacity: 512, BypassOneIn: 2} }

// NewEAF returns an EAF bypass policy.
func NewEAF(cfg EAFConfig) *EAF {
	if cfg.Capacity <= 0 {
		panic("bypass: EAF capacity must be positive")
	}
	if cfg.BypassOneIn == 0 {
		cfg.BypassOneIn = 2
	}
	return &EAF{
		capacity:    cfg.Capacity,
		fifo:        make([]uint64, cfg.Capacity),
		index:       flat.NewTable(cfg.Capacity),
		state:       0xFEE1DEADCAFEF00D,
		BypassOneIn: cfg.BypassOneIn,
	}
}

// Name implements Policy.
func (p *EAF) Name() string { return "eaf" }

// OnFetch implements Policy (EAF trains on evictions, not fetches).
func (p *EAF) OnFetch(uint64) {}

// OnEvict records an evicted block address; the icache harness calls this
// from its eviction path. Addresses age out FIFO.
func (p *EAF) OnEvict(block uint64) {
	old := p.fifo[p.pos]
	if old != 0 {
		p.index.Add(old, -1)
	}
	p.fifo[p.pos] = block
	p.index.Add(block, 1)
	p.pos = (p.pos + 1) % p.capacity
}

// InFilter reports whether block is currently tracked.
func (p *EAF) InFilter(block uint64) bool { return p.index.Contains(block) }

// ShouldInsert implements Policy.
func (p *EAF) ShouldInsert(incoming, _ uint64, contenderValid bool, _ *cache.AccessContext) bool {
	if !contenderValid {
		return true
	}
	if p.InFilter(incoming) {
		p.ReuseHits++
		return true // evicted too early: high-reuse block
	}
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	if p.state%p.BypassOneIn == 0 {
		p.Bypassed++
		return false
	}
	return true
}

// StorageBits implements Policy: a Bloom filter of ~8 bits per tracked
// address in the hardware proposal.
func (p *EAF) StorageBits() int { return p.capacity * 8 }
