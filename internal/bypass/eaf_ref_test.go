package bypass

import (
	"math/rand"
	"testing"
)

// refEAFIndex is the retained map-based reference for the EAF's live-count
// index (the pre-flat-table code). The production flat.Table-backed index
// must agree with it on any eviction stream.
type refEAFIndex struct {
	capacity int
	fifo     []uint64
	pos      int
	index    map[uint64]int
}

func newRefEAFIndex(capacity int) *refEAFIndex {
	return &refEAFIndex{capacity: capacity, fifo: make([]uint64, capacity), index: make(map[uint64]int, capacity)}
}

func (p *refEAFIndex) onEvict(block uint64) {
	old := p.fifo[p.pos]
	if old != 0 {
		if n := p.index[old]; n <= 1 {
			delete(p.index, old)
		} else {
			p.index[old] = n - 1
		}
	}
	p.fifo[p.pos] = block
	p.index[block]++
	p.pos = (p.pos + 1) % p.capacity
}

func (p *refEAFIndex) inFilter(block uint64) bool { return p.index[block] > 0 }

// TestEAFMatchesMapReference drives the flat-table EAF and the map
// reference through identical eviction streams and compares membership
// after every step, across footprints below and above the FIFO capacity.
func TestEAFMatchesMapReference(t *testing.T) {
	for _, span := range []int{8, 60, 600, 4000} {
		rng := rand.New(rand.NewSource(int64(span)))
		eaf := NewEAF(EAFConfig{Capacity: 64, BypassOneIn: 2})
		ref := newRefEAFIndex(64)
		for step := 0; step < 30000; step++ {
			b := uint64(rng.Intn(span)) + 1
			eaf.OnEvict(b)
			ref.onEvict(b)
			probe := uint64(rng.Intn(span)) + 1
			if got, want := eaf.InFilter(probe), ref.inFilter(probe); got != want {
				t.Fatalf("span %d step %d: InFilter(%d) = %v, ref = %v", span, step, probe, got, want)
			}
		}
	}
}
