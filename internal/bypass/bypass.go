// Package bypass implements the cache-bypassing schemes the paper compares
// against (Section IV-E and Fig 3a): always-insert, access-count comparison
// (Johnson et al.), random bypass with a fixed admit probability (Fig 12b),
// DSB (dueling segmented LRU with adaptive bypassing), OBM (optimal bypass
// monitor), and the oracle OPT-bypass. Bypass policies answer one question:
// should this incoming block be inserted into the i-cache (replacing the
// chosen contender) or dropped?
//
// The same interface serves two placements, mirroring the paper: directly
// on the i-cache fill path (DSB/OBM as originally proposed) or on the
// i-Filter eviction path (the ACIC datapath position, used for Fig 3a's
// access-count comparison and for "DSB equipped with i-Filter").
package bypass

import "acic/internal/cache"

// Policy decides insertion vs. bypass for an incoming block.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// ShouldInsert decides whether incoming should replace the contender
	// (the replacement policy's victim in the target set). ctx carries the
	// oracle for OPT-bypass; accessIdx is the block-access sequence time.
	ShouldInsert(incoming, contender uint64, contenderValid bool, ctx *cache.AccessContext) bool
	// OnFetch observes every demand block fetch (training).
	OnFetch(block uint64)
	// StorageBits accounts the policy's extra state.
	StorageBits() int
}

// AlwaysInsert inserts everything — the conventional fill path and Fig 3a's
// "Always insert i-Filter victim to i-cache" scheme.
type AlwaysInsert struct{}

// Name implements Policy.
func (AlwaysInsert) Name() string { return "always-insert" }

// ShouldInsert implements Policy.
func (AlwaysInsert) ShouldInsert(_, _ uint64, _ bool, _ *cache.AccessContext) bool { return true }

// OnFetch implements Policy.
func (AlwaysInsert) OnFetch(uint64) {}

// StorageBits implements Policy.
func (AlwaysInsert) StorageBits() int { return 0 }

// AccessCount is the run-time cache bypassing scheme of Johnson et al.
// (IEEE TC 1999, [37] in the paper): per-block saturating access counters,
// kept in a small direct-mapped tagged Memory Access Table (MAT), are
// compared between the incoming block and the contender; the block with
// the larger count is kept. The hardware-faithful part matters: a MAT
// entry is *lost* on a tag conflict, so a block's count reflects its
// recent burst, not its lifetime popularity — which is exactly why the
// paper finds the mechanism misjudges bursty instruction streams (Fig 3a).
type AccessCount struct {
	bits   int
	ctrMax uint8
	tags   []uint32
	counts []uint8
	valid  []bool
}

// NewAccessCount returns an access-count bypass policy with ctrBits-wide
// counters in a direct-mapped MAT of the given number of entries.
func NewAccessCount(ctrBits, entries int) *AccessCount {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bypass: MAT entries must be a positive power of two")
	}
	return &AccessCount{
		bits:   ctrBits,
		ctrMax: uint8(1<<ctrBits - 1),
		tags:   make([]uint32, entries),
		counts: make([]uint8, entries),
		valid:  make([]bool, entries),
	}
}

// Name implements Policy.
func (p *AccessCount) Name() string { return "access-count" }

func (p *AccessCount) slot(block uint64) (int, uint32) {
	h := block * 0x9E3779B97F4A7C15
	return int(h % uint64(len(p.tags))), uint32(h >> 44)
}

// OnFetch implements Policy: count accesses per block in the MAT; a tag
// conflict steals the entry and restarts the count.
func (p *AccessCount) OnFetch(block uint64) {
	i, tag := p.slot(block)
	if p.valid[i] && p.tags[i] == tag {
		if p.counts[i] < p.ctrMax {
			p.counts[i]++
		}
		return
	}
	p.tags[i], p.counts[i], p.valid[i] = tag, 1, true
}

// count returns the MAT count for block (0 when not tracked).
func (p *AccessCount) count(block uint64) uint8 {
	i, tag := p.slot(block)
	if p.valid[i] && p.tags[i] == tag {
		return p.counts[i]
	}
	return 0
}

// ShouldInsert implements Policy: keep whichever block has been accessed
// more; ties favor the incoming block (recency).
func (p *AccessCount) ShouldInsert(incoming, contender uint64, contenderValid bool, _ *cache.AccessContext) bool {
	if !contenderValid {
		return true
	}
	return p.count(incoming) >= p.count(contender)
}

// StorageBits implements Policy: the MAT's tags plus counters.
func (p *AccessCount) StorageBits() int { return len(p.tags) * (p.bits + 20 + 1) }

// RandomAdmit admits with fixed probability; Fig 12b's "random bypass with
// 60% accuracy" control.
type RandomAdmit struct {
	// ProbPercent is the admit probability in percent [0,100].
	ProbPercent uint64
	state       uint64
}

// NewRandomAdmit returns a random bypass policy admitting probPercent% of
// incoming blocks, deterministically seeded.
func NewRandomAdmit(probPercent, seed uint64) *RandomAdmit {
	if seed == 0 {
		seed = 0xD1B54A32D192ED03
	}
	return &RandomAdmit{ProbPercent: probPercent, state: seed}
}

// Name implements Policy.
func (p *RandomAdmit) Name() string { return "random-bypass" }

// OnFetch implements Policy.
func (p *RandomAdmit) OnFetch(uint64) {}

// ShouldInsert implements Policy.
func (p *RandomAdmit) ShouldInsert(_, _ uint64, contenderValid bool, _ *cache.AccessContext) bool {
	if !contenderValid {
		return true
	}
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return p.state%100 < p.ProbPercent
}

// StorageBits implements Policy.
func (p *RandomAdmit) StorageBits() int { return 0 }

// OPTBypass is the oracle bypass of Table IV: insert the incoming block
// only if its next use is sooner than the contender's (ties keep the
// contender). With an i-Filter in front, this is the paper's "OPT bypass
// with i-Filter" scheme whose performance approaches OPT replacement.
type OPTBypass struct{}

// Name implements Policy.
func (OPTBypass) Name() string { return "opt-bypass" }

// OnFetch implements Policy.
func (OPTBypass) OnFetch(uint64) {}

// ShouldInsert implements Policy. Both next-use times are carried by the
// context when the i-cache layer runs with a successor-array oracle (the
// incoming block's from its i-Filter slot, the contender's from its cache
// line), making the oracle decision two int64 compares; contexts without
// carried values fall back to oracle queries. A carried value equal to a
// prefetch context's access index denotes the not-yet-performed demand
// access that index names; it is re-queried so decisions stay
// byte-identical to the oracle ("strictly after") semantics.
func (OPTBypass) ShouldInsert(incoming, contender uint64, contenderValid bool, ctx *cache.AccessContext) bool {
	if !contenderValid {
		return true
	}
	in := ctx.SelfNext
	if in == 0 || ctx.Block != incoming || (ctx.IsPrefetch && in == ctx.AccessIdx) {
		in = ctx.NextUseOf(incoming)
	}
	cn := ctx.ContenderNext
	if cn == 0 || (ctx.IsPrefetch && cn == ctx.AccessIdx) {
		cn = ctx.NextUseOf(contender)
	}
	return in < cn
}

// StorageBits implements Policy.
func (OPTBypass) StorageBits() int { return 0 }
