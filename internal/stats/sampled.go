package stats

import (
	"fmt"
	"math"
)

// SampledError is the error-bar report of the set-sampled fast mode: it
// accumulates one metric's sampled-vs-full pairs per evaluation cell and
// renders the per-cell relative errors plus the aggregate bars that
// DESIGN.md §10 documents. `acic-bench -sample-validate` builds one per
// metric over the evaluation grid.
type SampledError struct {
	Metric string
	cells  []sampledErrCell
}

type sampledErrCell struct {
	label         string
	full, sampled float64
}

// NewSampledError creates an empty report for the named metric.
func NewSampledError(metric string) *SampledError {
	return &SampledError{Metric: metric}
}

// Add records one cell's reference (full-run) and sampled values.
func (e *SampledError) Add(label string, full, sampled float64) {
	e.cells = append(e.cells, sampledErrCell{label: label, full: full, sampled: sampled})
}

// Len returns the number of recorded cells.
func (e *SampledError) Len() int { return len(e.cells) }

// errPct returns the signed relative error of one cell in percent. A zero
// reference with a zero sampled value is exact; a zero reference with a
// non-zero sampled value counts as 100%.
func (c sampledErrCell) errPct() float64 {
	if c.full == 0 {
		if c.sampled == 0 {
			return 0
		}
		return 100
	}
	return 100 * (c.sampled - c.full) / c.full
}

// MeanAbsPct returns the mean absolute relative error in percent.
func (e *SampledError) MeanAbsPct() float64 {
	if len(e.cells) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range e.cells {
		sum += math.Abs(c.errPct())
	}
	return sum / float64(len(e.cells))
}

// MaxAbsPct returns the worst absolute relative error in percent.
func (e *SampledError) MaxAbsPct() float64 {
	_, pct := e.Worst()
	return pct
}

// Worst returns the label and absolute relative error (percent) of the
// worst cell ("" and 0 when empty).
func (e *SampledError) Worst() (label string, absPct float64) {
	for _, c := range e.cells {
		if p := math.Abs(c.errPct()); p >= absPct {
			label, absPct = c.label, p
		}
	}
	return label, absPct
}

// Table renders the per-cell report: label, full value, sampled value,
// and signed relative error.
func (e *SampledError) Table() *Table {
	t := &Table{Header: []string{"cell", "full " + e.Metric, "sampled " + e.Metric, "err%"}}
	for _, c := range e.cells {
		t.AddRow(c.label, fmt.Sprintf("%.4g", c.full), fmt.Sprintf("%.4g", c.sampled),
			fmt.Sprintf("%+.2f", c.errPct()))
	}
	return t
}

// Summary renders the aggregate error bar as one line.
func (e *SampledError) Summary() string {
	label, worst := e.Worst()
	return fmt.Sprintf("%s: mean |err| %.2f%%, worst |err| %.2f%% (%s) over %d cells",
		e.Metric, e.MeanAbsPct(), worst, label, len(e.cells))
}
