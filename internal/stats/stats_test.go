package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("Geomean(1,1,1) = %v", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty input should yield 0")
	}
	if !math.IsNaN(Geomean([]float64{1, -2})) {
		t.Error("non-positive input should yield NaN")
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.1814); got != "18.14%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(-0.005); got != "-0.50%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for _, x := range []float64{5, 10, 15, 25, 100} {
		h.Add(x)
	}
	want := []uint64{2, 1, 1, 1} // <=10, <=20, <=30, overflow
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
	if h.Fraction(0) != 0.4 {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramEmptyAndBadEdges(t *testing.T) {
	h := NewHistogram(1, 2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-ascending edges must panic")
		}
	}()
	NewHistogram(2, 1)
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", "xyz")
	tbl.AddRow("c", 42)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.5000") {
		t.Errorf("float formatting: %q", lines[2])
	}
	if !strings.Contains(lines[4], "42") {
		t.Errorf("int row: %q", lines[4])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	col := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][col:], "1.5000") {
		t.Errorf("misaligned column:\n%s", out)
	}
}
