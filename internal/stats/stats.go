// Package stats provides the small statistical toolkit shared by the
// experiment harness: geometric means, histograms with custom bucket edges,
// fixed-point percentage formatting, and plain-text table rendering used to
// print the paper's tables and figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs. It returns 0 for an empty slice
// and NaN if any value is non-positive (speedups are strictly positive).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percent formats a fraction as a percentage with two decimals, e.g. 0.1814
// renders as "18.14%".
func Percent(frac float64) string { return fmt.Sprintf("%.2f%%", frac*100) }

// Histogram counts samples into buckets defined by ascending upper edges.
// A sample x lands in the first bucket whose Edge >= x; samples above the
// last edge land in the overflow bucket.
type Histogram struct {
	Edges    []float64 // ascending bucket upper bounds (inclusive)
	Counts   []uint64  // len(Edges)+1; last is overflow
	NSamples uint64
}

// NewHistogram creates a histogram with the given ascending upper edges.
func NewHistogram(edges ...float64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("stats: histogram edges not ascending at %d", i))
		}
	}
	return &Histogram{Edges: append([]float64(nil), edges...), Counts: make([]uint64, len(edges)+1)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Edges, x)
	h.Counts[i]++
	h.NSamples++
}

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.NSamples == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.NSamples)
}

// Fractions returns the per-bucket fractions, overflow last.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range h.Counts {
		out[i] = h.Fraction(i)
	}
	return out
}

// Table renders aligned plain-text tables: one header row plus data rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (formatted with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	formatRow := func(row []string) string {
		var line strings.Builder
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", width[i]-len(cell)))
		}
		return strings.TrimRight(line.String(), " ")
	}
	if len(t.Header) > 0 {
		b.WriteString(formatRow(t.Header))
		b.WriteByte('\n')
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		b.WriteString(formatRow(r))
		b.WriteByte('\n')
	}
	return b.String()
}
