package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSampledErrorAggregates(t *testing.T) {
	e := NewSampledError("cycles")
	if e.MeanAbsPct() != 0 || e.MaxAbsPct() != 0 {
		t.Fatal("empty report has non-zero error bars")
	}
	e.Add("a/lru", 100, 110)  // +10%
	e.Add("b/opt", 200, 190)  // -5%
	e.Add("c/acic", 400, 400) // exact
	if e.Len() != 3 {
		t.Fatalf("Len = %d, want 3", e.Len())
	}
	if got := e.MeanAbsPct(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("MeanAbsPct = %g, want 5", got)
	}
	label, worst := e.Worst()
	if label != "a/lru" || math.Abs(worst-10) > 1e-9 {
		t.Fatalf("Worst = (%s, %g), want (a/lru, 10)", label, worst)
	}
}

func TestSampledErrorZeroReference(t *testing.T) {
	e := NewSampledError("MPKI")
	e.Add("zero/zero", 0, 0)
	if e.MaxAbsPct() != 0 {
		t.Fatalf("0 vs 0 counts as error: %g", e.MaxAbsPct())
	}
	e.Add("zero/some", 0, 3)
	if e.MaxAbsPct() != 100 {
		t.Fatalf("0 vs non-zero error = %g, want 100", e.MaxAbsPct())
	}
}

func TestSampledErrorRendering(t *testing.T) {
	e := NewSampledError("speedup")
	e.Add("app/scheme", 1.25, 1.20)
	tbl := e.Table().String()
	for _, want := range []string{"app/scheme", "full speedup", "sampled speedup", "-4.00"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	sum := e.Summary()
	for _, want := range []string{"speedup", "worst", "1 cells"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q: %s", want, sum)
		}
	}
}
