package mem

import "testing"

func TestInstrMissLatencyLevels(t *testing.T) {
	h := New(DefaultConfig())
	lat := h.Latencies()
	// Cold: DRAM.
	if got := h.InstrMiss(1); got != lat.DRAM {
		t.Errorf("cold instruction miss latency = %d, want %d", got, lat.DRAM)
	}
	// Now resident in L2: second miss hits L2.
	if got := h.InstrMiss(1); got != lat.L2 {
		t.Errorf("warm instruction miss latency = %d, want %d", got, lat.L2)
	}
	if h.DRAMInstr != 1 || h.L2InstrHits != 1 {
		t.Errorf("counters: dram=%d l2=%d", h.DRAMInstr, h.L2InstrHits)
	}
}

func TestInstrMissL3Path(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Sets, cfg.L2Ways = 2, 1 // tiny L2 so blocks fall to L3
	h := New(cfg)
	h.InstrMiss(0)
	h.InstrMiss(2) // same L2 set, evicts 0 from L2 (L3 keeps it)
	if got := h.InstrMiss(0); got != h.Latencies().L3 {
		t.Errorf("L3 hit latency = %d, want %d", got, h.Latencies().L3)
	}
	if h.L3InstrHits != 1 {
		t.Errorf("L3 hits = %d", h.L3InstrHits)
	}
}

func TestDataAccessHierarchy(t *testing.T) {
	h := New(DefaultConfig())
	lat := h.Latencies()
	if got := h.DataAccess(1000); got != lat.DRAM {
		t.Errorf("cold data access = %d, want DRAM %d", got, lat.DRAM)
	}
	if got := h.DataAccess(1000); got != lat.L1D {
		t.Errorf("warm data access = %d, want L1D %d", got, lat.L1D)
	}
	if h.DataAccesses != 2 || h.L1DHits != 1 || h.DRAMData != 1 {
		t.Errorf("counters: %+v", *h)
	}
}

func TestInstructionAndDataShareL2(t *testing.T) {
	h := New(DefaultConfig())
	h.DataAccess(77) // fills L2 (and L1d/L3) with block 77
	if got := h.InstrMiss(77); got != h.Latencies().L2 {
		t.Errorf("instruction fetch of data-warmed block = %d, want L2 %d", got, h.Latencies().L2)
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L2Sets*cfg.L2Ways*64 != 512*1024 {
		t.Errorf("L2 capacity = %d bytes, want 512KB", cfg.L2Sets*cfg.L2Ways*64)
	}
	if cfg.L3Sets*cfg.L3Ways*64 != 2*1024*1024 {
		t.Errorf("L3 capacity = %d bytes, want 2MB", cfg.L3Sets*cfg.L3Ways*64)
	}
	if cfg.L1DSets*cfg.L1DWays*64 != 48*1024 {
		t.Errorf("L1D capacity = %d bytes, want 48KB", cfg.L1DSets*cfg.L1DWays*64)
	}
}
