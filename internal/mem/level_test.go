package mem

import (
	"math/rand"
	"testing"

	"acic/internal/cache"
	"acic/internal/policy"
)

// TestLevelMatchesGenericLRUCache pins the flat level implementation to
// the generic cache.Cache + policy.LRU reference on identical access/fill
// streams: every access must agree on hit/miss, which forces identical
// victim selection, stamping, and fill placement throughout.
func TestLevelMatchesGenericLRUCache(t *testing.T) {
	for _, span := range []int{4, 30, 200, 3000} {
		rng := rand.New(rand.NewSource(int64(span)))
		lv := newLevel(8, 4)
		ref := cache.MustNew(cache.Config{Sets: 8, Ways: 4}, policy.NewLRU())
		for step := 0; step < 50000; step++ {
			b := uint64(rng.Intn(span))
			hit := lv.access(b)
			ctx := cache.AccessContext{Block: b}
			refHit := ref.Access(&ctx)
			if hit != refHit {
				t.Fatalf("span %d step %d: access(%d) = %v, ref = %v", span, step, b, hit, refHit)
			}
			if !hit {
				lv.insert(b)
				ref.Insert(&ctx)
			}
		}
	}
}
