package mem

import "testing"

// TestNewGangMatchesNew drives each carved gang member and an independent
// hierarchy through the same interleaved instruction/data stream: the
// shared-backing layout must be behaviorally invisible.
func TestNewGangMatchesNew(t *testing.T) {
	cfg := DefaultConfig()
	const members = 3
	gang := NewGang(cfg, members)
	for m := 0; m < members; m++ {
		solo := New(cfg)
		// Distinct per-member streams so cross-member state leakage (an
		// off-by-one in the carve) cannot cancel out.
		x := uint64(12345 + m)
		for i := 0; i < 20000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			block := (x >> 33) % 6000
			if i%3 == 0 {
				gi := gang[m].InstrMiss(block)
				si := solo.InstrMiss(block)
				if gi != si {
					t.Fatalf("member %d step %d: InstrMiss %d != %d", m, i, gi, si)
				}
			} else {
				gd := gang[m].DataAccess(block)
				sd := solo.DataAccess(block)
				if gd != sd {
					t.Fatalf("member %d step %d: DataAccess %d != %d", m, i, gd, sd)
				}
			}
		}
		if gang[m].L2InstrHits != solo.L2InstrHits || gang[m].DRAMData != solo.DRAMData {
			t.Fatalf("member %d counters diverge: %+v vs %+v", m, gang[m], solo)
		}
	}
}

// TestNewGangZero allows an empty gang.
func TestNewGangZero(t *testing.T) {
	if got := NewGang(DefaultConfig(), 0); len(got) != 0 {
		t.Errorf("NewGang(0) returned %d members", len(got))
	}
}

// TestHierarchyConfig pins the Config accessor the cpu layer uses to key
// the data-latency precompute.
func TestHierarchyConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Sets = 256
	if got := New(cfg).Config(); got != cfg {
		t.Errorf("Config() = %+v, want %+v", got, cfg)
	}
	if got := NewGang(cfg, 1)[0].Config(); got != cfg {
		t.Errorf("gang Config() = %+v, want %+v", got, cfg)
	}
}
