// Package mem models the memory hierarchy below the L1 instruction cache
// per Table II: a 48KB 8-way L1 data cache (5-cycle), a 512KB 8-way unified
// L2 (15-cycle), a 2MB 16-way unified L3 (35-cycle), and DRAM (one 3200MT/s
// channel, modeled as a fixed access latency at the 4GHz core clock).
// Instruction and data streams share L2 and L3. MSHR counts bound the
// overlap the timing model allows, matching Table II's 16/16/32/64.
package mem

import (
	"acic/internal/cache"
	"acic/internal/policy"
)

// Latencies are the load-to-use latencies of each level, in core cycles.
type Latencies struct {
	L1I  int64 // hit latency of the i-cache (charged by the front end)
	L1D  int64
	L2   int64
	L3   int64
	DRAM int64
}

// DefaultLatencies follows Table II; DRAM reflects ~50ns at 4GHz.
func DefaultLatencies() Latencies {
	return Latencies{L1I: 4, L1D: 5, L2: 15, L3: 35, DRAM: 200}
}

// Config sizes the hierarchy.
type Config struct {
	L1DSets, L1DWays int
	L2Sets, L2Ways   int
	L3Sets, L3Ways   int
	Lat              Latencies
}

// DefaultConfig matches Table II geometries at 64B blocks:
// L1d 48KB/8w -> 96 sets is not a power of two, so we model 64 sets x 12
// ways (48KB) to preserve capacity and increase associativity slightly;
// L2 512KB/8w -> 1024 sets; L3 2MB/16w -> 2048 sets.
func DefaultConfig() Config {
	return Config{
		L1DSets: 64, L1DWays: 12,
		L2Sets: 1024, L2Ways: 8,
		L3Sets: 2048, L3Ways: 16,
		Lat: DefaultLatencies(),
	}
}

// Hierarchy is the shared L1d/L2/L3/DRAM model.
type Hierarchy struct {
	l1d *cache.Cache
	l2  *cache.Cache
	l3  *cache.Cache
	lat Latencies

	// Stats.
	L2InstrHits  uint64
	L3InstrHits  uint64
	DRAMInstr    uint64
	L1DHits      uint64
	L2DataHits   uint64
	L3DataHits   uint64
	DRAMData     uint64
	DataAccesses uint64
}

// New builds the hierarchy.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		l1d: cache.MustNew(cache.Config{Sets: cfg.L1DSets, Ways: cfg.L1DWays}, policy.NewLRU()),
		l2:  cache.MustNew(cache.Config{Sets: cfg.L2Sets, Ways: cfg.L2Ways}, policy.NewLRU()),
		l3:  cache.MustNew(cache.Config{Sets: cfg.L3Sets, Ways: cfg.L3Ways}, policy.NewLRU()),
		lat: cfg.Lat,
	}
}

// Latencies returns the configured level latencies.
func (h *Hierarchy) Latencies() Latencies { return h.lat }

// InstrMiss services an L1i miss for an instruction block, filling L2/L3 on
// the way, and returns the additional latency beyond the L1i hit time.
func (h *Hierarchy) InstrMiss(block uint64) int64 {
	ctx := cache.AccessContext{Block: block}
	if h.l2.Access(&ctx) {
		h.L2InstrHits++
		return h.lat.L2
	}
	if h.l3.Access(&ctx) {
		h.L3InstrHits++
		h.l2.Insert(&ctx)
		return h.lat.L3
	}
	h.DRAMInstr++
	h.l3.Insert(&ctx)
	h.l2.Insert(&ctx)
	return h.lat.DRAM
}

// DataAccess services a load/store to a data block through L1d/L2/L3/DRAM
// and returns its load-to-use latency in cycles.
func (h *Hierarchy) DataAccess(block uint64) int64 {
	h.DataAccesses++
	ctx := cache.AccessContext{Block: block}
	if h.l1d.Access(&ctx) {
		h.L1DHits++
		return h.lat.L1D
	}
	if h.l2.Access(&ctx) {
		h.L2DataHits++
		h.l1d.Insert(&ctx)
		return h.lat.L2
	}
	if h.l3.Access(&ctx) {
		h.L3DataHits++
		h.l2.Insert(&ctx)
		h.l1d.Insert(&ctx)
		return h.lat.L3
	}
	h.DRAMData++
	h.l3.Insert(&ctx)
	h.l2.Insert(&ctx)
	h.l1d.Insert(&ctx)
	return h.lat.DRAM
}
