// Package mem models the memory hierarchy below the L1 instruction cache
// per Table II: a 48KB 8-way L1 data cache (5-cycle), a 512KB 8-way L2
// (15-cycle), a 2MB 16-way L3 (35-cycle), and DRAM (one 3200MT/s channel,
// modeled as a fixed access latency at the 4GHz core clock). MSHR counts
// bound the overlap the timing model allows, matching Table II's
// 16/16/32/64.
//
// The data and instruction streams run through separate L2/L3 state. That
// is the one deliberate departure from Table II's unified L2/L3 (DESIGN.md
// §8 quantifies it): the data-access sequence of a trace is fixed by
// instruction order and therefore identical for every i-cache scheme, so
// decoupling it from the scheme-dependent instruction-miss stream makes
// every load/store latency a pure function of the workload. The cpu layer
// exploits exactly that — it replays DataAccess once per workload into a
// latency timeline (cpu.Program.EnsureDataLatencies) and every scheme's
// simulation reads the shared array instead of re-simulating the data side.
//
// The level caches are plain LRU and nothing consumes their per-line
// metadata, so they use a specialized flat implementation instead of the
// generic policy-pluggable cache.Cache: per-level key/stamp arrays with an
// MRU way probe. Semantics are identical to cache.Cache with policy.LRU
// (same clock, same first-way tie-breaks), which the differential test in
// mem_test.go pins.
package mem

// Latencies are the load-to-use latencies of each level, in core cycles.
type Latencies struct {
	L1I  int64 // hit latency of the i-cache (charged by the front end)
	L1D  int64
	L2   int64
	L3   int64
	DRAM int64
}

// DefaultLatencies follows Table II; DRAM reflects ~50ns at 4GHz.
func DefaultLatencies() Latencies {
	return Latencies{L1I: 4, L1D: 5, L2: 15, L3: 35, DRAM: 200}
}

// Config sizes the hierarchy.
type Config struct {
	L1DSets, L1DWays int
	L2Sets, L2Ways   int
	L3Sets, L3Ways   int
	Lat              Latencies
}

// DefaultConfig matches Table II geometries at 64B blocks:
// L1d 48KB/8w -> 96 sets is not a power of two, so we model 64 sets x 12
// ways (48KB) to preserve capacity and increase associativity slightly;
// L2 512KB/8w -> 1024 sets; L3 2MB/16w -> 2048 sets.
func DefaultConfig() Config {
	return Config{
		L1DSets: 64, L1DWays: 12,
		L2Sets: 1024, L2Ways: 8,
		L3Sets: 2048, L3Ways: 16,
		Lat: DefaultLatencies(),
	}
}

// invalidKey marks an empty line; block numbers never reach 2^64-1.
const invalidKey = ^uint64(0)

// memLine pairs a line's block with its LRU stamp so the hit path — probe
// the predicted way, refresh its stamp — touches one cache line of host
// memory. The simulated L2/L3 arrays are hundreds of kilobytes, so the
// host-cache behavior of this struct dominates the data-side cost.
type memLine struct {
	block uint64
	stamp int64
}

// level is one flat LRU set-associative cache level.
type level struct {
	mask     uint64
	ways     int
	lines    []memLine // row-major by set; block == invalidKey = empty
	mru      []int32   // most recently touched way per set (probe-first)
	clock    int64
	occupied int
}

func newLevel(sets, ways int) *level {
	return newLevelInto(sets, ways, make([]memLine, sets*ways), make([]int32, sets))
}

// newLevelInto builds a level over caller-provided backing arrays (of
// exactly sets*ways and sets entries), letting NewGang carve many members'
// levels out of one contiguous allocation.
func newLevelInto(sets, ways int, lines []memLine, mru []int32) *level {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("mem: bad level geometry")
	}
	for i := range lines {
		lines[i] = memLine{block: invalidKey}
	}
	for i := range mru {
		mru[i] = 0
	}
	return &level{
		mask:  uint64(sets - 1),
		ways:  ways,
		lines: lines,
		mru:   mru,
	}
}

// access looks up block and refreshes its LRU stamp on a hit.
func (l *level) access(block uint64) bool {
	set := int(block & l.mask)
	base := set * l.ways
	w := int(l.mru[set])
	if l.lines[base+w].block != block {
		w = -1
		for v := 0; v < l.ways; v++ {
			if l.lines[base+v].block == block {
				w = v
				break
			}
		}
		if w < 0 {
			return false
		}
		l.mru[set] = int32(w)
	}
	l.clock++
	l.lines[base+w].stamp = l.clock
	return true
}

// insert fills block into its set: the first empty way while the level is
// still filling, else the least recently used way (first-way tie-break).
func (l *level) insert(block uint64) {
	set := int(block & l.mask)
	base := set * l.ways
	w := -1
	if l.occupied < len(l.lines) {
		for v := 0; v < l.ways; v++ {
			if l.lines[base+v].block == invalidKey {
				w = v
				l.occupied++
				break
			}
		}
	}
	if w < 0 {
		w = 0
		best := l.lines[base].stamp
		for v := 1; v < l.ways; v++ {
			if s := l.lines[base+v].stamp; s < best {
				w, best = v, s
			}
		}
	}
	l.clock++
	l.lines[base+w] = memLine{block: block, stamp: l.clock}
	l.mru[set] = int32(w)
}

// Hierarchy is the L1d/L2/L3/DRAM model.
type Hierarchy struct {
	cfg Config
	l1d *level
	l2  *level
	l3  *level
	lat Latencies

	// Stats.
	L2InstrHits  uint64
	L3InstrHits  uint64
	DRAMInstr    uint64
	L1DHits      uint64
	L2DataHits   uint64
	L3DataHits   uint64
	DRAMData     uint64
	DataAccesses uint64
}

// New builds the hierarchy.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1d: newLevel(cfg.L1DSets, cfg.L1DWays),
		l2:  newLevel(cfg.L2Sets, cfg.L2Ways),
		l3:  newLevel(cfg.L3Sets, cfg.L3Ways),
		lat: cfg.Lat,
	}
}

// NewGang builds n identically configured hierarchies whose level arrays
// are carved out of per-level contiguous backing allocations
// (struct-of-gangs layout): member i's L2 lines sit directly after member
// i-1's, and likewise for L1d, L3, and the MRU hint arrays. A gang
// simulation rotating through its members then walks adjacent memory
// instead of n scattered heap objects, which keeps the combined
// instruction-side state dense in the host cache. Each returned Hierarchy
// is behaviorally identical to New(cfg).
func NewGang(cfg Config, n int) []*Hierarchy {
	if n < 0 {
		panic("mem: negative gang size")
	}
	var (
		l1dLines = make([]memLine, n*cfg.L1DSets*cfg.L1DWays)
		l2Lines  = make([]memLine, n*cfg.L2Sets*cfg.L2Ways)
		l3Lines  = make([]memLine, n*cfg.L3Sets*cfg.L3Ways)
		l1dMRU   = make([]int32, n*cfg.L1DSets)
		l2MRU    = make([]int32, n*cfg.L2Sets)
		l3MRU    = make([]int32, n*cfg.L3Sets)
	)
	carve := func(lines []memLine, mru []int32, i, sets, ways int) *level {
		return newLevelInto(sets, ways,
			lines[i*sets*ways:(i+1)*sets*ways:(i+1)*sets*ways],
			mru[i*sets:(i+1)*sets:(i+1)*sets])
	}
	hiers := make([]*Hierarchy, n)
	for i := range hiers {
		hiers[i] = &Hierarchy{
			cfg: cfg,
			l1d: carve(l1dLines, l1dMRU, i, cfg.L1DSets, cfg.L1DWays),
			l2:  carve(l2Lines, l2MRU, i, cfg.L2Sets, cfg.L2Ways),
			l3:  carve(l3Lines, l3MRU, i, cfg.L3Sets, cfg.L3Ways),
			lat: cfg.Lat,
		}
	}
	return hiers
}

// Config returns the configuration the hierarchy was built with.
func (h *Hierarchy) Config() Config { return h.cfg }

// FootprintBytes measures the backing bytes one hierarchy contributes to a
// gang's per-member working set: the line arrays (16-byte memLine entries)
// and MRU hint arrays of all three levels. For NewGang members this is
// exactly the member's share of the contiguous struct-of-gangs backing,
// which is what adaptive gang-window derivation probes.
func (h *Hierarchy) FootprintBytes() int64 {
	f := func(l *level) int64 {
		return int64(len(l.lines))*16 + int64(len(l.mru))*4
	}
	return f(h.l1d) + f(h.l2) + f(h.l3)
}

// Latencies returns the configured level latencies.
func (h *Hierarchy) Latencies() Latencies { return h.lat }

// InstrMiss services an L1i miss for an instruction block, filling L2/L3 on
// the way, and returns the additional latency beyond the L1i hit time.
func (h *Hierarchy) InstrMiss(block uint64) int64 {
	if h.l2.access(block) {
		h.L2InstrHits++
		return h.lat.L2
	}
	if h.l3.access(block) {
		h.L3InstrHits++
		h.l2.insert(block)
		return h.lat.L3
	}
	h.DRAMInstr++
	h.l3.insert(block)
	h.l2.insert(block)
	return h.lat.DRAM
}

// DataAccess services a load/store to a data block through L1d/L2/L3/DRAM
// and returns its load-to-use latency in cycles. The data-side levels are
// touched only by this method, so the latency sequence over a fixed access
// stream is deterministic — cpu.Program.EnsureDataLatencies replays a
// workload's loads and stores through a fresh hierarchy exactly once and
// shares the resulting timeline across every scheme's simulation.
func (h *Hierarchy) DataAccess(block uint64) int64 {
	h.DataAccesses++
	if h.l1d.access(block) {
		h.L1DHits++
		return h.lat.L1D
	}
	if h.l2.access(block) {
		h.L2DataHits++
		h.l1d.insert(block)
		return h.lat.L2
	}
	if h.l3.access(block) {
		h.L3DataHits++
		h.l2.insert(block)
		h.l1d.insert(block)
		return h.lat.L3
	}
	h.DRAMData++
	h.l3.insert(block)
	h.l2.insert(block)
	h.l1d.insert(block)
	return h.lat.DRAM
}
