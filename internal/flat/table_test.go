package flat

import "testing"

func TestTableBasics(t *testing.T) {
	tb := NewTable(4)
	if tb.Len() != 0 || tb.Get(7) != 0 || tb.Contains(7) {
		t.Fatal("empty table not empty")
	}
	tb.Put(7, 3)
	tb.Put(9, 1)
	if tb.Get(7) != 3 || tb.Get(9) != 1 || tb.Len() != 2 {
		t.Fatalf("get after put: %d %d len %d", tb.Get(7), tb.Get(9), tb.Len())
	}
	tb.Put(7, 5)
	if tb.Get(7) != 5 || tb.Len() != 2 {
		t.Fatal("overwrite changed length")
	}
	tb.Put(7, 0)
	if tb.Contains(7) || tb.Len() != 1 {
		t.Fatal("put zero should delete")
	}
	tb.Delete(9)
	tb.Delete(9)
	if tb.Len() != 0 {
		t.Fatal("delete")
	}
}

func TestTableAdd(t *testing.T) {
	tb := NewTable(4)
	if got := tb.Add(42, 2); got != 2 {
		t.Fatalf("Add new = %d", got)
	}
	if got := tb.Add(42, -1); got != 1 {
		t.Fatalf("Add -1 = %d", got)
	}
	if got := tb.Add(42, -1); got != 0 || tb.Contains(42) {
		t.Fatalf("Add to zero should delete (got %d)", got)
	}
	if got := tb.Add(42, -5); got != 0 || tb.Contains(42) {
		t.Fatal("Add negative on absent key must stay absent")
	}
}

// TestTableVsMap drives identical operation streams through Table and a Go
// map and checks every observable result, including across growth and
// backward-shift deletions on colliding keys.
func TestTableVsMap(t *testing.T) {
	tb := NewTable(0)
	ref := map[uint64]int32{}
	rng := uint64(0x1234567)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	for step := 0; step < 200000; step++ {
		// Small key space (and multiples of a power of two to force home
		// collisions) so deletes hit mid-chain slots often.
		k := next(512) * 64
		switch next(4) {
		case 0:
			v := int32(next(5)) + 1
			tb.Put(k, v)
			ref[k] = v
		case 1:
			d := int32(next(5)) - 2
			got := tb.Add(k, d)
			want := ref[k] + d
			if want <= 0 {
				want = 0
				delete(ref, k)
			} else {
				ref[k] = want
			}
			if got != want {
				t.Fatalf("step %d: Add(%d,%d) = %d, want %d", step, k, d, got, want)
			}
		case 2:
			tb.Delete(k)
			delete(ref, k)
		case 3:
			if got, want := tb.Get(k), ref[k]; got != want {
				t.Fatalf("step %d: Get(%d) = %d, want %d", step, k, got, want)
			}
		}
		if tb.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, tb.Len(), len(ref))
		}
	}
	for k, v := range ref {
		if got := tb.Get(k); got != v {
			t.Fatalf("final: Get(%d) = %d, want %d", k, got, v)
		}
	}
}

func TestTableReset(t *testing.T) {
	tb := NewTable(8)
	for i := uint64(0); i < 20; i++ {
		tb.Put(i, 1)
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatal("reset should empty the table")
	}
	for i := uint64(0); i < 20; i++ {
		if tb.Contains(i) {
			t.Fatalf("key %d survived reset", i)
		}
	}
	tb.Put(3, 9)
	if tb.Get(3) != 9 {
		t.Fatal("table unusable after reset")
	}
}

// TestTableSteadyStateAllocs pins the zero-allocation property: once a
// table has reached its high-water capacity, churn (insert/delete cycles)
// must not allocate.
func TestTableSteadyStateAllocs(t *testing.T) {
	tb := NewTable(64)
	for i := uint64(0); i < 64; i++ {
		tb.Put(i, 1)
	}
	k := uint64(1000)
	allocs := testing.AllocsPerRun(1000, func() {
		tb.Put(k, 1)
		tb.Add(k, 1)
		tb.Delete(k)
		k += 7
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocates %v times per run", allocs)
	}
}
