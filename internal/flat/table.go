// Package flat provides the open-addressed hash tables the simulation hot
// path uses in place of Go maps. A Go map lookup costs a hash, a bucket
// walk, and (on insert) possible allocation; the structures here are flat
// power-of-two arrays with multiplicative hashing and linear probing, so
// steady-state operation touches one or two cache lines and never
// allocates. Deletion uses backward-shift compaction (no tombstones), which
// keeps probe chains short over arbitrarily long runs — the property the
// per-block policy state (EAF live counts, prefetch-covered tracking)
// needs, since those tables churn for the whole simulation.
package flat

const minCapacity = 16

// fibMul is the 64-bit Fibonacci hashing multiplier (golden-ratio
// reciprocal); taking the top bits of k*fibMul spreads dense block numbers
// across the table.
const fibMul = 0x9E3779B97F4A7C15

// Table maps uint64 keys to non-zero int32 values. A stored value of zero
// is indistinguishable from absence: Put(k, 0) and Add reaching zero both
// delete. This matches the hot-path uses — occurrence counts and presence
// flags — and lets Get double as the membership test.
type Table struct {
	keys  []uint64
	vals  []int32
	used  []bool
	mask  int
	shift uint
	n     int
}

// NewTable returns a table pre-sized for about capacityHint live entries.
func NewTable(capacityHint int) *Table {
	capacity := minCapacity
	// Size to <50% load at the hinted occupancy.
	for capacity < 2*capacityHint {
		capacity *= 2
	}
	t := &Table{}
	t.init(capacity)
	return t
}

func (t *Table) init(capacity int) {
	t.keys = make([]uint64, capacity)
	t.vals = make([]int32, capacity)
	t.used = make([]bool, capacity)
	t.mask = capacity - 1
	shift := uint(64)
	for c := capacity; c > 1; c >>= 1 {
		shift--
	}
	t.shift = shift
	t.n = 0
}

func (t *Table) home(k uint64) int { return int((k * fibMul) >> t.shift) }

// Len returns the number of live entries.
func (t *Table) Len() int { return t.n }

// find returns the slot holding k, or (insertion point, false).
func (t *Table) find(k uint64) (int, bool) {
	i := t.home(k)
	for t.used[i] {
		if t.keys[i] == k {
			return i, true
		}
		i = (i + 1) & t.mask
	}
	return i, false
}

// Get returns the value stored for k, or 0 when absent.
func (t *Table) Get(k uint64) int32 {
	i := t.home(k)
	for t.used[i] {
		if t.keys[i] == k {
			return t.vals[i]
		}
		i = (i + 1) & t.mask
	}
	return 0
}

// Contains reports whether k has a (non-zero) value.
func (t *Table) Contains(k uint64) bool { return t.Get(k) != 0 }

// Put sets k's value; v == 0 deletes the entry.
func (t *Table) Put(k uint64, v int32) {
	if v == 0 {
		t.Delete(k)
		return
	}
	i, ok := t.find(k)
	if ok {
		t.vals[i] = v
		return
	}
	t.insertAt(i, k, v)
}

// Add adjusts k's value by delta (inserting at delta from absent) and
// returns the new value; an entry reaching a value <= 0 is removed and 0 is
// returned.
func (t *Table) Add(k uint64, delta int32) int32 {
	i, ok := t.find(k)
	if !ok {
		if delta <= 0 {
			return 0
		}
		t.insertAt(i, k, delta)
		return delta
	}
	v := t.vals[i] + delta
	if v <= 0 {
		t.deleteSlot(i)
		return 0
	}
	t.vals[i] = v
	return v
}

func (t *Table) insertAt(i int, k uint64, v int32) {
	t.keys[i], t.vals[i], t.used[i] = k, v, true
	t.n++
	// Grow at 3/4 load so probe chains stay short; steady-state workloads
	// reach their high-water capacity once and never allocate again.
	if 4*t.n >= 3*len(t.keys) {
		t.grow()
	}
}

func (t *Table) grow() {
	keys, vals, used := t.keys, t.vals, t.used
	t.init(2 * len(keys))
	for i := range keys {
		if used[i] {
			j, _ := t.find(keys[i])
			t.keys[j], t.vals[j], t.used[j] = keys[i], vals[i], true
			t.n++
		}
	}
}

// Delete removes k if present.
func (t *Table) Delete(k uint64) {
	if i, ok := t.find(k); ok {
		t.deleteSlot(i)
	}
}

// deleteSlot empties slot i and backward-shifts the probe chain behind it
// so that no entry becomes unreachable (linear-probing invariant: every
// entry is reachable from its home slot without crossing an empty slot).
func (t *Table) deleteSlot(i int) {
	t.n--
	j := i
	for {
		t.used[i] = false
		for {
			j = (j + 1) & t.mask
			if !t.used[j] {
				return
			}
			h := t.home(t.keys[j])
			// The entry at j may move into the hole at i only if its home
			// slot does not lie in the cyclic interval (i, j] — otherwise
			// moving it would place it before its home.
			if i <= j {
				if h > i && h <= j {
					continue
				}
			} else if h > i || h <= j {
				continue
			}
			break
		}
		t.keys[i], t.vals[i], t.used[i] = t.keys[j], t.vals[j], true
		i = j
	}
}

// Reset empties the table without releasing storage.
func (t *Table) Reset() {
	clear(t.used)
	t.n = 0
}
