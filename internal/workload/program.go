package workload

import (
	"acic/internal/trace"
)

// Address-space layout constants. Instruction regions are disjoint from the
// data region so instruction and data blocks never collide in the shared
// L2/L3.
const (
	appBase   = 0x0000_4000_0000
	libBase   = 0x0000_8000_0000
	osBase    = 0x0000_C000_0000
	heapBase  = 0x0001_0000_0000
	stackBase = 0x0002_0000_0000

	instBytes     = 4  // fixed encoding width
	instsPerBlock = 16 // 64B block / 4B instructions

	// maxCallDepth bounds dynamic call nesting in the walker.
	maxCallDepth = 8
)

// fnKind labels which software layer a function belongs to.
type fnKind uint8

const (
	fnApp fnKind = iota
	fnLib
	fnOS
)

// fn is one generated function: a run of contiguous 64-byte basic blocks
// with an optional inner loop and call sites to other functions.
type fn struct {
	addr      uint64
	blocks    int
	kind      fnKind
	loopStart int // block index; -1 when no loop
	loopEnd   int
	loopIter  [2]int // iteration range, drawn per execution
	noisy     []bool // per block: data-dependent branch mid-block
	calls     []call // call sites, at most one per block
}

type call struct {
	block  int
	callee int
}

// service is one request type: an ordered chain of function invocations
// through the app, library, and OS layers.
type service struct {
	chain []int
}

// program is the complete static code model.
type program struct {
	funcs    []fn
	services []service
}

// buildProgram synthesizes the static program for a profile.
func buildProgram(p Profile, r *rng) *program {
	pr := &program{}

	newFn := func(kind fnKind, base uint64, nextAddr *uint64, blocks int) int {
		f := fn{
			addr:      base + *nextAddr,
			blocks:    blocks,
			kind:      kind,
			loopStart: -1,
			loopEnd:   -1,
			noisy:     make([]bool, blocks),
		}
		*nextAddr += uint64(blocks+1) * trace.BlockSize // 1-block gap
		if blocks >= 4 && r.bool(p.LoopProb) {
			f.loopStart = r.rangeInt(1, blocks/2)
			f.loopEnd = r.rangeInt(f.loopStart, min(f.loopStart+p.LoopSpanMax, blocks-2))
			f.loopIter = p.LoopIter
		}
		for b := range f.noisy {
			f.noisy[b] = r.bool(p.BranchNoise)
		}
		// The last block must end in the function's return; a noisy early
		// exit there would skip it and break control-flow consistency.
		f.noisy[blocks-1] = false
		pr.funcs = append(pr.funcs, f)
		return len(pr.funcs) - 1
	}

	appNext := uint64(2 * trace.BlockSize)
	var libNext, osNext uint64

	// Shared layers.
	libFns := make([]int, p.LibFuncs)
	for i := range libFns {
		libFns[i] = newFn(fnLib, libBase, &libNext, r.rangeInt(p.FuncBlocks[0], p.FuncBlocks[1]))
	}
	osFns := make([]int, p.OSFuncs)
	for i := range osFns {
		osFns[i] = newFn(fnOS, osBase, &osNext, r.rangeInt(p.FuncBlocks[0], p.FuncBlocks[1]))
	}

	// Per-service private functions plus a sampled slice of the shared
	// layers, interleaved to mimic app->lib->os call chains.
	libZ := newZipf(r, max(1, p.LibFuncs), p.SharedZipf)
	osZ := newZipf(r, max(1, p.OSFuncs), p.SharedZipf)
	for s := 0; s < p.Services; s++ {
		var sv service
		nPriv := r.rangeInt(p.PrivateFuncs[0], p.PrivateFuncs[1])
		for f := 0; f < nPriv; f++ {
			id := newFn(fnApp, appBase, &appNext, r.rangeInt(p.FuncBlocks[0], p.FuncBlocks[1]))
			sv.chain = append(sv.chain, id)
			if p.LibFuncs > 0 {
				for k := 0; k < p.LibPerPrivate; k++ {
					sv.chain = append(sv.chain, libFns[libZ.draw()])
				}
			}
			if p.OSFuncs > 0 && r.bool(p.OSCallProb) {
				sv.chain = append(sv.chain, osFns[osZ.draw()])
			}
		}
		pr.services = append(pr.services, sv)
	}

	// Nested call sites: sprinkle direct calls between library functions to
	// deepen the call graph (burst interruptions mid-function).
	for i := range pr.funcs {
		f := &pr.funcs[i]
		if f.kind == fnLib && f.blocks >= 6 && p.LibFuncs > 1 && r.bool(p.NestedCallProb) {
			callee := libFns[libZ.draw()]
			if callee != i {
				f.calls = append(f.calls, call{block: f.blocks / 2, callee: callee})
			}
		}
	}
	return pr
}

// walker emits the dynamic trace from the static program.
type walker struct {
	pr       *program
	p        Profile
	r        *rng
	out      []trace.Inst
	svZ      *zipf
	depth    int
	requests int64
	phase    int
}

// emit appends one instruction.
func (w *walker) emit(in trace.Inst) { w.out = append(w.out, in) }

// dataAddr draws a load/store effective address: mostly a hot heap region
// (Zipf over the data footprint), some stack traffic.
func (w *walker) dataAddr() uint64 {
	if w.r.bool(0.3) {
		// Stack-like: small, reused region per call depth.
		return stackBase + uint64(w.depth)*4096 + uint64(w.r.intn(1024))
	}
	blk := uint64(w.r.intn(max(1, w.p.DataBlocks)))
	return heapBase + blk*trace.BlockSize + uint64(w.r.intn(trace.BlockSize))
}

// execFn walks one invocation of function id, emitting its instructions.
// retAddr is the address execution returns to afterwards.
func (w *walker) execFn(id int, retAddr uint64) {
	if w.depth > maxCallDepth {
		// Callers gate on maxCallDepth before emitting a call, so this is
		// a pure safety net and is unreachable in a consistent walk.
		return
	}
	w.depth++
	defer func() { w.depth-- }()

	f := &w.pr.funcs[id]
	iterLeft := 0
	if f.loopStart >= 0 {
		iterLeft = w.r.rangeInt(f.loopIter[0], f.loopIter[1])
	}
	vmin, vmax := w.p.visitLen()
	for b := 0; b < f.blocks; {
		base := f.addr + uint64(b)*trace.BlockSize
		nextBlock := base + trace.BlockSize

		// Each visit executes one basic block: a run of L instructions in
		// the 64B cache block, ending in an explicit control transfer.
		// Real code packs ~2 basic blocks per cache block; the unused tail
		// of the block is fragmentation, which inflates the code footprint
		// in blocks exactly as linkers do.
		visit := w.r.rangeInt(vmin, vmax)
		if visit > instsPerBlock {
			visit = instsPerBlock
		}

		// The loop back-edge, when present, sits just before the block
		// terminator so that its not-taken (loop exit) path falls through
		// to the terminator, keeping the trace architecturally consistent.
		backedgeSlot := -1
		if f.loopStart >= 0 && b == f.loopEnd && visit >= 3 {
			backedgeSlot = visit - 2
		}

		earlyExit := false // noisy branch taken: leave the block at slot 3
		takenBack := false // loop back-edge taken: re-enter the loop body
		for slot := 0; slot < visit; slot++ {
			pc := base + uint64(slot)*instBytes
			last := slot == visit-1

			if slot == backedgeSlot {
				loopTarget := f.addr + uint64(f.loopStart)*trace.BlockSize
				if iterLeft > 1 {
					iterLeft--
					w.emit(trace.Inst{PC: pc, Class: trace.ClassCondBranch, Target: loopTarget, Taken: true})
					takenBack = true
					break
				}
				iterLeft = 0
				w.emit(trace.Inst{PC: pc, Class: trace.ClassCondBranch, Target: loopTarget, Taken: false})
				continue
			}
			// Slot 3 of a noisy block holds a data-dependent branch that
			// skips to the next block half the time (hard to predict).
			if f.noisy[b] && slot == 3 && !last && slot != backedgeSlot {
				taken := w.r.bool(0.5)
				w.emit(trace.Inst{PC: pc, Class: trace.ClassCondBranch, Target: nextBlock, Taken: taken})
				if taken {
					earlyExit = true
					break
				}
				continue
			}
			// Call site mid-block (skipped at the nesting bound so the
			// emitted call always matches the executed control flow).
			if slot == 2 && visit >= 6 && len(f.calls) > 0 && w.depth < maxCallDepth {
				if cs := f.callSiteAt(b); cs >= 0 {
					callee := &w.pr.funcs[f.calls[cs].callee]
					w.emit(trace.Inst{PC: pc, Class: trace.ClassCall, Target: callee.addr, Taken: true})
					w.execFn(f.calls[cs].callee, pc+instBytes)
					continue
				}
			}
			if last {
				// Block terminator.
				switch {
				case b == f.blocks-1:
					w.emit(trace.Inst{PC: pc, Class: trace.ClassRet, Target: retAddr, Taken: true})
				case visit == instsPerBlock:
					// Basic block fills the cache block: fall through.
					w.emit(trace.Inst{PC: pc, Class: trace.ClassALU})
				default:
					// Explicit transfer to the next block (predictable
					// taken branch, as for if/else join points).
					w.emit(trace.Inst{PC: pc, Class: trace.ClassCondBranch, Target: nextBlock, Taken: true})
				}
				continue
			}
			// Body instruction mix; occasional not-taken conditionals.
			switch x := w.r.float(); {
			case x < w.p.LoadFrac:
				w.emit(trace.Inst{PC: pc, Class: trace.ClassLoad, MemAddr: w.dataAddr()})
			case x < w.p.LoadFrac+w.p.StoreFrac:
				w.emit(trace.Inst{PC: pc, Class: trace.ClassStore, MemAddr: w.dataAddr()})
			case x < w.p.LoadFrac+w.p.StoreFrac+0.06:
				w.emit(trace.Inst{PC: pc, Class: trace.ClassCondBranch, Target: nextBlock, Taken: false})
			default:
				w.emit(trace.Inst{PC: pc, Class: trace.ClassALU})
			}
		}
		if takenBack {
			b = f.loopStart
			continue
		}
		if earlyExit {
			b++ // the noisy branch targeted the next block
			continue
		}
		b++
	}
}

func (f *fn) callSiteAt(block int) int {
	for i := range f.calls {
		if f.calls[i].block == block {
			return i
		}
	}
	return -1
}

// request executes one request of the drawn service: the dispatcher calls
// each function in the chain in turn.
//
// Service popularity is *phased*: the Zipf rank-to-service mapping rotates
// every PhaseEvery requests, so the hot set drifts over time the way
// datacenter request mixes do. Phasing is what gives comparison outcomes
// their streaky, history-predictable structure (a block that lost its last
// few reuse-distance comparisons is in a cold phase and will likely lose
// the next one) — the very signal ACIC's two-level predictor consumes.
func (w *walker) request(dispatcherPC *uint64) {
	w.requests++
	if w.p.PhaseEvery > 0 && w.requests%int64(w.p.PhaseEvery) == 0 {
		w.phase++
	}
	svc := &w.pr.services[(w.svZ.draw()+w.phase)%len(w.pr.services)]
	for _, fid := range svc.chain {
		f := &w.pr.funcs[fid]
		pc := *dispatcherPC
		w.emit(trace.Inst{PC: pc, Class: trace.ClassCall, Target: f.addr, Taken: true})
		w.execFn(fid, pc+instBytes)
		*dispatcherPC = pc + instBytes
		// Keep the dispatcher inside one hot block so it stays resident:
		// wrap back with an explicit jump so the trace stays consistent.
		if (*dispatcherPC)%trace.BlockSize > trace.BlockSize-2*instBytes {
			w.emit(trace.Inst{PC: *dispatcherPC, Class: trace.ClassJump, Target: appBase, Taken: true})
			*dispatcherPC = appBase
		}
	}
}

// Generate synthesizes a trace of n instructions for the profile. It is
// the whole-trace form of GenerateStream: one window the size of the
// trace, so the batch and streamed paths share the same walk by
// construction.
func Generate(p Profile, n int) *trace.Trace {
	s := GenerateStream(p, n, n)
	insts := s.Next()
	if insts == nil {
		insts = []trace.Inst{}
	}
	return &trace.Trace{Name: p.Name, Insts: insts}
}
