package workload

import (
	"testing"

	"acic/internal/trace"
)

// streamAll drains a stream at the given window size, copying windows out
// (Next's slice is only valid until the next call).
func streamAll(p Profile, n, window int) []trace.Inst {
	s := GenerateStream(p, n, window)
	out := make([]trace.Inst, 0, n)
	for chunk := s.Next(); chunk != nil; chunk = s.Next() {
		out = append(out, chunk...)
	}
	return out
}

func TestGenerateStreamMatchesBatch(t *testing.T) {
	p, _ := ByName("media-streaming")
	const n = 50000
	batch := Generate(p, n)
	for _, window := range []int{1, 7, 1000, 4096, n, n + 5000} {
		got := streamAll(p, n, window)
		if len(got) != len(batch.Insts) {
			t.Fatalf("window=%d: %d insts, want %d", window, len(got), len(batch.Insts))
		}
		for i := range got {
			if got[i] != batch.Insts[i] {
				t.Fatalf("window=%d: instruction %d differs: %+v vs %+v", window, i, got[i], batch.Insts[i])
			}
		}
	}
}

func TestGenerateStreamWindowSizes(t *testing.T) {
	p, _ := ByName("tpcc")
	s := GenerateStream(p, 10000, 256)
	var total, calls int
	for chunk := s.Next(); chunk != nil; chunk = s.Next() {
		if len(chunk) > 256 {
			t.Fatalf("window overflow: %d", len(chunk))
		}
		total += len(chunk)
		calls++
	}
	if total != 10000 || s.Emitted() != 10000 || s.Remaining() != 0 {
		t.Fatalf("drained %d insts (emitted %d, remaining %d)", total, s.Emitted(), s.Remaining())
	}
	if calls < 10000/256 {
		t.Fatalf("only %d windows for 10000/256", calls)
	}
	if s.Next() != nil {
		t.Fatal("exhausted stream must keep returning nil")
	}
}

func TestGenerateStreamZeroLength(t *testing.T) {
	p, _ := ByName("gcc")
	if got := streamAll(p, 0, 64); len(got) != 0 {
		t.Fatalf("n=0 stream yielded %d insts", len(got))
	}
	if tr := Generate(p, 0); tr.Len() != 0 {
		t.Fatalf("n=0 batch yielded %d insts", tr.Len())
	}
}
