package workload

// Profile parameterizes one synthetic workload. The ten datacenter profiles
// mirror Table III's applications; the five SPEC profiles mirror the
// Fig 18/19 subset (SPEC2017 Int with L1i MPKI > 1).
type Profile struct {
	Name string
	Seed uint64

	// Static shape.
	Services       int     // request types
	PrivateFuncs   [2]int  // private functions per service (min,max)
	FuncBlocks     [2]int  // 64B blocks per function (min,max)
	LibFuncs       int     // shared library functions
	OSFuncs        int     // shared OS functions
	LibPerPrivate  int     // library calls chained after each private func
	OSCallProb     float64 // probability a private func enters the OS
	NestedCallProb float64 // probability a lib func calls another lib func
	SharedZipf     float64 // skew of shared-function selection

	// Dynamics.
	ServiceZipf float64 // skew of request-type selection (0 = uniform)
	LoopProb    float64 // probability a function has an inner loop
	LoopSpanMax int     // max loop body span in blocks
	LoopIter    [2]int  // loop iterations per execution (min,max)
	BranchNoise float64 // fraction of blocks with a data-dependent branch

	// PhaseEvery rotates the service-popularity ranking after this many
	// requests (0 = static mix). Phasing makes block-level comparison
	// outcomes streaky, which is both realistic (request mixes drift) and
	// the signal that history-based admission prediction consumes.
	PhaseEvery int

	// VisitLen bounds the basic-block length in instructions (min,max);
	// zero means the default of 5-11 (datacenter code is branchy; SPEC
	// loop bodies run longer).
	VisitLen [2]int

	// Data side.
	LoadFrac   float64
	StoreFrac  float64
	DataBlocks int // heap footprint in 64B blocks

	// PaperMPKI is Table III's measured L1i MPKI on the FDP baseline,
	// recorded for EXPERIMENTS.md comparison (documentation only).
	PaperMPKI float64
}

// visitLen returns the basic-block length bounds, defaulted when unset.
func (p *Profile) visitLen() (int, int) {
	if p.VisitLen[0] <= 0 || p.VisitLen[1] < p.VisitLen[0] {
		return 5, 11
	}
	return p.VisitLen[0], p.VisitLen[1]
}

// Datacenter returns the ten Table III application profiles in paper order.
func Datacenter() []Profile {
	return []Profile{
		{
			Name: "media-streaming", Seed: 101, PaperMPKI: 81.2,
			PhaseEvery: 150, Services: 14, PrivateFuncs: [2]int{5, 9}, FuncBlocks: [2]int{6, 14},
			LibFuncs: 70, OSFuncs: 45, LibPerPrivate: 2, OSCallProb: 0.5,
			NestedCallProb: 0.4, SharedZipf: 0.6, ServiceZipf: 0.9,
			LoopProb: 0.30, LoopSpanMax: 4, LoopIter: [2]int{2, 6}, BranchNoise: 0.05,
			LoadFrac: 0.24, StoreFrac: 0.09, DataBlocks: 40000,
		},
		{
			Name: "data-caching", Seed: 102, PaperMPKI: 78.1,
			PhaseEvery: 120, Services: 12, PrivateFuncs: [2]int{5, 8}, FuncBlocks: [2]int{6, 12},
			LibFuncs: 64, OSFuncs: 48, LibPerPrivate: 2, OSCallProb: 0.6,
			NestedCallProb: 0.35, SharedZipf: 0.6, ServiceZipf: 0.9,
			LoopProb: 0.22, LoopSpanMax: 3, LoopIter: [2]int{2, 5}, BranchNoise: 0.05,
			LoadFrac: 0.27, StoreFrac: 0.10, DataBlocks: 60000,
		},
		{
			Name: "data-serving", Seed: 103, PaperMPKI: 31.6,
			PhaseEvery: 200, Services: 8, PrivateFuncs: [2]int{4, 7}, FuncBlocks: [2]int{5, 10},
			LibFuncs: 48, OSFuncs: 32, LibPerPrivate: 2, OSCallProb: 0.45,
			NestedCallProb: 0.3, SharedZipf: 0.8, ServiceZipf: 1.1,
			LoopProb: 0.35, LoopSpanMax: 4, LoopIter: [2]int{3, 8}, BranchNoise: 0.04,
			LoadFrac: 0.26, StoreFrac: 0.10, DataBlocks: 50000,
		},
		{
			Name: "web-serving", Seed: 104, PaperMPKI: 65.8,
			PhaseEvery: 120, Services: 12, PrivateFuncs: [2]int{5, 9}, FuncBlocks: [2]int{6, 12},
			LibFuncs: 60, OSFuncs: 44, LibPerPrivate: 2, OSCallProb: 0.55,
			NestedCallProb: 0.35, SharedZipf: 0.8, ServiceZipf: 1.0,
			LoopProb: 0.25, LoopSpanMax: 3, LoopIter: [2]int{2, 5}, BranchNoise: 0.05,
			LoadFrac: 0.25, StoreFrac: 0.10, DataBlocks: 35000,
		},
		{
			Name: "web-search", Seed: 105, PaperMPKI: 151.5,
			PhaseEvery: 100, Services: 18, PrivateFuncs: [2]int{7, 12}, FuncBlocks: [2]int{7, 15},
			LibFuncs: 90, OSFuncs: 50, LibPerPrivate: 3, OSCallProb: 0.5,
			NestedCallProb: 0.45, SharedZipf: 0.5, ServiceZipf: 0.7,
			LoopProb: 0.25, LoopSpanMax: 4, LoopIter: [2]int{2, 5}, BranchNoise: 0.06,
			LoadFrac: 0.26, StoreFrac: 0.08, DataBlocks: 80000,
		},
		{
			Name: "tpcc", Seed: 106, PaperMPKI: 42.5,
			PhaseEvery: 150, Services: 24, PrivateFuncs: [2]int{6, 10}, FuncBlocks: [2]int{6, 12},
			LibFuncs: 80, OSFuncs: 40, LibPerPrivate: 2, OSCallProb: 0.5,
			NestedCallProb: 0.3, SharedZipf: 0.4, ServiceZipf: 0.3,
			LoopProb: 0.3, LoopSpanMax: 4, LoopIter: [2]int{2, 6}, BranchNoise: 0.04,
			LoadFrac: 0.28, StoreFrac: 0.12, DataBlocks: 70000,
		},
		{
			Name: "wikipedia", Seed: 107, PaperMPKI: 41.1,
			PhaseEvery: 150, Services: 22, PrivateFuncs: [2]int{5, 10}, FuncBlocks: [2]int{6, 12},
			LibFuncs: 76, OSFuncs: 40, LibPerPrivate: 2, OSCallProb: 0.45,
			NestedCallProb: 0.3, SharedZipf: 0.4, ServiceZipf: 0.35,
			LoopProb: 0.3, LoopSpanMax: 4, LoopIter: [2]int{2, 6}, BranchNoise: 0.04,
			LoadFrac: 0.26, StoreFrac: 0.10, DataBlocks: 55000,
		},
		{
			Name: "sibench", Seed: 108, PaperMPKI: 35.0,
			PhaseEvery: 200, Services: 8, PrivateFuncs: [2]int{4, 8}, FuncBlocks: [2]int{5, 11},
			LibFuncs: 52, OSFuncs: 30, LibPerPrivate: 2, OSCallProb: 0.4,
			NestedCallProb: 0.3, SharedZipf: 0.7, ServiceZipf: 0.9,
			LoopProb: 0.3, LoopSpanMax: 3, LoopIter: [2]int{2, 6}, BranchNoise: 0.04,
			LoadFrac: 0.27, StoreFrac: 0.11, DataBlocks: 45000,
		},
		{
			Name: "finagle-http", Seed: 109, PaperMPKI: 46.1,
			PhaseEvery: 150, Services: 10, PrivateFuncs: [2]int{5, 8}, FuncBlocks: [2]int{5, 11},
			LibFuncs: 66, OSFuncs: 36, LibPerPrivate: 2, OSCallProb: 0.45,
			NestedCallProb: 0.4, SharedZipf: 0.6, ServiceZipf: 0.8,
			LoopProb: 0.28, LoopSpanMax: 3, LoopIter: [2]int{2, 5}, BranchNoise: 0.05,
			LoadFrac: 0.25, StoreFrac: 0.09, DataBlocks: 40000,
		},
		{
			Name: "neo4j", Seed: 110, PaperMPKI: 58.7,
			PhaseEvery: 150, Services: 12, PrivateFuncs: [2]int{6, 10}, FuncBlocks: [2]int{6, 13},
			LibFuncs: 70, OSFuncs: 40, LibPerPrivate: 2, OSCallProb: 0.45,
			NestedCallProb: 0.4, SharedZipf: 0.6, ServiceZipf: 0.9,
			LoopProb: 0.3, LoopSpanMax: 4, LoopIter: [2]int{2, 6}, BranchNoise: 0.05,
			LoadFrac: 0.27, StoreFrac: 0.08, DataBlocks: 90000,
		},
	}
}

// SPEC returns the five Fig 18/19 SPEC2017 Int profiles: small, loopy code
// footprints with high baseline i-cache hit rates.
func SPEC() []Profile {
	return []Profile{
		{
			Name: "perlbench", Seed: 201, PaperMPKI: 3.5,
			Services: 5, PrivateFuncs: [2]int{5, 9}, FuncBlocks: [2]int{7, 15},
			LibFuncs: 56, OSFuncs: 8, LibPerPrivate: 1, OSCallProb: 0.15,
			NestedCallProb: 0.4, SharedZipf: 0.9, ServiceZipf: 1.2,
			LoopProb: 0.6, LoopSpanMax: 5, LoopIter: [2]int{4, 24}, BranchNoise: 0.05,
			LoadFrac: 0.26, StoreFrac: 0.11, DataBlocks: 8000,
		},
		{
			Name: "omnetpp", Seed: 202, PaperMPKI: 2.5,
			Services: 5, PrivateFuncs: [2]int{4, 8}, FuncBlocks: [2]int{6, 13},
			LibFuncs: 56, OSFuncs: 8, LibPerPrivate: 1, OSCallProb: 0.12,
			NestedCallProb: 0.4, SharedZipf: 1.0, ServiceZipf: 1.2,
			LoopProb: 0.6, LoopSpanMax: 4, LoopIter: [2]int{4, 20}, BranchNoise: 0.06,
			LoadFrac: 0.30, StoreFrac: 0.10, DataBlocks: 60000,
		},
		{
			Name: "xalancbmk", Seed: 203, PaperMPKI: 4.0,
			Services: 5, PrivateFuncs: [2]int{4, 7}, FuncBlocks: [2]int{6, 12},
			LibFuncs: 44, OSFuncs: 7, LibPerPrivate: 1, OSCallProb: 0.1,
			NestedCallProb: 0.45, SharedZipf: 0.8, ServiceZipf: 1.0,
			LoopProb: 0.55, LoopSpanMax: 4, LoopIter: [2]int{3, 16}, BranchNoise: 0.05,
			LoadFrac: 0.28, StoreFrac: 0.09, DataBlocks: 30000,
		},
		{
			Name: "x264", Seed: 204, PaperMPKI: 1.2,
			Services: 3, PrivateFuncs: [2]int{4, 6}, FuncBlocks: [2]int{5, 10},
			LibFuncs: 28, OSFuncs: 4, LibPerPrivate: 1, OSCallProb: 0.06,
			NestedCallProb: 0.3, SharedZipf: 1.1, ServiceZipf: 1.4,
			LoopProb: 0.7, LoopSpanMax: 5, LoopIter: [2]int{8, 40}, BranchNoise: 0.03,
			LoadFrac: 0.30, StoreFrac: 0.12, DataBlocks: 20000,
		},
		{
			Name: "gcc", Seed: 205, PaperMPKI: 8.0,
			Services: 8, PrivateFuncs: [2]int{5, 9}, FuncBlocks: [2]int{6, 13},
			LibFuncs: 64, OSFuncs: 10, LibPerPrivate: 1, OSCallProb: 0.15,
			NestedCallProb: 0.45, SharedZipf: 0.7, ServiceZipf: 0.9,
			LoopProb: 0.5, LoopSpanMax: 4, LoopIter: [2]int{3, 12}, BranchNoise: 0.06,
			LoadFrac: 0.27, StoreFrac: 0.10, DataBlocks: 25000,
		},
	}
}

// ByName returns the named profile from either suite.
func ByName(name string) (Profile, bool) {
	for _, p := range Datacenter() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range SPEC() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// All returns every profile (datacenter then SPEC).
func All() []Profile { return append(Datacenter(), SPEC()...) }
