package workload

import (
	"testing"

	"acic/internal/analysis"
	"acic/internal/trace"
)

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("media-streaming")
	a := Generate(p, 50000)
	b := Generate(p, 50000)
	if len(a.Insts) != len(b.Insts) {
		t.Fatal("lengths differ")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestGenerateLength(t *testing.T) {
	p, _ := ByName("tpcc")
	tr := Generate(p, 12345)
	if tr.Len() != 12345 {
		t.Errorf("length = %d, want 12345", tr.Len())
	}
	if tr.Name != "tpcc" {
		t.Errorf("name = %q", tr.Name)
	}
}

func TestProfilesAllGenerate(t *testing.T) {
	for _, p := range All() {
		tr := Generate(p, 20000)
		if tr.Len() != 20000 {
			t.Errorf("%s: wrong length", p.Name)
		}
		if tr.Footprint() < 100 {
			t.Errorf("%s: implausibly small footprint %d", p.Name, tr.Footprint())
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("media-streaming"); !ok {
		t.Error("media-streaming should exist")
	}
	if _, ok := ByName("gcc"); !ok {
		t.Error("gcc should exist")
	}
	if _, ok := ByName("no-such-app"); ok {
		t.Error("unknown app should not resolve")
	}
	if len(Datacenter()) != 10 || len(SPEC()) != 5 || len(All()) != 15 {
		t.Error("suite sizes wrong")
	}
}

// TestTraceControlFlowConsistency checks the structural validity of the
// generated trace: branch targets are present, calls and returns nest, and
// non-branch instructions are followed by their fall-through.
func TestTraceControlFlowConsistency(t *testing.T) {
	p, _ := ByName("web-serving")
	tr := Generate(p, 40000)
	var stack []uint64
	for i := 0; i < len(tr.Insts)-1; i++ {
		in := &tr.Insts[i]
		next := tr.Insts[i+1].PC
		switch in.Class {
		case trace.ClassCall:
			stack = append(stack, in.PC+4)
			if next != in.Target {
				t.Fatalf("inst %d: call target %#x, next PC %#x", i, in.Target, next)
			}
		case trace.ClassRet:
			if len(stack) > 0 {
				want := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if in.Target != want {
					// Depth-bounded walks may truncate nesting; the return
					// must still go to *a* recorded return address.
					t.Logf("inst %d: return target %#x, innermost call pushed %#x", i, in.Target, want)
				}
			}
			if next != in.Target {
				t.Fatalf("inst %d: ret to %#x but next PC %#x", i, in.Target, next)
			}
		case trace.ClassCondBranch:
			want := in.PC + 4
			if in.Taken {
				want = in.Target
			}
			if next != want {
				t.Fatalf("inst %d: cond branch (taken=%v) expects next %#x, got %#x", i, in.Taken, want, next)
			}
		case trace.ClassJump, trace.ClassIndirect:
			if next != in.Target {
				t.Fatalf("inst %d: jump expects %#x, got %#x", i, in.Target, next)
			}
		default:
			if next != in.PC+4 {
				t.Fatalf("inst %d (%v): sequential successor expected, got %#x after %#x", i, in.Class, next, in.PC)
			}
		}
	}
}

func TestInstructionMix(t *testing.T) {
	p, _ := ByName("data-caching")
	tr := Generate(p, 60000)
	var loads, stores, branches int
	for i := range tr.Insts {
		switch {
		case tr.Insts[i].Class == trace.ClassLoad:
			loads++
		case tr.Insts[i].Class == trace.ClassStore:
			stores++
		case tr.Insts[i].Class.IsBranch():
			branches++
		}
	}
	n := float64(tr.Len())
	if f := float64(loads) / n; f < 0.10 || f > 0.40 {
		t.Errorf("load fraction %.2f out of band", f)
	}
	if f := float64(stores) / n; f < 0.03 || f > 0.25 {
		t.Errorf("store fraction %.2f out of band", f)
	}
	if f := float64(branches) / n; f < 0.08 || f > 0.40 {
		t.Errorf("branch fraction %.2f out of band", f)
	}
}

// TestBurstinessShape checks the Fig 1a characterization: at instruction
// granularity, the 0-distance (spatial) bucket dominates for datacenter
// profiles, and a visible fraction sits just beyond the i-cache's reach.
func TestBurstinessShape(t *testing.T) {
	p, _ := ByName("media-streaming")
	tr := Generate(p, 120000)
	refs := analysis.InstBlockRefs(tr)
	fr := analysis.Distribution(analysis.ReuseDistances(refs), analysis.Fig1aEdges)
	if fr[0] < 0.7 {
		t.Errorf("spatial bucket = %.2f, want > 0.7 (paper: ~0.85)", fr[0])
	}
	beyond := fr[3] + fr[4] + fr[5]
	if beyond < 0.01 {
		t.Errorf("beyond-cache fraction = %.3f; workload has no capacity pressure", beyond)
	}
}

func TestSPECSmallFootprint(t *testing.T) {
	pd, _ := ByName("media-streaming")
	ps, _ := ByName("x264")
	big := Generate(pd, 60000).Footprint()
	small := Generate(ps, 60000).Footprint()
	if small >= big {
		t.Errorf("SPEC footprint %d should be well below datacenter %d", small, big)
	}
}

func TestDataAddressesDisjointFromCode(t *testing.T) {
	p, _ := ByName("sibench")
	tr := Generate(p, 30000)
	for i := range tr.Insts {
		in := &tr.Insts[i]
		if in.Class.IsMem() && in.MemAddr < heapBase {
			t.Fatalf("inst %d: data address %#x inside code region", i, in.MemAddr)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := newRNG(1)
	z := newZipf(r, 10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z.draw()]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("zipf rank 0 (%d) should dominate rank 9 (%d)", counts[0], counts[9])
	}
	if counts[0] < 3*counts[9] {
		t.Errorf("zipf skew too weak: %v", counts)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed must be remapped")
	}
	r := newRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn out of range: %d", v)
		}
		if v := r.rangeInt(3, 5); v < 3 || v > 5 {
			t.Fatalf("rangeInt out of range: %d", v)
		}
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
	if r.rangeInt(5, 3) != 5 {
		t.Error("inverted range should return lo")
	}
	if r.intn(0) != 0 {
		t.Error("intn(0) should return 0")
	}
}
