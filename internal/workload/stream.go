package workload

import (
	"acic/internal/trace"
)

// Stream yields a synthesized trace in fixed-size instruction windows
// instead of one whole-trace allocation. The walk is the same
// deterministic RNG sequence Generate runs — requests are issued until the
// cumulative instruction count reaches n, and the concatenation of the
// returned windows is byte-identical to the batch trace at every window
// size — but peak memory is O(window + one request burst) rather than
// O(n). This is the front of the streaming prepare pipeline (DESIGN.md
// §12).
type Stream struct {
	w            *walker
	dispatcherPC uint64
	n            int // total instructions to yield
	window       int // max instructions per Next
	emitted      int // yielded so far
	pending      int // front of w.out already returned, shifted out lazily
}

// GenerateStream starts a streamed walk yielding n instructions for the
// profile in windows of at most window instructions.
func GenerateStream(p Profile, n, window int) *Stream {
	if window <= 0 || window > n {
		window = n
	}
	r := newRNG(p.Seed)
	pr := buildProgram(p, r)
	return &Stream{
		w: &walker{
			pr:  pr,
			p:   p,
			r:   r,
			out: make([]trace.Inst, 0, window+4096),
			svZ: newZipf(r, len(pr.services), p.ServiceZipf),
		},
		dispatcherPC: appBase,
		n:            n,
		window:       window,
	}
}

// Next returns the next window of instructions, or nil when the stream is
// exhausted. The returned slice aliases the stream's buffer and is only
// valid until the following Next call; callers that retain a window must
// copy it.
func (s *Stream) Next() []trace.Inst {
	if s.emitted >= s.n {
		return nil
	}
	w := s.w
	if s.pending > 0 {
		rest := copy(w.out, w.out[s.pending:])
		w.out = w.out[:rest]
		s.pending = 0
	}
	want := min(s.window, s.n-s.emitted)
	// Match the batch walk exactly: requests are issued only while the
	// cumulative count is short of n, and the overshoot of the final
	// request is truncated.
	for len(w.out) < want && s.emitted+len(w.out) < s.n {
		w.request(&s.dispatcherPC)
	}
	k := min(want, len(w.out))
	s.pending = k
	s.emitted += k
	return w.out[:k]
}

// Emitted returns the number of instructions yielded so far.
func (s *Stream) Emitted() int { return s.emitted }

// Remaining returns the number of instructions the stream has yet to
// yield.
func (s *Stream) Remaining() int { return s.n - s.emitted }
