// Package workload synthesizes instruction traces whose block-level reuse
// structure matches the paper's characterization of datacenter applications
// (Fig 1a, Table III): strong spatial bursts, short-term temporal locality
// from loops and nearby branch targets, and long inter-burst reuse
// distances created by request-level churn through deep software stacks
// (application, library, and OS layers).
//
// A seeded generator builds a static program — functions made of 64-byte
// basic blocks, organized into per-request-type "services" that call into
// shared library and OS functions — then walks it request by request to
// emit a dynamic trace. Each profile (one per paper workload) controls the
// footprint, the service mix skew, loop behaviour, branch predictability,
// and the data-side footprint; Table III's MPKI column is reproduced in
// *band* (who is high, who is low) rather than absolute value, which is
// what the relative results in Figs 10-21 depend on.
package workload

import "math"

// rng is a splitmix64-based deterministic generator; every profile's trace
// is a pure function of its seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x2545F4914F6CDD1D
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform integer in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// bool returns true with probability p.
func (r *rng) bool(p float64) bool { return r.float() < p }

// zipf draws from a Zipf-like distribution over [0, n) with exponent s,
// using rejection-free inverse CDF over precomputed weights.
type zipf struct {
	cdf []float64
	rng *rng
}

func newZipf(r *rng, n int, s float64) *zipf {
	z := &zipf{cdf: make([]float64, n), rng: r}
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), s)
		sum += w
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

func (z *zipf) draw() int {
	u := z.rng.float()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
