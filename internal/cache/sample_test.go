package cache

import "testing"

func TestNewSampleFilter(t *testing.T) {
	for _, tc := range []struct {
		stride, offset int
		ok             bool
	}{
		{0, 0, true}, {1, 0, true}, {2, 0, true}, {2, 1, true},
		{8, 1, true}, {8, 7, true}, {64, 63, true},
		{3, 0, false}, {6, 0, false}, {-2, 0, false},
		{8, 8, false}, {8, -1, false}, {0, 1, false}, {1, 1, false},
	} {
		_, err := NewSampleFilter(tc.stride, tc.offset)
		if (err == nil) != tc.ok {
			t.Errorf("NewSampleFilter(%d, %d): err=%v, want ok=%v", tc.stride, tc.offset, err, tc.ok)
		}
	}
}

func TestSampleFilterZeroValueSamplesEverything(t *testing.T) {
	var f SampleFilter
	if f.Enabled() {
		t.Fatal("zero filter reports enabled")
	}
	if f.Stride() != 1 {
		t.Fatalf("zero filter stride = %d, want 1", f.Stride())
	}
	for _, b := range []uint64{0, 1, 7, 63, 64, 1 << 40} {
		if !f.Sampled(b) {
			t.Fatalf("zero filter rejects block %d", b)
		}
	}
}

func TestSampleFilterConstituency(t *testing.T) {
	f, err := NewSampleFilter(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Enabled() || f.Stride() != 8 {
		t.Fatalf("filter = %+v: enabled=%v stride=%d", f, f.Enabled(), f.Stride())
	}
	// Exactly the blocks whose set-index low bits equal the offset are
	// sampled, and the fraction over any aligned range is 1/stride.
	sampled := 0
	for b := uint64(0); b < 1024; b++ {
		in := f.Sampled(b)
		if want := b%8 == 1; in != want {
			t.Fatalf("Sampled(%d) = %v, want %v", b, in, want)
		}
		if in {
			sampled++
		}
	}
	if sampled != 1024/8 {
		t.Fatalf("sampled %d of 1024 blocks, want %d", sampled, 1024/8)
	}
}

func TestSampleFilterScaleShared(t *testing.T) {
	f, _ := NewSampleFilter(8, 1)
	for _, tc := range []struct{ in, want int }{
		{16, 2}, {48, 6}, {128, 16}, {8, 2}, {1, 1}, {0, 0},
	} {
		if got := f.ScaleShared(tc.in); got != tc.want {
			t.Errorf("ScaleShared(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	var off SampleFilter
	if got := off.ScaleShared(16); got != 16 {
		t.Errorf("disabled ScaleShared(16) = %d, want 16", got)
	}
}
