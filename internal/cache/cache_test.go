package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fifoPolicy is a minimal deterministic policy for substrate tests.
type fifoPolicy struct {
	ways  int
	order []int64
	clock int64
}

func (p *fifoPolicy) Name() string { return "fifo" }
func (p *fifoPolicy) Reset(sets, ways int) {
	p.ways = ways
	p.order = make([]int64, sets*ways)
}
func (p *fifoPolicy) OnHit(int, int, *AccessContext) {}
func (p *fifoPolicy) OnFill(set, way int, _ *AccessContext) {
	p.clock++
	p.order[set*p.ways+way] = p.clock
}
func (p *fifoPolicy) OnEvict(int, int, *AccessContext) {}
func (p *fifoPolicy) Victim(set int, _ *AccessContext) int {
	base := set * p.ways
	best, bestV := 0, p.order[base]
	for w := 1; w < p.ways; w++ {
		if p.order[base+w] < bestV {
			best, bestV = w, p.order[base+w]
		}
	}
	return best
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{{Sets: 0, Ways: 1}, {Sets: 3, Ways: 1}, {Sets: 4, Ways: 0}, {Sets: -4, Ways: 2}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	good := Config{Sets: 64, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("config %+v should be valid: %v", good, err)
	}
	if good.Blocks() != 512 {
		t.Errorf("Blocks() = %d, want 512", good.Blocks())
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(Config{Sets: 3, Ways: 2}, &fifoPolicy{}); err == nil {
		t.Error("expected geometry error")
	}
	if _, err := New(Config{Sets: 4, Ways: 2}, nil); err == nil {
		t.Error("expected nil-policy error")
	}
}

func TestInsertLookupEvict(t *testing.T) {
	c := MustNew(Config{Sets: 2, Ways: 2}, &fifoPolicy{})
	// Fill set 0 (blocks 0, 2 map to set 0 with 2 sets).
	ctx := func(b uint64) *AccessContext { return &AccessContext{Block: b} }
	if ev := c.Insert(ctx(0)); ev.Valid {
		t.Error("first insert should not evict")
	}
	if ev := c.Insert(ctx(2)); ev.Valid {
		t.Error("second insert should use the empty way")
	}
	if !c.Contains(0) || !c.Contains(2) {
		t.Fatal("inserted blocks must be resident")
	}
	// Third insert into set 0 evicts FIFO-first (block 0).
	ev := c.Insert(ctx(4))
	if !ev.Valid || ev.Block != 0 {
		t.Fatalf("evicted %+v, want block 0", ev)
	}
	if c.Contains(0) {
		t.Error("block 0 should be gone")
	}
	if c.Occupancy() != 2 {
		t.Errorf("occupancy = %d, want 2", c.Occupancy())
	}
}

func TestAccessUpdatesStats(t *testing.T) {
	c := MustNew(Config{Sets: 2, Ways: 2}, &fifoPolicy{})
	ctx := AccessContext{Block: 0}
	if c.Access(&ctx) {
		t.Error("miss expected on empty cache")
	}
	c.Insert(&ctx)
	if !c.Access(&ctx) {
		t.Error("hit expected after insert")
	}
	if c.Hits != 1 || c.Misses != 1 || c.Fills != 1 {
		t.Errorf("stats hits=%d misses=%d fills=%d", c.Hits, c.Misses, c.Fills)
	}
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 || c.Fills != 0 || c.Evicts != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestPeekVictimDoesNotMutate(t *testing.T) {
	c := MustNew(Config{Sets: 1, Ways: 2}, &fifoPolicy{})
	c.Insert(&AccessContext{Block: 0})
	c.Insert(&AccessContext{Block: 1})
	way1, v1 := c.PeekVictim(&AccessContext{Block: 2})
	way2, v2 := c.PeekVictim(&AccessContext{Block: 2})
	if way1 != way2 || v1 != v2 {
		t.Error("PeekVictim must be idempotent")
	}
	if !v1.Valid || v1.Block != 0 {
		t.Errorf("peek victim = %+v, want block 0", v1)
	}
	if !c.Contains(0) || !c.Contains(1) {
		t.Error("PeekVictim must not evict")
	}
}

func TestInsertAt(t *testing.T) {
	c := MustNew(Config{Sets: 1, Ways: 2}, &fifoPolicy{})
	c.Insert(&AccessContext{Block: 0})
	c.Insert(&AccessContext{Block: 1})
	ev := c.InsertAt(1, &AccessContext{Block: 7})
	if !ev.Valid || ev.Block != 1 {
		t.Fatalf("InsertAt evicted %+v, want block 1", ev)
	}
	if !c.Contains(7) || !c.Contains(0) || c.Contains(1) {
		t.Error("InsertAt contents wrong")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(Config{Sets: 2, Ways: 1}, &fifoPolicy{})
	c.Insert(&AccessContext{Block: 3})
	if !c.Invalidate(3) {
		t.Error("expected invalidate to find block 3")
	}
	if c.Invalidate(3) {
		t.Error("double invalidate should return false")
	}
	if c.Contains(3) {
		t.Error("block 3 should be gone")
	}
}

func TestNextUseOf(t *testing.T) {
	ctx := &AccessContext{AccessIdx: 5, NextUse: func(b uint64, after int64) int64 {
		if b == 1 && after == 5 {
			return 9
		}
		return NeverUsed
	}}
	if ctx.NextUseOf(1) != 9 {
		t.Error("oracle passthrough failed")
	}
	if ctx.NextUseOf(2) != NeverUsed {
		t.Error("unknown block should never be used")
	}
	var nilCtx *AccessContext
	if nilCtx.NextUseOf(1) != NeverUsed {
		t.Error("nil context should report NeverUsed")
	}
}

// Property: after any access/insert sequence, occupancy never exceeds
// capacity and every Contains(b) agrees with the last insert/evict history.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(Config{Sets: 4, Ways: 2}, &fifoPolicy{})
		resident := map[uint64]bool{}
		for i := 0; i < int(ops)+8; i++ {
			b := uint64(rng.Intn(32))
			ctx := AccessContext{Block: b}
			if c.Access(&ctx) != resident[b] {
				return false
			}
			if !resident[b] {
				ev := c.Insert(&ctx)
				if ev.Valid {
					if !resident[ev.Block] {
						return false // evicted something not resident
					}
					delete(resident, ev.Block)
				}
				resident[b] = true
			}
			if c.Occupancy() > c.Config().Blocks() || c.Occupancy() != len(resident) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
