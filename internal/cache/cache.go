// Package cache implements the generic set-associative cache substrate used
// for every cache level in the simulator, with a pluggable replacement
// policy interface. All i-cache management schemes evaluated in the paper
// (LRU, SRRIP, SHiP, Hawkeye/Harmony, GHRP, Belady's OPT, the bypassing
// schemes, and ACIC itself) plug into this substrate.
//
// Addresses are handled at block granularity: the cache stores block
// numbers (byte address >> 6), and the "tag" of a line is simply its full
// block number, which keeps lookups exact while letting individual policies
// hash down to partial tags/signatures as the hardware would.
package cache

import "fmt"

// Line is one cache line's bookkeeping state (data is not simulated).
type Line struct {
	Block uint64 // full block number
	Next  int64  // next-use time carried from the filling/hitting context (0 = none)
	Valid bool
}

// AccessContext carries the per-access information policies may consume.
// Fields are optional: the plain LRU policy ignores everything, while OPT
// requires the oracle and GHRP wants the global history hooks it keeps
// internally keyed by block.
type AccessContext struct {
	Block      uint64 // block being accessed / inserted
	AccessIdx  int64  // index in the block-access sequence (oracle time)
	IsPrefetch bool   // access originates from a prefetcher, not demand fetch

	// SelfNext, when non-zero, is the precomputed next-use time of Block
	// strictly after AccessIdx (the O(1) successor-array value supplied by
	// the i-cache layer). Zero means "not precomputed": consumers fall back
	// to the NextUse closure. Next-use times are strictly positive, so zero
	// is unambiguous.
	SelfNext int64
	// ContenderNext, when non-zero, is the carried next-use time of the
	// replacement contender a bypass decision runs against (Line.Next of
	// the victim way). Zero means unknown.
	ContenderNext int64

	NextUse func(block uint64, after int64) int64
}

// NextUseOf returns the oracle next-use time of block strictly after the
// context's access index, or NeverUsed when no oracle is attached or the
// block is never used again.
func (ctx *AccessContext) NextUseOf(block uint64) int64 {
	if ctx == nil || ctx.NextUse == nil {
		return NeverUsed
	}
	return ctx.NextUse(block, ctx.AccessIdx)
}

// NeverUsed is the oracle next-use value for a block with no future access.
const NeverUsed = int64(1) << 62

// Policy decides victim selection and maintains per-line recency state.
// Implementations are owned by exactly one Cache; Reset is called once with
// the geometry before any other method.
type Policy interface {
	// Name identifies the policy in reports (e.g. "lru", "srrip").
	Name() string
	// Reset initializes per-line metadata for a sets x ways cache.
	Reset(sets, ways int)
	// OnHit is invoked after a lookup hits at (set, way).
	OnHit(set, way int, ctx *AccessContext)
	// OnFill is invoked after an insertion filled (set, way).
	OnFill(set, way int, ctx *AccessContext)
	// OnEvict is invoked just before the line at (set, way) is replaced.
	// The line is still valid when called.
	OnEvict(set, way int, ctx *AccessContext)
	// Victim returns the way to replace in set. Invalid ways are filled by
	// the cache itself before Victim is consulted.
	Victim(set int, ctx *AccessContext) int
}

// Config describes cache geometry.
type Config struct {
	Sets int // number of sets; must be a power of two
	Ways int // associativity
}

// Blocks returns the total line capacity.
func (c Config) Blocks() int { return c.Sets * c.Ways }

// Validate reports an error for an unusable geometry.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways must be positive, got %d", c.Ways)
	}
	return nil
}

// invalidKey marks an empty line in the key array. Block numbers are byte
// addresses shifted right by 6, so no real block reaches 2^64-1 and lookups
// need no separate valid check on the scan path.
const invalidKey = ^uint64(0)

// Cache is a set-associative cache of block numbers. Line state is stored
// structure-of-arrays: the key array holds one uint64 per line (the block
// number, or invalidKey), so looking up an 8-way set scans a single cache
// line of memory; the carried next-use metadata lives in a parallel array
// touched only on hits and fills.
type Cache struct {
	cfg      Config
	mask     uint64
	keys     []uint64 // sets*ways block numbers, row-major by set; invalidKey = empty
	next     []int64  // sets*ways carried next-use times
	mru      []int32  // per-set most-recently-hit/filled way (way prediction)
	policy   Policy
	occupied int // valid-line count, maintained incrementally

	// Stats
	Hits   uint64
	Misses uint64
	Fills  uint64
	Evicts uint64
}

// New creates a cache with the given geometry and replacement policy.
func New(cfg Config, p Policy) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	p.Reset(cfg.Sets, cfg.Ways)
	keys := make([]uint64, cfg.Sets*cfg.Ways)
	for i := range keys {
		keys[i] = invalidKey
	}
	return &Cache{
		cfg:    cfg,
		mask:   uint64(cfg.Sets - 1),
		keys:   keys,
		next:   make([]int64, cfg.Sets*cfg.Ways),
		mru:    make([]int32, cfg.Sets),
		policy: p,
	}, nil
}

// MustNew is New but panics on configuration errors; for tests and tables.
func MustNew(cfg Config, p Policy) *Cache {
	c, err := New(cfg, p)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the attached replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// FootprintBytes measures the line-state backing the cache holds — the
// key, next-use, and MRU arrays — in host bytes. Gang window derivation
// sums it into the per-member working-set estimate.
func (c *Cache) FootprintBytes() int64 {
	return int64(len(c.keys))*8 + int64(len(c.next))*8 + int64(len(c.mru))*4
}

// SetIndex maps a block to its set.
func (c *Cache) SetIndex(block uint64) int { return int(block & c.mask) }

// lineAt materializes the Line value stored at index i.
func (c *Cache) lineAt(i int) Line {
	if c.keys[i] == invalidKey {
		return Line{}
	}
	return Line{Block: c.keys[i], Next: c.next[i], Valid: true}
}

// Lines returns a snapshot of the lines of a set. Exposed for oracle
// analyses and victim-cache integration (off the hot path: it allocates).
func (c *Cache) Lines(set int) []Line {
	out := make([]Line, c.cfg.Ways)
	base := set * c.cfg.Ways
	for w := range out {
		out[w] = c.lineAt(base + w)
	}
	return out
}

// Lookup finds block without updating replacement state. The set's most
// recently touched way is probed first (way prediction): accesses are
// bursty, so the common hit costs one compare instead of a way scan. The
// match is exact either way — prediction only reorders the probe sequence.
func (c *Cache) Lookup(block uint64) (way int, hit bool) {
	set := c.SetIndex(block)
	base := set * c.cfg.Ways
	if m := int(c.mru[set]); c.keys[base+m] == block {
		return m, true
	}
	for w := 0; w < c.cfg.Ways; w++ {
		if c.keys[base+w] == block {
			return w, true
		}
	}
	return -1, false
}

// Access looks up block, updating hit statistics and replacement state on a
// hit. It does not fill on a miss; the caller decides fill policy (this is
// what lets i-Filter/bypass/ACIC front-ends own the fill path).
func (c *Cache) Access(ctx *AccessContext) (hit bool) {
	way, ok := c.Lookup(ctx.Block)
	if ok {
		c.Hits++
		set := c.SetIndex(ctx.Block)
		c.next[set*c.cfg.Ways+way] = ctx.SelfNext
		c.mru[set] = int32(way)
		c.policy.OnHit(set, way, ctx)
		return true
	}
	c.Misses++
	return false
}

// PeekVictim returns the way and current contents the policy would evict in
// block's set, without performing the eviction. If an invalid way exists it
// is returned with ok=false contents (Line.Valid false).
func (c *Cache) PeekVictim(ctx *AccessContext) (way int, victim Line) {
	set := c.SetIndex(ctx.Block)
	base := set * c.cfg.Ways
	// The empty-way scan matters only while the cache fills; once every
	// line is valid (the steady state — nothing in the simulated datapaths
	// invalidates lines), it can never find one, so skip it.
	if c.occupied < len(c.keys) {
		for w := 0; w < c.cfg.Ways; w++ {
			if c.keys[base+w] == invalidKey {
				return w, Line{}
			}
		}
	}
	w := c.policy.Victim(set, ctx)
	return w, c.lineAt(base + w)
}

// Insert fills block into its set, evicting the policy's victim if the set
// is full. It returns the evicted line (Valid=false when an empty way was
// used). Insert must not be called when the block is already resident.
func (c *Cache) Insert(ctx *AccessContext) (evicted Line) {
	set := c.SetIndex(ctx.Block)
	way, victim := c.PeekVictim(ctx)
	if victim.Valid {
		c.policy.OnEvict(set, way, ctx)
		c.Evicts++
	} else {
		c.occupied++
	}
	i := set*c.cfg.Ways + way
	c.keys[i] = ctx.Block
	c.next[i] = ctx.SelfNext
	c.mru[set] = int32(way)
	c.Fills++
	c.policy.OnFill(set, way, ctx)
	return victim
}

// InsertAt fills block into an explicit way of its set (used by victim-cache
// swap paths), returning the previous contents.
func (c *Cache) InsertAt(way int, ctx *AccessContext) (evicted Line) {
	set := c.SetIndex(ctx.Block)
	i := set*c.cfg.Ways + way
	evicted = c.lineAt(i)
	if evicted.Valid {
		c.policy.OnEvict(set, way, ctx)
		c.Evicts++
	} else {
		c.occupied++
	}
	c.keys[i] = ctx.Block
	c.next[i] = ctx.SelfNext
	c.mru[set] = int32(way)
	c.Fills++
	c.policy.OnFill(set, way, ctx)
	return evicted
}

// Invalidate removes block if present, returning whether it was resident.
func (c *Cache) Invalidate(block uint64) bool {
	way, ok := c.Lookup(block)
	if !ok {
		return false
	}
	c.keys[c.SetIndex(block)*c.cfg.Ways+way] = invalidKey
	c.occupied--
	return true
}

// Contains reports whether block is resident.
func (c *Cache) Contains(block uint64) bool {
	_, ok := c.Lookup(block)
	return ok
}

// Occupancy returns the number of valid lines. The count is maintained
// incrementally by Insert/InsertAt/Invalidate, so this is O(1) and safe to
// call from analysis and victim paths on every access.
func (c *Cache) Occupancy() int { return c.occupied }

// ResetStats zeroes the hit/miss/fill/evict counters.
func (c *Cache) ResetStats() { c.Hits, c.Misses, c.Fills, c.Evicts = 0, 0, 0, 0 }
