// Package cache implements the generic set-associative cache substrate used
// for every cache level in the simulator, with a pluggable replacement
// policy interface. All i-cache management schemes evaluated in the paper
// (LRU, SRRIP, SHiP, Hawkeye/Harmony, GHRP, Belady's OPT, the bypassing
// schemes, and ACIC itself) plug into this substrate.
//
// Addresses are handled at block granularity: the cache stores block
// numbers (byte address >> 6), and the "tag" of a line is simply its full
// block number, which keeps lookups exact while letting individual policies
// hash down to partial tags/signatures as the hardware would.
package cache

import "fmt"

// Line is one cache line's bookkeeping state (data is not simulated).
type Line struct {
	Block uint64 // full block number
	Valid bool
}

// AccessContext carries the per-access information policies may consume.
// Fields are optional: the plain LRU policy ignores everything, while OPT
// requires the oracle and GHRP wants the global history hooks it keeps
// internally keyed by block.
type AccessContext struct {
	Block      uint64 // block being accessed / inserted
	AccessIdx  int64  // index in the block-access sequence (oracle time)
	IsPrefetch bool   // access originates from a prefetcher, not demand fetch
	NextUse    func(block uint64, after int64) int64
}

// NextUseOf returns the oracle next-use time of block strictly after the
// context's access index, or MaxInt64 when no oracle is attached or the
// block is never used again.
func (ctx *AccessContext) NextUseOf(block uint64) int64 {
	if ctx == nil || ctx.NextUse == nil {
		return NeverUsed
	}
	return ctx.NextUse(block, ctx.AccessIdx)
}

// NeverUsed is the oracle next-use value for a block with no future access.
const NeverUsed = int64(1) << 62

// Policy decides victim selection and maintains per-line recency state.
// Implementations are owned by exactly one Cache; Reset is called once with
// the geometry before any other method.
type Policy interface {
	// Name identifies the policy in reports (e.g. "lru", "srrip").
	Name() string
	// Reset initializes per-line metadata for a sets x ways cache.
	Reset(sets, ways int)
	// OnHit is invoked after a lookup hits at (set, way).
	OnHit(set, way int, ctx *AccessContext)
	// OnFill is invoked after an insertion filled (set, way).
	OnFill(set, way int, ctx *AccessContext)
	// OnEvict is invoked just before the line at (set, way) is replaced.
	// The line is still valid when called.
	OnEvict(set, way int, ctx *AccessContext)
	// Victim returns the way to replace in set. Invalid ways are filled by
	// the cache itself before Victim is consulted.
	Victim(set int, ctx *AccessContext) int
}

// Config describes cache geometry.
type Config struct {
	Sets int // number of sets; must be a power of two
	Ways int // associativity
}

// Blocks returns the total line capacity.
func (c Config) Blocks() int { return c.Sets * c.Ways }

// Validate reports an error for an unusable geometry.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways must be positive, got %d", c.Ways)
	}
	return nil
}

// Cache is a set-associative cache of block numbers.
type Cache struct {
	cfg    Config
	mask   uint64
	lines  []Line // sets*ways, row-major by set
	policy Policy

	// Stats
	Hits   uint64
	Misses uint64
	Fills  uint64
	Evicts uint64
}

// New creates a cache with the given geometry and replacement policy.
func New(cfg Config, p Policy) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	p.Reset(cfg.Sets, cfg.Ways)
	return &Cache{
		cfg:    cfg,
		mask:   uint64(cfg.Sets - 1),
		lines:  make([]Line, cfg.Sets*cfg.Ways),
		policy: p,
	}, nil
}

// MustNew is New but panics on configuration errors; for tests and tables.
func MustNew(cfg Config, p Policy) *Cache {
	c, err := New(cfg, p)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the attached replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetIndex maps a block to its set.
func (c *Cache) SetIndex(block uint64) int { return int(block & c.mask) }

// line returns a pointer to the line at (set, way).
func (c *Cache) line(set, way int) *Line { return &c.lines[set*c.cfg.Ways+way] }

// Lines returns the lines of a set (aliasing internal storage; callers must
// not mutate). Exposed for oracle analyses and victim-cache integration.
func (c *Cache) Lines(set int) []Line {
	return c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
}

// Lookup finds block without updating replacement state.
func (c *Cache) Lookup(block uint64) (way int, hit bool) {
	set := c.SetIndex(block)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if ln := &c.lines[base+w]; ln.Valid && ln.Block == block {
			return w, true
		}
	}
	return -1, false
}

// Access looks up block, updating hit statistics and replacement state on a
// hit. It does not fill on a miss; the caller decides fill policy (this is
// what lets i-Filter/bypass/ACIC front-ends own the fill path).
func (c *Cache) Access(ctx *AccessContext) (hit bool) {
	way, ok := c.Lookup(ctx.Block)
	if ok {
		c.Hits++
		c.policy.OnHit(c.SetIndex(ctx.Block), way, ctx)
		return true
	}
	c.Misses++
	return false
}

// PeekVictim returns the way and current contents the policy would evict in
// block's set, without performing the eviction. If an invalid way exists it
// is returned with ok=false contents (Line.Valid false).
func (c *Cache) PeekVictim(ctx *AccessContext) (way int, victim Line) {
	set := c.SetIndex(ctx.Block)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.lines[base+w].Valid {
			return w, c.lines[base+w]
		}
	}
	w := c.policy.Victim(set, ctx)
	return w, c.lines[base+w]
}

// Insert fills block into its set, evicting the policy's victim if the set
// is full. It returns the evicted line (Valid=false when an empty way was
// used). Insert must not be called when the block is already resident.
func (c *Cache) Insert(ctx *AccessContext) (evicted Line) {
	set := c.SetIndex(ctx.Block)
	way, victim := c.PeekVictim(ctx)
	if victim.Valid {
		c.policy.OnEvict(set, way, ctx)
		c.Evicts++
	}
	ln := c.line(set, way)
	evicted = *ln
	ln.Block = ctx.Block
	ln.Valid = true
	c.Fills++
	c.policy.OnFill(set, way, ctx)
	return evicted
}

// InsertAt fills block into an explicit way of its set (used by victim-cache
// swap paths), returning the previous contents.
func (c *Cache) InsertAt(way int, ctx *AccessContext) (evicted Line) {
	set := c.SetIndex(ctx.Block)
	ln := c.line(set, way)
	if ln.Valid {
		c.policy.OnEvict(set, way, ctx)
		c.Evicts++
	}
	evicted = *ln
	ln.Block = ctx.Block
	ln.Valid = true
	c.Fills++
	c.policy.OnFill(set, way, ctx)
	return evicted
}

// Invalidate removes block if present, returning whether it was resident.
func (c *Cache) Invalidate(block uint64) bool {
	way, ok := c.Lookup(block)
	if !ok {
		return false
	}
	c.line(c.SetIndex(block), way).Valid = false
	return true
}

// Contains reports whether block is resident.
func (c *Cache) Contains(block uint64) bool {
	_, ok := c.Lookup(block)
	return ok
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// ResetStats zeroes the hit/miss/fill/evict counters.
func (c *Cache) ResetStats() { c.Hits, c.Misses, c.Fills, c.Evicts = 0, 0, 0, 0 }
