package cache

import "fmt"

// SampleFilter selects the set constituencies a sampled simulation models
// (SDM-style set sampling): a block belongs to the sampled subset when the
// low bits of its set index — which are the low bits of the block number,
// since SetIndex is block & (sets-1) and the stride divides the set count —
// match the constituency offset. The zero value samples everything, so the
// filter can sit unconditionally on hot paths: the full-simulation check is
// one always-true mask compare.
type SampleFilter struct {
	Mask  uint64 // stride-1 (0 = disabled: every block is sampled)
	Match uint64 // constituency offset, < stride
}

// NewSampleFilter builds a filter that samples one in stride set
// constituencies, choosing the sets whose index ≡ offset (mod stride).
// stride must be a power of two (so the constituency test is a mask) and
// offset must be in [0, stride). stride 0 or 1 disables sampling.
func NewSampleFilter(stride, offset int) (SampleFilter, error) {
	if stride == 0 || stride == 1 {
		if offset != 0 {
			return SampleFilter{}, fmt.Errorf("cache: sample offset %d without a stride", offset)
		}
		return SampleFilter{}, nil
	}
	if stride < 0 || stride&(stride-1) != 0 {
		return SampleFilter{}, fmt.Errorf("cache: sample stride must be a power of two, got %d", stride)
	}
	if offset < 0 || offset >= stride {
		return SampleFilter{}, fmt.Errorf("cache: sample offset %d out of range [0,%d)", offset, stride)
	}
	return SampleFilter{Mask: uint64(stride - 1), Match: uint64(offset)}, nil
}

// Enabled reports whether the filter excludes anything.
func (f SampleFilter) Enabled() bool { return f.Mask != 0 }

// Stride returns the sampling stride (1 when disabled): one in Stride set
// constituencies is simulated.
func (f SampleFilter) Stride() int { return int(f.Mask) + 1 }

// Sampled reports whether block falls in a sampled constituency. Always
// true for the zero-value (disabled) filter.
func (f SampleFilter) Sampled(block uint64) bool { return block&f.Mask == f.Match }

// ScaleShared scales the capacity of a fully-associative structure shared
// across sets (i-Filter, victim cache) down to the sampled fraction of the
// traffic it sees, floored at 2 entries so the structure stays functional.
// Under sampling such a structure receives 1/stride of its full-run
// arrival rate; an unscaled capacity would hold each entry stride times
// longer (in accesses) than the full run does and inflate its hit rate,
// while capacity/stride preserves the full run's residency window.
func (f SampleFilter) ScaleShared(capacity int) int {
	if !f.Enabled() || capacity <= 0 {
		return capacity
	}
	scaled := capacity / f.Stride()
	if scaled < 2 {
		scaled = 2
	}
	if scaled > capacity {
		scaled = capacity
	}
	return scaled
}
