package api

import "encoding/json"

// --- Coordinator/worker protocol (internal/distrib) ---

// WorkerConfig is the run configuration a coordinator advertises at
// GET /api/config: everything a stateless worker needs to build a Suite
// whose results are byte-identical to the coordinator's own.
type WorkerConfig struct {
	N             int      `json:"n"`
	Apps          []string `json:"apps,omitempty"`
	SampleSets    int      `json:"sample_sets,omitempty"`
	SampleOffset  int      `json:"sample_offset,omitempty"`
	GangSize      int      `json:"gang_size,omitempty"`
	GangWindow    int      `json:"gang_window,omitempty"`
	PrepareWindow int      `json:"prepare_window,omitempty"`
	// StoreURL is the shared blob store every worker must point its
	// cache and artifact dirs at.
	StoreURL string `json:"store_url,omitempty"`
}

// Batch is one leased unit of remote work: same-app cells sized to run
// as a single gang.
type Batch struct {
	ID    int64  `json:"id"`
	App   string `json:"app"`
	Cells []Cell `json:"cells"`
}

// ClaimRequest asks the coordinator for work, reporting the worker's
// instantaneous pool occupancy so steals are sized against real load.
type ClaimRequest struct {
	Worker  string `json:"worker"`
	Running int    `json:"running,omitempty"`
	Idle    int    `json:"idle,omitempty"`
	Queued  int    `json:"queued,omitempty"`
	Want    int    `json:"want,omitempty"`
}

// ClaimResponse carries zero or more leased batches. Done tells the
// worker the run is over; WaitMillis is the suggested poll backoff when
// no work was available.
type ClaimResponse struct {
	Batches    []Batch `json:"batches,omitempty"`
	Done       bool    `json:"done,omitempty"`
	WaitMillis int64   `json:"wait_millis,omitempty"`
}

// CellResult reports one cell's outcome within a completed batch. A nil
// Error means the result was published to the shared store; otherwise
// Error.Transient drives the coordinator's requeue-vs-fail decision.
type CellResult struct {
	Cell  Cell   `json:"cell"`
	Error *Error `json:"error,omitempty"`
}

// CompleteRequest reports a finished batch under the lease it was
// claimed with; stale BatchIDs (lease expired, batch requeued) are
// ignored by the coordinator.
type CompleteRequest struct {
	Worker  string       `json:"worker"`
	BatchID int64        `json:"batch_id"`
	Results []CellResult `json:"results"`
}

// --- acic-serve query API ---

// CellOutcome is one grid cell's answer in a CellsResponse: the
// content-addressed cache key the result lives under, and either the
// raw result object or a typed error.
type CellOutcome struct {
	Cell   Cell            `json:"cell"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
}

// CellsResponse answers GET /v1/cells. ETag repeats the response ETag
// header so programmatic clients that strip headers keep it.
type CellsResponse struct {
	ETag  string        `json:"etag"`
	Cells []CellOutcome `json:"cells"`
}

// ExperimentInfo describes one registry entry at GET /v1/experiments.
type ExperimentInfo struct {
	Slug        string `json:"slug"`
	Description string `json:"description"`
}

// ExperimentsResponse answers GET /v1/experiments.
type ExperimentsResponse struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

// Occupancy is a pool occupancy snapshot.
type Occupancy struct {
	Running int `json:"running"`
	Idle    int `json:"idle"`
	Queued  int `json:"queued"`
}

// GangStats summarizes gang packing since startup.
type GangStats struct {
	Gangs    int64 `json:"gangs"`
	Cells    int64 `json:"cells"`
	Mixed    int64 `json:"mixed"`
	MaxWidth int   `json:"max_width"`
	Window   int   `json:"window"`
}

// Stats answers GET /v1/stats: the serve daemon's configuration echo
// plus engine counters. Faults is the experiments.FaultStats object
// (kept raw here so this package stays import-free).
type Stats struct {
	Version           string          `json:"version"`
	N                 int             `json:"n"`
	Apps              []string        `json:"apps,omitempty"`
	SampleSets        int             `json:"sample_sets,omitempty"`
	GangSize          int             `json:"gang_size,omitempty"`
	Requests          int64           `json:"requests"`
	CellsComputed     int             `json:"cells_computed"`
	CellsFromCache    int             `json:"cells_from_cache"`
	WorkloadsPrepared int             `json:"workloads_prepared"`
	Occupancy         Occupancy       `json:"occupancy"`
	Gangs             GangStats       `json:"gangs"`
	Faults            json.RawMessage `json:"faults,omitempty"`
	BreakersOpen      int             `json:"breakers_open"`
	UptimeSeconds     float64         `json:"uptime_seconds"`
}
