package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestEnvelopeShape pins the wire spelling of the error envelope: the
// body is exactly {"error":{...}} with snake_case code strings. Clients
// across the repo (worker protocol, CI curl scripts) match on these
// bytes, so a drift here is a breaking API change.
func TestEnvelopeShape(t *testing.T) {
	data, err := json.Marshal(Envelope{Err: &Error{
		Code: CodeNotFound, Message: "no such figure", Cell: "a|b|c",
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"not_found","message":"no such figure","cell":"a|b|c"}}`
	if string(data) != want {
		t.Errorf("envelope = %s, want %s", data, want)
	}
}

// TestWriteError pins status, content type, and body round-trip through
// the helper every handler uses.
func TestWriteError(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusServiceUnavailable, &Error{
		Code: CodeCircuitOpen, Message: "cell tripped", Transient: true,
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err == nil || env.Err.Code != CodeCircuitOpen || !env.Err.Transient {
		t.Errorf("round-trip envelope = %+v", env.Err)
	}
}

// TestReadErrorEnvelope: a proper envelope comes back verbatim.
func TestReadErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusBadRequest, &Error{Code: CodeBadRequest, Message: "missing app"})
	e := ReadError(rec.Result())
	if e.Code != CodeBadRequest || e.Message != "missing app" {
		t.Errorf("ReadError = %+v", e)
	}
}

// TestReadErrorFallback: non-envelope bodies (pre-envelope servers,
// proxy error pages) degrade to a status-classified Error, with 5xx
// marked transient.
func TestReadErrorFallback(t *testing.T) {
	cases := []struct {
		status        int
		body          string
		wantCode      string
		wantTransient bool
	}{
		{http.StatusNotFound, "404 page not found\n", CodeNotFound, false},
		{http.StatusBadRequest, "bad entry name\n", CodeBadRequest, false},
		{http.StatusMethodNotAllowed, "nope", CodeMethodNotAllowed, false},
		{http.StatusBadGateway, "<html>proxy sad</html>", CodeInternal, true},
		{http.StatusTeapot, "{}", CodeInternal, false},
	}
	for _, tc := range cases {
		resp := &http.Response{
			StatusCode: tc.status,
			Status:     http.StatusText(tc.status),
			Body:       readCloser(tc.body),
		}
		e := ReadError(resp)
		if e.Code != tc.wantCode || e.Transient != tc.wantTransient {
			t.Errorf("status %d body %q: got (%s, transient=%v), want (%s, %v)",
				tc.status, tc.body, e.Code, e.Transient, tc.wantCode, tc.wantTransient)
		}
	}
}

func readCloser(s string) *readCloserT { return &readCloserT{Reader: strings.NewReader(s)} }

type readCloserT struct{ *strings.Reader }

func (r *readCloserT) Close() error { return nil }

// TestErrorImplementsError: protocol layers hand *Error up error call
// chains; make sure the formatting carries the cell attribution.
func TestErrorImplementsError(t *testing.T) {
	var err error = &Error{Code: CodeCellError, Message: "boom", Cell: "app|s|pf"}
	if !strings.Contains(err.Error(), "cell_error") || !strings.Contains(err.Error(), "app|s|pf") {
		t.Errorf("Error() = %q", err.Error())
	}
}

// TestCellString pins the canonical cell spelling shared with
// experiments.Cell.String — the join the breaker and ETag keys use.
func TestCellString(t *testing.T) {
	c := Cell{App: "web-search", Scheme: "acic", Prefetcher: "fdp"}
	if got := c.String(); got != "web-search|acic|fdp" {
		t.Errorf("String() = %q", got)
	}
}
