// Package api is the versioned JSON wire contract shared by every HTTP
// surface of the system: the acic-serve query daemon, the distributed
// coordinator/worker protocol (internal/distrib), and the engine's blob
// store handler. Before this package each of those spoke its own ad-hoc
// JSON — three error shapes, three spellings of a grid cell — and a
// client could not tell a transient failure from a deterministic one
// without string matching. Now there is exactly one error envelope
// (Envelope), one cell spelling (Cell), and one path prefix (Prefix)
// for the query API, and the transient/deterministic split of the
// engine's error taxonomy (engine.CellError, DESIGN.md §13) crosses the
// wire as a typed field instead of folklore.
//
// The package deliberately imports nothing from the rest of the module:
// wire types must be constructible by any layer — the engine below the
// experiments suite as much as the daemons above it — without import
// cycles.
//
// Versioning policy (DESIGN.md §15): the query API lives under /v1/.
// Additive changes (new fields, new endpoints, new error codes) happen
// in place — clients must ignore unknown fields and codes. Any change
// that alters the meaning of an existing field, removes one, or changes
// an endpoint's semantics bumps Version and mounts the new contract
// under the new prefix; /v1/ then either co-serves or disappears, but is
// never silently redefined.
package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Version is the current query-API version; Prefix is the path prefix
// every versioned endpoint lives under.
const (
	Version = "v1"
	Prefix  = "/" + Version + "/"
)

// Error codes. The set is open — clients must treat an unknown code like
// CodeInternal — but these spellings are stable: tests pin them, and a
// renamed code is a breaking change under the versioning policy.
const (
	// CodeBadRequest: the request itself is malformed — unparseable
	// body, missing or invalid parameter, malformed store entry name.
	CodeBadRequest = "bad_request"
	// CodeNotFound: no such endpoint, experiment, cell grid member, or
	// store entry.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the endpoint exists but not for this verb.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeCellError: a simulation cell failed deterministically (the
	// engine's non-transient CellError class) — retrying will not help.
	CodeCellError = "cell_error"
	// CodeTransient: the failure is environmental (worker death, store
	// hiccup, injected fault past the retry budget) and a retry has a
	// real chance of succeeding.
	CodeTransient = "transient"
	// CodeCircuitOpen: the per-cell circuit breaker has tripped on
	// consecutive deterministic failures; the server refuses to re-run
	// the cell until the cooldown admits a probe.
	CodeCircuitOpen = "circuit_open"
	// CodeFaultBudget: serving the request consumed more fault-recovery
	// work than its budget allows; the infrastructure is degraded and
	// the client should back off and retry.
	CodeFaultBudget = "fault_budget_exhausted"
	// CodeStoreWrite: the blob store could not stage or publish a write.
	CodeStoreWrite = "store_write_failed"
	// CodeInternal: anything the server cannot classify better.
	CodeInternal = "internal"
)

// Error is the one JSON error shape every surface speaks, wrapped in
// Envelope on the wire. It implements error so protocol layers can hand
// it straight up their call chains.
type Error struct {
	// Code is one of the Code* constants (or a future addition).
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
	// Transient carries the engine's retryable/deterministic split
	// across the wire: true means a retry has a real chance.
	Transient bool `json:"transient,omitempty"`
	// Cell attributes the failure to a grid cell ("app|scheme|pf") when
	// one is to blame.
	Cell string `json:"cell,omitempty"`
}

func (e *Error) Error() string {
	if e.Cell != "" {
		return fmt.Sprintf("api: %s: %s: %s", e.Code, e.Cell, e.Message)
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// Envelope wraps Error on the wire: every non-2xx JSON response body is
// exactly {"error": {...}}.
type Envelope struct {
	Err *Error `json:"error"`
}

// Cell is the wire form of one simulation grid cell. It mirrors
// experiments.Cell (which cannot be used directly — this package sits
// below the experiments layer) and is comparable, so protocol code can
// key maps by it.
type Cell struct {
	App        string `json:"app"`
	Scheme     string `json:"scheme"`
	Prefetcher string `json:"prefetcher"`
}

func (c Cell) String() string { return c.App + "|" + c.Scheme + "|" + c.Prefetcher }

// Health is the /healthz body (serve and store handler alike).
type Health struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

// Ack acknowledges a side-effecting request with no other payload
// (store quarantine).
type Ack struct {
	Status string `json:"status"`
}

// WriteJSON writes v as the response body with the given status and the
// JSON content type. Encoding errors are unreportable at this point
// (the status line is gone) and deliberately ignored.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes the error envelope with the given status.
func WriteError(w http.ResponseWriter, status int, e *Error) {
	WriteJSON(w, status, Envelope{Err: e})
}

// ReadError extracts the error envelope from a non-2xx response,
// consuming (a bounded prefix of) the body. A body that is not an
// envelope — a proxy's HTML error page, a pre-envelope server — degrades
// to a synthesized Error classified by status code, so callers can rely
// on a non-nil, typed result either way.
func ReadError(resp *http.Response) *Error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Err != nil && env.Err.Code != "" {
		return env.Err
	}
	e := &Error{Code: CodeInternal, Message: resp.Status}
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		e.Code = CodeBadRequest
	case resp.StatusCode == http.StatusNotFound:
		e.Code = CodeNotFound
	case resp.StatusCode == http.StatusMethodNotAllowed:
		e.Code = CodeMethodNotAllowed
	case resp.StatusCode >= 500:
		e.Transient = true
	}
	return e
}
