package experiments

import (
	"acic/internal/core"
	"acic/internal/icache"
	"acic/internal/policy"
	"acic/internal/stats"
)

// AblationCSHRDefault evaluates the three readings of the paper's rule for
// CSHR entries evicted before resolution ("benefit of the doubt to the
// i-Filter victim"): train nothing (this repo's default — the Fig 8
// datapath only updates the tables from matched entries), train the victim
// as re-accessed sooner (the literal prose), or train it as later. It
// reports gmean speedup and average MPKI reduction over the baseline.
func AblationCSHRDefault(s *Suite) *stats.Table {
	t := &stats.Table{Header: []string{"evict-training", "gmean speedup", "avg MPKI reduction"}}
	modes := []struct {
		name string
		mode core.EvictTraining
	}{
		{"none (default)", core.EvictTrainNone},
		{"admit (paper prose)", core.EvictTrainAdmit},
		{"drop", core.EvictTrainDrop},
	}
	for _, m := range modes {
		var speedups, reductions []float64
		for _, app := range s.AppNames() {
			w := s.Workload(app)
			cc := core.DefaultConfig()
			cc.EvictTrain = m.mode
			sub := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU(), ACIC: &cc})
			res := RunSubsystem(w, sub, DefaultOptions())
			base := s.Result(app, Baseline, "fdp")
			speedups = append(speedups, Speedup(base, res))
			reductions = append(reductions, MPKIReduction(base, res))
		}
		t.AddRow(m.name, stats.Geomean(speedups), stats.Percent(stats.Mean(reductions)))
	}
	return t
}
