package experiments

import (
	"acic/internal/core"
	"acic/internal/icache"
	"acic/internal/policy"
	"acic/internal/stats"
)

// AblationCSHRDefault evaluates the three readings of the paper's rule for
// CSHR entries evicted before resolution ("benefit of the doubt to the
// i-Filter victim"): train nothing (this repo's default — the Fig 8
// datapath only updates the tables from matched entries), train the victim
// as re-accessed sooner (the literal prose), or train it as later. It
// reports gmean speedup and average MPKI reduction over the baseline.
func AblationCSHRDefault(s *Suite) (*stats.Table, error) {
	modes := []struct {
		name string
		mode core.EvictTraining
	}{
		{"none (default)", core.EvictTrainNone},
		{"admit (paper prose)", core.EvictTrainAdmit},
		{"drop", core.EvictTrainDrop},
	}
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, []string{Baseline}, "fdp")...); err != nil {
		return nil, err
	}
	// One instrumented run per mode × app, fanned out on the worker pool.
	speedups := make([][]float64, len(modes))
	reductions := make([][]float64, len(modes))
	for i := range modes {
		speedups[i] = make([]float64, len(apps))
		reductions[i] = make([]float64, len(apps))
	}
	err := s.eachCell(len(modes), len(apps), func(mi, ai int) error {
		m, app := modes[mi], apps[ai]
		w := s.wl(app)
		cc := core.DefaultConfig()
		cc.EvictTrain = m.mode
		sub := icache.MustNew(icache.Config{Sets: icache.DefaultSets, Ways: icache.DefaultWays, Policy: policy.NewLRU(), ACIC: &cc, Sample: s.sampleFilter(app)})
		res, err := RunSubsystem(w, sub, s.options(app))
		if err != nil {
			return err
		}
		base := s.res(app, Baseline, "fdp")
		speedups[mi][ai] = Speedup(base, res)
		reductions[mi][ai] = MPKIReduction(base, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"evict-training", "gmean speedup", "avg MPKI reduction"}}
	for mi, m := range modes {
		t.AddRow(m.name, stats.Geomean(speedups[mi]), stats.Percent(stats.Mean(reductions[mi])))
	}
	return t, nil
}
