package experiments

import (
	"fmt"

	"acic/internal/analysis"
	"acic/internal/stats"
	"acic/internal/trace"
)

// The experiments in this file go beyond the paper's figures: the
// future-work extension it sketches (§VI, prefetch-aware ACIC), the extra
// baselines the d-cache literature would ask about (DIP family, EAF), the
// capacity-headroom question of §IV-F quantified as a full miss-ratio
// curve, and simple-prefetcher baselines that bracket FDP and entangling.

// ExtensionSchemes are the additional baselines (beyond Fig 10) this
// reproduction implements.
var ExtensionSchemes = []string{"lip", "bip", "dip", "eaf", "plru", "ripple-lite", "acic", "acic-pfaware"}

// ExtendedComparison reports speedup and MPKI reduction of the extension
// schemes over the LRU+FDP baseline.
func (s *Suite) ExtendedComparison() *stats.Table {
	t := &stats.Table{Header: []string{"scheme", "gmean speedup", "avg MPKI reduction"}}
	for _, sch := range ExtensionSchemes {
		var sp, red []float64
		for _, app := range s.AppNames() {
			sp = append(sp, s.SpeedupOver(app, Baseline, sch, "fdp"))
			red = append(red, s.MPKIReductionOver(app, Baseline, sch, "fdp"))
		}
		t.AddRow(sch, stats.Geomean(sp), stats.Percent(stats.Mean(red)))
	}
	return t
}

// PrefetchAware compares baseline ACIC against the prefetch-aware variant
// under both the FDP and entangling platforms (the paper's §VI asks
// exactly this question).
func (s *Suite) PrefetchAware() *stats.Table {
	t := &stats.Table{Header: []string{"platform", "acic speedup", "pf-aware speedup", "acic MPKI red.", "pf-aware MPKI red."}}
	for _, pf := range []string{"fdp", "entangling"} {
		var s1, s2, r1, r2 []float64
		for _, app := range s.AppNames() {
			s1 = append(s1, s.SpeedupOver(app, Baseline, "acic", pf))
			s2 = append(s2, s.SpeedupOver(app, Baseline, "acic-pfaware", pf))
			r1 = append(r1, s.MPKIReductionOver(app, Baseline, "acic", pf))
			r2 = append(r2, s.MPKIReductionOver(app, Baseline, "acic-pfaware", pf))
		}
		t.AddRow(pf, stats.Geomean(s1), stats.Geomean(s2),
			stats.Percent(stats.Mean(r1)), stats.Percent(stats.Mean(r2)))
	}
	return t
}

// HeadroomCapacities are the i-cache sizes (in 64B blocks) of the
// miss-ratio curve: 16KB..256KB around the 32KB baseline.
var HeadroomCapacities = []int{256, 512, 576, 1024, 2048, 4096}

// Headroom reports the fully-associative LRU miss-ratio curve per app.
// The 512→576 step is the Fig 10 "36KB L1i" alternative; a flat step there
// with a deep drop only at much larger sizes is the structural reason
// discretion (ACIC) beats capacity (the paper's §IV-F argument).
func (s *Suite) Headroom() *stats.Table {
	hdr := []string{"app"}
	for _, c := range HeadroomCapacities {
		hdr = append(hdr, fmt.Sprintf("%dKB", c*trace.BlockSize/1024))
	}
	t := &stats.Table{Header: hdr}
	for _, app := range s.AppNames() {
		w := s.Workload(app)
		curve := analysis.MissRatioCurve(w.Blocks, HeadroomCapacities)
		cells := []any{app}
		for _, m := range curve {
			cells = append(cells, stats.Percent(m))
		}
		t.AddRow(cells...)
	}
	return t
}

// PrefetcherBaselines reports the LRU baseline's MPKI and IPC under each
// implemented prefetcher, bracketing the platforms of Figs 10 and 20.
func (s *Suite) PrefetcherBaselines() *stats.Table {
	t := &stats.Table{Header: []string{"prefetcher", "avg MPKI", "gmean IPC"}}
	for _, pf := range []string{"none", "next-line", "stream", "entangling", "fdp"} {
		var mpki, ipc []float64
		for _, app := range s.AppNames() {
			res := s.Result(app, Baseline, pf)
			mpki = append(mpki, res.MPKI())
			ipc = append(ipc, res.IPC())
		}
		t.AddRow(pf, fmt.Sprintf("%.2f", stats.Mean(mpki)), stats.Geomean(ipc))
	}
	return t
}
