package experiments

import (
	"fmt"

	"acic/internal/analysis"
	"acic/internal/stats"
	"acic/internal/trace"
)

// The experiments in this file go beyond the paper's figures: the
// future-work extension it sketches (§VI, prefetch-aware ACIC), the extra
// baselines the d-cache literature would ask about (DIP family, EAF), the
// capacity-headroom question of §IV-F quantified as a full miss-ratio
// curve, and simple-prefetcher baselines that bracket FDP and entangling.

// ExtensionSchemes are the additional baselines (beyond Fig 10) this
// reproduction implements.
var ExtensionSchemes = []string{"lip", "bip", "dip", "eaf", "plru", "ripple-lite", "acic", "acic-pfaware"}

// ExtendedComparison reports speedup and MPKI reduction of the extension
// schemes over the LRU+FDP baseline.
func (s *Suite) ExtendedComparison() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, append([]string{Baseline}, ExtensionSchemes...), "fdp")...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"scheme", "gmean speedup", "avg MPKI reduction"}}
	for _, sch := range ExtensionSchemes {
		var sp, red []float64
		for _, app := range apps {
			sp = append(sp, s.speedupOver(app, Baseline, sch, "fdp"))
			red = append(red, s.mpkiReductionOver(app, Baseline, sch, "fdp"))
		}
		t.AddRow(sch, stats.Geomean(sp), stats.Percent(stats.Mean(red)))
	}
	return t, nil
}

// PrefetchAware compares baseline ACIC against the prefetch-aware variant
// under both the FDP and entangling platforms (the paper's §VI asks
// exactly this question).
func (s *Suite) PrefetchAware() (*stats.Table, error) {
	apps := s.AppNames()
	platforms := []string{"fdp", "entangling"}
	var plan []Cell
	for _, pf := range platforms {
		plan = append(plan, CrossCells(apps, []string{Baseline, "acic", "acic-pfaware"}, pf)...)
	}
	if err := s.Require(plan...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"platform", "acic speedup", "pf-aware speedup", "acic MPKI red.", "pf-aware MPKI red."}}
	for _, pf := range platforms {
		var s1, s2, r1, r2 []float64
		for _, app := range apps {
			s1 = append(s1, s.speedupOver(app, Baseline, "acic", pf))
			s2 = append(s2, s.speedupOver(app, Baseline, "acic-pfaware", pf))
			r1 = append(r1, s.mpkiReductionOver(app, Baseline, "acic", pf))
			r2 = append(r2, s.mpkiReductionOver(app, Baseline, "acic-pfaware", pf))
		}
		t.AddRow(pf, stats.Geomean(s1), stats.Geomean(s2),
			stats.Percent(stats.Mean(r1)), stats.Percent(stats.Mean(r2)))
	}
	return t, nil
}

// HeadroomCapacities are the i-cache sizes (in 64B blocks) of the
// miss-ratio curve: 16KB..256KB around the 32KB baseline.
var HeadroomCapacities = []int{256, 512, 576, 1024, 2048, 4096}

// Headroom reports the fully-associative LRU miss-ratio curve per app.
// The 512→576 step is the Fig 10 "36KB L1i" alternative; a flat step there
// with a deep drop only at much larger sizes is the structural reason
// discretion (ACIC) beats capacity (the paper's §IV-F argument).
func (s *Suite) Headroom() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.PrepareAll(apps...); err != nil {
		return nil, err
	}
	curves := make([][]float64, len(apps))
	err := s.each(len(apps), func(i int) error {
		w := s.wl(apps[i])
		curves[i] = analysis.SampledMissRatioCurve(w.Blocks, HeadroomCapacities, s.sampleFilter(apps[i]))
		return nil
	})
	if err != nil {
		return nil, err
	}
	hdr := []string{"app"}
	for _, c := range HeadroomCapacities {
		hdr = append(hdr, fmt.Sprintf("%dKB", c*trace.BlockSize/1024))
	}
	t := &stats.Table{Header: hdr}
	for i, app := range apps {
		cells := []any{app}
		for _, m := range curves[i] {
			cells = append(cells, stats.Percent(m))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// PrefetcherBaselines reports the LRU baseline's MPKI and IPC under each
// implemented prefetcher, bracketing the platforms of Figs 10 and 20.
func (s *Suite) PrefetcherBaselines() (*stats.Table, error) {
	apps := s.AppNames()
	platforms := Prefetchers()
	var plan []Cell
	for _, pf := range platforms {
		plan = append(plan, CrossCells(apps, []string{Baseline}, pf)...)
	}
	if err := s.Require(plan...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"prefetcher", "avg MPKI", "gmean IPC"}}
	for _, pf := range platforms {
		var mpki, ipc []float64
		for _, app := range apps {
			res := s.res(app, Baseline, pf)
			mpki = append(mpki, res.MPKI())
			ipc = append(ipc, res.IPC())
		}
		t.AddRow(pf, fmt.Sprintf("%.2f", stats.Mean(mpki)), stats.Geomean(ipc))
	}
	return t, nil
}
