package experiments

import (
	"fmt"
	"math"

	"acic/internal/analysis"
	"acic/internal/core"
	"acic/internal/icache"
	"acic/internal/policy"
	"acic/internal/stats"
)

// Fig1a returns the per-app reuse-distance distributions at instruction
// granularity (buckets 0, 1-16, 16-512, 512-1024, 1024-10000, >10000).
func (s *Suite) Fig1a() *stats.Table {
	t := &stats.Table{Header: []string{"app", "0", "1-16", "16-512", "512-1024", "1024-10000", ">10000"}}
	for _, app := range s.AppNames() {
		w := s.Workload(app)
		refs := analysis.InstBlockRefs(w.Trace)
		dists := analysis.ReuseDistances(refs)
		fr := analysis.Distribution(dists, analysis.Fig1aEdges)
		t.AddRow(app, stats.Percent(fr[0]), stats.Percent(fr[1]), stats.Percent(fr[2]),
			stats.Percent(fr[3]), stats.Percent(fr[4]), stats.Percent(fr[5]))
	}
	return t
}

// Fig1b returns the Markov chain of reuse-distance buckets for the named
// app (media-streaming in the paper).
func (s *Suite) Fig1b(app string) *stats.Table {
	w := s.Workload(app)
	refs := analysis.InstBlockRefs(w.Trace)
	chain := analysis.MarkovChain(refs, analysis.Fig1aEdges)
	labels := []string{"0", "1-16", "16-512", "512-1024", "1024-10000", ">10000"}
	t := &stats.Table{Header: append([]string{"from\\to"}, labels...)}
	for i, row := range chain {
		cells := make([]any, 0, len(row)+1)
		cells = append(cells, labels[i])
		for _, p := range row {
			cells = append(cells, fmt.Sprintf("%.3f", p))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig3a compares always-insert i-Filter, access-count bypass, and OPT
// replacement speedups over the LRU+FDP baseline.
func (s *Suite) Fig3a() *stats.Table {
	t := &stats.Table{Header: []string{"app", "always-insert", "access-count", "OPT"}}
	var a1, a2, a3 []float64
	for _, app := range s.AppNames() {
		v1 := s.SpeedupOver(app, Baseline, "ifilter", "fdp")
		v2 := s.SpeedupOver(app, Baseline, "access-count", "fdp")
		v3 := s.SpeedupOver(app, Baseline, "opt", "fdp")
		a1, a2, a3 = append(a1, v1), append(a2, v2), append(a3, v3)
		t.AddRow(app, v1, v2, v3)
	}
	t.AddRow("gmean", stats.Geomean(a1), stats.Geomean(a2), stats.Geomean(a3))
	return t
}

// Fig3bEdges are the signed reuse-delta bucket edges of Fig 3b.
var Fig3bEdges = []float64{-10000, -1000, -100, -10, 0, 10, 100, 1000, 10000}

// Fig3b histograms, for the named app, the difference between the next-use
// distance of each block moving from the i-Filter into the i-cache and that
// of the block OPT would evict from the target set. Positive deltas are
// wrong insertions (the paper measures 38.38% for media streaming).
func (s *Suite) Fig3b(app string) (*stats.Histogram, float64) {
	w := s.Workload(app)
	cc := core.DefaultConfig()
	cc.Variant = core.VariantAlwaysAdmit
	sub := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU(), ACIC: &cc, NextUse: w.Oracle.Func()})
	h := stats.NewHistogram(Fig3bEdges...)
	var wrong, total uint64
	sub.ACIC().OnDecision = func(d core.Decision) {
		dIn := clampDist(w.Oracle.NextUse(d.Victim, d.AccessIdx) - d.AccessIdx)
		// The outgoing block OPT would pick: the set line with the furthest
		// next use at decision time.
		set := sub.L1().SetIndex(d.Victim)
		dOut := float64(0)
		for _, ln := range sub.L1().Lines(set) {
			if !ln.Valid {
				continue
			}
			if v := clampDist(w.Oracle.NextUse(ln.Block, d.AccessIdx) - d.AccessIdx); v > dOut {
				dOut = v
			}
		}
		delta := dIn - dOut
		h.Add(delta)
		total++
		if delta > 0 {
			wrong++
		}
	}
	RunSubsystem(w, sub, DefaultOptions())
	frac := 0.0
	if total > 0 {
		frac = float64(wrong) / float64(total)
	}
	return h, frac
}

func clampDist(d int64) float64 {
	if d >= cacheNever {
		return 1e12
	}
	return float64(d)
}

const cacheNever = int64(1) << 61

// Fig6Edges bucket CSHR entry lifetimes (in set-local comparisons).
var Fig6Edges = []float64{50, 100, 150, 200, 250, 300, 350, 400}

// Fig6 histograms the number of comparisons during CSHR entry lifetimes for
// the named app; unresolved (evicted) entries land in the overflow bucket,
// mirroring the paper's "InF" bar.
func (s *Suite) Fig6(app string) *stats.Histogram {
	w := s.Workload(app)
	cc := core.DefaultConfig()
	// Measure lifetimes with an effectively unbounded CSHR so that "would
	// never resolve" is separated from "evicted at 256 entries", as the
	// paper's incremental-capacity study does.
	cc.CSHR.Ways = 4096
	sub := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU(), ACIC: &cc})
	h := stats.NewHistogram(Fig6Edges...)
	sub.ACIC().AgeSamples = func(age int64, resolved bool) {
		if !resolved {
			age = math.MaxInt32 // overflow bucket
		}
		h.Add(float64(age))
	}
	RunSubsystem(w, sub, DefaultOptions())
	// Entries still unresolved at the end of the run count as InF.
	if occ := sub.ACIC().CSHR.Occupancy(); occ > 0 {
		for i := 0; i < occ; i++ {
			h.Add(math.MaxInt32)
		}
	}
	return h
}

// Fig10 reports per-app speedups of every Fig 10 scheme over the LRU+FDP
// baseline, with a trailing gmean row.
func (s *Suite) Fig10() *stats.Table { return s.schemeTable(Fig10Schemes, "fdp", true) }

// Fig11 reports per-app MPKI reductions of every Fig 10 scheme over the
// LRU+FDP baseline, with a trailing average row.
func (s *Suite) Fig11() *stats.Table { return s.schemeTable(Fig10Schemes, "fdp", false) }

func (s *Suite) schemeTable(schemes []string, pf string, speedup bool) *stats.Table {
	t := &stats.Table{Header: append([]string{"app"}, schemes...)}
	sums := make([][]float64, len(schemes))
	for _, app := range s.AppNames() {
		cells := make([]any, 0, len(schemes)+1)
		cells = append(cells, app)
		for i, sch := range schemes {
			var v float64
			if speedup {
				v = s.SpeedupOver(app, Baseline, sch, pf)
			} else {
				v = s.MPKIReductionOver(app, Baseline, sch, pf)
			}
			sums[i] = append(sums[i], v)
			if speedup {
				cells = append(cells, fmt.Sprintf("%.4f", v))
			} else {
				cells = append(cells, stats.Percent(v))
			}
		}
		t.AddRow(cells...)
	}
	foot := make([]any, 0, len(schemes)+1)
	if speedup {
		foot = append(foot, "gmean")
		for i := range schemes {
			foot = append(foot, fmt.Sprintf("%.4f", stats.Geomean(sums[i])))
		}
	} else {
		foot = append(foot, "avg")
		for i := range schemes {
			foot = append(foot, stats.Percent(stats.Mean(sums[i])))
		}
	}
	t.AddRow(foot...)
	return t
}

// Fig12aRanges are the [0,bound) next-use windows of Fig 12a; 0 means no
// bound ("[0,InF)").
var Fig12aRanges = []int64{0, 2048, 1024, 512, 256, 128}

// Fig12a measures ACIC bypass accuracy over decisions whose nearer next-use
// distance falls inside each window, averaged across apps.
func (s *Suite) Fig12a() *stats.Table {
	t := &stats.Table{Header: []string{"range", "avg accuracy"}}
	correct := make([]float64, len(Fig12aRanges))
	counts := make([]float64, len(Fig12aRanges))
	for _, app := range s.AppNames() {
		w := s.Workload(app)
		decisions := s.collectDecisions(app)
		for _, d := range decisions {
			dIn := w.Oracle.NextUse(d.Victim, d.AccessIdx) - d.AccessIdx
			dOut := w.Oracle.NextUse(d.Contender, d.AccessIdx) - d.AccessIdx
			ideal := dIn < dOut
			near := dIn
			if dOut < near {
				near = dOut
			}
			for ri, bound := range Fig12aRanges {
				if bound != 0 && near >= bound {
					continue
				}
				counts[ri]++
				if ideal == d.Admitted {
					correct[ri]++
				}
			}
		}
	}
	for ri, bound := range Fig12aRanges {
		label := "[0,InF)"
		if bound != 0 {
			label = fmt.Sprintf("[0,%d)", bound)
		}
		acc := 0.0
		if counts[ri] > 0 {
			acc = correct[ri] / counts[ri]
		}
		t.AddRow(label, stats.Percent(acc))
	}
	return t
}

// decisionsCache memoizes instrumented ACIC runs per app.
func (s *Suite) collectDecisions(app string) []core.Decision {
	w := s.Workload(app)
	var out []core.Decision
	cc := core.DefaultConfig()
	sub := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU(), ACIC: &cc})
	sub.ACIC().OnDecision = func(d core.Decision) { out = append(out, d) }
	RunSubsystem(w, sub, DefaultOptions())
	return out
}

// Fig12b compares the MPKI reduction of a 60%-admit random bypass against
// ACIC, per app.
func (s *Suite) Fig12b() *stats.Table {
	t := &stats.Table{Header: []string{"app", "random-60%", "acic"}}
	var r1, r2 []float64
	for _, app := range s.AppNames() {
		v1 := s.MPKIReductionOver(app, Baseline, "random60", "fdp")
		v2 := s.MPKIReductionOver(app, Baseline, "acic", "fdp")
		r1, r2 = append(r1, v1), append(r2, v2)
		t.AddRow(app, stats.Percent(v1), stats.Percent(v2))
	}
	t.AddRow("avg", stats.Percent(stats.Mean(r1)), stats.Percent(stats.Mean(r2)))
	return t
}

// Fig13 reports the percentage of i-Filter victims ACIC admits per app.
func (s *Suite) Fig13() *stats.Table {
	t := &stats.Table{Header: []string{"app", "admitted"}}
	for _, app := range s.AppNames() {
		w := s.Workload(app)
		cc := core.DefaultConfig()
		sub := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU(), ACIC: &cc})
		RunSubsystem(w, sub, DefaultOptions())
		t.AddRow(app, stats.Percent(sub.ACIC().AdmitFraction()))
	}
	return t
}

// Fig14 compares MPKI reduction with the 2-cycle parallel predictor update
// against instant updates, per app.
func (s *Suite) Fig14() *stats.Table {
	t := &stats.Table{Header: []string{"app", "parallel", "instant"}}
	var r1, r2 []float64
	for _, app := range s.AppNames() {
		v1 := s.MPKIReductionOver(app, Baseline, "acic", "fdp")
		v2 := s.MPKIReductionOver(app, Baseline, "acic-instant", "fdp")
		r1, r2 = append(r1, v1), append(r2, v2)
		t.AddRow(app, stats.Percent(v1), stats.Percent(v2))
	}
	t.AddRow("avg", stats.Percent(stats.Mean(r1)), stats.Percent(stats.Mean(r2)))
	return t
}

// Fig15Variants are the sensitivity configurations of Fig 15.
var Fig15Variants = []struct {
	Name   string
	Mutate func(*core.Config)
}{
	{"default", func(*core.Config) {}},
	{"2k-hrt", func(c *core.Config) { c.Predictor.HRTEntries = 2048 }},
	{"512-hrt", func(c *core.Config) { c.Predictor.HRTEntries = 512 }},
	{"8bit-history", func(c *core.Config) { c.Predictor.HistoryBits = 8 }},
	{"10bit-history", func(c *core.Config) { c.Predictor.HistoryBits = 10 }},
	{"2bit-counter", func(c *core.Config) { c.Predictor.CounterBits = 2 }},
	{"8bit-counter", func(c *core.Config) { c.Predictor.CounterBits = 8 }},
	{"8-slot-filter", func(c *core.Config) { c.FilterSlots = 8 }},
	{"32-slot-filter", func(c *core.Config) { c.FilterSlots = 32 }},
	{"7bit-cshr-tag", func(c *core.Config) { c.CSHR.TagBits = 7 }},
	{"27bit-cshr-tag", func(c *core.Config) { c.CSHR.TagBits = 27 }},
}

// Fig15 sweeps ACIC's key parameters and reports gmean speedup over the
// baseline for each variant.
func (s *Suite) Fig15() *stats.Table {
	t := &stats.Table{Header: []string{"variant", "gmean speedup"}}
	for _, v := range Fig15Variants {
		var speedups []float64
		for _, app := range s.AppNames() {
			w := s.Workload(app)
			cc := core.DefaultConfig()
			v.Mutate(&cc)
			sub := icache.MustNew(icache.Config{Sets: 64, Ways: 8, Policy: policy.NewLRU(), ACIC: &cc})
			res := RunSubsystem(w, sub, DefaultOptions())
			speedups = append(speedups, Speedup(s.Result(app, Baseline, "fdp"), res))
		}
		t.AddRow(v.Name, stats.Geomean(speedups))
	}
	return t
}

// Fig16 reports ACIC's speedup over the FDP baseline *equipped with an
// i-Filter* (the bypass policy's own contribution).
func (s *Suite) Fig16() *stats.Table {
	t := &stats.Table{Header: []string{"app", "speedup over lru+ifilter"}}
	var all []float64
	for _, app := range s.AppNames() {
		v := s.SpeedupOver(app, "ifilter", "acic", "fdp")
		all = append(all, v)
		t.AddRow(app, v)
	}
	t.AddRow("gmean", stats.Geomean(all))
	return t
}

// Fig17Schemes are the simplified designs of Fig 17.
var Fig17Schemes = []string{"acic", "acic-nofilter", "ifilter", "acic-global", "acic-bimodal"}

// Fig17 reports gmean speedups of ACIC's simplified designs.
func (s *Suite) Fig17() *stats.Table {
	t := &stats.Table{Header: []string{"design", "gmean speedup"}}
	for _, sch := range Fig17Schemes {
		var all []float64
		for _, app := range s.AppNames() {
			all = append(all, s.SpeedupOver(app, Baseline, sch, "fdp"))
		}
		t.AddRow(sch, stats.Geomean(all))
	}
	return t
}

// SPECSchemes are the policies compared on SPEC (Figs 18/19) and on the
// entangling baseline (Figs 20/21).
var SPECSchemes = []string{"ghrp", "l1i-36k", "acic", "opt"}

// Fig18 reports SPEC speedups of GHRP, the 36KB L1i, ACIC, and OPT.
func (s *Suite) Fig18() *stats.Table { return s.specTable(true) }

// Fig19 reports SPEC MPKI reductions.
func (s *Suite) Fig19() *stats.Table { return s.specTable(false) }

func (s *Suite) specTable(speedup bool) *stats.Table {
	t := &stats.Table{Header: append([]string{"app"}, SPECSchemes...)}
	sums := make([][]float64, len(SPECSchemes))
	for _, app := range s.SPECNames() {
		cells := []any{app}
		for i, sch := range SPECSchemes {
			var v float64
			if speedup {
				v = s.SpeedupOver(app, Baseline, sch, "fdp")
				cells = append(cells, fmt.Sprintf("%.4f", v))
			} else {
				v = s.MPKIReductionOver(app, Baseline, sch, "fdp")
				cells = append(cells, stats.Percent(v))
			}
			sums[i] = append(sums[i], v)
		}
		t.AddRow(cells...)
	}
	foot := []any{"gmean/avg"}
	for i := range SPECSchemes {
		if speedup {
			foot = append(foot, fmt.Sprintf("%.4f", stats.Geomean(sums[i])))
		} else {
			foot = append(foot, stats.Percent(stats.Mean(sums[i])))
		}
	}
	t.AddRow(foot...)
	return t
}

// Fig20 reports datacenter speedups over the entangling-prefetcher
// baseline.
func (s *Suite) Fig20() *stats.Table { return s.entTable(true) }

// Fig21 reports datacenter MPKI reductions over the entangling baseline.
func (s *Suite) Fig21() *stats.Table { return s.entTable(false) }

func (s *Suite) entTable(speedup bool) *stats.Table {
	t := &stats.Table{Header: append([]string{"app"}, SPECSchemes...)}
	sums := make([][]float64, len(SPECSchemes))
	for _, app := range s.AppNames() {
		cells := []any{app}
		for i, sch := range SPECSchemes {
			var v float64
			if speedup {
				v = s.SpeedupOver(app, Baseline, sch, "entangling")
				cells = append(cells, fmt.Sprintf("%.4f", v))
			} else {
				v = s.MPKIReductionOver(app, Baseline, sch, "entangling")
				cells = append(cells, stats.Percent(v))
			}
			sums[i] = append(sums[i], v)
		}
		t.AddRow(cells...)
	}
	foot := []any{"gmean/avg"}
	for i := range SPECSchemes {
		if speedup {
			foot = append(foot, fmt.Sprintf("%.4f", stats.Geomean(sums[i])))
		} else {
			foot = append(foot, stats.Percent(stats.Mean(sums[i])))
		}
	}
	t.AddRow(foot...)
	return t
}
