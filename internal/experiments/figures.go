package experiments

import (
	"fmt"
	"math"

	"acic/internal/analysis"
	"acic/internal/core"
	"acic/internal/icache"
	"acic/internal/policy"
	"acic/internal/stats"
)

// The renderers in this file all follow the engine's plan → execute →
// render shape: first declare the workloads and simulation cells the
// artifact needs (PrepareAll / Require, executed in parallel with
// deduplication), then render from completed results in paper order.
// Instrumented sweeps that attach callbacks to a subsystem cannot share
// plain cells; they fan out over the same worker pool via s.each, writing
// into index-addressed slots so rendering stays deterministic.

// Fig1a returns the per-app reuse-distance distributions at instruction
// granularity (buckets 0, 1-16, 16-512, 512-1024, 1024-10000, >10000).
func (s *Suite) Fig1a() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.PrepareAll(apps...); err != nil {
		return nil, err
	}
	rows := make([][6]float64, len(apps))
	err := s.each(len(apps), func(i int) error {
		w := s.wl(apps[i])
		refs := w.Prog.BlockRefs()
		dists := analysis.SampledReuseDistances(refs, s.sampleFilter(apps[i]))
		fr := analysis.Distribution(dists, analysis.Fig1aEdges)
		copy(rows[i][:], fr)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"app", "0", "1-16", "16-512", "512-1024", "1024-10000", ">10000"}}
	for i, app := range apps {
		fr := rows[i]
		t.AddRow(app, stats.Percent(fr[0]), stats.Percent(fr[1]), stats.Percent(fr[2]),
			stats.Percent(fr[3]), stats.Percent(fr[4]), stats.Percent(fr[5]))
	}
	return t, nil
}

// Fig1b returns the Markov chain of reuse-distance buckets for the named
// app (media-streaming in the paper).
func (s *Suite) Fig1b(app string) (*stats.Table, error) {
	w, err := s.Workload(app)
	if err != nil {
		return nil, err
	}
	refs := w.Prog.BlockRefs()
	chain := analysis.SampledMarkovChain(refs, analysis.Fig1aEdges, s.sampleFilter(app))
	labels := []string{"0", "1-16", "16-512", "512-1024", "1024-10000", ">10000"}
	t := &stats.Table{Header: append([]string{"from\\to"}, labels...)}
	for i, row := range chain {
		cells := make([]any, 0, len(row)+1)
		cells = append(cells, labels[i])
		for _, p := range row {
			cells = append(cells, fmt.Sprintf("%.3f", p))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig3a compares always-insert i-Filter, access-count bypass, and OPT
// replacement speedups over the LRU+FDP baseline.
func (s *Suite) Fig3a() (*stats.Table, error) {
	apps := s.AppNames()
	schemes := []string{Baseline, "ifilter", "access-count", "opt"}
	if err := s.Require(CrossCells(apps, schemes, "fdp")...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"app", "always-insert", "access-count", "OPT"}}
	var a1, a2, a3 []float64
	for _, app := range apps {
		v1 := s.speedupOver(app, Baseline, "ifilter", "fdp")
		v2 := s.speedupOver(app, Baseline, "access-count", "fdp")
		v3 := s.speedupOver(app, Baseline, "opt", "fdp")
		a1, a2, a3 = append(a1, v1), append(a2, v2), append(a3, v3)
		t.AddRow(app, v1, v2, v3)
	}
	t.AddRow("gmean", stats.Geomean(a1), stats.Geomean(a2), stats.Geomean(a3))
	return t, nil
}

// Fig3bEdges are the signed reuse-delta bucket edges of Fig 3b.
var Fig3bEdges = []float64{-10000, -1000, -100, -10, 0, 10, 100, 1000, 10000}

// Fig3b histograms, for the named app, the difference between the next-use
// distance of each block moving from the i-Filter into the i-cache and that
// of the block OPT would evict from the target set. Positive deltas are
// wrong insertions (the paper measures 38.38% for media streaming).
func (s *Suite) Fig3b(app string) (*stats.Histogram, float64, error) {
	w, err := s.Workload(app)
	if err != nil {
		return nil, 0, err
	}
	cc := core.DefaultConfig()
	cc.Variant = core.VariantAlwaysAdmit
	sub := icache.MustNew(icache.Config{Sets: icache.DefaultSets, Ways: icache.DefaultWays, Policy: policy.NewLRU(), ACIC: &cc, NextUse: w.Oracle.Func(), Sample: s.sampleFilter(app)})
	h := stats.NewHistogram(Fig3bEdges...)
	var wrong, total uint64
	sub.ACIC().OnDecision = func(d core.Decision) {
		dIn := clampDist(w.Oracle.NextUse(d.Victim, d.AccessIdx) - d.AccessIdx)
		// The outgoing block OPT would pick: the set line with the furthest
		// next use at decision time.
		set := sub.L1().SetIndex(d.Victim)
		dOut := float64(0)
		for _, ln := range sub.L1().Lines(set) {
			if !ln.Valid {
				continue
			}
			if v := clampDist(w.Oracle.NextUse(ln.Block, d.AccessIdx) - d.AccessIdx); v > dOut {
				dOut = v
			}
		}
		delta := dIn - dOut
		h.Add(delta)
		total++
		if delta > 0 {
			wrong++
		}
	}
	if _, err := RunSubsystem(w, sub, s.options(app)); err != nil {
		return nil, 0, err
	}
	frac := 0.0
	if total > 0 {
		frac = float64(wrong) / float64(total)
	}
	return h, frac, nil
}

func clampDist(d int64) float64 {
	if d >= cacheNever {
		return 1e12
	}
	return float64(d)
}

const cacheNever = int64(1) << 61

// Fig6Edges bucket CSHR entry lifetimes (in set-local comparisons).
var Fig6Edges = []float64{50, 100, 150, 200, 250, 300, 350, 400}

// Fig6 histograms the number of comparisons during CSHR entry lifetimes for
// the named app; unresolved (evicted) entries land in the overflow bucket,
// mirroring the paper's "InF" bar.
func (s *Suite) Fig6(app string) (*stats.Histogram, error) {
	w, err := s.Workload(app)
	if err != nil {
		return nil, err
	}
	cc := core.DefaultConfig()
	// Measure lifetimes with an effectively unbounded CSHR so that "would
	// never resolve" is separated from "evicted at 256 entries", as the
	// paper's incremental-capacity study does.
	cc.CSHR.Ways = 4096
	sub := icache.MustNew(icache.Config{Sets: icache.DefaultSets, Ways: icache.DefaultWays, Policy: policy.NewLRU(), ACIC: &cc, Sample: s.sampleFilter(app)})
	h := stats.NewHistogram(Fig6Edges...)
	sub.ACIC().AgeSamples = func(age int64, resolved bool) {
		if !resolved {
			age = math.MaxInt32 // overflow bucket
		}
		h.Add(float64(age))
	}
	if _, err := RunSubsystem(w, sub, s.options(app)); err != nil {
		return nil, err
	}
	// Entries still unresolved at the end of the run count as InF.
	if occ := sub.ACIC().CSHR.Occupancy(); occ > 0 {
		for i := 0; i < occ; i++ {
			h.Add(math.MaxInt32)
		}
	}
	return h, nil
}

// Fig10 reports per-app speedups of every Fig 10 scheme over the LRU+FDP
// baseline, with a trailing gmean row.
func (s *Suite) Fig10() (*stats.Table, error) { return s.schemeTable(Fig10Schemes, "fdp", true) }

// Fig11 reports per-app MPKI reductions of every Fig 10 scheme over the
// LRU+FDP baseline, with a trailing average row.
func (s *Suite) Fig11() (*stats.Table, error) { return s.schemeTable(Fig10Schemes, "fdp", false) }

func (s *Suite) schemeTable(schemes []string, pf string, speedup bool) (*stats.Table, error) {
	foot := "avg"
	if speedup {
		foot = "gmean"
	}
	return s.compareTable(s.AppNames(), schemes, pf, speedup, foot)
}

// compareTable renders the shared shape of Figs 10/11/18-21: one row per
// app, one column per scheme (speedup or MPKI reduction over Baseline),
// and a footer aggregating each column (geomean for speedups, mean for
// reductions) under the given label.
func (s *Suite) compareTable(apps, schemes []string, pf string, speedup bool, footLabel string) (*stats.Table, error) {
	if err := s.Require(CrossCells(apps, append([]string{Baseline}, schemes...), pf)...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: append([]string{"app"}, schemes...)}
	sums := make([][]float64, len(schemes))
	for _, app := range apps {
		cells := make([]any, 0, len(schemes)+1)
		cells = append(cells, app)
		for i, sch := range schemes {
			var v float64
			if speedup {
				v = s.speedupOver(app, Baseline, sch, pf)
				cells = append(cells, fmt.Sprintf("%.4f", v))
			} else {
				v = s.mpkiReductionOver(app, Baseline, sch, pf)
				cells = append(cells, stats.Percent(v))
			}
			sums[i] = append(sums[i], v)
		}
		t.AddRow(cells...)
	}
	foot := make([]any, 0, len(schemes)+1)
	foot = append(foot, footLabel)
	for i := range schemes {
		if speedup {
			foot = append(foot, fmt.Sprintf("%.4f", stats.Geomean(sums[i])))
		} else {
			foot = append(foot, stats.Percent(stats.Mean(sums[i])))
		}
	}
	t.AddRow(foot...)
	return t, nil
}

// Fig12aRanges are the [0,bound) next-use windows of Fig 12a; 0 means no
// bound ("[0,InF)").
var Fig12aRanges = []int64{0, 2048, 1024, 512, 256, 128}

// Fig12a measures ACIC bypass accuracy over decisions whose nearer next-use
// distance falls inside each window, averaged across apps.
func (s *Suite) Fig12a() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.PrepareAll(apps...); err != nil {
		return nil, err
	}
	// One instrumented run per app, reduced to per-range tallies inside
	// the decision callback so no app's raw decision stream is retained;
	// per-app partials merge in app order afterward.
	type tally struct{ correct, count []int64 }
	partials := make([]tally, len(apps))
	err := s.each(len(apps), func(i int) error {
		partials[i] = tally{make([]int64, len(Fig12aRanges)), make([]int64, len(Fig12aRanges))}
		w := s.wl(apps[i])
		cc := core.DefaultConfig()
		sub := icache.MustNew(icache.Config{Sets: icache.DefaultSets, Ways: icache.DefaultWays, Policy: policy.NewLRU(), ACIC: &cc, Sample: s.sampleFilter(apps[i])})
		sub.ACIC().OnDecision = func(d core.Decision) {
			dIn := w.Oracle.NextUse(d.Victim, d.AccessIdx) - d.AccessIdx
			dOut := w.Oracle.NextUse(d.Contender, d.AccessIdx) - d.AccessIdx
			ideal := dIn < dOut
			near := dIn
			if dOut < near {
				near = dOut
			}
			for ri, bound := range Fig12aRanges {
				if bound != 0 && near >= bound {
					continue
				}
				partials[i].count[ri]++
				if ideal == d.Admitted {
					partials[i].correct[ri]++
				}
			}
		}
		if _, err := RunSubsystem(w, sub, s.options(apps[i])); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	correct := make([]float64, len(Fig12aRanges))
	counts := make([]float64, len(Fig12aRanges))
	for i := range apps {
		for ri := range Fig12aRanges {
			correct[ri] += float64(partials[i].correct[ri])
			counts[ri] += float64(partials[i].count[ri])
		}
	}
	t := &stats.Table{Header: []string{"range", "avg accuracy"}}
	for ri, bound := range Fig12aRanges {
		label := "[0,InF)"
		if bound != 0 {
			label = fmt.Sprintf("[0,%d)", bound)
		}
		acc := 0.0
		if counts[ri] > 0 {
			acc = correct[ri] / counts[ri]
		}
		t.AddRow(label, stats.Percent(acc))
	}
	return t, nil
}

// Fig12b compares the MPKI reduction of a 60%-admit random bypass against
// ACIC, per app.
func (s *Suite) Fig12b() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, []string{Baseline, "random60", "acic"}, "fdp")...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"app", "random-60%", "acic"}}
	var r1, r2 []float64
	for _, app := range apps {
		v1 := s.mpkiReductionOver(app, Baseline, "random60", "fdp")
		v2 := s.mpkiReductionOver(app, Baseline, "acic", "fdp")
		r1, r2 = append(r1, v1), append(r2, v2)
		t.AddRow(app, stats.Percent(v1), stats.Percent(v2))
	}
	t.AddRow("avg", stats.Percent(stats.Mean(r1)), stats.Percent(stats.Mean(r2)))
	return t, nil
}

// Fig13 reports the percentage of i-Filter victims ACIC admits per app.
func (s *Suite) Fig13() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.PrepareAll(apps...); err != nil {
		return nil, err
	}
	admitted := make([]float64, len(apps))
	err := s.each(len(apps), func(i int) error {
		w := s.wl(apps[i])
		cc := core.DefaultConfig()
		sub := icache.MustNew(icache.Config{Sets: icache.DefaultSets, Ways: icache.DefaultWays, Policy: policy.NewLRU(), ACIC: &cc, Sample: s.sampleFilter(apps[i])})
		if _, err := RunSubsystem(w, sub, s.options(apps[i])); err != nil {
			return err
		}
		admitted[i] = sub.ACIC().AdmitFraction()
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"app", "admitted"}}
	for i, app := range apps {
		t.AddRow(app, stats.Percent(admitted[i]))
	}
	return t, nil
}

// Fig14 compares MPKI reduction with the 2-cycle parallel predictor update
// against instant updates, per app.
func (s *Suite) Fig14() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, []string{Baseline, "acic", "acic-instant"}, "fdp")...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"app", "parallel", "instant"}}
	var r1, r2 []float64
	for _, app := range apps {
		v1 := s.mpkiReductionOver(app, Baseline, "acic", "fdp")
		v2 := s.mpkiReductionOver(app, Baseline, "acic-instant", "fdp")
		r1, r2 = append(r1, v1), append(r2, v2)
		t.AddRow(app, stats.Percent(v1), stats.Percent(v2))
	}
	t.AddRow("avg", stats.Percent(stats.Mean(r1)), stats.Percent(stats.Mean(r2)))
	return t, nil
}

// Fig15Variants are the sensitivity configurations of Fig 15.
var Fig15Variants = []struct {
	Name   string
	Mutate func(*core.Config)
}{
	{"default", func(*core.Config) {}},
	{"2k-hrt", func(c *core.Config) { c.Predictor.HRTEntries = 2048 }},
	{"512-hrt", func(c *core.Config) { c.Predictor.HRTEntries = 512 }},
	{"8bit-history", func(c *core.Config) { c.Predictor.HistoryBits = 8 }},
	{"10bit-history", func(c *core.Config) { c.Predictor.HistoryBits = 10 }},
	{"2bit-counter", func(c *core.Config) { c.Predictor.CounterBits = 2 }},
	{"8bit-counter", func(c *core.Config) { c.Predictor.CounterBits = 8 }},
	{"8-slot-filter", func(c *core.Config) { c.FilterSlots = 8 }},
	{"32-slot-filter", func(c *core.Config) { c.FilterSlots = 32 }},
	{"7bit-cshr-tag", func(c *core.Config) { c.CSHR.TagBits = 7 }},
	{"27bit-cshr-tag", func(c *core.Config) { c.CSHR.TagBits = 27 }},
}

// Fig15 sweeps ACIC's key parameters and reports gmean speedup over the
// baseline for each variant.
func (s *Suite) Fig15() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, []string{Baseline}, "fdp")...); err != nil {
		return nil, err
	}
	speedups := make([][]float64, len(Fig15Variants))
	for i := range speedups {
		speedups[i] = make([]float64, len(apps))
	}
	err := s.eachCell(len(Fig15Variants), len(apps), func(vi, ai int) error {
		v, app := Fig15Variants[vi], apps[ai]
		w := s.wl(app)
		cc := core.DefaultConfig()
		v.Mutate(&cc)
		sub := icache.MustNew(icache.Config{Sets: icache.DefaultSets, Ways: icache.DefaultWays, Policy: policy.NewLRU(), ACIC: &cc, Sample: s.sampleFilter(app)})
		res, err := RunSubsystem(w, sub, s.options(app))
		if err != nil {
			return err
		}
		speedups[vi][ai] = Speedup(s.res(app, Baseline, "fdp"), res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"variant", "gmean speedup"}}
	for vi, v := range Fig15Variants {
		t.AddRow(v.Name, stats.Geomean(speedups[vi]))
	}
	return t, nil
}

// Fig16 reports ACIC's speedup over the FDP baseline *equipped with an
// i-Filter* (the bypass policy's own contribution).
func (s *Suite) Fig16() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, []string{"ifilter", "acic"}, "fdp")...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"app", "speedup over lru+ifilter"}}
	var all []float64
	for _, app := range apps {
		v := s.speedupOver(app, "ifilter", "acic", "fdp")
		all = append(all, v)
		t.AddRow(app, v)
	}
	t.AddRow("gmean", stats.Geomean(all))
	return t, nil
}

// Fig17Schemes are the simplified designs of Fig 17.
var Fig17Schemes = []string{"acic", "acic-nofilter", "ifilter", "acic-global", "acic-bimodal"}

// Fig17 reports gmean speedups of ACIC's simplified designs.
func (s *Suite) Fig17() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, append([]string{Baseline}, Fig17Schemes...), "fdp")...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"design", "gmean speedup"}}
	for _, sch := range Fig17Schemes {
		var all []float64
		for _, app := range apps {
			all = append(all, s.speedupOver(app, Baseline, sch, "fdp"))
		}
		t.AddRow(sch, stats.Geomean(all))
	}
	return t, nil
}

// SPECSchemes are the policies compared on SPEC (Figs 18/19) and on the
// entangling baseline (Figs 20/21).
var SPECSchemes = []string{"ghrp", "l1i-36k", "acic", "opt"}

// Fig18 reports SPEC speedups of GHRP, the 36KB L1i, ACIC, and OPT.
func (s *Suite) Fig18() (*stats.Table, error) { return s.specTable(true) }

// Fig19 reports SPEC MPKI reductions.
func (s *Suite) Fig19() (*stats.Table, error) { return s.specTable(false) }

func (s *Suite) specTable(speedup bool) (*stats.Table, error) {
	return s.compareTable(s.SPECNames(), SPECSchemes, "fdp", speedup, "gmean/avg")
}

// Fig20 reports datacenter speedups over the entangling-prefetcher
// baseline.
func (s *Suite) Fig20() (*stats.Table, error) { return s.entTable(true) }

// Fig21 reports datacenter MPKI reductions over the entangling baseline.
func (s *Suite) Fig21() (*stats.Table, error) { return s.entTable(false) }

func (s *Suite) entTable(speedup bool) (*stats.Table, error) {
	return s.compareTable(s.AppNames(), SPECSchemes, "entangling", speedup, "gmean/avg")
}
