package experiments

import (
	"fmt"

	"acic/internal/bypass"
	"acic/internal/cache"
	"acic/internal/core"
	"acic/internal/cpu"
	"acic/internal/icache"
	"acic/internal/policy"
	"acic/internal/victim"
)

// Fig10Schemes lists the schemes of Figs 10/11 in plot order, baseline
// excluded.
var Fig10Schemes = []string{
	"srrip", "ship", "harmony", "ghrp", "dsb", "obm",
	"vvc", "vc3k", "acic", "l1i-36k", "opt", "opt-bypass",
}

// Baseline is the paper's baseline scheme: LRU i-cache (with FDP supplied
// by the run options).
const Baseline = "lru"

// SchemeNames returns every registered scheme name.
func SchemeNames() []string {
	names := []string{Baseline}
	names = append(names, Fig10Schemes...)
	names = append(names,
		"ifilter", "access-count", "random60", "dsb+ifilter",
		"acic-instant", "acic-global", "acic-bimodal", "acic-nofilter",
		"acic-pfaware",
		"lru+vc8k",
	)
	return names
}

// NewScheme builds the named i-cache subsystem for a workload. The oracle
// is attached only for oracle schemes (opt, opt-bypass).
func NewScheme(name string, w *Workload) (icache.Subsystem, error) {
	return NewSampledScheme(name, w, cpu.SampleConfig{})
}

// NewSampledScheme builds the named subsystem with the set-sampling filter
// applied at construction time, so the shared fully-associative structures
// (i-Filter, victim caches) are scaled to the sampled traffic fraction
// (icache.Config.Sample). A zero sample config is exactly NewScheme.
func NewSampledScheme(name string, w *Workload, sample cpu.SampleConfig) (icache.Subsystem, error) {
	if err := sample.Validate(); err != nil {
		return nil, err
	}
	filter := sample.Filter()
	oracle := w.Oracle.Func()
	base := func() icache.Config {
		return icache.Config{Sets: icache.DefaultSets, Ways: icache.DefaultWays, Sample: filter}
	}
	switch name {
	case "lru":
		c := base()
		c.Policy = policy.NewLRU()
		return icache.New(c)
	case "plru":
		c := base()
		c.Policy = policy.NewPLRU()
		return icache.New(c)
	case "lip":
		c := base()
		c.Policy = policy.NewLIP()
		return icache.New(c)
	case "bip":
		c := base()
		c.Policy = policy.NewBIP()
		return icache.New(c)
	case "dip":
		c := base()
		c.Policy = policy.NewDIP()
		return icache.New(c)
	case "eaf":
		c := base()
		c.Policy = policy.NewLRU()
		c.Bypass = bypass.NewEAF(bypass.DefaultEAFConfig())
		return icache.New(c)
	case "ripple-lite":
		// Profile-guided replacement (Ripple-inspired): classify transient
		// blocks on the warmup prefix, evaluate on the full run.
		c := base()
		training := w.Blocks[:len(w.Blocks)/10]
		c.Policy = policy.NewProfileGuided(policy.Profile(training, 512))
		return icache.New(c)
	case "srrip":
		c := base()
		c.Policy = policy.NewSRRIP(2)
		return icache.New(c)
	case "ship":
		c := base()
		c.Policy = policy.NewSHiP(policy.DefaultSHiPConfig())
		return icache.New(c)
	case "harmony":
		c := base()
		c.Policy = policy.NewHawkeye(policy.DefaultHawkeyeConfig())
		return icache.New(c)
	case "ghrp":
		c := base()
		c.Policy = policy.NewGHRP(policy.DefaultGHRPConfig())
		return icache.New(c)
	case "dsb":
		c := base()
		c.Policy = policy.NewLRU()
		c.Bypass = bypass.NewDSB(bypass.DefaultDSBConfig(64))
		return icache.New(c)
	case "dsb+ifilter":
		c := base()
		c.Policy = policy.NewLRU()
		c.Bypass = bypass.NewDSB(bypass.DefaultDSBConfig(64))
		c.FilterSlots = 16
		return icache.New(c)
	case "obm":
		c := base()
		c.Policy = policy.NewLRU()
		c.Bypass = bypass.NewOBM(bypass.DefaultOBMConfig())
		return icache.New(c)
	case "vvc":
		return icache.NewSampledVVC(victim.DefaultVVCConfig(), filter), nil
	case "vc3k":
		c := base()
		c.Policy = policy.NewLRU()
		c.VictimBlocks = 48
		return icache.New(c)
	case "lru+vc8k":
		c := base()
		c.Policy = policy.NewLRU()
		c.VictimBlocks = 128
		return icache.New(c)
	case "l1i-36k":
		// 36KB, 9-way: 64 sets x 9 ways.
		c := base()
		c.Ways = 9
		c.Policy = policy.NewLRU()
		c.Name = "l1i-36k"
		return icache.New(c)
	case "opt":
		c := base()
		c.Policy = policy.NewOPT()
		c.NextUse = oracle
		c.NextAt = w.NextAt
		return icache.New(c)
	case "opt-bypass":
		c := base()
		c.Policy = policy.NewLRU()
		c.FilterSlots = 16
		c.Bypass = bypass.OPTBypass{}
		c.NextUse = oracle
		c.NextAt = w.NextAt
		c.Name = "opt-bypass"
		return icache.New(c)
	case "ifilter":
		// Fig 3a "always insert i-Filter victim to i-cache".
		c := base()
		c.Policy = policy.NewLRU()
		c.FilterSlots = 16
		return icache.New(c)
	case "access-count":
		// Fig 3a "bypass with access count comparison" (i-Filter front).
		c := base()
		c.Policy = policy.NewLRU()
		c.FilterSlots = 16
		c.Bypass = bypass.NewAccessCount(6, 1024)
		return icache.New(c)
	case "random60":
		// Fig 12b random bypass with 60% admit probability (i-Filter front).
		c := base()
		c.Policy = policy.NewLRU()
		c.FilterSlots = 16
		c.Bypass = bypass.NewRandomAdmit(60, w.Profile.Seed)
		c.Name = "random60"
		return icache.New(c)
	case "acic":
		return newACIC(core.DefaultConfig(), w, filter)
	case "acic-instant":
		cc := core.DefaultConfig()
		cc.Predictor.UpdateLatency = 0
		sub, err := newACIC(cc, w, filter)
		if err != nil {
			return nil, err
		}
		return named{sub, "acic-instant"}, nil
	case "acic-global":
		cc := core.DefaultConfig()
		cc.Variant = core.VariantGlobalHistory
		return newACIC(cc, w, filter)
	case "acic-bimodal":
		cc := core.DefaultConfig()
		cc.Variant = core.VariantBimodal
		return newACIC(cc, w, filter)
	case "acic-pfaware":
		// Future-work extension (paper §VI): prefetch-aware admission.
		cc := core.DefaultConfig()
		cc.PrefetchAware = true
		sub, err := newACIC(cc, w, filter)
		if err != nil {
			return nil, err
		}
		return named{sub, "acic-pfaware"}, nil
	case "acic-nofilter":
		// Fig 17 "no i-Filter": the admission predictor gates direct fills.
		c := base()
		c.Policy = policy.NewLRU()
		c.Bypass = NewACICBypass(core.DefaultConfig(), icache.DefaultSets)
		c.Name = "acic-nofilter"
		return icache.New(c)
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// newACIC builds the standard ACIC complex over an LRU i-cache.
func newACIC(cc core.Config, _ *Workload, sample cache.SampleFilter) (icache.Subsystem, error) {
	c := icache.Config{Sets: icache.DefaultSets, Ways: icache.DefaultWays, Policy: policy.NewLRU(), ACIC: &cc, Sample: sample}
	return icache.New(c)
}

// named overrides a subsystem's reported name.
type named struct {
	icache.Subsystem
	name string
}

func (n named) Name() string { return n.name }

// ACICBypass adapts the ACIC predictor+CSHR (no i-Filter) to the bypass
// interface, for the Fig 17 "no i-Filter" ablation: admission control runs
// directly on missed blocks instead of on filter victims.
type ACICBypass struct {
	a    *core.ACIC
	sets int
	tick int64
}

// NewACICBypass creates the no-filter ACIC bypass adapter for an i-cache
// with the given set count.
func NewACICBypass(cc core.Config, sets int) *ACICBypass {
	cc.Variant = core.VariantTwoLevel
	return &ACICBypass{a: core.New(cc), sets: sets}
}

// Name implements bypass.Policy.
func (b *ACICBypass) Name() string { return "acic-nofilter" }

// OnFetch implements bypass.Policy.
func (b *ACICBypass) OnFetch(block uint64) {
	b.tick++
	b.a.Tick(b.tick)
	b.a.OnFetch(block, int(block)&(b.sets-1), b.sets, false)
}

// ShouldInsert implements bypass.Policy.
func (b *ACICBypass) ShouldInsert(incoming, contender uint64, contenderValid bool, ctx *cache.AccessContext) bool {
	if !contenderValid {
		return true
	}
	return b.a.Decide(incoming, contender, int(incoming)&(b.sets-1), b.sets, ctx.AccessIdx)
}

// StorageBits implements bypass.Policy.
func (b *ACICBypass) StorageBits() int { return b.a.StorageBits() - b.a.Filter.StorageBits() }
