package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"acic/internal/analysis"
	"acic/internal/branch"
	"acic/internal/cpu"
	"acic/internal/experiments/engine"
	"acic/internal/mem"
	"acic/internal/trace"
	"acic/internal/workload"
)

// stageRetry is the retry policy every pipeline stage group runs under:
// transient failures (injected faults, MarkTransient-wrapped errors) are
// re-attempted with jittered backoff; deterministic failures — a bad
// profile, a genuine panic in derivation — fail the stage immediately.
// Stage computes are idempotent (every fault site fires before state is
// mutated), so re-entry is always safe.
func stageRetry() engine.RetryPolicy { return engine.DefaultRetry() }

// Pipeline is the staged workload-preparation pipeline: the monolithic
// Prepare split into four content-addressed stages,
//
//	trace   — synthetic trace generation (workload.Generate)
//	program — branch-predictor replay + descriptor derivation (cpu.Program)
//	nextat  — next-use successor array (analysis.NextUseArray)
//	datalat — data-side latency timeline (Program.EnsureDataLatencies)
//
// each memoized with per-key singleflight and, when a store directory is
// configured, persisted through the trace codec's v2 container format
// (sections INST / ANNO+DESC+BLKS / NXTA / DLAT). Stage keys share the
// result cache's derivation (keys.go: schema version, simulator-config
// digest, profile digest, trace length), so a config edit invalidates
// prepared artifacts and cached results together. Artifacts are
// best-effort: an unreadable, truncated, corrupt, or version-mismatched
// entry is a miss and the stage regenerates (and rewrites) it — the store
// can only make preparation faster, never wrong.
//
// Concurrent workers in one process share a single materialization per
// stage through the groups' singleflight; concurrent processes share
// through the store's atomic temp-file-and-rename writes.
type Pipeline struct {
	n      int
	window int
	memCfg mem.Config
	lookup func(string) (workload.Profile, bool)

	traces    *engine.Group[string, *trace.Trace]
	programs  *engine.Group[string, *cpu.Program]
	nextats   *engine.Group[string, []int64]
	datalats  *engine.Group[string, []int16]
	workloads *engine.Group[string, *Workload]

	// Typed store handles, retained alongside the groups' Cache fields so
	// the streamed prepare (stream.go) can probe warmth (Has) and write
	// artifacts directly — it bypasses the stage groups entirely, fusing
	// all four passes into one windowed walk. All nil when no store is
	// configured.
	traceStore   *engine.DiskCache[string, *trace.Trace]
	programStore *engine.DiskCache[string, *cpu.Program]
	nextatStore  *engine.DiskCache[string, []int64]
	datalatStore *engine.DiskCache[string, []int16]

	streamed        atomic.Int64
	streamFallbacks atomic.Int64 // streamed prepares that degraded to batch
}

// PipelineConfig configures NewPipeline.
type PipelineConfig struct {
	// N is the trace length in instructions (0 = DefaultTraceLen).
	N int
	// Dir enables the on-disk artifact store in that directory ("" =
	// in-memory memoization only).
	Dir string
	// Pool executes batch work (Warm, Require); nil creates a default
	// pool. Demand-driven stage computation (Workload) runs inline on the
	// calling goroutine either way.
	Pool *engine.Pool
	// Lookup resolves app names to profiles (nil = workload.ByName).
	Lookup func(string) (workload.Profile, bool)
	// Window, when > 0, turns cold preparation into the windowed streaming
	// pipeline: generation, branch annotation, descriptor derivation, the
	// successor array, and the data-latency replay advance together Window
	// instructions at a time, so peak memory is O(Window) instruction
	// records instead of O(N). Artifacts land in the store byte-identical
	// to the batch path's; warm loads are unaffected. 0 = batch prepare.
	Window int
}

// NewPipeline builds the staged pipeline. When the artifact store cannot
// be opened the returned pipeline still works (stages regenerate in
// memory) and the error reports why persistence is off — callers that
// want the store to be load-bearing should fail on it.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.N <= 0 {
		cfg.N = DefaultTraceLen()
	}
	if cfg.Pool == nil {
		cfg.Pool = engine.NewPool(0)
	}
	if cfg.Lookup == nil {
		cfg.Lookup = workload.ByName
	}
	pl := &Pipeline{n: cfg.N, window: cfg.Window, memCfg: mem.DefaultConfig(), lookup: cfg.Lookup}

	pl.traces = engine.NewGroup(cfg.Pool, func(app string) (*trace.Trace, error) {
		prof, ok := pl.lookup(app)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", app)
		}
		return workload.Generate(prof, pl.n), nil
	})
	pl.programs = engine.NewGroup(cfg.Pool, func(app string) (*cpu.Program, error) {
		tr, err := pl.traces.Get(app)
		if err != nil {
			return nil, err
		}
		return cpu.NewProgram(tr, branch.NewFrontEnd().Annotate(tr)), nil
	})
	pl.nextats = engine.NewGroup(cfg.Pool, func(app string) ([]int64, error) {
		prog, err := pl.programs.Get(app)
		if err != nil {
			return nil, err
		}
		return analysis.NextUseArray(prog.Blocks), nil
	})
	pl.datalats = engine.NewGroup(cfg.Pool, func(app string) ([]int16, error) {
		prog, err := pl.programs.Get(app)
		if err != nil {
			return nil, err
		}
		prog.EnsureDataLatencies(pl.memCfg)
		return prog.DataLat, nil
	})
	pl.workloads = engine.NewGroup(cfg.Pool, pl.assemble)
	pl.traces.Retry = stageRetry()
	pl.programs.Retry = stageRetry()
	pl.nextats.Retry = stageRetry()
	pl.datalats.Retry = stageRetry()
	pl.workloads.Retry = stageRetry()

	var err error
	if cfg.Dir != "" {
		err = pl.openStore(cfg.Dir)
	}
	return pl, err
}

// stageKey returns the content-addressing key function for one stage.
func (pl *Pipeline) stageKey(stage string) func(string) string {
	return func(app string) string {
		prof, ok := pl.lookup(app)
		return storeKeyPrefix(profileDigest(prof, ok, app), pl.n) + "|stage:" + stage
	}
}

// openStore attaches the four stage caches to dir. All artifacts use the
// trace codec's container format with the ".actr" extension, so
// `acic-trace inspect` can describe any file in the store.
func (pl *Pipeline) openStore(dir string) error {
	traces, err := engine.NewCodecDiskCache(dir, ".actr", pl.stageKey("trace"),
		func(t *trace.Trace) ([]byte, error) {
			var b bytes.Buffer
			err := trace.Write(&b, t)
			return b.Bytes(), err
		},
		func(_ string, data []byte) (*trace.Trace, error) {
			return trace.Read(bytes.NewReader(data))
		})
	if err != nil {
		return err
	}
	programs, err := engine.NewCodecDiskCache(dir, ".actr", pl.stageKey("program"),
		encodeProgram, pl.decodeProgram)
	if err != nil {
		return err
	}
	nextats, err := engine.NewCodecDiskCache(dir, ".actr", pl.stageKey("nextat"),
		func(v []int64) ([]byte, error) {
			return encodeSection("nextat", trace.SecNextAt, trace.EncodeInt64sDelta(v))
		},
		func(_ string, data []byte) ([]int64, error) {
			payload, err := decodeSection(data, trace.SecNextAt)
			if err != nil {
				return nil, err
			}
			return trace.DecodeInt64sDelta(payload)
		})
	if err != nil {
		return err
	}
	datalats, err := engine.NewCodecDiskCache(dir, ".actr", pl.stageKey("datalat"),
		func(v []int16) ([]byte, error) {
			return encodeSection("datalat", trace.SecDataLat, trace.EncodeInt16s(v))
		},
		func(_ string, data []byte) ([]int16, error) {
			payload, err := decodeSection(data, trace.SecDataLat)
			if err != nil {
				return nil, err
			}
			return trace.DecodeInt16s(payload)
		})
	if err != nil {
		return err
	}
	pl.traces.Cache = traces
	pl.programs.Cache = programs
	pl.nextats.Cache = nextats
	pl.datalats.Cache = datalats
	pl.traceStore = traces
	pl.programStore = programs
	pl.nextatStore = nextats
	pl.datalatStore = datalats
	return nil
}

// encodeProgram persists the expensive derived arrays of a Program — the
// branch annotations, descriptor bytes, and collapsed block sequence — as
// codec v2 sections. The trace itself lives in the trace-stage artifact;
// MemBlk and the run-ahead bitmap are cheap local recomputes.
func encodeProgram(p *cpu.Program) ([]byte, error) {
	var b bytes.Buffer
	err := trace.WriteContainer(&b, p.Trace.Name, []trace.Section{
		{Tag: trace.SecAnnot, Data: p.AnnotationBytes()},
		{Tag: trace.SecDesc, Data: p.Desc},
		{Tag: trace.SecBlocks, Data: trace.EncodeUint64sDelta(p.Blocks)},
	})
	return b.Bytes(), err
}

// decodeProgram rebuilds a Program from its persisted sections against the
// trace-stage artifact (loaded or regenerated through the trace group).
func (pl *Pipeline) decodeProgram(app string, data []byte) (*cpu.Program, error) {
	tr, err := pl.traces.Get(app)
	if err != nil {
		return nil, err
	}
	_, secs, err := trace.ReadContainer(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	annData, ok := trace.FindSection(secs, trace.SecAnnot)
	if !ok {
		return nil, fmt.Errorf("experiments: program artifact missing %s section", trace.SecAnnot)
	}
	descData, ok := trace.FindSection(secs, trace.SecDesc)
	if !ok {
		return nil, fmt.Errorf("experiments: program artifact missing %s section", trace.SecDesc)
	}
	blkData, ok := trace.FindSection(secs, trace.SecBlocks)
	if !ok {
		return nil, fmt.Errorf("experiments: program artifact missing %s section", trace.SecBlocks)
	}
	ann, err := cpu.AnnotationsFromBytes(annData)
	if err != nil {
		return nil, err
	}
	blocks, err := trace.DecodeUint64sDelta(blkData)
	if err != nil {
		return nil, err
	}
	return cpu.NewProgramFromParts(tr, ann, descData, blocks)
}

// encodeSection wraps one typed payload in a single-section container.
func encodeSection(name, tag string, payload []byte) ([]byte, error) {
	var b bytes.Buffer
	err := trace.WriteContainer(&b, name, []trace.Section{{Tag: tag, Data: payload}})
	return b.Bytes(), err
}

// decodeSection unwraps a single-section container.
func decodeSection(data []byte, tag string) ([]byte, error) {
	_, secs, err := trace.ReadContainer(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	payload, ok := trace.FindSection(secs, tag)
	if !ok {
		return nil, fmt.Errorf("experiments: artifact missing %s section", tag)
	}
	return payload, nil
}

// assemble builds the Workload view over the staged artifacts: the shared
// Program with its adopted latency timeline, the successor array, and the
// in-memory next-use oracle (an index over the block sequence, always
// rebuilt — it is not an artifact).
func (pl *Pipeline) assemble(app string) (*Workload, error) {
	prof, ok := pl.lookup(app)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", app)
	}
	// Windowed mode streams cold preparation; a fully warm store still
	// takes the batch load path below (loading is already cheap and keeps
	// the zero-regeneration warm semantics byte-for-byte identical).
	//
	// A streamed prepare that fails mid-window — panic or error, injected
	// or genuine — degrades to the batch path instead of failing the
	// workload: the two paths produce byte-identical workloads (DESIGN.md
	// §12), so falling back trades the O(window) memory bound for a
	// completed prepare. The aborted stream leaves nothing behind (its
	// partial store entries are discarded under tmp/).
	if pl.window > 0 && !pl.storeWarm(app) {
		w, err := engine.Guard("stream:"+app, false, func() (*Workload, error) {
			return pl.assembleStreamed(app, prof)
		})
		if err == nil {
			return w, nil
		}
		pl.streamFallbacks.Add(1)
	}
	prog, err := pl.programs.Get(app)
	if err != nil {
		return nil, err
	}
	nextAt, err := pl.nextats.Get(app)
	if err != nil {
		return nil, err
	}
	lat, err := pl.datalats.Get(app)
	if err != nil {
		return nil, err
	}
	if err := prog.AdoptDataLatencies(lat, pl.memCfg); err != nil {
		return nil, err
	}
	if len(nextAt) != len(prog.Blocks) {
		return nil, fmt.Errorf("experiments: successor array length %d != %d block accesses", len(nextAt), len(prog.Blocks))
	}
	return &Workload{
		Profile: prof,
		Prog:    prog,
		Trace:   prog.Trace,
		Ann:     prog.Ann,
		Blocks:  prog.Blocks,
		Oracle:  analysis.NewNextUseOracle(prog.Blocks),
		NextAt:  nextAt,
	}, nil
}

// Workload returns the fully prepared workload for an app, materializing
// (or loading) every stage on demand.
func (pl *Pipeline) Workload(app string) (*Workload, error) {
	return pl.workloads.Get(app)
}

// ForgetTransient drops any stage memo for app whose outcome is a
// transient error, so the next demand re-prepares instead of replaying
// the failure. Successful stages and deterministic errors stand. Long-
// lived processes call this when a cell fails transiently: the failure
// may live in the prepare pipeline rather than the cell compute, and
// forgetting only the cell would replay the poisoned stage forever.
func (pl *Pipeline) ForgetTransient(app string) bool {
	dropped := pl.workloads.ForgetTransient(app)
	dropped = pl.traces.ForgetTransient(app) || dropped
	dropped = pl.programs.ForgetTransient(app) || dropped
	dropped = pl.nextats.ForgetTransient(app) || dropped
	dropped = pl.datalats.ForgetTransient(app) || dropped
	return dropped
}

// ForgetAllTransient sweeps transiently failed memos from every stage
// for every app, returning how many entries were dropped.
func (pl *Pipeline) ForgetAllTransient() int {
	n := pl.workloads.ForgetAllTransient()
	n += pl.traces.ForgetAllTransient()
	n += pl.programs.ForgetAllTransient()
	n += pl.nextats.ForgetAllTransient()
	n += pl.datalats.ForgetAllTransient()
	return n
}

// Require prepares the named workloads in parallel on the pool,
// deduplicated against earlier work. Must not be called from inside a
// pool task (use Workload, which computes inline).
func (pl *Pipeline) Require(apps ...string) error {
	return pl.workloads.Require(apps...)
}

// Warm materializes all four stage artifacts for the named apps without
// assembling workloads — the `acic-trace warm` path that fills the store
// for later runs. Every stage is attempted for every app. The two leaf
// stages are required concurrently (both transitively materialize trace
// and program, deduplicated by singleflight), so one app's successor
// array never waits on another app's data-hierarchy replay.
func (pl *Pipeline) Warm(apps ...string) error {
	if pl.window > 0 {
		// Streamed preparation produces all four artifacts in one fused
		// pass per workload, so warming is just requiring the workloads.
		return pl.workloads.Require(apps...)
	}
	var wg sync.WaitGroup
	var dlErr, naErr error
	wg.Add(2)
	go func() { defer wg.Done(); dlErr = pl.datalats.Require(apps...) }()
	go func() { defer wg.Done(); naErr = pl.nextats.Require(apps...) }()
	wg.Wait()
	if dlErr != nil {
		return dlErr
	}
	return naErr
}

// StageNames lists the pipeline stages in dependency order.
func StageNames() []string { return []string{"trace", "program", "nextat", "datalat"} }

// StageStats reports one stage's engine counters: artifacts regenerated by
// its compute function vs. served from the persistent store.
type StageStats struct {
	Stage     string `json:"stage"`
	Computed  int64  `json:"computed"`
	FromStore int64  `json:"from_store"`
}

// Stats returns per-stage counters in dependency order. A warm store shows
// Computed == 0 on every stage; that is what "skipping the prepare phase"
// means and what the regression tests assert.
func (pl *Pipeline) Stats() []StageStats {
	stats := []StageStats{
		{"trace", pl.traces.Computed(), pl.traces.CacheHits()},
		{"program", pl.programs.Computed(), pl.programs.CacheHits()},
		{"nextat", pl.nextats.Computed(), pl.nextats.CacheHits()},
		{"datalat", pl.datalats.Computed(), pl.datalats.CacheHits()},
	}
	if pl.window > 0 {
		stats = append(stats, StageStats{Stage: "streamed", Computed: pl.streamed.Load()})
	}
	return stats
}

// Streamed returns how many workloads were prepared through the fused
// windowed pipeline (always 0 in batch mode or on a warm store).
func (pl *Pipeline) Streamed() int64 { return pl.streamed.Load() }

// StreamFallbacks returns how many streamed prepares failed mid-window
// and degraded to the batch path.
func (pl *Pipeline) StreamFallbacks() int64 { return pl.streamFallbacks.Load() }

// Retries returns the total extra compute attempts the stage and workload
// groups spent recovering transient failures.
func (pl *Pipeline) Retries() int64 {
	return pl.traces.Retries() + pl.programs.Retries() + pl.nextats.Retries() +
		pl.datalats.Retries() + pl.workloads.Retries()
}

// Quarantined returns how many undecodable artifacts the stage stores
// moved to quarantine/ (0 when no store is configured).
func (pl *Pipeline) Quarantined() int64 {
	if pl.traceStore == nil {
		return 0
	}
	return pl.traceStore.Quarantined() + pl.programStore.Quarantined() +
		pl.nextatStore.Quarantined() + pl.datalatStore.Quarantined()
}

// Regenerated returns the total number of stage artifacts produced by
// compute functions (0 on a fully warm store).
func (pl *Pipeline) Regenerated() int64 {
	var total int64
	for _, st := range pl.Stats() {
		total += st.Computed
	}
	return total
}

// WorkloadsPrepared returns how many workloads this pipeline assembled.
func (pl *Pipeline) WorkloadsPrepared() int64 { return pl.workloads.Computed() }
