// Package experiments drives the paper's evaluation: it prepares workloads
// (trace generation, branch annotation, next-use oracle), instantiates
// every i-cache management scheme of Table IV, runs the timing simulator,
// and renders each table and figure of the paper (see DESIGN.md §5 for the
// experiment index).
package experiments

import (
	"fmt"
	"hash/fnv"

	"acic/internal/analysis"
	"acic/internal/branch"
	"acic/internal/cpu"
	"acic/internal/experiments/engine"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/prefetch"
	"acic/internal/trace"
	"acic/internal/workload"
)

// Workload bundles everything scheme runs share for one application: the
// preprocessed program (trace, branch annotations, fetch descriptors, and
// the collapsed block-access sequence — all scheme-independent), the
// next-use oracle built over the block sequence, and the successor array
// (NextAt[i] = next access to the block demanded at access i) that lets
// the oracle schemes answer their dominant query with one slice read.
type Workload struct {
	Profile workload.Profile
	Prog    *cpu.Program
	Trace   *trace.Trace
	Ann     []branch.Annotation
	Blocks  []uint64
	Oracle  *analysis.NextUseOracle
	NextAt  []int64
}

// Prepare generates a workload of n instructions and builds the shared
// artifacts, including the data-side latency timeline every scheme run
// reads instead of re-simulating the data hierarchy. It runs the staged
// pipeline (trace → program → successor array → latency timeline) without
// a persistent store; hand PipelineConfig a Dir to make these stages
// reusable artifacts across processes.
func Prepare(p workload.Profile, n int) *Workload {
	pl, err := NewPipeline(PipelineConfig{
		N:      n,
		Lookup: func(name string) (workload.Profile, bool) { return p, name == p.Name },
	})
	if err != nil {
		panic(err) // unreachable: no store directory was configured
	}
	w, err := pl.Workload(p.Name)
	if err != nil {
		panic(err) // unreachable: the profile is registered in the lookup
	}
	return w
}

// AutoGangWindow, as Options.GangWindow (or Suite.GangWindow), selects the
// measured adaptive traversal window: derived at gang startup from the
// members' probed footprints against the host cache budget
// (MeasuredGangWindow) instead of the fixed cpu.DefaultGangWindow
// heuristic. Like every window choice it affects only host-cache
// behavior, never results.
const AutoGangWindow = -1

// Options configure a simulation run.
type Options struct {
	WarmupFrac float64 // fraction of instructions treated as warmup (0.1)
	Prefetcher string  // any name from Prefetchers(); "" = "fdp"
	// Sample selects SDM-style set-sampled simulation (zero value = full):
	// only the sampled constituencies of i-cache sets are simulated and
	// the returned results are extrapolated back to the whole cache
	// (cpu.Result.Extrapolated; DESIGN.md §10 documents the error bounds).
	Sample cpu.SampleConfig
	// GangWindow is the traversal window gang runs use: 0 selects the
	// fixed cpu.DefaultGangWindow, AutoGangWindow derives it from measured
	// footprints (MeasuredGangWindow), any positive value pins it. Results
	// are byte-identical at every setting.
	GangWindow int
}

// DefaultOptions mirrors the paper's setup: FDP platform, 10% warmup.
func DefaultOptions() Options { return Options{WarmupFrac: 0.1, Prefetcher: "fdp"} }

// SampleConfigForSets converts a sampled-set count over the default L1i
// geometry into the simulator's sampling configuration: sampleSets of the
// icache.DefaultSets sets are simulated, one per stride-sized
// constituency, pinned to the fixed fallback constituency 1. 0 (or the
// full set count) disables sampling; the count must otherwise be a power
// of two below the set count. The default paths (Suite, RunSampled, the
// CLIs) go through SampleConfigFor instead, which derives the
// constituency from the workload digest.
func SampleConfigForSets(sampleSets int) (cpu.SampleConfig, error) {
	return SampleConfigFor(sampleSets, 1, "")
}

// SampleConfigFor converts a sampled-set count into one workload's
// sampling configuration. offset selects the constituency: 0 derives it
// from app's profile digest (sampleOffsetFor — a per-workload default
// that never lands on constituency 0), any value in [1, stride) pins it
// explicitly. Constituency 0 is not selectable: function entries and
// region starts concentrate at block numbers that are multiples of small
// powers of two, so the sets ≡ 0 (mod stride) constituency holds a
// disproportionate share of hot, well-cached blocks and underestimates
// miss rates by ~25% on the datacenter workloads (DESIGN.md §10).
func SampleConfigFor(sampleSets, offset int, app string) (cpu.SampleConfig, error) {
	switch {
	case sampleSets == 0 || sampleSets == icache.DefaultSets:
		return cpu.SampleConfig{}, nil
	case sampleSets < 0 || sampleSets > icache.DefaultSets:
		return cpu.SampleConfig{}, fmt.Errorf("experiments: -sample-sets must be in [1,%d], got %d", icache.DefaultSets, sampleSets)
	case sampleSets&(sampleSets-1) != 0:
		return cpu.SampleConfig{}, fmt.Errorf("experiments: -sample-sets must be a power of two, got %d", sampleSets)
	}
	stride := icache.DefaultSets / sampleSets
	if offset == 0 {
		offset = sampleOffsetFor(stride, app)
	}
	if offset < 1 || offset >= stride {
		return cpu.SampleConfig{}, fmt.Errorf("experiments: sample constituency must be in [1,%d) (0 is alignment-biased; DESIGN.md §10), got %d", stride, offset)
	}
	cfg := cpu.SampleConfig{Stride: stride, Offset: offset}
	if err := cfg.Validate(); err != nil {
		return cpu.SampleConfig{}, err
	}
	return cfg, nil
}

// sampleOffsetFor derives a workload's default sample constituency from
// its profile digest: a stable hash folded into [1, stride). Every
// workload thus samples a fixed but decorrelated constituency — instead
// of all workloads sharing one arbitrary offset — and none can land on
// the alignment-biased constituency 0. Deterministic across processes
// (the digest is content-addressed), and part of the result-cache key
// (keys.go sampleKey), so cached sampled results can never be confused
// across constituencies.
func sampleOffsetFor(stride int, app string) int {
	if stride <= 2 {
		return 1
	}
	p, ok := workload.ByName(app)
	h := fnv.New32a()
	h.Write([]byte(profileDigest(p, ok, app)))
	return 1 + int(h.Sum32()%uint32(stride-1))
}

// Run simulates one scheme over the workload and returns the result
// (extrapolated when opts.Sample enables set sampling).
func Run(w *Workload, scheme string, opts Options) (cpu.Result, error) {
	sub, err := NewSampledScheme(scheme, w, opts.Sample)
	if err != nil {
		return cpu.Result{}, err
	}
	return RunSubsystem(w, sub, opts)
}

// RunSampled simulates one scheme under set sampling: sampleSets of the
// default 64 i-cache sets are simulated (standard SDM methodology, ~one
// stride-th of the per-access subsystem work) and the result is
// extrapolated back to the whole cache. The sampled constituency is
// derived from the workload's digest (SampleConfigFor). It is the fast
// quick-look lane; Run with zero Options.Sample remains the
// byte-identical reference.
func RunSampled(w *Workload, scheme string, sampleSets int, opts Options) (cpu.Result, error) {
	sample, err := SampleConfigFor(sampleSets, 0, w.Profile.Name)
	if err != nil {
		return cpu.Result{}, err
	}
	opts.Sample = sample
	return Run(w, scheme, opts)
}

// prefetcherPlatforms maps each platform name to its simulator wiring,
// weakest first (the display order of the bracketing experiments). The
// name list and RunSubsystem's dispatch both derive from this table so
// they cannot drift.
var prefetcherPlatforms = []struct {
	name  string
	apply func(*cpu.Config)
}{
	{"none", func(c *cpu.Config) { c.UseFDP = false }},
	{"next-line", func(c *cpu.Config) { c.UseFDP = false; c.Extra = prefetch.NewNextLine(1) }},
	{"stream", func(c *cpu.Config) { c.UseFDP = false; c.Extra = prefetch.NewStream(prefetch.DefaultStreamConfig()) }},
	{"entangling", func(c *cpu.Config) {
		c.UseFDP = false
		c.Extra = prefetch.NewEntangling(prefetch.DefaultEntanglingConfig())
	}},
	{"fdp", func(c *cpu.Config) { c.UseFDP = true }},
}

// Prefetchers lists the implemented prefetcher platforms, weakest first.
func Prefetchers() []string {
	names := make([]string, len(prefetcherPlatforms))
	for i, p := range prefetcherPlatforms {
		names[i] = p.name
	}
	return names
}

// platformConfig returns the core configuration for a prefetcher platform
// name ("" = "fdp"), wiring a fresh Extra prefetcher instance when the
// platform carries one.
func platformConfig(prefetcher string) (cpu.Config, error) {
	cfg := cpu.DefaultConfig()
	if prefetcher == "" {
		prefetcher = "fdp"
	}
	for _, p := range prefetcherPlatforms {
		if p.name == prefetcher {
			p.apply(&cfg)
			return cfg, nil
		}
	}
	return cpu.Config{}, fmt.Errorf("experiments: unknown prefetcher %q", prefetcher)
}

// warmup returns the warmup instruction count for a workload under opts.
// Length comes from the Program, not the trace — streamed-prepared
// workloads carry no Inst records.
func warmup(w *Workload, opts Options) int64 {
	return int64(float64(w.Prog.Len()) * opts.WarmupFrac)
}

// RunSubsystem simulates a pre-built subsystem over the workload. With
// opts.Sample enabled the simulator bypasses non-sampled constituencies
// and the result is extrapolated; the subsystem should have been built
// with the matching filter (NewSampledScheme or icache.Config.Sample) so
// its shared structures are scaled consistently.
func RunSubsystem(w *Workload, sub icache.Subsystem, opts Options) (cpu.Result, error) {
	cfg, err := platformConfig(opts.Prefetcher)
	if err != nil {
		return cpu.Result{}, err
	}
	if err := opts.Sample.Validate(); err != nil {
		return cpu.Result{}, err
	}
	cfg.Sample = opts.Sample
	hier := mem.New(mem.DefaultConfig())
	sim := cpu.NewSimulator(cfg, w.Prog, sub, hier)
	return sim.Run(warmup(w, opts)).Extrapolated(), nil
}

// GangCell names one gang member: a scheme run under a prefetcher
// platform ("" = the gang Options' Prefetcher). Cross-prefetcher gangs
// are sound because the only state members share is read-only — the
// Program and its data-latency timeline, which is prefetcher-independent
// (the data-access sequence is fixed by instruction order) — while every
// prefetcher-touched structure (FTQ, FDP stream, Extra prefetcher tables)
// is private per-member simulator state.
type GangCell struct {
	Scheme     string
	Prefetcher string
}

// RunGang simulates several schemes over one workload in a single gang:
// one traversal of the shared Program drives every scheme (see cpu.Gang),
// with the members' instruction-side hierarchies carved out of contiguous
// backing arrays. Results and errors are indexed like schemes; a scheme
// that fails to construct (or an unknown prefetcher) reports its error in
// errs while the remaining members still run. Each member's result is
// bit-identical to Run(w, scheme, opts).
func RunGang(w *Workload, schemes []string, opts Options) (results []cpu.Result, errs []error) {
	cells := make([]GangCell, len(schemes))
	for i, scheme := range schemes {
		cells[i] = GangCell{Scheme: scheme}
	}
	results, _, errs = RunGangCells(w, cells, opts)
	return results, errs
}

// RunGangCells simulates a heterogeneous gang over one workload: members
// may differ in prefetcher platform as well as scheme, and all advance
// through one shared Program traversal. Results and errors are indexed
// like cells; window reports the traversal window the gang ran under
// (derived from measured footprints when opts.GangWindow is
// AutoGangWindow). Each member's result is bit-identical to
// Run(w, cell.Scheme, opts-with-cell.Prefetcher).
func RunGangCells(w *Workload, cells []GangCell, opts Options) (results []cpu.Result, window int, errs []error) {
	results = make([]cpu.Result, len(cells))
	errs = make([]error, len(cells))
	subs := make([]icache.Subsystem, 0, len(cells))
	pfs := make([]string, 0, len(cells))
	slot := make([]int, 0, len(cells))
	for i, c := range cells {
		pf := c.Prefetcher
		if pf == "" {
			pf = opts.Prefetcher
		}
		if _, err := platformConfig(pf); err != nil {
			errs[i] = err
			continue
		}
		sub, err := NewSampledScheme(c.Scheme, w, opts.Sample)
		if err != nil {
			errs[i] = err
			continue
		}
		subs = append(subs, sub)
		pfs = append(pfs, pf)
		slot = append(slot, i)
	}
	gangRes, window, err := runGangMembers(w, subs, pfs, opts)
	if err != nil {
		// Per-member configs were validated above; treat a late failure as
		// affecting every member that made it into the gang.
		for _, i := range slot {
			errs[i] = err
		}
		return results, window, errs
	}
	for j, r := range gangRes {
		results[slot[j]] = r
	}
	return results, window, errs
}

// RunGangSubsystems gang-simulates pre-built subsystems over the workload
// (the building block under RunGang; use it to attach instrumentation to
// members before the run). Results are indexed like subs; every member
// runs under opts.Prefetcher.
func RunGangSubsystems(w *Workload, subs []icache.Subsystem, opts Options) ([]cpu.Result, error) {
	results, _, err := runGangMembers(w, subs, make([]string, len(subs)), opts)
	return results, err
}

// runGangMembers assembles and runs the gang: per-member platform configs
// (stateful Extra prefetchers must not be shared across members),
// struct-of-gangs hierarchies, and the traversal window — fixed, pinned,
// or measured per opts.GangWindow. pfs is indexed like subs; "" selects
// opts.Prefetcher.
func runGangMembers(w *Workload, subs []icache.Subsystem, pfs []string, opts Options) ([]cpu.Result, int, error) {
	if err := opts.Sample.Validate(); err != nil {
		return nil, 0, err
	}
	hiers := mem.NewGang(mem.DefaultConfig(), len(subs))
	members := make([]cpu.GangMember, len(subs))
	for i, sub := range subs {
		pf := pfs[i]
		if pf == "" {
			pf = opts.Prefetcher
		}
		cfg, err := platformConfig(pf)
		if err != nil {
			return nil, 0, err
		}
		cfg.Sample = opts.Sample
		members[i] = cpu.GangMember{Cfg: cfg, Sub: sub, Hier: hiers[i]}
	}
	window := opts.GangWindow
	if window == AutoGangWindow {
		window = MeasuredGangWindow(w.Prog, subs)
	}
	gang := cpu.NewGang(w.Prog, members, window)
	results := gang.Run(warmup(w, opts))
	for i := range results {
		results[i] = results[i].Extrapolated()
	}
	return results, gang.Window(), nil
}

// MeasuredGangWindow derives the traversal window an auto-mode gang of
// the given subsystems runs under: the widest member footprint — the
// default hierarchy's struct-of-gangs share plus the subsystem's own
// estimate — is probed against the detected (or ACIC_LLC_BYTES-
// overridden) host cache budget, with the program's measured bytes per
// instruction sizing the shared window slice (cpu.AutoGangWindow
// documents the rule).
func MeasuredGangWindow(prog *cpu.Program, subs []icache.Subsystem) int {
	hier := mem.New(mem.DefaultConfig()).FootprintBytes()
	perMember := hier
	for _, sub := range subs {
		if fp := hier + subsystemFootprint(sub); fp > perMember {
			perMember = fp
		}
	}
	return cpu.AutoGangWindow(engine.LLCBytes(), perMember, len(subs), prog.GangBytesPerInstr())
}

// GangWindowEstimate reports the traversal window a members-wide gang of
// default-footprint schemes over w would run under in auto mode —
// `acic-trace warm` prints it per workload so the measured bytes/instr
// and the host budget can be inspected without running a simulation.
func GangWindowEstimate(w *Workload, members int) int {
	perMember := mem.New(mem.DefaultConfig()).FootprintBytes() + defaultSubsystemFootprint()
	return cpu.AutoGangWindow(engine.LLCBytes(), perMember, members, w.Prog.GangBytesPerInstr())
}

// subsystemFootprint reads a subsystem's working-set estimate, falling
// back to the default-geometry L1 arrays for subsystems that do not
// report one.
func subsystemFootprint(sub icache.Subsystem) int64 {
	if f, ok := sub.(interface{ FootprintBytes() int64 }); ok {
		return f.FootprintBytes()
	}
	return defaultSubsystemFootprint()
}

func defaultSubsystemFootprint() int64 {
	return int64(icache.DefaultSets * icache.DefaultWays * 24)
}

// Speedup returns base cycles over result cycles.
func Speedup(base, res cpu.Result) float64 {
	if res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// MPKIReduction returns the fractional MPKI reduction of res vs base
// (positive = fewer misses).
func MPKIReduction(base, res cpu.Result) float64 {
	bm := base.MPKI()
	if bm == 0 {
		return 0
	}
	return (bm - res.MPKI()) / bm
}
