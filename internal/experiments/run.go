// Package experiments drives the paper's evaluation: it prepares workloads
// (trace generation, branch annotation, next-use oracle), instantiates
// every i-cache management scheme of Table IV, runs the timing simulator,
// and renders each table and figure of the paper (see DESIGN.md §5 for the
// experiment index).
package experiments

import (
	"fmt"

	"acic/internal/analysis"
	"acic/internal/branch"
	"acic/internal/cpu"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/prefetch"
	"acic/internal/trace"
	"acic/internal/workload"
)

// Workload bundles everything scheme runs share for one application: the
// preprocessed program (trace, branch annotations, fetch descriptors, and
// the collapsed block-access sequence — all scheme-independent), the
// next-use oracle built over the block sequence, and the successor array
// (NextAt[i] = next access to the block demanded at access i) that lets
// the oracle schemes answer their dominant query with one slice read.
type Workload struct {
	Profile workload.Profile
	Prog    *cpu.Program
	Trace   *trace.Trace
	Ann     []branch.Annotation
	Blocks  []uint64
	Oracle  *analysis.NextUseOracle
	NextAt  []int64
}

// Prepare generates a workload of n instructions and builds the shared
// artifacts.
func Prepare(p workload.Profile, n int) *Workload {
	tr := workload.Generate(p, n)
	fe := branch.NewFrontEnd()
	ann := fe.Annotate(tr)
	prog := cpu.NewProgram(tr, ann)
	return &Workload{
		Profile: p,
		Prog:    prog,
		Trace:   tr,
		Ann:     ann,
		Blocks:  prog.Blocks,
		Oracle:  analysis.NewNextUseOracle(prog.Blocks),
		NextAt:  analysis.NextUseArray(prog.Blocks),
	}
}

// Options configure a simulation run.
type Options struct {
	WarmupFrac float64 // fraction of instructions treated as warmup (0.1)
	Prefetcher string  // any name from Prefetchers(); "" = "fdp"
}

// DefaultOptions mirrors the paper's setup: FDP platform, 10% warmup.
func DefaultOptions() Options { return Options{WarmupFrac: 0.1, Prefetcher: "fdp"} }

// Run simulates one scheme over the workload and returns the result.
func Run(w *Workload, scheme string, opts Options) (cpu.Result, error) {
	sub, err := NewScheme(scheme, w)
	if err != nil {
		return cpu.Result{}, err
	}
	return RunSubsystem(w, sub, opts)
}

// prefetcherPlatforms maps each platform name to its simulator wiring,
// weakest first (the display order of the bracketing experiments). The
// name list and RunSubsystem's dispatch both derive from this table so
// they cannot drift.
var prefetcherPlatforms = []struct {
	name  string
	apply func(*cpu.Config)
}{
	{"none", func(c *cpu.Config) { c.UseFDP = false }},
	{"next-line", func(c *cpu.Config) { c.UseFDP = false; c.Extra = prefetch.NewNextLine(1) }},
	{"stream", func(c *cpu.Config) { c.UseFDP = false; c.Extra = prefetch.NewStream(prefetch.DefaultStreamConfig()) }},
	{"entangling", func(c *cpu.Config) {
		c.UseFDP = false
		c.Extra = prefetch.NewEntangling(prefetch.DefaultEntanglingConfig())
	}},
	{"fdp", func(c *cpu.Config) { c.UseFDP = true }},
}

// Prefetchers lists the implemented prefetcher platforms, weakest first.
func Prefetchers() []string {
	names := make([]string, len(prefetcherPlatforms))
	for i, p := range prefetcherPlatforms {
		names[i] = p.name
	}
	return names
}

// RunSubsystem simulates a pre-built subsystem over the workload.
func RunSubsystem(w *Workload, sub icache.Subsystem, opts Options) (cpu.Result, error) {
	cfg := cpu.DefaultConfig()
	pf := opts.Prefetcher
	if pf == "" {
		pf = "fdp"
	}
	found := false
	for _, p := range prefetcherPlatforms {
		if p.name == pf {
			p.apply(&cfg)
			found = true
			break
		}
	}
	if !found {
		return cpu.Result{}, fmt.Errorf("experiments: unknown prefetcher %q", opts.Prefetcher)
	}
	hier := mem.New(mem.DefaultConfig())
	sim := cpu.NewSimulator(cfg, w.Prog, sub, hier)
	warm := int64(float64(len(w.Trace.Insts)) * opts.WarmupFrac)
	return sim.Run(warm), nil
}

// Speedup returns base cycles over result cycles.
func Speedup(base, res cpu.Result) float64 {
	if res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// MPKIReduction returns the fractional MPKI reduction of res vs base
// (positive = fewer misses).
func MPKIReduction(base, res cpu.Result) float64 {
	bm := base.MPKI()
	if bm == 0 {
		return 0
	}
	return (bm - res.MPKI()) / bm
}
