// Package experiments drives the paper's evaluation: it prepares workloads
// (trace generation, branch annotation, next-use oracle), instantiates
// every i-cache management scheme of Table IV, runs the timing simulator,
// and renders each table and figure of the paper (see DESIGN.md §5 for the
// experiment index).
package experiments

import (
	"fmt"

	"acic/internal/analysis"
	"acic/internal/branch"
	"acic/internal/cpu"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/prefetch"
	"acic/internal/trace"
	"acic/internal/workload"
)

// Workload bundles everything scheme runs share for one application: the
// preprocessed program (trace, branch annotations, fetch descriptors, and
// the collapsed block-access sequence — all scheme-independent), the
// next-use oracle built over the block sequence, and the successor array
// (NextAt[i] = next access to the block demanded at access i) that lets
// the oracle schemes answer their dominant query with one slice read.
type Workload struct {
	Profile workload.Profile
	Prog    *cpu.Program
	Trace   *trace.Trace
	Ann     []branch.Annotation
	Blocks  []uint64
	Oracle  *analysis.NextUseOracle
	NextAt  []int64
}

// Prepare generates a workload of n instructions and builds the shared
// artifacts, including the data-side latency timeline every scheme run
// reads instead of re-simulating the data hierarchy. It runs the staged
// pipeline (trace → program → successor array → latency timeline) without
// a persistent store; hand PipelineConfig a Dir to make these stages
// reusable artifacts across processes.
func Prepare(p workload.Profile, n int) *Workload {
	pl, err := NewPipeline(PipelineConfig{
		N:      n,
		Lookup: func(name string) (workload.Profile, bool) { return p, name == p.Name },
	})
	if err != nil {
		panic(err) // unreachable: no store directory was configured
	}
	w, err := pl.Workload(p.Name)
	if err != nil {
		panic(err) // unreachable: the profile is registered in the lookup
	}
	return w
}

// Options configure a simulation run.
type Options struct {
	WarmupFrac float64 // fraction of instructions treated as warmup (0.1)
	Prefetcher string  // any name from Prefetchers(); "" = "fdp"
	// Sample selects SDM-style set-sampled simulation (zero value = full):
	// only the sampled constituencies of i-cache sets are simulated and
	// the returned results are extrapolated back to the whole cache
	// (cpu.Result.Extrapolated; DESIGN.md §10 documents the error bounds).
	Sample cpu.SampleConfig
}

// DefaultOptions mirrors the paper's setup: FDP platform, 10% warmup.
func DefaultOptions() Options { return Options{WarmupFrac: 0.1, Prefetcher: "fdp"} }

// SampleConfigForSets converts a sampled-set count over the default L1i
// geometry into the simulator's sampling configuration: sampleSets of the
// icache.DefaultSets sets are simulated, one per stride-sized
// constituency. 0 (or the full set count) disables sampling; the count
// must otherwise be a power of two below the set count.
func SampleConfigForSets(sampleSets int) (cpu.SampleConfig, error) {
	switch {
	case sampleSets == 0 || sampleSets == icache.DefaultSets:
		return cpu.SampleConfig{}, nil
	case sampleSets < 0 || sampleSets > icache.DefaultSets:
		return cpu.SampleConfig{}, fmt.Errorf("experiments: -sample-sets must be in [1,%d], got %d", icache.DefaultSets, sampleSets)
	case sampleSets&(sampleSets-1) != 0:
		return cpu.SampleConfig{}, fmt.Errorf("experiments: -sample-sets must be a power of two, got %d", sampleSets)
	}
	// Constituency 1, not 0: function entries and region starts concentrate
	// at block numbers that are multiples of small powers of two, so the
	// sets ≡ 0 (mod stride) constituency holds a disproportionate share of
	// hot, well-cached blocks and underestimates miss rates by ~25% on the
	// datacenter workloads. Constituency 1 measured the tightest error bars
	// of all offsets across apps × schemes (DESIGN.md §10).
	cfg := cpu.SampleConfig{Stride: icache.DefaultSets / sampleSets, Offset: 1}
	if err := cfg.Validate(); err != nil {
		return cpu.SampleConfig{}, err
	}
	return cfg, nil
}

// Run simulates one scheme over the workload and returns the result
// (extrapolated when opts.Sample enables set sampling).
func Run(w *Workload, scheme string, opts Options) (cpu.Result, error) {
	sub, err := NewSampledScheme(scheme, w, opts.Sample)
	if err != nil {
		return cpu.Result{}, err
	}
	return RunSubsystem(w, sub, opts)
}

// RunSampled simulates one scheme under set sampling: sampleSets of the
// default 64 i-cache sets are simulated (standard SDM methodology, ~one
// stride-th of the per-access subsystem work) and the result is
// extrapolated back to the whole cache. It is the fast quick-look lane;
// Run with zero Options.Sample remains the byte-identical reference.
func RunSampled(w *Workload, scheme string, sampleSets int, opts Options) (cpu.Result, error) {
	sample, err := SampleConfigForSets(sampleSets)
	if err != nil {
		return cpu.Result{}, err
	}
	opts.Sample = sample
	return Run(w, scheme, opts)
}

// prefetcherPlatforms maps each platform name to its simulator wiring,
// weakest first (the display order of the bracketing experiments). The
// name list and RunSubsystem's dispatch both derive from this table so
// they cannot drift.
var prefetcherPlatforms = []struct {
	name  string
	apply func(*cpu.Config)
}{
	{"none", func(c *cpu.Config) { c.UseFDP = false }},
	{"next-line", func(c *cpu.Config) { c.UseFDP = false; c.Extra = prefetch.NewNextLine(1) }},
	{"stream", func(c *cpu.Config) { c.UseFDP = false; c.Extra = prefetch.NewStream(prefetch.DefaultStreamConfig()) }},
	{"entangling", func(c *cpu.Config) {
		c.UseFDP = false
		c.Extra = prefetch.NewEntangling(prefetch.DefaultEntanglingConfig())
	}},
	{"fdp", func(c *cpu.Config) { c.UseFDP = true }},
}

// Prefetchers lists the implemented prefetcher platforms, weakest first.
func Prefetchers() []string {
	names := make([]string, len(prefetcherPlatforms))
	for i, p := range prefetcherPlatforms {
		names[i] = p.name
	}
	return names
}

// platformConfig returns the core configuration for a prefetcher platform
// name ("" = "fdp"), wiring a fresh Extra prefetcher instance when the
// platform carries one.
func platformConfig(prefetcher string) (cpu.Config, error) {
	cfg := cpu.DefaultConfig()
	if prefetcher == "" {
		prefetcher = "fdp"
	}
	for _, p := range prefetcherPlatforms {
		if p.name == prefetcher {
			p.apply(&cfg)
			return cfg, nil
		}
	}
	return cpu.Config{}, fmt.Errorf("experiments: unknown prefetcher %q", prefetcher)
}

// warmup returns the warmup instruction count for a workload under opts.
func warmup(w *Workload, opts Options) int64 {
	return int64(float64(len(w.Trace.Insts)) * opts.WarmupFrac)
}

// RunSubsystem simulates a pre-built subsystem over the workload. With
// opts.Sample enabled the simulator bypasses non-sampled constituencies
// and the result is extrapolated; the subsystem should have been built
// with the matching filter (NewSampledScheme or icache.Config.Sample) so
// its shared structures are scaled consistently.
func RunSubsystem(w *Workload, sub icache.Subsystem, opts Options) (cpu.Result, error) {
	cfg, err := platformConfig(opts.Prefetcher)
	if err != nil {
		return cpu.Result{}, err
	}
	if err := opts.Sample.Validate(); err != nil {
		return cpu.Result{}, err
	}
	cfg.Sample = opts.Sample
	hier := mem.New(mem.DefaultConfig())
	sim := cpu.NewSimulator(cfg, w.Prog, sub, hier)
	return sim.Run(warmup(w, opts)).Extrapolated(), nil
}

// RunGang simulates several schemes over one workload in a single gang:
// one traversal of the shared Program drives every scheme (see cpu.Gang),
// with the members' instruction-side hierarchies carved out of contiguous
// backing arrays. Results and errors are indexed like schemes; a scheme
// that fails to construct (or an unknown prefetcher) reports its error in
// errs while the remaining members still run. Each member's result is
// bit-identical to Run(w, scheme, opts).
func RunGang(w *Workload, schemes []string, opts Options) (results []cpu.Result, errs []error) {
	results = make([]cpu.Result, len(schemes))
	errs = make([]error, len(schemes))
	if _, err := platformConfig(opts.Prefetcher); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return results, errs
	}
	subs := make([]icache.Subsystem, 0, len(schemes))
	slot := make([]int, 0, len(schemes))
	for i, scheme := range schemes {
		sub, err := NewSampledScheme(scheme, w, opts.Sample)
		if err != nil {
			errs[i] = err
			continue
		}
		subs = append(subs, sub)
		slot = append(slot, i)
	}
	gangRes, err := RunGangSubsystems(w, subs, opts)
	if err != nil {
		// platformConfig was validated above; treat a late failure as
		// affecting every member that made it into the gang.
		for _, i := range slot {
			errs[i] = err
		}
		return results, errs
	}
	for j, r := range gangRes {
		results[slot[j]] = r
	}
	return results, errs
}

// RunGangSubsystems gang-simulates pre-built subsystems over the workload
// (the building block under RunGang; use it to attach instrumentation to
// members before the run). Results are indexed like subs.
func RunGangSubsystems(w *Workload, subs []icache.Subsystem, opts Options) ([]cpu.Result, error) {
	if _, err := platformConfig(opts.Prefetcher); err != nil {
		return nil, err
	}
	if err := opts.Sample.Validate(); err != nil {
		return nil, err
	}
	hiers := mem.NewGang(mem.DefaultConfig(), len(subs))
	members := make([]cpu.GangMember, len(subs))
	for i, sub := range subs {
		// Platform configs are built per member: stateful Extra prefetchers
		// must not be shared across schemes.
		cfg, _ := platformConfig(opts.Prefetcher)
		cfg.Sample = opts.Sample
		members[i] = cpu.GangMember{Cfg: cfg, Sub: sub, Hier: hiers[i]}
	}
	gang := cpu.NewGang(w.Prog, members, 0)
	results := gang.Run(warmup(w, opts))
	for i := range results {
		results[i] = results[i].Extrapolated()
	}
	return results, nil
}

// Speedup returns base cycles over result cycles.
func Speedup(base, res cpu.Result) float64 {
	if res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// MPKIReduction returns the fractional MPKI reduction of res vs base
// (positive = fewer misses).
func MPKIReduction(base, res cpu.Result) float64 {
	bm := base.MPKI()
	if bm == 0 {
		return 0
	}
	return (bm - res.MPKI()) / bm
}
