// Package experiments drives the paper's evaluation: it prepares workloads
// (trace generation, branch annotation, next-use oracle), instantiates
// every i-cache management scheme of Table IV, runs the timing simulator,
// and renders each table and figure of the paper (see DESIGN.md §5 for the
// experiment index).
package experiments

import (
	"fmt"

	"acic/internal/analysis"
	"acic/internal/branch"
	"acic/internal/cpu"
	"acic/internal/icache"
	"acic/internal/mem"
	"acic/internal/prefetch"
	"acic/internal/trace"
	"acic/internal/workload"
)

// Workload bundles everything scheme runs share for one application: the
// trace, its branch annotations (scheme-independent), the block-access
// sequence, and the next-use oracle built over it.
type Workload struct {
	Profile workload.Profile
	Trace   *trace.Trace
	Ann     []branch.Annotation
	Blocks  []uint64
	Oracle  *analysis.NextUseOracle
}

// Prepare generates a workload of n instructions and builds the shared
// artifacts.
func Prepare(p workload.Profile, n int) *Workload {
	tr := workload.Generate(p, n)
	fe := branch.NewFrontEnd()
	ann := fe.Annotate(tr)
	blocks := tr.BlockAccesses()
	return &Workload{
		Profile: p,
		Trace:   tr,
		Ann:     ann,
		Blocks:  blocks,
		Oracle:  analysis.NewNextUseOracle(blocks),
	}
}

// Options configure a simulation run.
type Options struct {
	WarmupFrac float64 // fraction of instructions treated as warmup (0.1)
	Prefetcher string  // "fdp" (default), "entangling", "none"
}

// DefaultOptions mirrors the paper's setup: FDP platform, 10% warmup.
func DefaultOptions() Options { return Options{WarmupFrac: 0.1, Prefetcher: "fdp"} }

// Run simulates one scheme over the workload and returns the result.
func Run(w *Workload, scheme string, opts Options) (cpu.Result, error) {
	sub, err := NewScheme(scheme, w)
	if err != nil {
		return cpu.Result{}, err
	}
	return RunSubsystem(w, sub, opts), nil
}

// RunSubsystem simulates a pre-built subsystem over the workload.
func RunSubsystem(w *Workload, sub icache.Subsystem, opts Options) cpu.Result {
	cfg := cpu.DefaultConfig()
	switch opts.Prefetcher {
	case "", "fdp":
		cfg.UseFDP = true
	case "none":
		cfg.UseFDP = false
	case "entangling":
		cfg.UseFDP = false
		cfg.Extra = prefetch.NewEntangling(prefetch.DefaultEntanglingConfig())
	case "next-line":
		cfg.UseFDP = false
		cfg.Extra = prefetch.NewNextLine(1)
	case "stream":
		cfg.UseFDP = false
		cfg.Extra = prefetch.NewStream(prefetch.DefaultStreamConfig())
	default:
		panic(fmt.Sprintf("experiments: unknown prefetcher %q", opts.Prefetcher))
	}
	hier := mem.New(mem.DefaultConfig())
	sim := cpu.NewSimulator(cfg, w.Trace, w.Ann, sub, hier)
	warm := int64(float64(len(w.Trace.Insts)) * opts.WarmupFrac)
	return sim.Run(warm)
}

// Speedup returns base cycles over result cycles.
func Speedup(base, res cpu.Result) float64 {
	if res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// MPKIReduction returns the fractional MPKI reduction of res vs base
// (positive = fewer misses).
func MPKIReduction(base, res cpu.Result) float64 {
	bm := base.MPKI()
	if bm == 0 {
		return 0
	}
	return (bm - res.MPKI()) / bm
}
