package experiments

import (
	"fmt"

	"acic/internal/stats"
)

// Experiment is one runnable entry of the paper's experiment index: a
// stable slug (the -exp id and the /v1/figures/{name} path element — one
// identifier, so CLI names and the serve API can never drift), a
// one-line description, and a renderer that executes its cells on the
// given suite and returns the printed output. The registry lives here —
// not in acic-bench — so every driver (the bench CLI, the distributed
// coordinator, acic-serve) runs the identical experiment list and
// produces byte-identical output for a given suite configuration.
//
// Slugs are lowercase [a-z0-9-], unique, and stable: renaming one is a
// breaking change to both the CLI and the versioned HTTP API
// (registry_test.go pins the invariants).
type Experiment struct {
	Slug string
	Desc string
	Run  func(s *Suite) (string, error)
}

func tableExp(slug, desc string, f func(*Suite) (*stats.Table, error)) Experiment {
	return Experiment{Slug: slug, Desc: desc, Run: func(s *Suite) (string, error) {
		t, err := f(s)
		if err != nil {
			return "", err
		}
		return t.String(), nil
	}}
}

// staticExp wraps suite-independent tables (Table I/II/IV).
func staticExp(slug, desc string, f func() *stats.Table) Experiment {
	return tableExp(slug, desc, func(*Suite) (*stats.Table, error) { return f(), nil })
}

// LookupExperiment resolves a slug to its registry entry. Every
// by-name consumer — acic-bench -exp, acic-coord -exp, the serve
// daemon's /v1/figures/{name} — resolves through here, which is what
// makes the slug the single spelling of an experiment's identity.
func LookupExperiment(slug string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Slug == slug {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExperimentSlugs returns every registry slug in presentation order.
func ExperimentSlugs() []string {
	reg := Registry()
	slugs := make([]string, len(reg))
	for i, e := range reg {
		slugs[i] = e.Slug
	}
	return slugs
}

// Registry returns the full experiment index in presentation order (the
// order `-exp all` prints).
func Registry() []Experiment {
	return []Experiment{
		staticExp("table1", "ACIC storage breakdown (Table I)", Table1),
		staticExp("table2", "simulation parameters (Table II)", Table2),
		tableExp("table3", "per-app baseline L1i MPKI (Table III)", (*Suite).Table3),
		staticExp("table4", "per-scheme storage overhead (Table IV)", Table4),
		tableExp("fig1a", "reuse-distance distributions (Fig 1a)", (*Suite).Fig1a),
		tableExp("fig1b", "reuse-distance Markov chain, media-streaming (Fig 1b)",
			func(s *Suite) (*stats.Table, error) { return s.Fig1b("media-streaming") }),
		tableExp("fig3a", "i-Filter / access-count / OPT speedups (Fig 3a)", (*Suite).Fig3a),
		{Slug: "fig3b", Desc: "reuse-delta of incoming vs OPT-outgoing blocks (Fig 3b)", Run: runFig3b},
		{Slug: "fig6", Desc: "CSHR entry lifetime distribution, data-caching (Fig 6)", Run: runFig6},
		tableExp("fig10", "speedup of all schemes over LRU+FDP (Fig 10)", (*Suite).Fig10),
		tableExp("fig11", "MPKI reduction of all schemes (Fig 11)", (*Suite).Fig11),
		tableExp("fig12a", "ACIC bypass accuracy by reuse range (Fig 12a)", (*Suite).Fig12a),
		tableExp("fig12b", "random-60% bypass vs ACIC (Fig 12b)", (*Suite).Fig12b),
		tableExp("fig13", "fraction of i-Filter victims admitted (Fig 13)", (*Suite).Fig13),
		tableExp("fig14", "parallel vs instant predictor update (Fig 14)", (*Suite).Fig14),
		tableExp("fig15", "parameter sensitivity (Fig 15)", (*Suite).Fig15),
		tableExp("fig16", "ACIC speedup over LRU+i-Filter baseline (Fig 16)", (*Suite).Fig16),
		tableExp("fig17", "simplified-design ablation (Fig 17)", (*Suite).Fig17),
		tableExp("fig18", "SPEC speedups (Fig 18)", (*Suite).Fig18),
		tableExp("fig19", "SPEC MPKI reductions (Fig 19)", (*Suite).Fig19),
		tableExp("fig20", "speedups over entangling baseline (Fig 20)", (*Suite).Fig20),
		tableExp("fig21", "MPKI reductions over entangling baseline (Fig 21)", (*Suite).Fig21),
		tableExp("energy", "chip-energy delta of ACIC (Section III-D)", (*Suite).Energy),
		tableExp("ext-schemes", "extension baselines: DIP family, EAF, PLRU, pf-aware ACIC",
			(*Suite).ExtendedComparison),
		tableExp("ext-pfaware", "prefetch-aware ACIC (paper future work)", (*Suite).PrefetchAware),
		tableExp("ext-headroom", "LRU miss-ratio curve over capacity", (*Suite).Headroom),
		tableExp("ext-prefetchers", "baseline under each prefetcher", (*Suite).PrefetcherBaselines),
		tableExp("ext-evict-train", "CSHR unresolved-eviction training ablation", AblationCSHRDefault),
	}
}

func runFig3b(s *Suite) (string, error) {
	h, wrong, err := s.Fig3b("media-streaming")
	if err != nil {
		return "", err
	}
	labels := []string{"<=-10000", "-1000", "-100", "-10", "<=0", "10", "100", "1000", "10000", ">10000"}
	t := &stats.Table{Header: []string{"delta bucket", "fraction"}}
	for i, f := range h.Fractions() {
		t.AddRow(labels[i], stats.Percent(f))
	}
	return t.String() + fmt.Sprintf("wrong insertions (delta>0): %s (paper: 38.38%%)\n", stats.Percent(wrong)), nil
}

func runFig6(s *Suite) (string, error) {
	h, err := s.Fig6("data-caching")
	if err != nil {
		return "", err
	}
	labels := []string{"0-50", "50-100", "100-150", "150-200", "200-250", "250-300", "300-350", "350-400", "InF"}
	t := &stats.Table{Header: []string{"comparisons", "fraction"}}
	for i, f := range h.Fractions() {
		t.AddRow(labels[i], stats.Percent(f))
	}
	return t.String(), nil
}
