package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"acic/internal/stats"
	"acic/internal/workload"
)

// newTestPipeline builds a pipeline over dir with a small trace.
func newTestPipeline(t *testing.T, n int, dir string) *Pipeline {
	t.Helper()
	pl, err := NewPipeline(PipelineConfig{N: n, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// assertWorkloadsEqual compares every prepared array two workloads carry.
func assertWorkloadsEqual(t *testing.T, want, got *Workload) {
	t.Helper()
	if want.Profile != got.Profile {
		t.Fatalf("profile mismatch: %v vs %v", got.Profile.Name, want.Profile.Name)
	}
	if !reflect.DeepEqual(want.Trace.Insts, got.Trace.Insts) {
		t.Fatal("trace instruction streams differ")
	}
	if !reflect.DeepEqual(want.Ann, got.Ann) {
		t.Fatal("branch annotations differ")
	}
	if !reflect.DeepEqual(want.Prog.Desc, got.Prog.Desc) {
		t.Fatal("program descriptor arrays differ")
	}
	if !reflect.DeepEqual(want.Prog.Blocks, got.Prog.Blocks) {
		t.Fatal("collapsed block sequences differ")
	}
	if !reflect.DeepEqual(want.Prog.MemBlk, got.Prog.MemBlk) {
		t.Fatal("data-block arrays differ")
	}
	if !reflect.DeepEqual(want.Prog.DataLat, got.Prog.DataLat) {
		t.Fatal("data-latency timelines differ")
	}
	if !reflect.DeepEqual(want.NextAt, got.NextAt) {
		t.Fatal("successor arrays differ")
	}
}

// assertStageCounts checks every stage's (computed, fromStore) counters.
func assertStageCounts(t *testing.T, pl *Pipeline, computed, fromStore int64) {
	t.Helper()
	for _, st := range pl.Stats() {
		if st.Computed != computed || st.FromStore != fromStore {
			t.Errorf("stage %s: computed=%d fromStore=%d, want %d/%d",
				st.Stage, st.Computed, st.FromStore, computed, fromStore)
		}
	}
}

// TestPipelineWarmStoreRoundTrip is the tentpole's core promise: a second
// pipeline over the same store loads every stage (zero regenerations) and
// reconstructs a workload equal, array for array, to the cold one — and
// simulations over both produce bit-identical results.
func TestPipelineWarmStoreRoundTrip(t *testing.T) {
	const app, n = "media-streaming", 30_000
	dir := t.TempDir()

	cold := newTestPipeline(t, n, dir)
	w1, err := cold.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	assertStageCounts(t, cold, 1, 0)

	warm := newTestPipeline(t, n, dir)
	w2, err := warm.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	assertStageCounts(t, warm, 0, 1)
	if got := warm.Regenerated(); got != 0 {
		t.Errorf("warm store regenerated %d artifacts, want 0", got)
	}
	assertWorkloadsEqual(t, w1, w2)

	opts := DefaultOptions()
	for _, scheme := range []string{"lru", "acic", "opt"} {
		r1, err1 := Run(w1, scheme, opts)
		r2, err2 := Run(w2, scheme, opts)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", scheme, err1, err2)
		}
		if r1 != r2 {
			t.Errorf("%s: warm-store result diverges:\ncold %+v\nwarm %+v", scheme, r1, r2)
		}
	}
}

// TestPipelineMatchesPrepare pins the staged pipeline to the reference
// monolithic path: Prepare and a store-backed pipeline must produce the
// same arrays.
func TestPipelineMatchesPrepare(t *testing.T) {
	const app, n = "sibench", 20_000
	prof, ok := workload.ByName(app)
	if !ok {
		t.Fatal("unknown test workload")
	}
	want := Prepare(prof, n)

	pl := newTestPipeline(t, n, t.TempDir())
	got, err := pl.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	assertWorkloadsEqual(t, want, got)

	// And again through the store.
	warm := newTestPipeline(t, n, t.TempDir())
	got2, err := warm.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	assertWorkloadsEqual(t, want, got2)
}

// corruptStore mangles every artifact in dir with the given transform.
func corruptStore(t *testing.T, dir string, mangle func([]byte) []byte) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.actr"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f, mangle(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(files)
}

// TestPipelineCorruptArtifactsRegenerate: flipped-bit and truncated store
// entries must be treated as misses — the stages regenerate, the workload
// is still correct, and the rewritten store serves the next run warm.
func TestPipelineCorruptArtifactsRegenerate(t *testing.T) {
	const app, n = "media-streaming", 20_000
	mangles := map[string]func([]byte) []byte{
		"bitflip":  func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"truncate": func(b []byte) []byte { return b[:len(b)/3] },
		"garbage":  func(b []byte) []byte { return []byte("not an artifact") },
	}
	prof, _ := workload.ByName(app)
	want := Prepare(prof, n)
	for name, mangle := range mangles {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := newTestPipeline(t, n, dir).Workload(app); err != nil {
				t.Fatal(err)
			}
			if files := corruptStore(t, dir, mangle); files != 4 {
				t.Fatalf("store holds %d artifacts, want 4", files)
			}

			pl := newTestPipeline(t, n, dir)
			got, err := pl.Workload(app)
			if err != nil {
				t.Fatal(err)
			}
			assertWorkloadsEqual(t, want, got)
			assertStageCounts(t, pl, 1, 0) // every stage regenerated

			// The regeneration rewrote the store: next run is warm again.
			rewarmed := newTestPipeline(t, n, dir)
			if _, err := rewarmed.Workload(app); err != nil {
				t.Fatal(err)
			}
			assertStageCounts(t, rewarmed, 0, 1)
		})
	}
}

// TestPipelineWarm exercises the `acic-trace warm` path: Warm materializes
// all four stages without assembling workloads, and a suite over the same
// store then prepares with zero regenerations.
func TestPipelineWarm(t *testing.T) {
	dir := t.TempDir()
	apps := []string{"media-streaming", "sibench"}
	pl := newTestPipeline(t, 20_000, dir)
	if err := pl.Warm(apps...); err != nil {
		t.Fatal(err)
	}
	assertStageCounts(t, pl, 2, 0)
	if n := pl.WorkloadsPrepared(); n != 0 {
		t.Errorf("Warm assembled %d workloads, want 0", n)
	}

	s := NewSuite(20_000)
	s.Apps = apps
	s.ArtifactDir = dir
	if err := s.PrepareAll(apps...); err != nil {
		t.Fatal(err)
	}
	for _, st := range s.PrepareStats() {
		if st.Computed != 0 || st.FromStore != 2 {
			t.Errorf("stage %s after warm: computed=%d fromStore=%d, want 0/2", st.Stage, st.Computed, st.FromStore)
		}
	}
}

// renderAll renders the full acic-bench experiment set (every renderer the
// -exp all path drives) against one suite and returns the concatenated
// output bytes.
func renderAll(t *testing.T, s *Suite) string {
	t.Helper()
	var out strings.Builder
	renderers := []struct {
		name string
		run  func() (*stats.Table, error)
	}{
		{"table3", s.Table3},
		{"fig1a", s.Fig1a},
		{"fig1b", func() (*stats.Table, error) { return s.Fig1b("media-streaming") }},
		{"fig3a", s.Fig3a},
		{"fig10", s.Fig10},
		{"fig11", s.Fig11},
		{"fig12a", s.Fig12a},
		{"fig12b", s.Fig12b},
		{"fig13", s.Fig13},
		{"fig14", s.Fig14},
		{"fig15", s.Fig15},
		{"fig16", s.Fig16},
		{"fig17", s.Fig17},
		{"fig18", s.Fig18},
		{"fig19", s.Fig19},
		{"fig20", s.Fig20},
		{"fig21", s.Fig21},
		{"energy", s.Energy},
		{"ext-schemes", s.ExtendedComparison},
		{"ext-pfaware", s.PrefetchAware},
		{"ext-headroom", s.Headroom},
		{"ext-prefetchers", s.PrefetcherBaselines},
		{"ext-evict-train", func() (*stats.Table, error) { return AblationCSHRDefault(s) }},
	}
	for _, r := range renderers {
		tbl, err := r.run()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		out.WriteString("=== " + r.name + "\n" + tbl.String())
	}
	// The two histogram experiments of the -exp all set.
	h3b, wrong, err := s.Fig3b("media-streaming")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range h3b.Fractions() {
		out.WriteString(stats.Percent(f) + " ")
	}
	out.WriteString(stats.Percent(wrong) + "\n")
	h6, err := s.Fig6("data-caching")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range h6.Fractions() {
		out.WriteString(stats.Percent(f) + " ")
	}
	out.WriteString("\n")
	return out.String()
}

// TestExpAllColdVsWarmStoreByteIdentical is the acceptance check: a warm
// artifact store must leave the full experiment output byte-identical to a
// cold run while every prepare stage reports zero regenerations.
func TestExpAllColdVsWarmStoreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment set in -short mode")
	}
	const n = 12_000
	apps := []string{"media-streaming", "sibench"}
	dir := t.TempDir()

	coldSuite := NewSuite(n)
	coldSuite.Apps = apps
	coldSuite.ArtifactDir = dir
	cold := renderAll(t, coldSuite)
	for _, st := range coldSuite.PrepareStats() {
		if st.FromStore != 0 {
			t.Errorf("cold run loaded %d %s artifacts from an empty store", st.FromStore, st.Stage)
		}
		if st.Computed == 0 {
			t.Errorf("cold run computed no %s artifacts", st.Stage)
		}
	}

	warmSuite := NewSuite(n)
	warmSuite.Apps = apps
	warmSuite.ArtifactDir = dir
	warm := renderAll(t, warmSuite)

	if warm != cold {
		t.Errorf("warm-store output diverges from cold run:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	for _, st := range warmSuite.PrepareStats() {
		if st.Computed != 0 {
			t.Errorf("warm run regenerated %d %s artifacts, want 0 (prepare should be skipped)", st.Computed, st.Stage)
		}
		if st.Computed == 0 && st.FromStore == 0 {
			t.Errorf("warm run neither computed nor loaded %s artifacts", st.Stage)
		}
	}
}
