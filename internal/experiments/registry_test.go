package experiments

import (
	"regexp"
	"testing"
)

// slugPattern is the contract slugs must satisfy to be usable verbatim
// as -exp ids and /v1/figures/{name} path elements.
var slugPattern = regexp.MustCompile(`^[a-z0-9-]+$`)

// TestRegistrySlugsStable pins the registry's identity invariants:
// slugs are unique, well-formed, and described. A violation here means
// either a CLI name collision or a /v1/ API break.
func TestRegistrySlugsStable(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range Registry() {
		if !slugPattern.MatchString(e.Slug) {
			t.Errorf("slug %q is not lowercase [a-z0-9-]", e.Slug)
		}
		if seen[e.Slug] {
			t.Errorf("duplicate slug %q", e.Slug)
		}
		seen[e.Slug] = true
		if e.Desc == "" {
			t.Errorf("slug %q has no description", e.Slug)
		}
		if e.Run == nil {
			t.Errorf("slug %q has no renderer", e.Slug)
		}
	}
	if len(seen) == 0 {
		t.Fatal("registry is empty")
	}
}

// TestLookupExperiment: every slug resolves to itself; unknown slugs
// miss cleanly.
func TestLookupExperiment(t *testing.T) {
	for _, slug := range ExperimentSlugs() {
		e, ok := LookupExperiment(slug)
		if !ok || e.Slug != slug {
			t.Errorf("LookupExperiment(%q) = (%q, %v)", slug, e.Slug, ok)
		}
	}
	if _, ok := LookupExperiment("no-such-experiment"); ok {
		t.Error("unknown slug resolved")
	}
}

// TestExperimentSlugsOrder: ExperimentSlugs mirrors Registry order —
// the presentation order -exp all and /v1/experiments both follow.
func TestExperimentSlugsOrder(t *testing.T) {
	reg := Registry()
	slugs := ExperimentSlugs()
	if len(slugs) != len(reg) {
		t.Fatalf("len mismatch: %d slugs, %d entries", len(slugs), len(reg))
	}
	for i := range reg {
		if slugs[i] != reg[i].Slug {
			t.Errorf("slug[%d] = %q, registry[%d] = %q", i, slugs[i], i, reg[i].Slug)
		}
	}
}
