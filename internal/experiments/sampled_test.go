package experiments

import (
	"math"
	"testing"

	"acic/internal/cpu"
	"acic/internal/workload"
)

// sampledTestWorkload prepares one small synthetic workload for the
// sampled-mode tests (shared across subtests via the prepare pipeline's
// in-memory memoization is not needed — each call is cheap at this n).
func sampledTestWorkload(t *testing.T, app string, n int) *Workload {
	t.Helper()
	p, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown workload %q", app)
	}
	return Prepare(p, n)
}

// relErr returns |a/b - 1| in percent (0 when both are zero).
func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 100
	}
	return 100 * math.Abs(a/b-1)
}

// Sampled-mode differential bounds, per prefetcher platform (DESIGN.md
// §10): the sampled lane must land within these of the full reference on
// every scheme × prefetcher cell of the small synthetic workloads below.
// FDP is the paper's primary platform and holds the tightest bars; table
// prefetchers train on the sampled stream only and are the loosest.
var sampledBounds = map[string]struct{ cycles, mpki float64 }{
	"fdp":        {cycles: 8, mpki: 35},
	"none":       {cycles: 10, mpki: 35},
	"entangling": {cycles: 18, mpki: 45},
}

// TestSampledMatchesFullWithinBounds pins the sampled fast mode's error
// bars: every scheme × prefetcher cell, simulated at -sample-sets 8,
// must extrapolate to within the documented bound of the full run.
func TestSampledMatchesFullWithinBounds(t *testing.T) {
	schemes := []string{"lru", "srrip", "harmony", "ghrp", "dsb", "vvc", "vc3k", "acic", "opt", "opt-bypass"}
	for _, app := range []string{"media-streaming", "web-search"} {
		w := sampledTestWorkload(t, app, 200_000)
		for pf, bound := range sampledBounds {
			for _, scheme := range schemes {
				opts := DefaultOptions()
				opts.Prefetcher = pf
				full, err := Run(w, scheme, opts)
				if err != nil {
					t.Fatalf("%s/%s/%s full: %v", app, scheme, pf, err)
				}
				samp, err := RunSampled(w, scheme, 8, opts)
				if err != nil {
					t.Fatalf("%s/%s/%s sampled: %v", app, scheme, pf, err)
				}
				if samp.SampleStride != 8 {
					t.Fatalf("%s/%s/%s: SampleStride = %d, want 8", app, scheme, pf, samp.SampleStride)
				}
				// The reference takes its warmup snapshot at the end of the
				// step that crosses the boundary (overshooting by up to a
				// fetch group); the sampled lane lands exactly on it.
				if d := samp.Instructions - full.Instructions; d < 0 || d > 8 {
					t.Fatalf("%s/%s/%s: sampled run covers %d instructions, full %d",
						app, scheme, pf, samp.Instructions, full.Instructions)
				}
				if d := samp.BlockAccesses - full.BlockAccesses; d < -2 || d > 2 {
					t.Fatalf("%s/%s/%s: sampled run covers %d accesses, full %d",
						app, scheme, pf, samp.BlockAccesses, full.BlockAccesses)
				}
				if e := relErr(float64(samp.Cycles), float64(full.Cycles)); e > bound.cycles {
					t.Errorf("%s/%s/%s: cycles error %.2f%% > %.0f%% (sampled %d, full %d)",
						app, scheme, pf, e, bound.cycles, samp.Cycles, full.Cycles)
				}
				if e := relErr(samp.MPKI(), full.MPKI()); e > bound.mpki {
					t.Errorf("%s/%s/%s: MPKI error %.2f%% > %.0f%% (sampled %.3f, full %.3f)",
						app, scheme, pf, e, bound.mpki, samp.MPKI(), full.MPKI())
				}
			}
		}
	}
}

// TestSampledDeterministic pins run-to-run determinism: the same
// -sample-sets value must reproduce the identical Result struct.
func TestSampledDeterministic(t *testing.T) {
	w := sampledTestWorkload(t, "media-streaming", 150_000)
	for _, scheme := range []string{"lru", "acic", "opt"} {
		opts := DefaultOptions()
		a, err := RunSampled(w, scheme, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunSampled(w, scheme, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: sampled runs differ:\n  %+v\n  %+v", scheme, a, b)
		}
	}
}

// TestSampledGangMatchesSerial pins that gang execution of sampled cells
// produces results identical to serial sampled runs — the sampled lane's
// pause/resume contract under cpu.Gang.
func TestSampledGangMatchesSerial(t *testing.T) {
	w := sampledTestWorkload(t, "web-search", 150_000)
	schemes := []string{"lru", "srrip", "acic", "opt"}
	opts := DefaultOptions()
	opts.Sample = cpu.SampleConfig{Stride: 8, Offset: 1}
	serial := make([]cpu.Result, len(schemes))
	for i, scheme := range schemes {
		r, err := Run(w, scheme, opts)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	gang, errs := RunGang(w, schemes, opts)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", schemes[i], err)
		}
	}
	for i := range schemes {
		if gang[i] != serial[i] {
			t.Errorf("%s: gang sampled result diverges from serial:\n  gang   %+v\n  serial %+v",
				schemes[i], gang[i], serial[i])
		}
	}
}

// TestSampledFullPathUnchanged pins that a zero SampleConfig runs the
// reference lane: results carry no sampling provenance.
func TestSampledFullPathUnchanged(t *testing.T) {
	w := sampledTestWorkload(t, "media-streaming", 100_000)
	full, err := Run(w, "lru", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if full.SampleStride != 0 || full.SampledAccesses != 0 {
		t.Fatalf("full run carries sampling provenance: %+v", full)
	}
	viaSampled, err := RunSampled(w, "lru", 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if viaSampled != full {
		t.Fatalf("RunSampled(0) != Run:\n  %+v\n  %+v", viaSampled, full)
	}
}

// TestSampleConfigForSets pins the sets→stride conversion and its
// validation.
func TestSampleConfigForSets(t *testing.T) {
	for _, tc := range []struct {
		sets   int
		stride int
		ok     bool
	}{
		{0, 0, true}, {64, 0, true}, {8, 8, true}, {4, 16, true},
		{32, 2, true}, {1, 64, true},
		{3, 0, false}, {65, 0, false}, {-1, 0, false}, {48, 0, false},
	} {
		cfg, err := SampleConfigForSets(tc.sets)
		if (err == nil) != tc.ok {
			t.Errorf("SampleConfigForSets(%d): err=%v, want ok=%v", tc.sets, err, tc.ok)
			continue
		}
		if err == nil && cfg.Stride != tc.stride {
			t.Errorf("SampleConfigForSets(%d).Stride = %d, want %d", tc.sets, cfg.Stride, tc.stride)
		}
		if err == nil && cfg.Enabled() && cfg.Offset == 0 {
			t.Errorf("SampleConfigForSets(%d) picked constituency 0 (alignment-biased)", tc.sets)
		}
	}
}

// TestSampleOffsetDerivation pins the digest-derived default constituency:
// deterministic per workload, always in [1, stride), decorrelated across
// workloads, and overridable by an explicit in-range pin.
func TestSampleOffsetDerivation(t *testing.T) {
	apps := []string{"media-streaming", "web-search", "data-caching", "tpcc", "wikipedia", "sibench"}
	offsets := make(map[int]bool)
	for _, app := range apps {
		a, err := SampleConfigFor(8, 0, app)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		b, _ := SampleConfigFor(8, 0, app)
		if a != b {
			t.Errorf("%s: derived offset not deterministic: %+v != %+v", app, a, b)
		}
		if a.Offset < 1 || a.Offset >= a.Stride {
			t.Errorf("%s: offset %d outside [1,%d)", app, a.Offset, a.Stride)
		}
		offsets[a.Offset] = true
	}
	// The whole point of deriving per workload: the fleet must not pile
	// onto one constituency.
	if len(offsets) < 2 {
		t.Errorf("all %d workloads derived the same constituency %v", len(apps), offsets)
	}

	pinned, err := SampleConfigFor(8, 5, "media-streaming")
	if err != nil || pinned.Offset != 5 {
		t.Errorf("pinned offset: %+v, %v", pinned, err)
	}
	if _, err := SampleConfigFor(8, 8, "media-streaming"); err == nil {
		t.Error("offset == stride must be rejected")
	}
	if _, err := SampleConfigFor(8, -1, "media-streaming"); err == nil {
		t.Error("negative offset must be rejected")
	}
	// stride 2 has a single unbiased constituency; derivation lands on it.
	if cfg, err := SampleConfigFor(32, 0, "media-streaming"); err != nil || cfg.Offset != 1 {
		t.Errorf("stride-2 derivation = %+v, %v, want offset 1", cfg, err)
	}
}

// TestSampledCacheKeysDistinct pins that sampled and full suite results
// can never collide in one persistent cache.
func TestSampledCacheKeysDistinct(t *testing.T) {
	full := NewSuite(100_000)
	sampled := NewSuite(100_000)
	sampled.SampleSets = 8
	if err := sampled.CacheError(); err != nil {
		t.Fatal(err)
	}
	c := Cell{App: "media-streaming", Scheme: "lru", Prefetcher: "fdp"}
	fk, sk := full.cacheKey(c), sampled.cacheKey(c)
	if fk == sk {
		t.Fatalf("full and sampled cache keys collide: %s", fk)
	}
	stride16 := NewSuite(100_000)
	stride16.SampleSets = 4
	if err := stride16.CacheError(); err != nil {
		t.Fatal(err)
	}
	if k := stride16.cacheKey(c); k == sk {
		t.Fatalf("different sample strides share a cache key: %s", k)
	}
	// Same stride, pinned vs derived constituency: distinct keys, so one
	// CacheDir never conflates results from different sampled sets.
	pinned := NewSuite(100_000)
	pinned.SampleSets = 8
	pinned.SampleOffset = 7
	if err := pinned.CacheError(); err != nil {
		t.Fatal(err)
	}
	derived, _ := SampleConfigFor(8, 0, c.App)
	if derived.Offset != 7 && pinned.cacheKey(c) == sk {
		t.Fatalf("different constituencies share a cache key: %s", sk)
	}
}

// TestExtrapolated pins the scaling arithmetic.
func TestExtrapolated(t *testing.T) {
	r := cpu.Result{
		Cycles:           1000,
		Instructions:     4000,
		BlockAccesses:    800,
		DemandMisses:     10,
		LateMisses:       4,
		Prefetches:       20,
		IMissStallCycles: 100,
		SampleStride:     8,
		SampledAccesses:  100, // measured ratio 8 = stride
	}
	e := r.Extrapolated()
	if e.DemandMisses != 80 || e.LateMisses != 32 || e.Prefetches != 160 {
		t.Fatalf("extrapolated counters wrong: %+v", e)
	}
	if e.IMissStallCycles != 800 {
		t.Fatalf("extrapolated stall = %d, want 800", e.IMissStallCycles)
	}
	if e.Cycles != 1000+700 {
		t.Fatalf("extrapolated cycles = %d, want 1700", e.Cycles)
	}
	if full := (cpu.Result{Cycles: 5, DemandMisses: 3}); full.Extrapolated() != full {
		t.Fatal("full-run Extrapolated is not the identity")
	}
}
