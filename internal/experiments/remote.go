package experiments

import (
	"acic/internal/cpu"
	"acic/internal/experiments/engine"
)

// Remote is the seam between a Suite and a distributed executor (the
// coordinator in acic-coord). When set, Require routes each batch's
// not-yet-planned cells here instead of the local gang scheduler: Submit
// receives one same-app group at a time — the steal unit, sized so a
// worker can run it as a single gang and keep the one-traversal-many-
// schemes win — and must arrange for done to be called exactly once per
// cell, from any goroutine, without blocking inside Submit itself.
//
// The error passed to done drives the suite's ladder exactly like PR 8's
// local split: nil means the cell's result was published to the shared
// store (the suite loads it from there); a transient error (worker death,
// injected fault, requeue budget exhausted) falls back to computing the
// cell locally; a deterministic error fails just the figures needing the
// cell.
type Remote interface {
	Submit(app string, cells []Cell, done func(c Cell, err error))
}

// remoteChunk bounds the steal unit when GangSize does not: same-app
// groups are split into chunks of at most this many cells, so a wide
// grid still spreads across workers.
const remoteChunk = 10

// submitRemote claims the batch's not-yet-planned cells and hands them to
// the Remote in same-app chunks, in first-appearance order. Cells the
// shared store already holds are completed immediately — the coordinator
// never ships work whose result exists. Cells claimed here are completed
// by remoteDone on every path; the results.Require that follows only
// waits on them.
func (s *Suite) submitRemote(cells []Cell) {
	claimed := make(map[string][]Cell)
	var order []string
	for _, c := range cells {
		if !s.results.TryClaim(c) {
			continue // computed, in flight, or a duplicate within the batch
		}
		if s.results.TryCache(c) {
			continue // warm store: completed without shipping
		}
		if _, ok := claimed[c.App]; !ok {
			order = append(order, c.App)
		}
		claimed[c.App] = append(claimed[c.App], c)
	}
	chunk := s.GangSize
	if chunk < 1 {
		chunk = remoteChunk
	}
	for _, app := range order {
		group := claimed[app]
		parts := (len(group) + chunk - 1) / chunk
		for _, unit := range splitBalanced(group, parts) {
			s.Remote.Submit(app, unit, s.remoteDone)
		}
	}
}

// remoteDone completes one remotely executed cell. Success means the
// worker published the result to the shared store; loading it through
// TryCache is what makes distributed output byte-identical — the bytes
// the renderer sees round-tripped the same content-addressed entry a
// warm local run would read. A success whose entry cannot be loaded
// (store lost the write, injected net-err on our side) and any transient
// failure fall back to the local serial ladder, which keeps the run live
// even with zero healthy workers; a deterministic failure is recorded
// as the cell's typed error without wasting a local rerun.
func (s *Suite) remoteDone(c Cell, err error) {
	switch {
	case err == nil:
		if s.results.TryCache(c) {
			return
		}
		s.rerunSerial(c)
	case engine.IsTransient(err):
		s.rerunSerial(c)
	default:
		s.results.Fulfill(c, cpu.Result{}, err)
	}
}

// Forget drops a completed cell from the suite's memo so the next demand
// recomputes it (see engine.Group.Forget), along with any transiently
// failed prepare stage for the cell's app — the transient failure may
// live in the pipeline memo rather than the cell compute, and a retry
// that re-runs only the cell would replay the poisoned stage forever.
// The distributed worker and acic-serve call it after a transient cell
// failure so the requeue/re-query re-runs the simulation instead of
// replaying the memoized error.
func (s *Suite) Forget(c Cell) bool {
	s.init()
	dropped := s.results.Forget(c)
	return s.pipeline.ForgetTransient(c.App) || dropped
}

// ForgetTransient sweeps every transiently failed memo — result cells
// and prepare stages alike — so the next demand recomputes them.
// acic-serve calls it when a figure render fails transiently: the
// render spans many cells and any of them may hold the memoized fault.
func (s *Suite) ForgetTransient() int {
	s.init()
	return s.results.ForgetAllTransient() + s.pipeline.ForgetAllTransient()
}

// Occupancy reports the suite pool's instantaneous occupancy snapshot —
// running tasks, free slots, and submitters blocked waiting for a slot.
// The distributed worker sends it with every claim so the coordinator
// sizes steals against real load instead of guessing.
func (s *Suite) Occupancy() (running, idle, queued int) {
	s.init()
	return s.pool.Running(), s.pool.Idle(), s.pool.Queued()
}
