package experiments

import (
	"strings"
	"sync/atomic"
	"testing"

	"acic/internal/workload"
)

// TestRunGangMatchesRunEverywhere is the gang differential: for two apps,
// every registered scheme under every prefetcher platform must produce a
// bit-identical cpu.Result through RunGang and through the serial Run
// path. This is the contract that lets the suite group cells into gangs
// without auditing downstream renderers.
func TestRunGangMatchesRunEverywhere(t *testing.T) {
	schemes := SchemeNames()
	for _, app := range []string{"media-streaming", "data-caching"} {
		prof, ok := workload.ByName(app)
		if !ok {
			t.Fatalf("unknown workload %q", app)
		}
		w := Prepare(prof, 80_000)
		for _, pf := range Prefetchers() {
			opts := DefaultOptions()
			opts.Prefetcher = pf
			gangRes, gangErrs := RunGang(w, schemes, opts)
			for i, scheme := range schemes {
				if gangErrs[i] != nil {
					t.Fatalf("%s/%s/%s: gang error: %v", app, scheme, pf, gangErrs[i])
				}
				serial, err := Run(w, scheme, opts)
				if err != nil {
					t.Fatalf("%s/%s/%s: serial error: %v", app, scheme, pf, err)
				}
				if gangRes[i] != serial {
					t.Errorf("%s/%s/%s: gang %+v != serial %+v", app, scheme, pf, gangRes[i], serial)
				}
			}
		}
	}
}

// TestRunGangPartialErrors: an unknown scheme errors in its own slot while
// the valid members still run and match serial.
func TestRunGangPartialErrors(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	w := Prepare(prof, 40_000)
	opts := DefaultOptions()
	res, errs := RunGang(w, []string{"lru", "no-such-scheme", "opt"}, opts)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid members errored: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "no-such-scheme") {
		t.Fatalf("invalid member error = %v", errs[1])
	}
	want, err := Run(w, "opt", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res[2] != want {
		t.Errorf("member after failed slot diverges: %+v != %+v", res[2], want)
	}

	badPf := DefaultOptions()
	badPf.Prefetcher = "warp-drive"
	_, errs = RunGang(w, []string{"lru"}, badPf)
	if errs[0] == nil {
		t.Error("unknown prefetcher must error every member")
	}
}

// gangFigSlice renders a Fig10+Fig11+Fig13 slice under the given gang
// size (0 = per-cell execution) and returns the exact bytes printed.
func gangFigSlice(t *testing.T, gangSize int, cacheDir string) string {
	t.Helper()
	s := NewSuite(40_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.Workers = 2
	s.GangSize = gangSize
	s.CacheDir = cacheDir
	var out strings.Builder
	t10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	t11, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	t13, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	out.WriteString(t10.String())
	out.WriteString(t11.String())
	out.WriteString(t13.String())
	return out.String()
}

// TestSuiteGangOutputIdentical pins the end-to-end promise: rendered
// figure output is byte-identical with gangs disabled, small, and wider
// than any group.
func TestSuiteGangOutputIdentical(t *testing.T) {
	serial := gangFigSlice(t, 0, "")
	for _, gangSize := range []int{3, 64} {
		if got := gangFigSlice(t, gangSize, ""); got != serial {
			t.Errorf("gangSize=%d output diverges from per-cell execution:\n--- per-cell ---\n%s--- gang ---\n%s",
				gangSize, serial, got)
		}
	}
}

// TestSuiteGangUsesAndFillsDiskCache: a gang run populates the persistent
// cache so a per-cell rerun computes nothing, and vice versa — the cache
// entries are path-independent.
func TestSuiteGangUsesAndFillsDiskCache(t *testing.T) {
	dir := t.TempDir()
	first := gangFigSlice(t, 4, dir)

	// Per-cell rerun over the gang-filled cache.
	s := NewSuite(40_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.CacheDir = dir
	t10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	computed, fromCache, _ := s.Stats()
	if computed != 0 {
		t.Errorf("per-cell rerun computed %d cells over a gang-filled cache", computed)
	}
	if fromCache == 0 {
		t.Error("per-cell rerun hit nothing in the gang-filled cache")
	}
	if !strings.Contains(first, t10.String()) {
		t.Error("cached per-cell rerun diverges from the gang run's output")
	}

	// Gang rerun over the same cache: gangs must consult it per member.
	s2 := NewSuite(40_000)
	s2.Apps = []string{"media-streaming", "sibench"}
	s2.GangSize = 4
	s2.CacheDir = dir
	if _, err := s2.Fig10(); err != nil {
		t.Fatal(err)
	}
	computed, fromCache, _ = s2.Stats()
	if computed != 0 {
		t.Errorf("gang rerun computed %d cells over a warm cache", computed)
	}
	if fromCache == 0 {
		t.Error("gang rerun hit nothing in the cache")
	}
}

// TestSuiteGangAccounting: gang execution must keep the engine's computed
// counter per cell (not per gang) and report every cell through Progress.
func TestSuiteGangAccounting(t *testing.T) {
	s := NewSuite(30_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.GangSize = 5
	var progress atomic.Int64
	s.Progress = func(done, total int, label string) { progress.Add(1) }
	if _, err := s.Fig10(); err != nil {
		t.Fatal(err)
	}
	computed, fromCache, workloads := s.Stats()
	want := int64(2 * (1 + len(Fig10Schemes)))
	if computed != want {
		t.Errorf("computed %d cells, want %d", computed, want)
	}
	if fromCache != 0 {
		t.Errorf("fromCache = %d without a cache dir", fromCache)
	}
	if workloads != 2 {
		t.Errorf("prepared %d workloads, want 2", workloads)
	}
	if progress.Load() != computed {
		t.Errorf("progress reported %d cells, want %d", progress.Load(), computed)
	}
}
