package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"acic/internal/cpu"
	"acic/internal/icache"
	"acic/internal/workload"
)

// TestRunGangMatchesRunEverywhere is the gang differential: for two apps,
// every registered scheme under every prefetcher platform must produce a
// bit-identical cpu.Result through RunGang and through the serial Run
// path. This is the contract that lets the suite group cells into gangs
// without auditing downstream renderers.
func TestRunGangMatchesRunEverywhere(t *testing.T) {
	schemes := SchemeNames()
	for _, app := range []string{"media-streaming", "data-caching"} {
		prof, ok := workload.ByName(app)
		if !ok {
			t.Fatalf("unknown workload %q", app)
		}
		w := Prepare(prof, 80_000)
		for _, pf := range Prefetchers() {
			opts := DefaultOptions()
			opts.Prefetcher = pf
			gangRes, gangErrs := RunGang(w, schemes, opts)
			for i, scheme := range schemes {
				if gangErrs[i] != nil {
					t.Fatalf("%s/%s/%s: gang error: %v", app, scheme, pf, gangErrs[i])
				}
				serial, err := Run(w, scheme, opts)
				if err != nil {
					t.Fatalf("%s/%s/%s: serial error: %v", app, scheme, pf, err)
				}
				if gangRes[i] != serial {
					t.Errorf("%s/%s/%s: gang %+v != serial %+v", app, scheme, pf, gangRes[i], serial)
				}
			}
		}
	}
}

// TestRunGangPartialErrors: an unknown scheme errors in its own slot while
// the valid members still run and match serial.
func TestRunGangPartialErrors(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	w := Prepare(prof, 40_000)
	opts := DefaultOptions()
	res, errs := RunGang(w, []string{"lru", "no-such-scheme", "opt"}, opts)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid members errored: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "no-such-scheme") {
		t.Fatalf("invalid member error = %v", errs[1])
	}
	want, err := Run(w, "opt", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res[2] != want {
		t.Errorf("member after failed slot diverges: %+v != %+v", res[2], want)
	}

	badPf := DefaultOptions()
	badPf.Prefetcher = "warp-drive"
	_, errs = RunGang(w, []string{"lru"}, badPf)
	if errs[0] == nil {
		t.Error("unknown prefetcher must error every member")
	}
}

// gangFigSlice renders a Fig10+Fig11+Fig13 slice under the given gang
// size (0 = per-cell execution) and returns the exact bytes printed.
func gangFigSlice(t *testing.T, gangSize int, cacheDir string) string {
	t.Helper()
	s := NewSuite(40_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.Workers = 2
	s.GangSize = gangSize
	s.CacheDir = cacheDir
	var out strings.Builder
	t10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	t11, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	t13, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	out.WriteString(t10.String())
	out.WriteString(t11.String())
	out.WriteString(t13.String())
	return out.String()
}

// TestSuiteGangOutputIdentical pins the end-to-end promise: rendered
// figure output is byte-identical with gangs disabled, small, and wider
// than any group.
func TestSuiteGangOutputIdentical(t *testing.T) {
	serial := gangFigSlice(t, 0, "")
	for _, gangSize := range []int{3, 64} {
		if got := gangFigSlice(t, gangSize, ""); got != serial {
			t.Errorf("gangSize=%d output diverges from per-cell execution:\n--- per-cell ---\n%s--- gang ---\n%s",
				gangSize, serial, got)
		}
	}
}

// TestSuiteGangUsesAndFillsDiskCache: a gang run populates the persistent
// cache so a per-cell rerun computes nothing, and vice versa — the cache
// entries are path-independent.
func TestSuiteGangUsesAndFillsDiskCache(t *testing.T) {
	dir := t.TempDir()
	first := gangFigSlice(t, 4, dir)

	// Per-cell rerun over the gang-filled cache.
	s := NewSuite(40_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.CacheDir = dir
	t10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	computed, fromCache, _ := s.Stats()
	if computed != 0 {
		t.Errorf("per-cell rerun computed %d cells over a gang-filled cache", computed)
	}
	if fromCache == 0 {
		t.Error("per-cell rerun hit nothing in the gang-filled cache")
	}
	if !strings.Contains(first, t10.String()) {
		t.Error("cached per-cell rerun diverges from the gang run's output")
	}

	// Gang rerun over the same cache: gangs must consult it per member.
	s2 := NewSuite(40_000)
	s2.Apps = []string{"media-streaming", "sibench"}
	s2.GangSize = 4
	s2.CacheDir = dir
	if _, err := s2.Fig10(); err != nil {
		t.Fatal(err)
	}
	computed, fromCache, _ = s2.Stats()
	if computed != 0 {
		t.Errorf("gang rerun computed %d cells over a warm cache", computed)
	}
	if fromCache == 0 {
		t.Error("gang rerun hit nothing in the cache")
	}
}

// TestRunGangCellsCrossPrefetcher is the cross-prefetcher differential:
// cells mixing every platform (and the "" shorthand for opts.Prefetcher)
// in one gang must each match a serial Run under that cell's platform.
func TestRunGangCellsCrossPrefetcher(t *testing.T) {
	prof, _ := workload.ByName("web-search")
	w := Prepare(prof, 60_000)
	cells := []GangCell{
		{Scheme: "lru", Prefetcher: "fdp"},
		{Scheme: "lru", Prefetcher: "none"},
		{Scheme: "acic", Prefetcher: "entangling"},
		{Scheme: "opt", Prefetcher: "next-line"},
		{Scheme: "acic", Prefetcher: "stream"},
		{Scheme: "acic", Prefetcher: ""}, // inherits opts.Prefetcher
	}
	opts := DefaultOptions()
	res, window, errs := RunGangCells(w, cells, opts)
	if window != cpu.DefaultGangWindow {
		t.Errorf("default-heuristic run reported window %d, want %d", window, cpu.DefaultGangWindow)
	}
	for i, c := range cells {
		if errs[i] != nil {
			t.Fatalf("cell %d (%s/%s): %v", i, c.Scheme, c.Prefetcher, errs[i])
		}
		serialOpts := opts
		if c.Prefetcher != "" {
			serialOpts.Prefetcher = c.Prefetcher
		}
		want, err := Run(w, c.Scheme, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		if res[i] != want {
			t.Errorf("cell %d (%s/%s): gang %+v != serial %+v", i, c.Scheme, c.Prefetcher, res[i], want)
		}
	}
}

// TestRunGangCellsPartialErrors: a bad scheme and a bad prefetcher each
// error in their own slot; the surviving cells still run and match serial.
func TestRunGangCellsPartialErrors(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	w := Prepare(prof, 40_000)
	opts := DefaultOptions()
	cells := []GangCell{
		{Scheme: "lru", Prefetcher: "none"},
		{Scheme: "no-such-scheme", Prefetcher: "none"},
		{Scheme: "opt", Prefetcher: "warp-drive"},
		{Scheme: "opt", Prefetcher: "entangling"},
	}
	res, _, errs := RunGangCells(w, cells, opts)
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid cells errored: %v, %v", errs[0], errs[3])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "no-such-scheme") {
		t.Errorf("bad-scheme slot error = %v", errs[1])
	}
	if errs[2] == nil || !strings.Contains(errs[2].Error(), "warp-drive") {
		t.Errorf("bad-prefetcher slot error = %v", errs[2])
	}
	serialOpts := opts
	serialOpts.Prefetcher = "entangling"
	want, err := Run(w, "opt", serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res[3] != want {
		t.Errorf("survivor after failed slots diverges: %+v != %+v", res[3], want)
	}
}

// TestRunGangCellsWindowSelection pins the window plumbing: 0 runs the
// fixed heuristic, a positive value is used verbatim, and AutoGangWindow
// resolves to MeasuredGangWindow — with results byte-identical across all
// three, the end-to-end fact behind `-gang-window auto`.
func TestRunGangCellsWindowSelection(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	w := Prepare(prof, 40_000)
	cells := []GangCell{
		{Scheme: "lru", Prefetcher: "none"},
		{Scheme: "acic", Prefetcher: "fdp"},
	}
	run := func(gw int) ([]cpu.Result, int) {
		opts := DefaultOptions()
		opts.GangWindow = gw
		res, window, errs := RunGangCells(w, cells, opts)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("GangWindow=%d cell %d: %v", gw, i, err)
			}
		}
		return res, window
	}
	fixedRes, fixedWin := run(0)
	if fixedWin != cpu.DefaultGangWindow {
		t.Errorf("GangWindow=0 ran window %d, want %d", fixedWin, cpu.DefaultGangWindow)
	}
	pinnedRes, pinnedWin := run(4096)
	if pinnedWin != 4096 {
		t.Errorf("GangWindow=4096 ran window %d", pinnedWin)
	}
	autoRes, autoWin := run(AutoGangWindow)
	if autoWin < cpu.DefaultGangWindow || autoWin > cpu.MaxGangWindow {
		t.Errorf("auto window %d outside [%d,%d]", autoWin, cpu.DefaultGangWindow, cpu.MaxGangWindow)
	}
	for i := range cells {
		if fixedRes[i] != pinnedRes[i] || fixedRes[i] != autoRes[i] {
			t.Errorf("cell %d results differ across windows: fixed %+v pinned %+v auto %+v",
				i, fixedRes[i], pinnedRes[i], autoRes[i])
		}
	}
}

// TestMeasuredGangWindow pins the budget → window derivation against
// pinned host budgets: a starved budget floors at the fixed heuristic, a
// huge one caps at MaxGangWindow, and the floor guarantees auto never
// rotates more often than the fixed default.
func TestMeasuredGangWindow(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	w := Prepare(prof, 40_000)
	var subs []icache.Subsystem
	for _, scheme := range []string{"lru", "acic", "opt"} {
		sub, err := NewSampledScheme(scheme, w, cpu.SampleConfig{})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}

	t.Setenv("ACIC_LLC_BYTES", "1M")
	if got := MeasuredGangWindow(w.Prog, subs); got != cpu.DefaultGangWindow {
		t.Errorf("starved budget: window %d, want the %d floor", got, cpu.DefaultGangWindow)
	}
	t.Setenv("ACIC_LLC_BYTES", "8G")
	if got := MeasuredGangWindow(w.Prog, subs); got != cpu.MaxGangWindow {
		t.Errorf("huge budget: window %d, want the %d cap", got, cpu.MaxGangWindow)
	}
	t.Setenv("ACIC_LLC_BYTES", "")
	if got := MeasuredGangWindow(w.Prog, subs); got < cpu.DefaultGangWindow || got > cpu.MaxGangWindow {
		t.Errorf("detected budget: window %d outside [%d,%d]", got, cpu.DefaultGangWindow, cpu.MaxGangWindow)
	}
	if got := GangWindowEstimate(w, 10); got < cpu.DefaultGangWindow || got > cpu.MaxGangWindow {
		t.Errorf("GangWindowEstimate = %d outside [%d,%d]", got, cpu.DefaultGangWindow, cpu.MaxGangWindow)
	}
}

// TestPackChunks pins the occupancy packer: ceil baselines, widest-first
// splitting while idle slots remain, and the all-singles stop.
func TestPackChunks(t *testing.T) {
	cases := []struct {
		name           string
		sizes          []int
		gangSize, idle int
		want           []int
	}{
		{"saturated pool keeps minimum", []int{7, 3}, 4, 0, []int{2, 1}},
		{"one idle slot splits the widest", []int{7, 3}, 4, 4, []int{3, 1}},
		{"splitting stops at all-singles", []int{7, 3}, 4, 100, []int{7, 3}},
		{"singles cannot split further", []int{2, 1}, 1, 100, []int{2, 1}},
		{"empty plan", nil, 4, 8, []int{}},
	}
	for _, c := range cases {
		got := packChunks(c.sizes, c.gangSize, c.idle)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%s: packChunks(%v, %d, %d) = %v, want %v",
				c.name, c.sizes, c.gangSize, c.idle, got, c.want)
		}
	}
}

// TestSplitBalanced pins the chunker: contiguous, order-preserving, sizes
// within one of each other, degenerate part counts clamped.
func TestSplitBalanced(t *testing.T) {
	batch := make([]Cell, 5)
	for i := range batch {
		batch[i] = Cell{App: "a", Scheme: fmt.Sprintf("s%d", i)}
	}
	for _, parts := range []int{0, 1, 2, 3, 5, 9} {
		out := splitBalanced(batch, parts)
		wantParts := parts
		if wantParts < 1 {
			wantParts = 1
		}
		if wantParts > len(batch) {
			wantParts = len(batch)
		}
		if len(out) != wantParts {
			t.Errorf("parts=%d: got %d chunks, want %d", parts, len(out), wantParts)
		}
		var flat []Cell
		min, max := len(batch), 0
		for _, chunk := range out {
			flat = append(flat, chunk...)
			if len(chunk) < min {
				min = len(chunk)
			}
			if len(chunk) > max {
				max = len(chunk)
			}
		}
		if max-min > 1 {
			t.Errorf("parts=%d: chunk sizes spread %d..%d", parts, min, max)
		}
		for i := range flat {
			if flat[i] != batch[i] {
				t.Fatalf("parts=%d: order not preserved at %d", parts, i)
			}
		}
	}
}

// crossPfSlice renders the two cross-prefetcher tables under the given
// gang size and window, returning the exact bytes and the suite (for its
// gang statistics).
func crossPfSlice(t *testing.T, gangSize, gangWindow int) (string, *Suite) {
	t.Helper()
	s := NewSuite(30_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.Workers = 2
	s.GangSize = gangSize
	s.GangWindow = gangWindow
	t1, err := s.PrefetcherBaselines()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.PrefetchAware()
	if err != nil {
		t.Fatal(err)
	}
	return t1.String() + t2.String(), s
}

// TestSuiteCrossPrefetcherGangIdentical pins the tentpole end to end: the
// prefetcher-sweep tables are byte-identical with gangs off, with
// cross-prefetcher gangs under the fixed window, and under the measured
// auto window — and the gang plan actually mixes platforms in one gang.
func TestSuiteCrossPrefetcherGangIdentical(t *testing.T) {
	serial, _ := crossPfSlice(t, 0, 0)
	fixed, sf := crossPfSlice(t, 4, 0)
	if fixed != serial {
		t.Errorf("fixed-window gang output diverges:\n--- per-cell ---\n%s--- gang ---\n%s", serial, fixed)
	}
	gs := sf.GangStats()
	if gs.Gangs == 0 || gs.Cells == 0 {
		t.Fatalf("gang run recorded no gangs: %+v", gs)
	}
	if gs.Mixed == 0 {
		t.Errorf("no gang spanned >1 prefetcher platform: %+v", gs)
	}
	if gs.MaxWidth < 2 || gs.MaxWidth > 4 {
		t.Errorf("max gang width %d outside (1,GangSize]", gs.MaxWidth)
	}
	if gs.Window != int64(cpu.DefaultGangWindow) {
		t.Errorf("fixed-window stats report window %d, want %d", gs.Window, cpu.DefaultGangWindow)
	}

	auto, sa := crossPfSlice(t, 4, AutoGangWindow)
	if auto != serial {
		t.Errorf("auto-window gang output diverges:\n--- per-cell ---\n%s--- gang ---\n%s", serial, auto)
	}
	if w := sa.GangStats().Window; w < int64(cpu.DefaultGangWindow) || w > int64(cpu.MaxGangWindow) {
		t.Errorf("auto window %d outside [%d,%d]", w, cpu.DefaultGangWindow, cpu.MaxGangWindow)
	}
}

// TestSuiteGangAccounting: gang execution must keep the engine's computed
// counter per cell (not per gang) and report every cell through Progress.
func TestSuiteGangAccounting(t *testing.T) {
	s := NewSuite(30_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.GangSize = 5
	var progress atomic.Int64
	s.Progress = func(done, total int, label string) { progress.Add(1) }
	if _, err := s.Fig10(); err != nil {
		t.Fatal(err)
	}
	computed, fromCache, workloads := s.Stats()
	want := int64(2 * (1 + len(Fig10Schemes)))
	if computed != want {
		t.Errorf("computed %d cells, want %d", computed, want)
	}
	if fromCache != 0 {
		t.Errorf("fromCache = %d without a cache dir", fromCache)
	}
	if workloads != 2 {
		t.Errorf("prepared %d workloads, want 2", workloads)
	}
	if progress.Load() != computed {
		t.Errorf("progress reported %d cells, want %d", progress.Load(), computed)
	}
}
