package engine

import "testing"

// TestParseSize covers the sysfs/env size grammar: plain bytes, K/M/G
// suffixes, surrounding whitespace, and the rejects.
func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"32768", 32768, true},
		{"32768K", 32 << 20, true},
		{"48M", 48 << 20, true},
		{"2G", 2 << 30, true},
		{" 512K\n", 512 << 10, true}, // sysfs values end in a newline
		{"", 0, false},
		{"0", 0, false},
		{"-4K", 0, false},
		{"1.5M", 0, false},
		{"K", 0, false},
	}
	for _, c := range cases {
		got, ok := parseSize(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseSize(%q) = %d, %v; want %d, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestLLCBytesEnvOverride: ACIC_LLC_BYTES wins over detection, a
// malformed value falls through to it, and the answer is always positive.
func TestLLCBytesEnvOverride(t *testing.T) {
	t.Setenv("ACIC_LLC_BYTES", "8M")
	if got := LLCBytes(); got != 8<<20 {
		t.Errorf("LLCBytes() = %d under ACIC_LLC_BYTES=8M, want %d", got, 8<<20)
	}
	t.Setenv("ACIC_LLC_BYTES", "123456")
	if got := LLCBytes(); got != 123456 {
		t.Errorf("LLCBytes() = %d under ACIC_LLC_BYTES=123456", got)
	}
	t.Setenv("ACIC_LLC_BYTES", "not-a-size")
	if got := LLCBytes(); got <= 0 {
		t.Errorf("LLCBytes() = %d with a malformed override, want a positive fallback", got)
	}
	t.Setenv("ACIC_LLC_BYTES", "")
	if got := LLCBytes(); got <= 0 {
		t.Errorf("LLCBytes() = %d without an override, want a positive budget", got)
	}
}
