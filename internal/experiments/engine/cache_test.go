package engine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"acic/internal/faults"
)

// The disk cache must create its directory — including missing parents —
// rather than relying on it pre-existing (`acic-trace warm` hands it a
// fresh path on first use).
func TestDiskCacheCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "artifacts")
	c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err != nil {
		t.Fatalf("NewDiskCache(%s): %v", dir, err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("cache dir was not created: %v", err)
	}
	c.Store("k", 42)
	got, ok := c.Load("k")
	if !ok || got != 42 {
		t.Fatalf("Load after Store = (%d, %v), want (42, true)", got, ok)
	}
}

// An unusable path must fail loudly at construction: Store is
// best-effort, so without the up-front check a warm run would silently
// persist nothing. A path whose parent is a regular file is unusable for
// any user (permission-based checks are bypassed when tests run as root).
func TestDiskCacheUnwritablePathFails(t *testing.T) {
	parent := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(parent, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(parent, "artifacts")
	_, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err == nil {
		t.Fatalf("NewDiskCache(%s) succeeded on a path under a regular file", dir)
	}
	if !strings.Contains(err.Error(), dir) {
		t.Fatalf("error %q does not name the offending path %s", err, dir)
	}
}

// storeRootFiles lists regular files sitting directly in the store root
// (ignoring the tmp/ and quarantine/ subdirectories).
func storeRootFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, ent := range entries {
		if !ent.IsDir() {
			files = append(files, ent.Name())
		}
	}
	return files
}

// A store root must only ever contain complete entries: temps live in
// tmp/, quarantined entries in quarantine/.
func TestDiskCacheStoreRootStaysClean(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	c.Store("k", 1)
	e, ok := c.BeginStream("streaming")
	if !ok {
		t.Fatal("BeginStream failed")
	}
	e.F.WriteString("partial")
	// With the entry still in flight, the root holds exactly the one
	// committed entry; the partial lives under tmp/.
	if files := storeRootFiles(t, dir); len(files) != 1 {
		t.Fatalf("store root = %v, want exactly the committed entry", files)
	}
	if !strings.HasPrefix(filepath.Base(e.F.Name()), "tmp-") ||
		filepath.Dir(e.F.Name()) != filepath.Join(dir, tmpDirName) {
		t.Fatalf("stream temp %s is not under %s/", e.F.Name(), tmpDirName)
	}
	e.Abort()
	if files, _ := os.ReadDir(filepath.Join(dir, tmpDirName)); len(files) != 0 {
		t.Fatalf("Abort left %d files in tmp/", len(files))
	}
}

// Construction sweeps crash leftovers out of tmp/ once they are stale,
// and leaves fresh temps (a concurrent writer's) alone.
func TestDiskCacheSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	tmpDir := filepath.Join(dir, tmpDirName)
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(tmpDir, "tmp-stale")
	fresh := filepath.Join(tmpDir, "tmp-fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskCache[string, int](dir, func(k string) string { return k }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp survived construction sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp was reaped by construction sweep")
	}
}

// A corrupt entry is quarantined on first read — moved to quarantine/
// with a reason file naming the key and cause — and subsequent loads are
// clean misses, so the caller regenerates exactly once.
func TestDiskCacheQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	c.Store("k", 42)
	path := c.path("k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // flip a bit inside the JSON payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("k"); ok {
		t.Fatal("Load served a corrupt entry")
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still in store root after quarantine")
	}
	qpath := filepath.Join(dir, QuarantineDirName, filepath.Base(path))
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	reason, err := os.ReadFile(qpath + ".reason")
	if err != nil {
		t.Fatalf("reason file missing: %v", err)
	}
	if !strings.Contains(string(reason), "key: k") || !strings.Contains(string(reason), "CRC mismatch") {
		t.Fatalf("reason file does not attribute the failure: %q", reason)
	}
	// Regeneration rewrites the entry; the next load is a clean hit.
	c.Store("k", 42)
	if v, ok := c.Load("k"); !ok || v != 42 {
		t.Fatalf("Load after regeneration = (%d, %v)", v, ok)
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined after regeneration = %d, want still 1", got)
	}
}

// JSON entries are CRC-framed: a bit flip anywhere in the payload — even
// one that would still parse as valid JSON, like a flipped digit — must
// read as corruption, not as a silently wrong value.
func TestDiskCacheJSONFrameCatchesParseableCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	c.Store("k", 1111)
	path := c.path("k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the low bit of the last payload byte: "1111" -> "1110",
	// still perfectly valid JSON.
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Load("k"); ok {
		t.Fatalf("Load served silently corrupted value %d", v)
	}
}

// Entries from the pre-frame format (raw JSON) are quarantined and
// regenerated rather than half-trusted.
func TestDiskCacheLegacyUnframedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path("k"), []byte("42"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("k"); ok {
		t.Fatal("Load served an unframed legacy entry")
	}
	if c.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", c.Quarantined())
	}
}

// Injected IO faults make loads miss and stores skip — never errors, and
// never quarantine (the entry on disk is fine).
func TestDiskCacheInjectedIOFaults(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	c.Store("k", 42)
	if err := faults.Install("io-err:p=1"); err != nil {
		t.Fatal(err)
	}
	defer faults.Install("")
	if _, ok := c.Load("k"); ok {
		t.Fatal("Load hit under injected IO failure")
	}
	c.Store("k2", 7)
	if _, ok := c.BeginStream("k3"); ok {
		t.Fatal("BeginStream succeeded under injected IO failure")
	}
	faults.Install("")
	if _, ok := c.Load("k2"); ok {
		t.Fatal("Store persisted under injected IO failure")
	}
	if v, ok := c.Load("k"); !ok || v != 42 {
		t.Fatalf("entry damaged by injected faults: (%d, %v)", v, ok)
	}
	if c.Quarantined() != 0 {
		t.Fatalf("Quarantined = %d, want 0 (IO faults are not corruption)", c.Quarantined())
	}
}

// Injected corruption lands on disk at Store time; the next Load catches
// it via the CRC frame, quarantines, and misses.
func TestDiskCacheInjectedCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Install("corrupt-artifact:p=1;seed=5"); err != nil {
		t.Fatal(err)
	}
	defer faults.Install("")
	c.Store("k", 123456789)
	faults.Install("")
	if _, ok := c.Load("k"); ok {
		t.Fatal("Load served an injected-corrupt entry")
	}
	if c.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", c.Quarantined())
	}
}
