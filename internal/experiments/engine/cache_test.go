package engine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The disk cache must create its directory — including missing parents —
// rather than relying on it pre-existing (`acic-trace warm` hands it a
// fresh path on first use).
func TestDiskCacheCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "artifacts")
	c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err != nil {
		t.Fatalf("NewDiskCache(%s): %v", dir, err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("cache dir was not created: %v", err)
	}
	c.Store("k", 42)
	got, ok := c.Load("k")
	if !ok || got != 42 {
		t.Fatalf("Load after Store = (%d, %v), want (42, true)", got, ok)
	}
}

// An unusable path must fail loudly at construction: Store is
// best-effort, so without the up-front check a warm run would silently
// persist nothing. A path whose parent is a regular file is unusable for
// any user (permission-based checks are bypassed when tests run as root).
func TestDiskCacheUnwritablePathFails(t *testing.T) {
	parent := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(parent, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(parent, "artifacts")
	_, err := NewDiskCache[string, int](dir, func(k string) string { return k })
	if err == nil {
		t.Fatalf("NewDiskCache(%s) succeeded on a path under a regular file", dir)
	}
	if !strings.Contains(err.Error(), dir) {
		t.Fatalf("error %q does not name the offending path %s", err, dir)
	}
}
