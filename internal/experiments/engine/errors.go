package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"acic/internal/faults"
)

// CellError is the typed failure of one unit of engine work — a group
// compute, a gang run, or a pool task. It carries enough attribution to
// blame a specific cell (or gang) in logs and reports, and, when the
// failure was a recovered panic, a short stack digest that groups
// identical crashes across cells without dumping full stacks into every
// error string.
type CellError struct {
	Key         string // cell attribution, e.g. "media-streaming/acic/fdp"
	Gang        bool   // failed inside a gang run (the whole gang degrades)
	Panic       any    // recovered panic value; nil for plain errors
	StackDigest string // first 12 hex chars of SHA-256 over the panic stack
	Stack       []byte // full stack at recovery, for -v style diagnostics
	Err         error  // underlying error for plain (non-panic) failures

	transient bool
}

func (e *CellError) Error() string {
	unit := "cell"
	if e.Gang {
		unit = "gang"
	}
	if e.Panic != nil {
		return fmt.Sprintf("engine: %s %s: panic: %v [stack %s]", unit, e.Key, e.Panic, e.StackDigest)
	}
	return fmt.Sprintf("engine: %s %s: %v", unit, e.Key, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Transient reports whether the failure is classified retryable: injected
// faults and errors wrapped by MarkTransient are; genuine panics (a
// deterministic simulator bug would fail identically on every attempt)
// and ordinary errors are not.
func (e *CellError) Transient() bool { return e.transient }

// recoveredError converts a recovered panic into a *CellError. Injected
// panics (from faults.PanicPoint) are environmental by construction and
// marked transient; anything else is treated as a deterministic bug and
// fails without retry.
func recoveredError(key string, gang bool, r any, stack []byte) *CellError {
	sum := sha256.Sum256(stack)
	return &CellError{
		Key:         key,
		Gang:        gang,
		Panic:       r,
		StackDigest: hex.EncodeToString(sum[:6]),
		Stack:       stack,
		transient:   faults.IsInjected(r),
	}
}

// transientErr marks a wrapped error as retryable.
type transientErr struct{ error }

func (t transientErr) Transient() bool { return true }
func (t transientErr) Unwrap() error   { return t.error }

// MarkTransient wraps err so IsTransient reports true for it: the caller
// asserts the failure is environmental (storage hiccup, injected fault)
// and a retry has a real chance of succeeding. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return transientErr{err}
}

// IsTransient reports whether err (or anything it wraps) is classified
// retryable via a Transient() bool method returning true.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Guard runs fn with panic isolation: a panic becomes a *CellError
// attributed to key (gang tags the error as a gang-level failure) instead
// of unwinding the worker goroutine and killing the process.
func Guard[V any](key string, gang bool, fn func() (V, error)) (v V, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredError(key, gang, r, debug.Stack())
		}
	}()
	return fn()
}

// RetryPolicy bounds how failed work is re-attempted. The zero value
// disables retries (one attempt, still panic-guarded). Only transient
// failures are retried; see IsTransient.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first;
	// values <= 1 mean no retries.
	Attempts int
	// Base is the first backoff delay (default 1ms).
	Base time.Duration
	// Cap bounds every backoff delay (default 100ms).
	Cap time.Duration
	// Sleep replaces time.Sleep in tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetryAttempts is the attempt bound used by DefaultRetry when
// ACIC_RETRY_ATTEMPTS is unset.
const DefaultRetryAttempts = 3

// DefaultRetry returns the standard policy: ACIC_RETRY_ATTEMPTS attempts
// (default 3) with 1ms..100ms decorrelated-jitter backoff.
func DefaultRetry() RetryPolicy {
	attempts := DefaultRetryAttempts
	if s := os.Getenv("ACIC_RETRY_ATTEMPTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			attempts = n
		}
	}
	return RetryPolicy{Attempts: attempts}
}

// jitterSeq feeds the backoff jitter PRNG. A process-wide atomic counter
// hashed through splitmix64 gives well-spread delays without math/rand's
// lock; the sequence being process-global (not per-retry-loop) is fine —
// jitter exists to decorrelate concurrent retries, not to be replayable.
var jitterSeq atomic.Uint64

// backoff returns the next decorrelated-jitter delay: uniform in
// [base, min(cap, 3*prev)].
func (p RetryPolicy) backoff(base, cap, prev time.Duration) time.Duration {
	hi := 3 * prev
	if hi > cap {
		hi = cap
	}
	if hi <= base {
		return base
	}
	span := uint64(hi - base)
	return base + time.Duration(faults.Mix64(jitterSeq.Add(1))%span)
}

// Retry runs fn under Guard up to p.Attempts times, sleeping a
// decorrelated-jitter backoff between attempts, and returns the last
// value/error plus how many retries were spent. Non-transient failures —
// ordinary errors and genuine (non-injected) panics — return immediately:
// a deterministic failure re-run N times is N times the cost for the same
// answer. Callers must ensure fn is safe to re-enter (the engine's fault
// sites fire before any state is mutated, so injected failures always
// leave fn re-runnable).
func Retry[V any](p RetryPolicy, key string, gang bool, fn func() (V, error)) (V, error, int) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	base := p.Base
	if base <= 0 {
		base = time.Millisecond
	}
	cap := p.Cap
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	prev := base
	retries := 0
	for attempt := 1; ; attempt++ {
		v, err := Guard(key, gang, fn)
		if err == nil || attempt >= attempts || !IsTransient(err) {
			return v, err, retries
		}
		retries++
		d := p.backoff(base, cap, prev)
		sleep(d)
		prev = d
	}
}
