package engine

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Host cache-budget detection. Adaptive gang windows (experiments
// gang scheduling, cpu.AutoGangWindow) size the shared traversal slice
// against the host's last-level cache; this file answers "how big is it"
// the same way Workers answers "how wide is the host" — an environment
// override first, then a platform probe, then a safe default.

// DefaultLLCBytes is the budget assumed when the host's last-level cache
// size cannot be detected: 32 MiB, a mid-range server LLC.
const DefaultLLCBytes int64 = 32 << 20

// LLCBytes returns the host cache budget in bytes: the ACIC_LLC_BYTES
// environment variable when set (plain bytes or a K/M/G-suffixed size),
// else the largest cache level sysfs reports for cpu0, else
// DefaultLLCBytes.
func LLCBytes() int64 {
	if s := os.Getenv("ACIC_LLC_BYTES"); s != "" {
		if n, ok := parseSize(s); ok {
			return n
		}
	}
	if n := sysfsLLCBytes(); n > 0 {
		return n
	}
	return DefaultLLCBytes
}

// sysfsLLCBytes probes /sys/devices/system/cpu/cpu0/cache once per
// process; the hardware does not change under us.
var sysfsLLCBytes = sync.OnceValue(func() int64 {
	paths, err := filepath.Glob("/sys/devices/system/cpu/cpu0/cache/index*/size")
	if err != nil {
		return 0
	}
	var best int64
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		if n, ok := parseSize(string(b)); ok && n > best {
			best = n
		}
	}
	return best
})

// parseSize parses a byte count with an optional K/M/G suffix (the sysfs
// cache-size format, e.g. "32768K").
func parseSize(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n * mult, true
}
