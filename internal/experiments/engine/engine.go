// Package engine is the concurrency core of the experiments layer: a
// bounded worker pool sized to the host, a generic memoizing group with
// per-key singleflight (so hundreds of figure renderers can demand the
// same simulation cell and pay for it once), and an optional persistent
// cache layered under the in-memory store so repeated tool runs are
// incremental.
//
// The intended shape is plan → execute → render: callers first enumerate
// the keys an artifact needs, batch them through Group.Require (parallel,
// deduplicated), and then render from the completed store with Group.Get,
// which at that point returns instantly. Get is also safe to call from
// inside a pool task: an unclaimed key is computed inline on the caller's
// goroutine rather than waiting for a pool slot, so dependent groups
// (results → workloads) cannot deadlock the pool.
package engine

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"acic/internal/faults"
)

// Workers returns the default worker-pool width: the ACIC_WORKERS
// environment variable if set to a positive integer, else GOMAXPROCS.
func Workers() int {
	if s := os.Getenv("ACIC_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Pool bounds the number of concurrently running tasks. The zero value is
// not usable; construct with NewPool.
type Pool struct {
	slots   chan struct{}
	running atomic.Int64
	queued  atomic.Int64

	// OnPanic, if non-nil, observes panics recovered in Go tasks (Each
	// reports them through its error return instead). Called from worker
	// goroutines; it must be safe for concurrent use.
	OnPanic func(*CellError)
}

// NewPool creates a pool running at most workers tasks at once
// (workers <= 0 selects Workers()).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	return &Pool{slots: make(chan struct{}, workers)}
}

// Width returns the pool's concurrency bound.
func (p *Pool) Width() int { return cap(p.slots) }

// acquire blocks until a slot frees and counts the task as running;
// release undoes both. Every slot user goes through this pair so the
// occupancy counters stay exact.
func (p *Pool) acquire() {
	p.queued.Add(1)
	p.slots <- struct{}{}
	p.queued.Add(-1)
	p.running.Add(1)
}

func (p *Pool) release() {
	p.running.Add(-1)
	<-p.slots
}

// Running returns the number of tasks currently occupying slots. It is a
// point-in-time snapshot — scheduling advice, not a synchronization
// primitive.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Idle returns how many slots are currently free (Width − Running, floored
// at zero). Batch packers use it to decide how many tasks a submission
// should split into: with idle workers available, narrower-but-more tasks
// fill the pool; with the pool saturated, wider tasks amortize better.
func (p *Pool) Idle() int {
	idle := p.Width() - p.Running()
	if idle < 0 {
		return 0
	}
	return idle
}

// Queued returns how many tasks are currently blocked waiting for a slot.
// Together with Running and Idle this completes the occupancy snapshot:
// the distributed worker's claim sizing uses Idle − Queued headroom to
// decide how many batches to steal, so a worker with a backlog stops
// asking for more work instead of hoarding batches other workers could
// run.
func (p *Pool) Queued() int { return int(p.queued.Load()) }

// Go starts fn as one pool task, blocking the caller until a slot frees
// (the same submitter backpressure as Each and Require) and returning as
// soon as the task is launched. Completion is observed through whatever fn
// fulfills — batch executors pair Go with Group.TryClaim/Fulfill, whose
// done channels the eventual Require waits on. Like Each, Go must not be
// called from inside a pool task.
//
// A panic escaping fn is recovered (reported via OnPanic) rather than
// killing the process. This is a last-resort backstop: a task that
// panics between TryClaim and Fulfill still strands its claimed keys, so
// batch executors must install their own recovery that fulfills — the
// suite's gang runner does (see its degradation ladder).
func (p *Pool) Go(fn func()) {
	p.acquire()
	go func() {
		defer p.release()
		defer func() {
			if r := recover(); r != nil {
				ce := recoveredError("pool task", false, r, debug.Stack())
				if p.OnPanic != nil {
					p.OnPanic(ce)
				}
			}
		}()
		fn()
	}()
}

// Each runs fn(0..n-1) with bounded parallelism and waits for all calls,
// returning the lowest-index error. A panicking call is recovered into a
// *CellError for its index instead of killing the process. Each must not
// be called from inside a pool task (a task waiting for its own pool's
// slots can deadlock); nested work should use Group.Get, which computes
// inline.
func (p *Pool) Each(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		p.acquire()
		go func(i int) {
			defer wg.Done()
			defer p.release()
			_, errs[i] = Guard(fmt.Sprintf("task %d", i), false, func() (struct{}, error) {
				return struct{}{}, fn(i)
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cell is the singleflight slot for one key. A cell is *claimed* when it
// enters the map and *started* when some goroutine wins the CAS to run
// it; the two are distinct so that a Get arriving between Require's claim
// and its (possibly blocked) pool-slot acquisition can help-run the cell
// instead of waiting on a computation nobody has started — waiting there
// deadlocks when the waiters hold the very slots the claimer needs.
type cell[V any] struct {
	done    chan struct{} // closed when val/err are final
	started atomic.Bool   // won by whoever runs the compute
	val     V
	err     error
}

// Group memoizes compute(key) results with per-key singleflight: however
// many goroutines demand a key, compute runs once and everyone shares the
// outcome (including errors). An optional Cache is consulted before
// compute and populated after it, making results persistent across
// processes.
type Group[K comparable, V any] struct {
	pool    *Pool
	compute func(K) (V, error)

	// Cache, if non-nil, is checked before compute and written after a
	// successful compute. Set it before first use.
	Cache Cache[K, V]
	// OnDone, if non-nil, is called once per key after it completes
	// (fromCache reports a persistent-cache hit). Called from worker
	// goroutines; it must be safe for concurrent use.
	OnDone func(key K, fromCache bool, err error)
	// Retry bounds re-attempts of transient compute failures (injected
	// faults, MarkTransient-wrapped errors). The zero value runs compute
	// once — still panic-guarded, so a panicking compute fails its key
	// with a *CellError instead of killing the process. Set before first
	// use.
	Retry RetryPolicy

	mu    sync.Mutex
	cells map[K]*cell[V]

	computed  atomic.Int64 // keys produced by compute
	cacheHits atomic.Int64 // keys served from Cache
	retries   atomic.Int64 // extra compute attempts spent on transient failures
}

// NewGroup creates a memoizing group executing batch work on pool.
func NewGroup[K comparable, V any](pool *Pool, compute func(K) (V, error)) *Group[K, V] {
	return &Group[K, V]{pool: pool, compute: compute, cells: make(map[K]*cell[V])}
}

// claim returns the cell for k, creating it if absent; claimed reports
// whether this call created it (Require uses that to submit each new
// cell to the pool exactly once; who actually runs it is decided by the
// cell's started CAS).
func (g *Group[K, V]) claim(k K) (c *cell[V], claimed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.cells[k]; ok {
		return c, false
	}
	c = &cell[V]{done: make(chan struct{})}
	g.cells[k] = c
	return c, true
}

func (g *Group[K, V]) run(k K, c *cell[V]) {
	defer close(c.done)
	if g.Cache != nil {
		if v, ok := g.Cache.Load(k); ok {
			c.val = v
			g.cacheHits.Add(1)
			if g.OnDone != nil {
				g.OnDone(k, true, nil)
			}
			return
		}
	}
	var retried int
	c.val, c.err, retried = Retry(g.Retry, fmt.Sprint(k), false, func() (V, error) {
		faults.PanicPoint("compute")
		return g.compute(k)
	})
	if retried > 0 {
		g.retries.Add(int64(retried))
	}
	g.computed.Add(1)
	if c.err == nil && g.Cache != nil {
		g.Cache.Store(k, c.val)
	}
	if g.OnDone != nil {
		g.OnDone(k, false, c.err)
	}
}

// Get returns the memoized value for k. If k's computation has not
// started yet — unclaimed, or claimed by a Require that is still queued
// for a pool slot — it is computed inline on the caller's goroutine
// (never waiting for a slot), otherwise Get blocks until the in-flight
// computation finishes. Safe to call from inside pool tasks.
func (g *Group[K, V]) Get(k K) (V, error) {
	c, _ := g.claim(k)
	if c.started.CompareAndSwap(false, true) {
		g.run(k, c)
	} else {
		<-c.done
	}
	return c.val, c.err
}

// Require computes every key on the worker pool — deduplicating repeats
// within the batch and against completed or in-flight work — and waits
// for all of them. Every key is attempted even if some fail; the error of
// the first failing key in argument order is returned so error reporting
// is deterministic. Like Pool.Each, Require must not be called from
// inside a pool task (its submitter blocks on a slot the caller may
// itself hold); nested work should use Get, which computes inline.
func (g *Group[K, V]) Require(keys ...K) error {
	type pending struct {
		k K
		c *cell[V]
	}
	seen := make(map[K]bool, len(keys))
	batch := make([]pending, 0, len(keys))
	var wg sync.WaitGroup
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		c, claimed := g.claim(k)
		batch = append(batch, pending{k, c})
		if !claimed {
			continue
		}
		wg.Add(1)
		g.pool.acquire() // backpressure on the submitter
		go func(k K, c *cell[V]) {
			defer wg.Done()
			defer g.pool.release()
			// A Get may have help-run the cell while this task was
			// queued; losing the CAS means there is nothing left to do.
			if c.started.CompareAndSwap(false, true) {
				g.run(k, c)
			}
		}(k, c)
	}
	wg.Wait()
	for _, p := range batch {
		<-p.c.done // may have been claimed by a concurrent caller
		if p.c.err != nil {
			return p.c.err
		}
	}
	return nil
}

// TryClaim claims k for external computation: true means the caller now
// owns the key and must complete it with exactly one TryCache (that hits)
// or Fulfill call; false means the key is already computed, in flight, or
// owned elsewhere. Batch executors (gang simulation) use this to take a
// set of keys out of the per-key compute path and produce them together —
// a Get or Require arriving for a claimed key simply waits for the owner.
func (g *Group[K, V]) TryClaim(k K) bool {
	c, _ := g.claim(k)
	return c.started.CompareAndSwap(false, true)
}

// TryCache consults the persistent cache for a key claimed via TryClaim.
// On a hit the key is completed from the cached value (counting a cache
// hit and firing OnDone like the internal path) and TryCache returns true:
// the caller must not Fulfill it. On a miss the caller still owns the key.
func (g *Group[K, V]) TryCache(k K) bool {
	if g.Cache == nil {
		return false
	}
	v, ok := g.Cache.Load(k)
	if !ok {
		return false
	}
	c := g.cellOf(k)
	c.val = v
	g.cacheHits.Add(1)
	if g.OnDone != nil {
		g.OnDone(k, true, nil)
	}
	close(c.done)
	return true
}

// Fulfill completes a key claimed via TryClaim with an externally computed
// value, storing successes to the persistent cache and waking every
// waiter. Calling it for a key the caller does not own corrupts the group.
func (g *Group[K, V]) Fulfill(k K, v V, err error) {
	c := g.cellOf(k)
	c.val, c.err = v, err
	g.computed.Add(1)
	if err == nil && g.Cache != nil {
		g.Cache.Store(k, v)
	}
	if g.OnDone != nil {
		g.OnDone(k, false, err)
	}
	close(c.done)
}

// Forget drops a COMPLETED key from the memo so the next demand
// recomputes it, returning whether anything was dropped. A key still in
// flight (claimed but its done channel not yet closed) is left alone —
// forgetting it would strand waiters on a cell no future Fulfill can
// reach. The distributed worker uses Forget after a transient cell
// failure: the coordinator will requeue the cell (possibly to this very
// worker), and the retry must run the compute again rather than replay
// the memoized error.
func (g *Group[K, V]) Forget(k K) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.cells[k]
	if !ok {
		return false
	}
	select {
	case <-c.done:
		delete(g.cells, k)
		return true
	default:
		return false
	}
}

// ForgetTransient drops a completed key only when its memoized outcome
// is a transient error, returning whether anything was dropped.
// Successful results and deterministic errors stand — a long-lived
// process (acic-serve, a distributed worker between requeues) uses this
// to heal stage memos poisoned by injected faults or store outages
// without discarding work that is still good.
func (g *Group[K, V]) ForgetTransient(k K) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.cells[k]
	if !ok {
		return false
	}
	select {
	case <-c.done:
		if c.err == nil || !IsTransient(c.err) {
			return false
		}
		delete(g.cells, k)
		return true
	default:
		return false
	}
}

// ForgetAllTransient sweeps every completed key whose memoized outcome
// is a transient error, returning how many were dropped. Used when the
// caller cannot name the poisoned keys — e.g. a figure render failed
// transiently and any of its cells may hold the memoized fault.
func (g *Group[K, V]) ForgetAllTransient() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for k, c := range g.cells {
		select {
		case <-c.done:
			if c.err != nil && IsTransient(c.err) {
				delete(g.cells, k)
				n++
			}
		default:
		}
	}
	return n
}

func (g *Group[K, V]) cellOf(k K) *cell[V] {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.cells[k]
	if !ok {
		panic("engine: Fulfill/TryCache of an unclaimed key")
	}
	return c
}

// Size returns the number of keys ever demanded (completed or in flight).
func (g *Group[K, V]) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.cells)
}

// Computed returns how many keys were produced by the compute function.
func (g *Group[K, V]) Computed() int64 { return g.computed.Load() }

// CacheHits returns how many keys were served from the persistent cache.
func (g *Group[K, V]) CacheHits() int64 { return g.cacheHits.Load() }

// Retries returns how many extra compute attempts were spent recovering
// transient failures across all keys.
func (g *Group[K, V]) Retries() int64 { return g.retries.Load() }
