package engine

import (
	"sync"
	"time"
)

// Breaker is a per-key circuit breaker over the engine's error taxonomy
// (errors.go). It exists for long-lived servers: a deterministic
// CellError is memoized by Group and harmless in a batch run, but a
// server that Forgets failed cells to keep them retryable would burn a
// full simulation per probe of a permanently broken cell. The breaker
// sits in front of that recompute: consecutive deterministic failures
// trip the key open, and while open the caller answers instantly
// (CodeCircuitOpen upstream) instead of re-running doomed work.
//
// Classification follows the taxonomy's split exactly:
//
//   - success closes the key and forgets its history;
//   - a transient error (IsTransient) is neutral — it neither trips nor
//     closes, because environmental noise says nothing about the cell;
//   - a deterministic error extends the streak, tripping at Threshold.
//
// After Cooldown a single probe is admitted (half-open): Allow returns
// true exactly once, and the matching Record either closes the key or
// re-arms the cooldown. The zero value is not usable; call NewBreaker.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu      sync.Mutex
	entries map[string]*breakerState
}

type breakerState struct {
	fails    int       // consecutive deterministic failures
	open     bool      // tripped
	openedAt time.Time // when the current open period started
	probing  bool      // the one half-open probe is in flight
}

// DefaultBreakerThreshold and DefaultBreakerCooldown are the serve
// daemon's defaults: three identical deterministic failures in a row
// are no longer a coincidence, and half a minute bounds how stale a
// "known broken" verdict can get.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 30 * time.Second
)

// NewBreaker returns a breaker tripping each key after threshold
// consecutive deterministic failures (<=0 = DefaultBreakerThreshold)
// and admitting a probe after cooldown (<=0 = DefaultBreakerCooldown).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		entries:   make(map[string]*breakerState),
	}
}

// Allow reports whether work on key may proceed. Closed keys always
// pass. An open key refuses until Cooldown has elapsed, then admits
// exactly one probe; further Allows refuse again until that probe's
// Record settles the verdict.
func (b *Breaker) Allow(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.entries[key]
	if !ok || !st.open {
		return true
	}
	if st.probing || b.now().Sub(st.openedAt) < b.cooldown {
		return false
	}
	st.probing = true
	return true
}

// Record reports the outcome of work Allow admitted. A nil error closes
// the key; a transient error is neutral (clears any probe without
// extending the streak — noise proves nothing either way); a
// deterministic error counts toward the threshold and immediately
// re-opens a probing key.
func (b *Breaker) Record(key string, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		delete(b.entries, key)
		return
	}
	if IsTransient(err) {
		if st, ok := b.entries[key]; ok && st.probing {
			// The probe never tested the cell; let the next Allow retry
			// without waiting out a fresh cooldown.
			st.probing = false
			st.openedAt = b.now().Add(-b.cooldown)
		}
		return
	}
	st, ok := b.entries[key]
	if !ok {
		st = &breakerState{}
		b.entries[key] = st
	}
	st.fails++
	if st.probing || st.fails >= b.threshold {
		st.open = true
		st.probing = false
		st.openedAt = b.now()
	}
}

// Open reports whether key is currently tripped.
func (b *Breaker) Open(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.entries[key]
	return ok && st.open
}

// OpenCount reports how many keys are currently tripped.
func (b *Breaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, st := range b.entries {
		if st.open {
			n++
		}
	}
	return n
}
