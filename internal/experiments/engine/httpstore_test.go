package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"acic/internal/api"
	"acic/internal/faults"
)

// newStoreServer spins up a StoreServer over a scratch directory and
// returns its base URL plus the backing root.
func newStoreServer(t *testing.T) (url, root string) {
	t.Helper()
	root = t.TempDir()
	h, err := NewStoreHandler(root)
	if err != nil {
		t.Fatalf("NewStoreHandler(%s): %v", root, err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL, root
}

// A DiskCache pointed at an http:// URL must behave exactly like a local
// one: Store then Load round-trips, Has sees published entries, and
// misses stay misses.
func TestHTTPStoreRoundTrip(t *testing.T) {
	url, _ := newStoreServer(t)
	c, err := NewDiskCache[string, int](url, func(k string) string { return k })
	if err != nil {
		t.Fatalf("NewDiskCache(%s): %v", url, err)
	}
	if _, ok := c.Load("k"); ok {
		t.Fatal("Load hit on an empty store")
	}
	if c.Has("k") {
		t.Fatal("Has true on an empty store")
	}
	c.Store("k", 42)
	if got, ok := c.Load("k"); !ok || got != 42 {
		t.Fatalf("Load after Store = (%d, %v), want (42, true)", got, ok)
	}
	if !c.Has("k") {
		t.Fatal("Has false after Store")
	}
}

// Two caches sharing one store URL must see each other's entries — that
// is the whole point of the remote backend.
func TestHTTPStoreIsShared(t *testing.T) {
	url, _ := newStoreServer(t)
	key := func(k string) string { return k }
	a, err := NewDiskCache[string, int](url, key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiskCache[string, int](url, key)
	if err != nil {
		t.Fatal(err)
	}
	a.Store("k", 7)
	if got, ok := b.Load("k"); !ok || got != 7 {
		t.Fatalf("second client Load = (%d, %v), want (7, true)", got, ok)
	}
}

// An unreachable store must fail loudly at construction, mirroring the
// local writability probe: Store is best-effort, so without the probe a
// worker with a bad -store-url would silently persist nothing.
func TestHTTPStoreUnreachableFailsConstruction(t *testing.T) {
	_, err := NewDiskCache[string, int]("http://127.0.0.1:1/nope", func(k string) string { return k })
	if err == nil {
		t.Fatal("NewDiskCache succeeded against an unreachable store")
	}
}

// Streamed writes must publish through the server too: the entry is
// staged in a local temp file and shipped in one PUT on Commit, and an
// Abort leaves nothing behind.
func TestHTTPStoreStreaming(t *testing.T) {
	url, root := newStoreServer(t)
	c, err := NewCodecDiskCache(url, ".bin", func(k string) string { return k },
		func(v []byte) ([]byte, error) { return v, nil },
		func(_ string, b []byte) ([]byte, error) { return append([]byte(nil), b...), nil })
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c.BeginStream("k")
	if !ok {
		t.Fatal("BeginStream failed")
	}
	if _, err := e.F.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.F.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	e.Commit()
	got, ok := c.Load("k")
	if !ok || string(got) != "hello world" {
		t.Fatalf("Load after streamed Commit = (%q, %v), want (\"hello world\", true)", got, ok)
	}

	a, ok := c.BeginStream("aborted")
	if !ok {
		t.Fatal("BeginStream failed")
	}
	a.F.Write([]byte("partial"))
	a.Abort()
	if c.Has("aborted") {
		t.Fatal("aborted stream was published")
	}
	// The server's root must hold only complete entries — no stray temps.
	for _, name := range storeRootFiles(t, root) {
		if filepath.Ext(name) != ".bin" {
			t.Fatalf("stray file %q in store root", name)
		}
	}
}

// The server is content-addressed, so an entry's name is its content key:
// GET must return it as the ETag and honor If-None-Match with 304.
func TestHTTPStoreETag(t *testing.T) {
	url, _ := newStoreServer(t)
	c, err := NewDiskCache[string, int](url, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	c.Store("k", 1)
	name := c.name("k")
	resp, err := http.Get(url + "/blob/" + name)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag != `"`+name+`"` {
		t.Fatalf("ETag = %q, want %q", etag, `"`+name+`"`)
	}
	req, _ := http.NewRequest(http.MethodGet, url+"/blob/"+name, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %s, want 304", resp2.Status)
	}
}

// decodeEnvelope asserts the response is a JSON api.Envelope and
// returns its error.
func decodeEnvelope(t *testing.T, resp *http.Response) *api.Error {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error response content type = %q, want application/json", ct)
	}
	var env api.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error response body is not an envelope: %v", err)
	}
	if env.Err == nil {
		t.Fatal("envelope has no error")
	}
	return env.Err
}

// Entry names come from the request path, so the handler must reject
// anything that is not a plain content-hash name — always 400 with the
// bad_request code, never conflated with a missing entry's 404.
func TestHTTPStoreRejectsBadNames(t *testing.T) {
	url, _ := newStoreServer(t)
	for _, name := range []string{"..%2F..%2Fetc%2Fpasswd", "a%2Fb.json", "UPPER.json", "has space.json"} {
		resp, err := http.Get(url + "/blob/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /blob/%s = %s, want 400", name, resp.Status)
		}
		if e := decodeEnvelope(t, resp); e.Code != api.CodeBadRequest {
			t.Fatalf("GET /blob/%s error code = %q, want %q", name, e.Code, api.CodeBadRequest)
		}
	}
}

// The store handler speaks the shared api envelope on every error path,
// with codes that distinguish the failure classes: missing entries are
// not_found, wrong verbs are method_not_allowed, unknown paths are
// not_found — all machine-readable, none plain text.
func TestHTTPStoreErrorEnvelope(t *testing.T) {
	url, _ := newStoreServer(t)

	resp, err := http.Get(url + "/blob/aaaa1111.json")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing blob = %s, want 404", resp.Status)
	}
	if e := decodeEnvelope(t, resp); e.Code != api.CodeNotFound {
		t.Fatalf("missing blob code = %q, want %q", e.Code, api.CodeNotFound)
	}

	req, _ := http.NewRequest(http.MethodDelete, url+"/blob/aaaa1111.json", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE blob = %s, want 405", resp.Status)
	}
	if e := decodeEnvelope(t, resp); e.Code != api.CodeMethodNotAllowed {
		t.Fatalf("DELETE blob code = %q, want %q", e.Code, api.CodeMethodNotAllowed)
	}

	resp, err = http.Get(url + "/quarantine/aaaa1111.json")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET quarantine = %s, want 405", resp.Status)
	}
	if e := decodeEnvelope(t, resp); e.Code != api.CodeMethodNotAllowed {
		t.Fatalf("GET quarantine code = %q, want %q", e.Code, api.CodeMethodNotAllowed)
	}

	resp, err = http.Get(url + "/no-such-endpoint")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %s, want 404", resp.Status)
	}
	if e := decodeEnvelope(t, resp); e.Code != api.CodeNotFound {
		t.Fatalf("unknown path code = %q, want %q", e.Code, api.CodeNotFound)
	}

	// healthz is JSON too, versioned so clients can detect the contract.
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if h.Status != "ok" || h.Version != api.Version {
		t.Fatalf("healthz = %+v", h)
	}
}

// A corrupt remote entry must be quarantined server-side — moved out of
// the store root with a .reason sidecar — and read as a miss, exactly
// like the local quarantine path.
func TestHTTPStoreQuarantine(t *testing.T) {
	url, root := newStoreServer(t)
	c, err := NewDiskCache[string, int](url, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	c.Store("k", 42)
	name := c.name("k")
	// Corrupt the published entry behind the server's back.
	if err := os.WriteFile(filepath.Join(root, name), []byte("not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("k"); ok {
		t.Fatal("Load hit on a corrupt entry")
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	qpath := filepath.Join(root, QuarantineDirName, name)
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("corrupt entry was not quarantined server-side: %v", err)
	}
	reason, err := os.ReadFile(qpath + ".reason")
	if err != nil || len(reason) == 0 {
		t.Fatalf("quarantine reason sidecar missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, name)); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still in store root after quarantine")
	}
	// The entry regenerates cleanly afterwards.
	c.Store("k", 42)
	if got, ok := c.Load("k"); !ok || got != 42 {
		t.Fatalf("Load after regenerate = (%d, %v), want (42, true)", got, ok)
	}
}

// Injected net-err faults must read exactly like transport failures:
// loads miss, stores skip, and nothing reaches the server.
func TestHTTPStoreNetErrFaults(t *testing.T) {
	url, _ := newStoreServer(t)
	c, err := NewDiskCache[string, int](url, func(k string) string { return k })
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Install("net-err:p=1;seed=1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { faults.Install("") })
	c.Store("k", 42) // skipped: the PUT is never issued
	if got := faults.Snapshot().NetErrs; got != 1 {
		t.Fatalf("NetErrs after skipped Store = %d, want 1", got)
	}
	faults.Install("")
	if c.Has("k") {
		t.Fatal("Store under net-err reached the server")
	}
	c.Store("k", 42)
	faults.Install("net-err:p=1;seed=1")
	if _, ok := c.Load("k"); ok {
		t.Fatal("Load hit while net-err fires on every request")
	}
	if got := faults.Snapshot().NetErrs; got != 1 {
		t.Fatalf("NetErrs after missed Load = %d, want 1", got)
	}
}

// Store-level fencing: writers racing one content-addressed key must
// converge to a single complete published entry, byte-identical to what
// any one writer produced — readers never observe a partial or mixed
// entry. Exercised over both backends; the publish discipline under test
// is the same tmp/ + fsync + rename either way (client-side locally,
// server-side over HTTP).
func TestStoreFencingConvergesRacingWriters(t *testing.T) {
	newLocal := func(t *testing.T) (*DiskCache[string, int], string) {
		dir := t.TempDir()
		c, err := NewDiskCache[string, int](dir, func(k string) string { return k })
		if err != nil {
			t.Fatal(err)
		}
		return c, dir
	}
	newRemote := func(t *testing.T) (*DiskCache[string, int], string) {
		url, root := newStoreServer(t)
		c, err := NewDiskCache[string, int](url, func(k string) string { return k })
		if err != nil {
			t.Fatal(err)
		}
		return c, root
	}
	for name, mk := range map[string]func(*testing.T) (*DiskCache[string, int], string){
		"filesystem": newLocal, "http": newRemote,
	} {
		t.Run(name, func(t *testing.T) {
			c, root := mk(t)
			const writers = 16
			var wg sync.WaitGroup
			for i := 0; i < writers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Same key, same value: content-addressed writers
					// are byte-identical by construction, and the race
					// is over who publishes.
					c.Store("contested", 12345)
				}()
			}
			// Readers race the writers; every hit must be the one true
			// value (a torn entry would fail the CRC frame and read as
			// a miss or quarantine — also a failure below).
			for i := 0; i < 50; i++ {
				if v, ok := c.Load("contested"); ok && v != 12345 {
					t.Fatalf("racing reader saw %d, want 12345", v)
				}
			}
			wg.Wait()
			if got := c.Quarantined(); got != 0 {
				t.Fatalf("fencing race quarantined %d entries, want 0", got)
			}
			if v, ok := c.Load("contested"); !ok || v != 12345 {
				t.Fatalf("post-race Load = (%d, %v), want (12345, true)", v, ok)
			}
			// Exactly one complete entry in the store root, nothing else.
			var published []string
			for _, f := range storeRootFiles(t, root) {
				published = append(published, f)
			}
			if len(published) != 1 {
				t.Fatalf("store root holds %v, want exactly one entry", published)
			}
			want := c.name("contested")
			if published[0] != want {
				t.Fatalf("published entry %q, want %q", published[0], want)
			}
		})
	}
}

// IsStoreURL is the routing predicate every store-dir flag goes through.
func TestIsStoreURL(t *testing.T) {
	for dir, want := range map[string]bool{
		"http://localhost:9321":  true,
		"https://store.internal": true,
		"/var/cache/acic":        false,
		"relative/dir":           false,
		"httpdir":                false,
	} {
		if got := IsStoreURL(dir); got != want {
			t.Errorf("IsStoreURL(%q) = %v, want %v", dir, got, want)
		}
	}
}
