package engine

import (
	"runtime"
	"sync"
	"testing"
)

// TestPoolOccupancy pins the Running/Idle counters batch packers plan
// against: an empty pool is fully idle, every held slot moves one unit
// from Idle to Running, and drained tasks return it.
func TestPoolOccupancy(t *testing.T) {
	p := NewPool(4)
	if p.Width() != 4 || p.Running() != 0 || p.Idle() != 4 {
		t.Fatalf("fresh pool: width %d running %d idle %d", p.Width(), p.Running(), p.Idle())
	}

	hold := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		p.Go(func() {
			defer wg.Done()
			started <- struct{}{}
			<-hold
		})
	}
	for i := 0; i < 3; i++ {
		<-started
	}
	if p.Running() != 3 || p.Idle() != 1 {
		t.Errorf("3 held tasks: running %d idle %d, want 3 and 1", p.Running(), p.Idle())
	}
	close(hold)
	wg.Wait()
	if p.Running() != 0 || p.Idle() != 4 {
		t.Errorf("drained pool: running %d idle %d, want 0 and 4", p.Running(), p.Idle())
	}
}

// TestPoolQueued pins the third leg of the occupancy snapshot: submitters
// blocked waiting for a slot count as queued, and move to running the
// moment a slot frees. The distributed worker's steal sizing subtracts
// Queued from Idle, so a stuck-at-zero or leaking counter would make
// workers hoard or starve.
func TestPoolQueued(t *testing.T) {
	p := NewPool(2)
	if p.Queued() != 0 {
		t.Fatalf("fresh pool: queued %d", p.Queued())
	}

	hold := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		p.Go(func() {
			defer wg.Done()
			started <- struct{}{}
			<-hold
		})
	}
	<-started
	<-started

	// The pool is full; three more submissions must block in acquire and
	// show up as queued.
	queued := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			queued <- struct{}{}
			p.Go(func() {
				defer wg.Done()
				<-hold
			})
		}()
	}
	for i := 0; i < 3; i++ {
		<-queued
	}
	// The three submitters are between the channel send above and slot
	// acquisition; poll until all have registered.
	for p.Queued() != 3 {
		runtime.Gosched()
	}
	if r := p.Running(); r != 2 {
		t.Errorf("Running() = %d with a full pool, want 2", r)
	}
	close(hold)
	wg.Wait()
	if p.Queued() != 0 || p.Running() != 0 {
		t.Errorf("drained pool: queued %d running %d, want 0 and 0", p.Queued(), p.Running())
	}
}

// TestPoolEachCountsOccupancy: Each goes through the same acquire/release
// pair as Go, so occupancy observed from inside a task is at least 1 and
// never exceeds the width.
func TestPoolEachCountsOccupancy(t *testing.T) {
	p := NewPool(2)
	if err := p.Each(8, func(i int) error {
		if r := p.Running(); r < 1 || r > 2 {
			t.Errorf("Running() = %d inside a width-2 pool task", r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.Running() != 0 {
		t.Errorf("Running() = %d after Each returned", p.Running())
	}
}
