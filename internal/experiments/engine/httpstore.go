package engine

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"acic/internal/api"
	"acic/internal/faults"
)

// httpStore is the remote blob backend: a client for a StoreServer. Every
// operation maps onto one round trip — GET/PUT/HEAD /blob/{name}, POST
// /quarantine/{name} — and every operation is best-effort exactly like
// the filesystem store: a failed or injected-to-fail request reads as a
// miss or skips the write, never as a wrong result. The server applies
// the same fsync+rename publish discipline the local store does, so
// concurrent writers racing one content-addressed name still converge to
// a single complete entry.
type httpStore struct {
	base   string
	client *http.Client
}

// storeClientTimeout bounds each store round trip. Entries are at most a
// few tens of megabytes (trace containers), so a minute of headroom means
// a hit only when the server is truly gone — and the caller's contract
// (miss / skip) makes that safe.
const storeClientTimeout = 60 * time.Second

// newHTTPStore validates the base URL and probes the server's /healthz,
// mirroring the local store's construction-time writability probe: a
// misconfigured or unreachable store fails loudly up front instead of
// silently persisting nothing.
func newHTTPStore(base string) (*httpStore, error) {
	s := &httpStore{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: storeClientTimeout},
	}
	resp, err := s.client.Get(s.base + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("engine: store %s is unreachable: %w", base, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("engine: store %s health check: %s", base, resp.Status)
	}
	return s, nil
}

func (s *httpStore) blobURL(name string) string { return s.base + "/blob/" + name }

func (s *httpStore) get(name string) ([]byte, bool) {
	if faults.FailNet() {
		return nil, false
	}
	resp, err := s.client.Get(s.blobURL(name))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	return data, true
}

func (s *httpStore) has(name string) bool {
	if faults.FailNet() {
		return false
	}
	req, err := http.NewRequest(http.MethodHead, s.blobURL(name), nil)
	if err != nil {
		return false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (s *httpStore) put(name string, data []byte) {
	if faults.FailNet() {
		return
	}
	req, err := http.NewRequest(http.MethodPut, s.blobURL(name), strings.NewReader(string(data)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// begin stages the streamed entry in a local temp file (the local
// filesystem is the only place a stream can be written incrementally and
// seeked), and publish ships the finished file to the server in one PUT.
func (s *httpStore) begin(name string) (*StreamEntry, bool) {
	tmp, err := os.CreateTemp("", "acic-stream-*")
	if err != nil {
		return nil, false
	}
	return &StreamEntry{F: tmp, publish: func(f *os.File) {
		defer os.Remove(f.Name())
		defer f.Close()
		if faults.FailNet() {
			return
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return
		}
		info, err := f.Stat()
		if err != nil {
			return
		}
		req, err := http.NewRequest(http.MethodPut, s.blobURL(name), f)
		if err != nil {
			return
		}
		req.ContentLength = info.Size()
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := s.client.Do(req)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}}, true
}

func (s *httpStore) quarantine(name, key string, cause error) {
	if faults.FailNet() {
		return
	}
	req, err := http.NewRequest(http.MethodPost, s.base+"/quarantine/"+name,
		strings.NewReader(quarantineReason(key, cause)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := s.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// storeServer serves one local blob store directory over HTTP to remote
// DiskCaches. It reuses fsStore for every write, so the crash-safety and
// fencing story is identical to a local store: PUTs stage under tmp/ and
// publish by fsync+rename, which collapses concurrent writers of one
// content-addressed name to a single complete entry.
type storeServer struct {
	fs *fsStore
}

// NewStoreHandler creates (if needed) root and returns an http.Handler
// serving it as a shared blob store:
//
//	GET  /healthz          — liveness probe (construction-time check)
//	GET  /blob/{name}      — entry bytes; ETag is the name itself (the
//	                         store is content-addressed, so the name IS
//	                         the content key) and If-None-Match gets 304
//	HEAD /blob/{name}      — existence check (DiskCache.Has)
//	PUT  /blob/{name}      — atomic publish via tmp/ + fsync + rename
//	POST /quarantine/{name} — move the entry to quarantine/, body is the
//	                         .reason sidecar contents
//
// Names are validated (content-hash charset, single path element) so the
// handler can never be walked out of root.
func NewStoreHandler(root string) (http.Handler, error) {
	fs, err := newFSStore(root)
	if err != nil {
		return nil, err
	}
	return &storeServer{fs: fs}, nil
}

// validName reports whether name is a plausible store entry name: one
// path element of hash hex plus a dotted extension, nothing that could
// escape the store root.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '-':
		default:
			return false
		}
	}
	return !strings.Contains(name, "..")
}

func (s *storeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		api.WriteJSON(w, http.StatusOK, api.Health{Status: "ok", Version: api.Version})
	case strings.HasPrefix(r.URL.Path, "/blob/"):
		s.blob(w, r, strings.TrimPrefix(r.URL.Path, "/blob/"))
	case strings.HasPrefix(r.URL.Path, "/quarantine/"):
		if r.Method != http.MethodPost {
			api.WriteError(w, http.StatusMethodNotAllowed, &api.Error{
				Code: api.CodeMethodNotAllowed, Message: "quarantine requires POST"})
			return
		}
		s.quarantine(w, r, strings.TrimPrefix(r.URL.Path, "/quarantine/"))
	default:
		api.WriteError(w, http.StatusNotFound, &api.Error{
			Code: api.CodeNotFound, Message: "no such endpoint: " + r.URL.Path})
	}
}

func (s *storeServer) blob(w http.ResponseWriter, r *http.Request, name string) {
	if !validName(name) {
		api.WriteError(w, http.StatusBadRequest, &api.Error{
			Code: api.CodeBadRequest, Message: "bad entry name"})
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		etag := `"` + name + `"`
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		f, err := os.Open(s.fs.path(name))
		if err != nil {
			api.WriteError(w, http.StatusNotFound, &api.Error{
				Code: api.CodeNotFound, Message: "no such entry: " + name})
			return
		}
		defer f.Close()
		info, err := f.Stat()
		if err != nil {
			api.WriteError(w, http.StatusNotFound, &api.Error{
				Code: api.CodeNotFound, Message: "no such entry: " + name})
			return
		}
		w.Header().Set("ETag", etag)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(info.Size()))
		if r.Method == http.MethodGet {
			io.Copy(w, f)
		}
	case http.MethodPut:
		// Stage and publish through fsStore's tmp/ + fsync + rename path
		// rather than writing in place: a torn upload leaves nothing in
		// the store root, and racing writers fence to one entry.
		entry, ok := s.fs.begin(name)
		if !ok {
			api.WriteError(w, http.StatusInsufficientStorage, &api.Error{
				Code: api.CodeStoreWrite, Message: "store write failed", Transient: true})
			return
		}
		if _, err := io.Copy(entry.F, r.Body); err != nil {
			entry.Abort()
			api.WriteError(w, http.StatusBadRequest, &api.Error{
				Code: api.CodeBadRequest, Message: "upload truncated", Transient: true})
			return
		}
		entry.Commit()
		w.Header().Set("ETag", `"`+name+`"`)
		w.WriteHeader(http.StatusCreated)
	default:
		api.WriteError(w, http.StatusMethodNotAllowed, &api.Error{
			Code: api.CodeMethodNotAllowed, Message: r.Method + " not allowed on /blob/"})
	}
}

func (s *storeServer) quarantine(w http.ResponseWriter, r *http.Request, name string) {
	if !validName(name) {
		api.WriteError(w, http.StatusBadRequest, &api.Error{
			Code: api.CodeBadRequest, Message: "bad entry name"})
		return
	}
	reason, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, &api.Error{
			Code: api.CodeBadRequest, Message: "bad reason body"})
		return
	}
	path := s.fs.path(name)
	qdir := filepath.Join(s.fs.dir, QuarantineDirName)
	dst := filepath.Join(qdir, name)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(path)
		api.WriteJSON(w, http.StatusOK, api.Ack{Status: "removed"})
		return
	}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		api.WriteJSON(w, http.StatusOK, api.Ack{Status: "removed"})
		return
	}
	os.WriteFile(dst+".reason", reason, 0o644)
	api.WriteJSON(w, http.StatusOK, api.Ack{Status: "quarantined"})
}
