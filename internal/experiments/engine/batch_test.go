package engine

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestTryClaimOwnership: a claimed key is owned exactly once, per-key
// compute never runs for it, and Get waits for the external Fulfill.
func TestTryClaimOwnership(t *testing.T) {
	g := NewGroup(NewPool(2), func(k string) (int, error) {
		t.Errorf("compute ran for externally owned key %q", k)
		return 0, nil
	})
	if !g.TryClaim("a") {
		t.Fatal("first TryClaim must win")
	}
	if g.TryClaim("a") {
		t.Fatal("second TryClaim must lose")
	}

	got := make(chan int)
	go func() {
		v, err := g.Get("a")
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got <- v
	}()
	g.Fulfill("a", 42, nil)
	if v := <-got; v != 42 {
		t.Errorf("Get returned %d, want 42", v)
	}
	if g.Computed() != 1 {
		t.Errorf("Computed = %d, want 1", g.Computed())
	}

	// Errors propagate to every waiter, and Require reports them.
	if !g.TryClaim("b") {
		t.Fatal("claim of b must win")
	}
	wantErr := errors.New("boom")
	g.Fulfill("b", 0, wantErr)
	if err := g.Require("b"); !errors.Is(err, wantErr) {
		t.Errorf("Require error = %v, want %v", err, wantErr)
	}
}

// mapCache is an in-memory Cache for tests.
type mapCache struct {
	mu sync.Mutex
	m  map[string]int
}

func (c *mapCache) Load(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

func (c *mapCache) Store(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

// TestTryCacheAndFulfillPersist: TryCache completes owned keys from the
// cache (counting a hit, firing OnDone with fromCache), and Fulfill writes
// successes back so later groups hit them.
func TestTryCacheAndFulfillPersist(t *testing.T) {
	cache := &mapCache{m: map[string]int{"warm": 7}}
	g := NewGroup(NewPool(1), func(k string) (int, error) { return 0, errors.New("unused") })
	g.Cache = cache
	type event struct {
		key       string
		fromCache bool
	}
	var mu sync.Mutex
	var events []event
	g.OnDone = func(k string, fromCache bool, err error) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, event{k, fromCache})
	}

	if !g.TryClaim("warm") {
		t.Fatal("claim must win")
	}
	if !g.TryCache("warm") {
		t.Fatal("TryCache must hit the warm entry")
	}
	if v, err := g.Get("warm"); v != 7 || err != nil {
		t.Errorf("Get(warm) = %d, %v", v, err)
	}
	if g.CacheHits() != 1 {
		t.Errorf("CacheHits = %d, want 1", g.CacheHits())
	}

	if !g.TryClaim("cold") {
		t.Fatal("claim must win")
	}
	if g.TryCache("cold") {
		t.Fatal("TryCache must miss a cold entry")
	}
	g.Fulfill("cold", 9, nil)
	if v, ok := cache.Load("cold"); !ok || v != 9 {
		t.Errorf("Fulfill did not persist: %d, %v", v, ok)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || !events[0].fromCache || events[1].fromCache {
		t.Errorf("OnDone events = %+v", events)
	}
}

// TestTryClaimAfterCompute: keys that already ran through the normal path
// cannot be claimed.
func TestTryClaimAfterCompute(t *testing.T) {
	g := NewGroup(NewPool(1), func(k string) (int, error) { return len(k), nil })
	if _, err := g.Get("xyz"); err != nil {
		t.Fatal(err)
	}
	if g.TryClaim("xyz") {
		t.Error("TryClaim must lose against a computed key")
	}
}

// TestPoolGo: Go applies the pool's concurrency bound to submitted tasks.
func TestPoolGo(t *testing.T) {
	p := NewPool(2)
	var mu sync.Mutex
	running, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		p.Go(func() {
			defer wg.Done()
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
		})
	}
	wg.Wait()
	if peak > 2 {
		t.Errorf("pool ran %d tasks at once, bound is 2", peak)
	}
}
