package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupSingleflight(t *testing.T) {
	var calls atomic.Int64
	g := NewGroup(NewPool(4), func(k string) (string, error) {
		calls.Add(1)
		return "v:" + k, nil
	})
	const goroutines = 32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := g.Get("a")
			if err != nil || v != "v:a" {
				t.Errorf("Get = %q, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times for one key, want 1", n)
	}
	if n := g.Computed(); n != 1 {
		t.Errorf("Computed() = %d, want 1", n)
	}
}

func TestRequireDedupes(t *testing.T) {
	var calls atomic.Int64
	g := NewGroup(NewPool(8), func(k int) (int, error) {
		calls.Add(1)
		return k * k, nil
	})
	// Repeats within the batch, plus a key already computed via Get.
	if _, err := g.Get(3); err != nil {
		t.Fatal(err)
	}
	if err := g.Require(1, 2, 3, 1, 2, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.Require(1, 2, 3, 4); err != nil { // all hot
		t.Fatal(err)
	}
	if n := calls.Load(); n != 4 {
		t.Errorf("compute ran %d times, want 4 (keys 1..4 once each)", n)
	}
	if v, err := g.Get(2); err != nil || v != 4 {
		t.Errorf("Get(2) = %d, %v", v, err)
	}
	if n := calls.Load(); n != 4 {
		t.Error("hot Get must not recompute")
	}
}

func TestRequireFirstErrorInArgOrder(t *testing.T) {
	errB := errors.New("b failed")
	errD := errors.New("d failed")
	g := NewGroup(NewPool(4), func(k string) (int, error) {
		switch k {
		case "b":
			return 0, errB
		case "d":
			return 0, errD
		}
		return 1, nil
	})
	for i := 0; i < 10; i++ { // error choice must be deterministic
		g2 := NewGroup(NewPool(4), g.compute)
		if err := g2.Require("a", "b", "c", "d"); !errors.Is(err, errB) {
			t.Fatalf("Require error = %v, want errB", err)
		}
	}
	// Errors are memoized like values.
	if _, err := g.Get("b"); !errors.Is(err, errB) {
		t.Errorf("Get after failed Require = %v, want errB", err)
	}
}

// TestGetHelpRunsClaimedCell reproduces the cross-group deadlock: with a
// width-1 pool, group B's task occupies the only slot and Gets a key that
// group A's Require has claimed but cannot start (A is blocked waiting
// for B's slot). B's Get must help-run the claimed cell instead of
// waiting on it, or both sides wait forever.
func TestGetHelpRunsClaimedCell(t *testing.T) {
	pool := NewPool(1)
	inner := NewGroup(pool, func(k string) (string, error) { return "w:" + k, nil })
	bRunning := make(chan struct{})
	aClaimed := make(chan struct{})
	outer := NewGroup(pool, func(k string) (string, error) {
		close(bRunning) // B now owns the only slot
		<-aClaimed      // wait until A has claimed "w" and is stuck
		return inner.Get("w")
	})

	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() { errB <- outer.Require("x") }()
	go func() {
		<-bRunning
		errA <- inner.Require("w")
	}()
	go func() {
		// Give A's Require time to claim "w" and block on the slot; the
		// sleep only makes the pre-fix deadlock window reliable, the
		// post-fix path is timing-independent.
		<-bRunning
		time.Sleep(50 * time.Millisecond)
		close(aClaimed)
	}()

	for i := 0; i < 2; i++ {
		select {
		case err := <-errA:
			if err != nil {
				t.Fatal(err)
			}
		case err := <-errB:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("deadlock: Require claimed a cell its waiters hold the slots for")
		}
	}
	if v, _ := outer.Get("x"); v != "w:w" {
		t.Errorf("Get(x) = %q", v)
	}
	if n := inner.Computed(); n != 1 {
		t.Errorf("inner computed %d times, want 1", n)
	}
}

func TestNestedGetFromPoolTaskDoesNotDeadlock(t *testing.T) {
	// A results-style group whose compute calls Get on a workloads-style
	// group, with a pool of width 1: inline compute in Get must prevent
	// the classic nested-pool deadlock.
	pool := NewPool(1)
	inner := NewGroup(pool, func(k string) (string, error) { return "w:" + k, nil })
	outer := NewGroup(pool, func(k string) (string, error) {
		w, err := inner.Get(k)
		return "r:" + w, err
	})
	if err := outer.Require("x", "y", "z"); err != nil {
		t.Fatal(err)
	}
	if v, _ := outer.Get("x"); v != "r:w:x" {
		t.Errorf("Get = %q", v)
	}
}

func TestPoolEach(t *testing.T) {
	p := NewPool(3)
	if p.Width() != 3 {
		t.Errorf("Width = %d", p.Width())
	}
	var running, peak atomic.Int64
	out := make([]int, 50)
	err := p.Each(len(out), func(i int) error {
		n := running.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		out[i] = i * 2
		running.Add(-1)
		if i == 7 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom 7" {
		t.Errorf("Each error = %v, want boom 7 (lowest index)", err)
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds pool width 3", peak.Load())
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d: every index must run even after an error", i, v)
		}
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	type result struct {
		Cycles int64
		MPKI   float64
	}
	dir := t.TempDir()
	c, err := NewDiskCache[string, result](dir, func(k string) string { return "v1|" + k })
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("a"); ok {
		t.Error("empty cache must miss")
	}
	want := result{Cycles: 12345, MPKI: 3.25}
	c.Store("a", want)
	got, ok := c.Load("a")
	if !ok || got != want {
		t.Errorf("Load = %+v, %v; want %+v", got, ok, want)
	}
	// A second cache over the same dir sees the entry (persistence).
	c2, err := NewDiskCache[string, result](dir, func(k string) string { return "v1|" + k })
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Load("a"); !ok || got != want {
		t.Errorf("persisted Load = %+v, %v", got, ok)
	}
	// Different canonical keys must not collide.
	if _, ok := c2.Load("b"); ok {
		t.Error("distinct key must miss")
	}
}

func TestGroupUsesCache(t *testing.T) {
	dir := t.TempDir()
	keyFn := func(k string) string { return "v1|" + k }
	newGroup := func() *Group[string, int] {
		c, err := NewDiskCache[string, int](dir, keyFn)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGroup(NewPool(2), func(k string) (int, error) {
			if k == "bad" {
				return 0, errors.New("bad key")
			}
			return len(k), nil
		})
		g.Cache = c
		return g
	}

	g1 := newGroup()
	var fromCache atomic.Int64
	g1.OnDone = func(_ string, cached bool, _ error) {
		if cached {
			fromCache.Add(1)
		}
	}
	if err := g1.Require("alpha", "beta"); err != nil {
		t.Fatal(err)
	}
	if g1.Computed() != 2 || g1.CacheHits() != 0 || fromCache.Load() != 0 {
		t.Errorf("first run: computed=%d hits=%d", g1.Computed(), g1.CacheHits())
	}
	// Errors must not be cached.
	if _, err := g1.Get("bad"); err == nil {
		t.Fatal("want error")
	}

	g2 := newGroup()
	if err := g2.Require("alpha", "beta"); err != nil {
		t.Fatal(err)
	}
	if g2.Computed() != 0 || g2.CacheHits() != 2 {
		t.Errorf("second run: computed=%d hits=%d, want 0/2", g2.Computed(), g2.CacheHits())
	}
	if v, err := g2.Get("alpha"); err != nil || v != 5 {
		t.Errorf("cached value = %d, %v", v, err)
	}
	if _, err := g2.Get("bad"); err == nil {
		t.Error("failed key must recompute and fail again, not hit cache")
	}
}

// TestGroupForget: a completed key — success or failure — can be dropped
// from the memo so the next demand recomputes, while an in-flight key is
// left alone (forgetting it would strand waiters). This is what lets the
// distributed worker retry a transiently failed cell the coordinator
// requeues to it.
func TestGroupForget(t *testing.T) {
	var calls atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	g := NewGroup(NewPool(2), func(k string) (string, error) {
		calls.Add(1)
		if fail.Load() {
			return "", errors.New("transient blip")
		}
		return "v:" + k, nil
	})

	if g.Forget("a") {
		t.Error("Forget of an unclaimed key returned true")
	}
	if _, err := g.Get("a"); err == nil {
		t.Fatal("first Get should fail")
	}
	if _, err := g.Get("a"); err == nil {
		t.Fatal("memoized error should replay without Forget")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times before Forget, want 1", n)
	}
	if !g.Forget("a") {
		t.Fatal("Forget of a completed key returned false")
	}
	fail.Store(false)
	if v, err := g.Get("a"); err != nil || v != "v:a" {
		t.Fatalf("Get after Forget = %q, %v", v, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("compute ran %d times after Forget, want 2", n)
	}

	// An in-flight key must not be forgettable.
	hold := make(chan struct{})
	entered := make(chan struct{})
	g2 := NewGroup(NewPool(2), func(k string) (string, error) {
		close(entered)
		<-hold
		return k, nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		g2.Get("slow")
	}()
	<-entered
	if g2.Forget("slow") {
		t.Error("Forget of an in-flight key returned true")
	}
	close(hold)
	<-done
	if !g2.Forget("slow") {
		t.Error("Forget after completion returned false")
	}
}

// TestGroupForgetTransient: only completed keys whose memoized outcome
// is a transient error are dropped — successes and deterministic errors
// stand, and the sweep variant counts exactly the poisoned keys.
func TestGroupForgetTransient(t *testing.T) {
	mode := map[string]error{
		"ok":    nil,
		"det":   errors.New("deterministic bug"),
		"blip":  MarkTransient(errors.New("injected blip")),
		"blip2": MarkTransient(errors.New("another blip")),
	}
	var calls atomic.Int64
	g := NewGroup(NewPool(2), func(k string) (string, error) {
		calls.Add(1)
		return "v:" + k, mode[k]
	})
	for k := range mode {
		g.Get(k)
	}

	if g.ForgetTransient("missing") {
		t.Error("ForgetTransient of an unclaimed key returned true")
	}
	if g.ForgetTransient("ok") {
		t.Error("ForgetTransient dropped a successful key")
	}
	if g.ForgetTransient("det") {
		t.Error("ForgetTransient dropped a deterministic error")
	}
	if !g.ForgetTransient("blip") {
		t.Error("ForgetTransient kept a transient error")
	}
	if n := g.ForgetAllTransient(); n != 1 {
		t.Errorf("ForgetAllTransient dropped %d keys, want 1 (blip2)", n)
	}

	// The survivors replay from the memo; the dropped keys recompute.
	before := calls.Load()
	for k := range mode {
		g.Get(k)
	}
	if n := calls.Load() - before; n != 2 {
		t.Errorf("recomputed %d keys after the sweeps, want 2", n)
	}

	// An in-flight key is left alone even if it will fail transiently.
	hold := make(chan struct{})
	entered := make(chan struct{})
	g2 := NewGroup(NewPool(2), func(k string) (string, error) {
		close(entered)
		<-hold
		return "", MarkTransient(errors.New("slow blip"))
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		g2.Get("slow")
	}()
	<-entered
	if g2.ForgetTransient("slow") || g2.ForgetAllTransient() != 0 {
		t.Error("in-flight key was forgotten")
	}
	close(hold)
	<-done
	if !g2.ForgetTransient("slow") {
		t.Error("completed transient failure was not forgotten")
	}
}
