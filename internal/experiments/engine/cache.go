package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"acic/internal/faults"
)

// Cache is a persistent key/value store consulted by a Group before its
// compute function runs. Implementations must be safe for concurrent use.
type Cache[K comparable, V any] interface {
	Load(k K) (V, bool)
	Store(k K, v V)
}

const (
	// tmpDirName is the store subdirectory holding in-progress writes.
	// Keeping temps out of the store root means a crash mid-write can
	// never leave a partial file next to live artifacts — anything in
	// tmp/ is by definition incomplete and is swept when stale.
	tmpDirName = "tmp"
	// QuarantineDirName is the store subdirectory where undecodable
	// entries are moved (with a sibling ".reason" file) instead of being
	// silently re-read forever. Exported so tools and CI can assert no
	// quarantined or partial file ever sits outside it.
	QuarantineDirName = "quarantine"
	// staleTempAge is how old a tmp/ file must be before construction-time
	// sweeping deletes it. Generously longer than any write in flight, so
	// concurrent processes sharing a store never reap each other's temps.
	staleTempAge = time.Hour
)

// blobStore is the byte-level backend behind a DiskCache: named blobs
// published atomically (readers never observe a partial entry), with a
// quarantine path that takes a corrupt entry out of service. Two
// implementations exist — the local filesystem store (fsStore, the
// original DiskCache semantics) and the HTTP client store (httpStore,
// speaking to a StoreServer that applies the same fsync+rename publish
// server-side) — so every store consumer transparently works against a
// shared remote store by pointing its directory at an http:// URL.
type blobStore interface {
	get(name string) ([]byte, bool)
	put(name string, data []byte)
	has(name string) bool
	// begin starts a streaming write: the caller fills the returned
	// entry's temp file and publishes with Commit.
	begin(name string) (*StreamEntry, bool)
	// quarantine takes a corrupt published entry out of service,
	// preserving it (with the reason) when the backend can.
	quarantine(name, key string, cause error)
}

// DiskCache persists encoded values in a blob store, one entry per key.
// The caller supplies a canonical key function; its output is hashed
// (SHA-256) into the entry name, so keys may be arbitrarily long and should
// include everything the value depends on (for simulation results: the
// workload profile hash, trace length, scheme, prefetcher, options, and a
// schema version). Values are JSON by default (NewDiskCache, framed with
// a whole-payload CRC so bit rot cannot silently alter a cached result);
// a custom byte codec (NewCodecDiskCache) lets the same store hold binary
// artifacts such as trace-codec containers.
//
// The backing store is the local filesystem by default; a directory
// argument of the form http:// or https:// selects the remote HTTP
// backend instead (see StoreServer), so one shared store can serve a
// fleet of processes. Entry names are content-addressed either way —
// the hash of the canonical key — which is what makes concurrent writers
// safe: two processes racing the same key publish byte-identical content,
// and the atomic rename (local or server-side) fences them to one entry.
//
// Load and Store are best-effort: unreadable or truncated entries are
// misses (the value is regenerated and rewritten) and write failures are
// ignored — the cache can only make reruns faster, never wrong results.
// Writes are crash-safe: encoded bytes go to a fsynced temp file and are
// renamed into place atomically, so readers never observe a partial entry
// and a crash leaves nothing in the store root. An entry that reads but
// fails to decode is quarantined — moved to quarantine/ with a reason
// file — so corruption is preserved for diagnosis instead of being
// re-read (and re-failed) on every warm run.
type DiskCache[K comparable, V any] struct {
	store blobStore
	ext   string
	key   func(K) string
	enc   func(V) ([]byte, error)
	dec   func(K, []byte) (V, error)

	quarantined atomic.Int64
}

// jsonMagic frames JSON cache entries: magic, 4-byte little-endian IEEE
// CRC-32 of the payload, payload. JSON alone has no integrity check — a
// flipped bit inside a number still parses, which would serve a silently
// wrong cached result — so the frame makes JSON entries as corruption-
// evident as the checksummed trace containers.
const jsonMagic = "ACJ1"

// IsStoreURL reports whether a store directory string selects the remote
// HTTP backend rather than a local filesystem path.
func IsStoreURL(dir string) bool {
	return strings.HasPrefix(dir, "http://") || strings.HasPrefix(dir, "https://")
}

// NewDiskCache creates (if needed) dir and returns a CRC-framed,
// JSON-encoded cache over it. Entries written by older unframed versions
// fail the frame check and are quarantined and regenerated on first read.
func NewDiskCache[K comparable, V any](dir string, key func(K) string) (*DiskCache[K, V], error) {
	return NewCodecDiskCache(dir, ".json", key,
		func(v V) ([]byte, error) {
			payload, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, len(jsonMagic)+4+len(payload))
			copy(buf, jsonMagic)
			binary.LittleEndian.PutUint32(buf[len(jsonMagic):], crc32.ChecksumIEEE(payload))
			copy(buf[len(jsonMagic)+4:], payload)
			return buf, nil
		},
		func(_ K, data []byte) (V, error) {
			var v V
			if len(data) < len(jsonMagic)+4 || string(data[:len(jsonMagic)]) != jsonMagic {
				return v, fmt.Errorf("engine: cache entry is not a %s frame", jsonMagic)
			}
			payload := data[len(jsonMagic)+4:]
			if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[len(jsonMagic):]) {
				return v, errors.New("engine: cache entry CRC mismatch")
			}
			err := json.Unmarshal(payload, &v)
			return v, err
		})
}

// NewCodecDiskCache creates a cache over dir — a local directory (created
// with all missing parents) or, when dir is an http(s):// URL, a remote
// StoreServer — whose values are encoded by enc and decoded by dec. dec
// receives the key alongside the bytes so decoders can rebuild derived
// state from sibling artifacts (a persisted Program is reconstructed
// against its trace); any dec error quarantines the entry and reads as a
// miss.
//
// The backend is probed up front: Store is deliberately best-effort (a
// failed write only costs a future recompute), so without the probe an
// unwritable store — a read-only mount, a permission mismatch, an
// unreachable store server — would silently persist nothing while the
// caller believes it warmed a cache. Local construction also sweeps stale
// files out of tmp/, reclaiming temps left by crashed writers.
func NewCodecDiskCache[K comparable, V any](dir, ext string, key func(K) string,
	enc func(V) ([]byte, error), dec func(K, []byte) (V, error)) (*DiskCache[K, V], error) {
	var store blobStore
	if IsStoreURL(dir) {
		hs, err := newHTTPStore(dir)
		if err != nil {
			return nil, err
		}
		store = hs
	} else {
		fs, err := newFSStore(dir)
		if err != nil {
			return nil, err
		}
		store = fs
	}
	return &DiskCache[K, V]{store: store, ext: ext, key: key, enc: enc, dec: dec}, nil
}

// name returns the content-addressed entry name for k: the hash of the
// canonical key plus the codec extension.
func (d *DiskCache[K, V]) name(k K) string {
	sum := sha256.Sum256([]byte(d.key(k)))
	return hex.EncodeToString(sum[:16]) + d.ext
}

// path returns the filesystem path of k's entry. Only meaningful for the
// local backend (tests use it to corrupt entries in place); panics on a
// remote store, where entries have no local path.
func (d *DiskCache[K, V]) path(k K) string {
	return d.store.(*fsStore).path(d.name(k))
}

// Quarantined returns how many undecodable entries this cache has moved
// to quarantine/ (or deleted, when the move itself failed).
func (d *DiskCache[K, V]) Quarantined() int64 { return d.quarantined.Load() }

// Load implements Cache. Unreadable entries are misses; entries that read
// but fail to decode are quarantined and then miss, so the caller
// regenerates (and re-stores) transparently.
func (d *DiskCache[K, V]) Load(k K) (V, bool) {
	var zero V
	if faults.FailIO() {
		return zero, false
	}
	name := d.name(k)
	data, ok := d.store.get(name)
	if !ok {
		return zero, false
	}
	v, err := d.dec(k, data)
	if err != nil {
		d.store.quarantine(name, d.key(k), err)
		d.quarantined.Add(1)
		return zero, false
	}
	return v, true
}

// Has reports whether an entry for k exists in the store, without reading
// or decoding it. A true result is no guarantee the entry will decode —
// Load still treats corruption as a miss — it only routes callers that
// choose between a warm load path and a regenerating path.
func (d *DiskCache[K, V]) Has(k K) bool {
	return d.store.has(d.name(k))
}

// StreamEntry is a streaming Store in progress: the caller writes the
// encoded value to F incrementally (F is a fresh local temp file, so
// seeking is allowed), then either Commit publishes it atomically or
// Abort discards it. Best-effort like Store: both outcomes only decide
// whether a future Load hits.
type StreamEntry struct {
	F    *os.File
	done bool
	// publish finalizes the flushed temp file into the backend: rename
	// for the filesystem store, PUT for the HTTP store. It owns closing
	// and removing the temp file.
	publish func(f *os.File)
}

// BeginStream starts a streaming Store for k. ok is false when the store
// cannot create a temp file — callers skip persistence and continue.
func (d *DiskCache[K, V]) BeginStream(k K) (*StreamEntry, bool) {
	if faults.FailIO() {
		return nil, false
	}
	return d.store.begin(d.name(k))
}

// Commit finalizes the entry: fsync, then atomic publish (rename into the
// store root, or an HTTP PUT the server publishes the same way), so
// concurrent readers never observe a partial artifact and a post-publish
// crash cannot leave the entry's bytes unflushed.
func (e *StreamEntry) Commit() {
	if e == nil || e.done {
		return
	}
	e.done = true
	if faults.FailIO() {
		e.F.Close()
		os.Remove(e.F.Name())
		return
	}
	if err := e.F.Sync(); err != nil {
		e.F.Close()
		os.Remove(e.F.Name())
		return
	}
	e.publish(e.F)
}

// Abort discards the in-progress entry. Safe on nil and after Commit, so
// callers can unconditionally defer it as panic insurance.
func (e *StreamEntry) Abort() {
	if e == nil || e.done {
		return
	}
	e.done = true
	e.F.Close()
	os.Remove(e.F.Name())
}

// Store implements Cache. The value is staged to a fsynced temp file and
// published atomically, so concurrent readers never observe a partial
// entry and a crash leaves nothing in the store root.
func (d *DiskCache[K, V]) Store(k K, v V) {
	if faults.FailIO() {
		return
	}
	data, err := d.enc(v)
	if err != nil {
		return
	}
	data = faults.Corrupt(data)
	d.store.put(d.name(k), data)
}

// fsStore is the local-filesystem blob backend: the original DiskCache
// semantics — entries live flat in dir, writes stage under tmp/ and
// publish by fsync+rename, corrupt entries move to quarantine/.
type fsStore struct {
	dir string
}

// newFSStore creates (if needed) dir and its tmp/ staging area, probes
// writability, and sweeps stale temps left by crashed writers.
func newFSStore(dir string) (*fsStore, error) {
	tmpDir := filepath.Join(dir, tmpDirName)
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: create cache dir %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(tmpDir, "probe-*")
	if err != nil {
		return nil, fmt.Errorf("engine: cache dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	sweepStaleTemps(tmpDir)
	return &fsStore{dir: dir}, nil
}

// sweepStaleTemps removes tmp/ files older than staleTempAge: leftovers
// from writers that crashed between CreateTemp and Rename.
func sweepStaleTemps(tmpDir string) {
	entries, err := os.ReadDir(tmpDir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		info, err := ent.Info()
		if err == nil && time.Since(info.ModTime()) > staleTempAge {
			os.Remove(filepath.Join(tmpDir, ent.Name()))
		}
	}
}

func (s *fsStore) path(name string) string { return filepath.Join(s.dir, name) }
func (s *fsStore) tmpDir() string          { return filepath.Join(s.dir, tmpDirName) }

func (s *fsStore) get(name string) ([]byte, bool) {
	data, err := os.ReadFile(s.path(name))
	if err != nil {
		return nil, false
	}
	return data, true
}

func (s *fsStore) has(name string) bool {
	_, err := os.Stat(s.path(name))
	return err == nil
}

func (s *fsStore) put(name string, data []byte) {
	tmp, err := os.CreateTemp(s.tmpDir(), "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		os.Remove(tmp.Name())
	}
}

func (s *fsStore) begin(name string) (*StreamEntry, bool) {
	tmp, err := os.CreateTemp(s.tmpDir(), "tmp-*")
	if err != nil {
		return nil, false
	}
	path := s.path(name)
	return &StreamEntry{F: tmp, publish: func(f *os.File) {
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			return
		}
		if err := os.Rename(f.Name(), path); err != nil {
			os.Remove(f.Name())
		}
	}}, true
}

// quarantine takes a corrupt entry out of service: the file moves to
// quarantine/ with a sibling reason file naming the key and the decode
// error, so the evidence survives for diagnosis while every future read
// regenerates cleanly. If the move fails the entry is deleted instead —
// preserving it matters less than never re-reading it.
func (s *fsStore) quarantine(name, key string, cause error) {
	path := s.path(name)
	qdir := filepath.Join(s.dir, QuarantineDirName)
	dst := filepath.Join(qdir, name)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(path)
		return
	}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		return
	}
	os.WriteFile(dst+".reason", []byte(quarantineReason(key, cause)), 0o644)
}

// quarantineReason renders the .reason sidecar contents; shared with the
// HTTP path so a remote quarantine reads identically to a local one.
func quarantineReason(key string, cause error) string {
	return fmt.Sprintf("key: %s\nerror: %v\nquarantined: %s\n",
		key, cause, time.Now().UTC().Format(time.RFC3339))
}
