package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"acic/internal/faults"
)

// Cache is a persistent key/value store consulted by a Group before its
// compute function runs. Implementations must be safe for concurrent use.
type Cache[K comparable, V any] interface {
	Load(k K) (V, bool)
	Store(k K, v V)
}

const (
	// tmpDirName is the store subdirectory holding in-progress writes.
	// Keeping temps out of the store root means a crash mid-write can
	// never leave a partial file next to live artifacts — anything in
	// tmp/ is by definition incomplete and is swept when stale.
	tmpDirName = "tmp"
	// QuarantineDirName is the store subdirectory where undecodable
	// entries are moved (with a sibling ".reason" file) instead of being
	// silently re-read forever. Exported so tools and CI can assert no
	// quarantined or partial file ever sits outside it.
	QuarantineDirName = "quarantine"
	// staleTempAge is how old a tmp/ file must be before construction-time
	// sweeping deletes it. Generously longer than any write in flight, so
	// concurrent processes sharing a store never reap each other's temps.
	staleTempAge = time.Hour
)

// DiskCache persists encoded values under a directory, one file per key.
// The caller supplies a canonical key function; its output is hashed
// (SHA-256) into the filename, so keys may be arbitrarily long and should
// include everything the value depends on (for simulation results: the
// workload profile hash, trace length, scheme, prefetcher, options, and a
// schema version). Values are JSON by default (NewDiskCache, framed with
// a whole-payload CRC so bit rot cannot silently alter a cached result);
// a custom byte codec (NewCodecDiskCache) lets the same store hold binary
// artifacts such as trace-codec containers.
//
// Load and Store are best-effort: unreadable or truncated entries are
// misses (the value is regenerated and rewritten) and write failures are
// ignored — the cache can only make reruns faster, never wrong results.
// Writes are crash-safe: encoded bytes go to a fsynced temp file under
// tmp/ and are renamed into place atomically, so readers never observe a
// partial entry and a crash leaves nothing in the store root. An entry
// that reads but fails to decode is quarantined — moved to quarantine/
// with a reason file — so corruption is preserved for diagnosis instead
// of being re-read (and re-failed) on every warm run.
type DiskCache[K comparable, V any] struct {
	dir string
	ext string
	key func(K) string
	enc func(V) ([]byte, error)
	dec func(K, []byte) (V, error)

	quarantined atomic.Int64
}

// jsonMagic frames JSON cache entries: magic, 4-byte little-endian IEEE
// CRC-32 of the payload, payload. JSON alone has no integrity check — a
// flipped bit inside a number still parses, which would serve a silently
// wrong cached result — so the frame makes JSON entries as corruption-
// evident as the checksummed trace containers.
const jsonMagic = "ACJ1"

// NewDiskCache creates (if needed) dir and returns a CRC-framed,
// JSON-encoded cache over it. Entries written by older unframed versions
// fail the frame check and are quarantined and regenerated on first read.
func NewDiskCache[K comparable, V any](dir string, key func(K) string) (*DiskCache[K, V], error) {
	return NewCodecDiskCache(dir, ".json", key,
		func(v V) ([]byte, error) {
			payload, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, len(jsonMagic)+4+len(payload))
			copy(buf, jsonMagic)
			binary.LittleEndian.PutUint32(buf[len(jsonMagic):], crc32.ChecksumIEEE(payload))
			copy(buf[len(jsonMagic)+4:], payload)
			return buf, nil
		},
		func(_ K, data []byte) (V, error) {
			var v V
			if len(data) < len(jsonMagic)+4 || string(data[:len(jsonMagic)]) != jsonMagic {
				return v, fmt.Errorf("engine: cache entry is not a %s frame", jsonMagic)
			}
			payload := data[len(jsonMagic)+4:]
			if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[len(jsonMagic):]) {
				return v, errors.New("engine: cache entry CRC mismatch")
			}
			err := json.Unmarshal(payload, &v)
			return v, err
		})
}

// NewCodecDiskCache creates (if needed) dir and returns a cache over it
// whose values are encoded by enc and decoded by dec. dec receives the key
// alongside the bytes so decoders can rebuild derived state from sibling
// artifacts (a persisted Program is reconstructed against its trace); any
// dec error quarantines the entry and reads as a miss.
//
// The directory is created with all missing parents, and its writability
// is probed up front: Store is deliberately best-effort (a failed write
// only costs a future recompute), so without the probe an unwritable
// store — a read-only mount, a permission mismatch, a path whose parent
// is a file — would silently persist nothing while the caller believes
// it warmed a cache. Construction also sweeps stale files out of tmp/,
// reclaiming temps left by crashed writers.
func NewCodecDiskCache[K comparable, V any](dir, ext string, key func(K) string,
	enc func(V) ([]byte, error), dec func(K, []byte) (V, error)) (*DiskCache[K, V], error) {
	tmpDir := filepath.Join(dir, tmpDirName)
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: create cache dir %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(tmpDir, "probe-*")
	if err != nil {
		return nil, fmt.Errorf("engine: cache dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	sweepStaleTemps(tmpDir)
	return &DiskCache[K, V]{dir: dir, ext: ext, key: key, enc: enc, dec: dec}, nil
}

// sweepStaleTemps removes tmp/ files older than staleTempAge: leftovers
// from writers that crashed between CreateTemp and Rename.
func sweepStaleTemps(tmpDir string) {
	entries, err := os.ReadDir(tmpDir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		info, err := ent.Info()
		if err == nil && time.Since(info.ModTime()) > staleTempAge {
			os.Remove(filepath.Join(tmpDir, ent.Name()))
		}
	}
}

func (d *DiskCache[K, V]) path(k K) string {
	sum := sha256.Sum256([]byte(d.key(k)))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:16])+d.ext)
}

func (d *DiskCache[K, V]) tmpDir() string { return filepath.Join(d.dir, tmpDirName) }

// Quarantined returns how many undecodable entries this cache has moved
// to quarantine/ (or deleted, when the move itself failed).
func (d *DiskCache[K, V]) Quarantined() int64 { return d.quarantined.Load() }

// quarantine takes a corrupt entry out of service: the file moves to
// quarantine/ with a sibling reason file naming the key and the decode
// error, so the evidence survives for diagnosis while every future read
// regenerates cleanly. If the move fails the entry is deleted instead —
// preserving it matters less than never re-reading it.
func (d *DiskCache[K, V]) quarantine(path, key string, cause error) {
	defer d.quarantined.Add(1)
	qdir := filepath.Join(d.dir, QuarantineDirName)
	dst := filepath.Join(qdir, filepath.Base(path))
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(path)
		return
	}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		return
	}
	reason := fmt.Sprintf("key: %s\nerror: %v\nquarantined: %s\n",
		key, cause, time.Now().UTC().Format(time.RFC3339))
	os.WriteFile(dst+".reason", []byte(reason), 0o644)
}

// Load implements Cache. Unreadable entries are misses; entries that read
// but fail to decode are quarantined and then miss, so the caller
// regenerates (and re-stores) transparently.
func (d *DiskCache[K, V]) Load(k K) (V, bool) {
	var zero V
	if faults.FailIO() {
		return zero, false
	}
	path := d.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		return zero, false
	}
	v, err := d.dec(k, data)
	if err != nil {
		d.quarantine(path, d.key(k), err)
		return zero, false
	}
	return v, true
}

// Has reports whether an entry for k exists on disk, without reading or
// decoding it. A true result is no guarantee the entry will decode — Load
// still treats corruption as a miss — it only routes callers that choose
// between a warm load path and a regenerating path.
func (d *DiskCache[K, V]) Has(k K) bool {
	_, err := os.Stat(d.path(k))
	return err == nil
}

// StreamEntry is a streaming Store in progress: the caller writes the
// encoded value to F incrementally (F is a fresh temp file under tmp/, so
// seeking is allowed), then either Commit fsyncs and renames it into
// place atomically or Abort discards it. Best-effort like Store: both
// outcomes only decide whether a future Load hits.
type StreamEntry struct {
	F    *os.File
	path string
	done bool
}

// BeginStream starts a streaming Store for k. ok is false when the store
// cannot create a temp file — callers skip persistence and continue.
func (d *DiskCache[K, V]) BeginStream(k K) (*StreamEntry, bool) {
	if faults.FailIO() {
		return nil, false
	}
	tmp, err := os.CreateTemp(d.tmpDir(), "tmp-*")
	if err != nil {
		return nil, false
	}
	return &StreamEntry{F: tmp, path: d.path(k)}, true
}

// Commit finalizes the entry: fsync, close, then atomic rename, so
// concurrent readers never observe a partial artifact and a post-rename
// crash cannot leave the entry's bytes unflushed.
func (e *StreamEntry) Commit() {
	if e == nil || e.done {
		return
	}
	e.done = true
	if faults.FailIO() {
		e.F.Close()
		os.Remove(e.F.Name())
		return
	}
	if err := e.F.Sync(); err != nil {
		e.F.Close()
		os.Remove(e.F.Name())
		return
	}
	if err := e.F.Close(); err != nil {
		os.Remove(e.F.Name())
		return
	}
	if err := os.Rename(e.F.Name(), e.path); err != nil {
		os.Remove(e.F.Name())
	}
}

// Abort discards the in-progress entry. Safe on nil and after Commit, so
// callers can unconditionally defer it as panic insurance.
func (e *StreamEntry) Abort() {
	if e == nil || e.done {
		return
	}
	e.done = true
	e.F.Close()
	os.Remove(e.F.Name())
}

// Store implements Cache. The value is written to a fsynced temp file
// under tmp/ and renamed into place, so concurrent readers never observe
// a partial entry and a crash leaves nothing in the store root.
func (d *DiskCache[K, V]) Store(k K, v V) {
	if faults.FailIO() {
		return
	}
	data, err := d.enc(v)
	if err != nil {
		return
	}
	data = faults.Corrupt(data)
	path := d.path(k)
	tmp, err := os.CreateTemp(d.tmpDir(), "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
