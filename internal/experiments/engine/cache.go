package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a persistent key/value store consulted by a Group before its
// compute function runs. Implementations must be safe for concurrent use.
type Cache[K comparable, V any] interface {
	Load(k K) (V, bool)
	Store(k K, v V)
}

// DiskCache persists encoded values under a directory, one file per key.
// The caller supplies a canonical key function; its output is hashed
// (SHA-256) into the filename, so keys may be arbitrarily long and should
// include everything the value depends on (for simulation results: the
// workload profile hash, trace length, scheme, prefetcher, options, and a
// schema version). Values are JSON by default (NewDiskCache); a custom
// byte codec (NewCodecDiskCache) lets the same store hold binary artifacts
// such as trace-codec containers. Load and Store are best-effort:
// unreadable, truncated, or corrupt entries are misses (the value is
// regenerated and rewritten), and write failures are ignored — the cache
// can only make reruns faster, never wrong results.
type DiskCache[K comparable, V any] struct {
	dir string
	ext string
	key func(K) string
	enc func(V) ([]byte, error)
	dec func(K, []byte) (V, error)
}

// NewDiskCache creates (if needed) dir and returns a JSON-encoded cache
// over it.
func NewDiskCache[K comparable, V any](dir string, key func(K) string) (*DiskCache[K, V], error) {
	return NewCodecDiskCache(dir, ".json", key,
		func(v V) ([]byte, error) { return json.Marshal(v) },
		func(_ K, data []byte) (V, error) {
			var v V
			err := json.Unmarshal(data, &v)
			return v, err
		})
}

// NewCodecDiskCache creates (if needed) dir and returns a cache over it
// whose values are encoded by enc and decoded by dec. dec receives the key
// alongside the bytes so decoders can rebuild derived state from sibling
// artifacts (a persisted Program is reconstructed against its trace); any
// dec error is treated as a miss.
//
// The directory is created with all missing parents, and its writability
// is probed up front: Store is deliberately best-effort (a failed write
// only costs a future recompute), so without the probe an unwritable
// store — a read-only mount, a permission mismatch, a path whose parent
// is a file — would silently persist nothing while the caller believes
// it warmed a cache.
func NewCodecDiskCache[K comparable, V any](dir, ext string, key func(K) string,
	enc func(V) ([]byte, error), dec func(K, []byte) (V, error)) (*DiskCache[K, V], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: create cache dir %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, "probe-*")
	if err != nil {
		return nil, fmt.Errorf("engine: cache dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &DiskCache[K, V]{dir: dir, ext: ext, key: key, enc: enc, dec: dec}, nil
}

func (d *DiskCache[K, V]) path(k K) string {
	sum := sha256.Sum256([]byte(d.key(k)))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:16])+d.ext)
}

// Load implements Cache.
func (d *DiskCache[K, V]) Load(k K) (V, bool) {
	var zero V
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		return zero, false
	}
	v, err := d.dec(k, data)
	if err != nil {
		return zero, false
	}
	return v, true
}

// Has reports whether an entry for k exists on disk, without reading or
// decoding it. A true result is no guarantee the entry will decode — Load
// still treats corruption as a miss — it only routes callers that choose
// between a warm load path and a regenerating path.
func (d *DiskCache[K, V]) Has(k K) bool {
	_, err := os.Stat(d.path(k))
	return err == nil
}

// StreamEntry is a streaming Store in progress: the caller writes the
// encoded value to F incrementally (F is a fresh temp file, so seeking is
// allowed), then either Commit renames it into place atomically or Abort
// discards it. Best-effort like Store: both outcomes only decide whether
// a future Load hits.
type StreamEntry struct {
	F    *os.File
	path string
	done bool
}

// BeginStream starts a streaming Store for k. ok is false when the store
// cannot create a temp file — callers skip persistence and continue.
func (d *DiskCache[K, V]) BeginStream(k K) (*StreamEntry, bool) {
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return nil, false
	}
	return &StreamEntry{F: tmp, path: d.path(k)}, true
}

// Commit finalizes the entry: close, then atomic rename, so concurrent
// readers never observe a partial artifact.
func (e *StreamEntry) Commit() {
	if e == nil || e.done {
		return
	}
	e.done = true
	if err := e.F.Close(); err != nil {
		os.Remove(e.F.Name())
		return
	}
	if err := os.Rename(e.F.Name(), e.path); err != nil {
		os.Remove(e.F.Name())
	}
}

// Abort discards the in-progress entry.
func (e *StreamEntry) Abort() {
	if e == nil || e.done {
		return
	}
	e.done = true
	e.F.Close()
	os.Remove(e.F.Name())
}

// Store implements Cache. The value is written to a temp file and renamed
// so concurrent readers never observe a partial entry.
func (d *DiskCache[K, V]) Store(k K, v V) {
	data, err := d.enc(v)
	if err != nil {
		return
	}
	path := d.path(k)
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
