package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a persistent key/value store consulted by a Group before its
// compute function runs. Implementations must be safe for concurrent use.
type Cache[K comparable, V any] interface {
	Load(k K) (V, bool)
	Store(k K, v V)
}

// DiskCache persists JSON-encoded values under a directory, one file per
// key. The caller supplies a canonical key function; its output is hashed
// (SHA-256) into the filename, so keys may be arbitrarily long and should
// include everything the value depends on (for simulation results: the
// workload profile hash, trace length, scheme, prefetcher, options, and a
// schema version). Load and Store are best-effort: unreadable or corrupt
// entries are misses, and write failures are ignored — the cache can only
// make reruns faster, never wrong results.
type DiskCache[K comparable, V any] struct {
	dir string
	key func(K) string
}

// NewDiskCache creates (if needed) dir and returns a cache over it.
func NewDiskCache[K comparable, V any](dir string, key func(K) string) (*DiskCache[K, V], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: create cache dir: %w", err)
	}
	return &DiskCache[K, V]{dir: dir, key: key}, nil
}

func (d *DiskCache[K, V]) path(k K) string {
	sum := sha256.Sum256([]byte(d.key(k)))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:16])+".json")
}

// Load implements Cache.
func (d *DiskCache[K, V]) Load(k K) (V, bool) {
	var v V
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		return v, false
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, false
	}
	return v, true
}

// Store implements Cache. The value is written to a temp file and renamed
// so concurrent readers never observe a partial entry.
func (d *DiskCache[K, V]) Store(k K, v V) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	path := d.path(k)
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
